(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 4) on the simulated substrates, plus Bechamel
   wall-clock microbenchmarks of the core index operations.

   Usage:
     dune exec bench/main.exe                 # every experiment, quick scale
     dune exec bench/main.exe -- fig10 fig13  # selected experiments
     dune exec bench/main.exe -- --full all   # paper-sized trees
     dune exec bench/main.exe -- --tiny all   # smoke-test sizes (CI)
     dune exec bench/main.exe -- --csv out/   # also write each table as CSV
     dune exec bench/main.exe -- --json F     # machine-readable report to F
     dune exec bench/main.exe -- bechamel     # wall-clock microbenches

   Results (paper vs. measured) are catalogued in EXPERIMENTS.md; the
   --json report schema is docs/OBSERVABILITY.md. *)

open Fpb_experiments

let run_bechamel () =
  (* Wall-clock cost of the real implementations (not simulated time):
     one Test.make per operation and index over a 100K-key tree. *)
  let open Bechamel in
  let make_setup kind =
    let sys = Setup.make ~page_size:16384 () in
    let rng = Fpb_workload.Prng.create 99 in
    let pairs = Fpb_workload.Keygen.bulk_pairs rng 100_000 in
    let idx = Run.build sys kind pairs ~fill:0.9 in
    let probes = Fpb_workload.Keygen.probes rng pairs 1 in
    (idx, probes.(0), rng)
  in
  let search_test kind =
    let idx, probe, _ = make_setup kind in
    Test.make
      ~name:(Printf.sprintf "search/%s" (Setup.kind_name kind))
      (Staged.stage (fun () ->
           ignore (Fpb_btree_common.Index_sig.search idx probe)))
  in
  let insert_test kind =
    let idx, _, rng = make_setup kind in
    Test.make
      ~name:(Printf.sprintf "insert/%s" (Setup.kind_name kind))
      (Staged.stage (fun () ->
           let k = Fpb_workload.Prng.int rng 0x3fffffff in
           ignore (Fpb_btree_common.Index_sig.insert idx k k)))
  in
  let scan_test kind =
    let idx, probe, _ = make_setup kind in
    Test.make
      ~name:(Printf.sprintf "scan/%s" (Setup.kind_name kind))
      (Staged.stage (fun () ->
           ignore
             (Fpb_btree_common.Index_sig.range_scan idx ~start_key:probe
                ~end_key:(probe + 20_000) (fun _ _ -> ()))))
  in
  let tests =
    Test.make_grouped ~name:"fpbtree"
      [
        Test.make_grouped ~name:"search" (List.map search_test Setup.all_kinds);
        Test.make_grouped ~name:"insert" (List.map insert_test Setup.all_kinds);
        Test.make_grouped ~name:"scan" (List.map scan_test Setup.all_kinds);
      ]
  in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg instances tests in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let names = Hashtbl.fold (fun name _ acc -> name :: acc) results [] in
  List.filter_map
    (fun name ->
      match Analyze.OLS.estimates (Hashtbl.find results name) with
      | Some (est :: _) ->
          Printf.printf "%-50s %12.1f ns/op\n%!" name est;
          Some (name, est)
      | _ ->
          Printf.printf "%-50s (no estimate)\n%!" name;
          None)
    (List.sort compare names)

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let tiny = List.mem "--tiny" args in
  let scale = if full then Scale.Full else if tiny then Scale.Tiny else Scale.Quick in
  let args = List.filter (fun a -> a <> "--full" && a <> "--tiny") args in
  let take_opt flag args =
    let rec go acc = function
      | f :: v :: rest when f = flag -> (Some v, List.rev_append acc rest)
      | x :: rest -> go (x :: acc) rest
      | [] -> (None, List.rev acc)
    in
    go [] args
  in
  let csv_dir, args = take_opt "--csv" args in
  let json_path, args = take_opt "--json" args in
  (match csv_dir with
  | Some dir when not (Sys.file_exists dir) -> Sys.mkdir dir 0o755
  | _ -> ());
  let wanted = match args with [] | [ "all" ] -> None | l -> Some l in
  let ppf = Format.std_formatter in
  Format.printf "fpB+-Tree benchmark harness (%s scale)@." (Scale.to_string scale);
  let run_bechamel_wanted =
    match wanted with None -> true | Some l -> List.mem "bechamel" l
  in
  let exp_wanted id =
    match wanted with None -> true | Some l -> List.mem id l
  in
  let outcomes =
    List.filter_map
      (fun e ->
        if not (exp_wanted e.Registry.id) then None
        else begin
          let o = Registry.run_and_print ppf scale e in
          (match csv_dir with
          | Some dir ->
              List.iter
                (fun t ->
                  let path = Filename.concat dir (t.Table.id ^ ".csv") in
                  Out_channel.with_open_text path (fun oc ->
                      Out_channel.output_string oc (Table.csv t)))
                o.Registry.tables
          | None -> ());
          Some o
        end)
      Registry.all
  in
  (match wanted with
  | Some l ->
      List.iter
        (fun id ->
          if id <> "bechamel" && Registry.find id = None then
            Format.printf "unknown experiment id: %s@." id)
        l
  | None -> ());
  let bechamel =
    if run_bechamel_wanted then begin
      Format.printf
        "@.== bechamel: wall-clock microbenchmarks (real time, not simulated) ==@.";
      run_bechamel ()
    end
    else []
  in
  match json_path with
  | None -> ()
  | Some path ->
      let timestamp =
        let t = Unix.gmtime (Unix.gettimeofday ()) in
        Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
          (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
          t.Unix.tm_sec
      in
      Report.write path (Report.make ~scale ~timestamp ~bechamel outcomes);
      if path <> "-" then Format.printf "@.wrote %s@." path
