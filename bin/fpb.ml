(* fpb: command-line front end.

   fpb tune [--t1 N] [--tnext N] [--line N] [--page N]  node-size tuner
   fpb list                                             experiments
   fpb exp ID [--full]                                  run one experiment
   fpb check [--keys N] [--page N]                      build + verify all indexes
   fpb crashtest [--tiny] [--seed N]                    WAL fault-injection sweep
   fpb chaos [--tiny] [--seed N] [--log-mirrors K]
             [--log-rate R] [--scrub-bw N]              media-fault chaos harness
   fpb ycsb [--mix A..F] [--dist D] [--rate R] ...      YCSB-style workload run
   fpb demo                                             quickstart walk-through *)

open Cmdliner
open Fpb_btree_common

let tune_cmd =
  let t1 = Arg.(value & opt int 150 & info [ "t1" ] ~doc:"Full miss latency (cycles)") in
  let tnext = Arg.(value & opt int 10 & info [ "tnext" ] ~doc:"Pipelined miss gap (cycles)") in
  let line = Arg.(value & opt int 64 & info [ "line" ] ~doc:"Cache line size (bytes)") in
  let page =
    Arg.(value & opt (some int) None & info [ "page" ] ~doc:"Page size (bytes); default: 4K..32K sweep")
  in
  let run t1 tnext line page =
    let pages = match page with Some p -> [ p ] | None -> [ 4096; 8192; 16384; 32768 ] in
    List.iter
      (fun page_size ->
        let df = Tuning.disk_first ~t1 ~tnext ~line_size:line ~page_size () in
        let cf = Tuning.cache_first ~t1 ~tnext ~line_size:line ~page_size () in
        let mi = Tuning.micro_index ~t1 ~tnext ~line_size:line ~page_size () in
        Fmt.pr "page %dB:@." page_size;
        Fmt.pr "  disk-first : nonleaf %dB (%d entries), leaf %dB (%d entries), fan-out %d, cost ratio %.2f@."
          (df.Tuning.df_w * line) df.df_nonleaf_cap (df.df_x * line) df.df_leaf_cap
          df.df_fanout df.df_ratio;
        Fmt.pr "  cache-first: node %dB (leaf %d / nonleaf %d entries), fan-out %d, cost ratio %.2f@."
          (cf.Tuning.cf_w * line) cf.cf_leaf_cap cf.cf_nonleaf_cap cf.cf_fanout
          cf.cf_ratio;
        Fmt.pr "  micro-index: sub-array %dB, fan-out %d, cost ratio %.2f@."
          (mi.Tuning.mi_sub_lines * line) mi.mi_fanout mi.mi_ratio)
      pages
  in
  Cmd.v (Cmd.info "tune" ~doc:"Optimal node-size selection (paper Table 2)")
    Term.(const run $ t1 $ tnext $ line $ page)

let list_cmd =
  let run () =
    List.iter
      (fun e -> Fmt.pr "%-10s %s@." e.Fpb_experiments.Registry.id e.describes)
      Fpb_experiments.Registry.all
  in
  Cmd.v (Cmd.info "list" ~doc:"List reproducible tables/figures") Term.(const run $ const ())

let iso_timestamp () =
  let t = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (t.Unix.tm_year + 1900)
    (t.Unix.tm_mon + 1) t.Unix.tm_mday t.Unix.tm_hour t.Unix.tm_min
    t.Unix.tm_sec

let exp_cmd =
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Paper-sized trees") in
  let tiny = Arg.(value & flag & info [ "tiny" ] ~doc:"Smoke-test-sized trees") in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"PATH"
          ~doc:"Also write the metrics report as JSON to $(docv) (\"-\" for stdout)")
  in
  let run id full tiny json =
    let open Fpb_experiments in
    let scale = if full then Scale.Full else if tiny then Scale.Tiny else Scale.Quick in
    match Registry.find id with
    | Some e ->
        let o = Registry.run_and_print Format.std_formatter scale e in
        (match json with
        | None -> ()
        | Some path ->
            Report.write path
              (Report.make ~scale ~timestamp:(iso_timestamp ()) [ o ]));
        (match o.Registry.aborted with
        | Some why -> `Error (false, e.Registry.id ^ " aborted: " ^ why)
        | None -> `Ok ())
    | None -> `Error (false, "unknown experiment id: " ^ id)
  in
  Cmd.v (Cmd.info "exp" ~doc:"Run one experiment")
    Term.(ret (const run $ id $ full $ tiny $ json))

let check_cmd =
  let keys = Arg.(value & opt int 200_000 & info [ "keys" ] ~doc:"Number of keys") in
  let page = Arg.(value & opt int 16384 & info [ "page" ] ~doc:"Page size (bytes)") in
  let run keys page =
    let rng = Fpb_workload.Prng.create 7 in
    let pairs = Fpb_workload.Keygen.bulk_pairs rng keys in
    List.iter
      (fun kind ->
        let open Fpb_experiments in
        let _sys, idx = Run.fresh ~page_size:page kind pairs ~fill:0.8 in
        let extra = Fpb_workload.Keygen.random_keys rng (keys / 10) in
        Array.iter (fun k -> ignore (Index_sig.insert idx k k)) extra;
        Index_sig.check idx;
        Fmt.pr "%-24s OK: height=%d pages=%d@." (Setup.kind_name kind)
          (Index_sig.height idx) (Index_sig.page_count idx))
      Fpb_experiments.Setup.all_kinds
  in
  Cmd.v
    (Cmd.info "check" ~doc:"Build every index variant and verify structural invariants")
    Term.(const run $ keys $ page)

(* Serialise a standalone harness run (crashtest, chaos) in the same
   JSON shape `fpb exp --json` emits: one outcome whose [aborted] field
   carries the failure summary when the oracles broke, so CI can assert
   on a single convention for every leg. *)
let write_harness_json ~path ~scale ~id ~describes ~tables ~metrics ~wall_s
    ~failures =
  let open Fpb_experiments in
  let entry = { Registry.id; describes; run = (fun _ -> []) } in
  let aborted =
    match failures with
    | [] -> None
    | fs -> Some (Printf.sprintf "%d checker failures" (List.length fs))
  in
  let o = { Registry.entry; tables; metrics; wall_s; aborted } in
  Report.write path (Report.make ~scale ~timestamp:(iso_timestamp ()) [ o ])

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"PATH"
        ~doc:"Also write the report as JSON to $(docv) (\"-\" for stdout)")

let crashtest_cmd =
  let tiny = Arg.(value & flag & info [ "tiny" ] ~doc:"Smoke-test-sized scenario") in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Large scenario") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed") in
  let run tiny full seed json =
    let open Fpb_experiments in
    let scale = if full then Scale.Full else if tiny then Scale.Tiny else Scale.Quick in
    let t0 = Unix.gettimeofday () in
    let metrics, (results, table) =
      Telemetry.with_collector (fun () -> Crashtest.run_all ~seed scale)
    in
    Table.print Format.std_formatter table;
    let failures = List.concat_map (fun r -> r.Crashtest.failures) results in
    List.iter (fun (label, msg) -> Fmt.epr "FAIL %s: %s@." label msg) failures;
    (match json with
    | None -> ()
    | Some path ->
        write_harness_json ~path ~scale ~id:"crashtest"
          ~describes:
            "Crash fault injection: WAL byte boundaries, shadow flip \
             boundaries, replication kill sweep"
          ~tables:[ table ] ~metrics ~wall_s:(Unix.gettimeofday () -. t0)
          ~failures);
    if failures = [] then begin
      Fmt.pr "crashtest OK: %d crash points, 0 checker failures@."
        (List.fold_left (fun a r -> a + r.Crashtest.points) 0 results);
      `Ok ()
    end
    else `Error (false, Printf.sprintf "%d checker failures" (List.length failures))
  in
  Cmd.v
    (Cmd.info "crashtest"
       ~doc:
         "Fault-injection sweep: crash the simulated machine at every log \
          record boundary (and torn mid-record/torn-page variants), recover, \
          and verify every index structure; the replication sweep re-runs \
          every record boundary as a primary kill and verifies failover \
          loses no acked commit under semi-sync and exactly the unacked \
          suffix under async")
    Term.(ret (const run $ tiny $ full $ seed $ json_arg))

let chaos_cmd =
  let tiny = Arg.(value & flag & info [ "tiny" ] ~doc:"Smoke-test-sized scenario") in
  let full = Arg.(value & flag & info [ "full" ] ~doc:"Large scenario") in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload and fault-schedule seed") in
  let log_mirrors =
    Arg.(
      value & opt int 2
      & info [ "log-mirrors" ]
          ~doc:"Mirrored log disks in the log-fault leg (clamped to >= 2)")
  in
  let log_rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "log-rate" ]
          ~doc:"Fault rate armed on log mirror 0 (default: the top data rate)")
  in
  let scrub_bw =
    Arg.(
      value
      & opt (some int) None
      & info [ "scrub-bw" ]
          ~doc:"Scrub bandwidth in pages per tick; 0 pauses the scrubber")
  in
  let run tiny full seed log_mirrors log_rate scrub_bw json =
    let open Fpb_experiments in
    let scale = if full then Scale.Full else if tiny then Scale.Tiny else Scale.Quick in
    let t0 = Unix.gettimeofday () in
    let metrics, (cells, table, shadow_cells, shadow_table, replica_cells,
                  replica_table, partition_cells, partition_table)
        =
      Telemetry.with_collector (fun () ->
          let cells, table =
            Chaos.run_all ~seed ~log_mirrors ?log_rate ?scrub_bw scale
          in
          let shadow_cells, shadow_table = Chaos.shadow_meta_leg ~seed scale in
          let replica_cells, replica_table = Chaos.replica_leg ~seed scale in
          let partition_cells, partition_table =
            Chaos.partition_leg ~seed scale
          in
          (cells, table, shadow_cells, shadow_table, replica_cells,
           replica_table, partition_cells, partition_table))
    in
    Table.print Format.std_formatter table;
    Table.print Format.std_formatter shadow_table;
    Table.print Format.std_formatter replica_table;
    Table.print Format.std_formatter partition_table;
    let failures =
      List.concat_map
        (fun c ->
          List.map
            (fun m ->
              Printf.sprintf "%s/%s: %s" (Setup.kind_name c.Chaos.kind)
                c.Chaos.label m)
            c.Chaos.failures)
        cells
      @ List.concat_map
          (fun c ->
            List.map
              (fun m ->
                Printf.sprintf "%s/%s: %s"
                  (Setup.kind_name c.Chaos.s_kind)
                  c.Chaos.s_label m)
              c.Chaos.s_failures)
          shadow_cells
      @ List.concat_map
          (fun c ->
            List.map
              (fun m ->
                Printf.sprintf "%s/%s: %s"
                  (Setup.kind_name c.Chaos.r_kind)
                  c.Chaos.r_label m)
              c.Chaos.r_failures)
          replica_cells
      @ List.concat_map
          (fun c ->
            List.map
              (fun m ->
                Printf.sprintf "%s/%s: %s"
                  (Setup.kind_name c.Chaos.p_kind)
                  c.Chaos.p_label m)
              c.Chaos.p_failures)
          partition_cells
    in
    List.iter (fun m -> Fmt.epr "FAIL %s@." m) failures;
    (match json with
    | None -> ()
    | Some path ->
        write_harness_json ~path ~scale ~id:"chaos"
          ~describes:
            "Media-fault chaos: transient/latent/corruption disk faults, \
             shadow checkpoint meta faults, replication failover under a \
             lossy reordering link, semi-sync commits through a partition \
             window"
          ~tables:[ table; shadow_table; replica_table; partition_table ]
          ~metrics ~wall_s:(Unix.gettimeofday () -. t0) ~failures);
    if failures = [] then begin
      let repaired = List.fold_left (fun a c -> a + c.Chaos.repaired) 0 cells in
      let detected = List.fold_left (fun a c -> a + c.Chaos.detected) 0 cells in
      Fmt.pr "chaos OK: %d cells, %d pages repaired, %d errors detected, 0 oracle failures@."
        (List.length cells + List.length shadow_cells
        + List.length replica_cells + List.length partition_cells)
        repaired detected;
      `Ok ()
    end
    else `Error (false, Printf.sprintf "%d oracle failures" (List.length failures))
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Media-fault chaos harness: run search/update workloads against \
          disks injecting transient errors, latent sectors and silent \
          corruption; verify checksums detect all damage, the WAL repairs \
          covered pages (including from a mirrored log under log-disk \
          faults), scrub finds nothing unrecoverable, and replication \
          failover over a lossy reordering link loses no acked commit")
    Term.(
      ret
        (const run $ tiny $ full $ seed $ log_mirrors $ log_rate $ scrub_bw
       $ json_arg))

let ycsb_cmd =
  let mix = Arg.(value & opt string "A" & info [ "mix" ] ~doc:"YCSB core mix (A..F)") in
  let dist =
    Arg.(
      value
      & opt (some string) None
      & info [ "dist" ]
          ~doc:
            "Key distribution: uniform, zipfian (scrambled), zipf-seq, \
             latest, hotspot (default: the mix's conventional one)")
  in
  let theta =
    Arg.(
      value
      & opt float Fpb_workload.Keygen.default_theta
      & info [ "theta" ] ~doc:"Zipfian constant, in (0, 1)")
  in
  let clients = Arg.(value & opt int 8 & info [ "clients" ] ~doc:"Logical clients") in
  let keys = Arg.(value & opt int 50_000 & info [ "keys" ] ~doc:"Bulk-loaded keys") in
  let ops = Arg.(value & opt int 5_000 & info [ "ops" ] ~doc:"Operations to run") in
  let tiny = Arg.(value & flag & info [ "tiny" ] ~doc:"Smoke-test size (overrides --keys/--ops)") in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ]
          ~doc:
            "Open-loop arrival rate (ops per simulated second); omit for \
             the closed-loop driver")
  in
  let fixed =
    Arg.(
      value & flag
      & info [ "fixed" ] ~doc:"Fixed-interval arrivals instead of Poisson")
  in
  let pool =
    Arg.(
      value
      & opt (some int) None
      & info [ "pool" ] ~doc:"Buffer-pool frames (default: half the tree)")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Workload seed") in
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"NS"
          ~doc:
            "Per-operation deadline in simulated ns, measured from first \
             arrival (open loop only)")
  in
  let policy =
    Arg.(
      value
      & opt (some string) None
      & info [ "policy" ]
          ~doc:
            "Admission policy at arrival: admit-all, queue-cap or deadline \
             (open loop only)")
  in
  let qcap =
    Arg.(
      value & opt int 64
      & info [ "queue-cap" ]
          ~doc:"Per-client queue bound for --policy queue-cap")
  in
  let retry =
    Arg.(
      value
      & opt (some string) None
      & info [ "retry" ]
          ~doc:
            "Client retry discipline for shed/expired ops: none, immediate, \
             fixed, backoff or backoff-jitter (open loop only)")
  in
  let retry_budget =
    Arg.(
      value & opt int 3
      & info [ "retry-budget" ] ~doc:"Retries per op before it is dropped")
  in
  let retry_base =
    Arg.(
      value & opt int 1_000_000
      & info [ "retry-base" ] ~docv:"NS"
          ~doc:"Base retry delay (simulated ns) for fixed/backoff")
  in
  let batch =
    Arg.(
      value & opt int 1
      & info [ "batch" ] ~docv:"N"
          ~doc:
            "Serve reads as N-probe batched level-wise descents \
             ([search_batch]) through one size-or-timeout batch server; \
             writes fall back to singleton descents.  Open loop only; 1 \
             disables")
  in
  let batch_wait =
    Arg.(
      value & opt int 2_000_000
      & info [ "batch-wait" ] ~docv:"NS"
          ~doc:
            "Longest the oldest queued op waits for a full batch before \
             dispatch (simulated ns, with --batch)")
  in
  let run mix dist theta clients keys ops tiny rate fixed pool seed deadline
      policy qcap retry retry_budget retry_base batch batch_wait =
    let open Fpb_btree_common in
    let open Fpb_experiments in
    let module W = Fpb_workload in
    let keys = if tiny then 20_000 else keys in
    let ops = if tiny then 600 else ops in
    match W.Mix.of_string mix with
    | Error e -> `Error (false, e)
    | Ok mix -> (
        let dist_r =
          match dist with
          | None -> Ok (W.Mix.default_dist mix)
          | Some s -> W.Keygen.dist_of_string ~theta s
        in
        let admission_r =
          match policy with
          | None -> Ok None
          | Some s ->
              Result.map Option.some (W.Admission.of_string ~queue_cap:qcap s)
        in
        let retry_r =
          match retry with
          | None -> Ok None
          | Some s ->
              Result.map Option.some
                (W.Retry.of_string ~budget:retry_budget ~base_ns:retry_base s)
        in
        match (dist_r, admission_r, retry_r) with
        | Error e, _, _ | _, Error e, _ | _, _, Error e -> `Error (false, e)
        | Ok dist, Ok admission, Ok retry ->
        if batch > 1 && rate = None then
          `Error
            (false, "--batch requires --rate: batched service is open-loop")
        else if batch > 1 && (deadline <> None || admission <> None || retry <> None)
        then
          `Error
            ( false,
              "--batch does not compose with --deadline/--policy/--retry \
               (those belong to the per-client open-loop driver)" )
        else
            let rng = W.Prng.create seed in
            let pairs = W.Keygen.bulk_pairs rng keys in
            let page_size = 4096 in
            let pool_pages =
              match pool with
              (* no floor beyond 1: undersized pools are exactly how you
                 demo the typed Overloaded refusal *)
              | Some p -> max 1 p
              | None ->
                  let sys = Setup.make ~n_disks:4 ~page_size () in
                  let idx = Run.build sys Setup.Disk_first pairs ~fill:0.8 in
                  max 24 (Index_sig.page_count idx / 2)
            in
            let sys =
              Setup.make ~n_disks:4 ~pool_pages
                ~n_shards:(min 4 pool_pages) ~page_size ()
            in
            let committed = ref 0 in
            match
              (* build + warm + drive, all under the pool's typed
                 overload escape: a deliberately undersized pool can
                 refuse even the bulkload's pinned descent *)
              let idx = Run.build sys Setup.Disk_first pairs ~fill:0.8 in
              let wal =
                Fpb_wal.Wal.attach ~group_commit_bytes:(1 lsl 16)
                  ~meta:(Index_sig.meta idx) sys.Setup.pool
              in
              let gen = W.Mix.generator ~dist ~seed:(seed + 1) mix pairs in
              let warm = W.Prng.create (seed + 2) in
              for _ = 1 to 2 * pool_pages do
                ignore
                  (Index_sig.search idx
                     (fst pairs.(W.Keygen.draw_pos dist warm ~n:keys)))
              done;
              Fpb_storage.Buffer_pool.reset_stats sys.Setup.pool;
              let commit () =
                incr committed;
                Fpb_wal.Wal.commit wal ~op:!committed ~meta:(Index_sig.meta idx)
              in
              let op ~client:(_ : int) ~seq:(_ : int) =
                W.Mix.execute idx ~commit (W.Mix.next gen)
              in
              Fmt.pr "mix %s, %s, %d keys, %d ops, %d clients, pool %d frames@."
                mix.W.Mix.name (W.Keygen.dist_name dist) keys ops clients
                pool_pages;
              let report name (h : Fpb_obs.Histogram.t) =
                Fmt.pr "  %-12s p50 %8d  p90 %8d  p99 %8d  p999 %8d  (ns)@."
                  name
                  (Fpb_obs.Histogram.percentile h 50.)
                  (Fpb_obs.Histogram.percentile h 90.)
                  (Fpb_obs.Histogram.percentile h 99.)
                  (Fpb_obs.Histogram.percentile h 99.9)
              in
              (match rate with
              | Some rate when batch > 1 ->
                  (* Batched discipline: one size-or-timeout server; each
                     dispatch draws the batch's actions from the mix,
                     serves all reads as ONE level-wise descent wave and
                     everything else as singleton descents. *)
                  let discipline =
                    if fixed then W.Arrival.Fixed else W.Arrival.Poisson
                  in
                  let exec seqs =
                    let reads = ref [] in
                    Array.iter
                      (fun (_ : int) ->
                        match W.Mix.next gen with
                        | W.Mix.Read k -> reads := k :: !reads
                        | act -> W.Mix.execute idx ~commit act)
                      seqs;
                    match !reads with
                    | [] -> ()
                    | ks ->
                        ignore
                          (Index_sig.search_batch idx (Array.of_list ks))
                  in
                  let s =
                    W.Batch.run ~sim:sys.Setup.sim ~n_ops:ops
                      ~rate_ops_per_s:rate ~discipline ~seed:(seed + 3)
                      ~batch ~batch_wait_ns:batch_wait exec
                  in
                  Fmt.pr
                    "open loop batched (%s): offered %.1f, achieved %.1f \
                     ops per simulated second@."
                    (W.Arrival.discipline_name s.W.Batch.discipline)
                    s.W.Batch.offered_ops_per_s
                    s.W.Batch.throughput_ops_per_s;
                  Fmt.pr
                    "  %d batches, mean fill %.2f of cap %d (wait cap %d \
                     ns), backlog peak %d@."
                    s.W.Batch.batches s.W.Batch.mean_batch
                    s.W.Batch.batch_cap s.W.Batch.batch_wait_ns
                    s.W.Batch.max_backlog;
                  let bv c = Fpb_obs.Counter.value c in
                  Fmt.pr
                    "  shared nodes %d, dup probes %d, pipeline stalls %d@."
                    (bv Batch_stats.shared_nodes)
                    (bv Batch_stats.dup_probes)
                    (bv Batch_stats.pipeline_stalls);
                  report "latency" s.W.Batch.latency;
                  report "wait" s.W.Batch.wait_ns;
                  report "service" s.W.Batch.service_ns
              | None ->
                  let s =
                    W.Clients.run ~sim:sys.Setup.sim ~n_clients:clients
                      ~ops_per_client:(max 1 (ops / clients)) op
                  in
                  Fmt.pr
                    "closed loop: %.1f ops per simulated second, makespan %.3f s@."
                    s.W.Clients.throughput_ops_per_s
                    (float_of_int s.W.Clients.makespan_ns /. 1e9);
                  report "latency" s.W.Clients.latency
              | Some rate ->
                  let discipline =
                    if fixed then W.Arrival.Fixed else W.Arrival.Poisson
                  in
                  let s =
                    W.Arrival.run ~sim:sys.Setup.sim ~n_clients:clients
                      ~n_ops:ops ~rate_ops_per_s:rate ~discipline
                      ~seed:(seed + 3) ?deadline_ns:deadline ?admission ?retry
                      op
                  in
                  Fmt.pr
                    "open loop (%s): offered %.1f, achieved %.1f ops per \
                     simulated second, goodput %.1f@."
                    (W.Arrival.discipline_name s.W.Arrival.discipline)
                    s.W.Arrival.offered_ops_per_s
                    s.W.Arrival.throughput_ops_per_s
                    s.W.Arrival.goodput_ops_per_s;
                  Fmt.pr
                    "  completed %d (good %d), shed %d, expired %d, retries \
                     %d, dropped %d@."
                    s.W.Arrival.completed s.W.Arrival.good s.W.Arrival.shed
                    s.W.Arrival.expired s.W.Arrival.retries s.W.Arrival.dropped;
                  Fmt.pr
                    "  backlog peak %d at %.6f s; above watermark (%d) for \
                     %.6f s@."
                    s.W.Arrival.max_backlog
                    (float_of_int s.W.Arrival.backlog_peak_at_ns /. 1e9)
                    s.W.Arrival.backlog_watermark
                    (float_of_int s.W.Arrival.time_above_watermark_ns /. 1e9);
                  report "latency" s.W.Arrival.latency;
                  report "queue" s.W.Arrival.queue_ns;
                  report "service" s.W.Arrival.service_ns);
              Index_sig.check idx;
              let p = Fpb_storage.Buffer_pool.stats sys.Setup.pool in
              let v c = Fpb_obs.Counter.value c in
              let hits = v p.Fpb_storage.Buffer_pool.hits
              and misses = v p.Fpb_storage.Buffer_pool.misses in
              let r, u, i, s, m = W.Mix.drawn_counts gen in
              Fmt.pr
                "ops drawn: %d read, %d update, %d insert, %d scan, %d rmw; \
                 pool hit rate %.1f%%@."
                r u i s m
                (100. *. float_of_int hits
                /. float_of_int (max 1 (hits + misses)))
            with
            | () -> `Ok ()
            | exception Fpb_storage.Buffer_pool.Overloaded { page; scans } ->
                (* typed refusal from the storage layer: diagnose and
                   report the partial run instead of a backtrace *)
                let p = Fpb_storage.Buffer_pool.stats sys.Setup.pool in
                let v c = Fpb_obs.Counter.value c in
                Fmt.pr
                  "overloaded: the %d-frame pool refused page %d after %d \
                   victim scans (every frame pinned)@."
                  pool_pages page scans;
                Fmt.pr
                  "partial stats: %d committed ops; pool.overloaded %d, \
                   hits %d, misses %d@."
                  !committed
                  (v p.Fpb_storage.Buffer_pool.overloaded)
                  (v p.Fpb_storage.Buffer_pool.hits)
                  (v p.Fpb_storage.Buffer_pool.misses);
                `Error
                  ( false,
                    "buffer pool overloaded — raise --pool, or shed load \
                     with --policy/--deadline" ))
  in
  Cmd.v
    (Cmd.info "ycsb"
       ~doc:
         "Run one YCSB-style workload (mix x distribution) against the \
          disk-first fpB+tree through the buffer pool and WAL, closed loop \
          or — with --rate — open loop (Poisson arrivals, latency measured \
          from arrival, so overload shows up as queueing delay); --batch N \
          swaps the open-loop driver for a size-or-timeout batch server \
          that serves reads as batched level-wise descents")
    Term.(
      ret
        (const run $ mix $ dist $ theta $ clients $ keys $ ops $ tiny $ rate
       $ fixed $ pool $ seed $ deadline $ policy $ qcap $ retry $ retry_budget
       $ retry_base $ batch $ batch_wait))

let demo_cmd =
  let run () =
    let open Fpb_simmem in
    let sim = Sim.create () in
    let pool = Fpb_core.Fpb.make_pool ~page_size:16384 ~n_disks:4 ~capacity:10_000 sim in
    let t = Fpb_core.Fpb.Disk_first.create pool in
    let pairs = Array.init 100_000 (fun i -> (2 * i, i)) in
    Fpb_core.Fpb.Disk_first.bulkload t pairs ~fill:0.8;
    Fmt.pr "bulkloaded 100000 keys: height=%d pages=%d@."
      (Fpb_core.Fpb.Disk_first.height t)
      (Fpb_core.Fpb.Disk_first.page_count t);
    Fmt.pr "search 123456 -> %a@." Fmt.(option ~none:(any "not found") int)
      (Fpb_core.Fpb.Disk_first.search t 123456);
    ignore (Fpb_core.Fpb.Disk_first.insert t 123457 42);
    Fmt.pr "inserted 123457; search -> %a@."
      Fmt.(option ~none:(any "not found") int)
      (Fpb_core.Fpb.Disk_first.search t 123457);
    let n =
      Fpb_core.Fpb.Disk_first.range_scan t ~start_key:1000 ~end_key:2000
        (fun _ _ -> ())
    in
    Fmt.pr "range scan [1000, 2000] -> %d entries@." n;
    Fmt.pr "simulated cycles so far: %d@." (Sim.now sim)
  in
  Cmd.v (Cmd.info "demo" ~doc:"Two-minute tour") Term.(const run $ const ())

let () =
  let doc = "Fractal Prefetching B+-Trees (SIGMOD 2002) reproduction" in
  exit
    (Cmd.eval
       (Cmd.group (Cmd.info "fpb" ~doc)
          [ tune_cmd; list_cmd; exp_cmd; check_cmd; crashtest_cmd; chaos_cmd;
            ycsb_cmd; demo_cmd ]))
