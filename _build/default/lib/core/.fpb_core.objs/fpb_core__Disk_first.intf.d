lib/core/disk_first.mli: Fpb_storage
