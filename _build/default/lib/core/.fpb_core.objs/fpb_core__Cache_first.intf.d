lib/core/cache_first.mli: Fpb_storage
