lib/core/fpb.ml: Buffer_pool Cache_first Disk_first Disk_model Fpb_simmem Fpb_storage Jump_array Page_store Sim
