lib/core/disk_first.ml: Array Array_search Buffer_pool Fmt Fpb_btree_common Fpb_simmem Fpb_storage Key Layout List Mem Page_store Sim Tuning
