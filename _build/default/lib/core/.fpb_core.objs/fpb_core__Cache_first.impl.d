lib/core/cache_first.ml: Array Array_search Buffer_pool Fmt Fpb_btree_common Fpb_simmem Fpb_storage Hashtbl Jump_array Key Layout List Mem Option Page_store Sim Tuning
