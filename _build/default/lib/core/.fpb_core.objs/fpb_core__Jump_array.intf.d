lib/core/jump_array.mli: Fpb_storage
