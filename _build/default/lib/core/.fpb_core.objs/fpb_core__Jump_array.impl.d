lib/core/jump_array.ml: Array Buffer_pool Fmt Fpb_simmem Fpb_storage List Mem Page_store Sim
