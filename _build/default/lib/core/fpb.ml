(* Front-end for the fpB+-Tree library.

   Quickstart:
   {[
     let sim = Fpb_simmem.Sim.create () in
     let pool = Fpb.make_pool ~page_size:16384 ~n_disks:10 ~capacity:50_000 sim in
     let index = Fpb.Disk_first.create pool in
     Fpb.Disk_first.bulkload index pairs ~fill:0.8;
     Fpb.Disk_first.search index 42
   ]}

   [Disk_first] is the recommended variant (minimal I/O impact); use
   [Cache_first] when the working set is memory-resident (paper,
   Section 5). *)

open Fpb_simmem
open Fpb_storage
module Disk_first = Disk_first
module Cache_first = Cache_first
module Jump_array = Jump_array

(* A buffer pool over a fresh page store and disk farm: the usual way to
   host one index. *)
let make_pool ?(n_prefetchers = 8) ~page_size ~n_disks ~capacity sim =
  let store = Page_store.create ~page_size ~n_disks in
  let disks =
    Disk_model.create
      ~transfer_ns:(Disk_model.transfer_ns_of_page_size page_size)
      ~n_disks sim.Sim.clock
  in
  Buffer_pool.create ~n_prefetchers ~capacity sim store disks
