(* Figure 10 (search performance vs. tree size, per page size) and
   Figure 12 (search performance vs. bulkload factor). *)

let search_cycles scale ~page_size ~fill ~n kind =
  let rng = Fpb_workload.Prng.create 2002 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let probes = Fpb_workload.Keygen.probes rng pairs (Scale.ops scale) in
  let sys, idx = Run.fresh ~page_size kind pairs ~fill in
  (Setup.measure_cycles sys (fun () -> Run.searches idx probes)).Setup.total

(* Figure 10: one table per page size; rows = tree sizes, columns = indexes
   (execution time in Mcycles for 2000 searches, 100% bulkload). *)
let fig10 scale =
  List.map
    (fun page_size ->
      let rows =
        List.map
          (fun n ->
            string_of_int n
            :: List.map
                 (fun kind ->
                   Table.cell_mcycles
                     (search_cycles scale ~page_size ~fill:1.0 ~n kind))
                 Setup.all_kinds)
          (Scale.entry_counts scale)
      in
      Table.make
        ~id:(Printf.sprintf "fig10-%dKB" (page_size / 1024))
        ~title:
          (Printf.sprintf
             "Search time (Mcycles, %d searches), page size %dKB, 100%% full"
             (Scale.ops scale) (page_size / 1024))
        ~header:("entries" :: List.map Setup.kind_name Setup.all_kinds)
        rows)
    Scale.page_sizes

(* Figure 12: 16KB pages, [Scale.base_entries] keys, bulkload factor
   60..100%. *)
let fig12 scale =
  let n = Scale.base_entries scale in
  let rows =
    List.map
      (fun fill ->
        Printf.sprintf "%.0f%%" (fill *. 100.)
        :: List.map
             (fun kind ->
               Table.cell_mcycles
                 (search_cycles scale ~page_size:16384 ~fill ~n kind))
             Setup.all_kinds)
      [ 0.6; 0.7; 0.8; 0.9; 1.0 ]
  in
  Table.make ~id:"fig12"
    ~title:
      (Printf.sprintf
         "Search time vs. bulkload factor (Mcycles, %d searches, %d keys, 16KB)"
         (Scale.ops scale) n)
    ~header:("bulkload" :: List.map Setup.kind_name Setup.all_kinds)
    rows
