(* Extension experiment: skewed access.  The paper's workloads are
   uniform; OLTP access is usually Zipf-like, which keeps the hot upper
   levels cache-resident and shrinks everyone's stall time.  This checks
   that the fpB+-Tree advantage survives (and how it shrinks) as skew
   grows. *)

let run scale =
  let n = Scale.base_entries scale in
  let ops = Scale.ops scale in
  let rows =
    List.map
      (fun theta ->
        let cells =
          List.map
            (fun kind ->
              let rng = Fpb_workload.Prng.create 1212 in
              let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
              let probes =
                if theta = 0. then Fpb_workload.Keygen.probes rng pairs ops
                else Fpb_workload.Keygen.zipf_probes rng pairs ops ~theta
              in
              let sys, idx = Run.fresh ~page_size:16384 kind pairs ~fill:1.0 in
              (Setup.measure_cycles sys (fun () -> Run.searches idx probes)).Setup.total)
            [ Setup.Disk_opt; Setup.Disk_first; Setup.Cache_first ]
        in
        match cells with
        | [ b; df; cf ] ->
            [
              (if theta = 0. then "uniform" else Printf.sprintf "zipf %.2f" theta);
              Table.cell_mcycles b;
              Table.cell_mcycles df;
              Table.cell_mcycles cf;
              Table.cell_f (float_of_int b /. float_of_int df);
            ]
        | _ -> assert false)
      [ 0.; 0.5; 0.8; 0.99 ]
  in
  Table.make ~id:"ext-skew"
    ~title:
      (Printf.sprintf
         "Extension: search under skew (%d searches, %d keys, 16KB, Mcycles)" ops n)
    ~header:
      [ "distribution"; "disk-opt B+tree"; "disk-first fpB+"; "cache-first fpB+";
        "df speedup" ]
    rows
