(* All experiments by id.  Each entry regenerates one table or figure of
   the paper; see DESIGN.md for the per-experiment index. *)

type entry = { id : string; describes : string; run : Scale.t -> Table.t list }

let all : entry list =
  [
    { id = "table1"; describes = "Table 1: simulation parameters";
      run = (fun _ -> [ Exp_config.table1 () ]) };
    { id = "table2"; describes = "Table 2: optimal width selections";
      run = (fun _ -> [ Exp_config.table2 () ]) };
    { id = "fig3b"; describes = "Figure 3(b): search breakdown, disk-optimized vs pB+tree";
      run = (fun s -> [ Exp_fig3.run s ]) };
    { id = "fig10"; describes = "Figure 10: search time vs tree size, per page size";
      run = Exp_search.fig10 };
    { id = "fig11"; describes = "Figure 11: node width sweep (16KB)";
      run = Exp_width.fig11 };
    { id = "fig12"; describes = "Figure 12: search time vs bulkload factor";
      run = (fun s -> [ Exp_search.fig12 s ]) };
    { id = "fig13"; describes = "Figure 13: insertion performance";
      run = Exp_update.fig13 };
    { id = "fig14"; describes = "Figure 14: deletion performance";
      run = Exp_update.fig14 };
    { id = "fig15"; describes = "Figure 15: range scan cache performance";
      run = (fun s -> [ Exp_scan_cache.fig15 s ]) };
    { id = "fig16"; describes = "Figure 16: space overhead";
      run = Exp_space.fig16 };
    { id = "fig17"; describes = "Figure 17: search I/O (buffer misses)";
      run = Exp_search_io.fig17 };
    { id = "fig18a"; describes = "Figure 18(a): scan I/O time vs range size";
      run = (fun s -> [ Exp_scan_io.fig18a s ]) };
    { id = "fig18bc"; describes = "Figure 18(b,c): scan I/O vs #disks + speedups";
      run = (fun s -> [ Exp_scan_io.fig18bc s ]) };
    { id = "fig19"; describes = "Figure 19: DB2-style jump-pointer prefetching";
      run = (fun s -> [ Exp_db2.fig19a s; Exp_db2.fig19b s ]) };
    { id = "ablation"; describes = "Ablations: jump pointers, leaf prefetch, distance, overshoot";
      run = Exp_ablation.run };
    { id = "ext-varkey"; describes = "Extension: variable-length keys (slotted nodes)";
      run = (fun s -> [ Exp_varkey.run s ]) };
    { id = "ext-skew"; describes = "Extension: Zipf-skewed search workloads";
      run = (fun s -> [ Exp_skew.run s ]) };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let run_and_print ppf scale e =
  let t0 = Unix.gettimeofday () in
  let tables = e.run scale in
  List.iter (Table.print ppf) tables;
  Fmt.pf ppf "(%s finished in %.1fs wall clock)@." e.id (Unix.gettimeofday () -. t0);
  tables
