(* Table 1 (simulation parameters) and Table 2 (optimal width selections). *)

open Fpb_simmem

let table1 () =
  let c = Config.default in
  Table.make ~id:"table1" ~title:"Simulation parameters"
    ~header:[ "parameter"; "value" ]
    [
      [ "clock rate"; "1 GHz (1 cycle = 1 ns)" ];
      [ "cache line size"; Printf.sprintf "%d bytes" c.Config.line_size ];
      [ "L1 data cache"; Printf.sprintf "%d KB, %d-way" (c.l1_size / 1024) c.l1_assoc ];
      [ "L2 unified cache"; Printf.sprintf "%d MB, direct-mapped" (c.l2_size / 1024 / 1024) ];
      [ "L1-to-L2 miss latency"; Printf.sprintf "%d cycles" c.l2_latency ];
      [ "L1-to-memory latency (T1)"; Printf.sprintf "%d cycles" c.mem_latency ];
      [ "memory access gap (Tnext)"; Printf.sprintf "%d cycles" c.mem_gap ];
      [ "miss handlers"; string_of_int c.miss_handlers ];
    ]

let table2 () =
  let open Fpb_btree_common in
  let rows =
    List.map
      (fun page_size ->
        let df = Tuning.disk_first ~page_size () in
        let cf = Tuning.cache_first ~page_size () in
        let mi = Tuning.micro_index ~page_size () in
        [
          Printf.sprintf "%dKB" (page_size / 1024);
          Printf.sprintf "%dB" (df.Tuning.df_w * 64);
          Printf.sprintf "%dB" (df.df_x * 64);
          string_of_int df.df_fanout;
          Printf.sprintf "%.2f" df.df_ratio;
          Printf.sprintf "%dB" (cf.Tuning.cf_w * 64);
          string_of_int cf.cf_fanout;
          Printf.sprintf "%.2f" cf.cf_ratio;
          Printf.sprintf "%dB" (mi.Tuning.mi_sub_lines * 64);
          string_of_int mi.mi_fanout;
          Printf.sprintf "%.2f" mi.mi_ratio;
        ])
      Scale.page_sizes
  in
  Table.make ~id:"table2"
    ~title:"Optimal width selections (4B keys, T1=150, Tnext=10)"
    ~header:
      [
        "page"; "df nonleaf"; "df leaf"; "df fanout"; "df cost";
        "cf node"; "cf fanout"; "cf cost"; "mi sub"; "mi fanout"; "mi cost";
      ]
    rows
