(* Figure 13 (insertion performance) and Figure 14 (deletion performance):
   2000 random operations after bulkload. *)

let cycles scale ~page_size ~fill ~n kind ~op =
  let rng = Fpb_workload.Prng.create 3003 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let sys, idx = Run.fresh ~page_size kind pairs ~fill in
  let batch =
    match op with
    | `Insert -> Fpb_workload.Keygen.random_keys rng (Scale.ops scale)
    | `Delete -> Fpb_workload.Keygen.probes rng pairs (Scale.ops scale)
  in
  let f () =
    match op with
    | `Insert -> Run.inserts idx batch
    | `Delete -> Run.deletes idx batch
  in
  (Setup.measure_cycles sys f).Setup.total

let by_fill scale ~op ~id ~title =
  let n = Scale.base_entries scale in
  let rows =
    List.map
      (fun fill ->
        Printf.sprintf "%.0f%%" (fill *. 100.)
        :: List.map
             (fun kind ->
               Table.cell_mcycles (cycles scale ~page_size:16384 ~fill ~n kind ~op))
             Setup.all_kinds)
      [ 0.6; 0.7; 0.8; 0.9; 1.0 ]
  in
  Table.make ~id ~title:(Printf.sprintf "%s (%d keys, 16KB)" title n)
    ~header:("bulkload" :: List.map Setup.kind_name Setup.all_kinds)
    rows

let by_entries scale ~op ~id ~title =
  let rows =
    List.map
      (fun n ->
        string_of_int n
        :: List.map
             (fun kind ->
               Table.cell_mcycles
                 (cycles scale ~page_size:16384 ~fill:1.0 ~n kind ~op))
             Setup.all_kinds)
      (Scale.entry_counts scale)
  in
  Table.make ~id ~title:(title ^ " (16KB, 100% full)")
    ~header:("entries" :: List.map Setup.kind_name Setup.all_kinds)
    rows

let by_page_size scale ~op ~fill ~id ~title =
  let n = Scale.base_entries scale in
  let rows =
    List.map
      (fun page_size ->
        Printf.sprintf "%dKB" (page_size / 1024)
        :: List.map
             (fun kind -> Table.cell_mcycles (cycles scale ~page_size ~fill ~n kind ~op))
             Setup.all_kinds)
      Scale.page_sizes
  in
  Table.make ~id
    ~title:(Printf.sprintf "%s (%d keys, %.0f%% full)" title n (fill *. 100.))
    ~header:("page size" :: List.map Setup.kind_name Setup.all_kinds)
    rows

let fig13 scale =
  [
    by_fill scale ~op:`Insert ~id:"fig13a"
      ~title:"Insertion time vs. bulkload factor (Mcycles, 2000 inserts)";
    by_entries scale ~op:`Insert ~id:"fig13b"
      ~title:"Insertion time vs. tree size (Mcycles, 2000 inserts)";
    by_page_size scale ~op:`Insert ~fill:1.0 ~id:"fig13c"
      ~title:"Insertion time vs. page size (Mcycles, 2000 inserts)";
    by_page_size scale ~op:`Insert ~fill:0.7 ~id:"fig13d"
      ~title:"Insertion time vs. page size (Mcycles, 2000 inserts)";
  ]

let fig14 scale =
  [
    by_fill scale ~op:`Delete ~id:"fig14a"
      ~title:"Deletion time vs. bulkload factor (Mcycles, 2000 deletes)";
    by_page_size scale ~op:`Delete ~fill:1.0 ~id:"fig14b"
      ~title:"Deletion time vs. page size (Mcycles, 2000 deletes)";
  ]
