lib/experiments/table.ml: Buffer Fmt List Printf String
