lib/experiments/exp_skew.ml: Fpb_workload List Printf Run Scale Setup Table
