lib/experiments/exp_search.ml: Fpb_workload List Printf Run Scale Setup Table
