lib/experiments/run.ml: Array Fpb_btree_common Fpb_workload Fun Index_sig Seq Setup
