lib/experiments/exp_scan_cache.ml: Array Fpb_btree_common Fpb_workload List Printf Run Scale Setup Table
