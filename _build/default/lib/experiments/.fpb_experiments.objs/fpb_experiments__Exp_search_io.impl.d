lib/experiments/exp_search_io.ml: Fpb_workload List Printf Run Scale Setup Table
