lib/experiments/exp_scan_io.ml: Array Fpb_btree_common Fpb_storage Fpb_workload Index_sig List Printf Run Scale Setup Table
