lib/experiments/exp_db2.ml: Fpb_dbsim List Scale Table
