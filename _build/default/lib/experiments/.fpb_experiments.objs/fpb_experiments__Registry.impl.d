lib/experiments/registry.ml: Exp_ablation Exp_config Exp_db2 Exp_fig3 Exp_scan_cache Exp_scan_io Exp_search Exp_search_io Exp_skew Exp_space Exp_update Exp_varkey Exp_width Fmt List Scale Table Unix
