lib/experiments/exp_width.ml: Fpb_btree_common Fpb_core Fpb_workload Index_sig Layout List Printf Run Scale Setup Table Tuning
