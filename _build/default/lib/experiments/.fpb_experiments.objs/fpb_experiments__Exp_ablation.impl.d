lib/experiments/exp_ablation.ml: Array Buffer_pool Disk_model Fpb_btree_common Fpb_core Fpb_storage Fpb_workload Fun Index_sig List Printf Run Scale Seq Setup Table
