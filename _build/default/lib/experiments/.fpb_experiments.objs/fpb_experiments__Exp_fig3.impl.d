lib/experiments/exp_fig3.ml: Array Fpb_pbtree Fpb_simmem Fpb_workload Printf Run Scale Setup Sim Stats Table
