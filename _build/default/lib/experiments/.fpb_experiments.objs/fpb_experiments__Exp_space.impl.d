lib/experiments/exp_space.ml: Fpb_btree_common Fpb_workload Index_sig List Printf Run Scale Setup Table
