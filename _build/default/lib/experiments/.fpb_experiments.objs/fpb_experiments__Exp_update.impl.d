lib/experiments/exp_update.ml: Fpb_workload List Printf Run Scale Setup Table
