lib/experiments/exp_config.ml: Config Fpb_btree_common Fpb_simmem List Printf Scale Table Tuning
