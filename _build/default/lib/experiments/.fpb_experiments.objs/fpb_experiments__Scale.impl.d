lib/experiments/scale.ml:
