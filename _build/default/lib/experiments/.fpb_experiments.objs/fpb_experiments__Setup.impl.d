lib/experiments/setup.ml: Buffer_pool Clock Disk_model Fpb_btree_common Fpb_core Fpb_disk_btree Fpb_micro_index Fpb_simmem Fpb_storage Index_sig Page_store Sim Stats
