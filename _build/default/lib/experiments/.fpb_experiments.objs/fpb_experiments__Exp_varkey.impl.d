lib/experiments/exp_varkey.ml: Array Char Fpb_varkey Fpb_workload Hashtbl List Printf Scale Setup String Table
