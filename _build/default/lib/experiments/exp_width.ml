(* Figure 11: search performance across node-width choices (16KB pages),
   validating the tuner's selections.  For disk-first trees the nonleaf
   width w varies and the leaf width x is chosen to maximise page fan-out
   given w; for cache-first trees the uniform node width varies. *)

open Fpb_btree_common

(* Leaf width maximising page fan-out for a given nonleaf width (a
   two-level in-page tree with restricted root, as the tuner builds). *)
let df_best_leaf_for ~page_size w =
  let line_size = 64 in
  let usable = (page_size / line_size) - 1 in
  let fn = Layout.df_nonleaf_capacity ~line_size w in
  let best_x = ref 1 and best_fanout = ref 0 in
  for x = 1 to min 32 usable do
    let fl = Layout.df_leaf_capacity ~line_size x in
    let r = min fn ((usable - w) / x) in
    let fanout = r * fl in
    if fanout > !best_fanout then begin
      best_fanout := fanout;
      best_x := x
    end
  done;
  !best_x

let search_cycles_custom ~make_tree ~n ~ops =
  let rng = Fpb_workload.Prng.create 4004 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let probes = Fpb_workload.Keygen.probes rng pairs ops in
  let sys = Setup.make ~page_size:16384 () in
  let idx = make_tree sys in
  Index_sig.bulkload idx pairs ~fill:1.0;
  (Setup.measure_cycles sys (fun () -> Run.searches idx probes)).Setup.total

let fig11 scale =
  let ops = Scale.ops scale in
  let sizes = Scale.entry_counts scale in
  let df_selected = Tuning.disk_first ~page_size:16384 () in
  let df_rows =
    List.map
      (fun w ->
        let x =
          if w = df_selected.Tuning.df_w then df_selected.df_x
          else df_best_leaf_for ~page_size:16384 w
        in
        let label =
          Printf.sprintf "nonleaf=%dB leaf=%dB%s" (w * 64) (x * 64)
            (if w = df_selected.Tuning.df_w then " (selected)" else "")
        in
        label
        :: List.map
             (fun n ->
               let make_tree sys =
                 Index_sig.Instance
                   ( (module Fpb_core.Disk_first),
                     Fpb_core.Disk_first.create_custom sys.Setup.pool ~w ~x )
               in
               Table.cell_mcycles (search_cycles_custom ~make_tree ~n ~ops))
             sizes)
      [ 1; 2; 3; 4; 5; 6; 7; 8 ]
  in
  let cf_selected = Tuning.cache_first ~page_size:16384 () in
  let cf_rows =
    List.map
      (fun w ->
        let label =
          Printf.sprintf "node=%dB%s" (w * 64)
            (if w = cf_selected.Tuning.cf_w then " (selected)" else "")
        in
        label
        :: List.map
             (fun n ->
               let make_tree sys =
                 Index_sig.Instance
                   ( (module Fpb_core.Cache_first),
                     Fpb_core.Cache_first.create_custom sys.Setup.pool ~w )
               in
               Table.cell_mcycles (search_cycles_custom ~make_tree ~n ~ops))
             sizes)
      [ 2; 4; 8; 9; 11; 16 ]
  in
  let header = "widths" :: List.map string_of_int sizes in
  [
    Table.make ~id:"fig11a"
      ~title:"Disk-first fpB+tree search time by nonleaf width (Mcycles, 16KB)"
      ~header df_rows;
    Table.make ~id:"fig11b"
      ~title:"Cache-first fpB+tree search time by node width (Mcycles, 16KB)"
      ~header cf_rows;
  ]
