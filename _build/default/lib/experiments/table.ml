(* Result tables for the experiment harness: a title, column headers and
   string cells, printed aligned or as CSV. *)

type t = { id : string; title : string; header : string list; rows : string list list }

let make ~id ~title ~header rows = { id; title; header; rows }

let cell_f f = Printf.sprintf "%.2f" f
let cell_i = string_of_int

(* Millions of cycles, matching the paper's plots. *)
let cell_mcycles c = Printf.sprintf "%.3f" (float_of_int c /. 1e6)
let cell_ms ns = Printf.sprintf "%.2f" (float_of_int ns /. 1e6)
let cell_s ns = Printf.sprintf "%.3f" (float_of_int ns /. 1e9)

let print ppf t =
  let all = t.header :: t.rows in
  let ncols = List.fold_left (fun a r -> max a (List.length r)) 0 all in
  let width c =
    List.fold_left
      (fun a r -> max a (try String.length (List.nth r c) with _ -> 0))
      0 all
  in
  let widths = List.init ncols width in
  let pr_row r =
    List.iteri
      (fun c cell ->
        let w = List.nth widths c in
        if c = 0 then Fmt.pf ppf "%-*s" w cell else Fmt.pf ppf "  %*s" w cell)
      r;
    Fmt.pf ppf "@."
  in
  Fmt.pf ppf "@.== %s: %s ==@." t.id t.title;
  pr_row t.header;
  pr_row (List.map (fun w -> String.make w '-') widths);
  List.iter pr_row t.rows

let csv t =
  let b = Buffer.create 256 in
  let row r = Buffer.add_string b (String.concat "," r ^ "\n") in
  row t.header;
  List.iter row t.rows;
  Buffer.contents b
