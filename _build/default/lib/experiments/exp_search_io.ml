(* Figure 17: search I/O — buffer-pool misses for 2000 random searches on
   cold pools, trees of [Scale.io_entries] keys: (a) after bulkload,
   (b) mature trees. *)

let fig17 scale =
  let n = Scale.io_entries scale in
  let rng = Fpb_workload.Prng.create 7007 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let probes = Fpb_workload.Keygen.probes rng pairs (Scale.ops scale) in
  let kinds = [ Setup.Disk_opt; Setup.Disk_first; Setup.Cache_first ] in
  let table ~mature ~id ~title =
    let rows =
      List.map
        (fun page_size ->
          Printf.sprintf "%dKB" (page_size / 1024)
          :: List.map
               (fun kind ->
                 let sys, idx =
                   if mature then
                     Run.fresh_mature ~page_size ~seed:70 kind pairs
                       ~bulk_frac:0.1 ~fill:1.0
                   else Run.fresh ~page_size kind pairs ~fill:1.0
                 in
                 let misses =
                   Setup.measure_io_misses sys (fun () -> Run.searches idx probes)
                 in
                 Printf.sprintf "%.3f"
                   (float_of_int misses /. float_of_int (Scale.ops scale)))
               kinds)
        Scale.page_sizes
    in
    Table.make ~id ~title
      ~header:("page size" :: List.map Setup.kind_name kinds)
      rows
  in
  [
    table ~mature:false ~id:"fig17a"
      ~title:
        (Printf.sprintf "Search I/O: page reads per search after bulkload (%d keys, cold pool)" n);
    table ~mature:true ~id:"fig17b"
      ~title:
        (Printf.sprintf "Search I/O: page reads per search, mature trees (%d keys, cold pool)" n);
  ]
