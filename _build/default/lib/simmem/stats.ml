(* Execution-time statistics for the cache simulation.  Busy cycles are
   charged explicitly by the cost model; stall cycles are charged by the
   cache simulator whenever an access must wait for a lower level of the
   hierarchy.  Execution time = busy + stall, matching the breakdown of the
   paper's Figure 3(b) (their "other stalls" come from the out-of-order
   pipeline front end, which we do not model). *)

type t = {
  mutable busy : int;  (* cycles doing useful work *)
  mutable stall : int;  (* cycles stalled on data cache misses *)
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable mem_misses : int;  (* demand accesses serviced from memory *)
  mutable prefetch_issued : int;
  mutable prefetch_useful : int;  (* prefetched lines later accessed *)
  mutable prefetch_waits : int;  (* issue stalls: all miss handlers busy *)
}

let create () =
  {
    busy = 0;
    stall = 0;
    l1_hits = 0;
    l2_hits = 0;
    mem_misses = 0;
    prefetch_issued = 0;
    prefetch_useful = 0;
    prefetch_waits = 0;
  }

let reset t =
  t.busy <- 0;
  t.stall <- 0;
  t.l1_hits <- 0;
  t.l2_hits <- 0;
  t.mem_misses <- 0;
  t.prefetch_issued <- 0;
  t.prefetch_useful <- 0;
  t.prefetch_waits <- 0

type snapshot = { s_busy : int; s_stall : int; s_mem_misses : int }

let snapshot t = { s_busy = t.busy; s_stall = t.stall; s_mem_misses = t.mem_misses }

(* Deltas since an earlier snapshot: (busy, stall, mem_misses). *)
let since t s = (t.busy - s.s_busy, t.stall - s.s_stall, t.mem_misses - s.s_mem_misses)

let total t = t.busy + t.stall

let pp ppf t =
  Fmt.pf ppf
    "busy=%d stall=%d total=%d | L1hit=%d L2hit=%d miss=%d | pf=%d useful=%d waits=%d"
    t.busy t.stall (total t) t.l1_hits t.l2_hits t.mem_misses t.prefetch_issued
    t.prefetch_useful t.prefetch_waits
