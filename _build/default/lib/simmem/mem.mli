(** Typed access to simulated memory regions.

    A region is a byte buffer (normally one buffer-pool frame) plus the
    base address it occupies in the simulated physical address space.
    The charged accessors drive the cache simulator and the busy-cycle
    cost model; the [peek_*]/[poke_*] variants bypass both and exist for
    invariant checkers, test oracles and debug printers.

    All multi-byte values are little-endian. *)

type region = { bytes : Bytes.t; base : int }

val make : bytes:Bytes.t -> base:int -> region
val length : region -> int

(** {1 Charged access} *)

val read_u8 : Sim.t -> region -> int -> int
val read_u16 : Sim.t -> region -> int -> int
val read_i32 : Sim.t -> region -> int -> int
val write_u8 : Sim.t -> region -> int -> int -> unit
val write_u16 : Sim.t -> region -> int -> int -> unit
val write_i32 : Sim.t -> region -> int -> int -> unit

(** Bulk copy between (possibly identical) regions; touches every source
    and destination line and charges copy throughput, so array-shift
    data movement costs what the paper says it costs. *)
val blit : Sim.t -> region -> int -> region -> int -> int -> unit

val fill_zero : Sim.t -> region -> int -> int -> unit

(** Software prefetch of [len] bytes at [off]: one busy cycle per prefetch
    instruction issued, lines enter the miss pipeline. *)
val prefetch : Sim.t -> region -> off:int -> len:int -> unit

(** {1 Uncharged access (checkers and oracles only)} *)

val peek_u8 : region -> int -> int
val peek_u16 : region -> int -> int
val peek_i32 : region -> int -> int
val poke_u8 : region -> int -> int -> unit
val poke_u16 : region -> int -> int -> unit
val poke_i32 : region -> int -> int -> unit
