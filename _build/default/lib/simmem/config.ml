(* Hardware parameters of the simulated memory hierarchy (paper, Table 1).
   All latencies are in cycles; the simulated clock runs at 1 GHz so one
   cycle is one nanosecond. *)

type t = {
  line_size : int;  (* cache line size in bytes; power of two *)
  l1_size : int;  (* primary data cache capacity in bytes *)
  l1_assoc : int;  (* primary data cache associativity *)
  l2_size : int;  (* unified secondary cache capacity in bytes *)
  l2_latency : int;  (* primary-to-secondary miss latency, cycles *)
  mem_latency : int;  (* primary-to-memory miss latency (T1), cycles *)
  mem_gap : int;  (* gap between pipelined memory accesses (Tnext) *)
  miss_handlers : int;  (* max outstanding data misses/prefetches *)
}

(* The Compaq ES40-like configuration used throughout the paper. *)
let default =
  {
    line_size = 64;
    l1_size = 64 * 1024;
    l1_assoc = 2;
    l2_size = 2 * 1024 * 1024;
    l2_latency = 15;
    mem_latency = 150;
    mem_gap = 10;
    miss_handlers = 32;
  }

let line_shift t =
  let rec go n shift = if n <= 1 then shift else go (n lsr 1) (shift + 1) in
  go t.line_size 0

let pp ppf t =
  Fmt.pf ppf
    "line=%dB L1=%dKB/%d-way L2=%dKB T1=%d Tnext=%d L2lat=%d handlers=%d"
    t.line_size (t.l1_size / 1024) t.l1_assoc (t.l2_size / 1024) t.mem_latency
    t.mem_gap t.l2_latency t.miss_handlers
