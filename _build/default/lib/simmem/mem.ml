(* Typed access to simulated memory regions.

   A region is a byte buffer (normally one buffer-pool frame) plus the base
   address it occupies in the simulated physical address space.  The charged
   accessors drive the cache simulator and the busy-cycle cost model; the
   [peek_*]/[poke_*] variants bypass both and exist for invariant checkers,
   test oracles and debug printers, which must not perturb the measured
   execution.

   All multi-byte values are little-endian.  Layouts keep values naturally
   aligned, so a single value never straddles a cache line, but the charged
   accessors handle straddling correctly anyway. *)

type region = { bytes : Bytes.t; base : int }

let make ~bytes ~base = { bytes; base }
let length r = Bytes.length r.bytes

let touch (sim : Sim.t) r off len =
  Sim.charge_busy sim sim.cost.Cost_model.c_access;
  Cache.access_range sim.cache (r.base + off) len

(* Charged reads *)

let read_u8 sim r off =
  touch sim r off 1;
  Char.code (Bytes.get r.bytes off)

let read_u16 sim r off =
  touch sim r off 2;
  Bytes.get_uint16_le r.bytes off

let read_i32 sim r off =
  touch sim r off 4;
  Int32.to_int (Bytes.get_int32_le r.bytes off)

(* Charged writes *)

let write_u8 sim r off v =
  touch sim r off 1;
  Bytes.set r.bytes off (Char.chr (v land 0xff))

let write_u16 sim r off v =
  touch sim r off 2;
  Bytes.set_uint16_le r.bytes off v

let write_i32 sim r off v =
  touch sim r off 4;
  Bytes.set_int32_le r.bytes off (Int32.of_int v)

(* Bulk copy between (possibly identical) regions.  Charges one busy cycle
   per [move_bytes_per_cycle] bytes and touches every source and destination
   line, so that the data-movement cost of insertions into large sorted
   arrays shows up as the paper describes. *)
let blit sim src src_off dst dst_off len =
  if len > 0 then begin
    Sim.charge_busy sim (len / sim.Sim.cost.Cost_model.move_bytes_per_cycle + 1);
    Cache.access_range sim.cache (src.base + src_off) len;
    Cache.access_range sim.cache (dst.base + dst_off) len;
    Bytes.blit src.bytes src_off dst.bytes dst_off len
  end

let fill_zero sim r off len =
  if len > 0 then begin
    Sim.charge_busy sim (len / sim.Sim.cost.Cost_model.move_bytes_per_cycle + 1);
    Cache.access_range sim.cache (r.base + off) len;
    Bytes.fill r.bytes off len '\000'
  end

(* Software prefetch of [len] bytes starting at [off]; one busy cycle per
   prefetch instruction issued. *)
let prefetch sim r ~off ~len =
  let lines = Cache.lines_in sim.Sim.cache (r.base + off) len in
  Sim.charge_busy sim (lines * sim.Sim.cost.Cost_model.c_prefetch);
  Cache.prefetch_range sim.cache (r.base + off) len

(* Uncharged access, for checkers and oracles only. *)

let peek_u8 r off = Char.code (Bytes.get r.bytes off)
let peek_u16 r off = Bytes.get_uint16_le r.bytes off
let peek_i32 r off = Int32.to_int (Bytes.get_int32_le r.bytes off)
let poke_u8 r off v = Bytes.set r.bytes off (Char.chr (v land 0xff))
let poke_u16 r off v = Bytes.set_uint16_le r.bytes off v
let poke_i32 r off v = Bytes.set_int32_le r.bytes off (Int32.of_int v)
