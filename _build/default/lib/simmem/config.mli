(** Hardware parameters of the simulated memory hierarchy (paper, Table 1).
    All latencies are in cycles; the simulated clock runs at 1 GHz so one
    cycle is one nanosecond. *)

type t = {
  line_size : int;  (** cache line size in bytes; power of two *)
  l1_size : int;  (** primary data cache capacity in bytes *)
  l1_assoc : int;  (** primary data cache associativity *)
  l2_size : int;  (** unified secondary cache capacity in bytes *)
  l2_latency : int;  (** primary-to-secondary miss latency, cycles *)
  mem_latency : int;  (** primary-to-memory miss latency (T1), cycles *)
  mem_gap : int;  (** gap between pipelined memory accesses (Tnext) *)
  miss_handlers : int;  (** max outstanding data misses/prefetches *)
}

(** The Compaq ES40-like configuration used throughout the paper. *)
val default : t

(** [log2 line_size], for address-to-line arithmetic. *)
val line_shift : t -> int

val pp : Format.formatter -> t -> unit
