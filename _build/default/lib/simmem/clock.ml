(* Global simulated clock shared by the CPU/cache model and the disk model.
   Unit: nanoseconds (equivalently CPU cycles at the paper's 1 GHz). *)

type t = { mutable now : int }

let create () = { now = 0 }
let now t = t.now
let advance t dt = t.now <- t.now + dt

(* Move the clock forward to an absolute time, e.g. an I/O completion.
   Never moves backwards. *)
let advance_to t when_ = if when_ > t.now then t.now <- when_
let reset t = t.now <- 0
