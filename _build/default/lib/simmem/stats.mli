(** Execution-time statistics for the cache simulation.  Busy cycles are
    charged explicitly by the cost model; stall cycles are charged by the
    cache simulator whenever an access waits for a lower level of the
    hierarchy.  Execution time = busy + stall, matching the breakdown of
    the paper's Figure 3(b). *)

type t = {
  mutable busy : int;  (** cycles doing useful work *)
  mutable stall : int;  (** cycles stalled on data cache misses *)
  mutable l1_hits : int;
  mutable l2_hits : int;
  mutable mem_misses : int;  (** demand accesses serviced from memory *)
  mutable prefetch_issued : int;
  mutable prefetch_useful : int;  (** prefetched lines later accessed *)
  mutable prefetch_waits : int;  (** issue stalls: all miss handlers busy *)
}

val create : unit -> t
val reset : t -> unit

type snapshot

val snapshot : t -> snapshot

(** Deltas since an earlier snapshot: (busy, stall, mem_misses). *)
val since : t -> snapshot -> int * int * int

(** busy + stall. *)
val total : t -> int

val pp : Format.formatter -> t -> unit
