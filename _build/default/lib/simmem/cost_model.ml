(* Busy-cycle cost model.  The cache simulator accounts stall time; these
   constants account the instruction work between misses.  They are rough
   but only relative magnitudes matter for reproducing the paper's shapes:
   searches are dominated by per-probe comparisons, insertions into
   disk-optimized pages by data movement, and page-granularity operations by
   buffer-manager calls (the paper's Figure 3(b) notes the extra busy time
   of disk-optimized trees comes from buffer pool management). *)

type t = {
  c_access : int;  (* per typed load/store: address arithmetic + issue *)
  c_compare : int;  (* per key comparison, including branch *)
  c_node : int;  (* per tree-node visit: setup, bounds, descend *)
  c_bufcall : int;  (* per buffer-manager page lookup (hash, pin, unpin) *)
  c_prefetch : int;  (* per software prefetch instruction *)
  move_bytes_per_cycle : int;  (* throughput of bulk copies *)
  c_op : int;  (* fixed per index operation (call overhead, key setup) *)
}

let default =
  {
    c_access = 1;
    c_compare = 4;
    c_node = 20;
    c_bufcall = 150;
    c_prefetch = 1;
    move_bytes_per_cycle = 8;
    c_op = 100;
  }
