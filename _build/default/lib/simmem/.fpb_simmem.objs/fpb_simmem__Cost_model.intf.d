lib/simmem/cost_model.mli:
