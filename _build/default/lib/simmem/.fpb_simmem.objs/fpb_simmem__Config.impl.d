lib/simmem/config.ml: Fmt
