lib/simmem/sim.mli: Cache Clock Config Cost_model Stats
