lib/simmem/mem.ml: Bytes Cache Char Cost_model Int32 Sim
