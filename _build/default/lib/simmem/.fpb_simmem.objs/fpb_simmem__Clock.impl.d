lib/simmem/clock.ml:
