lib/simmem/config.mli: Format
