lib/simmem/mem.mli: Bytes Sim
