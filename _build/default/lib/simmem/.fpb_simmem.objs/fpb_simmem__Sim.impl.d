lib/simmem/sim.ml: Cache Clock Config Cost_model Stats
