lib/simmem/cache.mli: Clock Config Stats
