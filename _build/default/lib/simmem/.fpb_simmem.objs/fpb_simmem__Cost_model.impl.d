lib/simmem/cost_model.ml:
