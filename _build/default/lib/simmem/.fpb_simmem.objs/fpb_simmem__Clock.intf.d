lib/simmem/clock.mli:
