lib/simmem/stats.ml: Fmt
