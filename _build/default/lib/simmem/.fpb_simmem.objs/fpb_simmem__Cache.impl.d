lib/simmem/cache.ml: Array Clock Config Hashtbl Queue Stats
