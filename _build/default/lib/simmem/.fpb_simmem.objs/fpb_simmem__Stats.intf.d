lib/simmem/stats.mli: Format
