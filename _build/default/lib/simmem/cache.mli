(** Two-level data-cache simulator with software prefetch.

    Timing model: a demand miss to memory completes at
    [max (now + T1) (last_completion + Tnext)], so a batch of prefetches
    issued back-to-back for a w-line node costs [T1 + (w-1)*Tnext] once
    the node is accessed — the pB+-Tree cost model (paper, Section 3.1.1).

    L1 is set-associative with LRU replacement; L2 is direct-mapped.
    Stores are modeled like loads.  Software prefetches occupy one of a
    bounded number of miss handlers; issuing one when all handlers are
    busy stalls until the oldest retires. *)

type t

val create : Config.t -> Clock.t -> Stats.t -> t

(** Drop all cached lines and in-flight prefetches. *)
val flush : t -> unit

(** Demand access (load or store) to a byte address: advances the clock by
    any stall and updates the statistics. *)
val access : t -> int -> unit

(** Software prefetch of the line holding the given address; non-blocking
    unless all miss handlers are busy.  No-op on cached or in-flight
    lines. *)
val prefetch : t -> int -> unit

(** Access / prefetch every line overlapping [addr, addr+len). *)
val access_range : t -> int -> int -> unit

val prefetch_range : t -> int -> int -> unit

(** Drop cached or in-flight copies of a byte range (used when a buffer
    frame is reassigned: DMA'd contents must not produce stale hits). *)
val invalidate_range : t -> int -> int -> unit

(** Number of cache lines overlapping [addr, addr+len). *)
val lines_in : t -> int -> int -> int
