lib/workload/keygen.mli: Prng
