lib/workload/prng.mli:
