lib/workload/keygen.ml: Array Fpb_btree_common Key Prng
