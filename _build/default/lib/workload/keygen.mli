(** Key-set generation for the paper's workloads. *)

(** [bulk_pairs rng n]: n strictly increasing distinct (key, tuple-id)
    pairs spread uniformly over the 31-bit key space (jittered strides). *)
val bulk_pairs : Prng.t -> int -> (int * int) array

(** Random probe keys drawn from an existing key set (hits). *)
val probes : Prng.t -> (int * int) array -> int -> int array

(** Random keys over the whole space (insertions; mostly misses). *)
val random_keys : Prng.t -> int -> int array

(** Random (start, end) key ranges spanning [span] positions of the key
    set. *)
val ranges : Prng.t -> (int * int) array -> int -> span:int -> (int * int) array

(** Zipf-skewed probe keys over a key set: rank 1 hottest; theta in (0,1)
    controls the skew (0.99 ~ TPC-C-like). *)
val zipf_probes :
  Prng.t -> (int * int) array -> int -> theta:float -> int array
