(* Key-set generation for the paper's workloads: n distinct random keys
   over the 31-bit key space, returned sorted for bulkload.  Keys are
   jittered strides, which gives a uniform-looking distinct set in O(n)
   deterministically. *)

open Fpb_btree_common

(* Sorted distinct (key, tid) pairs; tid = key position (stable oracle). *)
let bulk_pairs rng n =
  if n <= 0 then [||]
  else begin
    let space = Key.max_key - 1 in
    let step = max 2 (space / n) in
    Array.init n (fun i ->
        let base = i * step in
        let jitter = Prng.int rng (step - 1) in
        (base + jitter, i))
  end

(* Random probe keys drawn from an existing key set (hits). *)
let probes rng pairs count =
  let n = Array.length pairs in
  Array.init count (fun _ -> fst pairs.(Prng.int rng n))

(* Random keys over the whole space (for insertions; mostly misses). *)
let random_keys rng count =
  Array.init count (fun _ -> Prng.int rng Key.max_key)

(* Random (start, end) ranges spanning [span] key positions within a
   bulkloaded key set. *)
let ranges rng pairs count ~span =
  let n = Array.length pairs in
  Array.init count (fun _ ->
      let s = Prng.int rng (max 1 (n - span)) in
      let e = min (n - 1) (s + span - 1) in
      (fst pairs.(s), fst pairs.(e)))

(* Zipf-distributed probe positions over an existing key set (rank 1 is
   hottest), via the rejection-free power-law approximation
   floor(n * u^(1/(1-theta))) for theta in (0, 1). *)
let zipf_probes rng pairs count ~theta =
  if theta <= 0. || theta >= 1. then invalid_arg "Keygen.zipf_probes: theta";
  let n = Array.length pairs in
  let expo = 1. /. (1. -. theta) in
  Array.init count (fun _ ->
      let u =
        (float_of_int (Prng.int rng 1_000_000) +. 1.) /. 1_000_001.
      in
      let rank = int_of_float (float_of_int n *. (u ** expo)) in
      fst pairs.(min (n - 1) rank))
