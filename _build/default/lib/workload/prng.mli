(** splitmix64: tiny, fast, deterministic PRNG for workload generation
    (stable across OCaml versions, unlike [Random]). *)

type t

val create : int -> t
val next : t -> int64

(** Uniform int in [0, bound); bound > 0. *)
val int : t -> int -> int

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
