(* Traditional disk-optimized B+-Tree: every node is one page holding a
   large sorted key array and a parallel pointer array (Figure 3(a)),
   searched by plain binary search — the cache-hostile baseline the paper
   starts from.  All tree-level mechanics come from
   [Fpb_btree_common.Paged_tree]. *)

open Fpb_btree_common

module Format = struct
  let name = "disk-optimized B+tree"

  type cfg = { page_size : int; fanout : int }

  let cfg_of_page_size page_size =
    { page_size; fanout = Layout.disk_fanout ~page_size }

  let fanout c = c.fanout
  let key_base _ = Layout.disk_page_header
  let ptr_base c = Layout.disk_page_header + (Key.size * c.fanout)

  let find_slot sim c r ~n ~key mode =
    let off = key_base c in
    match mode with
    | `Lower -> Array_search.lower_bound sim r ~off ~n ~key
    | `Upper -> Array_search.upper_bound sim r ~off ~n ~key

  let entries_updated _sim _c _r ~n:_ ~from:_ = ()
end

include Paged_tree.Make (Format)
