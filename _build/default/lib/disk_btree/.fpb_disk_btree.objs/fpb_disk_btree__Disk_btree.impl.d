lib/disk_btree/disk_btree.ml: Array_search Fpb_btree_common Key Layout Paged_tree
