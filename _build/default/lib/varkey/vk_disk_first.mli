(** Disk-first fpB+-Tree for variable-length keys (the extension the paper
    defers to its full version): in-page trees of slotted nodes, every
    node prefetched in full before it is searched.  Keys are byte strings
    of 1..48 bytes, ordered lexicographically; values are 4-byte tuple
    IDs.  Uses the classic n-keys/(n+1)-children convention with promotion
    at both node and page granularity. *)

type cfg = {
  page_size : int;
  page_lines : int;
  w : int;  (** nonleaf in-page node lines *)
  x : int;  (** leaf in-page node lines *)
  avg_key_len : int;
}

type t

val name : string

(** [create ~avg_key_len pool] — node widths are tuned for the expected
    key length (default 20 bytes). *)
val create : ?avg_key_len:int -> Fpb_storage.Buffer_pool.t -> t

val cfg : t -> cfg

val search : t -> string -> int option
val insert : t -> string -> int -> [ `Inserted | `Updated ]
val delete : t -> string -> bool
val range_scan : t -> start_key:string -> end_key:string -> (string -> int -> unit) -> int

(** Build from sorted unique keys (currently repeated insertion; [fill]
    is accepted for interface parity and ignored). *)
val bulkload : t -> (string * int) array -> fill:float -> unit

val height : t -> int
val page_count : t -> int

(** {1 Uncharged introspection (tests)} *)

val check : t -> unit
val iter : t -> (string -> int -> unit) -> unit
