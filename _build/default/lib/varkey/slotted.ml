(* Slotted nodes for variable-length keys (the paper defers variable-length
   keys to its full version; this is the classic slotted-page organisation
   applied at node granularity so the fpB+-Tree in-page scheme carries
   over).

   A node occupies [size] bytes at byte offset [off] of a region:
     off+0  u16 n (entries)
     off+2  u16 heap_top (offset, relative to the node, of the lowest used
            heap byte; the heap grows downward from [size])
     off+4  u16 next   off+6 u16 prev   (chain links, user-defined units)
     off+8  u16 flags (bit 0: leaf)
     off+10 u16 leftmost (nonleaf nodes: the extra "child 0" pointer of the
            classic n-keys/(n+1)-children convention, in user units)
     off+12 slot array: n x u16 entry offsets (relative to the node), in
            key order
   Entry: u8 klen | key bytes | 4B pointer (tuple ID, page ID or line).

   All charged accessors touch the lines they read and charge compare /
   copy work; [peek_*] variants are for checkers. *)

open Fpb_simmem

let header = 12
let max_key_len = 255

let o_n = 0
let o_heap = 2
let o_next = 4
let o_prev = 6
let o_flags = 8
let o_leftmost = 10

type node = { r : Mem.region; off : int; size : int }

let v sim nd field = Mem.read_u16 sim nd.r (nd.off + field)
let setv sim nd field x = Mem.write_u16 sim nd.r (nd.off + field) x
let peek nd field = Mem.peek_u16 nd.r (nd.off + field)

let init sim nd ~leaf =
  setv sim nd o_n 0;
  setv sim nd o_heap nd.size;
  setv sim nd o_next 0;
  setv sim nd o_prev 0;
  setv sim nd o_flags (if leaf then 1 else 0);
  setv sim nd o_leftmost 0

let count sim nd = v sim nd o_n
let is_leaf sim nd = v sim nd o_flags land 1 = 1

(* Bytes still available for one more entry (slot + heap). *)
let free_space sim nd =
  let n = v sim nd o_n in
  v sim nd o_heap - (header + (2 * (n + 1)))

let entry_bytes key = 1 + String.length key + 4

let slot_off nd i = nd.off + header + (2 * i)
let entry_off sim nd i = Mem.read_u16 sim nd.r (slot_off nd i)

(* Charged read of the key of entry slot [i]: touches its lines and
   charges copy throughput. *)
let key_at sim nd i =
  let e = entry_off sim nd i in
  let klen = Mem.read_u8 sim nd.r (nd.off + e) in
  Sim.charge_busy sim (1 + (klen / sim.Sim.cost.Fpb_simmem.Cost_model.move_bytes_per_cycle));
  Cache.access_range sim.Sim.cache (nd.r.Mem.base + nd.off + e + 1) klen;
  Bytes.sub_string nd.r.Mem.bytes (nd.off + e + 1) klen

let ptr_at sim nd i =
  let e = entry_off sim nd i in
  let klen = Mem.read_u8 sim nd.r (nd.off + e) in
  Mem.read_i32 sim nd.r (nd.off + e + 1 + klen)

let set_ptr_at sim nd i p =
  let e = entry_off sim nd i in
  let klen = Mem.read_u8 sim nd.r (nd.off + e) in
  Mem.write_i32 sim nd.r (nd.off + e + 1 + klen) p

(* First slot whose key is >= / > [key] (charged binary search). *)
let find sim nd ~key mode =
  let n = v sim nd o_n in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Sim.busy_compare sim;
    let k = key_at sim nd mid in
    let c = compare k key in
    let go_right = match mode with `Lower -> c < 0 | `Upper -> c <= 0 in
    if go_right then lo := mid + 1 else hi := mid
  done;
  !lo

(* Insert (key, ptr) at slot [i]; false if the node lacks space. *)
let insert_at sim nd ~i key ptr =
  if String.length key > max_key_len then invalid_arg "Slotted: key too long";
  let n = v sim nd o_n in
  let need = entry_bytes key in
  if free_space sim nd < need then false
  else begin
    let heap = v sim nd o_heap - need in
    setv sim nd o_heap heap;
    (* write the entry *)
    Mem.write_u8 sim nd.r (nd.off + heap) (String.length key);
    Sim.charge_busy sim (1 + (need / sim.Sim.cost.Fpb_simmem.Cost_model.move_bytes_per_cycle));
    Cache.access_range sim.Sim.cache (nd.r.Mem.base + nd.off + heap) need;
    Bytes.blit_string key 0 nd.r.Mem.bytes (nd.off + heap + 1) (String.length key);
    Mem.write_i32 sim nd.r (nd.off + heap + 1 + String.length key) ptr;
    (* open the slot *)
    Mem.blit sim nd.r (slot_off nd i) nd.r (slot_off nd (i + 1)) ((n - i) * 2);
    Mem.write_u16 sim nd.r (slot_off nd i) heap;
    setv sim nd o_n (n + 1);
    true
  end

(* Remove slot [i] (the heap space is reclaimed only by [rebuild]). *)
let delete_at sim nd ~i =
  let n = v sim nd o_n in
  Mem.blit sim nd.r (slot_off nd (i + 1)) nd.r (slot_off nd i) ((n - i - 1) * 2);
  setv sim nd o_n (n - 1)

(* All (key, ptr) entries in slot order (charged). *)
let entries sim nd =
  let n = v sim nd o_n in
  List.init n (fun i -> (key_at sim nd i, ptr_at sim nd i))

(* Rebuild the node from scratch with the given entries (compacts the
   heap).  Preserves links/flags/leftmost.  Entries must fit. *)
let rebuild sim nd items =
  let next = v sim nd o_next and prev = v sim nd o_prev in
  let flags = v sim nd o_flags and leftmost = v sim nd o_leftmost in
  setv sim nd o_n 0;
  setv sim nd o_heap nd.size;
  List.iteri
    (fun i (k, p) ->
      if not (insert_at sim nd ~i k p) then failwith "Slotted.rebuild: overflow")
    items;
  setv sim nd o_next next;
  setv sim nd o_prev prev;
  setv sim nd o_flags flags;
  setv sim nd o_leftmost leftmost

(* Space used by entries (heap bytes + slots). *)
let used_bytes sim nd =
  let n = v sim nd o_n in
  nd.size - v sim nd o_heap + (2 * n)

(* --- Uncharged (checkers) -------------------------------------------------- *)

let peek_key nd i =
  let e = Mem.peek_u16 nd.r (slot_off nd i) in
  let klen = Mem.peek_u8 nd.r (nd.off + e) in
  Bytes.sub_string nd.r.Mem.bytes (nd.off + e + 1) klen

let peek_ptr nd i =
  let e = Mem.peek_u16 nd.r (slot_off nd i) in
  let klen = Mem.peek_u8 nd.r (nd.off + e) in
  Mem.peek_i32 nd.r (nd.off + e + 1 + klen)
