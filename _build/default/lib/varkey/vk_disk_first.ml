(* Disk-first fpB+-Tree for variable-length keys (the extension the paper
   defers to its full version).  Pages are organised as in-page trees of
   slotted nodes: nonleaf in-page nodes are [w] lines, leaf in-page nodes
   [x] lines, every node prefetched in full before it is searched — the
   fixed-key design of {!Fpb_core.Disk_first} carried over to slotted
   nodes.

   Conventions (classic n keys / n+1 children, with promotion, at both
   granularities — variable-length keys make the fixed-key code's
   "untrusted minimum" trick awkward, and the classic convention needs no
   synthetic keys):
   - in-page nonleaf nodes keep their extra child in the slotted node's
     [leftmost] field (a line number); splits promote the middle key;
   - nonleaf *pages* keep their extra child page in the page header;
     page splits promote the middle entry;
   - in-page leaf nodes copy up (leaf pages: real keys; nonleaf pages:
     page separators).

   Page header:
     0  u8  kind (0 leaf page, 1 nonleaf)    1 u8 in-page levels
     2  u16 root node line
     4  i32 prev page    8 i32 next page
     14 u16 next free line (bump watermark)
     16 u16 first in-page leaf line          20 u16 last in-page leaf line
     18 u16 in-page leaf count
     24 i32 leftmost child page (nonleaf pages)

   Insertion: split the in-page leaf node if lines allow; otherwise
   reorganise the page (rebuild, spreading bytes evenly); otherwise split
   the page. *)

open Fpb_simmem
open Fpb_storage

type cfg = {
  page_size : int;
  page_lines : int;
  w : int;  (* nonleaf in-page node lines *)
  x : int;  (* leaf in-page node lines *)
  avg_key_len : int;
}

type t = {
  pool : Buffer_pool.t;
  sim : Sim.t;
  cfg : cfg;
  mutable root : int;
  mutable levels : int;  (* page levels *)
  mutable n_pages : int;
}

let name = "varkey disk-first fpB+tree"
let nil = Page_store.nil
let line_bytes = 64

let h_kind = 0
let h_ip_levels = 1
let h_root = 2
let h_prev = 4
let h_next = 8
let h_free = 14
let h_first_leaf = 16
let h_n_leaves = 18
let h_last_leaf = 20
let h_leftmost_page = 24

(* Node-size selection: the fixed-key tuner's figure of merit with
   byte-based capacities for the expected key length. *)
let make_cfg ?(avg_key_len = 20) page_size =
  let t1 = 150 and tn = 10 in
  let cap lines = ((lines * line_bytes) - Slotted.header) / (avg_key_len + 7) in
  let metric lines =
    let c = cap lines in
    if c < 2 then infinity
    else float_of_int (t1 + ((lines - 1) * tn)) /. log (float_of_int c)
  in
  let best lo hi =
    let b = ref lo in
    for l = lo to hi do
      if metric l < metric !b then b := l
    done;
    !b
  in
  let w = best 1 16 in
  (* leaves may be a bit wider: they hold the payload entries *)
  let x = best w (min 24 ((page_size / line_bytes) - 2)) in
  { page_size; page_lines = page_size / line_bytes; w; x; avg_key_len }

let node_of _t r line ~lines =
  { Slotted.r; off = line * line_bytes; size = lines * line_bytes }

let leaf_node t r line = node_of t r line ~lines:t.cfg.x
let nonleaf_node t r line = node_of t r line ~lines:t.cfg.w

let prefetch_node t r (nd : Slotted.node) =
  Mem.prefetch t.sim r ~off:nd.Slotted.off ~len:nd.size;
  Sim.busy_node t.sim

let alloc_lines t r lines =
  let free = Mem.read_u16 t.sim r h_free in
  if free + lines > t.cfg.page_lines then None
  else begin
    Mem.write_u16 t.sim r h_free (free + lines);
    Some free
  end

(* --- In-page construction --------------------------------------------------- *)

(* Plan: distribute entries over leaves by byte budget, then count the
   nonleaf lines needed.  Returns the leaf groups or None if it cannot
   fit. *)
let plan_in_page t entries ~leaf_fill =
  let c = t.cfg in
  let leaf_cap = (c.x * line_bytes) - Slotted.header in
  let budget = max 16 (int_of_float (float_of_int leaf_cap *. leaf_fill)) in
  let groups = ref [] and cur = ref [] and cur_bytes = ref 0 in
  Array.iter
    (fun (k, p) ->
      let sz = Slotted.entry_bytes k + 2 in
      if !cur <> [] && !cur_bytes + sz > budget then begin
        groups := List.rev !cur :: !groups;
        cur := [];
        cur_bytes := 0
      end;
      cur := (k, p) :: !cur;
      cur_bytes := !cur_bytes + sz)
    entries;
  if !cur <> [] then groups := List.rev !cur :: !groups;
  let groups = Array.of_list (List.rev !groups) in
  let n_leaves = max 1 (Array.length groups) in
  (* nonleaf levels: fan-out limited by bytes of separator entries *)
  let nl_cap = (c.w * line_bytes) - Slotted.header in
  let per_nl = max 2 (nl_cap / (c.avg_key_len + 7)) in
  let rec nonleaves cnt acc =
    if cnt <= 1 then acc
    else
      let p = (cnt + per_nl - 1) / per_nl in
      nonleaves p (acc + p)
  in
  let lines = 1 + (n_leaves * c.x) + (nonleaves n_leaves 0 * c.w) in
  if lines <= c.page_lines then Some groups else None

(* Rebuild the in-page tree from leaf groups.  Caller guarantees fit. *)
let build_in_page t r groups ~kind =
  let c = t.cfg in
  Mem.write_u8 t.sim r h_kind kind;
  Mem.write_u16 t.sim r h_free 1;
  let n_groups = max 1 (Array.length groups) in
  let leaves = Array.make n_groups ("", 0) in
  let prev = ref 0 in
  for g = 0 to n_groups - 1 do
    let items = if g < Array.length groups then groups.(g) else [] in
    let line = Option.get (alloc_lines t r c.x) in
    let nd = leaf_node t r line in
    Slotted.init t.sim nd ~leaf:true;
    Slotted.rebuild t.sim nd items;
    Slotted.setv t.sim nd Slotted.o_prev !prev;
    if !prev <> 0 then
      Slotted.setv t.sim (leaf_node t r !prev) Slotted.o_next line;
    let min_key = match items with (k, _) :: _ -> k | [] -> "" in
    leaves.(g) <- (min_key, line);
    prev := line
  done;
  Mem.write_u16 t.sim r h_first_leaf (snd leaves.(0));
  Mem.write_u16 t.sim r h_last_leaf (snd leaves.(n_groups - 1));
  Mem.write_u16 t.sim r h_n_leaves n_groups;
  (* nonleaf levels, packed by bytes *)
  let level = ref leaves in
  let ip_levels = ref 1 in
  while Array.length !level > 1 do
    let out = ref [] in
    let i = ref 0 in
    let n = Array.length !level in
    while !i < n do
      let line = Option.get (alloc_lines t r c.w) in
      let nd = nonleaf_node t r line in
      Slotted.init t.sim nd ~leaf:false;
      (* first child becomes the leftmost *)
      Slotted.setv t.sim nd Slotted.o_leftmost (snd !level.(!i));
      let min_key = fst !level.(!i) in
      incr i;
      let slot = ref 0 in
      let full = ref false in
      while (not !full) && !i < n do
        let k, child = !level.(!i) in
        if Slotted.insert_at t.sim nd ~i:!slot k child then begin
          incr slot;
          incr i
        end
        else full := true
      done;
      out := (min_key, line) :: !out
    done;
    level := Array.of_list (List.rev !out);
    incr ip_levels
  done;
  Mem.write_u16 t.sim r h_root (snd !level.(0));
  Mem.write_u8 t.sim r h_ip_levels !ip_levels

let new_page t ~kind =
  let page, r = Buffer_pool.create_page t.pool in
  t.n_pages <- t.n_pages + 1;
  Mem.write_i32 t.sim r h_prev nil;
  Mem.write_i32 t.sim r h_next nil;
  Mem.write_i32 t.sim r h_leftmost_page nil;
  Mem.write_u16 t.sim r h_free 1;
  build_in_page t r [||] ~kind;
  (page, r)

let create ?avg_key_len pool =
  let sim = Buffer_pool.sim pool in
  let page_size = Page_store.page_size (Buffer_pool.store pool) in
  let t =
    {
      pool;
      sim;
      cfg = make_cfg ?avg_key_len page_size;
      root = nil;
      levels = 1;
      n_pages = 0;
    }
  in
  let root, _ = new_page t ~kind:0 in
  Buffer_pool.unpin pool root;
  t.root <- root;
  t

(* --- In-page search ---------------------------------------------------------- *)

(* Descend to the in-page leaf node for [key]; [visit] sees each nonleaf
   line. *)
let ip_find_leaf t r key ~visit =
  let levels = Mem.read_u8 t.sim r h_ip_levels in
  let line = ref (Mem.read_u16 t.sim r h_root) in
  for _ = 1 to levels - 1 do
    let nd = nonleaf_node t r !line in
    prefetch_node t r nd;
    let i = Slotted.find t.sim nd ~key `Upper in
    visit !line;
    line :=
      (if i = 0 then Slotted.v t.sim nd Slotted.o_leftmost
       else Slotted.ptr_at t.sim nd (i - 1))
  done;
  let nd = leaf_node t r !line in
  prefetch_node t r nd;
  !line

(* Page-level routing: the child page for [key] within nonleaf page [r]. *)
let page_route t r key =
  let line = ip_find_leaf t r key ~visit:(fun _ -> ()) in
  let nd = leaf_node t r line in
  let i = Slotted.find t.sim nd ~key `Upper in
  if i = 0 then begin
    (* before this node's first separator: previous in-page leaf's last
       entry, or the page's leftmost child *)
    let prev = Slotted.v t.sim nd Slotted.o_prev in
    if prev <> 0 then begin
      let pnd = leaf_node t r prev in
      let pn = Slotted.count t.sim pnd in
      Slotted.ptr_at t.sim pnd (pn - 1)
    end
    else Mem.read_i32 t.sim r h_leftmost_page
  end
  else Slotted.ptr_at t.sim nd (i - 1)

let rec descend t key page depth ~visit =
  let r = Buffer_pool.get t.pool page in
  Sim.busy_node t.sim;
  if depth = t.levels then (page, r)
  else begin
    let child = page_route t r key in
    visit page;
    Buffer_pool.unpin t.pool page;
    descend t key child (depth + 1) ~visit
  end

let search t key =
  Sim.busy_op t.sim;
  let page, r = descend t key t.root 1 ~visit:(fun _ -> ()) in
  let line = ip_find_leaf t r key ~visit:(fun _ -> ()) in
  let nd = leaf_node t r line in
  let i = Slotted.find t.sim nd ~key `Lower in
  let result =
    if i < Slotted.count t.sim nd && Slotted.key_at t.sim nd i = key then
      Some (Slotted.ptr_at t.sim nd i)
    else None
  in
  Buffer_pool.unpin t.pool page;
  result

(* --- Entry collection --------------------------------------------------------- *)

let collect_entries t r =
  let out = ref [] in
  let line = ref (Mem.read_u16 t.sim r h_first_leaf) in
  while !line <> 0 do
    let nd = leaf_node t r !line in
    prefetch_node t r nd;
    out := List.rev_append (Slotted.entries t.sim nd) !out;
    line := Slotted.v t.sim nd Slotted.o_next
  done;
  Array.of_list (List.rev !out)

(* --- In-page insertion ---------------------------------------------------------
   [`Done] / [`Updated] / [`Page_full]. *)

(* Insert (key, child_line) into the in-page nonleaf parents; splits
   promote the middle key.  Returns false if a needed line allocation
   fails (caller falls back to reorganise/page split). *)
let rec ip_insert_parent t r path key child_line =
  match path with
  | [] -> (
      match alloc_lines t r t.cfg.w with
      | None -> false
      | Some line ->
          let nd = nonleaf_node t r line in
          Slotted.init t.sim nd ~leaf:false;
          Slotted.setv t.sim nd Slotted.o_leftmost (Mem.read_u16 t.sim r h_root);
          ignore (Slotted.insert_at t.sim nd ~i:0 key child_line);
          Mem.write_u16 t.sim r h_root line;
          Mem.write_u8 t.sim r h_ip_levels (Mem.read_u8 t.sim r h_ip_levels + 1);
          true)
  | parent :: rest ->
      let nd = nonleaf_node t r parent in
      let i = Slotted.find t.sim nd ~key `Upper in
      if Slotted.insert_at t.sim nd ~i key child_line then true
      else begin
        (* split the nonleaf node: promote the middle key *)
        match alloc_lines t r t.cfg.w with
        | None -> false
        | Some right ->
            let rnd = nonleaf_node t r right in
            Slotted.init t.sim rnd ~leaf:false;
            let items = Array.of_list (Slotted.entries t.sim nd) in
            let n = Array.length items in
            let mid = n / 2 in
            let sep, promoted_child = items.(mid) in
            Slotted.setv t.sim rnd Slotted.o_leftmost promoted_child;
            Slotted.rebuild t.sim rnd
              (Array.to_list (Array.sub items (mid + 1) (n - mid - 1)));
            Slotted.rebuild t.sim nd (Array.to_list (Array.sub items 0 mid));
            (* place the pending entry *)
            let target = if key < sep then nd else rnd in
            let ti = Slotted.find t.sim target ~key `Upper in
            if not (Slotted.insert_at t.sim target ~i:ti key child_line) then
              failwith "vk ip: entry does not fit after nonleaf split";
            ip_insert_parent t r rest sep right
      end

let ip_insert t r key ptr =
  let path = ref [] in
  let line = ip_find_leaf t r key ~visit:(fun l -> path := l :: !path) in
  let nd = leaf_node t r line in
  let i = Slotted.find t.sim nd ~key `Lower in
  if i < Slotted.count t.sim nd && Slotted.key_at t.sim nd i = key then begin
    Slotted.set_ptr_at t.sim nd i ptr;
    `Updated
  end
  else if Slotted.insert_at t.sim nd ~i key ptr then `Done
  else begin
    (* split the in-page leaf node (copy-up) *)
    match alloc_lines t r t.cfg.x with
    | None -> `Page_full
    | Some right ->
        let rnd = leaf_node t r right in
        Slotted.init t.sim rnd ~leaf:true;
        let items = Array.of_list (Slotted.entries t.sim nd) in
        let n = Array.length items in
        let mid = n / 2 in
        let sep = fst items.(mid) in
        Slotted.rebuild t.sim rnd (Array.to_list (Array.sub items mid (n - mid)));
        Slotted.rebuild t.sim nd (Array.to_list (Array.sub items 0 mid));
        (* leaf chain *)
        let old_next = Slotted.v t.sim nd Slotted.o_next in
        Slotted.setv t.sim rnd Slotted.o_next old_next;
        Slotted.setv t.sim rnd Slotted.o_prev line;
        Slotted.setv t.sim nd Slotted.o_next right;
        if old_next <> 0 then
          Slotted.setv t.sim (leaf_node t r old_next) Slotted.o_prev right
        else Mem.write_u16 t.sim r h_last_leaf right;
        Mem.write_u16 t.sim r h_n_leaves (Mem.read_u16 t.sim r h_n_leaves + 1);
        (* pending entry *)
        let target = if key < sep then nd else rnd in
        let ti = Slotted.find t.sim target ~key `Lower in
        if not (Slotted.insert_at t.sim target ~i:ti key ptr) then `Page_full
        else if ip_insert_parent t r !path sep right then `Done
        else `Page_full
  end

(* --- Page-level insertion ------------------------------------------------------- *)

(* Insert (key, ptr) into [page]; [`Done] / [`Updated] /
   [`Split (sep, right)] (page split, sep promoted for nonleaf pages,
   copied up for leaf pages). *)
let insert_into_page t page key ptr =
  let r = Buffer_pool.get t.pool page in
  Buffer_pool.mark_dirty t.pool page;
  let finish o =
    Buffer_pool.unpin t.pool page;
    o
  in
  match ip_insert t r key ptr with
  | (`Done | `Updated) as o -> finish o
  | `Page_full -> (
      let kind = Mem.read_u8 t.sim r h_kind in
      let entries = collect_entries t r in
      (* re-insert the pending entry into the collected set *)
      let all =
        let l = Array.to_list entries in
        let rec ins = function
          | (k, _) :: _ as rest when key < k -> (key, ptr) :: rest
          | kv :: rest -> kv :: ins rest
          | [] -> [ (key, ptr) ]
        in
        Array.of_list (ins l)
      in
      match plan_in_page t all ~leaf_fill:0.7 with
      | Some groups ->
          (* reorganise in place *)
          let leftmost = Mem.read_i32 t.sim r h_leftmost_page in
          build_in_page t r groups ~kind;
          Mem.write_i32 t.sim r h_leftmost_page leftmost;
          finish `Done
      | None ->
          (* page split *)
          let n = Array.length all in
          let mid = n / 2 in
          let right_page, rr = new_page t ~kind in
          let sep, left_items, right_items, right_leftmost =
            if kind = 0 then
              (fst all.(mid), Array.sub all 0 mid, Array.sub all mid (n - mid), nil)
            else begin
              let sep, promoted = all.(mid) in
              (sep, Array.sub all 0 mid, Array.sub all (mid + 1) (n - mid - 1), promoted)
            end
          in
          let rebuild items =
            match plan_in_page t items ~leaf_fill:0.7 with
            | Some groups -> groups
            | None -> (
                match plan_in_page t items ~leaf_fill:1.0 with
                | Some groups -> groups
                | None -> failwith "vk page split: half does not fit")
          in
          let leftmost = Mem.read_i32 t.sim r h_leftmost_page in
          build_in_page t r (rebuild left_items) ~kind;
          Mem.write_i32 t.sim r h_leftmost_page leftmost;
          build_in_page t rr (rebuild right_items) ~kind;
          Mem.write_i32 t.sim rr h_leftmost_page right_leftmost;
          (* sibling links *)
          let old_next = Mem.read_i32 t.sim r h_next in
          Mem.write_i32 t.sim rr h_next old_next;
          Mem.write_i32 t.sim rr h_prev page;
          Mem.write_i32 t.sim r h_next right_page;
          if old_next <> nil then
            Buffer_pool.with_page t.pool old_next (fun onr ->
                Mem.write_i32 t.sim onr h_prev right_page;
                Buffer_pool.mark_dirty t.pool old_next);
          Buffer_pool.mark_dirty t.pool right_page;
          Buffer_pool.unpin t.pool right_page;
          finish (`Split (sep, right_page)))

let rec insert_into_parent_pages t path sep child_page =
  match path with
  | [] ->
      let old_root = t.root in
      let root, r = new_page t ~kind:1 in
      Mem.write_i32 t.sim r h_leftmost_page old_root;
      (match ip_insert t r sep child_page with
      | `Done -> ()
      | _ -> failwith "vk: new root insert failed");
      Buffer_pool.unpin t.pool root;
      t.root <- root;
      t.levels <- t.levels + 1
  | parent :: rest -> (
      match insert_into_page t parent sep child_page with
      | `Done | `Updated -> ()
      | `Split (psep, pright) -> insert_into_parent_pages t rest psep pright)

let insert t key tid =
  if String.length key = 0 || String.length key > 48 then
    invalid_arg "Vk_disk_first.insert: key must be 1..48 bytes";
  Sim.busy_op t.sim;
  let path = ref [] in
  let page, r = descend t key t.root 1 ~visit:(fun p -> path := p :: !path) in
  Buffer_pool.unpin t.pool page;
  ignore r;
  match insert_into_page t page key tid with
  | `Done -> `Inserted
  | `Updated -> `Updated
  | `Split (sep, right) ->
      insert_into_parent_pages t !path sep right;
      `Inserted

let delete t key =
  Sim.busy_op t.sim;
  let page, r = descend t key t.root 1 ~visit:(fun _ -> ()) in
  let line = ip_find_leaf t r key ~visit:(fun _ -> ()) in
  let nd = leaf_node t r line in
  let i = Slotted.find t.sim nd ~key `Lower in
  let found = i < Slotted.count t.sim nd && Slotted.key_at t.sim nd i = key in
  if found then begin
    Slotted.delete_at t.sim nd ~i;
    Buffer_pool.mark_dirty t.pool page
  end;
  Buffer_pool.unpin t.pool page;
  found

let range_scan t ~start_key ~end_key f =
  Sim.busy_op t.sim;
  if end_key < start_key then 0
  else begin
    let page, r0 = descend t start_key t.root 1 ~visit:(fun _ -> ()) in
    let count = ref 0 in
    let rec scan page r first =
      let line = ref (Mem.read_u16 t.sim r h_first_leaf) in
      if first then line := ip_find_leaf t r start_key ~visit:(fun _ -> ());
      let stop = ref false in
      let first_node = ref first in
      while (not !stop) && !line <> 0 do
        let nd = leaf_node t r !line in
        let n = Slotted.count t.sim nd in
        let i0 =
          if !first_node then Slotted.find t.sim nd ~key:start_key `Lower else 0
        in
        first_node := false;
        let i = ref i0 in
        while (not !stop) && !i < n do
          let k = Slotted.key_at t.sim nd !i in
          if k > end_key then stop := true
          else begin
            f k (Slotted.ptr_at t.sim nd !i);
            incr count;
            incr i
          end
        done;
        if not !stop then line := Slotted.v t.sim nd Slotted.o_next
      done;
      let next = if !stop then nil else Mem.read_i32 t.sim r h_next in
      Buffer_pool.unpin t.pool page;
      if next <> nil then scan next (Buffer_pool.get t.pool next) false
    in
    scan page r0 true;
    !count
  end

(* Sorted unique keys; simple repeated-insert build (fill ignored). *)
let bulkload t pairs ~fill =
  ignore fill;
  Array.iter (fun (k, v) -> ignore (insert t k v)) pairs

let height t = t.levels
let page_count t = t.n_pages
let cfg t = t.cfg

(* --- Uncharged checks ----------------------------------------------------------- *)

let peek_region t page =
  let r = Buffer_pool.get t.pool page in
  Buffer_pool.unpin t.pool page;
  r

let fail fmt = Fmt.kstr failwith fmt

let peek_page_entries t r f =
  let line = ref (Mem.peek_u16 r h_first_leaf) in
  while !line <> 0 do
    let nd = leaf_node t r !line in
    let n = Slotted.peek nd Slotted.o_n in
    for i = 0 to n - 1 do
      f (Slotted.peek_key nd i) (Slotted.peek_ptr nd i)
    done;
    line := Slotted.peek nd Slotted.o_next
  done

let iter t f =
  let rec leftmost page depth =
    if depth = t.levels then page
    else leftmost (Mem.peek_i32 (peek_region t page) h_leftmost_page) (depth + 1)
  in
  let rec walk page =
    if page <> nil then begin
      let r = peek_region t page in
      peek_page_entries t r f;
      walk (Mem.peek_i32 r h_next)
    end
  in
  walk (leftmost t.root 1)

let check_in_page t r page =
  let levels = Mem.peek_u8 r h_ip_levels in
  let free = Mem.peek_u16 r h_free in
  if free > t.cfg.page_lines then fail "vk page %d: watermark overflow" page;
  let leaf_lines = ref [] in
  let rec walk line depth ~lo ~hi =
    if line = 0 || line >= free then fail "vk page %d: bad line %d" page line;
    if depth = levels then leaf_lines := line :: !leaf_lines
    else begin
      let nd = nonleaf_node t r line in
      let n = Slotted.peek nd Slotted.o_n in
      if n = 0 then fail "vk page %d: empty nonleaf node" page;
      let bound i = Some (Slotted.peek_key nd i) in
      walk (Slotted.peek nd Slotted.o_leftmost) (depth + 1) ~lo ~hi:(bound 0);
      for i = 0 to n - 1 do
        let k = Slotted.peek_key nd i in
        if i > 0 && Slotted.peek_key nd (i - 1) >= k then
          fail "vk page %d: nonleaf keys out of order" page;
        (match lo with
        | Some b when k <= b -> fail "vk page %d: nonleaf key below bound" page
        | _ -> ());
        (match hi with
        | Some b when k > b -> fail "vk page %d: nonleaf key above bound" page
        | _ -> ());
        let chi = if i = n - 1 then hi else bound (i + 1) in
        walk (Slotted.peek_ptr nd i) (depth + 1) ~lo:(Some k) ~hi:chi
      done
    end
  in
  walk (Mem.peek_u16 r h_root) 1 ~lo:None ~hi:None;
  let leaf_lines = List.rev !leaf_lines in
  let rec chain line acc =
    if line = 0 then List.rev acc
    else chain (Slotted.peek (leaf_node t r line) Slotted.o_next) (line :: acc)
  in
  let chained = chain (Mem.peek_u16 r h_first_leaf) [] in
  if chained <> leaf_lines then fail "vk page %d: leaf chain disagrees" page;
  (match List.rev chained with
  | last :: _ when last <> Mem.peek_u16 r h_last_leaf ->
      fail "vk page %d: stale last leaf" page
  | _ -> ());
  let entries = ref [] in
  peek_page_entries t r (fun k v -> entries := (k, v) :: !entries);
  let entries = List.rev !entries in
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a >= b then fail "vk page %d: entries out of order" page;
        sorted rest
    | _ -> ()
  in
  sorted entries;
  entries

let check t =
  let leaves_seen = ref [] in
  let rec check_page page ~lo ~hi ~depth =
    let r = peek_region t page in
    let kind = Mem.peek_u8 r h_kind in
    if (kind = 0) <> (depth = t.levels) then fail "vk page %d: wrong kind" page;
    let entries = check_in_page t r page in
    List.iter
      (fun (k, _) ->
        (match lo with
        | Some b when (if kind = 0 then k < b else k <= b) ->
            fail "vk page %d: key below bound" page
        | _ -> ());
        match hi with
        | Some b when k >= b -> fail "vk page %d: key above bound" page
        | _ -> ())
      entries;
    if kind = 0 then leaves_seen := page :: !leaves_seen
    else begin
      let arr = Array.of_list entries in
      let n = Array.length arr in
      check_page (Mem.peek_i32 r h_leftmost_page) ~lo
        ~hi:(if n > 0 then Some (fst arr.(0)) else hi)
        ~depth:(depth + 1);
      Array.iteri
        (fun i (k, child) ->
          let chi = if i = n - 1 then hi else Some (fst arr.(i + 1)) in
          check_page child ~lo:(Some k) ~hi:chi ~depth:(depth + 1))
        arr
    end
  in
  check_page t.root ~lo:None ~hi:None ~depth:1;
  let expected = List.rev !leaves_seen in
  let rec chain page acc =
    if page = nil then List.rev acc
    else chain (Mem.peek_i32 (peek_region t page) h_next) (page :: acc)
  in
  match expected with
  | [] -> ()
  | first :: _ ->
      if chain first [] <> expected then fail "vk leaf page chain disagrees"
