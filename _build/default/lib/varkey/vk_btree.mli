(** Baseline disk-optimized B+-Tree for variable-length keys: each page is
    one big slotted node searched by binary search through the slot
    indirection — the cache-hostile comparator for {!Vk_disk_first}. *)

type t

val name : string
val create : Fpb_storage.Buffer_pool.t -> t
val search : t -> string -> int option
val insert : t -> string -> int -> [ `Inserted | `Updated ]
val delete : t -> string -> bool
val range_scan : t -> start_key:string -> end_key:string -> (string -> int -> unit) -> int

(** Build from sorted unique keys (repeated insertion; [fill] ignored). *)
val bulkload : t -> (string * int) array -> fill:float -> unit

val height : t -> int
val page_count : t -> int

(** {1 Uncharged introspection (tests)} *)

val check : t -> unit
val iter : t -> (string -> int -> unit) -> unit
