(* Baseline disk-optimized B+-Tree for variable-length keys: each page is
   one big slotted node, searched by binary search over the slot array
   (each probe chases a slot indirection into the heap — even less spatial
   locality than the fixed-key sorted array).

   Page layout: 0 u8 is_leaf | 2 u16 (unused) | 4 i32 prev page | 8 i32
   next page | 12 i32 leftmost child (nonleaf) | 16.. slotted node.

   Nonleaf convention: classic n keys / n+1 children; child 0 in the page
   header, entry i's pointer is child i+1; split promotes the middle
   key. *)

open Fpb_simmem
open Fpb_storage

type t = {
  pool : Buffer_pool.t;
  sim : Sim.t;
  page_size : int;
  mutable root : int;
  mutable levels : int;
  mutable n_pages : int;
}

let name = "varkey disk-optimized B+tree"
let nil = Page_store.nil
let h_is_leaf = 0
let h_prev = 4
let h_next = 8
let h_leftmost = 12
let node_base = 16

let node t r = { Slotted.r; off = node_base; size = t.page_size - node_base }

let new_page t ~leaf =
  let page, r = Buffer_pool.create_page t.pool in
  t.n_pages <- t.n_pages + 1;
  Mem.write_u8 t.sim r h_is_leaf (if leaf then 1 else 0);
  Mem.write_i32 t.sim r h_prev nil;
  Mem.write_i32 t.sim r h_next nil;
  Mem.write_i32 t.sim r h_leftmost nil;
  Slotted.init t.sim (node t r) ~leaf;
  (page, r)

let create pool =
  let sim = Buffer_pool.sim pool in
  let page_size = Page_store.page_size (Buffer_pool.store pool) in
  let t = { pool; sim; page_size; root = nil; levels = 1; n_pages = 0 } in
  let root, _ = new_page t ~leaf:true in
  Buffer_pool.unpin pool root;
  t.root <- root;
  t

(* Route within a nonleaf page. *)
let child_for t r key =
  let nd = node t r in
  let i = Slotted.find t.sim nd ~key `Upper in
  if i = 0 then Mem.read_i32 t.sim r h_leftmost
  else Slotted.ptr_at t.sim nd (i - 1)

let rec descend t key page ~visit =
  let r = Buffer_pool.get t.pool page in
  Sim.busy_node t.sim;
  if Mem.read_u8 t.sim r h_is_leaf = 1 then (page, r)
  else begin
    let child = child_for t r key in
    visit page;
    Buffer_pool.unpin t.pool page;
    descend t key child ~visit
  end

let search t key =
  Sim.busy_op t.sim;
  let page, r = descend t key t.root ~visit:(fun _ -> ()) in
  let nd = node t r in
  let i = Slotted.find t.sim nd ~key `Lower in
  let result =
    if i < Slotted.count t.sim nd && Slotted.key_at t.sim nd i = key then
      Some (Slotted.ptr_at t.sim nd i)
    else None
  in
  Buffer_pool.unpin t.pool page;
  result

(* Split page [pg]; returns (separator, right page).  For a leaf the
   separator is copied up (the right page keeps it); for a nonleaf it is
   promoted (the right page's leftmost child is its old pointer). *)
let split_page t pg r =
  let nd = node t r in
  let leaf = Mem.read_u8 t.sim r h_is_leaf = 1 in
  let items = Array.of_list (Slotted.entries t.sim nd) in
  let n = Array.length items in
  let mid = n / 2 in
  let right, rr = new_page t ~leaf in
  let rnd = node t rr in
  let sep, left_items, right_items =
    if leaf then
      (fst items.(mid), Array.sub items 0 mid, Array.sub items mid (n - mid))
    else begin
      let sep, promoted_child = items.(mid) in
      Mem.write_i32 t.sim rr h_leftmost promoted_child;
      (sep, Array.sub items 0 mid, Array.sub items (mid + 1) (n - mid - 1))
    end
  in
  Slotted.rebuild t.sim nd (Array.to_list left_items);
  Slotted.rebuild t.sim rnd (Array.to_list right_items);
  (* sibling links *)
  let old_next = Mem.read_i32 t.sim r h_next in
  Mem.write_i32 t.sim rr h_next old_next;
  Mem.write_i32 t.sim rr h_prev pg;
  Mem.write_i32 t.sim r h_next right;
  if old_next <> nil then
    Buffer_pool.with_page t.pool old_next (fun onr ->
        Mem.write_i32 t.sim onr h_prev right;
        Buffer_pool.mark_dirty t.pool old_next);
  Buffer_pool.mark_dirty t.pool pg;
  Buffer_pool.mark_dirty t.pool right;
  (sep, right, rr)

let rec insert_into_parent t path sep child =
  match path with
  | [] ->
      let old_root = t.root in
      let root, r = new_page t ~leaf:false in
      Mem.write_i32 t.sim r h_leftmost old_root;
      ignore (Slotted.insert_at t.sim (node t r) ~i:0 sep child);
      Buffer_pool.unpin t.pool root;
      t.root <- root;
      t.levels <- t.levels + 1
  | parent :: rest ->
      let r = Buffer_pool.get t.pool parent in
      let nd = node t r in
      let i = Slotted.find t.sim nd ~key:sep `Upper in
      Buffer_pool.mark_dirty t.pool parent;
      if Slotted.insert_at t.sim nd ~i sep child then
        Buffer_pool.unpin t.pool parent
      else begin
        let psep, right, rr = split_page t parent r in
        let target_r = if sep < psep then r else rr in
        let tnd = node t target_r in
        let ti = Slotted.find t.sim tnd ~key:sep `Upper in
        if not (Slotted.insert_at t.sim tnd ~i:ti sep child) then
          failwith "Vk_btree: separator does not fit after split";
        Buffer_pool.unpin t.pool parent;
        Buffer_pool.unpin t.pool right;
        insert_into_parent t rest psep right
      end

let insert t key tid =
  if String.length key = 0 || String.length key > Slotted.max_key_len then
    invalid_arg "Vk_btree.insert: bad key";
  Sim.busy_op t.sim;
  let path = ref [] in
  let page, r = descend t key t.root ~visit:(fun p -> path := p :: !path) in
  let nd = node t r in
  let i = Slotted.find t.sim nd ~key `Lower in
  Buffer_pool.mark_dirty t.pool page;
  if i < Slotted.count t.sim nd && Slotted.key_at t.sim nd i = key then begin
    Slotted.set_ptr_at t.sim nd i tid;
    Buffer_pool.unpin t.pool page;
    `Updated
  end
  else if Slotted.insert_at t.sim nd ~i key tid then begin
    Buffer_pool.unpin t.pool page;
    `Inserted
  end
  else begin
    let sep, right, rr = split_page t page r in
    let target = if key < sep then nd else node t rr in
    let ti = Slotted.find t.sim target ~key `Lower in
    if not (Slotted.insert_at t.sim target ~i:ti key tid) then
      failwith "Vk_btree: entry does not fit after split";
    Buffer_pool.unpin t.pool page;
    Buffer_pool.unpin t.pool right;
    insert_into_parent t !path sep right;
    `Inserted
  end

let delete t key =
  Sim.busy_op t.sim;
  let page, r = descend t key t.root ~visit:(fun _ -> ()) in
  let nd = node t r in
  let i = Slotted.find t.sim nd ~key `Lower in
  let found = i < Slotted.count t.sim nd && Slotted.key_at t.sim nd i = key in
  if found then begin
    Slotted.delete_at t.sim nd ~i;
    Buffer_pool.mark_dirty t.pool page
  end;
  Buffer_pool.unpin t.pool page;
  found

(* Ascending scan over [start_key, end_key]. *)
let range_scan t ~start_key ~end_key f =
  Sim.busy_op t.sim;
  if end_key < start_key then 0
  else begin
    let page, r = descend t start_key t.root ~visit:(fun _ -> ()) in
    let count = ref 0 in
    let rec scan page r first =
      let nd = node t r in
      let n = Slotted.count t.sim nd in
      let i0 = if first then Slotted.find t.sim nd ~key:start_key `Lower else 0 in
      let stop = ref false in
      let i = ref i0 in
      while (not !stop) && !i < n do
        let k = Slotted.key_at t.sim nd !i in
        if k > end_key then stop := true
        else begin
          f k (Slotted.ptr_at t.sim nd !i);
          incr count;
          incr i
        end
      done;
      let next = if !stop then nil else Mem.read_i32 t.sim r h_next in
      Buffer_pool.unpin t.pool page;
      if next <> nil then scan next (Buffer_pool.get t.pool next) false
    in
    scan page r true;
    !count
  end

(* Sorted unique keys. *)
let bulkload t pairs ~fill =
  if fill <= 0. || fill > 1. then invalid_arg "Vk_btree.bulkload: fill";
  if t.n_pages > 1 then invalid_arg "Vk_btree.bulkload: not empty";
  Array.iter (fun (k, v) -> ignore (insert t k v)) pairs;
  ignore fill

let height t = t.levels
let page_count t = t.n_pages

let peek_region t page =
  let r = Buffer_pool.get t.pool page in
  Buffer_pool.unpin t.pool page;
  r

let iter t f =
  let rec leftmost page =
    let r = peek_region t page in
    if Mem.peek_u8 r h_is_leaf = 1 then page
    else leftmost (Mem.peek_i32 r h_leftmost)
  in
  let rec walk page =
    if page <> nil then begin
      let r = peek_region t page in
      let nd = node t r in
      let n = Slotted.peek nd Slotted.o_n in
      for i = 0 to n - 1 do
        f (Slotted.peek_key nd i) (Slotted.peek_ptr nd i)
      done;
      walk (Mem.peek_i32 r h_next)
    end
  in
  walk (leftmost t.root)

let fail fmt = Fmt.kstr failwith fmt

let check t =
  let rec check_page page ~lo ~hi ~depth =
    let r = peek_region t page in
    let leaf = Mem.peek_u8 r h_is_leaf = 1 in
    if leaf <> (depth = t.levels) then fail "vk page %d: leaf at wrong depth" page;
    let nd = node t r in
    let n = Slotted.peek nd Slotted.o_n in
    for i = 0 to n - 1 do
      let k = Slotted.peek_key nd i in
      if i > 0 && Slotted.peek_key nd (i - 1) >= k then
        fail "vk page %d: keys out of order" page;
      (match lo with
      | Some b when (if leaf then k < b else k <= b) ->
          fail "vk page %d: key below bound" page
      | _ -> ());
      match hi with
      | Some b when k >= b -> fail "vk page %d: key above bound" page
      | _ -> ()
    done;
    if not leaf then begin
      check_page (Mem.peek_i32 r h_leftmost) ~lo
        ~hi:(if n > 0 then Some (Slotted.peek_key nd 0) else hi)
        ~depth:(depth + 1);
      for i = 0 to n - 1 do
        let k = Slotted.peek_key nd i in
        let chi = if i = n - 1 then hi else Some (Slotted.peek_key nd (i + 1)) in
        check_page (Slotted.peek_ptr nd i) ~lo:(Some k) ~hi:chi ~depth:(depth + 1)
      done
    end
  in
  check_page t.root ~lo:None ~hi:None ~depth:1
