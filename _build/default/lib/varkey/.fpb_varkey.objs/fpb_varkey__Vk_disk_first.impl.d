lib/varkey/vk_disk_first.ml: Array Buffer_pool Fmt Fpb_simmem Fpb_storage List Mem Option Page_store Sim Slotted String
