lib/varkey/slotted.ml: Bytes Cache Fpb_simmem List Mem Sim String
