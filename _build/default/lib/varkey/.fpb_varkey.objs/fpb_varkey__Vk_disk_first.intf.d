lib/varkey/vk_disk_first.mli: Fpb_storage
