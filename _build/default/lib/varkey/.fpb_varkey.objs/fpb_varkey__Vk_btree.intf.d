lib/varkey/vk_btree.mli: Fpb_storage
