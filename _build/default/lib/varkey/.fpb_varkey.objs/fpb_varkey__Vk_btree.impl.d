lib/varkey/vk_btree.ml: Array Buffer_pool Fmt Fpb_simmem Fpb_storage Mem Page_store Sim Slotted String
