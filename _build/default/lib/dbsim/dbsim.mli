(** Queueing model of the paper's DB2 experiment (Section 4.3.3,
    Figure 19): an index-only SELECT COUNT scan over all leaf pages,
    driven by parallel scan processes ("SMP degree") and a shared pool of
    I/O prefetchers over a disk farm.  Prefetchers behave like DB2 list
    prefetch (sorted batches pay a short positioning cost); a scan agent
    reads a page itself when the prefetchers are behind. *)

type config = {
  n_pages : int;  (** leaf pages to scan *)
  n_disks : int;
  n_prefetchers : int;  (** 0 = plain (no-prefetch) scan *)
  smp_degree : int;  (** parallel scan processes *)
  seek_ns : int;  (** positioning cost of a random demand read *)
  batched_seek_ns : int;  (** positioning within a sorted prefetch sweep *)
  transfer_ns : int;
  cpu_per_page_ns : int;  (** per-page processing (count aggregation) *)
  window : int;  (** prefetch requests outstanding per process *)
  in_memory : bool;  (** all pages resident: CPU-only bound *)
}

(** 100K pages, 80 disks, 8 prefetchers, SMP degree 9 — the paper's
    machine, scaled. *)
val default : config

(** Simulated elapsed nanoseconds for the whole scan. *)
val run : config -> int
