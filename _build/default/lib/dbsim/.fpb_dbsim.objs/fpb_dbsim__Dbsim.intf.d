lib/dbsim/dbsim.mli:
