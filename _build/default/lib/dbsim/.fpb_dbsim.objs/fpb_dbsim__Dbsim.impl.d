lib/dbsim/dbsim.ml: Array Hashtbl
