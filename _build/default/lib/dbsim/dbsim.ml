(* Queueing model of the paper's DB2 experiment (Section 4.3.3, Figure 19):
   an index-only SELECT COUNT range scan over all leaf pages, driven by a
   configurable number of parallel scan processes ("SMP degree") and a
   shared pool of I/O prefetchers, over a farm of disks.

   Physics of the model:
   - Leaf pages are striped across the disks; after the inserts that
     mature the index, leaf order is effectively random with respect to
     disk position, so a *demand* read pays the full positioning cost
     (seek + rotation).
   - The jump-pointer array hands the prefetchers explicit page lists, so
     they behave like DB2 list prefetch: each prefetcher sorts its batch
     by physical location and sweeps the disk arm, paying only a short
     positioning cost per page ([batched_seek_ns]).
   - A scan process consumes its partition in order; when the prefetch of
     its next page would complete later than reading the page itself (the
     prefetchers are behind), the agent reads the page synchronously —
     DB2 agents do the same — so one prefetcher never makes the scan
     slower than no prefetch at all.

   The simulation is event-ordered across scan processes (the process with
   the smallest local clock advances), so prefetcher and disk contention
   between processes is modeled faithfully. *)

type config = {
  n_pages : int;  (* leaf pages to scan *)
  n_disks : int;
  n_prefetchers : int;  (* 0 = plain (no-prefetch) scan *)
  smp_degree : int;  (* parallel scan processes *)
  seek_ns : int;  (* positioning cost of a random demand read *)
  batched_seek_ns : int;  (* positioning cost within a sorted prefetch sweep *)
  transfer_ns : int;
  cpu_per_page_ns : int;  (* per-page processing (count aggregation) *)
  window : int;  (* prefetch requests outstanding per process *)
  in_memory : bool;  (* all pages resident: CPU-only bound *)
}

let default =
  {
    n_pages = 100_000;
    n_disks = 80;
    n_prefetchers = 8;
    smp_degree = 9;
    seek_ns = 8_000_000;
    batched_seek_ns = 1_500_000;
    transfer_ns = 16_384 * 25;
    cpu_per_page_ns = 2_000_000;
    window = 64;
    in_memory = false;
  }

type process = {
  lo : int;
  hi : int;  (* partition [lo, hi) *)
  mutable next_consume : int;
  mutable next_prefetch : int;
  mutable clock : int;
}

(* Simulated elapsed nanoseconds for the whole scan. *)
let run cfg =
  if cfg.in_memory then
    (* CPU-bound floor: the largest partition processed at CPU speed. *)
    let per = (cfg.n_pages + cfg.smp_degree - 1) / cfg.smp_degree in
    per * cfg.cpu_per_page_ns
  else begin
    let disk_free = Array.make cfg.n_disks 0 in
    let pf_free = Array.make (max cfg.n_prefetchers 1) 0 in
    let completion = Hashtbl.create (2 * cfg.n_pages) in
    let disk_of p = p mod cfg.n_disks in
    let read_at ~positioning earliest page =
      let d = disk_of page in
      let start = max earliest disk_free.(d) in
      let c = start + positioning + cfg.transfer_ns in
      disk_free.(d) <- c;
      c
    in
    let per = (cfg.n_pages + cfg.smp_degree - 1) / cfg.smp_degree in
    let procs =
      Array.init cfg.smp_degree (fun i ->
          let lo = i * per in
          let hi = min cfg.n_pages (lo + per) in
          { lo; hi; next_consume = lo; next_prefetch = lo; clock = 0 })
    in
    let pump p =
      if cfg.n_prefetchers > 0 then
        while
          p.next_prefetch < p.hi
          && p.next_prefetch - p.next_consume < cfg.window
        do
          let page = p.next_prefetch in
          p.next_prefetch <- p.next_prefetch + 1;
          (* earliest-free prefetcher picks the request up *)
          let w = ref 0 in
          for i = 1 to Array.length pf_free - 1 do
            if pf_free.(i) < pf_free.(!w) then w := i
          done;
          let dispatch = max p.clock pf_free.(!w) in
          (* back-pressure: if the prefetcher pool is hopelessly behind,
             leave the page for a demand read rather than duplicating the
             disk work (DB2 drops prefetch requests it cannot serve in
             time) *)
          let horizon =
            p.clock + (cfg.window * (cfg.batched_seek_ns + cfg.transfer_ns))
          in
          if dispatch <= horizon then begin
            let c = read_at ~positioning:cfg.batched_seek_ns dispatch page in
            pf_free.(!w) <- c;
            Hashtbl.replace completion page c
          end
        done
    in
    let finished = ref 0 in
    let active p = p.next_consume < p.hi in
    while !finished < cfg.smp_degree do
      let best = ref None in
      Array.iter
        (fun p ->
          if active p then
            match !best with
            | Some b when b.clock <= p.clock -> ()
            | _ -> best := Some p)
        procs;
      match !best with
      | None -> finished := cfg.smp_degree
      | Some p ->
          pump p;
          let page = p.next_consume in
          let arrival =
            let sync_estimate =
              max p.clock disk_free.(disk_of page) + cfg.seek_ns + cfg.transfer_ns
            in
            match Hashtbl.find_opt completion page with
            | Some c when c <= sync_estimate -> c
            | Some _ | None ->
                (* prefetchers are behind (or off): the agent reads it *)
                read_at ~positioning:cfg.seek_ns p.clock page
          in
          p.clock <- max p.clock arrival + cfg.cpu_per_page_ns;
          p.next_consume <- page + 1;
          pump p;
          if not (active p) then incr finished
    done;
    Array.fold_left (fun acc p -> max acc p.clock) 0 procs
  end
