(* Minimal growable array (OCaml 5.1 has no Dynarray). *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 16 dummy; len = 0; dummy }
let length t = t.len

let ensure t n =
  if n > Array.length t.data then begin
    let cap = max n (2 * Array.length t.data) in
    let data = Array.make cap t.dummy in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t x =
  ensure t (t.len + 1);
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set";
  t.data.(i) <- x

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done
