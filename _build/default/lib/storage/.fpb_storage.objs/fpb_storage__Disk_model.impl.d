lib/storage/disk_model.ml: Array Clock Fpb_simmem
