lib/storage/vec.ml: Array
