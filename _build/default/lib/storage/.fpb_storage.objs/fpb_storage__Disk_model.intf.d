lib/storage/disk_model.mli: Fpb_simmem
