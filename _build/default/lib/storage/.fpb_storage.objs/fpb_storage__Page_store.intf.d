lib/storage/page_store.mli: Bytes
