lib/storage/buffer_pool.mli: Disk_model Fpb_simmem Page_store
