lib/storage/vec.mli:
