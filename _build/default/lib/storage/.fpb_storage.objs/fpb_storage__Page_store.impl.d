lib/storage/page_store.ml: Array Bytes Vec
