lib/storage/buffer_pool.ml: Array Cache Clock Disk_model Fpb_simmem Fun Hashtbl Mem Page_store Sim
