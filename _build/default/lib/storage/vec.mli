(** Minimal growable array (OCaml 5.1 has no Dynarray). *)

type 'a t

val create : dummy:'a -> 'a t
val length : 'a t -> int
val push : 'a t -> 'a -> unit

(** Raise [Invalid_argument] out of bounds. *)
val get : 'a t -> int -> 'a

val set : 'a t -> int -> 'a -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
