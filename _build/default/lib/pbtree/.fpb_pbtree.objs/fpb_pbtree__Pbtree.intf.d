lib/pbtree/pbtree.mli: Fpb_simmem
