lib/pbtree/arena.ml: Bytes Fpb_btree_common Fpb_simmem Fpb_storage Mem Printf Vec
