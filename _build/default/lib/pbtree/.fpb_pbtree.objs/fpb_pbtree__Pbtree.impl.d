lib/pbtree/pbtree.ml: Arena Array Array_search Fmt Fpb_btree_common Fpb_simmem Key Mem Sim
