(* Bump allocator for memory-resident structures on the simulated machine.
   Lives in its own region of the simulated physical address space (well
   above any buffer-pool frame) so cache behaviour does not alias with
   disk-resident structures.  Allocations are cache-line aligned.

   Handles returned by [alloc] are *relative* addresses so they fit in the
   4-byte pointer slots of node layouts; 0 is never allocated (the first
   line of the arena is reserved) and serves as nil. *)

open Fpb_simmem
open Fpb_storage

let arena_base = 1 lsl 40
let chunk_bytes = 1 lsl 20

type t = {
  chunks : Mem.region Vec.t;
  mutable used : int;  (* bytes used in the last chunk *)
}

let create () =
  let t =
    { chunks = Vec.create ~dummy:(Mem.make ~bytes:Bytes.empty ~base:0);
      used = chunk_bytes }
  in
  t

let new_chunk t =
  let idx = Vec.length t.chunks in
  Vec.push t.chunks
    (Mem.make ~bytes:(Bytes.make chunk_bytes '\000')
       ~base:(arena_base + (idx * chunk_bytes)));
  t.used <- if idx = 0 then 64 (* reserve relative address 0 = nil *) else 0

(* Allocate [bytes] (<= chunk size, rounded up to a line); returns the
   handle (relative address, 32-bit safe for arenas below 2 GB). *)
let alloc t bytes =
  let bytes = Fpb_btree_common.Layout.align_up bytes 64 in
  if bytes > chunk_bytes then invalid_arg "Arena.alloc: too large";
  if t.used + bytes > chunk_bytes then new_chunk t;
  let idx = Vec.length t.chunks - 1 in
  let handle = (idx * chunk_bytes) + t.used in
  t.used <- t.used + bytes;
  handle

(* Resolve a handle to (region, offset). *)
let deref t handle =
  let idx = handle / chunk_bytes in
  let off = handle mod chunk_bytes in
  if handle <= 0 || idx >= Vec.length t.chunks then
    invalid_arg (Printf.sprintf "Arena.deref: bad handle %#x" handle);
  (Vec.get t.chunks idx, off)

let allocated_bytes t =
  if Vec.length t.chunks = 0 then 0
  else ((Vec.length t.chunks - 1) * chunk_bytes) + t.used
