(** Keys are 4-byte signed integers stored little-endian. *)

val size : int

(** The largest int32 value, reserved for "plus infinity" separators. *)
val sentinel : int

val max_key : int
val min_key : int
val valid : int -> bool
