(* Binary layout constants shared by all index structures.

   All indexes use 4-byte keys, 4-byte page IDs, 4-byte tuple IDs and 2-byte
   in-page offsets (a node's starting cache line number within its page).
   Keys and pointers are partitioned into separate arrays inside every node.
   The header sizes below were chosen so that the node-size tuner reproduces
   the paper's Table 2 fan-outs exactly; see DESIGN.md section 3.3. *)

let key_size = 4
let pid_size = 4
let tid_size = 4
let off_size = 2

(* --- Disk-optimized B+-Tree (baseline) ---------------------------------- *)

(* Page header: type, entry count, level, two sibling page IDs, parent. *)
let disk_page_header = 32

let disk_fanout ~page_size = (page_size - disk_page_header) / (key_size + pid_size)

(* --- Disk-first fpB+-Tree ------------------------------------------------ *)

(* One full line for the page header (control info, in-page allocation
   bitmap, root offset, sibling page IDs, jump-pointer links). *)
let df_page_header_lines = 1
let df_nonleaf_header = 4  (* entry count + flags *)
let df_leaf_header = 8  (* entry count + flags + next-sibling offset + pad *)

(* Entries in a w-line in-page nonleaf node: 4B key + 2B child offset. *)
let df_nonleaf_capacity ~line_size w =
  ((line_size * w) - df_nonleaf_header) / (key_size + off_size)

(* Entries in an x-line in-page leaf node: 4B key + 4B page/tuple ID. *)
let df_leaf_capacity ~line_size x =
  ((line_size * x) - df_leaf_header) / (key_size + pid_size)

(* --- Cache-first fpB+-Tree ----------------------------------------------- *)

let cf_page_header_lines = 1
let cf_node_header = 8

(* Leaf node entries: 4B key + 4B tuple ID. *)
let cf_leaf_capacity ~line_size w =
  ((line_size * w) - cf_node_header) / (key_size + tid_size)

(* Nonleaf node entries: 4B key + (4B page ID + 2B offset) pointer. *)
let cf_nonleaf_capacity ~line_size w =
  ((line_size * w) - cf_node_header) / (key_size + pid_size + off_size)

(* --- Micro-indexing ------------------------------------------------------ *)

let mi_page_header = 24

let align_up n alignment = (n + alignment - 1) / alignment * alignment

(* Page layout: [header | micro-index keys | pad | key array | pad | pointer
   array].  Key and pointer arrays start on line boundaries and are divided
   into sub-arrays of [sub_lines] lines each; the micro-index holds the
   first key of each sub-array.  Returns the maximum fan-out for a page, or
   0 if none fits. *)
let mi_max_fanout ~page_size ~line_size ~sub_lines =
  let keys_per_sub = line_size * sub_lines / key_size in
  let fits f =
    let n_sub = (f + keys_per_sub - 1) / keys_per_sub in
    let key_off = align_up (mi_page_header + (n_sub * key_size)) line_size in
    let ptr_off = key_off + align_up (f * key_size) line_size in
    ptr_off + (f * tid_size) <= page_size
  in
  let rec grow f = if fits (f + 1) then grow (f + 1) else f in
  grow 0

(* Cache lines occupied by the micro-index (starts right after the page
   header, which is not line-aligned). *)
let mi_micro_lines ~line_size ~n_sub =
  let first = mi_page_header / line_size in
  let last = (mi_page_header + (n_sub * key_size) - 1) / line_size in
  last - first + 1
