(** Binary search over contiguous little-endian int32 key arrays in
    simulated memory.  Charged variants drive the cache and cost models
    (one comparison charge and one memory access per probe). *)

open Fpb_simmem

(** First index i in [0, n) with a(i) >= key; n if none. *)
val lower_bound : Sim.t -> Mem.region -> off:int -> n:int -> key:int -> int

(** First index i in [0, n) with a(i) > key; n if none. *)
val upper_bound : Sim.t -> Mem.region -> off:int -> n:int -> key:int -> int

(** Uncharged [lower_bound] for checkers. *)
val peek_lower_bound : Mem.region -> off:int -> n:int -> key:int -> int
