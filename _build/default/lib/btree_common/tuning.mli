(** Optimal node-size selection (paper, Section 3.1.1 and Table 2): the
    paper's goal G — maximize the page fan-out while keeping the analytic
    search cost within 10% of the optimum.  Configurations are compared by
    cost / ln(fan-out), which is proportional to the total root-to-leaf
    search cost over any number of keys.  With the layout constants of
    {!Layout} this reproduces the paper's Table 2 (two cells deviate by
    < 2% in fan-out; see EXPERIMENTS.md). *)

type disk_first = {
  df_page_size : int;
  df_w : int;  (** nonleaf in-page node size, lines *)
  df_x : int;  (** leaf in-page node size, lines *)
  df_levels : int;  (** in-page tree levels *)
  df_root_fanout : int;  (** restricted root fan-out (Figure 7(a)) *)
  df_nonleaf_cap : int;
  df_leaf_cap : int;
  df_fanout : int;  (** page fan-out *)
  df_cost : int;  (** analytic in-page search cost, cycles *)
  df_ratio : float;  (** figure of merit relative to the optimum *)
}

type cache_first = {
  cf_page_size : int;
  cf_w : int;  (** node size, lines (leaf and nonleaf) *)
  cf_nodes_per_page : int;
  cf_leaf_cap : int;
  cf_nonleaf_cap : int;
  cf_fanout : int;  (** leaf-page fan-out *)
  cf_cost : int;
  cf_ratio : float;
}

type micro_index = {
  mi_page_size : int;
  mi_sub_lines : int;  (** sub-array size, lines *)
  mi_n_sub : int;  (** number of sub-arrays (micro-index entries) *)
  mi_fanout : int;
  mi_cost : int;
  mi_ratio : float;
}

val disk_first :
  ?t1:int -> ?tnext:int -> ?line_size:int -> page_size:int -> unit -> disk_first

val cache_first :
  ?t1:int -> ?tnext:int -> ?line_size:int -> page_size:int -> unit -> cache_first

val micro_index :
  ?t1:int -> ?tnext:int -> ?line_size:int -> page_size:int -> unit -> micro_index

(** Render the full Table 2 for the standard page sizes. *)
val pp_table2 : Format.formatter -> unit -> unit
