(* Keys are 4-byte signed integers stored little-endian.  The largest int32
   value is reserved as a sentinel (used for "plus infinity" separators). *)

let size = 4
let sentinel = 0x7fffffff
let max_key = sentinel - 1
let min_key = -0x80000000
let valid k = k >= min_key && k <= max_key
