(* Binary search over contiguous little-endian int32 key arrays stored in
   simulated memory.  The charged variants drive the cache and cost models
   (one comparison charge and one memory access per probe); the peek
   variants are for uncharged checkers. *)

open Fpb_simmem

(* First index i in [0, n) with a(i) >= key; n if none. *)
let lower_bound sim region ~off ~n ~key =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Sim.busy_compare sim;
    let k = Mem.read_i32 sim region (off + (Key.size * mid)) in
    if k < key then lo := mid + 1 else hi := mid
  done;
  !lo

(* First index i in [0, n) with a(i) > key; n if none. *)
let upper_bound sim region ~off ~n ~key =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    Sim.busy_compare sim;
    let k = Mem.read_i32 sim region (off + (Key.size * mid)) in
    if k <= key then lo := mid + 1 else hi := mid
  done;
  !lo

let peek_lower_bound region ~off ~n ~key =
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if Mem.peek_i32 region (off + (Key.size * mid)) < key then lo := mid + 1
    else hi := mid
  done;
  !lo
