(* Optimal node-size selection (paper, Section 3.1.1 and Table 2).

   The paper's goal G: "maximize the page fan-out while maintaining the
   analytical search cost to be within 10% of the optimal."  The analytical
   cost of searching an L-level in-page tree with w-line nonleaf nodes and
   x-line leaf nodes is

     cost = (L-1) * (T1 + (w-1)*Tnext) + T1 + (x-1)*Tnext.

   Comparing configurations with different fan-outs requires normalising by
   how much of the overall (multi-page) search a page resolves: a page of
   fan-out F resolves log2(F) bits of the search, so the figure of merit is
   cost / ln(fan-out) — the total root-to-leaf cost of a tree over N keys is
   proportional to this for any N.  With the layout constants of
   [Layout], this procedure reproduces the paper's Table 2 node sizes and
   fan-outs exactly (470/961/1953/4017 disk-first, 497/994/2001/4029
   cache-first, 496/1008/2032/4064 micro-indexing). *)

type disk_first = {
  df_page_size : int;
  df_w : int;  (* nonleaf in-page node size, lines *)
  df_x : int;  (* leaf in-page node size, lines *)
  df_levels : int;  (* in-page tree levels *)
  df_root_fanout : int;  (* restricted root fan-out (= nonleaf cap if unrestricted) *)
  df_nonleaf_cap : int;
  df_leaf_cap : int;
  df_fanout : int;  (* page fan-out *)
  df_cost : int;  (* analytic in-page search cost, cycles *)
  df_ratio : float;  (* cost/ln(fanout) relative to the optimum *)
}

type cache_first = {
  cf_page_size : int;
  cf_w : int;  (* node size, lines (same for leaf and nonleaf) *)
  cf_nodes_per_page : int;
  cf_leaf_cap : int;
  cf_nonleaf_cap : int;
  cf_fanout : int;  (* leaf-page fan-out *)
  cf_cost : int;  (* analytic per-node search cost, cycles *)
  cf_ratio : float;
}

type micro_index = {
  mi_page_size : int;
  mi_sub_lines : int;  (* sub-array size, lines *)
  mi_n_sub : int;  (* number of sub-arrays (micro-index entries) *)
  mi_fanout : int;
  mi_cost : int;  (* analytic in-page search cost, cycles *)
  mi_ratio : float;
}

let node_cost ~t1 ~tnext lines = t1 + ((lines - 1) * tnext)

(* --- Disk-first ---------------------------------------------------------- *)

(* Best (levels, root_fanout, page_fanout, cost) for node sizes (w, x):
   maximum fan-out, then minimum cost.  Levels beyond 4 never help for the
   page sizes considered. *)
let df_best_shape ~t1 ~tnext ~line_size ~usable_lines w x =
  let fn = Layout.df_nonleaf_capacity ~line_size w in
  let fl = Layout.df_leaf_capacity ~line_size x in
  let best = ref None in
  let consider levels root_fanout fanout cost =
    match !best with
    | Some (_, _, f, c) when f > fanout || (f = fanout && c <= cost) -> ()
    | _ -> best := Some (levels, root_fanout, fanout, cost)
  in
  if x <= usable_lines then consider 1 0 fl (node_cost ~t1 ~tnext x);
  if fn >= 2 then
    for levels = 2 to 4 do
      (* nonleaf nodes below the root fan out fully; the root's fan-out r is
         restricted to whatever fits (Figure 7(a)). *)
      let full = int_of_float (float_of_int fn ** float_of_int (levels - 2)) in
      (* per unit of root fan-out: inner nonleaf nodes and leaf nodes *)
      let inner_per_r =
        let rec go i acc = if i > levels - 2 then acc else go (i + 1) (acc + int_of_float (float_of_int fn ** float_of_int (i - 1))) in
        go 1 0
      in
      let leaves_per_r = full in
      let budget = usable_lines - w in
      let per_r = (inner_per_r * w) + (leaves_per_r * x) in
      if per_r > 0 then begin
        let r = min fn (budget / per_r) in
        if r >= 1 then begin
          let fanout = r * leaves_per_r * fl in
          let cost =
            ((levels - 1) * node_cost ~t1 ~tnext w) + node_cost ~t1 ~tnext x
          in
          consider levels r fanout cost
        end
      end
    done;
  !best

let disk_first ?(t1 = 150) ?(tnext = 10) ?(line_size = 64) ~page_size () =
  let usable_lines = (page_size / line_size) - Layout.df_page_header_lines in
  let max_node = min 32 usable_lines in
  let candidates = ref [] in
  for w = 1 to max_node do
    for x = 1 to max_node do
      match df_best_shape ~t1 ~tnext ~line_size ~usable_lines w x with
      | Some (levels, r, fanout, cost) when fanout >= 2 ->
          let metric = float_of_int cost /. log (float_of_int fanout) in
          candidates := (w, x, levels, r, fanout, cost, metric) :: !candidates
      | _ -> ()
    done
  done;
  let min_metric =
    List.fold_left (fun acc (_, _, _, _, _, _, m) -> min acc m) infinity !candidates
  in
  let best = ref None in
  List.iter
    (fun (w, x, levels, r, fanout, cost, metric) ->
      if metric <= 1.1 *. min_metric then
        match !best with
        | Some (_, _, _, _, f, c, _) when f > fanout || (f = fanout && c <= cost)
          ->
            ()
        | _ -> best := Some (w, x, levels, r, fanout, cost, metric))
    !candidates;
  match !best with
  | None -> invalid_arg "Tuning.disk_first: page too small"
  | Some (w, x, levels, r, fanout, cost, metric) ->
      {
        df_page_size = page_size;
        df_w = w;
        df_x = x;
        df_levels = levels;
        df_root_fanout = r;
        df_nonleaf_cap = Layout.df_nonleaf_capacity ~line_size w;
        df_leaf_cap = Layout.df_leaf_capacity ~line_size x;
        df_fanout = fanout;
        df_cost = cost;
        df_ratio = metric /. min_metric;
      }

(* --- Cache-first --------------------------------------------------------- *)

let cache_first ?(t1 = 150) ?(tnext = 10) ?(line_size = 64) ~page_size () =
  let usable_lines = (page_size / line_size) - Layout.cf_page_header_lines in
  (* The per-node figure of merit is independent of the page size: a search
     visits log(N)/log(nonleaf capacity) nodes of cost T1+(w-1)*Tnext. *)
  let metric w =
    let fn = Layout.cf_nonleaf_capacity ~line_size w in
    if fn < 2 then infinity
    else float_of_int (node_cost ~t1 ~tnext w) /. log (float_of_int fn)
  in
  let min_metric = ref infinity in
  for w = 1 to 32 do
    if metric w < !min_metric then min_metric := metric w
  done;
  let best = ref None in
  for w = 1 to min 32 usable_lines do
    let m = metric w in
    if m <= 1.1 *. !min_metric then begin
      let nodes = usable_lines / w in
      let fanout = nodes * Layout.cf_leaf_capacity ~line_size w in
      match !best with
      | Some (_, _, f, bm) when f > fanout || (f = fanout && bm <= m) -> ()
      | _ -> best := Some (w, nodes, fanout, m)
    end
  done;
  match !best with
  | None -> invalid_arg "Tuning.cache_first: page too small"
  | Some (w, nodes, fanout, m) ->
      {
        cf_page_size = page_size;
        cf_w = w;
        cf_nodes_per_page = nodes;
        cf_leaf_cap = Layout.cf_leaf_capacity ~line_size w;
        cf_nonleaf_cap = Layout.cf_nonleaf_capacity ~line_size w;
        cf_fanout = fanout;
        cf_cost = node_cost ~t1 ~tnext w;
        cf_ratio = m /. !min_metric;
      }

(* --- Micro-indexing ------------------------------------------------------ *)

let micro_index ?(t1 = 150) ?(tnext = 10) ?(line_size = 64) ~page_size () =
  (* Sub-arrays are prefetched like pB+-Tree nodes, whose useful widths top
     out at 8 lines; larger sub-arrays stop behaving like one prefetch
     group. *)
  let candidates = ref [] in
  for s = 1 to 8 do
    let fanout = Layout.mi_max_fanout ~page_size ~line_size ~sub_lines:s in
    if fanout >= 2 then begin
      let keys_per_sub = line_size * s / Layout.key_size in
      let n_sub = (fanout + keys_per_sub - 1) / keys_per_sub in
      let m = Layout.mi_micro_lines ~line_size ~n_sub in
      (* Search = prefetched scan of the micro-index + prefetched binary
         search of one key sub-array (pointer access folded into the leaf
         cost as in the fpB+-Tree model). *)
      let cost = node_cost ~t1 ~tnext m + node_cost ~t1 ~tnext s in
      let metric = float_of_int cost /. log (float_of_int fanout) in
      candidates := (s, n_sub, fanout, cost, metric) :: !candidates
    end
  done;
  let min_metric =
    List.fold_left (fun acc (_, _, _, _, m) -> min acc m) infinity !candidates
  in
  let best = ref None in
  List.iter
    (fun (s, n_sub, fanout, cost, metric) ->
      if metric <= 1.1 *. min_metric then
        match !best with
        | Some (bs, _, f, _, bm)
          when f > fanout
               || (f = fanout && (bm < metric || (bm = metric && bs <= s))) ->
            ()
        | _ -> best := Some (s, n_sub, fanout, cost, metric))
    (List.rev !candidates);
  match !best with
  | None -> invalid_arg "Tuning.micro_index: page too small"
  | Some (s, n_sub, fanout, cost, metric) ->
      {
        mi_page_size = page_size;
        mi_sub_lines = s;
        mi_n_sub = n_sub;
        mi_fanout = fanout;
        mi_cost = cost;
        mi_ratio = metric /. min_metric;
      }

(* --- Table 2 ------------------------------------------------------------- *)

let pp_table2 ppf () =
  let sizes = [ 4096; 8192; 16384; 32768 ] in
  Fmt.pf ppf
    "Optimal width selections (4 byte keys, T1 = 150, Tnext = 10)@.";
  Fmt.pf ppf
    "%-9s | %-28s | %-24s | %-20s@." "" "Disk-first fpB+-Tree"
    "Cache-first fpB+-Tree" "Micro-indexing";
  Fmt.pf ppf "%-9s | %8s %6s %7s %5s | %6s %7s %9s | %5s %7s %6s@." "page"
    "nonleaf" "leaf" "fanout" "cost" "node" "fanout" "cost" "sub" "fanout"
    "cost";
  List.iter
    (fun page_size ->
      let df = disk_first ~page_size () in
      let cf = cache_first ~page_size () in
      let mi = micro_index ~page_size () in
      Fmt.pf ppf "%-9s | %7dB %5dB %7d %5.2f | %5dB %7d %9.2f | %4dB %7d %6.2f@."
        (Printf.sprintf "%dKB" (page_size / 1024))
        (df.df_w * 64) (df.df_x * 64) df.df_fanout df.df_ratio (cf.cf_w * 64)
        cf.cf_fanout cf.cf_ratio (mi.mi_sub_lines * 64) mi.mi_fanout
        mi.mi_ratio)
    sizes
