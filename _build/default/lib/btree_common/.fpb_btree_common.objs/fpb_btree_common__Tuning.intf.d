lib/btree_common/tuning.mli: Format
