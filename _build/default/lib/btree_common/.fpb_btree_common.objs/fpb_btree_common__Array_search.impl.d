lib/btree_common/array_search.ml: Fpb_simmem Key Mem Sim
