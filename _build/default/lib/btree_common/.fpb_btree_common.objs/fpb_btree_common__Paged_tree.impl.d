lib/btree_common/paged_tree.ml: Array Buffer_pool Fmt Fpb_simmem Fpb_storage Key Layout List Mem Page_store Sim
