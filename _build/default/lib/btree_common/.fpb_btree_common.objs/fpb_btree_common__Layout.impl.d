lib/btree_common/layout.ml:
