lib/btree_common/tuning.ml: Fmt Layout List Printf
