lib/btree_common/key.ml:
