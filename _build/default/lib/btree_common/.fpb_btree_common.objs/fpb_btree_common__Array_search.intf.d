lib/btree_common/array_search.mli: Fpb_simmem Mem Sim
