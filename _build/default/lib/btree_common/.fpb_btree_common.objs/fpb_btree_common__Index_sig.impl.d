lib/btree_common/index_sig.ml: Fpb_storage
