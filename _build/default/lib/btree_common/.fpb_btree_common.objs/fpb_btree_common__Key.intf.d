lib/btree_common/key.mli:
