lib/micro_index/micro_index.ml: Array_search Fpb_btree_common Fpb_simmem Key Layout Mem Paged_tree Tuning
