(* Micro-indexing (Lomet [16], first evaluated in detail by the paper,
   Figure 4): a disk-optimized B+-Tree page whose key array is divided into
   cache-line-aligned sub-arrays; a small in-page micro-index holds the
   first key of every sub-array.  A search prefetches and searches the
   micro-index to pick the sub-array, then prefetches and binary-searches
   only that sub-array — good search locality.  Updates, however, still
   shift the big arrays (and refresh the micro-index), which is why the
   paper finds its update performance as poor as the plain B+-Tree's.

   Page layout: [common header | micro-index | pad to line | key array
   (line-aligned, sub-array granular) | pointer array].  Sub-array size and
   fan-out come from the tuner and reproduce Table 2. *)

open Fpb_simmem
open Fpb_btree_common

module Format = struct
  let name = "micro-indexing B+tree"

  type cfg = {
    fanout : int;
    keys_per_sub : int;
    sub_bytes : int;  (* key sub-array size in bytes (= lines * 64) *)
    micro_base : int;  (* micro-index offset *)
    key_base : int;
    ptr_base : int;
  }

  let line_size = 64

  let cfg_of_page_size page_size =
    let sel = Tuning.micro_index ~line_size ~page_size () in
    let fanout = sel.Tuning.mi_fanout in
    let keys_per_sub = line_size * sel.mi_sub_lines / Key.size in
    let max_n_sub = (fanout + keys_per_sub - 1) / keys_per_sub in
    let key_base =
      Layout.align_up (Layout.mi_page_header + (max_n_sub * Key.size)) line_size
    in
    let ptr_base = key_base + Layout.align_up (fanout * Key.size) line_size in
    {
      fanout;
      keys_per_sub;
      sub_bytes = line_size * sel.mi_sub_lines;
      micro_base = Layout.mi_page_header;
      key_base;
      ptr_base;
    }

  let fanout c = c.fanout
  let key_base c = c.key_base
  let ptr_base c = c.ptr_base
  let n_sub c ~n = (n + c.keys_per_sub - 1) / c.keys_per_sub

  (* Two-phase search: prefetch + search the micro-index to find the
     sub-array whose first key is the last one <= [key], then prefetch that
     key sub-array and binary-search within it.  Consistent with a global
     binary search because micro[j] = key array slot j*keys_per_sub. *)
  let find_slot sim c r ~n ~key mode =
    if n = 0 then 0
    else begin
      let ns = n_sub c ~n in
      Mem.prefetch sim r ~off:c.micro_base ~len:(ns * Key.size);
      let j =
        let u =
          Array_search.upper_bound sim r ~off:c.micro_base ~n:ns ~key
        in
        max 0 (u - 1)
      in
      let lo = j * c.keys_per_sub in
      let cnt = min c.keys_per_sub (n - lo) in
      Mem.prefetch sim r ~off:(c.key_base + (lo * Key.size)) ~len:c.sub_bytes;
      let off = c.key_base + (lo * Key.size) in
      let i =
        match mode with
        | `Lower -> Array_search.lower_bound sim r ~off ~n:cnt ~key
        | `Upper -> Array_search.upper_bound sim r ~off ~n:cnt ~key
      in
      (* The boundary cases fall out: if key < micro[0] the answer is in
         sub-array 0; if i = cnt within sub-array j < last, the next
         sub-array's first key is > key (Lower) / > key (Upper) by choice of
         j, so lo + i is globally correct. *)
      lo + i
    end

  (* Refresh the micro-index entries covering slots [from, n). *)
  let entries_updated sim c r ~n ~from =
    let ns = n_sub c ~n in
    let j0 = if c.keys_per_sub = 0 then 0 else from / c.keys_per_sub in
    for j = j0 to ns - 1 do
      let k = Mem.read_i32 sim r (c.key_base + (j * c.keys_per_sub * Key.size)) in
      Mem.write_i32 sim r (c.micro_base + (j * Key.size)) k
    done
end

include Paged_tree.Make (Format)
