(* fpB+-Tree-specific tests: jump-pointer array mechanics, in-page
   structure behaviour, tuned configuration sanity, split pressure. *)

open Fpb_storage
open Fpb_simmem
open Fpb_core

let check_int = Alcotest.(check int)

(* --- Jump-pointer array ---------------------------------------------------- *)

let with_jp f =
  let pool = Util.make_pool ~page_size:4096 () in
  let jp = Jump_array.create pool in
  f pool jp

let test_jp_build_and_cursor () =
  with_jp (fun pool jp ->
      let store = Buffer_pool.store pool in
      let pages = Array.init 50 (fun _ -> Page_store.alloc store) in
      let assigned = Hashtbl.create 64 in
      Jump_array.build jp pages ~fill:0.5 ~on_assign:(fun pg ~chunk ->
          Hashtbl.replace assigned pg chunk);
      Alcotest.(check (list int)) "all ids in order" (Array.to_list pages)
        (Jump_array.peek_all jp);
      check_int "every page assigned" 50 (Hashtbl.length assigned);
      (* cursor from the middle *)
      let mid = pages.(20) in
      let cur =
        Jump_array.cursor_at jp ~chunk:(Hashtbl.find assigned mid) ~page:mid
      in
      let rest = ref [] in
      let rec drain () =
        match Jump_array.next cur with
        | Some id ->
            rest := id :: !rest;
            drain ()
        | None -> ()
      in
      drain ();
      Alcotest.(check (list int)) "cursor suffix"
        (Array.to_list (Array.sub pages 20 30))
        (List.rev !rest))

let test_jp_insert_and_split () =
  with_jp (fun pool jp ->
      let store = Buffer_pool.store pool in
      let pages = Array.init 10 (fun _ -> Page_store.alloc store) in
      let assigned = Hashtbl.create 64 in
      let on_assign pg ~chunk = Hashtbl.replace assigned pg chunk in
      Jump_array.build jp pages ~fill:1.0 ~on_assign;
      (* insert a new page after each existing one; chunk fill 1.0 means the
         first insert forces a chunk split *)
      let extra = Array.init 10 (fun _ -> Page_store.alloc store) in
      Array.iteri
        (fun i np ->
          let after = pages.(i) in
          Jump_array.insert_after jp
            ~chunk:(Hashtbl.find assigned after)
            ~after_page:after ~new_page:np ~on_assign)
        extra;
      let expected =
        List.concat_map (fun i -> [ pages.(i); extra.(i) ]) (List.init 10 Fun.id)
      in
      Alcotest.(check (list int)) "interleaved order" expected (Jump_array.peek_all jp);
      (* every page's recorded chunk really contains it *)
      Hashtbl.iter
        (fun pg chunk ->
          let cur = Jump_array.cursor_at jp ~chunk ~page:pg in
          match Jump_array.next cur with
          | Some id -> check_int "cursor lands on page" pg id
          | None -> Alcotest.fail "cursor empty")
        assigned)

(* --- Disk-first specifics ---------------------------------------------------- *)

let test_df_config () =
  let pool = Util.make_pool ~page_size:16384 () in
  let t = Disk_first.create pool in
  let c = Disk_first.cfg t in
  check_int "w" 3 c.Disk_first.w;
  check_int "x" 9 c.Disk_first.x;
  Alcotest.(check bool) "max_leaves sane" true
    (c.max_leaves * c.fl >= c.max_fanout)

let test_df_page_split_pressure () =
  (* fill a 100%-bulkloaded single-page region and force splits/reorgs *)
  let pool = Util.make_pool ~page_size:4096 () in
  let t = Disk_first.create pool in
  Disk_first.bulkload t (Array.init 400 (fun i -> (10 * i, i))) ~fill:1.0;
  for i = 0 to 4000 do
    ignore (Disk_first.insert t ((10 * i) + 5) i)
  done;
  Disk_first.check t;
  check_int "all present" 4401
    (Disk_first.range_scan t ~start_key:min_int ~end_key:max_int (fun _ _ -> ()))

let test_df_custom_widths () =
  let pool = Util.make_pool ~page_size:16384 () in
  let t = Disk_first.create_custom pool ~w:1 ~x:4 in
  Disk_first.bulkload t (Array.init 20_000 (fun i -> (i, i))) ~fill:0.9;
  Disk_first.check t;
  Alcotest.(check (option int)) "search" (Some 777) (Disk_first.search t 777)

(* --- Cache-first specifics ---------------------------------------------------- *)

let test_cf_config () =
  let pool = Util.make_pool ~page_size:16384 () in
  let t = Cache_first.create pool in
  let c = Cache_first.cfg t in
  check_int "node lines" 11 c.Cache_first.w;
  check_int "slots" 23 c.slots;
  check_int "fn" 69 c.fn;
  check_int "fl" 87 c.fl

let test_cf_overflow_pages_exist () =
  (* a three-node-level tree at 4KB must place most leaf parents in
     overflow pages (paper Section 4.3.1: 51 of 57) *)
  let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
  let t = Cache_first.create pool in
  Cache_first.bulkload t (Array.init 300_000 (fun i -> (i, i))) ~fill:1.0;
  Cache_first.check t;
  Alcotest.(check bool) "tree has 3+ node levels" true (Cache_first.height t >= 3)

let test_cf_jp_tracks_splits () =
  let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
  let t = Cache_first.create pool in
  Cache_first.bulkload t (Array.init 50_000 (fun i -> (4 * i, i))) ~fill:1.0;
  for i = 0 to 20_000 do
    ignore (Cache_first.insert t ((4 * i) + 1) i)
  done;
  (* check () verifies the jump-pointer array lists exactly the leaf pages
     in order, so passing it after heavy splitting is the assertion *)
  Cache_first.check t

let test_cf_page_count_includes_jp () =
  let pool = Util.make_pool ~page_size:4096 () in
  let t = Cache_first.create pool in
  Cache_first.bulkload t (Array.init 10_000 (fun i -> (i, i))) ~fill:1.0;
  Alcotest.(check bool) "page_count > index pages" true
    (Cache_first.page_count t > Cache_first.index_page_count t - 1)

(* --- Shared: mature-tree space behaviour ------------------------------------- *)

let test_space_overhead_bounds () =
  (* paper Figure 16(a): disk-first overhead < 9%, cache-first < 5% right
     after a 100% bulkload *)
  let n = 200_000 in
  let pairs = Array.init n (fun i -> (3 * i, i)) in
  let pages kind =
    let pool = Util.make_pool ~page_size:16384 ~capacity:65536 () in
    let idx = Fpb_experiments.Setup.make_index kind pool in
    Fpb_btree_common.Index_sig.bulkload idx pairs ~fill:1.0;
    Fpb_btree_common.Index_sig.page_count idx
  in
  let base = pages Fpb_experiments.Setup.Disk_opt in
  let df = pages Fpb_experiments.Setup.Disk_first in
  let cf = pages Fpb_experiments.Setup.Cache_first in
  let pct x = 100. *. (float_of_int x /. float_of_int base -. 1.) in
  Alcotest.(check bool)
    (Printf.sprintf "disk-first overhead %.1f%% < 10%%" (pct df))
    true (pct df < 10.);
  Alcotest.(check bool)
    (Printf.sprintf "cache-first overhead %.1f%% < 10%%" (pct cf))
    true (pct cf < 10.)

let test_pbtree_allocated_bytes () =
  let sim = Sim.create () in
  let t = Fpb_pbtree.Pbtree.create sim in
  Fpb_pbtree.Pbtree.bulkload t (Array.init 10_000 (fun i -> (i, i))) ~fill:1.0;
  Alcotest.(check bool) "arena grows" true (Fpb_pbtree.Pbtree.allocated_bytes t > 10_000 * 8)

let suite =
  [
    Alcotest.test_case "jump array: build + cursor" `Quick test_jp_build_and_cursor;
    Alcotest.test_case "jump array: insert + chunk split" `Quick test_jp_insert_and_split;
    Alcotest.test_case "disk-first: tuned config" `Quick test_df_config;
    Alcotest.test_case "disk-first: split/reorg pressure" `Quick test_df_page_split_pressure;
    Alcotest.test_case "disk-first: custom widths" `Quick test_df_custom_widths;
    Alcotest.test_case "cache-first: tuned config" `Quick test_cf_config;
    Alcotest.test_case "cache-first: deep tree + overflow" `Slow test_cf_overflow_pages_exist;
    Alcotest.test_case "cache-first: jump array tracks splits" `Quick test_cf_jp_tracks_splits;
    Alcotest.test_case "cache-first: page count includes jump array" `Quick
      test_cf_page_count_includes_jp;
    Alcotest.test_case "space overhead bounds (Fig 16a)" `Slow test_space_overhead_bounds;
    Alcotest.test_case "pbtree arena accounting" `Quick test_pbtree_allocated_bytes;
  ]
