(* Tests for the node-size tuner: Table 2 values and general properties. *)

open Fpb_btree_common

let check_int = Alcotest.(check int)

(* Paper Table 2 fan-outs.  Two deviations are expected and documented in
   EXPERIMENTS.md: at 16KB the disk-first tuner finds fan-out 1988 (paper
   1953) with the same nonleaf width, and both are within the paper's 10%
   cost bound — ours is simply the larger page fan-out under goal G. *)
let test_table2_disk_first () =
  let check page_size (w, x, fanout) =
    let s = Tuning.disk_first ~page_size () in
    check_int "w" w (s.Tuning.df_w * 64);
    check_int "x" x (s.df_x * 64);
    check_int "fanout" fanout s.df_fanout;
    Alcotest.(check bool) "within 10% of optimal" true (s.df_ratio <= 1.1)
  in
  check 4096 (64, 384, 470);
  check 8192 (192, 256, 961);
  check 16384 (192, 576, 1988);
  check 32768 (256, 832, 4017)

let test_table2_cache_first () =
  let check page_size (node, fanout) =
    let s = Tuning.cache_first ~page_size () in
    check_int "node" node (s.Tuning.cf_w * 64);
    check_int "fanout" fanout s.cf_fanout;
    Alcotest.(check bool) "within 10% of optimal" true (s.cf_ratio <= 1.1)
  in
  check 4096 (576, 497);
  check 8192 (576, 994);
  check 16384 (704, 2001);
  check 32768 (640, 4029)

let test_table2_micro () =
  let check page_size (sub, fanout) =
    let s = Tuning.micro_index ~page_size () in
    check_int "sub" sub (s.Tuning.mi_sub_lines * 64);
    check_int "fanout" fanout s.mi_fanout
  in
  check 4096 (128, 496);
  check 8192 (192, 1008);
  check 16384 (320, 2032);
  check 32768 (320, 4064)

(* The paper's Section 3.2.1 example: 69-way cache-first nodes, 23 nodes
   per 16KB page; Section 4.3.1: 4KB pages fit a parent plus 6 of its 57ish
   children. *)
let test_paper_examples () =
  let s16 = Tuning.cache_first ~page_size:16384 () in
  check_int "69 children" 69 s16.Tuning.cf_nonleaf_cap;
  check_int "23 nodes per page" 23 s16.cf_nodes_per_page;
  let s4 = Tuning.cache_first ~page_size:4096 () in
  check_int "7 nodes per 4KB page" 7 s4.cf_nodes_per_page

let test_layout_capacities () =
  check_int "disk fanout 8KB > 1000 (paper example)" 1020
    (Layout.disk_fanout ~page_size:8192);
  check_int "df nonleaf 3 lines" 31 (Layout.df_nonleaf_capacity ~line_size:64 3);
  check_int "df leaf 8 lines" 63 (Layout.df_leaf_capacity ~line_size:64 8);
  check_int "cf leaf 11 lines" 87 (Layout.cf_leaf_capacity ~line_size:64 11);
  check_int "cf nonleaf 11 lines" 69 (Layout.cf_nonleaf_capacity ~line_size:64 11);
  check_int "align" 128 (Layout.align_up 65 64);
  check_int "align exact" 64 (Layout.align_up 64 64)

let prop_fanout_grows_with_page =
  Util.qtest ~count:20 "disk-first fan-out grows with page size"
    QCheck2.Gen.(6 -- 9)
    (fun lg ->
      let p1 = 1 lsl (lg + 6) and p2 = 1 lsl (lg + 7) in
      let s1 = Tuning.disk_first ~page_size:p1 () in
      let s2 = Tuning.disk_first ~page_size:p2 () in
      s2.Tuning.df_fanout > s1.Tuning.df_fanout)

let prop_cost_formula =
  Util.qtest ~count:50 "selected cost equals analytic formula"
    QCheck2.Gen.(oneofl [ 4096; 8192; 16384; 32768 ])
    (fun page_size ->
      let s = Tuning.disk_first ~page_size () in
      let t1 = 150 and tn = 10 in
      s.Tuning.df_cost
      = ((s.df_levels - 1) * (t1 + ((s.df_w - 1) * tn)))
        + t1
        + ((s.df_x - 1) * tn))

let prop_micro_page_fits =
  Util.qtest ~count:30 "micro-index layout fits the page exactly"
    QCheck2.Gen.(oneofl [ 4096; 8192; 16384; 32768 ])
    (fun page_size ->
      let s = Tuning.micro_index ~page_size () in
      let f = s.Tuning.mi_fanout in
      let key_off =
        Layout.align_up (Layout.mi_page_header + (s.mi_n_sub * 4)) 64
      in
      let ptr_off = key_off + Layout.align_up (f * 4) 64 in
      ptr_off + (f * 4) <= page_size)

let suite =
  [
    Alcotest.test_case "Table 2: disk-first" `Quick test_table2_disk_first;
    Alcotest.test_case "Table 2: cache-first" `Quick test_table2_cache_first;
    Alcotest.test_case "Table 2: micro-indexing" `Quick test_table2_micro;
    Alcotest.test_case "paper structural examples" `Quick test_paper_examples;
    Alcotest.test_case "layout capacities" `Quick test_layout_capacities;
    prop_fanout_grows_with_page;
    prop_cost_formula;
    prop_micro_page_fits;
  ]
