(* Model-based and unit tests shared by all four disk-resident index
   structures (disk-optimized B+-Tree, micro-indexing, disk-first and
   cache-first fpB+-Trees).  Every index is checked against a Map oracle
   over random operation sequences, with structural invariants re-verified
   along the way. *)

open Fpb_btree_common
module M = Map.Make (Int)

let kinds =
  [
    ("disk_opt", Fpb_experiments.Setup.Disk_opt);
    ("micro", Fpb_experiments.Setup.Micro);
    ("disk_first", Fpb_experiments.Setup.Disk_first);
    ("cache_first", Fpb_experiments.Setup.Cache_first);
  ]

let make_index ?page_size kind =
  let pool = Util.make_pool ?page_size ~capacity:16384 () in
  Fpb_experiments.Setup.make_index kind pool

(* --- Unit tests, parameterised over the index kind ------------------------ *)

let test_empty kind () =
  let idx = make_index kind in
  Alcotest.(check (option int)) "search empty" None (Index_sig.search idx 42);
  Alcotest.(check bool) "delete empty" false (Index_sig.delete idx 42);
  Alcotest.(check int) "scan empty" 0
    (Index_sig.range_scan idx ~start_key:0 ~end_key:1000 (fun _ _ -> ()));
  Index_sig.check idx

let test_single kind () =
  let idx = make_index kind in
  Alcotest.(check bool) "insert" true (Index_sig.insert idx 5 50 = `Inserted);
  Alcotest.(check (option int)) "found" (Some 50) (Index_sig.search idx 5);
  Alcotest.(check (option int)) "miss below" None (Index_sig.search idx 4);
  Alcotest.(check (option int)) "miss above" None (Index_sig.search idx 6);
  Alcotest.(check bool) "update" true (Index_sig.insert idx 5 51 = `Updated);
  Alcotest.(check (option int)) "updated" (Some 51) (Index_sig.search idx 5);
  Alcotest.(check bool) "delete" true (Index_sig.delete idx 5);
  Alcotest.(check (option int)) "gone" None (Index_sig.search idx 5);
  Index_sig.check idx

let test_bulkload_basics kind () =
  let idx = make_index kind in
  let pairs = Array.init 50_000 (fun i -> (3 * i, i)) in
  Index_sig.bulkload idx pairs ~fill:0.75;
  Index_sig.check idx;
  Alcotest.(check (option int)) "first" (Some 0) (Index_sig.search idx 0);
  Alcotest.(check (option int)) "last" (Some 49_999) (Index_sig.search idx 149_997);
  Alcotest.(check (option int)) "between" None (Index_sig.search idx 1);
  let count = ref 0 in
  let n =
    Index_sig.range_scan idx ~start_key:min_int ~end_key:max_int (fun _ _ ->
        incr count)
  in
  Alcotest.(check int) "full scan count" 50_000 n;
  Alcotest.(check int) "callback count" 50_000 !count

let test_bulkload_rejects kind () =
  let idx = make_index kind in
  Alcotest.(check bool) "bad fill rejected" true
    (try
       Index_sig.bulkload idx [| (1, 1) |] ~fill:0.0;
       false
     with Invalid_argument _ -> true)

let test_scan_boundaries kind () =
  let idx = make_index kind in
  Index_sig.bulkload idx (Array.init 10_000 (fun i -> (2 * i, i))) ~fill:1.0;
  let collect a b =
    let out = ref [] in
    ignore (Index_sig.range_scan idx ~start_key:a ~end_key:b (fun k _ -> out := k :: !out));
    List.rev !out
  in
  Alcotest.(check (list int)) "inclusive both ends" [ 100; 102; 104 ] (collect 100 104);
  Alcotest.(check (list int)) "odd bounds" [ 100; 102; 104 ] (collect 99 105);
  Alcotest.(check (list int)) "single" [ 100 ] (collect 100 100);
  Alcotest.(check (list int)) "empty between keys" [] (collect 101 101);
  Alcotest.(check (list int)) "inverted" [] (collect 104 100);
  Alcotest.(check int) "tail" 3
    (Index_sig.range_scan idx ~start_key:19_994 ~end_key:99_999_999 (fun _ _ -> ()))

let test_descending_inserts kind () =
  (* ever-smaller keys stress the untrusted-minimum routing fix *)
  let idx = make_index ~page_size:4096 kind in
  for i = 30_000 downto 1 do
    ignore (Index_sig.insert idx i i)
  done;
  Index_sig.check idx;
  for i = 1 to 30_000 do
    if Index_sig.search idx i <> Some i then Alcotest.failf "missing %d" i
  done

let test_sentinel_rejected kind () =
  let idx = make_index kind in
  Alcotest.(check bool) "sentinel rejected" true
    (try
       ignore (Index_sig.insert idx Key.sentinel 1);
       false
     with Invalid_argument _ -> true)

let test_prefetch_scan_equiv kind () =
  (* jump-pointer prefetching must not change scan results *)
  let idx = make_index kind in
  Index_sig.bulkload idx (Array.init 80_000 (fun i -> (2 * i, i))) ~fill:0.8;
  let run prefetch =
    let acc = ref [] in
    let n =
      Index_sig.range_scan idx ~prefetch ~start_key:31_111 ~end_key:88_888
        (fun k v -> acc := (k, v) :: !acc)
    in
    (n, List.rev !acc)
  in
  let n1, r1 = run false and n2, r2 = run true in
  Alcotest.(check int) "same count" n1 n2;
  Alcotest.(check bool) "same results" true (r1 = r2)

(* --- Model-based property tests ------------------------------------------- *)

type op = Insert of int * int | Delete of int | Search of int | Scan of int * int

let op_gen =
  let open QCheck2.Gen in
  let key = 0 -- 2000 in
  frequency
    [
      (5, map2 (fun k v -> Insert (k, v)) key (0 -- 10_000));
      (2, map (fun k -> Delete k) key);
      (2, map (fun k -> Search k) key);
      (1, map2 (fun a len -> Scan (a, a + len)) key (0 -- 300));
    ]

let apply_model m = function
  | Insert (k, v) -> M.add k v m
  | Delete k -> M.remove k m
  | Search _ | Scan _ -> m

let agrees idx m op =
  match op with
  | Insert (k, v) ->
      let r = Index_sig.insert idx k v in
      (match r with
      | `Inserted -> not (M.mem k m)
      | `Updated -> M.mem k m)
  | Delete k -> Index_sig.delete idx k = M.mem k m
  | Search k -> Index_sig.search idx k = M.find_opt k m
  | Scan (a, b) ->
      let got = ref [] in
      let n = Index_sig.range_scan idx ~start_key:a ~end_key:b (fun k v -> got := (k, v) :: !got) in
      let want =
        M.to_seq m |> Seq.filter (fun (k, _) -> k >= a && k <= b) |> List.of_seq
      in
      List.rev !got = want && n = List.length want

let model_test name kind =
  (* tiny pages (4KB smallest supported) so splits and reorganisations are
     exercised with modest op counts *)
  Util.qtest ~count:30
    (Printf.sprintf "%s agrees with Map oracle" name)
    QCheck2.Gen.(list_size (return 400) op_gen)
    (fun ops ->
      let idx = make_index ~page_size:4096 kind in
      let m = ref M.empty in
      let ok =
        List.for_all
          (fun op ->
            let good = agrees idx !m op in
            m := apply_model !m op;
            good)
          ops
      in
      Index_sig.check idx;
      (* final state equivalence *)
      let dumped = ref [] in
      Index_sig.iter idx (fun k v -> dumped := (k, v) :: !dumped);
      ok && List.rev !dumped = List.of_seq (M.to_seq !m))

let model_test_bulk name kind =
  (* start from a bulkloaded tree, then mutate *)
  Util.qtest ~count:15
    (Printf.sprintf "%s bulk+ops agrees with Map oracle" name)
    QCheck2.Gen.(
      pair
        (pair (1 -- 3000) (oneofl [ 0.6; 0.8; 1.0 ]))
        (list_size (return 250) op_gen))
    (fun ((n, fill), ops) ->
      let idx = make_index ~page_size:4096 kind in
      let pairs = Array.init n (fun i -> (2 * i, i)) in
      Index_sig.bulkload idx pairs ~fill;
      let m = ref (Array.fold_left (fun m (k, v) -> M.add k v m) M.empty pairs) in
      let ok =
        List.for_all
          (fun op ->
            let good = agrees idx !m op in
            m := apply_model !m op;
            good)
          ops
      in
      Index_sig.check idx;
      ok)

(* --- pB+-Tree (memory-resident) -------------------------------------------- *)

let pb_model_test =
  Util.qtest ~count:30 "pB+tree agrees with Map oracle"
    QCheck2.Gen.(pair (2 -- 8) (list_size (return 400) op_gen))
    (fun (node_lines, ops) ->
      let open Fpb_pbtree in
      let sim = Fpb_simmem.Sim.create () in
      let t = Pbtree.create ~node_lines sim in
      let m = ref M.empty in
      let ok =
        List.for_all
          (fun op ->
            let good =
              match op with
              | Insert (k, v) -> (
                  match Pbtree.insert t k v with
                  | `Inserted -> not (M.mem k !m)
                  | `Updated -> M.mem k !m)
              | Delete k -> Pbtree.delete t k = M.mem k !m
              | Search k -> Pbtree.search t k = M.find_opt k !m
              | Scan (a, b) ->
                  let got = ref [] in
                  let n =
                    Pbtree.range_scan t ~start_key:a ~end_key:b (fun k v ->
                        got := (k, v) :: !got)
                  in
                  let want =
                    M.to_seq !m
                    |> Seq.filter (fun (k, _) -> k >= a && k <= b)
                    |> List.of_seq
                  in
                  List.rev !got = want && n = List.length want
            in
            m := apply_model !m op;
            good)
          ops
      in
      Pbtree.check t;
      ok)

(* --- Suite ------------------------------------------------------------------ *)

let per_kind_cases =
  List.concat_map
    (fun (name, kind) ->
      [
        Alcotest.test_case (name ^ ": empty tree") `Quick (test_empty kind);
        Alcotest.test_case (name ^ ": single key") `Quick (test_single kind);
        Alcotest.test_case (name ^ ": bulkload basics") `Quick (test_bulkload_basics kind);
        Alcotest.test_case (name ^ ": bulkload rejects bad fill") `Quick
          (test_bulkload_rejects kind);
        Alcotest.test_case (name ^ ": scan boundaries") `Quick (test_scan_boundaries kind);
        Alcotest.test_case (name ^ ": descending inserts") `Quick
          (test_descending_inserts kind);
        Alcotest.test_case (name ^ ": sentinel key rejected") `Quick
          (test_sentinel_rejected kind);
        Alcotest.test_case (name ^ ": prefetch scan equivalence") `Quick
          (test_prefetch_scan_equiv kind);
        model_test name kind;
        model_test_bulk name kind;
      ])
    kinds

(* --- Reverse scans ----------------------------------------------------------- *)

let test_reverse_scan_disk_btree () =
  let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
  let t = Fpb_disk_btree.Disk_btree.create pool in
  Fpb_disk_btree.Disk_btree.bulkload t (Array.init 50_000 (fun i -> (2 * i, i))) ~fill:0.8;
  let fwd = ref [] and rev = ref [] in
  let n1 =
    Fpb_disk_btree.Disk_btree.range_scan t ~start_key:1001 ~end_key:77_777
      (fun k v -> fwd := (k, v) :: !fwd)
  in
  let n2 =
    Fpb_disk_btree.Disk_btree.range_scan_rev t ~prefetch:true ~start_key:1001
      ~end_key:77_777
      (fun k v -> rev := (k, v) :: !rev)
  in
  Alcotest.(check int) "same count" n1 n2;
  Alcotest.(check bool) "reverse order" true (!rev = List.rev !fwd)

let test_reverse_scan_disk_first () =
  let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
  let t = Fpb_core.Disk_first.create pool in
  Fpb_core.Disk_first.bulkload t (Array.init 50_000 (fun i -> (2 * i, i))) ~fill:1.0;
  (* splits exercise last-leaf maintenance *)
  for i = 0 to 20_000 do
    ignore (Fpb_core.Disk_first.insert t ((2 * i) + 1) i)
  done;
  Fpb_core.Disk_first.check t;
  let fwd = ref [] and rev = ref [] in
  let n1 =
    Fpb_core.Disk_first.range_scan t ~start_key:999 ~end_key:33_333 (fun k v ->
        fwd := (k, v) :: !fwd)
  in
  let n2 =
    Fpb_core.Disk_first.range_scan_rev t ~start_key:999 ~end_key:33_333
      (fun k v -> rev := (k, v) :: !rev)
  in
  Alcotest.(check int) "same count" n1 n2;
  Alcotest.(check bool) "reverse order" true (!rev = List.rev !fwd)

let prop_reverse_matches_forward =
  Util.qtest ~count:25 "disk-first reverse scan mirrors forward scan"
    QCheck2.Gen.(pair (pair (100 -- 3000) (0 -- 6000)) (0 -- 2000))
    (fun ((n, a), len) ->
      let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
      let t = Fpb_core.Disk_first.create pool in
      Fpb_core.Disk_first.bulkload t (Array.init n (fun i -> (3 * i, i))) ~fill:0.7;
      let b = a + len in
      let fwd = ref [] and rev = ref [] in
      let n1 = Fpb_core.Disk_first.range_scan t ~start_key:a ~end_key:b (fun k _ -> fwd := k :: !fwd) in
      let n2 = Fpb_core.Disk_first.range_scan_rev t ~start_key:a ~end_key:b (fun k _ -> rev := k :: !rev) in
      n1 = n2 && !rev = List.rev !fwd)

let suite =
  per_kind_cases
  @ [
      pb_model_test;
      Alcotest.test_case "disk_btree: reverse scan" `Quick test_reverse_scan_disk_btree;
      Alcotest.test_case "disk_first: reverse scan" `Quick test_reverse_scan_disk_first;
      prop_reverse_matches_forward;
    ]
