(* Properties of the DB2-style scan model (Figure 19 substrate). *)

open Fpb_dbsim

let small = { Dbsim.default with n_pages = 5000 }

let test_in_memory_floor () =
  let t = Dbsim.run { small with in_memory = true } in
  let per = (small.n_pages + small.smp_degree - 1) / small.smp_degree in
  Alcotest.(check int) "cpu bound" (per * small.cpu_per_page_ns) t;
  Alcotest.(check bool) "floor below disk runs" true
    (t < Dbsim.run { small with n_prefetchers = 0 })

let prop_more_prefetchers_not_slower =
  Util.qtest ~count:30 "more prefetchers never slower"
    QCheck2.Gen.(1 -- 11)
    (fun f ->
      Dbsim.run { small with n_prefetchers = f + 1 }
      <= Dbsim.run { small with n_prefetchers = f } + 1_000_000)

let prop_more_smp_not_slower =
  Util.qtest ~count:20 "more SMP degree never slower (no prefetch)"
    QCheck2.Gen.(1 -- 8)
    (fun s ->
      Dbsim.run { small with n_prefetchers = 0; smp_degree = s + 1 }
      <= Dbsim.run { small with n_prefetchers = 0; smp_degree = s })

let prop_in_memory_is_lower_bound =
  Util.qtest ~count:20 "in-memory bounds every configuration"
    QCheck2.Gen.(pair (1 -- 12) (1 -- 9))
    (fun (f, s) ->
      Dbsim.run { small with smp_degree = s; in_memory = true }
      <= Dbsim.run { small with n_prefetchers = f; smp_degree = s })

let prop_prefetch_beats_none_when_enough =
  Util.qtest ~count:10 "8 prefetchers beat no prefetch"
    QCheck2.Gen.(2 -- 9)
    (fun s ->
      Dbsim.run { small with n_prefetchers = 8; smp_degree = s }
      < Dbsim.run { small with n_prefetchers = 0; smp_degree = s })

let suite =
  [
    Alcotest.test_case "in-memory floor" `Quick test_in_memory_floor;
    prop_more_prefetchers_not_slower;
    prop_more_smp_not_slower;
    prop_in_memory_is_lower_bound;
    prop_prefetch_beats_none_when_enough;
  ]
