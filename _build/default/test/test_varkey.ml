(* Variable-length-key trees (the paper's deferred extension): slotted
   nodes, the baseline slotted B+-Tree and the varkey disk-first
   fpB+-Tree, model-checked against a string-keyed Map. *)

open Fpb_simmem
module SM = Map.Make (String)
module VB = Fpb_varkey.Vk_btree
module VD = Fpb_varkey.Vk_disk_first

let test_slotted_basics () =
  let sim = Sim.create () in
  let r = Fpb_simmem.Mem.make ~bytes:(Bytes.create 4096) ~base:0 in
  let nd = { Fpb_varkey.Slotted.r; off = 64; size = 512 } in
  Fpb_varkey.Slotted.init sim nd ~leaf:true;
  Alcotest.(check int) "empty" 0 (Fpb_varkey.Slotted.count sim nd);
  assert (Fpb_varkey.Slotted.insert_at sim nd ~i:0 "mango" 1);
  assert (Fpb_varkey.Slotted.insert_at sim nd ~i:0 "apple" 2);
  assert (Fpb_varkey.Slotted.insert_at sim nd ~i:2 "pear" 3);
  Alcotest.(check int) "count" 3 (Fpb_varkey.Slotted.count sim nd);
  Alcotest.(check string) "sorted slot 0" "apple" (Fpb_varkey.Slotted.key_at sim nd 0);
  Alcotest.(check string) "sorted slot 2" "pear" (Fpb_varkey.Slotted.key_at sim nd 2);
  Alcotest.(check int) "ptr" 1 (Fpb_varkey.Slotted.ptr_at sim nd 1);
  Alcotest.(check int) "find lower" 1 (Fpb_varkey.Slotted.find sim nd ~key:"mango" `Lower);
  Alcotest.(check int) "find upper" 2 (Fpb_varkey.Slotted.find sim nd ~key:"mango" `Upper);
  Fpb_varkey.Slotted.delete_at sim nd ~i:1;
  Alcotest.(check string) "after delete" "pear" (Fpb_varkey.Slotted.key_at sim nd 1);
  (* fill to overflow *)
  let i = ref 0 in
  while Fpb_varkey.Slotted.insert_at sim nd ~i:0 (Printf.sprintf "k%06d" !i) !i do
    incr i
  done;
  Alcotest.(check bool) "eventually full" true (!i > 10);
  (* rebuild compacts *)
  let items = Fpb_varkey.Slotted.entries sim nd in
  Fpb_varkey.Slotted.rebuild sim nd items;
  Alcotest.(check int) "rebuild keeps entries" (List.length items)
    (Fpb_varkey.Slotted.count sim nd)

(* Deterministic random string keys of mixed length. *)
let key_gen rng _ =
  let len = 3 + Fpb_workload.Prng.int rng 20 in
  String.init len (fun _ -> Char.chr (97 + Fpb_workload.Prng.int rng 26))

module type VK = sig
  type t

  val create : unit -> t
  val insert : t -> string -> int -> [ `Inserted | `Updated ]
  val delete : t -> string -> bool
  val search : t -> string -> int option
  val scan : t -> string -> string -> (string -> int -> unit) -> int
  val check : t -> unit
end

let oracle_run (module T : VK) ~ops ~seed =
  let t = T.create () in
  let rng = Fpb_workload.Prng.create seed in
  let m = ref SM.empty in
  for step = 1 to ops do
    let k = key_gen rng () in
    (match Fpb_workload.Prng.int rng 10 with
    | 0 | 1 | 2 | 3 | 4 | 5 ->
        let v = Fpb_workload.Prng.int rng 10000 in
        let r = T.insert t k v in
        assert ((r = `Updated) = SM.mem k !m);
        m := SM.add k v !m
    | 6 | 7 -> assert (T.search t k = SM.find_opt k !m)
    | 8 ->
        let d = T.delete t k in
        assert (d = SM.mem k !m);
        m := SM.remove k !m
    | _ ->
        let k2 = key_gen rng () in
        let a = min k k2 and b = max k k2 in
        let got = ref [] in
        let n = T.scan t a b (fun k v -> got := (k, v) :: !got) in
        let want =
          SM.to_seq !m |> Seq.filter (fun (k, _) -> k >= a && k <= b) |> List.of_seq
        in
        assert (List.rev !got = want && n = List.length want));
    if step mod 2000 = 0 then T.check t
  done;
  T.check t;
  (* every key present *)
  SM.iter (fun k v -> assert (T.search t k = Some v)) !m

let vb_module pool =
  (module struct
    type nonrec t = VB.t

    let create () = VB.create pool
    let insert = VB.insert
    let delete = VB.delete
    let search = VB.search
    let scan t a b f = VB.range_scan t ~start_key:a ~end_key:b f
    let check = VB.check
  end : VK)

let vd_module pool =
  (module struct
    type nonrec t = VD.t

    let create () = VD.create pool
    let insert = VD.insert
    let delete = VD.delete
    let search = VD.search
    let scan t a b f = VD.range_scan t ~start_key:a ~end_key:b f
    let check = VD.check
  end : VK)

let test_vk_btree_oracle () =
  let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
  oracle_run (vb_module pool) ~ops:12_000 ~seed:51

let test_vk_disk_first_oracle () =
  let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
  oracle_run (vd_module pool) ~ops:12_000 ~seed:52

let prop_vk_disk_first_small =
  Util.qtest ~count:20 "vk disk-first random small runs"
    QCheck2.Gen.(pair (0 -- 10_000) (50 -- 600))
    (fun (seed, ops) ->
      let pool = Util.make_pool ~page_size:4096 ~capacity:16384 () in
      oracle_run (vd_module pool) ~ops ~seed;
      true)

let test_vk_sentinel_cases () =
  let pool = Util.make_pool ~page_size:4096 () in
  let t = VD.create pool in
  Alcotest.(check bool) "empty key rejected" true
    (try
       ignore (VD.insert t "" 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "oversized key rejected" true
    (try
       ignore (VD.insert t (String.make 100 'x') 1);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check (option int)) "search empty tree" None (VD.search t "zzz")

let suite =
  [
    Alcotest.test_case "slotted node basics" `Quick test_slotted_basics;
    Alcotest.test_case "vk B+tree vs string Map" `Slow test_vk_btree_oracle;
    Alcotest.test_case "vk disk-first vs string Map" `Slow test_vk_disk_first_oracle;
    prop_vk_disk_first_small;
    Alcotest.test_case "vk key validation" `Quick test_vk_sentinel_cases;
  ]
