(* Workload generator tests: determinism, distinctness, sortedness. *)

open Fpb_workload

let test_prng_deterministic () =
  let a = Prng.create 42 and b = Prng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "same stream" (Prng.int a 1_000_000) (Prng.int b 1_000_000)
  done;
  let c = Prng.create 43 in
  Alcotest.(check bool) "different seed differs" true
    (List.init 10 (fun _ -> Prng.int a 1000) <> List.init 10 (fun _ -> Prng.int c 1000))

let test_bulk_pairs_sorted_distinct () =
  let rng = Prng.create 7 in
  let pairs = Keygen.bulk_pairs rng 100_000 in
  Alcotest.(check int) "count" 100_000 (Array.length pairs);
  for i = 1 to Array.length pairs - 1 do
    if fst pairs.(i - 1) >= fst pairs.(i) then
      Alcotest.failf "not strictly increasing at %d" i
  done;
  Array.iter
    (fun (k, _) ->
      if not (Fpb_btree_common.Key.valid k) then Alcotest.failf "invalid key %d" k)
    pairs

let test_shuffle_permutes () =
  let rng = Prng.create 9 in
  let a = Array.init 1000 Fun.id in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "permutation" true (sorted = Array.init 1000 Fun.id);
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 1000 Fun.id)

let test_probes_and_ranges () =
  let rng = Prng.create 11 in
  let pairs = Keygen.bulk_pairs rng 10_000 in
  let probes = Keygen.probes rng pairs 500 in
  Array.iter
    (fun p ->
      if not (Array.exists (fun (k, _) -> k = p) pairs) then
        Alcotest.failf "probe %d not a key" p)
    probes;
  let ranges = Keygen.ranges rng pairs 50 ~span:100 in
  Array.iter
    (fun (a, b) -> if a > b then Alcotest.failf "inverted range %d > %d" a b)
    ranges

let prop_int_bounds =
  Util.qtest "Prng.int stays in bounds"
    QCheck2.Gen.(pair (1 -- 1000) (0 -- 1000000))
    (fun (bound, seed) ->
      let rng = Prng.create seed in
      let v = Prng.int rng bound in
      v >= 0 && v < bound)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "bulk pairs sorted distinct valid" `Quick test_bulk_pairs_sorted_distinct;
    Alcotest.test_case "shuffle permutes" `Quick test_shuffle_permutes;
    Alcotest.test_case "probes and ranges" `Quick test_probes_and_ranges;
    prop_int_bounds;
  ]
