test/test_simmem.ml: Alcotest Bytes Cache Clock Config Fpb_simmem List Mem Printf QCheck2 Sim Stats Util
