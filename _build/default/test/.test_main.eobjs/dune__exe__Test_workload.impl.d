test/test_workload.ml: Alcotest Array Fpb_btree_common Fpb_workload Fun Keygen List Prng QCheck2 Util
