test/test_tuning.ml: Alcotest Fpb_btree_common Layout QCheck2 Tuning Util
