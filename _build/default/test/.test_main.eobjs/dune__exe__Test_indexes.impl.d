test/test_indexes.ml: Alcotest Array Fpb_btree_common Fpb_core Fpb_disk_btree Fpb_experiments Fpb_pbtree Fpb_simmem Index_sig Int Key List Map Pbtree Printf QCheck2 Seq Util
