test/test_varkey.ml: Alcotest Bytes Char Fpb_simmem Fpb_varkey Fpb_workload List Map Printf QCheck2 Seq Sim String Util
