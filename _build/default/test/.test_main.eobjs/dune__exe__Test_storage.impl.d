test/test_storage.ml: Alcotest Array Buffer_pool Bytes Clock Disk_model Fpb_simmem Fpb_storage List Mem Page_store Printf QCheck2 Sim Util Vec
