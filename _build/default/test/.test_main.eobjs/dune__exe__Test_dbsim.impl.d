test/test_dbsim.ml: Alcotest Dbsim Fpb_dbsim QCheck2 Util
