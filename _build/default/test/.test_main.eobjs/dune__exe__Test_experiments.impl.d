test/test_experiments.ml: Alcotest Exp_config Exp_db2 Fpb_experiments Fpb_simmem List Registry Scale Setup String Table
