test/test_properties.ml: Alcotest Array Bytes Fpb_btree_common Fpb_core Fpb_experiments Fpb_simmem Fpb_storage Fpb_varkey Fpb_workload Hashtbl Index_sig Int List Map Printf QCheck2 Util
