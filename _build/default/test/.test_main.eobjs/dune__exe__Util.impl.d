test/util.ml: Buffer_pool Disk_model Fpb_simmem Fpb_storage Page_store QCheck2 QCheck_alcotest Sim
