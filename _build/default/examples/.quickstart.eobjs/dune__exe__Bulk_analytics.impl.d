examples/bulk_analytics.ml: Array Buffer_pool Clock Fmt Fpb Fpb_core Fpb_simmem Fpb_storage Fpb_workload List Seq Sim
