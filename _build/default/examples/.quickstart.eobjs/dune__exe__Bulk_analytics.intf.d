examples/bulk_analytics.mli:
