examples/quickstart.ml: Array Fmt Fpb Fpb_core Fpb_simmem Fpb_workload Sim Stats
