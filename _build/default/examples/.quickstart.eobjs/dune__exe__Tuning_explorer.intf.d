examples/tuning_explorer.mli:
