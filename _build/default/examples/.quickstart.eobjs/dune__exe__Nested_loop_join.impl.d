examples/nested_loop_join.ml: Array Buffer_pool Clock Fmt Fpb Fpb_core Fpb_simmem Fpb_storage Fpb_workload Sim
