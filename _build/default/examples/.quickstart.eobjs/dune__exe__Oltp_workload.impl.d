examples/oltp_workload.ml: Array Fmt Fpb_btree_common Fpb_experiments Fpb_simmem Fpb_workload Index_sig Key List Run Setup Sim Stats
