examples/tuning_explorer.ml: Fmt Fpb_btree_common List Tuning
