examples/nested_loop_join.mli:
