examples/quickstart.mli:
