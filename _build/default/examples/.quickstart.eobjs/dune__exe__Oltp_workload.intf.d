examples/oltp_workload.mli:
