(* DSS-style example (the paper's Section 2.2 motivation): large range
   scans on a non-clustered index over a multi-disk system.  Compares a
   plain scan against jump-pointer-array prefetching as the disk count
   grows, on a mature (update-aged) tree whose leaf pages are no longer
   sequential on disk.

   Run with: dune exec examples/bulk_analytics.exe *)

open Fpb_simmem
open Fpb_storage
open Fpb_core

let build_mature ~n_disks =
  let sim = Sim.create () in
  let pool = Fpb.make_pool ~page_size:16384 ~n_disks ~capacity:50_000 sim in
  let index = Fpb.Disk_first.create pool in
  (* bulkload 90% of the keys, insert the remaining 10% in random order *)
  let n = 1_000_000 in
  let rng = Fpb_workload.Prng.create 5 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let bulk = Array.of_seq (Seq.filter (fun (k, _) -> k mod 10 <> 3) (Array.to_seq pairs)) in
  let rest = Array.of_seq (Seq.filter (fun (k, _) -> k mod 10 = 3) (Array.to_seq pairs)) in
  Fpb.Disk_first.bulkload index bulk ~fill:1.0;
  Fpb_workload.Prng.shuffle rng rest;
  Array.iter (fun (k, v) -> ignore (Fpb.Disk_first.insert index k v)) rest;
  (sim, pool, index, pairs)

let () =
  Fmt.pr "Large range scan (500K entries) on a mature 1M-key index:@.";
  Fmt.pr "%6s  %14s  %14s  %8s@." "disks" "plain (ms)" "prefetch (ms)" "speedup";
  List.iter
    (fun n_disks ->
      let sim, pool, index, pairs = build_mature ~n_disks in
      let scan ~prefetch =
        let a = fst pairs.(100_000) and b = fst pairs.(599_999) in
        Buffer_pool.clear pool;
        let t0 = Clock.now sim.Sim.clock in
        ignore (Fpb.Disk_first.range_scan index ~prefetch ~start_key:a ~end_key:b (fun _ _ -> ()));
        Clock.now sim.Sim.clock - t0
      in
      let plain = scan ~prefetch:false in
      let pf = scan ~prefetch:true in
      Fmt.pr "%6d  %14.1f  %14.1f  %8.2f@." n_disks
        (float_of_int plain /. 1e6)
        (float_of_int pf /. 1e6)
        (float_of_int plain /. float_of_int pf))
    [ 1; 2; 4; 8; 10 ]
