(* Quickstart: build a disk-first fpB+-Tree on the simulated machine,
   exercise every basic operation, and look at the cache/I-O statistics.

   Run with: dune exec examples/quickstart.exe *)

open Fpb_simmem
open Fpb_core

let () =
  (* A simulated machine: CPU + cache model, 4 disks, a 10,000-page buffer
     pool of 16KB pages. *)
  let sim = Sim.create () in
  let pool = Fpb.make_pool ~page_size:16384 ~n_disks:4 ~capacity:10_000 sim in

  (* The index tunes its in-page node sizes for the page size (Table 2). *)
  let index = Fpb.Disk_first.create pool in

  (* Bulk-build from sorted (key, tuple id) pairs at 80% occupancy. *)
  let pairs = Array.init 500_000 (fun i -> (2 * i, i)) in
  Fpb.Disk_first.bulkload index pairs ~fill:0.8;
  Fmt.pr "bulkloaded %d entries: %d page levels, %d pages@."
    (Array.length pairs)
    (Fpb.Disk_first.height index)
    (Fpb.Disk_first.page_count index);

  (* Point queries. *)
  assert (Fpb.Disk_first.search index 123_456 = Some 61_728);
  assert (Fpb.Disk_first.search index 123_457 = None);

  (* Updates. *)
  assert (Fpb.Disk_first.insert index 123_457 999 = `Inserted);
  assert (Fpb.Disk_first.insert index 123_457 1000 = `Updated);
  assert (Fpb.Disk_first.delete index 123_457);
  assert (not (Fpb.Disk_first.delete index 123_457));

  (* Range scan with jump-pointer-array prefetching (default on). *)
  let hits = ref 0 in
  let n =
    Fpb.Disk_first.range_scan index ~start_key:10_000 ~end_key:30_000
      (fun _k _v -> incr hits)
  in
  Fmt.pr "range scan [10000, 30000]: %d entries@." n;
  assert (n = !hits && n = 10_001);

  (* Measure: 1000 random searches with a cold CPU cache. *)
  Sim.flush_cache sim;
  Sim.reset_stats sim;
  let rng = Fpb_workload.Prng.create 1 in
  for _ = 1 to 1000 do
    ignore (Fpb.Disk_first.search index (2 * Fpb_workload.Prng.int rng 500_000))
  done;
  Fmt.pr "1000 searches: %a@." Stats.pp sim.Sim.stats;
  Fmt.pr "quickstart OK@."
