(* Tuning explorer: how the optimal fpB+-Tree node sizes (paper
   Section 3.1.1 / Table 2) shift with the memory system.  Sweeps cache
   line size and memory latency, printing the tuner's selections — useful
   when porting the index to different hardware.

   Run with: dune exec examples/tuning_explorer.exe *)

open Fpb_btree_common

let show ~t1 ~tnext ~line_size ~page_size =
  let df = Tuning.disk_first ~t1 ~tnext ~line_size ~page_size () in
  let cf = Tuning.cache_first ~t1 ~tnext ~line_size ~page_size () in
  Fmt.pr
    "  T1=%-4d Tnext=%-3d line=%-4d | disk-first: nonleaf %4dB leaf %4dB fanout %5d | cache-first: node %4dB fanout %5d@."
    t1 tnext line_size (df.Tuning.df_w * line_size) (df.df_x * line_size)
    df.df_fanout (cf.Tuning.cf_w * line_size) cf.cf_fanout

let () =
  let page_size = 16384 in
  Fmt.pr "Tuned node sizes for %dKB pages@." (page_size / 1024);
  Fmt.pr "@.Varying the cache line size (T1=150, Tnext=10):@.";
  List.iter (fun line_size -> show ~t1:150 ~tnext:10 ~line_size ~page_size) [ 32; 64; 128 ];
  Fmt.pr "@.Varying memory latency (64B lines):@.";
  List.iter (fun t1 -> show ~t1 ~tnext:10 ~line_size:64 ~page_size) [ 80; 150; 300; 600 ];
  Fmt.pr "@.Varying the pipelined-miss gap (T1=150):@.";
  List.iter (fun tnext -> show ~t1:150 ~tnext ~line_size:64 ~page_size) [ 2; 10; 30; 75 ];
  Fmt.pr
    "@.Reading: slower memory relative to Tnext favours wider nodes (more@.lines per prefetch group); wider lines reduce the win of multi-line nodes.@."
