(** Slotted nodes for variable-length keys (the paper defers
    variable-length keys to its full version; this is the classic
    slotted-page organisation applied at node granularity so the
    fpB+-Tree in-page scheme carries over).

    A node occupies [size] bytes at byte offset [off] of a region:
    a 12-byte header (entry count, heap top, next/prev links, flags,
    leftmost child), then a slot array of 2-byte entry offsets in key
    order, with the entry heap growing downward from the end of the
    node.  An entry is [u8 klen | key bytes | 4-byte pointer].

    All charged accessors run on the simulated machine — they touch the
    cache lines they read and charge compare/copy work; the [peek_*]
    variants are uncharged and exist for checkers. *)

open Fpb_simmem

(** Header size in bytes (before the slot array). *)
val header : int

(** Longest representable key ([klen] is one byte). *)
val max_key_len : int

(** {1 Header field offsets} (for {!v}/{!setv}/{!peek}) *)

val o_n : int  (** u16 entry count *)

val o_heap : int  (** u16 heap top (node-relative offset of lowest used byte) *)

val o_next : int  (** u16 forward chain link, user-defined units *)

val o_prev : int  (** u16 backward chain link, user-defined units *)

val o_flags : int  (** u16 flags; bit 0 = leaf *)

val o_leftmost : int
(** u16 extra "child 0" pointer of nonleaf nodes (the classic
    n-keys/(n+1)-children convention), user-defined units *)

(** A node: a [size]-byte window at byte [off] of region [r]. *)
type node = { r : Mem.region; off : int; size : int }

(** [v sim nd field] is the charged read of header [field] (one of the
    [o_*] offsets above). *)
val v : Sim.t -> node -> int -> int

val setv : Sim.t -> node -> int -> int -> unit

(** Uncharged header read (checkers). *)
val peek : node -> int -> int

(** Format [nd] as an empty node. *)
val init : Sim.t -> node -> leaf:bool -> unit

val count : Sim.t -> node -> int
val is_leaf : Sim.t -> node -> bool

(** Bytes still available for one more entry (slot + heap). *)
val free_space : Sim.t -> node -> int

(** On-node footprint of an entry holding [key]: length byte + key +
    pointer. *)
val entry_bytes : string -> int

(** Charged read of the key in slot [i]. *)
val key_at : Sim.t -> node -> int -> string

val ptr_at : Sim.t -> node -> int -> int
val set_ptr_at : Sim.t -> node -> int -> int -> unit

(** First slot whose key is [>= key] ([`Lower]) or [> key] ([`Upper]);
    charged binary search over the slot array. *)
val find : Sim.t -> node -> key:string -> [ `Lower | `Upper ] -> int

(** [insert_at sim nd ~i key ptr] inserts at slot [i]; [false] if the
    node lacks space.
    @raise Invalid_argument if [key] exceeds {!max_key_len}. *)
val insert_at : Sim.t -> node -> i:int -> string -> int -> bool

(** Remove slot [i] (the heap space is reclaimed only by {!rebuild}). *)
val delete_at : Sim.t -> node -> i:int -> unit

(** All (key, ptr) entries in slot order (charged). *)
val entries : Sim.t -> node -> (string * int) list

(** Rebuild the node from scratch with the given entries (compacts the
    heap).  Preserves links/flags/leftmost.
    @raise Failure if the entries do not fit. *)
val rebuild : Sim.t -> node -> (string * int) list -> unit

(** Space used by entries (heap bytes + slots). *)
val used_bytes : Sim.t -> node -> int

(** {1 Uncharged entry access (checkers)} *)

val peek_key : node -> int -> string
val peek_ptr : node -> int -> int
