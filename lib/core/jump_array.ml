(* External jump-pointer array (paper Section 3.3 and [6]): a chunked linked
   list of leaf-page IDs used to prefetch the leaves of a range scan.
   Chunks are ordinary pages (so reading the array costs buffer-pool and
   disk work like everything else), bulkloaded with gaps so insertions
   rarely split a chunk.  Every leaf page stores the ID of the chunk that
   holds its entry; a chunk split re-points the moved pages through the
   [on_moved] callback.

   Chunk page layout: 0 i32 next chunk; 4 i32 prev chunk; 8 u16 n;
   12.. page IDs (4B each). *)

open Fpb_simmem
open Fpb_storage

let c_next = 0
let c_prev = 4
let c_n = 8
let ids_base = 12

type t = {
  pool : Buffer_pool.t;
  sim : Sim.t;
  capacity : int;  (* ids per chunk *)
  mutable head : int;  (* first chunk page, nil if empty *)
  mutable n_chunks : int;
}

let nil = Page_store.nil

let create pool =
  let sim = Buffer_pool.sim pool in
  let page_size = Page_store.page_size (Buffer_pool.store pool) in
  { pool; sim; capacity = (page_size - ids_base) / 4; head = nil; n_chunks = 0 }

let page_count t = t.n_chunks

let id_off i = ids_base + (4 * i)

let new_chunk t =
  let page, r = Buffer_pool.create_page t.pool in
  t.n_chunks <- t.n_chunks + 1;
  Mem.write_i32 t.sim r c_next nil;
  Mem.write_i32 t.sim r c_prev nil;
  Mem.write_u16 t.sim r c_n 0;
  (page, r)

(* Bulk-build from page IDs in order, filling chunks to [fill] (gaps absorb
   later insertions).  [on_assign page ~chunk] records each page's chunk. *)
let build t pages ~fill ~on_assign =
  if t.head <> nil then invalid_arg "Jump_array.build: not empty";
  let per = max 1 (int_of_float (float_of_int t.capacity *. fill)) in
  let n = Array.length pages in
  let prev = ref nil in
  let pos = ref 0 in
  while !pos < n do
    let cnt = min per (n - !pos) in
    let chunk, r = new_chunk t in
    Mem.write_u16 t.sim r c_n cnt;
    for j = 0 to cnt - 1 do
      Mem.write_i32 t.sim r (id_off j) pages.(!pos + j);
      on_assign pages.(!pos + j) ~chunk
    done;
    Mem.write_i32 t.sim r c_prev !prev;
    if !prev <> nil then
      Buffer_pool.with_page t.pool !prev (fun pr ->
          Mem.write_i32 t.sim pr c_next chunk;
          Buffer_pool.mark_dirty t.pool !prev)
    else t.head <- chunk;
    Buffer_pool.unpin t.pool chunk;
    prev := chunk;
    pos := !pos + cnt
  done;
  if t.head = nil then begin
    (* empty array still gets one chunk so inserts have a home *)
    let chunk, _r = new_chunk t in
    Buffer_pool.unpin t.pool chunk;
    t.head <- chunk
  end

(* Insert [new_page] immediately after [after_page] in chunk [chunk]
   (after_page = nil inserts at the front of the chunk).  Splits the chunk
   when full; [on_assign] is called for every page whose chunk changes and
   for [new_page]. *)
let insert_after t ~chunk ~after_page ~new_page ~on_assign =
  let r = Buffer_pool.get t.pool chunk in
  Buffer_pool.mark_dirty t.pool chunk;
  let n = Mem.read_u16 t.sim r c_n in
  let pos =
    if after_page = nil then 0
    else begin
      let rec find i =
        if i >= n then
          Fmt.kstr failwith "Jump_array: page %d not in chunk %d" after_page chunk
        else if Mem.read_i32 t.sim r (id_off i) = after_page then i + 1
        else find (i + 1)
      in
      find 0
    end
  in
  if n < t.capacity then begin
    Mem.blit t.sim r (id_off pos) r (id_off (pos + 1)) ((n - pos) * 4);
    Mem.write_i32 t.sim r (id_off pos) new_page;
    Mem.write_u16 t.sim r c_n (n + 1);
    on_assign new_page ~chunk;
    Buffer_pool.unpin t.pool chunk
  end
  else begin
    (* split the chunk, then retry in the correct half *)
    let mid = n / 2 in
    let moved = n - mid in
    let right, rr = new_chunk t in
    Mem.blit t.sim r (id_off mid) rr (id_off 0) (moved * 4);
    Mem.write_u16 t.sim rr c_n moved;
    Mem.write_u16 t.sim r c_n mid;
    for j = 0 to moved - 1 do
      on_assign (Mem.read_i32 t.sim rr (id_off j)) ~chunk:right
    done;
    let old_next = Mem.read_i32 t.sim r c_next in
    Mem.write_i32 t.sim rr c_next old_next;
    Mem.write_i32 t.sim rr c_prev chunk;
    Mem.write_i32 t.sim r c_next right;
    if old_next <> nil then
      Buffer_pool.with_page t.pool old_next (fun onr ->
          Mem.write_i32 t.sim onr c_prev right;
          Buffer_pool.mark_dirty t.pool old_next);
    Buffer_pool.mark_dirty t.pool right;
    let target, tr, tn, tpos =
      if pos <= mid then (chunk, r, mid, pos) else (right, rr, moved, pos - mid)
    in
    Mem.blit t.sim tr (id_off tpos) tr (id_off (tpos + 1)) ((tn - tpos) * 4);
    Mem.write_i32 t.sim tr (id_off tpos) new_page;
    Mem.write_u16 t.sim tr c_n (tn + 1);
    on_assign new_page ~chunk:target;
    Buffer_pool.unpin t.pool right;
    Buffer_pool.unpin t.pool chunk
  end

(* Cursor over the array, used to pump range-scan prefetches
   incrementally. *)
type cursor = { arr : t; mutable chunk : int; mutable idx : int }

(* Cursor positioned ON [page] within [chunk] (the next [next] call yields
   [page] itself). *)
let cursor_at t ~chunk ~page =
  let r = Buffer_pool.get t.pool chunk in
  let n = Mem.read_u16 t.sim r c_n in
  let rec find i =
    if i >= n then
      Fmt.kstr failwith "Jump_array.cursor_at: page %d not in chunk %d" page chunk
    else if Mem.read_i32 t.sim r (id_off i) = page then i
    else find (i + 1)
  in
  let idx = find 0 in
  Buffer_pool.unpin t.pool chunk;
  { arr = t; chunk; idx }

let rec next cur =
  if cur.chunk = nil then None
  else begin
    let t = cur.arr in
    let r = Buffer_pool.get t.pool cur.chunk in
    let n = Mem.read_u16 t.sim r c_n in
    if cur.idx < n then begin
      let id = Mem.read_i32 t.sim r (id_off cur.idx) in
      cur.idx <- cur.idx + 1;
      Buffer_pool.unpin t.pool cur.chunk;
      Some id
    end
    else begin
      let nxt = Mem.read_i32 t.sim r c_next in
      Buffer_pool.unpin t.pool cur.chunk;
      cur.chunk <- nxt;
      cur.idx <- 0;
      if nxt = nil then None else next cur
    end
  end

(* Free every chunk and empty the array (used before a bulk rebuild). *)
let reset t =
  let cur = ref t.head in
  while !cur <> nil do
    let r = Buffer_pool.get t.pool !cur in
    let next = Mem.read_i32 t.sim r c_next in
    Buffer_pool.unpin t.pool !cur;
    Buffer_pool.free_page t.pool !cur;
    t.n_chunks <- t.n_chunks - 1;
    cur := next
  done;
  t.head <- nil

(* Durable handle metadata: the chunk-list head and count, for WAL crash
   recovery (chunk contents live in pages and are replayed by redo). *)
let meta t = (t.head, t.n_chunks)

let restore_meta t ~head ~n_chunks =
  t.head <- head;
  t.n_chunks <- n_chunks

(* Uncharged: all IDs in order (tests). *)
let peek_all t =
  let out = ref [] in
  let cur = ref t.head in
  while !cur <> nil do
    let r = Buffer_pool.get t.pool !cur in
    Buffer_pool.unpin t.pool !cur;
    let n = Mem.peek_u16 r c_n in
    for i = 0 to n - 1 do
      out := Mem.peek_i32 r (id_off i) :: !out
    done;
    cur := Mem.peek_i32 r c_next
  done;
  List.rev !out
