(* Cache-first fpB+-Tree (paper, Section 3.2): a cache-optimized B+-Tree of
   uniform w-line nodes, intelligently placed into disk pages.

   Placement goals (Section 3.2.1):
   - leaf pages contain only (sibling) leaf nodes, for range-scan I/O;
   - a nonleaf node is placed in the same page as its parent when the
     parent is its page's top-level node and the bulkload bitmap selects
     it ("aggressive placement"), so a search visits fewer pages;
   - leaf-parent nodes that do not fit with their parents go to dedicated
     overflow pages (their children live in leaf pages anyway).

   Pointers in nonleaf nodes are full pointers: 4-byte page ID + 2-byte
   in-page offset (the child node's starting line).  Following a pointer
   whose page ID equals the current page skips the buffer manager — the
   payoff of aggressive placement.

   Updates (Section 3.2.2): leaf node splits allocate in the same leaf
   page if possible, otherwise the leaf page is split (second half of its
   leaf-node chain moves to a new page; parents found via the page's
   back-pointer and the leaf-parent sibling chain).  Leaf-parent node
   splits allocate from overflow pages; higher nonleaf node splits
   allocate from per-level allocation pools (a simplification of the
   paper's Figure 9(c) page split, documented in DESIGN.md).

   An external jump-pointer array [Jump_array] holds all leaf page IDs for
   range-scan I/O prefetching; every leaf page records its chunk.

   Page layout (64B header, then node slots of w lines):
     0  u8  kind (0 leaf page, 1 nonleaf, 2 overflow)
     2  u16 bump (node slots ever used)
     4  i32 next page   8 i32 prev page        (leaf pages)
     12 i32 parent page 16 u16 parent line     (leaf pages: back-pointer)
     18 u16 free slot head (line; 0 = none)
     20 i32 jump-pointer chunk                 (leaf pages)
     24 u16 first leaf line (chain order)      (leaf pages)
     26 u16 free slot count

   Node layout (8B header): 0 u16 n; 2 u16 next line; 4 i32 next page.
   Leaf: keys (4B x fl) then tuple IDs (4B x fl).
   Nonleaf: keys (4B x fn), child pages (4B x fn), child lines (2B x fn). *)

open Fpb_simmem
open Fpb_storage
open Fpb_btree_common

type cfg = {
  page_size : int;
  page_lines : int;
  w : int;  (* node size in lines *)
  fl : int;  (* leaf node capacity *)
  fn : int;  (* nonleaf node capacity *)
  slots : int;  (* node slots per page *)
}

type ptr = { pg : int; ln : int }

let null_ptr = { pg = Page_store.nil; ln = 0 }

type t = {
  pool : Buffer_pool.t;
  sim : Sim.t;
  cfg : cfg;
  mutable root : ptr;
  mutable levels : int;  (* node levels; 1 = root is a leaf node *)
  mutable n_pages : int;
  jp : Jump_array.t;
  mutable overflow_page : int;  (* current overflow allocation page *)
  level_pool : (int, int) Hashtbl.t;  (* tree depth -> allocation page *)
  mutable io_prefetch_distance : int;
  level_acc : int array;  (* node accesses by depth, slot 0 = root *)
  mutable trace : Fpb_obs.Trace.t option;
}

let name = "cache-first fpB+tree"
let nil = Page_store.nil
let line_bytes = 64

(* Page header offsets *)
let h_kind = 0
let h_bump = 2
let h_next = 4
let h_prev = 8
let h_parent_pg = 12
let h_parent_ln = 16
let h_free_head = 18
let h_jp_chunk = 20
let h_first_leaf = 24
let h_free_count = 26

(* Node field offsets *)
let n_count = 0
let n_next_ln = 2
let n_next_pg = 4
let node_header = 8

let cfg_of_width ~page_size ~w =
  let page_lines = page_size / line_bytes in
  {
    page_size;
    page_lines;
    w;
    fl = Layout.cf_leaf_capacity ~line_size:line_bytes w;
    fn = Layout.cf_nonleaf_capacity ~line_size:line_bytes w;
    slots = (page_lines - 1) / w;
  }

let make_cfg page_size =
  let sel = Tuning.cache_first ~page_size () in
  cfg_of_width ~page_size ~w:sel.Tuning.cf_w

let node_off line = line * line_bytes
let key_off line i = node_off line + node_header + (Key.size * i)
let tid_off c line i = node_off line + node_header + (Key.size * c.fl) + (4 * i)
let cpg_off c line i = node_off line + node_header + (Key.size * c.fn) + (4 * i)
let cln_off c line i = node_off line + node_header + (8 * c.fn) + (2 * i)

(* --- Page and node allocation --------------------------------------------- *)

let new_page t ~kind =
  let page, r = Buffer_pool.create_page t.pool in
  t.n_pages <- t.n_pages + 1;
  Mem.write_u8 t.sim r h_kind kind;
  Mem.write_u16 t.sim r h_bump 0;
  Mem.write_i32 t.sim r h_next nil;
  Mem.write_i32 t.sim r h_prev nil;
  Mem.write_i32 t.sim r h_parent_pg nil;
  Mem.write_u16 t.sim r h_free_head 0;
  Mem.write_u16 t.sim r h_free_count 0;
  Mem.write_i32 t.sim r h_jp_chunk nil;
  (page, r)

(* Allocate a node slot in page [r]; None if the page is full. *)
let alloc_node t r =
  let free_head = Mem.read_u16 t.sim r h_free_head in
  if free_head <> 0 then begin
    let next_free = Mem.read_u16 t.sim r (node_off free_head) in
    Mem.write_u16 t.sim r h_free_head next_free;
    Mem.write_u16 t.sim r h_free_count (Mem.read_u16 t.sim r h_free_count - 1);
    Some free_head
  end
  else begin
    let bump = Mem.read_u16 t.sim r h_bump in
    if bump >= t.cfg.slots then None
    else begin
      Mem.write_u16 t.sim r h_bump (bump + 1);
      Some (1 + (bump * t.cfg.w))
    end
  end

let free_node t r line =
  Mem.write_u16 t.sim r (node_off line) (Mem.read_u16 t.sim r h_free_head);
  Mem.write_u16 t.sim r h_free_head line;
  Mem.write_u16 t.sim r h_free_count (Mem.read_u16 t.sim r h_free_count + 1)

(* Allocate a node from a pool of slab pages (overflow pages for leaf
   parents, per-level pools for higher nonleaf nodes). *)
let alloc_from_pool t ~get_page ~set_page ~kind =
  let try_page page =
    if page = nil then None
    else
      Buffer_pool.with_page t.pool page (fun r ->
          match alloc_node t r with
          | Some line ->
              Buffer_pool.mark_dirty t.pool page;
              Some { pg = page; ln = line }
          | None -> None)
  in
  match try_page (get_page ()) with
  | Some p -> p
  | None ->
      let page, r = new_page t ~kind in
      set_page page;
      let line = Option.get (alloc_node t r) in
      Buffer_pool.mark_dirty t.pool page;
      Buffer_pool.unpin t.pool page;
      { pg = page; ln = line }

let alloc_overflow t =
  alloc_from_pool t
    ~get_page:(fun () -> t.overflow_page)
    ~set_page:(fun p -> t.overflow_page <- p)
    ~kind:2

let alloc_level_pool t depth =
  alloc_from_pool t
    ~get_page:(fun () -> Option.value ~default:nil (Hashtbl.find_opt t.level_pool depth))
    ~set_page:(fun p -> Hashtbl.replace t.level_pool depth p)
    ~kind:1

(* --- Creation -------------------------------------------------------------- *)

let create_with_cfg pool cfg =
  let sim = Buffer_pool.sim pool in
  let t =
    {
      pool;
      sim;
      cfg;
      root = null_ptr;
      levels = 1;
      n_pages = 0;
      jp = Jump_array.create pool;
      overflow_page = nil;
      level_pool = Hashtbl.create 8;
      io_prefetch_distance = 16;
      level_acc = Array.make 16 0;
      trace = None;
    }
  in
  let page, r = new_page t ~kind:0 in
  let line = Option.get (alloc_node t r) in
  Mem.write_u16 t.sim r (node_off line + n_count) 0;
  Mem.write_u16 t.sim r (node_off line + n_next_ln) 0;
  Mem.write_i32 t.sim r (node_off line + n_next_pg) nil;
  Mem.write_u16 t.sim r h_first_leaf line;
  Buffer_pool.unpin t.pool page;
  Jump_array.build t.jp [| page |] ~fill:0.8 ~on_assign:(fun pg ~chunk ->
      Buffer_pool.with_page t.pool pg (fun pr ->
          Mem.write_i32 t.sim pr h_jp_chunk chunk;
          Buffer_pool.mark_dirty t.pool pg));
  t.root <- { pg = page; ln = line };
  t

let create pool =
  let page_size = Page_store.page_size (Buffer_pool.store pool) in
  create_with_cfg pool (make_cfg page_size)

(* Non-tuned node width, for the Figure 11 width sweep. *)
let create_custom pool ~w =
  let page_size = Page_store.page_size (Buffer_pool.store pool) in
  create_with_cfg pool (cfg_of_width ~page_size ~w)

let set_io_prefetch_distance t d = t.io_prefetch_distance <- max 1 d

(* --- Uncharged instrumentation --------------------------------------------- *)

let level_accesses t = Array.sub t.level_acc 0 t.levels
let reset_level_accesses t = Array.fill t.level_acc 0 (Array.length t.level_acc) 0
let set_trace t tr = t.trace <- tr

let bump_level t depth =
  if depth <= Array.length t.level_acc then
    t.level_acc.(depth - 1) <- t.level_acc.(depth - 1) + 1

let stall_now t = Fpb_obs.Counter.value t.sim.Sim.stats.Stats.stall

(* Record one node visit: bump the per-level counter and, if a trace is
   attached, emit a [node_access] event with the cache-stall cycles the
   visit incurred ([stall0] = stall counter before the visit). *)
let note_access t ~page ~depth ~stall0 =
  bump_level t depth;
  match t.trace with
  | None -> ()
  | Some tr ->
      Fpb_obs.Trace.emit tr "node_access"
        [
          ("level", Fpb_obs.Json.Int depth);
          ("page", Fpb_obs.Json.Int page);
          ("stall_cycles", Fpb_obs.Json.Int (stall_now t - stall0));
        ]

(* --- Search ---------------------------------------------------------------- *)

let prefetch_node t r line =
  Mem.prefetch t.sim r ~off:(node_off line) ~len:(t.cfg.w * line_bytes);
  Sim.busy_node t.sim

(* Descend to the leaf node containing [key].  Returns (page, region, line)
   with the page pinned.  [visit] sees each nonleaf (ptr, slot taken). *)
let descend t key ~visit =
  let c = t.cfg in
  let rec go page r line depth =
    let stall0 = stall_now t in
    prefetch_node t r line;
    if depth = t.levels then begin
      note_access t ~page ~depth ~stall0;
      (page, r, line)
    end
    else begin
      let n = Mem.read_u16 t.sim r (node_off line + n_count) in
      let i = Array_search.upper_bound t.sim r ~off:(key_off line 0) ~n ~key in
      let slot = max 0 (i - 1) in
      note_access t ~page ~depth ~stall0;
      visit { pg = page; ln = line } slot;
      let child_pg = Mem.read_i32 t.sim r (cpg_off c line slot) in
      let child_ln = Mem.read_u16 t.sim r (cln_off c line slot) in
      if child_pg = page then go page r child_ln (depth + 1)
      else begin
        Buffer_pool.unpin t.pool page;
        let cr = Buffer_pool.get t.pool child_pg in
        go child_pg cr child_ln (depth + 1)
      end
    end
  in
  let r = Buffer_pool.get t.pool t.root.pg in
  go t.root.pg r t.root.ln 1

let search t key =
  Sim.busy_op t.sim;
  let page, r, line = descend t key ~visit:(fun _ _ -> ()) in
  let n = Mem.read_u16 t.sim r (node_off line + n_count) in
  let i = Array_search.lower_bound t.sim r ~off:(key_off line 0) ~n ~key in
  let result =
    if i < n && Mem.read_i32 t.sim r (key_off line i) = key then
      Some (Mem.read_i32 t.sim r (tid_off t.cfg line i))
    else None
  in
  Buffer_pool.unpin t.pool page;
  result

(* --- Batched search (level-wise waves; see docs/BATCHING.md) -------------- *)

(* One level-wise wave over the sorted probes [order.(lo..hi-1)].  The
   frontier is a key-ordered list of unique (page, line) nodes; probes
   routing through one node are consecutive, so dedup is "same node as
   the previous probe".  Nodes of one level may share pages, so the
   level's underlying pages are deduplicated separately and pinned once
   each through [get_batch] (coalesced disk reads); while one node is
   searched the next frontier node's lines are prefetched, and each
   newly discovered off-page child page is async-read while the rest of
   the level still routes.  Accounting: one [note_access] per unique
   node per wave (see [Index_sig.search_batch]). *)
let batch_wave t keys order lo hi out =
  let c = t.cfg in
  let np = hi - lo in
  Batch_stats.note_wave np;
  for _ = 1 to np do
    Sim.busy_op t.sim
  done;
  let cpg = Array.make np 0 and cln = Array.make np 0 in
  let rec go gpg gln starts depth =
    let ng = Array.length gpg in
    (* Pin each page underlying this level's nodes exactly once. *)
    let seen = Hashtbl.create (2 * ng) in
    let acc = ref [] in
    Array.iter
      (fun p ->
        if not (Hashtbl.mem seen p) then begin
          Hashtbl.add seen p ();
          acc := p :: !acc
        end)
      gpg;
    let upages = Array.of_list (List.rev !acc) in
    let regions = Buffer_pool.get_batch t.pool upages in
    let region_of = Hashtbl.create (2 * Array.length upages) in
    Array.iteri (fun i p -> Hashtbl.replace region_of p regions.(i)) upages;
    let leaf = depth = t.levels in
    let prev_pg = ref nil and prev_ln = ref (-1) in
    for g = 0 to ng - 1 do
      let page = gpg.(g) and line = gln.(g) in
      let r = Hashtbl.find region_of page in
      let stall0 = stall_now t in
      prefetch_node t r line;
      (* Pipeline: queue the next frontier node's lines while this node
         is searched, so they arrive before their own prefetch_node. *)
      if g + 1 < ng then begin
        let nr = Hashtbl.find region_of gpg.(g + 1) in
        Mem.prefetch t.sim nr ~off:(node_off gln.(g + 1))
          ~len:(c.w * line_bytes)
      end;
      let n = Mem.read_u16 t.sim r (node_off line + n_count) in
      for j = starts.(g) to starts.(g + 1) - 1 do
        let key = keys.(order.(j)) in
        if leaf then begin
          let i =
            Array_search.lower_bound t.sim r ~off:(key_off line 0) ~n ~key
          in
          out.(order.(j)) <-
            (if i < n && Mem.read_i32 t.sim r (key_off line i) = key then
               Some (Mem.read_i32 t.sim r (tid_off c line i))
             else None)
        end
        else begin
          let i =
            Array_search.upper_bound t.sim r ~off:(key_off line 0) ~n ~key
          in
          let slot = max 0 (i - 1) in
          let child_pg = Mem.read_i32 t.sim r (cpg_off c line slot) in
          let child_ln = Mem.read_u16 t.sim r (cln_off c line slot) in
          cpg.(j - lo) <- child_pg;
          cln.(j - lo) <- child_ln;
          if child_pg <> !prev_pg || child_ln <> !prev_ln then begin
            prev_pg := child_pg;
            prev_ln := child_ln;
            if
              child_pg <> page
              && not (Buffer_pool.is_resident t.pool child_pg)
            then begin
              Batch_stats.note_stall ();
              Buffer_pool.prefetch t.pool child_pg
            end
          end
        end
      done;
      note_access t ~page ~depth ~stall0;
      Batch_stats.note_group (starts.(g + 1) - starts.(g))
    done;
    Array.iter (fun p -> Buffer_pool.unpin t.pool p) upages;
    if not leaf then begin
      (* Compress consecutive equal children into the next frontier. *)
      let ng' = ref 0 in
      for j = 0 to np - 1 do
        if j = 0 || cpg.(j) <> cpg.(j - 1) || cln.(j) <> cln.(j - 1) then
          incr ng'
      done;
      let npg = Array.make !ng' 0 and nln = Array.make !ng' 0 in
      let nstarts = Array.make (!ng' + 1) 0 in
      let g = ref 0 in
      for j = 0 to np - 1 do
        if j = 0 || cpg.(j) <> cpg.(j - 1) || cln.(j) <> cln.(j - 1) then begin
          npg.(!g) <- cpg.(j);
          nln.(!g) <- cln.(j);
          nstarts.(!g) <- lo + j;
          incr g
        end
      done;
      nstarts.(!ng') <- hi;
      go npg nln nstarts (depth + 1)
    end
  in
  go [| t.root.pg |] [| t.root.ln |] [| lo; hi |] 1

let search_batch t keys =
  let m = Array.length keys in
  let out = Array.make m None in
  if m > 0 then begin
    let order = Array.init m (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = compare keys.(a) keys.(b) in
        if c <> 0 then c else compare a b)
      order;
    let rec run lo hi =
      if hi - lo = 1 then begin
        Batch_stats.note_wave 1;
        out.(order.(lo)) <- search t keys.(order.(lo))
      end
      else
        try batch_wave t keys order lo hi out
        with Buffer_pool.Overloaded _ ->
          let mid = (lo + hi) / 2 in
          run lo mid;
          run mid hi
    in
    run 0 m
  end;
  out

(* --- Leaf page split -------------------------------------------------------- *)

(* Leaf nodes of page [pg] in chain order. *)
let page_chain t r pg =
  let lines = ref [] in
  let line = ref (Mem.read_u16 t.sim r h_first_leaf) in
  let cont = ref (!line <> 0) in
  while !cont do
    lines := !line :: !lines;
    let next_pg = Mem.read_i32 t.sim r (node_off !line + n_next_pg) in
    let next_ln = Mem.read_u16 t.sim r (node_off !line + n_next_ln) in
    if next_pg = pg then line := next_ln else cont := false
  done;
  Array.of_list (List.rev !lines)

(* Split leaf page [pg]: move the second half of its leaf-node chain to a
   new page.  Returns (new_page, moved) where [moved] maps old line ->
   new line. *)
let split_leaf_page t pg =
  let c = t.cfg in
  let r = Buffer_pool.get t.pool pg in
  Buffer_pool.mark_dirty t.pool pg;
  let chain = page_chain t r pg in
  let k = Array.length chain in
  let mid = k / 2 in
  let moved_lines = Array.sub chain mid (k - mid) in
  let np, nr = new_page t ~kind:0 in
  let moved = Hashtbl.create 16 in
  Array.iter
    (fun old_line ->
      let new_line = Option.get (alloc_node t nr) in
      Mem.blit t.sim r (node_off old_line) nr (node_off new_line)
        (c.w * line_bytes);
      free_node t r old_line;
      Hashtbl.replace moved old_line new_line)
    moved_lines;
  (* intra-page chain links of moved nodes now point at old lines; fix *)
  Array.iteri
    (fun j old_line ->
      let new_line = Hashtbl.find moved old_line in
      if j < Array.length moved_lines - 1 then begin
        Mem.write_i32 t.sim nr (node_off new_line + n_next_pg) np;
        Mem.write_u16 t.sim nr (node_off new_line + n_next_ln)
          (Hashtbl.find moved moved_lines.(j + 1))
      end
      (* last moved node keeps its (external) copied next pointer *))
    moved_lines;
  (* predecessor in the old page now points at the new page *)
  let pred = chain.(mid - 1) in
  Mem.write_i32 t.sim r (node_off pred + n_next_pg) np;
  Mem.write_u16 t.sim r (node_off pred + n_next_ln) (Hashtbl.find moved chain.(mid));
  Mem.write_u16 t.sim nr h_first_leaf (Hashtbl.find moved chain.(mid));
  (* page sibling links *)
  let old_next = Mem.read_i32 t.sim r h_next in
  Mem.write_i32 t.sim nr h_next old_next;
  Mem.write_i32 t.sim nr h_prev pg;
  Mem.write_i32 t.sim r h_next np;
  if old_next <> nil then
    Buffer_pool.with_page t.pool old_next (fun onr ->
        Mem.write_i32 t.sim onr h_prev np;
        Buffer_pool.mark_dirty t.pool old_next);
  (* update parent child-pointers via the back-pointer + sibling chain *)
  let parent_pg = Mem.read_i32 t.sim r h_parent_pg in
  let parent_ln = Mem.read_u16 t.sim r h_parent_ln in
  let remaining = ref (Hashtbl.length moved) in
  let first_moved_parent = ref null_ptr in
  let cur = ref { pg = parent_pg; ln = parent_ln } in
  let guard = ref 0 in
  while !remaining > 0 do
    incr guard;
    if !cur.pg = nil || !guard > 100000 then
      failwith "cache-first: parent walk failed during leaf page split";
    let ppg = !cur.pg and pln = !cur.ln in
    Buffer_pool.with_page t.pool ppg (fun prr ->
        let n = Mem.read_u16 t.sim prr (node_off pln + n_count) in
        for j = 0 to n - 1 do
          if Mem.read_i32 t.sim prr (cpg_off c pln j) = pg then begin
            let child_ln = Mem.read_u16 t.sim prr (cln_off c pln j) in
            match Hashtbl.find_opt moved child_ln with
            | Some new_line ->
                Mem.write_i32 t.sim prr (cpg_off c pln j) np;
                Mem.write_u16 t.sim prr (cln_off c pln j) new_line;
                Buffer_pool.mark_dirty t.pool ppg;
                if new_line = Hashtbl.find moved chain.(mid) then
                  first_moved_parent := { pg = ppg; ln = pln };
                decr remaining
            | None -> ()
          end
        done;
        if !remaining > 0 then
          cur :=
            { pg = Mem.read_i32 t.sim prr (node_off pln + n_next_pg);
              ln = Mem.read_u16 t.sim prr (node_off pln + n_next_ln) })
  done;
  Mem.write_i32 t.sim nr h_parent_pg !first_moved_parent.pg;
  Mem.write_u16 t.sim nr h_parent_ln !first_moved_parent.ln;
  (* register the new page in the jump-pointer array *)
  let chunk = Mem.read_i32 t.sim r h_jp_chunk in
  Buffer_pool.unpin t.pool pg;
  Buffer_pool.unpin t.pool np;
  Jump_array.insert_after t.jp ~chunk ~after_page:pg ~new_page:np
    ~on_assign:(fun page ~chunk ->
      Buffer_pool.with_page t.pool page (fun pr ->
          Mem.write_i32 t.sim pr h_jp_chunk chunk;
          Buffer_pool.mark_dirty t.pool page));
  (np, moved)

(* --- Insertion --------------------------------------------------------------- *)

(* Insert entry (key, value/child) into node [line] of pinned region [r] at
   slot [i]. *)
let leaf_insert_at t r line ~n ~i key tid =
  let c = t.cfg in
  Mem.blit t.sim r (key_off line i) r (key_off line (i + 1)) ((n - i) * 4);
  Mem.blit t.sim r (tid_off c line i) r (tid_off c line (i + 1)) ((n - i) * 4);
  Mem.write_i32 t.sim r (key_off line i) key;
  Mem.write_i32 t.sim r (tid_off c line i) tid;
  Mem.write_u16 t.sim r (node_off line + n_count) (n + 1)

let nonleaf_insert_at t r line ~n ~i key child =
  let c = t.cfg in
  Mem.blit t.sim r (key_off line i) r (key_off line (i + 1)) ((n - i) * 4);
  Mem.blit t.sim r (cpg_off c line i) r (cpg_off c line (i + 1)) ((n - i) * 4);
  Mem.blit t.sim r (cln_off c line i) r (cln_off c line (i + 1)) ((n - i) * 2);
  Mem.write_i32 t.sim r (key_off line i) key;
  Mem.write_i32 t.sim r (cpg_off c line i) child.pg;
  Mem.write_u16 t.sim r (cln_off c line i) child.ln;
  Mem.write_u16 t.sim r (node_off line + n_count) (n + 1)

(* Copy the upper half of node [src] (in pinned region [sr]) into the fresh
   node [dst]; fixes counts and sibling links.  [kind] selects the entry
   arrays.  Returns the separator key. *)
let split_node_into t sr src dr dst ~kind =
  let c = t.cfg in
  let n = Mem.read_u16 t.sim sr (node_off src + n_count) in
  let mid = n / 2 in
  let moved = n - mid in
  Mem.blit t.sim sr (key_off src mid) dr (key_off dst 0) (moved * 4);
  (match kind with
  | `Leaf ->
      Mem.blit t.sim sr (tid_off c src mid) dr (tid_off c dst 0) (moved * 4)
  | `Nonleaf ->
      Mem.blit t.sim sr (cpg_off c src mid) dr (cpg_off c dst 0) (moved * 4);
      Mem.blit t.sim sr (cln_off c src mid) dr (cln_off c dst 0) (moved * 2));
  Mem.write_u16 t.sim dr (node_off dst + n_count) moved;
  Mem.write_u16 t.sim sr (node_off src + n_count) mid;
  (* sibling chain: src -> dst -> old next *)
  Mem.write_i32 t.sim dr (node_off dst + n_next_pg)
    (Mem.read_i32 t.sim sr (node_off src + n_next_pg));
  Mem.write_u16 t.sim dr (node_off dst + n_next_ln)
    (Mem.read_u16 t.sim sr (node_off src + n_next_ln));
  Mem.read_i32 t.sim dr (key_off dst 0)

(* Insert (sep, child) into the parents along [path] (innermost first).
   [child_depth] is the tree depth of [child] (root = 1). *)
let rec insert_into_parent t path sep child ~child_depth =
  let c = t.cfg in
  match path with
  | [] ->
      (* new root *)
      let root_ptr =
        if t.levels = 1 then alloc_level_pool t 0
        else alloc_level_pool t 0
      in
      let rr = Buffer_pool.get t.pool root_ptr.pg in
      let old = t.root in
      let old_min =
        Buffer_pool.with_page t.pool old.pg (fun orr ->
            Mem.read_i32 t.sim orr (key_off old.ln 0))
      in
      Mem.write_u16 t.sim rr (node_off root_ptr.ln + n_count) 2;
      Mem.write_u16 t.sim rr (node_off root_ptr.ln + n_next_ln) 0;
      Mem.write_i32 t.sim rr (node_off root_ptr.ln + n_next_pg) nil;
      Mem.write_i32 t.sim rr (key_off root_ptr.ln 0) old_min;
      Mem.write_i32 t.sim rr (cpg_off c root_ptr.ln 0) old.pg;
      Mem.write_u16 t.sim rr (cln_off c root_ptr.ln 0) old.ln;
      Mem.write_i32 t.sim rr (key_off root_ptr.ln 1) sep;
      Mem.write_i32 t.sim rr (cpg_off c root_ptr.ln 1) child.pg;
      Mem.write_u16 t.sim rr (cln_off c root_ptr.ln 1) child.ln;
      Buffer_pool.mark_dirty t.pool root_ptr.pg;
      Buffer_pool.unpin t.pool root_ptr.pg;
      (* if the old root was a leaf, its page's back-pointer now exists *)
      if t.levels = 1 then
        Buffer_pool.with_page t.pool old.pg (fun orr ->
            Mem.write_i32 t.sim orr h_parent_pg root_ptr.pg;
            Mem.write_u16 t.sim orr h_parent_ln root_ptr.ln;
            Buffer_pool.mark_dirty t.pool old.pg);
      t.root <- root_ptr;
      t.levels <- t.levels + 1
  | parent :: rest ->
      let r = Buffer_pool.get t.pool parent.pg in
      Buffer_pool.mark_dirty t.pool parent.pg;
      let line = parent.ln in
      let n = Mem.read_u16 t.sim r (node_off line + n_count) in
      let i = Array_search.upper_bound t.sim r ~off:(key_off line 0) ~n ~key:sep in
      (* untrusted-minimum fix, including the equality case (a separator
         equal to the recorded key 0 must not duplicate it) *)
      let i =
        if i = 0 || (i = 1 && Mem.read_i32 t.sim r (key_off line 0) = sep)
        then begin
          Mem.write_i32 t.sim r (key_off line 0) (sep - 1);
          1
        end
        else i
      in
      if n < c.fn then begin
        nonleaf_insert_at t r line ~n ~i sep child;
        Buffer_pool.unpin t.pool parent.pg
      end
      else begin
        (* split this nonleaf node *)
        let parent_depth = child_depth - 1 in
        let is_leaf_parent = child_depth = t.levels in
        let new_ptr =
          match alloc_node t r with
          | Some ln -> { pg = parent.pg; ln }
          | None ->
              if is_leaf_parent then alloc_overflow t
              else alloc_level_pool t parent_depth
        in
        let nr =
          if new_ptr.pg = parent.pg then r else Buffer_pool.get t.pool new_ptr.pg
        in
        let node_sep = split_node_into t r line nr new_ptr.ln ~kind:`Nonleaf in
        Mem.write_i32 t.sim r (node_off line + n_next_pg) new_ptr.pg;
        Mem.write_u16 t.sim r (node_off line + n_next_ln) new_ptr.ln;
        let mid = c.fn / 2 in
        (if i <= mid then nonleaf_insert_at t r line ~n:mid ~i sep child
         else
           nonleaf_insert_at t nr new_ptr.ln ~n:(c.fn - mid) ~i:(i - mid) sep
             child);
        if new_ptr.pg <> parent.pg then begin
          Buffer_pool.mark_dirty t.pool new_ptr.pg;
          Buffer_pool.unpin t.pool new_ptr.pg
        end;
        Buffer_pool.unpin t.pool parent.pg;
        insert_into_parent t rest node_sep new_ptr ~child_depth:parent_depth
      end

let insert t key tid =
  if not (Key.valid key) then invalid_arg "Cache_first.insert: key out of range";
  Sim.busy_op t.sim;
  let c = t.cfg in
  let path = ref [] in
  let page, r, line = descend t key ~visit:(fun p _ -> path := p :: !path) in
  let n = Mem.read_u16 t.sim r (node_off line + n_count) in
  let i = Array_search.lower_bound t.sim r ~off:(key_off line 0) ~n ~key in
  if i < n && Mem.read_i32 t.sim r (key_off line i) = key then begin
    Mem.write_i32 t.sim r (tid_off c line i) tid;
    Buffer_pool.mark_dirty t.pool page;
    Buffer_pool.unpin t.pool page;
    `Updated
  end
  else if n < c.fl then begin
    leaf_insert_at t r line ~n ~i key tid;
    Buffer_pool.mark_dirty t.pool page;
    Buffer_pool.unpin t.pool page;
    `Inserted
  end
  else begin
    (* split the leaf node *)
    let page, r, line =
      match alloc_node t r with
      | Some new_ln ->
          (* room in this page: undo the allocation bookkeeping by using it
             below; stash it via free list is unnecessary — keep it *)
          free_node t r new_ln;
          (page, r, line)
      | None ->
          (* page full: split the leaf page, then re-locate our node *)
          Buffer_pool.unpin t.pool page;
          let np, moved = split_leaf_page t page in
          (match Hashtbl.find_opt moved line with
          | Some new_line ->
              let nr = Buffer_pool.get t.pool np in
              (np, nr, new_line)
          | None ->
              let r = Buffer_pool.get t.pool page in
              (page, r, line))
    in
    Buffer_pool.mark_dirty t.pool page;
    let new_ln = Option.get (alloc_node t r) in
    let sep = split_node_into t r line r new_ln ~kind:`Leaf in
    Mem.write_i32 t.sim r (node_off line + n_next_pg) page;
    Mem.write_u16 t.sim r (node_off line + n_next_ln) new_ln;
    let mid = c.fl / 2 in
    (if i <= mid then leaf_insert_at t r line ~n:mid ~i key tid
     else leaf_insert_at t r new_ln ~n:(c.fl - mid) ~i:(i - mid) key tid);
    Buffer_pool.unpin t.pool page;
    insert_into_parent t !path sep { pg = page; ln = new_ln }
      ~child_depth:t.levels;
    `Inserted
  end

(* --- Deletion ----------------------------------------------------------------- *)

let delete t key =
  Sim.busy_op t.sim;
  let c = t.cfg in
  let page, r, line = descend t key ~visit:(fun _ _ -> ()) in
  let n = Mem.read_u16 t.sim r (node_off line + n_count) in
  let i = Array_search.lower_bound t.sim r ~off:(key_off line 0) ~n ~key in
  let found = i < n && Mem.read_i32 t.sim r (key_off line i) = key in
  if found then begin
    Mem.blit t.sim r (key_off line (i + 1)) r (key_off line i) ((n - i - 1) * 4);
    Mem.blit t.sim r (tid_off c line (i + 1)) r (tid_off c line i)
      ((n - i - 1) * 4);
    Mem.write_u16 t.sim r (node_off line + n_count) (n - 1);
    Buffer_pool.mark_dirty t.pool page
  end;
  Buffer_pool.unpin t.pool page;
  found

(* --- Bulkload -------------------------------------------------------------------- *)

(* Two passes: (1) decide every node's placement top-down following the
   aggressive scheme with an even bitmap spread; (2) write node contents
   bottom-up using the assigned pointers. *)
let bulkload t pairs ~fill =
  if fill <= 0. || fill > 1. then invalid_arg "Cache_first.bulkload: fill";
  let c = t.cfg in
  let total = Array.length pairs in
  if total = 0 then ()
  else begin
    if t.n_pages > 1 || Jump_array.page_count t.jp > 1 then
      invalid_arg "Cache_first.bulkload: tree not empty";
    (* Discard the initial empty page (the jump-pointer chunk is rebuilt
       below; its single stale entry is overwritten by build). *)
    Buffer_pool.free_page t.pool t.root.pg;
    t.n_pages <- t.n_pages - 1;
    Jump_array.reset t.jp;
    let per_leaf = max 1 (int_of_float (float_of_int c.fl *. fill)) in
    let per_node = max 2 (int_of_float (float_of_int c.fn *. fill)) in
    (* shape *)
    let n_leaves = (total + per_leaf - 1) / per_leaf in
    let counts = ref [ n_leaves ] in
    while List.hd !counts > 1 do
      counts := ((List.hd !counts + per_node - 1) / per_node) :: !counts
    done;
    let counts = Array.of_list (List.rev !counts) in
    (* counts.(0) = leaves ... counts.(depth-1) = root level (size 1) *)
    let depth = Array.length counts in
    t.levels <- depth;
    (* leaf placement: packed into leaf pages *)
    let n_leaf_pages = (n_leaves + c.slots - 1) / c.slots in
    let leaf_pages = Array.make n_leaf_pages nil in
    for p = 0 to n_leaf_pages - 1 do
      let page, r = new_page t ~kind:0 in
      let cnt = min c.slots (n_leaves - (p * c.slots)) in
      Mem.write_u16 t.sim r h_bump cnt;
      Mem.write_u16 t.sim r h_first_leaf 1;
      Buffer_pool.unpin t.pool page;
      leaf_pages.(p) <- page
    done;
    let place = Array.map (fun cnt -> Array.make cnt null_ptr) counts in
    for i = 0 to n_leaves - 1 do
      place.(0).(i) <-
        { pg = leaf_pages.(i / c.slots); ln = 1 + (i mod c.slots * c.w) }
    done;
    (* nonleaf placement, top-down *)
    let page_used = Hashtbl.create 64 in
    let top_level = Hashtbl.create 64 in
    (* page -> used slots *)
    let place_new_page lvl i kind =
      let page, r = new_page t ~kind in
      Mem.write_u16 t.sim r h_bump 1;
      Buffer_pool.unpin t.pool page;
      Hashtbl.replace page_used page 1;
      Hashtbl.replace top_level (lvl, i) true;
      place.(lvl).(i) <- { pg = page; ln = 1 }
    in
    if depth > 1 then place_new_page (depth - 1) 0 1;
    for lvl = depth - 1 downto 2 do
      (* place the children (at lvl-1, nonleaf) of every node at lvl *)
      let child_base = ref 0 in
      for i = 0 to counts.(lvl) - 1 do
        let cnt = min per_node (counts.(lvl - 1) - !child_base) in
        let parent = place.(lvl).(i) in
        let parent_top = Hashtbl.mem top_level (lvl, i) in
        let free_slots =
          if parent_top then
            c.slots - Option.value ~default:c.slots (Hashtbl.find_opt page_used parent.pg)
          else 0
        in
        let u = min free_slots cnt in
        for j = 0 to cnt - 1 do
          let ci = !child_base + j in
          let with_parent =
            parent_top && (j + 1) * u / cnt > j * u / cnt
          in
          if with_parent then begin
            let used = Hashtbl.find page_used parent.pg in
            Hashtbl.replace page_used parent.pg (used + 1);
            place.(lvl - 1).(ci) <- { pg = parent.pg; ln = 1 + (used * c.w) };
            Buffer_pool.with_page t.pool parent.pg (fun r ->
                Mem.write_u16 t.sim r h_bump (used + 1));
            Buffer_pool.mark_dirty t.pool parent.pg
          end
          else if lvl - 1 = 1 then
            (* leaf parent: overflow pages *)
            place.(lvl - 1).(ci) <- alloc_overflow t
          else place_new_page (lvl - 1) ci 1
        done;
        child_base := !child_base + cnt
      done
    done;
    (* fill leaves *)
    let pos = ref 0 in
    let leaf_min = Array.make n_leaves 0 in
    for i = 0 to n_leaves - 1 do
      let cnt = min per_leaf (total - !pos) in
      let p = place.(0).(i) in
      Buffer_pool.with_page t.pool p.pg (fun r ->
          Mem.write_u16 t.sim r (node_off p.ln + n_count) cnt;
          for j = 0 to cnt - 1 do
            let k, v = pairs.(!pos + j) in
            Mem.write_i32 t.sim r (key_off p.ln j) k;
            Mem.write_i32 t.sim r (tid_off c p.ln j) v
          done;
          let next =
            if i + 1 < n_leaves then place.(0).(i + 1) else null_ptr
          in
          Mem.write_i32 t.sim r (node_off p.ln + n_next_pg) next.pg;
          Mem.write_u16 t.sim r (node_off p.ln + n_next_ln) next.ln;
          Buffer_pool.mark_dirty t.pool p.pg);
      leaf_min.(i) <- fst pairs.(!pos);
      pos := !pos + cnt
    done;
    (* fill nonleaf levels bottom-up *)
    let mins = ref leaf_min in
    for lvl = 1 to depth - 1 do
      let child_base = ref 0 in
      let level_min = Array.make counts.(lvl) 0 in
      for i = 0 to counts.(lvl) - 1 do
        let cnt = min per_node (counts.(lvl - 1) - !child_base) in
        let p = place.(lvl).(i) in
        Buffer_pool.with_page t.pool p.pg (fun r ->
            Mem.write_u16 t.sim r (node_off p.ln + n_count) cnt;
            for j = 0 to cnt - 1 do
              let ci = !child_base + j in
              Mem.write_i32 t.sim r (key_off p.ln j) !mins.(ci);
              Mem.write_i32 t.sim r (cpg_off c p.ln j) place.(lvl - 1).(ci).pg;
              Mem.write_u16 t.sim r (cln_off c p.ln j) place.(lvl - 1).(ci).ln
            done;
            let next =
              if i + 1 < counts.(lvl) then place.(lvl).(i + 1) else null_ptr
            in
            Mem.write_i32 t.sim r (node_off p.ln + n_next_pg) next.pg;
            Mem.write_u16 t.sim r (node_off p.ln + n_next_ln) next.ln;
            Buffer_pool.mark_dirty t.pool p.pg);
        level_min.(i) <- !mins.(!child_base);
        child_base := !child_base + cnt
      done;
      mins := level_min
    done;
    (* leaf page headers: chain + back pointers *)
    for p = 0 to n_leaf_pages - 1 do
      Buffer_pool.with_page t.pool leaf_pages.(p) (fun r ->
          Mem.write_i32 t.sim r h_prev
            (if p > 0 then leaf_pages.(p - 1) else nil);
          Mem.write_i32 t.sim r h_next
            (if p + 1 < n_leaf_pages then leaf_pages.(p + 1) else nil);
          (if depth > 1 then begin
             let first_leaf = p * c.slots in
             let parent_idx = first_leaf / per_node in
             let pp = place.(1).(parent_idx) in
             Mem.write_i32 t.sim r h_parent_pg pp.pg;
             Mem.write_u16 t.sim r h_parent_ln pp.ln
           end);
          Buffer_pool.mark_dirty t.pool leaf_pages.(p))
    done;
    Jump_array.build t.jp leaf_pages ~fill:0.8 ~on_assign:(fun pg ~chunk ->
        Buffer_pool.with_page t.pool pg (fun pr ->
            Mem.write_i32 t.sim pr h_jp_chunk chunk;
            Buffer_pool.mark_dirty t.pool pg));
    t.root <- place.(depth - 1).(0)
  end

(* --- Range scan -------------------------------------------------------------------- *)

let range_scan t ?(prefetch = true) ~start_key ~end_key f =
  Sim.busy_op t.sim;
  if end_key < start_key then 0
  else begin
    let c = t.cfg in
    let end_page =
      if prefetch then begin
        let page, _, _ = descend t end_key ~visit:(fun _ _ -> ()) in
        Buffer_pool.unpin t.pool page;
        page
      end
      else nil
    in
    let start_page, r0, line0 = descend t start_key ~visit:(fun _ _ -> ()) in
    (* I/O prefetch via the external jump-pointer array *)
    let cursor =
      if prefetch then begin
        let chunk =
          Buffer_pool.with_page t.pool start_page (fun r ->
              Mem.read_i32 t.sim r h_jp_chunk)
        in
        let cur = Jump_array.cursor_at t.jp ~chunk ~page:start_page in
        ignore (Jump_array.next cur);  (* skip the page we're on *)
        Some cur
      end
      else None
    in
    let outstanding = ref 0 in
    (* nothing to prefetch when the scan starts on the end page *)
    let done_prefetching = ref (cursor = None || end_page = start_page) in
    let pump () =
      match cursor with
      | None -> ()
      | Some cur ->
          while (not !done_prefetching) && !outstanding < t.io_prefetch_distance
          do
            match Jump_array.next cur with
            | None -> done_prefetching := true
            | Some pid ->
                Buffer_pool.prefetch t.pool pid;
                incr outstanding;
                if pid = end_page then done_prefetching := true
          done
    in
    pump ();
    let count = ref 0 in
    (* cache prefetch: all node slots of a leaf page at once *)
    let prefetch_page_nodes r =
      if prefetch then begin
        let bump = Mem.read_u16 t.sim r h_bump in
        Mem.prefetch t.sim r ~off:line_bytes ~len:(bump * c.w * line_bytes)
      end
    in
    prefetch_page_nodes r0;
    let rec scan page r line =
      let n = Mem.read_u16 t.sim r (node_off line + n_count) in
      let i0 =
        if !count = 0 then
          Array_search.lower_bound t.sim r ~off:(key_off line 0) ~n
            ~key:start_key
        else 0
      in
      let stop = ref false in
      let i = ref i0 in
      while (not !stop) && !i < n do
        let k = Mem.read_i32 t.sim r (key_off line !i) in
        if k > end_key then stop := true
        else begin
          f k (Mem.read_i32 t.sim r (tid_off c line !i));
          incr count;
          incr i
        end
      done;
      if !stop then Buffer_pool.unpin t.pool page
      else begin
        let next_pg = Mem.read_i32 t.sim r (node_off line + n_next_pg) in
        let next_ln = Mem.read_u16 t.sim r (node_off line + n_next_ln) in
        if next_pg = page then begin
          bump_level t t.levels;
          scan page r next_ln
        end
        else begin
          Buffer_pool.unpin t.pool page;
          if next_pg <> nil then begin
            if !outstanding > 0 then decr outstanding;
            pump ();
            let nr = Buffer_pool.get t.pool next_pg in
            prefetch_page_nodes nr;
            bump_level t t.levels;
            scan next_pg nr next_ln
          end
        end
      end
    in
    scan start_page r0 line0;
    !count
  end

(* --- Introspection (uncharged; tests only) -------------------------------------- *)

let height t = t.levels
let page_count t = t.n_pages + Jump_array.page_count t.jp
let index_page_count t = t.n_pages
let cfg t = t.cfg

(* Durable handle metadata.  Shape:
   [root.pg; root.ln; levels; n_pages; overflow_page; jp head; jp chunks;
    |level_pool|; (depth, page)...], level-pool entries sorted by depth. *)
let meta t =
  let jp_head, jp_chunks = Jump_array.meta t.jp in
  let pools =
    Hashtbl.fold (fun d p acc -> (d, p) :: acc) t.level_pool []
    |> List.sort compare
  in
  [
    t.root.pg; t.root.ln; t.levels; t.n_pages; t.overflow_page; jp_head;
    jp_chunks; List.length pools;
  ]
  @ List.concat_map (fun (d, p) -> [ d; p ]) pools

let restore_meta t = function
  | pg :: ln :: levels :: n_pages :: overflow_page :: jp_head :: jp_chunks
    :: n_pools :: rest ->
      let rec pools n acc = function
        | rest when n = 0 -> (List.rev acc, rest)
        | d :: p :: rest -> pools (n - 1) ((d, p) :: acc) rest
        | _ -> invalid_arg (name ^ ".restore_meta: bad shape")
      in
      let pools, rest = pools n_pools [] rest in
      if rest <> [] then invalid_arg (name ^ ".restore_meta: bad shape");
      t.root <- { pg; ln };
      t.levels <- levels;
      t.n_pages <- n_pages;
      t.overflow_page <- overflow_page;
      Jump_array.restore_meta t.jp ~head:jp_head ~n_chunks:jp_chunks;
      Hashtbl.reset t.level_pool;
      List.iter (fun (d, p) -> Hashtbl.replace t.level_pool d p) pools
  | _ -> invalid_arg (name ^ ".restore_meta: bad shape")

let peek_region t page =
  let r = Buffer_pool.get t.pool page in
  Buffer_pool.unpin t.pool page;
  r

let iter t f =
  let c = t.cfg in
  let rec leftmost p depth =
    if depth = t.levels then p
    else begin
      let r = peek_region t p.pg in
      leftmost
        { pg = Mem.peek_i32 r (cpg_off c p.ln 0);
          ln = Mem.peek_u16 r (cln_off c p.ln 0) }
        (depth + 1)
    end
  in
  let rec walk p =
    if p.pg <> nil then begin
      let r = peek_region t p.pg in
      let n = Mem.peek_u16 r (node_off p.ln + n_count) in
      for i = 0 to n - 1 do
        f (Mem.peek_i32 r (key_off p.ln i)) (Mem.peek_i32 r (tid_off c p.ln i))
      done;
      walk
        { pg = Mem.peek_i32 r (node_off p.ln + n_next_pg);
          ln = Mem.peek_u16 r (node_off p.ln + n_next_ln) }
    end
  in
  walk (leftmost t.root 1)

let fail fmt = Fmt.kstr failwith fmt

let check t =
  let c = t.cfg in
  let leaf_pages_seen = ref [] in
  (* recursive structural check with key bounds *)
  let rec check_node p ~lo ~hi ~depth =
    let r = peek_region t p.pg in
    let kind = Mem.peek_u8 r h_kind in
    let is_leaf = depth = t.levels in
    if is_leaf && kind <> 0 then fail "leaf node %d/%d not in a leaf page" p.pg p.ln;
    if (not is_leaf) && kind = 0 then fail "nonleaf node %d/%d in a leaf page" p.pg p.ln;
    let n = Mem.peek_u16 r (node_off p.ln + n_count) in
    let cap = if is_leaf then c.fl else c.fn in
    if n > cap then fail "node %d/%d overfull" p.pg p.ln;
    if n = 0 && p <> t.root then fail "node %d/%d empty" p.pg p.ln;
    for i = 0 to n - 1 do
      let k = Mem.peek_i32 r (key_off p.ln i) in
      if i > 0 && Mem.peek_i32 r (key_off p.ln (i - 1)) >= k then
        fail "node %d/%d keys out of order" p.pg p.ln;
      (match lo with
      | Some b when k < b && (not (i = 0 && not is_leaf)) ->
          fail "node %d/%d key below bound" p.pg p.ln
      | _ -> ());
      match hi with
      | Some b when k >= b -> fail "node %d/%d key above bound" p.pg p.ln
      | _ -> ()
    done;
    if is_leaf then begin
      (* each leaf page holds a contiguous chain segment, so in-order
         traversal changes page exactly at segment boundaries *)
      match !leaf_pages_seen with
      | last :: _ when last = p.pg -> ()
      | rest ->
          if List.mem p.pg rest then fail "leaf page %d split across segments" p.pg;
          leaf_pages_seen := p.pg :: rest
    end
    else
      for i = 0 to n - 1 do
        let child =
          { pg = Mem.peek_i32 r (cpg_off c p.ln i);
            ln = Mem.peek_u16 r (cln_off c p.ln i) }
        in
        let clo = if i = 0 then lo else Some (Mem.peek_i32 r (key_off p.ln i)) in
        let chi =
          if i = n - 1 then hi else Some (Mem.peek_i32 r (key_off p.ln (i + 1)))
        in
        check_node child ~lo:clo ~hi:chi ~depth:(depth + 1)
      done
  in
  check_node t.root ~lo:None ~hi:None ~depth:1;
  (* the jump-pointer array must list exactly the leaf pages, in order *)
  let jp_pages = Jump_array.peek_all t.jp in
  let expected = List.rev !leaf_pages_seen in
  if jp_pages <> expected then
    fail "jump-pointer array (%d pages) disagrees with leaf pages (%d)"
      (List.length jp_pages) (List.length expected);
  (* every leaf page's recorded chunk actually contains it *)
  List.iter
    (fun pg ->
      let r = peek_region t pg in
      let chunk = Mem.peek_i32 r h_jp_chunk in
      if chunk = nil then fail "leaf page %d has no jump-pointer chunk" pg;
      let cr = peek_region t chunk in
      let n = Mem.peek_u16 cr 8 in
      let found = ref false in
      for i = 0 to n - 1 do
        if Mem.peek_i32 cr (12 + (4 * i)) = pg then found := true
      done;
      if not !found then fail "leaf page %d not in its chunk %d" pg chunk)
    expected;
  (* leaf node chain equals in-order traversal, and the leaf page chain
     matches the jump-pointer array *)
  let rec page_chain pg acc =
    if pg = nil then List.rev acc
    else page_chain (Mem.peek_i32 (peek_region t pg) h_next) (pg :: acc)
  in
  match expected with
  | [] -> ()
  | first :: _ ->
      if page_chain first [] <> expected then fail "leaf page chain disagrees"

(* amcheck-style entry point: the structural check as data, for the scrub
   and chaos harnesses that must keep counting past a failure. *)
let check_invariants t =
  match check t with
  | () -> Ok (page_count t)
  | exception Failure msg -> Error msg
