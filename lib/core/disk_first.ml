(* Disk-first fpB+-Tree (paper, Section 3.1): a disk-optimized B+-Tree whose
   page contents are organised as a small cache-optimized tree (an "in-page
   tree") instead of one large sorted array.

   - In-page nonleaf nodes are [w] cache lines and store 2-byte in-page
     offsets (a child node's starting line number) instead of full pointers.
   - In-page leaf nodes are [x] cache lines and store 4-byte pointers: child
     page IDs in nonleaf pages, tuple IDs in leaf pages.
   - (w, x) come from the tuner (Section 3.1.1 / Table 2).
   - Every node access prefetches the whole node first (pB+-Tree style).

   In-page space management: nodes are carved line-granular from the page
   with a bump watermark; in-page reorganisations and page splits rebuild
   pages compactly, which is when space is reclaimed.  Insertion follows
   Section 3.1.2: split the in-page leaf node if lines are free; otherwise
   reorganise the in-page tree if the page still has at least one empty
   slot per in-page leaf node; otherwise split the page.

   Page layout:
     line 0 (64B header):
       0  u8  kind (0 = leaf page, 1 = nonleaf page)
       1  u8  in-page levels
       2  u16 root node line
       4  i32 prev page     8 i32 next page   (sibling links, every level)
       12 u16 total entries in page
       14 u16 next free line (bump watermark)
       16 u16 first in-page leaf node line
       18 u16 number of in-page leaf nodes
     lines 1..: in-page nodes.

   In-page nonleaf node (w lines): 0 u16 n; 2 u16 flags(1);
     4.. keys (4B x fn); then child line numbers (2B x fn).
   In-page leaf node (x lines): 0 u16 n; 2 u16 flags(0);
     4 u16 next leaf line; 6 u16 prev leaf line;
     8.. keys (4B x fl); then pointers (4B x fl). *)

open Fpb_simmem
open Fpb_storage
open Fpb_btree_common

type cfg = {
  page_size : int;
  page_lines : int;
  w : int;  (* nonleaf node lines *)
  x : int;  (* leaf node lines *)
  fn : int;  (* nonleaf node capacity *)
  fl : int;  (* leaf node capacity *)
  max_fanout : int;  (* tuned page fan-out (max entries per page) *)
  max_leaves : int;  (* most in-page leaf nodes a page can hold structurally *)
}

type t = {
  pool : Buffer_pool.t;
  sim : Sim.t;
  cfg : cfg;
  mutable root : int;
  mutable levels : int;  (* page levels; 1 = root is a leaf page *)
  mutable n_pages : int;
  mutable io_prefetch_distance : int;
  mutable cache_prefetch_leaves : bool;  (* prefetch leaf nodes per page in scans *)
  mutable bound_scan_end : bool;  (* stop I/O prefetch at the end page *)
  level_acc : int array;  (* page accesses by depth, slot 0 = root *)
  mutable trace : Fpb_obs.Trace.t option;
}

let name = "disk-first fpB+tree"
let nil = Page_store.nil
let line_bytes = 64

(* Header field offsets. *)
let h_kind = 0
let h_ip_levels = 1
let h_root = 2
let h_prev = 4
let h_next = 8
let h_total = 12
let h_free = 14
let h_first_leaf = 16
let h_n_leaves = 18
let h_last_leaf = 20

(* In-page node field offsets (from the node's first byte). *)
let n_count = 0
let n_next = 4  (* leaf nodes only *)
let n_prev = 6
let nonleaf_keys = 4
let leaf_keys = 8

(* Number of in-page nonleaf nodes needed above [m] leaf nodes. *)
let nonleaves_above ~fn m =
  let rec go cnt acc =
    if cnt <= 1 then acc
    else
      let parents = (cnt + fn - 1) / fn in
      go parents (acc + parents)
  in
  go m 0

let cfg_of_widths ~page_size ~w ~x ~max_fanout =
  let line_size = line_bytes in
  let fn = Layout.df_nonleaf_capacity ~line_size w in
  let fl = Layout.df_leaf_capacity ~line_size x in
  let page_lines = page_size / line_bytes in
  let fits m = (m * x) + (nonleaves_above ~fn m * w) + 1 <= page_lines in
  let rec grow m = if fits (m + 1) then grow (m + 1) else m in
  let max_leaves = grow 1 in
  let max_fanout =
    match max_fanout with Some f -> f | None -> max_leaves * fl
  in
  { page_size; page_lines; w; x; fn; fl; max_fanout; max_leaves }

let make_cfg page_size =
  let sel = Tuning.disk_first ~page_size () in
  cfg_of_widths ~page_size ~w:sel.Tuning.df_w ~x:sel.df_x
    ~max_fanout:(Some sel.df_fanout)

(* --- Node accessors ------------------------------------------------------- *)

let node_off line = line * line_bytes

let nonleaf_key_off _c line i = node_off line + nonleaf_keys + (Key.size * i)
let nonleaf_child_off c line i =
  node_off line + nonleaf_keys + (Key.size * c.fn) + (2 * i)

let leaf_key_off _c line i = node_off line + leaf_keys + (Key.size * i)
let leaf_ptr_off c line i =
  node_off line + leaf_keys + (Key.size * c.fl) + (4 * i)

let prefetch_node t r line ~lines =
  Mem.prefetch t.sim r ~off:(node_off line) ~len:(lines * line_bytes)

let read_n t r line = Mem.read_u16 t.sim r (node_off line + n_count)
let write_n t r line v = Mem.write_u16 t.sim r (node_off line + n_count) v

(* --- In-page tree construction ------------------------------------------- *)

(* Allocate [lines] lines from the page watermark; returns the line number
   or raises [Exit] if the page is out of lines (callers check first). *)
let alloc_lines t r lines =
  let free = Mem.read_u16 t.sim r h_free in
  if free + lines > t.cfg.page_lines then raise Exit;
  Mem.write_u16 t.sim r h_free (free + lines);
  free

(* Rebuild the in-page tree of [r] from scratch with [entries], spreading
   them over [n_leaves] in-page leaf nodes.  Resets the watermark. *)
let build_in_page t r entries ~n_leaves =
  let c = t.cfg in
  let n = Array.length entries in
  let n_leaves = max 1 (min n_leaves c.max_leaves) in
  (* never spread over more leaves than entries: empty leaves would need
     sentinel separators, which collide in their in-page parent *)
  let n_leaves = if n > 0 then min n_leaves n else 1 in
  let n_leaves = max n_leaves ((n + c.fl - 1) / c.fl) in
  assert (n_leaves <= c.max_leaves);
  Mem.write_u16 t.sim r h_free 1;
  (* leaves, evenly filled, chained *)
  let base = n / n_leaves and extra = n mod n_leaves in
  let leaves = Array.make n_leaves (0, 0) in
  let pos = ref 0 in
  let prev = ref 0 in
  for li = 0 to n_leaves - 1 do
    let cnt = base + (if li < extra then 1 else 0) in
    let line = alloc_lines t r c.x in
    Mem.write_u16 t.sim r (node_off line + n_count) cnt;
    Mem.write_u16 t.sim r (node_off line + 2) 0;
    Mem.write_u16 t.sim r (node_off line + n_next) 0;
    Mem.write_u16 t.sim r (node_off line + n_prev) !prev;
    if !prev <> 0 then Mem.write_u16 t.sim r (node_off !prev + n_next) line;
    for j = 0 to cnt - 1 do
      let k, p = entries.(!pos + j) in
      Mem.write_i32 t.sim r (leaf_key_off c line j) k;
      Mem.write_i32 t.sim r (leaf_ptr_off c line j) p
    done;
    let min_key = if cnt > 0 then fst entries.(!pos) else Key.sentinel in
    leaves.(li) <- (min_key, line);
    pos := !pos + cnt;
    prev := line
  done;
  Mem.write_u16 t.sim r h_first_leaf (snd leaves.(0));
  Mem.write_u16 t.sim r h_last_leaf (snd leaves.(n_leaves - 1));
  Mem.write_u16 t.sim r h_n_leaves n_leaves;
  Mem.write_u16 t.sim r h_total n;
  (* nonleaf levels, packed *)
  let level = ref leaves in
  let ip_levels = ref 1 in
  while Array.length !level > 1 do
    let cnt = Array.length !level in
    let parents = (cnt + c.fn - 1) / c.fn in
    let up = Array.make parents (0, 0) in
    for p = 0 to parents - 1 do
      let lo = p * c.fn in
      let k = min c.fn (cnt - lo) in
      let line = alloc_lines t r c.w in
      Mem.write_u16 t.sim r (node_off line + n_count) k;
      Mem.write_u16 t.sim r (node_off line + 2) 1;
      for j = 0 to k - 1 do
        let mk, child = !level.(lo + j) in
        Mem.write_i32 t.sim r (nonleaf_key_off c line j) mk;
        Mem.write_u16 t.sim r (nonleaf_child_off c line j) child
      done;
      up.(p) <- (fst !level.(lo), line)
    done;
    level := up;
    incr ip_levels
  done;
  Mem.write_u16 t.sim r h_root (snd !level.(0));
  Mem.write_u8 t.sim r h_ip_levels !ip_levels

let new_page t ~kind =
  let page, r = Buffer_pool.create_page t.pool in
  t.n_pages <- t.n_pages + 1;
  Mem.write_u8 t.sim r h_kind kind;
  Mem.write_i32 t.sim r h_prev nil;
  Mem.write_i32 t.sim r h_next nil;
  Mem.write_u16 t.sim r h_free 1;
  (page, r)

(* Fresh empty page: a single empty in-page leaf node as root. *)
let init_empty t r = build_in_page t r [||] ~n_leaves:1

let create_with_cfg pool cfg =
  let sim = Buffer_pool.sim pool in
  let t =
    {
      pool;
      sim;
      cfg;
      root = nil;
      levels = 1;
      n_pages = 0;
      io_prefetch_distance = 16;
      cache_prefetch_leaves = true;
      bound_scan_end = true;
      level_acc = Array.make 16 0;
      trace = None;
    }
  in
  let root, r = new_page t ~kind:0 in
  init_empty t r;
  Buffer_pool.unpin pool root;
  t.root <- root;
  t

let create pool =
  let page_size = Page_store.page_size (Buffer_pool.store pool) in
  create_with_cfg pool (make_cfg page_size)

(* Non-tuned node widths, for the Figure 11 width sweep. *)
let create_custom pool ~w ~x =
  let page_size = Page_store.page_size (Buffer_pool.store pool) in
  create_with_cfg pool (cfg_of_widths ~page_size ~w ~x ~max_fanout:None)

let set_io_prefetch_distance t d = t.io_prefetch_distance <- max 1 d

(* Ablation knobs (see bench `ablation`): disable the cache-granularity
   leaf-node prefetch within scanned pages, or the Section 2.2 fix that
   bounds I/O prefetching at the end page (overshooting). *)
let set_cache_prefetch_leaves t b = t.cache_prefetch_leaves <- b
let set_bound_scan_end t b = t.bound_scan_end <- b

(* --- Uncharged instrumentation --------------------------------------------- *)

let level_accesses t = Array.sub t.level_acc 0 t.levels
let reset_level_accesses t = Array.fill t.level_acc 0 (Array.length t.level_acc) 0
let set_trace t tr = t.trace <- tr

let bump_level t depth =
  if depth <= Array.length t.level_acc then
    t.level_acc.(depth - 1) <- t.level_acc.(depth - 1) + 1

let stall_now t = Fpb_obs.Counter.value t.sim.Sim.stats.Stats.stall

(* Record one page visit: bump the per-level counter and, if a trace is
   attached, emit a [node_access] event with the cache-stall cycles the
   visit incurred ([stall0] = stall counter before the visit). *)
let note_access t ~page ~depth ~stall0 =
  bump_level t depth;
  match t.trace with
  | None -> ()
  | Some tr ->
      Fpb_obs.Trace.emit tr "node_access"
        [
          ("level", Fpb_obs.Json.Int depth);
          ("page", Fpb_obs.Json.Int page);
          ("stall_cycles", Fpb_obs.Json.Int (stall_now t - stall0));
        ]

(* --- In-page search ------------------------------------------------------- *)

(* Descend the in-page tree to the leaf node for [key].  [visit] sees each
   nonleaf (line, n, slot taken). *)
let ip_find_leaf t r key ~visit =
  let c = t.cfg in
  let levels = Mem.read_u8 t.sim r h_ip_levels in
  let line = ref (Mem.read_u16 t.sim r h_root) in
  for _ = 1 to levels - 1 do
    prefetch_node t r !line ~lines:c.w;
    Sim.busy_node t.sim;
    let n = read_n t r !line in
    let i =
      Array_search.upper_bound t.sim r ~off:(nonleaf_key_off c !line 0) ~n ~key
    in
    let slot = max 0 (i - 1) in
    visit !line n slot;
    line := Mem.read_u16 t.sim r (nonleaf_child_off c !line slot)
  done;
  prefetch_node t r !line ~lines:c.x;
  Sim.busy_node t.sim;
  !line

(* Position of [key] in the in-page leaf node [line]. *)
let ip_leaf_slot t r line ~n ~key mode =
  let c = t.cfg in
  match mode with
  | `Lower -> Array_search.lower_bound t.sim r ~off:(leaf_key_off c line 0) ~n ~key
  | `Upper -> Array_search.upper_bound t.sim r ~off:(leaf_key_off c line 0) ~n ~key

(* Route at page granularity: pointer of the last entry <= [key] (or the
   first entry if key precedes everything). *)
let ip_route t r key =
  let c = t.cfg in
  let line = ip_find_leaf t r key ~visit:(fun _ _ _ -> ()) in
  let n = read_n t r line in
  let i = ip_leaf_slot t r line ~n ~key `Upper in
  let slot = max 0 (i - 1) in
  Mem.read_i32 t.sim r (leaf_ptr_off c line slot)

(* --- Search --------------------------------------------------------------- *)

let search t key =
  Sim.busy_op t.sim;
  let rec go page depth =
    let stall0 = stall_now t in
    let r = Buffer_pool.get t.pool page in
    if depth = t.levels then begin
      let line = ip_find_leaf t r key ~visit:(fun _ _ _ -> ()) in
      let n = read_n t r line in
      let i = ip_leaf_slot t r line ~n ~key `Lower in
      let result =
        if i < n && Mem.read_i32 t.sim r (leaf_key_off t.cfg line i) = key then
          Some (Mem.read_i32 t.sim r (leaf_ptr_off t.cfg line i))
        else None
      in
      note_access t ~page ~depth ~stall0;
      Buffer_pool.unpin t.pool page;
      result
    end
    else begin
      let child = ip_route t r key in
      note_access t ~page ~depth ~stall0;
      Buffer_pool.unpin t.pool page;
      go child (depth + 1)
    end
  in
  go t.root 1

(* --- Batched search (level-wise waves; see docs/BATCHING.md) -------------- *)

(* One level-wise wave over the sorted probes [order.(lo..hi-1)]: at each
   page level the probes routing through one page are consecutive, so the
   frontier is deduplicated by comparing with the previous probe's child
   and every unique page is pinned once per wave ([get_batch] coalesces
   the disk reads).  Within a page the in-page tree prefetches its own
   node path ([ip_find_leaf]); across probes we warm the next frontier
   page's header line while routing the current one, and async-read each
   newly discovered child page while the rest of the level still routes.
   Accounting: one [note_access] per unique page per wave (see
   [Index_sig.search_batch]). *)
let batch_wave t keys order lo hi out =
  let np = hi - lo in
  Batch_stats.note_wave np;
  for _ = 1 to np do
    Sim.busy_op t.sim
  done;
  let child_of = Array.make np 0 in
  let rec go pages starts depth =
    let ng = Array.length pages in
    let regions = Buffer_pool.get_batch t.pool pages in
    let leaf = depth = t.levels in
    let prev_child = ref nil in
    for g = 0 to ng - 1 do
      if g + 1 < ng then
        Mem.prefetch t.sim regions.(g + 1) ~off:0 ~len:line_bytes;
      let page = pages.(g) and r = regions.(g) in
      let stall0 = stall_now t in
      for j = starts.(g) to starts.(g + 1) - 1 do
        let key = keys.(order.(j)) in
        if leaf then begin
          let line = ip_find_leaf t r key ~visit:(fun _ _ _ -> ()) in
          let n = read_n t r line in
          let i = ip_leaf_slot t r line ~n ~key `Lower in
          out.(order.(j)) <-
            (if i < n && Mem.read_i32 t.sim r (leaf_key_off t.cfg line i) = key
             then Some (Mem.read_i32 t.sim r (leaf_ptr_off t.cfg line i))
             else None)
        end
        else begin
          let child = ip_route t r key in
          child_of.(j - lo) <- child;
          if child <> !prev_child then begin
            prev_child := child;
            if not (Buffer_pool.is_resident t.pool child) then begin
              Batch_stats.note_stall ();
              Buffer_pool.prefetch t.pool child
            end
          end
        end
      done;
      note_access t ~page ~depth ~stall0;
      Batch_stats.note_group (starts.(g + 1) - starts.(g))
    done;
    Array.iter (fun p -> Buffer_pool.unpin t.pool p) pages;
    if not leaf then begin
      let ng' = ref 0 in
      for j = 0 to np - 1 do
        if j = 0 || child_of.(j) <> child_of.(j - 1) then incr ng'
      done;
      let next_pages = Array.make !ng' 0 in
      let next_starts = Array.make (!ng' + 1) 0 in
      let g = ref 0 in
      for j = 0 to np - 1 do
        if j = 0 || child_of.(j) <> child_of.(j - 1) then begin
          next_pages.(!g) <- child_of.(j);
          next_starts.(!g) <- lo + j;
          incr g
        end
      done;
      next_starts.(!ng') <- hi;
      go next_pages next_starts (depth + 1)
    end
  in
  go [| t.root |] [| lo; hi |] 1

let search_batch t keys =
  let m = Array.length keys in
  let out = Array.make m None in
  if m > 0 then begin
    let order = Array.init m (fun i -> i) in
    Array.sort
      (fun a b ->
        let c = compare keys.(a) keys.(b) in
        if c <> 0 then c else compare a b)
      order;
    let rec run lo hi =
      if hi - lo = 1 then begin
        Batch_stats.note_wave 1;
        out.(order.(lo)) <- search t keys.(order.(lo))
      end
      else
        try batch_wave t keys order lo hi out
        with Buffer_pool.Overloaded _ ->
          let mid = (lo + hi) / 2 in
          run lo mid;
          run mid hi
    in
    run 0 m
  end;
  out

(* --- Entry collection (charged; used by reorganise / page split) ---------- *)

let collect_entries t r =
  let c = t.cfg in
  let total = Mem.read_u16 t.sim r h_total in
  let out = Array.make total (0, 0) in
  let pos = ref 0 in
  let line = ref (Mem.read_u16 t.sim r h_first_leaf) in
  while !line <> 0 do
    prefetch_node t r !line ~lines:c.x;
    let n = read_n t r !line in
    for j = 0 to n - 1 do
      out.(!pos) <-
        (Mem.read_i32 t.sim r (leaf_key_off c !line j),
         Mem.read_i32 t.sim r (leaf_ptr_off c !line j));
      incr pos
    done;
    line := Mem.read_u16 t.sim r (node_off !line + n_next)
  done;
  assert (!pos = total);
  out

(* --- In-page insertion ----------------------------------------------------
   Returns [`Done] (entry absorbed), [`Updated] (duplicate key overwritten)
   or [`Page_full] (the caller must reorganise or split the page). *)

let ip_insert_into_leaf t r line ~n ~i key ptr =
  let c = t.cfg in
  let len = (n - i) * 4 in
  Mem.blit t.sim r (leaf_key_off c line i) r (leaf_key_off c line (i + 1)) len;
  Mem.blit t.sim r (leaf_ptr_off c line i) r (leaf_ptr_off c line (i + 1)) len;
  Mem.write_i32 t.sim r (leaf_key_off c line i) key;
  Mem.write_i32 t.sim r (leaf_ptr_off c line i) ptr;
  write_n t r line (n + 1)

let ip_insert_into_nonleaf t r line ~n ~i key child =
  let c = t.cfg in
  Mem.blit t.sim r (nonleaf_key_off c line i) r
    (nonleaf_key_off c line (i + 1))
    ((n - i) * 4);
  Mem.blit t.sim r (nonleaf_child_off c line i) r
    (nonleaf_child_off c line (i + 1))
    ((n - i) * 2);
  Mem.write_i32 t.sim r (nonleaf_key_off c line i) key;
  Mem.write_u16 t.sim r (nonleaf_child_off c line i) child;
  write_n t r line (n + 1)

(* Insert (sep, new_line) into the chain of in-page nonleaf parents;
   allocates nodes as needed (raises [Exit] when out of lines — caller
   rolls back by rebuilding the page anyway). *)
let rec ip_insert_parent t r path sep new_line =
  let c = t.cfg in
  match path with
  | [] ->
      (* grow the in-page tree: new root over old root and new_line *)
      let old_root = Mem.read_u16 t.sim r h_root in
      let line = alloc_lines t r c.w in
      let old_min =
        (* old root's min key: nonleaf key 0 or leaf key 0 *)
        if Mem.read_u8 t.sim r h_ip_levels >= 2 then
          Mem.read_i32 t.sim r (nonleaf_key_off c old_root 0)
        else
          Mem.read_i32 t.sim r (leaf_key_off c old_root 0)
      in
      Mem.write_u16 t.sim r (node_off line + n_count) 2;
      Mem.write_u16 t.sim r (node_off line + 2) 1;
      Mem.write_i32 t.sim r (nonleaf_key_off c line 0) old_min;
      Mem.write_u16 t.sim r (nonleaf_child_off c line 0) old_root;
      Mem.write_i32 t.sim r (nonleaf_key_off c line 1) sep;
      Mem.write_u16 t.sim r (nonleaf_child_off c line 1) new_line;
      Mem.write_u16 t.sim r h_root line;
      Mem.write_u8 t.sim r h_ip_levels (Mem.read_u8 t.sim r h_ip_levels + 1)
  | parent :: rest ->
      let n = read_n t r parent in
      let i =
        Array_search.upper_bound t.sim r
          ~off:(nonleaf_key_off c parent 0)
          ~n ~key:sep
      in
      let i =
        if
          i = 0
          || (i = 1 && Mem.read_i32 t.sim r (nonleaf_key_off c parent 0) = sep)
        then begin
          (* child 0 split at or below its untrusted key 0 *)
          Mem.write_i32 t.sim r (nonleaf_key_off c parent 0) (sep - 1);
          1
        end
        else i
      in
      if n < c.fn then ip_insert_into_nonleaf t r parent ~n ~i sep new_line
      else begin
        (* split the nonleaf node *)
        let right = alloc_lines t r c.w in
        let mid = n / 2 in
        let moved = n - mid in
        Mem.write_u16 t.sim r (node_off right + n_count) moved;
        Mem.write_u16 t.sim r (node_off right + 2) 1;
        Mem.blit t.sim r (nonleaf_key_off c parent mid) r
          (nonleaf_key_off c right 0) (moved * 4);
        Mem.blit t.sim r (nonleaf_child_off c parent mid) r
          (nonleaf_child_off c right 0) (moved * 2);
        write_n t r parent mid;
        let node_sep = Mem.read_i32 t.sim r (nonleaf_key_off c right 0) in
        (if i <= mid then ip_insert_into_nonleaf t r parent ~n:mid ~i sep new_line
         else
           ip_insert_into_nonleaf t r right ~n:moved ~i:(i - mid) sep new_line);
        ip_insert_parent t r rest node_sep right
      end

let ip_insert t r key ptr =
  let c = t.cfg in
  let path = ref [] in
  let line = ip_find_leaf t r key ~visit:(fun l _ _ -> path := l :: !path) in
  let n = read_n t r line in
  let i = ip_leaf_slot t r line ~n ~key `Lower in
  if i < n && Mem.read_i32 t.sim r (leaf_key_off c line i) = key then begin
    Mem.write_i32 t.sim r (leaf_ptr_off c line i) ptr;
    `Updated
  end
  else if n < c.fl then begin
    ip_insert_into_leaf t r line ~n ~i key ptr;
    Mem.write_u16 t.sim r h_total (Mem.read_u16 t.sim r h_total + 1);
    `Done
  end
  else begin
    (* split the in-page leaf node, if lines allow *)
    let levels = Mem.read_u8 t.sim r h_ip_levels in
    let worst = c.x + (c.w * levels) in
    let free = Mem.read_u16 t.sim r h_free in
    if free + worst > c.page_lines then `Page_full
    else begin
      let right = alloc_lines t r c.x in
      let mid = n / 2 in
      let moved = n - mid in
      Mem.write_u16 t.sim r (node_off right + n_count) moved;
      Mem.write_u16 t.sim r (node_off right + 2) 0;
      Mem.blit t.sim r (leaf_key_off c line mid) r (leaf_key_off c right 0)
        (moved * 4);
      Mem.blit t.sim r (leaf_ptr_off c line mid) r (leaf_ptr_off c right 0)
        (moved * 4);
      write_n t r line mid;
      (* leaf chain *)
      let old_next = Mem.read_u16 t.sim r (node_off line + n_next) in
      Mem.write_u16 t.sim r (node_off right + n_next) old_next;
      Mem.write_u16 t.sim r (node_off right + n_prev) line;
      Mem.write_u16 t.sim r (node_off line + n_next) right;
      if old_next <> 0 then
        Mem.write_u16 t.sim r (node_off old_next + n_prev) right
      else Mem.write_u16 t.sim r h_last_leaf right;
      Mem.write_u16 t.sim r h_n_leaves (Mem.read_u16 t.sim r h_n_leaves + 1);
      let sep = Mem.read_i32 t.sim r (leaf_key_off c right 0) in
      (if i <= mid then ip_insert_into_leaf t r line ~n:mid ~i key ptr
       else ip_insert_into_leaf t r right ~n:moved ~i:(i - mid) key ptr);
      Mem.write_u16 t.sim r h_total (Mem.read_u16 t.sim r h_total + 1);
      ip_insert_parent t r !path sep right;
      `Done
    end
  end

(* --- Page-level insertion -------------------------------------------------- *)

(* Insert (key, ptr) into page [page], reorganising or splitting it if
   needed.  Returns [`Done], [`Updated], or [`Split (sep, new_page)]. *)
let insert_into_page t page key ptr =
  let c = t.cfg in
  let r = Buffer_pool.get t.pool page in
  Buffer_pool.mark_dirty t.pool page;
  let finish outcome =
    Buffer_pool.unpin t.pool page;
    outcome
  in
  match ip_insert t r key ptr with
  | (`Done | `Updated) as o -> finish o
  | `Page_full ->
      let total = Mem.read_u16 t.sim r h_total in
      (* Reorganise only when an even spread over the maximum leaf count
         leaves at least one free slot per in-page leaf node (the paper's
         "not close to the maximum fan-out" condition, made exact so the
         retry below cannot fail). *)
      if total + c.max_leaves <= c.max_leaves * c.fl then begin
        (* reorganise: rebuild spread over the maximum leaf count *)
        let entries = collect_entries t r in
        build_in_page t r entries ~n_leaves:c.max_leaves;
        match ip_insert t r key ptr with
        | (`Done | `Updated) as o -> finish o
        | `Page_full -> failwith "disk-first: reorganise failed to make room"
      end
      else begin
        (* page split *)
        let entries = collect_entries t r in
        let n = Array.length entries in
        let mid = n / 2 in
        let left = Array.sub entries 0 mid in
        let right_entries = Array.sub entries mid (n - mid) in
        let kind = Mem.read_u8 t.sim r h_kind in
        let right, rr = new_page t ~kind in
        build_in_page t r left ~n_leaves:c.max_leaves;
        build_in_page t rr right_entries ~n_leaves:c.max_leaves;
        (* page sibling links *)
        let old_next = Mem.read_i32 t.sim r h_next in
        Mem.write_i32 t.sim rr h_next old_next;
        Mem.write_i32 t.sim rr h_prev page;
        Mem.write_i32 t.sim r h_next right;
        if old_next <> nil then
          Buffer_pool.with_page t.pool old_next (fun onr ->
              Mem.write_i32 t.sim onr h_prev right;
              Buffer_pool.mark_dirty t.pool old_next);
        let sep = fst right_entries.(0) in
        let target_r = if key < sep then r else rr in
        (match ip_insert t target_r key ptr with
        | `Done | `Updated -> ()
        | `Page_full -> failwith "disk-first: split failed to make room");
        Buffer_pool.unpin t.pool right;
        finish (`Split (sep, right))
      end

(* Minimum key stored in a page (charged). *)
let page_min_key t r =
  let first = Mem.read_u16 t.sim r h_first_leaf in
  Mem.read_i32 t.sim r (leaf_key_off t.cfg first 0)

(* Lower a page's first entry key to [k] (for the untrusted-minimum fix at
   page granularity). *)
let lower_page_min t r k =
  let first = Mem.read_u16 t.sim r h_first_leaf in
  Mem.write_i32 t.sim r (leaf_key_off t.cfg first 0) k

let rec insert_into_parent_pages t path sep child_page =
  match path with
  | [] ->
      let old_root = t.root in
      let root, r = new_page t ~kind:1 in
      let old_min =
        Buffer_pool.with_page t.pool old_root (fun orr -> page_min_key t orr)
      in
      build_in_page t r [| (old_min, old_root); (sep, child_page) |] ~n_leaves:1;
      Buffer_pool.unpin t.pool root;
      t.root <- root;
      t.levels <- t.levels + 1
  | parent :: rest -> (
      (* untrusted-minimum fix: keep page key arrays sorted when the
         leftmost subtree splits below the recorded minimum *)
      let sep =
        let r = Buffer_pool.get t.pool parent in
        let m = page_min_key t r in
        if sep <= m then lower_page_min t r (sep - 1);
        Buffer_pool.unpin t.pool parent;
        sep
      in
      match insert_into_page t parent sep child_page with
      | `Done | `Updated -> ()
      | `Split (psep, pright) -> insert_into_parent_pages t rest psep pright)

let insert t key tid =
  if not (Key.valid key) then invalid_arg "Disk_first.insert: key out of range";
  Sim.busy_op t.sim;
  (* descend to the leaf page, recording the page path *)
  let rec go page depth path =
    if depth = t.levels then begin
      bump_level t depth;
      (page, path)
    end
    else begin
      let r = Buffer_pool.get t.pool page in
      let child = ip_route t r key in
      bump_level t depth;
      Buffer_pool.unpin t.pool page;
      go child (depth + 1) (page :: path)
    end
  in
  let leaf_page, path = go t.root 1 [] in
  match insert_into_page t leaf_page key tid with
  | `Done -> `Inserted
  | `Updated -> `Updated
  | `Split (sep, right) ->
      insert_into_parent_pages t path sep right;
      `Inserted

(* --- Deletion -------------------------------------------------------------- *)

let delete t key =
  Sim.busy_op t.sim;
  let rec go page depth =
    let r = Buffer_pool.get t.pool page in
    bump_level t depth;
    if depth < t.levels then begin
      let child = ip_route t r key in
      Buffer_pool.unpin t.pool page;
      go child (depth + 1)
    end
    else begin
      let c = t.cfg in
      let line = ip_find_leaf t r key ~visit:(fun _ _ _ -> ()) in
      let n = read_n t r line in
      let i = ip_leaf_slot t r line ~n ~key `Lower in
      let found = i < n && Mem.read_i32 t.sim r (leaf_key_off c line i) = key in
      if found then begin
        let len = (n - i - 1) * 4 in
        Mem.blit t.sim r (leaf_key_off c line (i + 1)) r (leaf_key_off c line i) len;
        Mem.blit t.sim r (leaf_ptr_off c line (i + 1)) r (leaf_ptr_off c line i) len;
        write_n t r line (n - 1);
        Mem.write_u16 t.sim r h_total (Mem.read_u16 t.sim r h_total - 1);
        Buffer_pool.mark_dirty t.pool page
      end;
      Buffer_pool.unpin t.pool page;
      found
    end
  in
  go t.root 1

(* --- Bulkload --------------------------------------------------------------- *)

let bulkload t pairs ~fill =
  if fill <= 0. || fill > 1. then invalid_arg "Disk_first.bulkload: fill";
  if t.n_pages > 1 then invalid_arg "Disk_first.bulkload: tree not empty";
  let c = t.cfg in
  let total = Array.length pairs in
  if total = 0 then ()
  else begin
    Buffer_pool.free_page t.pool t.root;
    t.n_pages <- t.n_pages - 1;
    let per_page = max 1 (int_of_float (float_of_int c.max_fanout *. fill)) in
    (* Leaf pages spread entries over all leaf nodes; nonleaf pages pack. *)
    let build_level ~kind entries =
      let n = Array.length entries in
      let n_pages = (n + per_page - 1) / per_page in
      let ups = Array.make n_pages (0, 0) in
      let prev = ref nil in
      for p = 0 to n_pages - 1 do
        let lo = p * per_page in
        let cnt = min per_page (n - lo) in
        let page, r = new_page t ~kind in
        let n_leaves =
          if kind = 0 then c.max_leaves else (cnt + c.fl - 1) / c.fl
        in
        build_in_page t r (Array.sub entries lo cnt) ~n_leaves;
        Mem.write_i32 t.sim r h_prev !prev;
        if !prev <> nil then begin
          Buffer_pool.with_page t.pool !prev (fun pr ->
              Mem.write_i32 t.sim pr h_next page);
          Buffer_pool.mark_dirty t.pool !prev
        end;
        Buffer_pool.unpin t.pool page;
        prev := page;
        ups.(p) <- (fst entries.(lo), page)
      done;
      ups
    in
    let level = ref (build_level ~kind:0 pairs) in
    let levels = ref 1 in
    while Array.length !level > 1 do
      level := build_level ~kind:1 !level;
      incr levels
    done;
    match !level with
    | [| (_, root) |] ->
        t.root <- root;
        t.levels <- !levels
    | _ -> assert false
  end

(* --- Range scan ------------------------------------------------------------- *)

(* I/O jump-pointer cursor over the in-page leaf nodes of leaf-parent pages:
   yields successive tree-leaf page IDs. *)
type jp_cursor = {
  mutable jp_page : int;
  mutable jp_line : int;
  mutable jp_idx : int;
}

let rec jp_next t cur =
  if cur.jp_page = nil then None
  else begin
    let r = Buffer_pool.get t.pool cur.jp_page in
    if cur.jp_line = 0 then cur.jp_line <- Mem.read_u16 t.sim r h_first_leaf;
    let n = read_n t r cur.jp_line in
    if cur.jp_idx < n then begin
      let pid = Mem.read_i32 t.sim r (leaf_ptr_off t.cfg cur.jp_line cur.jp_idx) in
      cur.jp_idx <- cur.jp_idx + 1;
      Buffer_pool.unpin t.pool cur.jp_page;
      Some pid
    end
    else begin
      let next_line = Mem.read_u16 t.sim r (node_off cur.jp_line + n_next) in
      cur.jp_idx <- 0;
      if next_line <> 0 then begin
        cur.jp_line <- next_line;
        Buffer_pool.unpin t.pool cur.jp_page;
        jp_next t cur
      end
      else begin
        let next_page = Mem.read_i32 t.sim r h_next in
        Buffer_pool.unpin t.pool cur.jp_page;
        cur.jp_page <- next_page;
        cur.jp_line <- 0;
        if next_page = nil then None else jp_next t cur
      end
    end
  end

(* Cache-granularity prefetch of all in-page leaf nodes of a leaf page
   (walks the nonleaf structure, whose nodes the search just touched). *)
let prefetch_page_leaves t r =
  let c = t.cfg in
  let rec go line depth levels =
    if depth = levels then
      Mem.prefetch t.sim r ~off:(node_off line) ~len:(c.x * line_bytes)
    else begin
      let n = read_n t r line in
      for j = 0 to n - 1 do
        go (Mem.read_u16 t.sim r (nonleaf_child_off c line j)) (depth + 1) levels
      done
    end
  in
  let levels = Mem.read_u8 t.sim r h_ip_levels in
  go (Mem.read_u16 t.sim r h_root) 1 levels

let range_scan t ?(prefetch = true) ~start_key ~end_key f =
  Sim.busy_op t.sim;
  if end_key < start_key then 0
  else begin
    let c = t.cfg in
    (* end page, to bound I/O prefetching (avoid overshooting) *)
    let rec find_page key page depth ~visit =
      if depth = t.levels then page
      else begin
        let r = Buffer_pool.get t.pool page in
        let child = ip_route t r key in
        bump_level t depth;
        visit page r;
        Buffer_pool.unpin t.pool page;
        find_page key child (depth + 1) ~visit
      end
    in
    let end_leaf =
      if prefetch && t.bound_scan_end then
        find_page end_key t.root 1 ~visit:(fun _ _ -> ())
      else nil
    in
    let parent = ref nil in
    let start_leaf =
      find_page start_key t.root 1 ~visit:(fun p _ -> parent := p)
    in
    (* position the jump-pointer cursor on the start leaf's entry *)
    let cur = { jp_page = !parent; jp_line = 0; jp_idx = 0 } in
    (if !parent <> nil then begin
       (* advance the cursor past the start leaf *)
       let rec skip () =
         match jp_next t cur with
         | Some pid when pid <> start_leaf -> skip ()
         | _ -> ()
       in
       skip ()
     end);
    let outstanding = ref 0 in
    (* nothing to prefetch when the scan starts on the end page *)
    let done_prefetching = ref (!parent = nil || end_leaf = start_leaf) in
    let pump () =
      if prefetch then
        while (not !done_prefetching) && !outstanding < t.io_prefetch_distance do
          match jp_next t cur with
          | None -> done_prefetching := true
          | Some pid ->
              Buffer_pool.prefetch t.pool pid;
              incr outstanding;
              if pid = end_leaf then done_prefetching := true
        done
    in
    pump ();
    let count = ref 0 in
    let rec scan_page page =
      let r = Buffer_pool.get t.pool page in
      bump_level t t.levels;
      if prefetch && t.cache_prefetch_leaves then prefetch_page_leaves t r;
      let line = ref (Mem.read_u16 t.sim r h_first_leaf) in
      let stop = ref false in
      (* fast-forward within the page on the first page *)
      (if !count = 0 then line := ip_find_leaf t r start_key ~visit:(fun _ _ _ -> ()));
      while (not !stop) && !line <> 0 do
        let n = read_n t r !line in
        let i0 =
          if !count = 0 then ip_leaf_slot t r !line ~n ~key:start_key `Lower
          else 0
        in
        let i = ref i0 in
        while (not !stop) && !i < n do
          let k = Mem.read_i32 t.sim r (leaf_key_off c !line !i) in
          if k > end_key then stop := true
          else begin
            f k (Mem.read_i32 t.sim r (leaf_ptr_off c !line !i));
            incr count;
            incr i
          end
        done;
        if not !stop then line := Mem.read_u16 t.sim r (node_off !line + n_next)
      done;
      let next = if !stop then nil else Mem.read_i32 t.sim r h_next in
      Buffer_pool.unpin t.pool page;
      if next <> nil then begin
        if !outstanding > 0 then decr outstanding;
        pump ();
        scan_page next
      end
    in
    scan_page start_leaf;
    !count
  end

(* Reverse (descending) range scan: walks in-page leaf chains and page
   sibling links backwards; backward I/O prefetching follows the
   leaf-parent level in reverse via the prev links and each page's
   last-leaf-node header field. *)
let range_scan_rev t ?(prefetch = true) ~start_key ~end_key f =
  Sim.busy_op t.sim;
  if end_key < start_key then 0
  else begin
    let c = t.cfg in
    let rec find_page key page depth ~visit =
      if depth = t.levels then page
      else begin
        let r = Buffer_pool.get t.pool page in
        let child = ip_route t r key in
        bump_level t depth;
        visit page;
        Buffer_pool.unpin t.pool page;
        find_page key child (depth + 1) ~visit
      end
    in
    let start_leaf =
      if prefetch then find_page start_key t.root 1 ~visit:(fun _ -> ())
      else nil
    in
    let parent = ref nil in
    let end_leaf = find_page end_key t.root 1 ~visit:(fun p -> parent := p) in
    (* backward jump-pointer cursor over the leaf-parent pages: locate the
       entry for [end_leaf], then yield preceding leaf page IDs *)
    let jp_pg = ref !parent and jp_line = ref 0 and jp_idx = ref 0 in
    (if !parent <> nil then begin
       let pr = Buffer_pool.get t.pool !parent in
       let line = ref (Mem.read_u16 t.sim pr h_first_leaf) in
       (try
          while !line <> 0 do
            let n = read_n t pr !line in
            for j = 0 to n - 1 do
              if Mem.read_i32 t.sim pr (leaf_ptr_off c !line j) = end_leaf
              then begin
                jp_line := !line;
                jp_idx := j - 1;
                raise Exit
              end
            done;
            line := Mem.read_u16 t.sim pr (node_off !line + n_next)
          done;
          jp_pg := nil (* not found: no prefetch *)
        with Exit -> ());
       Buffer_pool.unpin t.pool !parent
     end);
    let rec jp_prev () =
      if !jp_pg = nil then None
      else begin
        let pr = Buffer_pool.get t.pool !jp_pg in
        if !jp_idx >= 0 then begin
          let pid = Mem.read_i32 t.sim pr (leaf_ptr_off c !jp_line !jp_idx) in
          jp_idx := !jp_idx - 1;
          Buffer_pool.unpin t.pool !jp_pg;
          Some pid
        end
        else begin
          let prev_line = Mem.read_u16 t.sim pr (node_off !jp_line + n_prev) in
          if prev_line <> 0 then begin
            jp_line := prev_line;
            jp_idx := read_n t pr prev_line - 1;
            Buffer_pool.unpin t.pool !jp_pg;
            jp_prev ()
          end
          else begin
            let prev_pg = Mem.read_i32 t.sim pr h_prev in
            Buffer_pool.unpin t.pool !jp_pg;
            jp_pg := prev_pg;
            if prev_pg = nil then None
            else begin
              let pr2 = Buffer_pool.get t.pool prev_pg in
              jp_line := Mem.read_u16 t.sim pr2 h_last_leaf;
              jp_idx := read_n t pr2 !jp_line - 1;
              Buffer_pool.unpin t.pool prev_pg;
              jp_prev ()
            end
          end
        end
      end
    in
    let outstanding = ref 0 in
    let done_prefetching = ref ((not prefetch) || start_leaf = end_leaf) in
    let pump () =
      if prefetch then
        while (not !done_prefetching) && !outstanding < t.io_prefetch_distance do
          match jp_prev () with
          | None -> done_prefetching := true
          | Some pid ->
              Buffer_pool.prefetch t.pool pid;
              incr outstanding;
              if pid = start_leaf then done_prefetching := true
        done
    in
    pump ();
    let count = ref 0 in
    let first_page = ref true in
    let rec scan_page page =
      let r = Buffer_pool.get t.pool page in
      bump_level t t.levels;
      if prefetch && t.cache_prefetch_leaves then prefetch_page_leaves t r;
      let stop = ref false in
      let line = ref 0 in
      let i = ref (-1) in
      (if !first_page then begin
         first_page := false;
         line := ip_find_leaf t r end_key ~visit:(fun _ _ _ -> ());
         let n = read_n t r !line in
         i := ip_leaf_slot t r !line ~n ~key:end_key `Upper - 1
       end
       else begin
         line := Mem.read_u16 t.sim r h_last_leaf;
         i := read_n t r !line - 1
       end);
      while (not !stop) && !line <> 0 do
        while (not !stop) && !i >= 0 do
          let k = Mem.read_i32 t.sim r (leaf_key_off c !line !i) in
          if k < start_key then stop := true
          else begin
            if k <= end_key then begin
              f k (Mem.read_i32 t.sim r (leaf_ptr_off c !line !i));
              incr count
            end;
            decr i
          end
        done;
        if not !stop then begin
          line := Mem.read_u16 t.sim r (node_off !line + n_prev);
          if !line <> 0 then i := read_n t r !line - 1
        end
      done;
      let prev = if !stop then nil else Mem.read_i32 t.sim r h_prev in
      Buffer_pool.unpin t.pool page;
      if prev <> nil then begin
        if !outstanding > 0 then decr outstanding;
        pump ();
        scan_page prev
      end
    in
    scan_page end_leaf;
    !count
  end

(* --- Introspection (uncharged; tests only) ---------------------------------- *)

let height t = t.levels
let page_count t = t.n_pages
let meta t = [ t.root; t.levels; t.n_pages ]

let restore_meta t = function
  | [ root; levels; n_pages ] ->
      t.root <- root;
      t.levels <- levels;
      t.n_pages <- n_pages
  | _ -> invalid_arg (name ^ ".restore_meta: bad shape")
let cfg t = t.cfg

let peek_region t page =
  let r = Buffer_pool.get t.pool page in
  Buffer_pool.unpin t.pool page;
  r

let fail fmt = Fmt.kstr failwith fmt

(* Uncharged in-page leaf iteration. *)
let peek_page_entries t r f =
  let c = t.cfg in
  let line = ref (Mem.peek_u16 r h_first_leaf) in
  while !line <> 0 do
    let n = Mem.peek_u16 r (node_off !line + n_count) in
    for j = 0 to n - 1 do
      f (Mem.peek_i32 r (leaf_key_off c !line j))
        (Mem.peek_i32 r (leaf_ptr_off c !line j))
    done;
    line := Mem.peek_u16 r (node_off !line + n_next)
  done

let iter t f =
  let rec leftmost page depth =
    if depth = t.levels then page
    else begin
      let r = peek_region t page in
      let first = Mem.peek_u16 r h_first_leaf in
      leftmost (Mem.peek_i32 r (leaf_ptr_off t.cfg first 0)) (depth + 1)
    end
  in
  let rec walk page =
    if page <> nil then begin
      let r = peek_region t page in
      peek_page_entries t r f;
      walk (Mem.peek_i32 r h_next)
    end
  in
  walk (leftmost t.root 1)

(* Check the in-page tree of one page; returns its entries in order. *)
let check_in_page t r page =
  let c = t.cfg in
  let free = Mem.peek_u16 r h_free in
  if free > c.page_lines then fail "page %d: watermark beyond page" page;
  let levels = Mem.peek_u8 r h_ip_levels in
  let leaf_lines = ref [] in
  (* structure walk: nodes in bounds, leaves at correct depth *)
  let rec walk line depth =
    if line = 0 || line >= free then fail "page %d: bad node line %d" page line;
    if depth = levels then leaf_lines := line :: !leaf_lines
    else begin
      let n = Mem.peek_u16 r (node_off line + n_count) in
      if n = 0 then fail "page %d: empty nonleaf node" page;
      if n > c.fn then fail "page %d: overfull nonleaf node" page;
      for j = 0 to n - 1 do
        if j > 0 then begin
          let a = Mem.peek_i32 r (nonleaf_key_off c line (j - 1)) in
          let b = Mem.peek_i32 r (nonleaf_key_off c line j) in
          if a >= b then fail "page %d: nonleaf keys out of order" page
        end;
        walk (Mem.peek_u16 r (nonleaf_child_off c line j)) (depth + 1)
      done
    end
  in
  walk (Mem.peek_u16 r h_root) 1;
  let leaf_lines = List.rev !leaf_lines in
  (* leaf chain must match tree order *)
  let rec chain line acc =
    if line = 0 then List.rev acc
    else chain (Mem.peek_u16 r (node_off line + n_next)) (line :: acc)
  in
  let chained = chain (Mem.peek_u16 r h_first_leaf) [] in
  if chained <> leaf_lines then fail "page %d: leaf chain disagrees" page;
  (match List.rev chained with
  | last :: _ when last <> Mem.peek_u16 r h_last_leaf ->
      fail "page %d: stale last-leaf header" page
  | _ -> ());
  if List.length leaf_lines <> Mem.peek_u16 r h_n_leaves then
    fail "page %d: wrong leaf count" page;
  (* entries sorted; total matches *)
  let entries = ref [] in
  peek_page_entries t r (fun k v -> entries := (k, v) :: !entries);
  let entries = List.rev !entries in
  let rec sorted = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if a >= b then fail "page %d: entries out of order" page;
        sorted rest
    | _ -> ()
  in
  sorted entries;
  if List.length entries <> Mem.peek_u16 r h_total then
    fail "page %d: wrong total" page;
  entries

let check t =
  let leaves_seen = ref [] in
  let rec check_page page ~lo ~hi ~depth =
    let r = peek_region t page in
    let kind = Mem.peek_u8 r h_kind in
    if (kind = 0) <> (depth = t.levels) then
      fail "page %d: wrong kind at depth %d" page depth;
    let entries = check_in_page t r page in
    List.iteri
      (fun i (k, _) ->
        (match lo with
        | Some b when i > 0 && k < b -> fail "page %d: key below bound" page
        | _ -> ());
        match hi with
        | Some b when k >= b -> fail "page %d: key above bound" page
        | _ -> ())
      entries;
    if Mem.peek_u16 r h_total > t.cfg.max_leaves * t.cfg.fl then
      fail "page %d: exceeds page capacity" page;
    if kind = 0 then leaves_seen := page :: !leaves_seen
    else begin
      let arr = Array.of_list entries in
      Array.iteri
        (fun i (k, child) ->
          let clo = if i = 0 then lo else Some k in
          let chi = if i = Array.length arr - 1 then hi else Some (fst arr.(i + 1)) in
          check_page child ~lo:clo ~hi:chi ~depth:(depth + 1))
        arr
    end
  in
  check_page t.root ~lo:None ~hi:None ~depth:1;
  let expected = List.rev !leaves_seen in
  let rec chain page acc =
    if page = nil then List.rev acc
    else chain (Mem.peek_i32 (peek_region t page) h_next) (page :: acc)
  in
  match expected with
  | [] -> ()
  | first :: _ ->
      if chain first [] <> expected then fail "leaf page chain disagrees"

(* amcheck-style entry point: the structural check as data, for the scrub
   and chaos harnesses that must keep counting past a failure. *)
let check_invariants t =
  match check t with
  | () -> Ok (page_count t)
  | exception Failure msg -> Error msg
