(** Disk-first fpB+-Tree (paper, Section 3.1): a disk-optimized B+-Tree
    whose pages are organised internally as small cache-optimized trees
    ("in-page trees") with pB+-Tree-style node prefetching.

    - In-page nonleaf nodes are [w] cache lines with 2-byte in-page child
      offsets; in-page leaf nodes are [x] lines with 4-byte page/tuple IDs;
      (w, x) come from {!Fpb_btree_common.Tuning} (Table 2).
    - Insertion follows Section 3.1.2: in-page node split if lines are
      free, else in-page reorganisation, else page split.
    - Range scans use internal jump-pointer arrays at both granularities:
      leaf-parent pages' in-page leaf chains for leaf-page I/O prefetch,
      and per-page leaf-node prefetch at cache granularity, with the
      "don't overshoot the end key" fix.

    This is the variant the paper recommends by default, for its minimal
    I/O impact. *)

type cfg = {
  page_size : int;
  page_lines : int;
  w : int;  (** nonleaf node lines *)
  x : int;  (** leaf node lines *)
  fn : int;  (** nonleaf node capacity *)
  fl : int;  (** leaf node capacity *)
  max_fanout : int;  (** tuned page fan-out *)
  max_leaves : int;  (** most in-page leaf nodes a page can hold *)
}

type t

val name : string

(** Empty tree over the pool, node sizes tuned for its page size. *)
val create : Fpb_storage.Buffer_pool.t -> t

(** Empty tree with forced node widths (the Figure 11 width sweep). *)
val create_custom : Fpb_storage.Buffer_pool.t -> w:int -> x:int -> t

val cfg : t -> cfg

(** Pages of leaves prefetched ahead during range scans (default 16). *)
val set_io_prefetch_distance : t -> int -> unit

(** Ablation knobs: cache-granularity leaf-node prefetch within scanned
    pages (default on); bounding I/O prefetch at the end page (default
    on — off reproduces overshooting). *)
val set_cache_prefetch_leaves : t -> bool -> unit

val set_bound_scan_end : t -> bool -> unit

(** {1 Operations (see {!Fpb_btree_common.Index_sig.S})} *)

val bulkload : t -> (int * int) array -> fill:float -> unit
val search : t -> int -> int option

(** Batched lookup, semantically [Array.map (search t) keys], executed
    as sorted level-wise waves with cross-probe prefetch pipelining.
    Accounting convention: a page shared by [k] probes of one wave
    counts ONE access in [level_accesses] (and one [node_access] trace
    event) plus [k-1] probe-routings under [batch.dup_probes], keeping
    [level_accesses] a count of physical page accesses under both
    service disciplines.  Splits and retries smaller under
    [Buffer_pool.Overloaded].  See {!Fpb_btree_common.Index_sig.S} and
    [docs/BATCHING.md]. *)
val search_batch : t -> int array -> int option array

val insert : t -> int -> int -> [ `Inserted | `Updated ]
val delete : t -> int -> bool

val range_scan :
  t -> ?prefetch:bool -> start_key:int -> end_key:int -> (int -> int -> unit) -> int

(** Reverse (descending) scan of [start_key, end_key], with backward
    jump-pointer prefetching (the paper's DB2 implementation keeps links
    in both directions for exactly this). *)
val range_scan_rev :
  t -> ?prefetch:bool -> start_key:int -> end_key:int -> (int -> int -> unit) -> int

val height : t -> int
val page_count : t -> int

(** Durable handle metadata ([root; levels; n_pages]) captured by WAL
    commits, and its inverse for crash recovery. *)
val meta : t -> int list

val restore_meta : t -> int list -> unit

(** {1 Telemetry (uncharged host-side bookkeeping)} *)

(** Page accesses per tree level since the last reset, slot 0 = root. *)
val level_accesses : t -> int array

val reset_level_accesses : t -> unit

(** Attach (or with [None] detach) a trace sink; node visits during
    search descents emit [node_access] events into it. *)
val set_trace : t -> Fpb_obs.Trace.t option -> unit

(** {1 Uncharged introspection (tests)} *)

val check : t -> unit

(** amcheck-style verification: [check] as data — [Ok pages_owned] or
    [Error description] — so scrub/chaos harnesses can keep counting. *)
val check_invariants : t -> (int, string) result

val iter : t -> (int -> int -> unit) -> unit
