(** External jump-pointer array (paper Section 3.3 and [6]): a chunked
    linked list of leaf-page IDs used to prefetch the leaves of a range
    scan.  Chunks are ordinary pages, bulkloaded with gaps so insertions
    rarely split a chunk; every leaf page records its chunk, and chunk
    splits re-point moved pages through [on_assign]. *)

type t

val create : Fpb_storage.Buffer_pool.t -> t

(** Chunk pages currently allocated. *)
val page_count : t -> int

(** Bulk-build from page IDs in order, filling chunks to [fill];
    [on_assign page ~chunk] records each page's chunk. *)
val build :
  t -> int array -> fill:float -> on_assign:(int -> chunk:int -> unit) -> unit

(** Insert [new_page] immediately after [after_page] within [chunk]
    ([after_page] = nil inserts at the chunk's front); splits the chunk
    when full, re-pointing moved pages via [on_assign]. *)
val insert_after :
  t ->
  chunk:int ->
  after_page:int ->
  new_page:int ->
  on_assign:(int -> chunk:int -> unit) ->
  unit

(** Cursor over the array, for incremental prefetch pumping. *)
type cursor

(** Cursor positioned ON [page] within [chunk]: the next {!next} call
    yields [page] itself. *)
val cursor_at : t -> chunk:int -> page:int -> cursor

val next : cursor -> int option

(** Free every chunk and empty the array (before a bulk rebuild). *)
val reset : t -> unit

(** Durable handle metadata [(head chunk, chunk count)] and its inverse,
    for WAL crash recovery (chunk contents live in pages and are rebuilt
    by redo). *)
val meta : t -> int * int

val restore_meta : t -> head:int -> n_chunks:int -> unit

(** Uncharged: all IDs in order (tests). *)
val peek_all : t -> int list
