(** Front-end for the fpB+-Tree library.

    Quickstart:
    {[
      let sim = Fpb_simmem.Sim.create () in
      let pool = Fpb.make_pool ~page_size:16384 ~n_disks:10 ~capacity:50_000 sim in
      let index = Fpb.Disk_first.create pool in
      Fpb.Disk_first.bulkload index pairs ~fill:0.8;
      Fpb.Disk_first.search index 42
    ]}

    {!Disk_first} is the recommended variant (minimal I/O impact); use
    {!Cache_first} when the working set is memory-resident (paper,
    Section 5). *)

module Disk_first = Disk_first
module Cache_first = Cache_first
module Jump_array = Jump_array

(** A buffer pool over a fresh page store and disk farm: the usual way
    to host one index. *)
val make_pool :
  ?n_prefetchers:int ->
  page_size:int ->
  n_disks:int ->
  capacity:int ->
  Fpb_simmem.Sim.t ->
  Fpb_storage.Buffer_pool.t
