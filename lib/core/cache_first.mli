(** Cache-first fpB+-Tree (paper, Section 3.2): a cache-optimized B+-Tree
    of uniform w-line nodes placed intelligently into disk pages —
    leaf-only pages for range-scan I/O, aggressive parent–child
    co-location for search I/O, overflow pages for the leaf parents that
    do not fit.  Nonleaf pointers are full pointers (page ID + in-page
    offset); following a pointer within the current page skips the buffer
    manager.  An external jump-pointer array of leaf page IDs drives
    range-scan I/O prefetching.

    The paper recommends this variant when most of the index is
    memory-resident (slightly better cache behaviour, worse I/O). *)

type cfg = {
  page_size : int;
  page_lines : int;
  w : int;  (** node size in lines *)
  fl : int;  (** leaf node capacity *)
  fn : int;  (** nonleaf node capacity *)
  slots : int;  (** node slots per page *)
}

type t

val name : string
val create : Fpb_storage.Buffer_pool.t -> t

(** Empty tree with a forced node width (the Figure 11 width sweep). *)
val create_custom : Fpb_storage.Buffer_pool.t -> w:int -> t

val cfg : t -> cfg
val set_io_prefetch_distance : t -> int -> unit

(** {1 Operations (see {!Fpb_btree_common.Index_sig.S})} *)

val bulkload : t -> (int * int) array -> fill:float -> unit
val search : t -> int -> int option

(** Batched lookup, semantically [Array.map (search t) keys], executed
    as sorted level-wise waves over the node frontier with cross-probe
    prefetch pipelining; a level's underlying pages are pinned once each
    however many nodes they hold.  Accounting convention: a node shared
    by [k] probes of one wave counts ONE access in [level_accesses]
    (and one [node_access] trace event) plus [k-1] probe-routings under
    [batch.dup_probes].  Splits and retries smaller under
    [Buffer_pool.Overloaded].  See {!Fpb_btree_common.Index_sig.S} and
    [docs/BATCHING.md]. *)
val search_batch : t -> int array -> int option array

val insert : t -> int -> int -> [ `Inserted | `Updated ]
val delete : t -> int -> bool

val range_scan :
  t -> ?prefetch:bool -> start_key:int -> end_key:int -> (int -> int -> unit) -> int

(** Node levels (the cache-first tree is a tree of nodes, not pages). *)
val height : t -> int

(** All pages owned, including overflow, pool and jump-pointer pages. *)
val page_count : t -> int

(** Pages excluding the external jump-pointer array. *)
val index_page_count : t -> int

(** Durable handle metadata (root pointer, levels, page counts, overflow
    and per-level allocation pages, jump-pointer head) captured by WAL
    commits, and its inverse for crash recovery. *)
val meta : t -> int list

val restore_meta : t -> int list -> unit

(** {1 Telemetry (uncharged host-side bookkeeping)} *)

(** Node accesses per tree level since the last reset, slot 0 = root. *)
val level_accesses : t -> int array

val reset_level_accesses : t -> unit

(** Attach (or with [None] detach) a trace sink; node visits during
    search descents emit [node_access] events into it. *)
val set_trace : t -> Fpb_obs.Trace.t option -> unit

(** {1 Uncharged introspection (tests)} *)

val check : t -> unit

(** amcheck-style verification: [check] as data — [Ok pages_owned] or
    [Error description] — so scrub/chaos harnesses can keep counting. *)
val check_invariants : t -> (int, string) result

val iter : t -> (int -> int -> unit) -> unit
