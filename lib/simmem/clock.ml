(* Global simulated clock shared by the CPU/cache model and the disk model.
   Unit: nanoseconds (equivalently CPU cycles at the paper's 1 GHz). *)

type t = { mutable now : int }

let create () = { now = 0 }
let now t = t.now
let advance t dt = t.now <- t.now + dt

(* Move the clock forward to an absolute time, e.g. an I/O completion.
   Never moves backwards. *)
let advance_to t when_ = if when_ > t.now then t.now <- when_

(* Set the clock to an absolute time, possibly rewinding it.  Only the
   multi-client scheduler may use this: it runs each logical client's
   next operation at that client's local time, which can lie before the
   global maximum reached by another client.  Contention still resolves
   correctly because every shared resource (disks, log disks, shard
   latches, the memory pipeline) keeps its own absolute free-at time and
   services requests at [max now free_at]. *)
let set t when_ = t.now <- when_
let reset t = t.now <- 0
