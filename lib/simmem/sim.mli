(** Simulation context bundling the clock, cache model, cost model and
    statistics.  Everything that "executes" on the simulated machine
    charges cycles through this context. *)

type t = {
  cfg : Config.t;
  cost : Cost_model.t;
  clock : Clock.t;
  stats : Stats.t;
  cache : Cache.t;
}

val create : ?cfg:Config.t -> ?cost:Cost_model.t -> unit -> t

(** Charge busy cycles: advances the clock and the busy counter. *)
val charge_busy : t -> int -> unit

val busy_compare : t -> unit
val busy_node : t -> unit
val busy_bufcall : t -> unit
val busy_op : t -> unit

(** Charge the CPU cost of checksumming [bytes] bytes
    ({!Cost_model.crc_cycles}). *)
val busy_crc : t -> bytes:int -> unit

(** Clear caches and in-flight prefetches (the paper's "all caches are
    cleared before the first search"). *)
val flush_cache : t -> unit

val reset_stats : t -> unit

(** Current simulated time in nanoseconds/cycles. *)
val now : t -> int
