(** Busy-cycle cost model: the instruction work between cache misses.
    Only relative magnitudes matter for reproducing the paper's shapes. *)

type t = {
  c_access : int;  (** per typed load/store: address arithmetic + issue *)
  c_compare : int;  (** per key comparison, including branch *)
  c_node : int;  (** per tree-node visit: setup, bounds, descend *)
  c_bufcall : int;  (** per buffer-manager page lookup (hash, pin, unpin) *)
  c_prefetch : int;  (** per software prefetch instruction *)
  move_bytes_per_cycle : int;  (** throughput of bulk copies *)
  c_op : int;  (** fixed per index operation (call overhead, key setup) *)
  crc_bytes_per_cycle : int;
      (** software CRC-32 throughput in bytes per cycle; [0] makes
          checksumming free in simulated time (the pre-PR-4 behaviour) *)
  latch_cycles : int;
      (** busy cycles per buffer-pool shard-latch acquisition (the
          uncontended CAS + fence); contended acquisitions additionally
          wait until the holder's release time *)
}

val default : t

(** Cycles to checksum [bytes] bytes at [crc_bytes_per_cycle]. *)
val crc_cycles : t -> bytes:int -> int
