(* Busy-cycle cost model.  The cache simulator accounts stall time; these
   constants account the instruction work between misses.  They are rough
   but only relative magnitudes matter for reproducing the paper's shapes:
   searches are dominated by per-probe comparisons, insertions into
   disk-optimized pages by data movement, and page-granularity operations by
   buffer-manager calls (the paper's Figure 3(b) notes the extra busy time
   of disk-optimized trees comes from buffer pool management). *)

type t = {
  c_access : int;  (* per typed load/store: address arithmetic + issue *)
  c_compare : int;  (* per key comparison, including branch *)
  c_node : int;  (* per tree-node visit: setup, bounds, descend *)
  c_bufcall : int;  (* per buffer-manager page lookup (hash, pin, unpin) *)
  c_prefetch : int;  (* per software prefetch instruction *)
  move_bytes_per_cycle : int;  (* throughput of bulk copies *)
  c_op : int;  (* fixed per index operation (call overhead, key setup) *)
  crc_bytes_per_cycle : int;  (* software CRC-32 throughput (0 = free) *)
  latch_cycles : int;  (* per shard-latch acquire: CAS + fence + bookkeeping *)
}

let default =
  {
    c_access = 1;
    c_compare = 4;
    c_node = 20;
    c_bufcall = 150;
    c_prefetch = 1;
    move_bytes_per_cycle = 8;
    c_op = 100;
    crc_bytes_per_cycle = 4;
    latch_cycles = 60;
  }

(* Cycles to checksum [bytes] bytes: table-driven CRC-32 at
   [crc_bytes_per_cycle] B/cycle.  The detect/repair trade-off is only
   honest if verification is not free in simulated time. *)
let crc_cycles t ~bytes =
  if t.crc_bytes_per_cycle <= 0 || bytes <= 0 then 0
  else (bytes + t.crc_bytes_per_cycle - 1) / t.crc_bytes_per_cycle
