(** Execution-time statistics for the cache simulation.  Busy cycles are
    charged explicitly by the cost model; stall cycles are charged by the
    cache simulator whenever an access waits for a lower level of the
    hierarchy.  Execution time = busy + stall, matching the breakdown of
    the paper's Figure 3(b).

    Each field is a named {!Fpb_obs.Counter} under the [sim.*] namespace
    (units are cycles for [sim.*_cycles], event counts otherwise); [kv]
    exports the whole set for the telemetry layer. *)

type t = {
  busy : Fpb_obs.Counter.t;  (** [sim.busy_cycles]: useful work *)
  stall : Fpb_obs.Counter.t;  (** [sim.stall_cycles]: data-cache stalls *)
  l1_hits : Fpb_obs.Counter.t;  (** [sim.l1_hits] *)
  l2_hits : Fpb_obs.Counter.t;  (** [sim.l2_hits] *)
  mem_misses : Fpb_obs.Counter.t;
      (** [sim.mem_misses]: demand accesses serviced from memory *)
  prefetch_issued : Fpb_obs.Counter.t;  (** [sim.prefetch_issued] *)
  prefetch_useful : Fpb_obs.Counter.t;
      (** [sim.prefetch_useful]: prefetched lines later accessed *)
  prefetch_waits : Fpb_obs.Counter.t;
      (** [sim.prefetch_waits]: issue stalls, all miss handlers busy *)
}

val create : unit -> t
val reset : t -> unit

(** All eight counters, in declaration order. *)
val counters : t -> Fpb_obs.Counter.t list

(** Current values as [(name, value)] pairs, in declaration order. *)
val kv : t -> (string * int) list

(** Immutable copy of all eight values, for computing deltas. *)
type snapshot = {
  s_busy : int;
  s_stall : int;
  s_l1_hits : int;
  s_l2_hits : int;
  s_mem_misses : int;
  s_prefetch_issued : int;
  s_prefetch_useful : int;
  s_prefetch_waits : int;
}

val snapshot : t -> snapshot

(** Deltas since an earlier snapshot: (busy, stall, mem_misses). *)
val since : t -> snapshot -> int * int * int

(** Deltas for all eight counters since [snapshot], as named pairs. *)
val delta_kv : t -> snapshot -> (string * int) list

(** busy + stall. *)
val total : t -> int

val pp : Format.formatter -> t -> unit
