(* Simulation context bundling the clock, cache model, cost model and
   statistics.  Everything that "executes" on the simulated machine charges
   cycles through this context. *)

type t = {
  cfg : Config.t;
  cost : Cost_model.t;
  clock : Clock.t;
  stats : Stats.t;
  cache : Cache.t;
}

let create ?(cfg = Config.default) ?(cost = Cost_model.default) () =
  let clock = Clock.create () in
  let stats = Stats.create () in
  { cfg; cost; clock; stats; cache = Cache.create cfg clock stats }

let charge_busy t cycles =
  if cycles > 0 then begin
    Fpb_obs.Counter.add t.stats.Stats.busy cycles;
    Clock.advance t.clock cycles
  end

let busy_compare t = charge_busy t t.cost.Cost_model.c_compare
let busy_node t = charge_busy t t.cost.Cost_model.c_node
let busy_bufcall t = charge_busy t t.cost.Cost_model.c_bufcall
let busy_op t = charge_busy t t.cost.Cost_model.c_op

(* CPU work of checksumming [bytes] bytes (CRC compute or verify): the
   detect/repair machinery shows up in cache results, not just I/O. *)
let busy_crc t ~bytes = charge_busy t (Cost_model.crc_cycles t.cost ~bytes)

(* Clear caches and in-flight prefetches (used between experiments, like the
   paper's "all caches are cleared before the first search"). *)
let flush_cache t = Cache.flush t.cache
let reset_stats t = Stats.reset t.stats
let now t = Clock.now t.clock
