(** Global simulated clock shared by the CPU/cache model and the disk
    model.  Unit: nanoseconds (equivalently CPU cycles at 1 GHz). *)

type t

val create : unit -> t
val now : t -> int

(** Advance by a relative amount of time (>= 0). *)
val advance : t -> int -> unit

(** Move the clock forward to an absolute time, e.g. an I/O completion.
    Never moves backwards. *)
val advance_to : t -> int -> unit

(** Set the clock to an absolute time, possibly rewinding it.  Reserved
    for the multi-client scheduler, which replays each logical client at
    its own local time; all shared resources keep absolute free-at times
    so contention is unaffected by the rewind. *)
val set : t -> int -> unit

val reset : t -> unit
