(* Two-level data-cache simulator with software prefetch.

   Timing model (paper, Section 3.1.1): a demand miss to memory completes at
   [max (now + T1) (last_completion + Tnext)], so a batch of prefetches
   issued back-to-back for a w-line node costs T1 + (w-1)*Tnext once the
   node is accessed — the pB+-Tree cost model.

   L1 is set-associative with LRU replacement; L2 is direct-mapped
   (Table 1).  Stores are modeled like loads (write-allocate, no write-back
   cost).  Software prefetches occupy one of a bounded number of miss
   handlers; issuing a prefetch when all handlers are busy stalls until the
   oldest one retires. *)

type t = {
  cfg : Config.t;
  clock : Clock.t;
  stats : Stats.t;
  shift : int;
  l1_sets : int;
  l1_assoc : int;
  l1_tags : int array;  (* sets * assoc entries; -1 = invalid *)
  l1_stamp : int array;  (* LRU timestamps, parallel to l1_tags *)
  l2_lines : int;
  l2_tags : int array;  (* direct-mapped; -1 = invalid *)
  inflight : (int, int) Hashtbl.t;  (* line -> completion time *)
  order : (int * int) Queue.t;  (* (line, completion) in issue order *)
  mutable last_completion : int;
  mutable stamp : int;
}

let create cfg clock stats =
  let l1_sets = cfg.Config.l1_size / (cfg.line_size * cfg.l1_assoc) in
  let l2_lines = cfg.l2_size / cfg.line_size in
  {
    cfg;
    clock;
    stats;
    shift = Config.line_shift cfg;
    l1_sets;
    l1_assoc = cfg.l1_assoc;
    l1_tags = Array.make (l1_sets * cfg.l1_assoc) (-1);
    l1_stamp = Array.make (l1_sets * cfg.l1_assoc) 0;
    l2_lines;
    l2_tags = Array.make l2_lines (-1);
    inflight = Hashtbl.create 64;
    order = Queue.create ();
    last_completion = min_int / 2;
    stamp = 0;
  }

let flush t =
  Array.fill t.l1_tags 0 (Array.length t.l1_tags) (-1);
  Array.fill t.l2_tags 0 (Array.length t.l2_tags) (-1);
  Hashtbl.reset t.inflight;
  Queue.clear t.order;
  t.last_completion <- min_int / 2

let install_l2 t line = t.l2_tags.(line mod t.l2_lines) <- line

let install_l1 t line =
  let base = line mod t.l1_sets * t.l1_assoc in
  let victim = ref base and best = ref max_int in
  (try
     for w = 0 to t.l1_assoc - 1 do
       if t.l1_tags.(base + w) = -1 then begin
         victim := base + w;
         raise Exit
       end;
       if t.l1_stamp.(base + w) < !best then begin
         best := t.l1_stamp.(base + w);
         victim := base + w
       end
     done
   with Exit -> ());
  t.l1_tags.(!victim) <- line;
  t.stamp <- t.stamp + 1;
  t.l1_stamp.(!victim) <- t.stamp

let l1_lookup t line =
  let base = line mod t.l1_sets * t.l1_assoc in
  let rec go w =
    if w >= t.l1_assoc then false
    else if t.l1_tags.(base + w) = line then begin
      t.stamp <- t.stamp + 1;
      t.l1_stamp.(base + w) <- t.stamp;
      true
    end
    else go (w + 1)
  in
  go 0

let l2_lookup t line = t.l2_tags.(line mod t.l2_lines) = line

(* Retire completed prefetches (completion <= now) into the caches. *)
let drain t =
  let now = Clock.now t.clock in
  let rec go () =
    match Queue.peek_opt t.order with
    | Some (line, c) when c <= now ->
        ignore (Queue.pop t.order);
        if Hashtbl.mem t.inflight line then begin
          Hashtbl.remove t.inflight line;
          install_l2 t line;
          install_l1 t line
        end;
        go ()
    | _ -> ()
  in
  go ()

let stall t cycles =
  if cycles > 0 then begin
    Fpb_obs.Counter.add t.stats.Stats.stall cycles;
    Clock.advance t.clock cycles
  end

(* Schedule one memory access starting no earlier than [now]; returns its
   completion time and occupies the shared memory pipeline. *)
let schedule_mem t =
  let now = Clock.now t.clock in
  let completion =
    max (now + t.cfg.Config.mem_latency) (t.last_completion + t.cfg.Config.mem_gap)
  in
  t.last_completion <- completion;
  completion

(* Demand access (load or store) to a byte address. *)
let access t addr =
  let line = addr asr t.shift in
  drain t;
  match Hashtbl.find_opt t.inflight line with
  | Some c ->
      (* Prefetch in flight: wait only for the remaining latency. *)
      Hashtbl.remove t.inflight line;
      Fpb_obs.Counter.incr t.stats.Stats.prefetch_useful;
      stall t (c - Clock.now t.clock);
      install_l2 t line;
      install_l1 t line
  | None ->
      if l1_lookup t line then Fpb_obs.Counter.incr t.stats.Stats.l1_hits
      else if l2_lookup t line then begin
        Fpb_obs.Counter.incr t.stats.Stats.l2_hits;
        stall t t.cfg.Config.l2_latency;
        install_l1 t line
      end
      else begin
        Fpb_obs.Counter.incr t.stats.Stats.mem_misses;
        let c = schedule_mem t in
        stall t (c - Clock.now t.clock);
        install_l2 t line;
        install_l1 t line
      end

(* Software prefetch of one line: non-blocking unless all miss handlers are
   busy.  Hits in cache or on an in-flight line are no-ops. *)
let prefetch t addr =
  let line = addr asr t.shift in
  drain t;
  if
    (not (Hashtbl.mem t.inflight line))
    && (not (l1_lookup t line))
    && not (l2_lookup t line)
  then begin
    if Queue.length t.order >= t.cfg.Config.miss_handlers then begin
      (* All handlers busy: stall until the oldest outstanding completes. *)
      Fpb_obs.Counter.incr t.stats.Stats.prefetch_waits;
      (match Queue.peek_opt t.order with
      | Some (_, c) -> stall t (c - Clock.now t.clock)
      | None -> ());
      drain t
    end;
    let c = schedule_mem t in
    Hashtbl.replace t.inflight line c;
    Queue.push (line, c) t.order;
    Fpb_obs.Counter.incr t.stats.Stats.prefetch_issued
  end

let access_range t addr len =
  if len > 0 then begin
    let first = addr asr t.shift and last = (addr + len - 1) asr t.shift in
    for line = first to last do
      access t (line lsl t.shift)
    done
  end

let prefetch_range t addr len =
  if len > 0 then begin
    let first = addr asr t.shift and last = (addr + len - 1) asr t.shift in
    for line = first to last do
      prefetch t (line lsl t.shift)
    done
  end

(* Drop any cached or in-flight copies of the given byte range.  Used when a
   buffer frame is reassigned to a different disk page: the new contents
   arrive by DMA, so stale CPU-cache lines for those addresses must not
   produce false hits. *)
let invalidate_range t addr len =
  if len > 0 then begin
    let first = addr asr t.shift and last = (addr + len - 1) asr t.shift in
    for line = first to last do
      let base = line mod t.l1_sets * t.l1_assoc in
      for w = 0 to t.l1_assoc - 1 do
        if t.l1_tags.(base + w) = line then t.l1_tags.(base + w) <- -1
      done;
      let idx = line mod t.l2_lines in
      if t.l2_tags.(idx) = line then t.l2_tags.(idx) <- -1;
      Hashtbl.remove t.inflight line
    done
  end

let lines_in t addr len =
  if len <= 0 then 0 else ((addr + len - 1) asr t.shift) - (addr asr t.shift) + 1
