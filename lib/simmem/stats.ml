(* Execution-time statistics for the cache simulation.  Busy cycles are
   charged explicitly by the cost model; stall cycles are charged by the
   cache simulator whenever an access must wait for a lower level of the
   hierarchy.  Execution time = busy + stall, matching the breakdown of the
   paper's Figure 3(b) (their "other stalls" come from the out-of-order
   pipeline front end, which we do not model). *)

module Counter = Fpb_obs.Counter

type t = {
  busy : Counter.t;  (* cycles doing useful work *)
  stall : Counter.t;  (* cycles stalled on data cache misses *)
  l1_hits : Counter.t;
  l2_hits : Counter.t;
  mem_misses : Counter.t;  (* demand accesses serviced from memory *)
  prefetch_issued : Counter.t;
  prefetch_useful : Counter.t;  (* prefetched lines later accessed *)
  prefetch_waits : Counter.t;  (* issue stalls: all miss handlers busy *)
}

let create () =
  {
    busy = Counter.make "sim.busy_cycles";
    stall = Counter.make "sim.stall_cycles";
    l1_hits = Counter.make "sim.l1_hits";
    l2_hits = Counter.make "sim.l2_hits";
    mem_misses = Counter.make "sim.mem_misses";
    prefetch_issued = Counter.make "sim.prefetch_issued";
    prefetch_useful = Counter.make "sim.prefetch_useful";
    prefetch_waits = Counter.make "sim.prefetch_waits";
  }

let counters t =
  [
    t.busy;
    t.stall;
    t.l1_hits;
    t.l2_hits;
    t.mem_misses;
    t.prefetch_issued;
    t.prefetch_useful;
    t.prefetch_waits;
  ]

let reset t = List.iter Counter.reset (counters t)
let kv t = List.map Counter.kv (counters t)

type snapshot = {
  s_busy : int;
  s_stall : int;
  s_l1_hits : int;
  s_l2_hits : int;
  s_mem_misses : int;
  s_prefetch_issued : int;
  s_prefetch_useful : int;
  s_prefetch_waits : int;
}

let snapshot t =
  {
    s_busy = Counter.value t.busy;
    s_stall = Counter.value t.stall;
    s_l1_hits = Counter.value t.l1_hits;
    s_l2_hits = Counter.value t.l2_hits;
    s_mem_misses = Counter.value t.mem_misses;
    s_prefetch_issued = Counter.value t.prefetch_issued;
    s_prefetch_useful = Counter.value t.prefetch_useful;
    s_prefetch_waits = Counter.value t.prefetch_waits;
  }

(* Deltas since an earlier snapshot: (busy, stall, mem_misses). *)
let since t s =
  ( Counter.value t.busy - s.s_busy,
    Counter.value t.stall - s.s_stall,
    Counter.value t.mem_misses - s.s_mem_misses )

let delta_kv t s =
  [
    ("sim.busy_cycles", Counter.value t.busy - s.s_busy);
    ("sim.stall_cycles", Counter.value t.stall - s.s_stall);
    ("sim.l1_hits", Counter.value t.l1_hits - s.s_l1_hits);
    ("sim.l2_hits", Counter.value t.l2_hits - s.s_l2_hits);
    ("sim.mem_misses", Counter.value t.mem_misses - s.s_mem_misses);
    ("sim.prefetch_issued", Counter.value t.prefetch_issued - s.s_prefetch_issued);
    ("sim.prefetch_useful", Counter.value t.prefetch_useful - s.s_prefetch_useful);
    ("sim.prefetch_waits", Counter.value t.prefetch_waits - s.s_prefetch_waits);
  ]

let total t = Counter.value t.busy + Counter.value t.stall

let pp ppf t =
  Fmt.pf ppf
    "busy=%d stall=%d total=%d | L1hit=%d L2hit=%d miss=%d | pf=%d useful=%d waits=%d"
    (Counter.value t.busy) (Counter.value t.stall) (total t)
    (Counter.value t.l1_hits) (Counter.value t.l2_hits)
    (Counter.value t.mem_misses)
    (Counter.value t.prefetch_issued)
    (Counter.value t.prefetch_useful)
    (Counter.value t.prefetch_waits)
