(* The common interface implemented by every disk-resident index structure
   in this repository.  Keys are unique integers (see [Key]); values are
   tuple IDs.  [bulkload] expects strictly increasing keys.  All charged
   operations run on the simulated machine; [check] and [iter] are
   uncharged and exist for tests. *)

module type S = sig
  type t

  val name : string

  (* An empty index backed by the given buffer pool, tuned for its page
     size. *)
  val create : Fpb_storage.Buffer_pool.t -> t

  (* Bulk-build from strictly-increasing (key, tuple id) pairs, filling
     nodes to [fill] (0 < fill <= 1). *)
  val bulkload : t -> (int * int) array -> fill:float -> unit

  val search : t -> int -> int option

  (* Batched lookup: semantically [Array.map (search t) keys] (result
     slot [i] answers [keys.(i)]; keys may repeat and may be absent),
     executed as sorted level-wise waves that visit each tree node once
     per wave however many probes route through it, prefetching the next
     level's frontier while searching the current one (docs/BATCHING.md).

     Accounting convention: a node shared by k probes of one wave counts
     ONE page access — one [level_accesses] bump, one [node_access]
     trace event, one buffer-pool [get] — plus k-1 probe-routings
     reported under [batch.dup_probes] (with the node itself counted in
     [batch.shared_nodes]).  [level_accesses] therefore counts physical
     page accesses under both disciplines and stays comparable between
     them; divide throughput differences by [batch.dup_probes] to see
     how much of the win is sharing.  Under buffer-pool frame exhaustion
     ([Buffer_pool.Overloaded]) the batch splits and retries smaller,
     down to singleton [search] — only a singleton that still cannot
     pin a page surfaces [Overloaded], exactly as [search] would. *)
  val search_batch : t -> int array -> int option array

  val insert : t -> int -> int -> [ `Inserted | `Updated ]

  (* Lazy deletion: removes the entry if present, never merges nodes. *)
  val delete : t -> int -> bool

  (* In-order scan of keys in [start_key, end_key]; returns the number of
     entries visited.  [prefetch] enables jump-pointer-array prefetching
     where the structure supports it (default true). *)
  val range_scan :
    t -> ?prefetch:bool -> start_key:int -> end_key:int -> (int -> int -> unit) -> int

  (* Page levels in the tree (1 = root is a leaf page). *)
  val height : t -> int

  (* Pages owned by the index, including any auxiliary structures. *)
  val page_count : t -> int

  (* Page accesses per tree level since the last reset, slot 0 = root
     level.  Uncharged host-side bookkeeping for the telemetry layer. *)
  val level_accesses : t -> int array
  val reset_level_accesses : t -> unit

  (* Attach (or with [None] detach) a trace sink; node visits during
     descents emit [node_access] events into it.  Uncharged. *)
  val set_trace : t -> Fpb_obs.Trace.t option -> unit

  (* Durable handle metadata: the mutable OCaml-side state (root page,
     height, page counts, auxiliary-structure heads) that page contents
     alone cannot rebuild.  [meta] is captured by every WAL commit;
     [restore_meta] resets a handle to metadata returned by crash
     recovery.  Uncharged.  [restore_meta t (meta t)] is the identity. *)
  val meta : t -> int list
  val restore_meta : t -> int list -> unit

  (* Validate structural invariants; raises [Failure] with a description on
     violation.  Uncharged. *)
  val check : t -> unit

  (* amcheck-style verification: the same structural pass as [check] but
     as data — [Ok pages_owned] on success, [Error description] on the
     first violation — so scrub/chaos harnesses can keep going and
     count.  Uncharged. *)
  val check_invariants : t -> (int, string) result

  (* In-order uncharged iteration over all entries (test oracle). *)
  val iter : t -> (int -> int -> unit) -> unit
end

type instance = Instance : (module S with type t = 'a) * 'a -> instance

let search (Instance ((module M), t)) k = M.search t k
let search_batch (Instance ((module M), t)) ks = M.search_batch t ks
let insert (Instance ((module M), t)) k v = M.insert t k v
let delete (Instance ((module M), t)) k = M.delete t k
let bulkload (Instance ((module M), t)) pairs ~fill = M.bulkload t pairs ~fill

let range_scan (Instance ((module M), t)) ?prefetch ~start_key ~end_key f =
  M.range_scan t ?prefetch ~start_key ~end_key f

let level_accesses (Instance ((module M), t)) = M.level_accesses t
let reset_level_accesses (Instance ((module M), t)) = M.reset_level_accesses t
let set_trace (Instance ((module M), t)) tr = M.set_trace t tr
let height (Instance ((module M), t)) = M.height t
let page_count (Instance ((module M), t)) = M.page_count t
let meta (Instance ((module M), t)) = M.meta t
let restore_meta (Instance ((module M), t)) m = M.restore_meta t m
let check (Instance ((module M), t)) = M.check t
let check_invariants (Instance ((module M), t)) = M.check_invariants t
let iter (Instance ((module M), t)) f = M.iter t f
let name (Instance ((module M), _)) = M.name
