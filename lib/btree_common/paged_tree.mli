(** Generic B+-Tree over "array pages": pages holding a sorted key array
    and a parallel pointer array at format-chosen offsets.  The format
    decides how a page is searched (plain binary search for the
    disk-optimized baseline; micro-index + sub-array search for
    micro-indexing) and what bookkeeping follows an update; the
    tree-level logic — descent, splits, parent maintenance, bulkload,
    range scans with jump-pointer prefetching, invariants — is shared.

    Sibling links are kept at every level (as the paper's DB2
    implementation does); the leaf-parent level doubles as the internal
    jump-pointer array for range-scan I/O prefetching (Section 2.2). *)

open Fpb_simmem

(** What a page format must supply to instantiate the tree. *)
module type PAGE_FORMAT = sig
  val name : string

  type cfg

  val cfg_of_page_size : int -> cfg
  val fanout : cfg -> int

  (** Byte offset of key slot 0 / pointer slot 0.  Slot [i] lives [4i]
      bytes further. *)
  val key_base : cfg -> int

  val ptr_base : cfg -> int

  (** Position of [key] in the page's sorted key array using the
      format's search strategy (including any prefetching): [`Lower] =
      first slot with a key >= [key]; [`Upper] = first slot with a key
      > [key]. *)
  val find_slot :
    Sim.t -> cfg -> Mem.region -> n:int -> key:int -> [ `Lower | `Upper ] -> int

  (** Entries [from, n) just changed (shift, split, bulk fill); update
      any derived in-page structures. *)
  val entries_updated : Sim.t -> cfg -> Mem.region -> n:int -> from:int -> unit
end

module Make (F : PAGE_FORMAT) : sig
  include Index_sig.S

  (** Reverse (descending) scan of [start_key, end_key] entries, walking
      the backward sibling links with backward jump-pointer prefetching;
      returns the number of entries visited. *)
  val range_scan_rev :
    t ->
    ?prefetch:bool ->
    start_key:int ->
    end_key:int ->
    (int -> int -> unit) ->
    int

  (** Pages of leaves prefetched ahead during jump-pointer range scans
      (default 16). *)
  val set_io_prefetch_distance : t -> int -> unit
end
