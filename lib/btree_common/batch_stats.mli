(** Process-wide instrumentation for batched level-wise descents
    ([search_batch]): the [batch.*] counter family shared by every index
    kind.  Host-side bookkeeping, uncharged.  See [docs/BATCHING.md] for
    the discipline and [docs/OBSERVABILITY.md] for the counter tables. *)

(** [batch.size]: probes per executed wave (a batch split under
    {!Fpb_storage.Buffer_pool.Overloaded} records each sub-wave). *)
val size : Fpb_obs.Histogram.t

(** [batch.shared_nodes]: nodes visited once on behalf of [k >= 2]
    probes of one wave (one event per such node). *)
val shared_nodes : Fpb_obs.Counter.t

(** [batch.dup_probes]: page accesses a wave avoided — the sum of
    [k - 1] over its shared nodes. *)
val dup_probes : Fpb_obs.Counter.t

(** [batch.pipeline_stalls]: frontier pages not resident when the wave
    discovered them, i.e. disk reads the cross-probe prefetch pipeline
    had to cover (a measure of exposure, not residual wait). *)
val pipeline_stalls : Fpb_obs.Counter.t

(** [note_wave n] records a wave of [n] probes in {!size}. *)
val note_wave : int -> unit

(** [note_group k] records a node shared by [k] probes; no-op for
    [k <= 1]. *)
val note_group : int -> unit

val note_stall : unit -> unit

(** Current counter values as [(name, value)] pairs ({!size} is a
    histogram and is reported separately via [Telemetry.observe]). *)
val kv : unit -> (string * int) list

(** Reset all four instruments (between measurement cells). *)
val reset : unit -> unit
