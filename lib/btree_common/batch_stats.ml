(* Process-wide instrumentation for batched level-wise descents.

   Every [search_batch] implementation (the generic paged-tree walker
   and the fpB+-Tree fast paths) reports into the same four instruments,
   so the telemetry spine and the CI asserts see one `batch.*` family
   regardless of index kind.  All bookkeeping is host-side (uncharged).

   Conventions (documented in docs/BATCHING.md and OBSERVABILITY.md):
   - [size] records the number of probes per executed wave; a batch that
     had to split under [Buffer_pool.Overloaded] records each sub-wave.
   - A node routed through by k >= 2 probes of one wave counts one
     [shared_nodes] event and k-1 [dup_probes] (the page accesses the
     batch avoided); singleton-equivalent work records nothing.
   - [pipeline_stalls] counts frontier pages that were not resident when
     the wave discovered them: the disk reads the prefetch pipeline had
     to cover.  A stall that the overlap fully hides still counts — it
     is a measure of exposure, not of residual wait. *)

module Counter = Fpb_obs.Counter
module Histogram = Fpb_obs.Histogram

let size = Histogram.make "batch.size"
let shared_nodes = Counter.make "batch.shared_nodes"
let dup_probes = Counter.make "batch.dup_probes"
let pipeline_stalls = Counter.make "batch.pipeline_stalls"

let note_wave n = Histogram.record size n

let note_group k =
  if k > 1 then begin
    Counter.incr shared_nodes;
    Counter.add dup_probes (k - 1)
  end

let note_stall () = Counter.incr pipeline_stalls

let kv () =
  [ Counter.kv shared_nodes; Counter.kv dup_probes;
    Counter.kv pipeline_stalls ]

let reset () =
  Histogram.reset size;
  Counter.reset shared_nodes;
  Counter.reset dup_probes;
  Counter.reset pipeline_stalls
