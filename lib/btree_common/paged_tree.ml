(* Generic B+-Tree over "array pages": pages holding a sorted key array and
   a parallel pointer array at format-chosen offsets.  The format decides
   how a page is searched (plain binary search for the disk-optimized
   baseline; micro-index + sub-array search for micro-indexing) and what
   bookkeeping follows an update (e.g. refreshing the micro-index).  The
   tree-level logic — descent, splits, parent maintenance, bulkload, range
   scans with jump-pointer prefetching, invariants — is shared.

   Nonleaf routing convention: a nonleaf with n entries has keys k_0..k_n-1
   and children c_0..c_n-1, where child c_i holds keys in [k_i, k_i+1) for
   i >= 1 and c_0 holds everything below k_1 (k_0 is not trusted as a lower
   bound, so ever-smaller inserts need no separator maintenance).

   Sibling links are kept at every level (as the paper's DB2 implementation
   does); the leaf-parent level doubles as the internal jump-pointer array
   for range-scan I/O prefetching (Section 2.2), including the
   "don't overshoot the end key" fix. *)

open Fpb_simmem
open Fpb_storage

module type PAGE_FORMAT = sig
  val name : string

  type cfg

  val cfg_of_page_size : int -> cfg
  val fanout : cfg -> int

  (* Byte offset of key slot 0 / pointer slot 0.  Slot i lives 4i bytes
     further. *)
  val key_base : cfg -> int
  val ptr_base : cfg -> int

  (* Position of [key] in the page's sorted key array using the format's
     search strategy (including any prefetching): [`Lower] = first slot with
     a key >= [key]; [`Upper] = first slot with a key > [key]. *)
  val find_slot :
    Sim.t -> cfg -> Mem.region -> n:int -> key:int -> [ `Lower | `Upper ] -> int

  (* Entries [from, n) just changed (shift, split, bulk fill); update any
     derived in-page structures. *)
  val entries_updated : Sim.t -> cfg -> Mem.region -> n:int -> from:int -> unit
end

module Make (F : PAGE_FORMAT) = struct
  type t = {
    pool : Buffer_pool.t;
    sim : Sim.t;
    cfg : F.cfg;
    fanout : int;
    mutable root : int;
    mutable levels : int;  (* 1 = root is a leaf *)
    mutable n_pages : int;
    mutable io_prefetch_distance : int;
    level_acc : int array;  (* page accesses by depth, slot 0 = root *)
    mutable trace : Fpb_obs.Trace.t option;
  }

  (* Deeper than any tree the 62-bit key space can produce. *)
  let max_levels = 16

  let name = F.name

  (* Common page header fields (within the format's reserved header area). *)
  let off_is_leaf = 0
  let off_n = 2
  let off_prev = 4
  let off_next = 8
  let key_off t i = F.key_base t.cfg + (Key.size * i)
  let ptr_off t i = F.ptr_base t.cfg + (Layout.pid_size * i)
  let nil = Page_store.nil

  let new_page t ~leaf =
    let page, r = Buffer_pool.create_page t.pool in
    t.n_pages <- t.n_pages + 1;
    Mem.write_u8 t.sim r off_is_leaf (if leaf then 1 else 0);
    Mem.write_u16 t.sim r off_n 0;
    Mem.write_i32 t.sim r off_prev nil;
    Mem.write_i32 t.sim r off_next nil;
    (page, r)

  let create pool =
    let sim = Buffer_pool.sim pool in
    let page_size = Page_store.page_size (Buffer_pool.store pool) in
    let cfg = F.cfg_of_page_size page_size in
    let t =
      {
        pool;
        sim;
        cfg;
        fanout = F.fanout cfg;
        root = nil;
        levels = 1;
        n_pages = 0;
        io_prefetch_distance = 16;
        level_acc = Array.make max_levels 0;
        trace = None;
      }
    in
    let root, _r = new_page t ~leaf:true in
    Buffer_pool.unpin pool root;
    t.root <- root;
    t

  let set_io_prefetch_distance t d = t.io_prefetch_distance <- max 1 d

  (* --- Uncharged instrumentation ------------------------------------------ *)

  let level_accesses t = Array.sub t.level_acc 0 t.levels
  let reset_level_accesses t = Array.fill t.level_acc 0 max_levels 0
  let set_trace t tr = t.trace <- tr

  let bump_level t depth =
    if depth <= max_levels then
      t.level_acc.(depth - 1) <- t.level_acc.(depth - 1) + 1

  (* Record one node visit: bump the per-level counter and, if a trace is
     attached, emit a [node_access] event with the cache-stall cycles this
     visit incurred ([stall0] = stall counter before the visit). *)
  let note_access t ~page ~depth ~stall0 =
    bump_level t depth;
    match t.trace with
    | None -> ()
    | Some tr ->
        let stall = Fpb_obs.Counter.value t.sim.Sim.stats.Stats.stall in
        Fpb_obs.Trace.emit tr "node_access"
          [
            ("level", Fpb_obs.Json.Int depth);
            ("page", Fpb_obs.Json.Int page);
            ("stall_cycles", Fpb_obs.Json.Int (stall - stall0));
          ]

  let stall_now t = Fpb_obs.Counter.value t.sim.Sim.stats.Stats.stall

  (* --- Search ------------------------------------------------------------ *)

  let route t r ~n key =
    let i = F.find_slot t.sim t.cfg r ~n ~key `Upper in
    max 0 (i - 1)

  let descend t key ~visit =
    let rec go page depth =
      let stall0 = stall_now t in
      let r = Buffer_pool.get t.pool page in
      Sim.busy_node t.sim;
      if Mem.read_u8 t.sim r off_is_leaf = 1 then begin
        note_access t ~page ~depth ~stall0;
        (page, r)
      end
      else begin
        let n = Mem.read_u16 t.sim r off_n in
        let i = route t r ~n key in
        let child = Mem.read_i32 t.sim r (ptr_off t i) in
        note_access t ~page ~depth ~stall0;
        visit page r n i;
        Buffer_pool.unpin t.pool page;
        go child (depth + 1)
      end
    in
    go t.root 1

  let search t key =
    Sim.busy_op t.sim;
    let page, r = descend t key ~visit:(fun _ _ _ _ -> ()) in
    let n = Mem.read_u16 t.sim r off_n in
    let i = F.find_slot t.sim t.cfg r ~n ~key `Lower in
    let result =
      if i < n && Mem.read_i32 t.sim r (key_off t i) = key then
        Some (Mem.read_i32 t.sim r (ptr_off t i))
      else None
    in
    Buffer_pool.unpin t.pool page;
    result

  (* --- Batched search (level-wise waves; see docs/BATCHING.md) ------------ *)

  (* Prefetch the part of a frontier node the search will touch: the
     header plus the full key array ([F.key_base] covers any in-page
     micro structure laid out before the keys). *)
  let prefetch_node_area t r =
    let len = min (Mem.length r) (F.key_base t.cfg + (Key.size * t.fanout)) in
    Mem.prefetch t.sim r ~off:0 ~len

  (* One level-wise wave over the sorted probes [order.(lo..hi-1)].
     Probes arrive sorted by key, so the probes routing through one node
     are consecutive and the frontier stays key-ordered: dedup is "same
     child as the previous probe".  Only one level's unique pages are
     pinned at a time, and [Buffer_pool.get_batch] unwinds its own pins
     on [Overloaded], so the exception escapes with nothing pinned and
     the caller can split the batch. *)
  let wave t keys order lo hi out =
    let np = hi - lo in
    Batch_stats.note_wave np;
    for _ = 1 to np do
      Sim.busy_op t.sim
    done;
    let child_of = Array.make np 0 in
    (* [pages.(g)] is the g-th unique page of the current level;
       [starts.(g) .. starts.(g+1)-1] its slice of sorted probes. *)
    let rec go pages starts depth =
      let ng = Array.length pages in
      let regions = Buffer_pool.get_batch t.pool pages in
      let leaf = Mem.read_u8 t.sim regions.(0) off_is_leaf = 1 in
      let prev_child = ref (-1) in
      for g = 0 to ng - 1 do
        (* Cache pipeline: queue the next frontier node's lines while
           this node is being searched. *)
        if g + 1 < ng then prefetch_node_area t regions.(g + 1);
        let page = pages.(g) and r = regions.(g) in
        let stall0 = stall_now t in
        Sim.busy_node t.sim;
        let n = Mem.read_u16 t.sim r off_n in
        for j = starts.(g) to starts.(g + 1) - 1 do
          let key = keys.(order.(j)) in
          if leaf then begin
            let i = F.find_slot t.sim t.cfg r ~n ~key `Lower in
            out.(order.(j)) <-
              (if i < n && Mem.read_i32 t.sim r (key_off t i) = key then
                 Some (Mem.read_i32 t.sim r (ptr_off t i))
               else None)
          end
          else begin
            let i = route t r ~n key in
            let child = Mem.read_i32 t.sim r (ptr_off t i) in
            child_of.(j - lo) <- child;
            (* Disk pipeline: async-read each newly discovered child
               while the rest of this level is still being routed. *)
            if child <> !prev_child then begin
              prev_child := child;
              if not (Buffer_pool.is_resident t.pool child) then begin
                Batch_stats.note_stall ();
                Buffer_pool.prefetch t.pool child
              end
            end
          end
        done;
        (* Accounting convention (see Index_sig): one page access per
           unique node per wave, however many probes shared it. *)
        note_access t ~page ~depth ~stall0;
        Batch_stats.note_group (starts.(g + 1) - starts.(g))
      done;
      Array.iter (fun p -> Buffer_pool.unpin t.pool p) pages;
      if not leaf then begin
        (* Compress consecutive equal children into the next frontier. *)
        let ng' = ref 0 in
        for j = 0 to np - 1 do
          if j = 0 || child_of.(j) <> child_of.(j - 1) then incr ng'
        done;
        let next_pages = Array.make !ng' 0 in
        let next_starts = Array.make (!ng' + 1) 0 in
        let g = ref 0 in
        for j = 0 to np - 1 do
          if j = 0 || child_of.(j) <> child_of.(j - 1) then begin
            next_pages.(!g) <- child_of.(j);
            next_starts.(!g) <- lo + j;
            incr g
          end
        done;
        next_starts.(!ng') <- hi;
        go next_pages next_starts (depth + 1)
      end
    in
    go [| t.root |] [| lo; hi |] 1

  let search_batch t keys =
    let m = Array.length keys in
    let out = Array.make m None in
    if m > 0 then begin
      let order = Array.init m (fun i -> i) in
      Array.sort
        (fun a b ->
          let c = compare keys.(a) keys.(b) in
          if c <> 0 then c else compare a b)
        order;
      let rec run lo hi =
        if hi - lo = 1 then begin
          Batch_stats.note_wave 1;
          out.(order.(lo)) <- search t keys.(order.(lo))
        end
        else
          try wave t keys order lo hi out
          with Buffer_pool.Overloaded _ ->
            let mid = (lo + hi) / 2 in
            run lo mid;
            run mid hi
      in
      run 0 m
    end;
    out

  (* --- Insertion ---------------------------------------------------------- *)

  let insert_at t r ~n ~i key ptr =
    let len = (n - i) * 4 in
    Mem.blit t.sim r (key_off t i) r (key_off t (i + 1)) len;
    Mem.blit t.sim r (ptr_off t i) r (ptr_off t (i + 1)) len;
    Mem.write_i32 t.sim r (key_off t i) key;
    Mem.write_i32 t.sim r (ptr_off t i) ptr;
    Mem.write_u16 t.sim r off_n (n + 1);
    F.entries_updated t.sim t.cfg r ~n:(n + 1) ~from:i

  let split_page t page r ~leaf =
    let n = t.fanout in
    let mid = n / 2 in
    let moved = n - mid in
    let right, rr = new_page t ~leaf in
    Mem.blit t.sim r (key_off t mid) rr (key_off t 0) (moved * 4);
    Mem.blit t.sim r (ptr_off t mid) rr (ptr_off t 0) (moved * 4);
    Mem.write_u16 t.sim rr off_n moved;
    Mem.write_u16 t.sim r off_n mid;
    F.entries_updated t.sim t.cfg rr ~n:moved ~from:0;
    F.entries_updated t.sim t.cfg r ~n:mid ~from:mid;
    let old_next = Mem.read_i32 t.sim r off_next in
    Mem.write_i32 t.sim rr off_next old_next;
    Mem.write_i32 t.sim rr off_prev page;
    Mem.write_i32 t.sim r off_next right;
    if old_next <> nil then
      Buffer_pool.with_page t.pool old_next (fun onr ->
          Mem.write_i32 t.sim onr off_prev right;
          Buffer_pool.mark_dirty t.pool old_next);
    let sep = Mem.read_i32 t.sim rr (key_off t 0) in
    Buffer_pool.mark_dirty t.pool page;
    Buffer_pool.mark_dirty t.pool right;
    (right, rr, sep)

  let rec insert_into_parent t path sep child =
    match path with
    | [] ->
        let old_root = t.root in
        let new_root, r = new_page t ~leaf:false in
        let old_min =
          Buffer_pool.with_page t.pool old_root (fun orr ->
              Mem.read_i32 t.sim orr (key_off t 0))
        in
        Mem.write_i32 t.sim r (key_off t 0) old_min;
        Mem.write_i32 t.sim r (ptr_off t 0) old_root;
        Mem.write_i32 t.sim r (key_off t 1) sep;
        Mem.write_i32 t.sim r (ptr_off t 1) child;
        Mem.write_u16 t.sim r off_n 2;
        F.entries_updated t.sim t.cfg r ~n:2 ~from:0;
        Buffer_pool.unpin t.pool new_root;
        t.root <- new_root;
        t.levels <- t.levels + 1
    | parent :: rest ->
        let r = Buffer_pool.get t.pool parent in
        let n = Mem.read_u16 t.sim r off_n in
        let i = F.find_slot t.sim t.cfg r ~n ~key:sep `Upper in
        (* If child 0's subtree split at or below its recorded key 0 (which
           is not a trusted bound), lower key 0 so the array stays sorted
           and strictly distinct, and insert the new separator at slot 1;
           child 0 keeps covering everything below [sep]. *)
        let i =
          if i = 0 || (i = 1 && Mem.read_i32 t.sim r (key_off t 0) = sep)
          then begin
            Mem.write_i32 t.sim r (key_off t 0) (sep - 1);
            F.entries_updated t.sim t.cfg r ~n ~from:0;
            1
          end
          else i
        in
        if n < t.fanout then begin
          insert_at t r ~n ~i sep child;
          Buffer_pool.mark_dirty t.pool parent;
          Buffer_pool.unpin t.pool parent
        end
        else begin
          let right, rr, parent_sep = split_page t parent r ~leaf:false in
          let mid = t.fanout / 2 in
          (if i <= mid then insert_at t r ~n:mid ~i sep child
           else insert_at t rr ~n:(t.fanout - mid) ~i:(i - mid) sep child);
          Buffer_pool.unpin t.pool parent;
          Buffer_pool.unpin t.pool right;
          insert_into_parent t rest parent_sep right
        end

  let insert t key tid =
    if not (Key.valid key) then invalid_arg (F.name ^ ".insert: key out of range");
    Sim.busy_op t.sim;
    let path = ref [] in
    let page, r = descend t key ~visit:(fun p _ _ _ -> path := p :: !path) in
    let n = Mem.read_u16 t.sim r off_n in
    let i = F.find_slot t.sim t.cfg r ~n ~key `Lower in
    if i < n && Mem.read_i32 t.sim r (key_off t i) = key then begin
      Mem.write_i32 t.sim r (ptr_off t i) tid;
      Buffer_pool.mark_dirty t.pool page;
      Buffer_pool.unpin t.pool page;
      `Updated
    end
    else if n < t.fanout then begin
      insert_at t r ~n ~i key tid;
      Buffer_pool.mark_dirty t.pool page;
      Buffer_pool.unpin t.pool page;
      `Inserted
    end
    else begin
      let right, rr, sep = split_page t page r ~leaf:true in
      let mid = t.fanout / 2 in
      (if i <= mid then insert_at t r ~n:mid ~i key tid
       else insert_at t rr ~n:(t.fanout - mid) ~i:(i - mid) key tid);
      Buffer_pool.unpin t.pool page;
      Buffer_pool.unpin t.pool right;
      insert_into_parent t !path sep right;
      `Inserted
    end

  (* --- Deletion ----------------------------------------------------------- *)

  let delete t key =
    Sim.busy_op t.sim;
    let page, r = descend t key ~visit:(fun _ _ _ _ -> ()) in
    let n = Mem.read_u16 t.sim r off_n in
    let i = F.find_slot t.sim t.cfg r ~n ~key `Lower in
    let found = i < n && Mem.read_i32 t.sim r (key_off t i) = key in
    if found then begin
      let len = (n - i - 1) * 4 in
      Mem.blit t.sim r (key_off t (i + 1)) r (key_off t i) len;
      Mem.blit t.sim r (ptr_off t (i + 1)) r (ptr_off t i) len;
      Mem.write_u16 t.sim r off_n (n - 1);
      F.entries_updated t.sim t.cfg r ~n:(n - 1) ~from:i;
      Buffer_pool.mark_dirty t.pool page
    end;
    Buffer_pool.unpin t.pool page;
    found

  (* --- Bulkload ----------------------------------------------------------- *)

  let bulkload t pairs ~fill =
    if fill <= 0. || fill > 1. then invalid_arg (F.name ^ ".bulkload: fill");
    if t.n_pages > 1 then invalid_arg (F.name ^ ".bulkload: tree not empty");
    let total = Array.length pairs in
    if total = 0 then ()
    else begin
      Buffer_pool.free_page t.pool t.root;
      t.n_pages <- t.n_pages - 1;
      let per_page = max 1 (int_of_float (float_of_int t.fanout *. fill)) in
      let build_level ~leaf entries =
        let n = Array.length entries in
        let n_pages = (n + per_page - 1) / per_page in
        let ups = Array.make n_pages (0, 0) in
        let prev = ref nil in
        for p = 0 to n_pages - 1 do
          let lo = p * per_page in
          let cnt = min per_page (n - lo) in
          let page, r = new_page t ~leaf in
          for j = 0 to cnt - 1 do
            let k, ptr = entries.(lo + j) in
            Mem.write_i32 t.sim r (key_off t j) k;
            Mem.write_i32 t.sim r (ptr_off t j) ptr
          done;
          Mem.write_u16 t.sim r off_n cnt;
          F.entries_updated t.sim t.cfg r ~n:cnt ~from:0;
          Mem.write_i32 t.sim r off_prev !prev;
          if !prev <> nil then begin
            Buffer_pool.with_page t.pool !prev (fun pr ->
                Mem.write_i32 t.sim pr off_next page);
            Buffer_pool.mark_dirty t.pool !prev
          end;
          Buffer_pool.unpin t.pool page;
          prev := page;
          ups.(p) <- (fst entries.(lo), page)
        done;
        ups
      in
      let level = ref (build_level ~leaf:true pairs) in
      let levels = ref 1 in
      while Array.length !level > 1 do
        level := build_level ~leaf:false !level;
        incr levels
      done;
      match !level with
      | [| (_, root) |] ->
          t.root <- root;
          t.levels <- !levels
      | _ -> assert false
    end

  (* --- Range scan ---------------------------------------------------------- *)

  type jp_cursor = { mutable jp_page : int; mutable jp_idx : int }

  let rec jp_next t cur =
    if cur.jp_page = nil then None
    else begin
      let r = Buffer_pool.get t.pool cur.jp_page in
      let n = Mem.read_u16 t.sim r off_n in
      if cur.jp_idx < n then begin
        let pid = Mem.read_i32 t.sim r (ptr_off t cur.jp_idx) in
        cur.jp_idx <- cur.jp_idx + 1;
        Buffer_pool.unpin t.pool cur.jp_page;
        Some pid
      end
      else begin
        let next = Mem.read_i32 t.sim r off_next in
        Buffer_pool.unpin t.pool cur.jp_page;
        cur.jp_page <- next;
        cur.jp_idx <- 0;
        if next = nil then None else jp_next t cur
      end
    end

  let descend_with_parent t key =
    let parent = ref nil and parent_idx = ref 0 in
    let page, r =
      descend t key ~visit:(fun p _ n i ->
          ignore n;
          parent := p;
          parent_idx := i)
    in
    (page, r, !parent, !parent_idx)

  let range_scan t ?(prefetch = false) ~start_key ~end_key f =
    Sim.busy_op t.sim;
    if end_key < start_key then 0
    else begin
      (* Locate the end leaf first so prefetching never overshoots. *)
      let end_leaf =
        if prefetch then begin
          let page, _r = descend t end_key ~visit:(fun _ _ _ _ -> ()) in
          Buffer_pool.unpin t.pool page;
          page
        end
        else nil
      in
      let page, r, parent, parent_idx = descend_with_parent t start_key in
      let cur = { jp_page = parent; jp_idx = parent_idx + 1 } in
      let outstanding = ref 0 in
      (* nothing to prefetch when the scan starts on the end page *)
      let done_prefetching = ref (parent = nil || end_leaf = page) in
      let pump () =
        if prefetch then
          while (not !done_prefetching) && !outstanding < t.io_prefetch_distance
          do
            match jp_next t cur with
            | None -> done_prefetching := true
            | Some pid ->
                Buffer_pool.prefetch t.pool pid;
                incr outstanding;
                if pid = end_leaf then done_prefetching := true
          done
      in
      pump ();
      let count = ref 0 in
      let rec scan_page page r =
        let n = Mem.read_u16 t.sim r off_n in
        let i0 =
          if !count = 0 then
            F.find_slot t.sim t.cfg r ~n ~key:start_key `Lower
          else 0
        in
        let stop = ref false in
        let i = ref i0 in
        while (not !stop) && !i < n do
          let k = Mem.read_i32 t.sim r (key_off t !i) in
          if k > end_key then stop := true
          else begin
            f k (Mem.read_i32 t.sim r (ptr_off t !i));
            incr count;
            incr i
          end
        done;
        let next = if !stop then nil else Mem.read_i32 t.sim r off_next in
        Buffer_pool.unpin t.pool page;
        if next <> nil then begin
          if !outstanding > 0 then decr outstanding;
          pump ();
          let nr = Buffer_pool.get t.pool next in
          bump_level t t.levels;
          scan_page next nr
        end
      in
      scan_page page r;
      !count
    end

  (* Reverse (descending) range scan: visits keys in [start_key, end_key]
     from high to low, walking the prev sibling links the paper's DB2
     implementation added for reverse scans.  Backward I/O prefetching
     walks the leaf-parent level in reverse. *)
  let range_scan_rev t ?(prefetch = false) ~start_key ~end_key f =
    Sim.busy_op t.sim;
    if end_key < start_key then 0
    else begin
      let start_leaf =
        if prefetch then begin
          let page, _r = descend t start_key ~visit:(fun _ _ _ _ -> ()) in
          Buffer_pool.unpin t.pool page;
          page
        end
        else nil
      in
      let page, r, parent, parent_idx = descend_with_parent t end_key in
      (* backward cursor over the leaf-parent level *)
      let cur = { jp_page = parent; jp_idx = parent_idx - 1 } in
      let rec jp_prev () =
        if cur.jp_page = nil then None
        else if cur.jp_idx >= 0 then begin
          let pr = Buffer_pool.get t.pool cur.jp_page in
          let pid = Mem.read_i32 t.sim pr (ptr_off t cur.jp_idx) in
          cur.jp_idx <- cur.jp_idx - 1;
          Buffer_pool.unpin t.pool cur.jp_page;
          Some pid
        end
        else begin
          let pr = Buffer_pool.get t.pool cur.jp_page in
          let prev = Mem.read_i32 t.sim pr off_prev in
          Buffer_pool.unpin t.pool cur.jp_page;
          cur.jp_page <- prev;
          if prev = nil then None
          else begin
            let pr2 = Buffer_pool.get t.pool prev in
            cur.jp_idx <- Mem.read_u16 t.sim pr2 off_n - 1;
            Buffer_pool.unpin t.pool prev;
            jp_prev ()
          end
        end
      in
      let outstanding = ref 0 in
      let done_prefetching = ref (parent = nil || start_leaf = page) in
      let pump () =
        if prefetch then
          while (not !done_prefetching) && !outstanding < t.io_prefetch_distance
          do
            match jp_prev () with
            | None -> done_prefetching := true
            | Some pid ->
                Buffer_pool.prefetch t.pool pid;
                incr outstanding;
                if pid = start_leaf then done_prefetching := true
          done
      in
      pump ();
      let count = ref 0 in
      let first_page = ref true in
      let rec scan_page page r =
        let n = Mem.read_u16 t.sim r off_n in
        let i0 =
          if !first_page then begin
            first_page := false;
            F.find_slot t.sim t.cfg r ~n ~key:end_key `Upper - 1
          end
          else n - 1
        in
        let stop = ref false in
        let i = ref i0 in
        while (not !stop) && !i >= 0 do
          let k = Mem.read_i32 t.sim r (key_off t !i) in
          if k < start_key then stop := true
          else begin
            if k <= end_key then begin
              f k (Mem.read_i32 t.sim r (ptr_off t !i));
              incr count
            end;
            decr i
          end
        done;
        let prev = if !stop then nil else Mem.read_i32 t.sim r off_prev in
        Buffer_pool.unpin t.pool page;
        if prev <> nil then begin
          if !outstanding > 0 then decr outstanding;
          pump ();
          let pr = Buffer_pool.get t.pool prev in
          bump_level t t.levels;
          scan_page prev pr
        end
      in
      scan_page page r;
      !count
    end

  (* --- Introspection (uncharged; tests only) ------------------------------- *)

  let height t = t.levels
  let page_count t = t.n_pages
  let meta t = [ t.root; t.levels; t.n_pages ]

  let restore_meta t = function
    | [ root; levels; n_pages ] ->
        t.root <- root;
        t.levels <- levels;
        t.n_pages <- n_pages
    | _ -> invalid_arg (F.name ^ ".restore_meta: bad shape")

  let peek_region t page =
    let r = Buffer_pool.get t.pool page in
    Buffer_pool.unpin t.pool page;
    r

  let iter t f =
    let rec leftmost page =
      let r = peek_region t page in
      if Mem.peek_u8 r off_is_leaf = 1 then page
      else leftmost (Mem.peek_i32 r (ptr_off t 0))
    in
    let rec walk page =
      if page <> nil then begin
        let r = peek_region t page in
        let n = Mem.peek_u16 r off_n in
        for i = 0 to n - 1 do
          f (Mem.peek_i32 r (key_off t i)) (Mem.peek_i32 r (ptr_off t i))
        done;
        walk (Mem.peek_i32 r off_next)
      end
    in
    walk (leftmost t.root)

  let fail fmt = Fmt.kstr failwith fmt

  let check t =
    let leaves_seen = ref [] in
    let rec check_page page ~lo ~hi ~depth =
      let r = peek_region t page in
      let leaf = Mem.peek_u8 r off_is_leaf = 1 in
      let n = Mem.peek_u16 r off_n in
      if leaf <> (depth = t.levels) then fail "page %d: leaf at wrong depth" page;
      if n > t.fanout then fail "page %d: overfull (%d > %d)" page n t.fanout;
      if n = 0 && page <> t.root then fail "page %d: empty non-root" page;
      for i = 0 to n - 1 do
        let k = Mem.peek_i32 r (key_off t i) in
        if i > 0 && Mem.peek_i32 r (key_off t (i - 1)) >= k then
          fail "page %d: keys not strictly increasing at %d" page i;
        (match lo with
        | Some b when k < b -> fail "page %d: key %d below bound %d" page k b
        | _ -> ());
        match hi with
        | Some b when k >= b -> fail "page %d: key %d above bound %d" page k b
        | _ -> ()
      done;
      if leaf then leaves_seen := page :: !leaves_seen
      else
        for i = 0 to n - 1 do
          let child = Mem.peek_i32 r (ptr_off t i) in
          let clo = if i = 0 then lo else Some (Mem.peek_i32 r (key_off t i)) in
          let chi =
            if i = n - 1 then hi else Some (Mem.peek_i32 r (key_off t (i + 1)))
          in
          check_page child ~lo:clo ~hi:chi ~depth:(depth + 1)
        done
    in
    check_page t.root ~lo:None ~hi:None ~depth:1;
    let expected = List.rev !leaves_seen in
    let rec chain page acc =
      if page = nil then List.rev acc
      else
        let r = peek_region t page in
        chain (Mem.peek_i32 r off_next) (page :: acc)
    in
    match expected with
    | [] -> ()
    | first :: _ ->
        let chained = chain first [] in
        if chained <> expected then fail "leaf chain disagrees with tree order"

  (* amcheck-style entry point: the structural check as data, for the
     scrub and chaos harnesses that must keep counting past a failure. *)
  let check_invariants t =
    match check t with
    | () -> Ok (page_count t)
    | exception Failure msg -> Error msg
end
