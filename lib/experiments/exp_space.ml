(* Figure 16: space overhead of the fpB+-Trees relative to a disk-optimized
   B+-Tree holding the same entries: (a) right after a 100% bulkload,
   (b) for mature trees (bulkload 10% of the keys, insert the rest). *)

open Fpb_btree_common

let overhead_pct ~fp_pages ~base_pages =
  100. *. (float_of_int fp_pages /. float_of_int base_pages -. 1.)

let space_row scale ~mature page_size =
  let n =
    match scale with Scale.Tiny -> 60_000 | Quick -> 500_000 | Full -> 10_000_000
  in
  let rng = Fpb_workload.Prng.create 6006 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let build kind =
    let _sys, idx =
      if mature then
        Run.fresh_mature ~page_size ~seed:60 kind pairs ~bulk_frac:0.1 ~fill:1.0
      else Run.fresh ~page_size kind pairs ~fill:1.0
    in
    Index_sig.page_count idx
  in
  let base = build Setup.Disk_opt in
  let df = build Setup.Disk_first in
  let cf = build Setup.Cache_first in
  [
    Printf.sprintf "%dKB" (page_size / 1024);
    Table.cell_f (overhead_pct ~fp_pages:df ~base_pages:base);
    Table.cell_f (overhead_pct ~fp_pages:cf ~base_pages:base);
  ]

let fig16 scale =
  let header = [ "page size"; "disk-first overhead %"; "cache-first overhead %" ] in
  [
    Table.make ~id:"fig16a" ~title:"Space overhead after 100% bulkload"
      ~header
      (List.map (space_row scale ~mature:false) Scale.page_sizes);
    Table.make ~id:"fig16b" ~title:"Space overhead of mature trees (10% bulk + 90% inserts)"
      ~header
      (List.map (space_row scale ~mature:true) Scale.page_sizes);
  ]
