(* Extension experiment: overload control under open-loop traffic.

   PR 6 showed the failure (ycsb-c: open loop past capacity has an
   exploding tail); this experiment shows the defenses and the one
   failure mode the defenses themselves can create.  Four tables:

     overload-a  admission policy x offered rate (0.5x-3x the measured
                 closed-loop capacity), YCSB-A with per-op deadlines.
                 Admit-all collapses: past capacity nearly everything
                 completes after its deadline, so goodput -> 0 even
                 though throughput stays at capacity.  A queue cap
                 bounds the damage; deadline-aware admission sheds
                 exactly the ops it cannot serve in time and keeps the
                 admitted p99 near the deadline with goodput degrading
                 smoothly.

     overload-b  the retry storm.  A 3x-capacity burst, then the rate
                 drops well below capacity.  Without retries the system
                 recovers instantly.  Clients that retry shed ops on a
                 short fixed timer with a generous budget keep the
                 queues full long after the burst ends (each fresh op
                 re-offers itself budget+1 times: the classic
                 metastable failure); exponential backoff with full
                 jitter and a small budget dissipates the same burst.

     overload-c  graceful degradation in storage: a buffer pool whose
                 every frame is pinned refuses demand work with the
                 typed [Overloaded] (after bounded, clock-charged
                 victim rescans) instead of crashing the process, and
                 serves again as soon as a pin drops.

     overload-d  background work yields to foreground pressure: while
                 the arrival backlog sits above its watermark, scrub
                 ticks and fuzzy-checkpoint ticks do nothing (counted
                 as yields); once the backlog drains both make
                 progress again. *)

open Fpb_btree_common
open Fpb_storage
open Fpb_wal
module W = Fpb_workload
module Shadow = Fpb_snapshot.Shadow
module Histogram = Fpb_obs.Histogram

let page_size = 4096
let n_disks = 4
let n_shards = 4
let group_commit_bytes = 1 lsl 16
let fill = 0.8

let bulk_entries = function
  | Scale.Tiny -> 10_000
  | Scale.Quick -> 30_000
  | Scale.Full -> 100_000

let total_ops = function
  | Scale.Tiny -> 500
  | Scale.Quick -> 2_500
  | Scale.Full -> 10_000

let base_clients = function Scale.Tiny -> 4 | Scale.Quick | Scale.Full -> 8

(* Per-client queue bound for the Queue_cap sweep cells: roomy enough
   that the heavy-tailed service (disk misses) rarely fills it below
   capacity, tight enough to bound the backlog past it. *)
let queue_cap = 16

(* The storm runs with tighter queues: a full queue's drain time must
   exceed the (tight) storm deadline, so an op admitted off a retry is
   already stale and its service is pure waste — the fuel of the
   metastable loop. *)
let storm_queue_cap = 8

(* Pool sized to half the tree, as in the YCSB experiment. *)
let tree_pool_pages scale =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks ~page_size () in
  let idx = Run.build sys Setup.Disk_first pairs ~fill in
  max 24 (Index_sig.page_count idx / 2)

(* A fresh system + YCSB-A generator per cell, warmed to steady state;
   [k] receives the system and the per-arrival operation. *)
let with_system scale ~pool_pages k =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks ~pool_pages ~n_shards ~page_size () in
  let idx = Run.build sys Setup.Disk_first pairs ~fill in
  let wal =
    Wal.attach ~group_commit_bytes ~meta:(Index_sig.meta idx) sys.Setup.pool
  in
  let mix = W.Mix.a in
  let dist = W.Mix.default_dist mix in
  let gen = W.Mix.generator ~dist ~seed:31337 mix pairs in
  let warm_rng = W.Prng.create 555 in
  let n = Array.length pairs in
  for _ = 1 to 2 * pool_pages do
    ignore
      (Index_sig.search idx (fst pairs.(W.Keygen.draw_pos dist warm_rng ~n)))
  done;
  Buffer_pool.reset_stats sys.Setup.pool;
  let committed = ref 0 in
  let commit () =
    incr committed;
    Wal.commit wal ~op:!committed ~meta:(Index_sig.meta idx)
  in
  let op ~client:(_ : int) ~seq:(_ : int) =
    W.Mix.execute idx ~commit (W.Mix.next gen)
  in
  let r = k sys op in
  Index_sig.check idx;
  r

(* Closed-loop probe: capacity (best throughput) and its p99, which
   sizes the deadline every open-loop cell uses.  A deadline of ~5x the
   unloaded p99 is the conventional "generous but real" SLO: reachable
   under light queueing, hopeless once the queue grows unbounded. *)
let probe scale ~pool_pages =
  with_system scale ~pool_pages (fun sys op ->
      let n_clients = base_clients scale in
      let st =
        W.Clients.run ~sim:sys.Setup.sim ~n_clients
          ~ops_per_client:(total_ops scale / n_clients)
          op
      in
      ( st.W.Clients.throughput_ops_per_s,
        Histogram.percentile st.W.Clients.latency 99. ))

let policy_slug = function
  | W.Admission.Admit_all -> "admit-all"
  | W.Admission.Queue_cap _ -> "queue-cap"
  | W.Admission.Deadline_aware -> "deadline"

(* ------------------- overload-a: policy x rate sweep ------------------ *)

let run_cell scale ~pool_pages ~deadline_ns ~admission ?retry ?rate_change
    ?n_ops ~rate_ops_per_s () =
  let n_ops = Option.value ~default:(total_ops scale) n_ops in
  with_system scale ~pool_pages (fun sys op ->
      W.Arrival.run ~sim:sys.Setup.sim ~n_clients:(base_clients scale)
        ~n_ops ~rate_ops_per_s ~deadline_ns ~admission ?retry ?rate_change op)

let good_pct (st : W.Arrival.stats) =
  100. *. float_of_int st.W.Arrival.good /. float_of_int (max 1 st.W.Arrival.ops)

let policy_sweep scale ~pool_pages ~capacity ~deadline_ns =
  let policies =
    [ W.Admission.Admit_all; W.Admission.Queue_cap queue_cap;
      W.Admission.Deadline_aware ]
  in
  let pcts = [ 50; 100; 150; 200; 300 ] in
  let rows =
    List.concat_map
      (fun admission ->
        let slug = policy_slug admission in
        List.map
          (fun pct ->
            let rate = capacity *. float_of_int pct /. 100. in
            let st =
              run_cell scale ~pool_pages ~deadline_ns ~admission
                ~rate_ops_per_s:rate ()
            in
            let key m = Printf.sprintf "overload.a.%s.r%d.%s" slug pct m in
            let p99 = Histogram.percentile st.W.Arrival.latency 99. in
            Telemetry.add (key "goodput")
              (int_of_float st.W.Arrival.goodput_ops_per_s);
            Telemetry.add (key "good_pct") (int_of_float (good_pct st));
            Telemetry.add (key "shed") st.W.Arrival.shed;
            Telemetry.add (key "expired") st.W.Arrival.expired;
            Telemetry.add (key "p99_ns") p99;
            Telemetry.add (key "max_backlog") st.W.Arrival.max_backlog;
            Telemetry.add (key "above_wm_ns")
              st.W.Arrival.time_above_watermark_ns;
            [
              W.Admission.name admission;
              Table.cell_i pct;
              Table.cell_f (st.W.Arrival.offered_ops_per_s /. 1e3);
              Table.cell_f (st.W.Arrival.goodput_ops_per_s /. 1e3);
              Table.cell_f (good_pct st);
              Table.cell_i st.W.Arrival.shed;
              Table.cell_i st.W.Arrival.expired;
              Table.cell_i p99;
              Table.cell_i st.W.Arrival.max_backlog;
              Table.cell_i st.W.Arrival.time_above_watermark_ns;
            ])
          pcts)
      policies
  in
  Table.make ~id:"overload-a"
    ~title:
      (Printf.sprintf
         "Admission policy x offered rate, YCSB-A open loop (capacity = \
          %.1f Kops/s closed loop, deadline = %d ns = 5x unloaded p99, %d \
          ops).  Admit-all keeps serving ops nobody waits for (goodput \
          collapses past capacity); deadline-aware sheds early and keeps \
          the admitted p99 near the deadline"
         (capacity /. 1e3) deadline_ns (total_ops scale))
    ~header:
      [ "policy"; "rate %cap"; "offered Kops/s"; "goodput Kops/s"; "good %";
        "shed"; "expired"; "p99 ns"; "max backlog"; "t>wm ns" ]
    rows

(* ---------------------- overload-b: retry storm ----------------------- *)

let storm scale ~pool_pages ~capacity ~deadline_ns =
  (* 4x the sweep's op count, 3/4 of it burst: sheds cost no service
     here, so a retry storm persists for as long as the pending-retry
     pool built up during the burst takes to drain through the server —
     the burst must pend enough ops that the naive pool outlives the
     whole calm phase, while the small-budget pool dies in a few
     delays. *)
  let n_ops = 4 * total_ops scale in
  (* 3x burst, then well below capacity: an undefended system (no
     retries) drains its queue and recovers within one queue-drain of
     the rate change. *)
  let burst = capacity *. 3. in
  let calm = capacity *. 0.3 in
  let change_at = 3 * n_ops / 4 in
  (* A deadline tighter than a full queue's drain time: an op admitted
     off the back of a saturated queue completes stale, so in the bad
     state the server's whole capacity goes to answers nobody is
     waiting for.  (The sweep's 5x-p99 deadline is too forgiving — a
     few quick retries then complete in time and retries look like a
     cure even when naive.) *)
  let deadline_ns = max 1 (deadline_ns / 4) in
  (* The storm needs the amplified re-offer rate to exceed capacity on
     its own: fresh calm-phase rate x (budget+1) = 0.3 x 33 ~ 10x, with
     a short synchronised timer keeping it concentrated.  The cure
     drops the bound below capacity (0.3 x 3 = 0.9x) and de-bunches
     what remains. *)
  let naive =
    { W.Retry.discipline = W.Retry.Fixed (deadline_ns / 2); budget = 32 }
  in
  let cured =
    {
      W.Retry.discipline =
        W.Retry.Backoff { base_ns = deadline_ns / 2; mult = 2; jitter = true };
      budget = 2;
    }
  in
  let legs =
    [ ("no-retry", W.Retry.none); ("naive", naive); ("jitter", cured) ]
  in
  let rows =
    List.map
      (fun (slug, retry) ->
        let st =
          run_cell scale ~pool_pages ~deadline_ns
            ~admission:(W.Admission.Queue_cap storm_queue_cap) ~retry
            ~rate_change:(change_at, calm) ~n_ops ~rate_ops_per_s:burst ()
        in
        let w = Option.get st.W.Arrival.recovery in
        let w_good_pct =
          100. *. float_of_int w.W.Arrival.w_good
          /. float_of_int (max 1 w.W.Arrival.w_offered)
        in
        let key m = Printf.sprintf "overload.b.%s.%s" slug m in
        Telemetry.add (key "retries") st.W.Arrival.retries;
        Telemetry.add (key "dropped") st.W.Arrival.dropped;
        Telemetry.add (key "shed") st.W.Arrival.shed;
        Telemetry.add (key "recovery_good_pct") (int_of_float w_good_pct);
        Telemetry.add (key "recovery_goodput")
          (int_of_float w.W.Arrival.w_goodput_ops_per_s);
        Telemetry.add (key "recovery_shed") w.W.Arrival.w_shed;
        [
          (slug ^ " " ^ W.Retry.name retry);
          Table.cell_i st.W.Arrival.retries;
          Table.cell_i st.W.Arrival.shed;
          Table.cell_i st.W.Arrival.dropped;
          Table.cell_i w.W.Arrival.w_offered;
          Table.cell_f w_good_pct;
          Table.cell_f (w.W.Arrival.w_goodput_ops_per_s /. 1e3);
          Table.cell_i w.W.Arrival.w_shed;
        ])
      legs
  in
  Table.make ~id:"overload-b"
    ~title:
      (Printf.sprintf
         "Retry storm: 3x-capacity burst for %d ops, then 0.3x (capacity \
          = %.1f Kops/s, queue cap %d, deadline %d ns).  Recovery columns \
          cover the post-burst phase only.  Short fixed retries with a \
          big budget keep the burst alive after its cause is gone \
          (metastable); backoff+jitter with a small budget dissipates it"
         change_at (capacity /. 1e3) storm_queue_cap deadline_ns)
    ~header:
      [ "retry policy"; "retries"; "shed"; "dropped"; "recov offered";
        "recov good %"; "recov goodput Kops/s"; "recov shed" ]
    rows

(* ------------- overload-c: typed refusal at pool exhaustion ----------- *)

let exhaustion_cell frames =
  let sys = Setup.make ~n_disks:1 ~pool_pages:frames ~n_shards:1 ~page_size () in
  let pool = sys.Setup.pool in
  (* More live pages than frames, none pinned yet. *)
  let pages =
    Array.init (frames + 2) (fun _ ->
        let id, _ = Buffer_pool.create_page pool in
        Buffer_pool.unpin pool id;
        id)
  in
  (* Pin one page per frame: the pool is now exhausted for demand work. *)
  for i = 0 to frames - 1 do
    ignore (Buffer_pool.get pool pages.(i))
  done;
  let attempts = 4 in
  let shed = ref 0 and scans = ref 0 in
  for _ = 1 to attempts do
    match Buffer_pool.get pool pages.(frames) with
    | _ -> Buffer_pool.unpin pool pages.(frames)
    | exception Buffer_pool.Overloaded { scans = s; _ } ->
        incr shed;
        scans := s
  done;
  (* Dropping one pin is all it takes to serve again. *)
  Buffer_pool.unpin pool pages.(0);
  let recovered =
    match Buffer_pool.get pool pages.(frames) with
    | _ ->
        Buffer_pool.unpin pool pages.(frames);
        1
    | exception Buffer_pool.Overloaded _ -> 0
  in
  let v c = Fpb_obs.Counter.value c in
  let p = Buffer_pool.stats pool in
  (frames, attempts, !shed, !scans, v p.Buffer_pool.overloaded,
   v p.Buffer_pool.overload_wait_ns, recovered)

let exhaustion_table () =
  let rows =
    List.map
      (fun frames ->
        let f, att, shed, scans, ovl, wait_ns, rec_ = exhaustion_cell frames in
        let key m = Printf.sprintf "overload.c.f%d.%s" f m in
        Telemetry.add (key "shed") shed;
        Telemetry.add (key "pool_overloaded") ovl;
        Telemetry.add (key "recovered") rec_;
        [
          Table.cell_i f; Table.cell_i att; Table.cell_i shed;
          Table.cell_i scans; Table.cell_i ovl; Table.cell_i wait_ns;
          Table.cell_i rec_;
        ])
      [ 1; 2; 4 ]
  in
  Table.make ~id:"overload-c"
    ~title:
      "Typed refusal at pool exhaustion: every frame pinned, demand gets \
       raise Overloaded after bounded clock-charged victim rescans (shed \
       must equal attempts, recovered must be 1 after one unpin)"
    ~header:
      [ "frames"; "attempts"; "shed"; "scans/refusal"; "pool.overloaded";
        "overload wait ns"; "recovered" ]
    rows

(* ------------- overload-d: background work yields to load ------------- *)

let background_table scale =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (max 2_000 (bulk_entries scale / 5)) in
  let sys = Setup.make ~n_disks ~pool_pages:64 ~n_shards:1 ~page_size () in
  let idx = Run.build sys Setup.Disk_first pairs ~fill in
  (* Strict durability so checkpoint worklist pages are hardenable. *)
  let wal =
    Wal.attach ~group_commit_bytes:0 ~meta:(Index_sig.meta idx) sys.Setup.pool
  in
  let sh = Shadow.attach ~meta:(Index_sig.meta idx) wal sys.Setup.pool in
  let mix = W.Mix.a in
  let gen =
    W.Mix.generator ~dist:(W.Mix.default_dist mix) ~seed:31337 mix pairs
  in
  let committed = ref 0 in
  let commit () =
    incr committed;
    Wal.commit wal ~op:!committed ~meta:(Index_sig.meta idx)
  in
  (* Dirty the pool so the next checkpoint has real write-back to do. *)
  for _ = 1 to 200 do
    W.Mix.execute idx ~commit (W.Mix.next gen)
  done;
  let sched = Scrub.scheduler ~pages_per_tick:4 sys.Setup.pool in
  let backlog = ref 0 in
  let watermark = 8 in
  let probe = Some (fun () -> !backlog > watermark) in
  Scrub.set_backpressure sched probe;
  Shadow.set_backpressure sh probe;
  let meta () = Index_sig.meta idx in
  Shadow.checkpoint_begin sh;
  let worklist_before = Shadow.worklist_remaining sh in
  (* Foreground loaded: both background jobs must stand down. *)
  backlog := 100;
  let loaded_ticks = 12 in
  let scrub_loaded = ref 0 in
  for _ = 1 to loaded_ticks do
    let r = Scrub.tick sched in
    scrub_loaded := !scrub_loaded + r.Scrub.scanned;
    if Shadow.checkpoint_in_progress sh then
      ignore (Shadow.checkpoint_tick ~pages:2 sh ~meta:(meta ()))
  done;
  let worklist_during = Shadow.worklist_remaining sh in
  (* Backlog drained: both resume and the checkpoint completes. *)
  backlog := 0;
  let flipped = ref 0 in
  while Shadow.checkpoint_in_progress sh do
    if Shadow.checkpoint_tick ~pages:2 sh ~meta:(meta ()) then incr flipped
  done;
  let scrub_drained = (Scrub.tick sched).Scrub.scanned in
  let scrub_yields = Scrub.yields sched in
  let ckpt_yields = Fpb_obs.Counter.value (Shadow.stats sh).Shadow.yields in
  Telemetry.add "overload.d.scrub_yields" scrub_yields;
  Telemetry.add "overload.d.ckpt_yields" ckpt_yields;
  Telemetry.add "overload.d.scrub_scanned_loaded" !scrub_loaded;
  Telemetry.add "overload.d.scrub_scanned_drained" scrub_drained;
  Telemetry.add "overload.d.flipped" !flipped;
  Index_sig.check idx;
  Table.make ~id:"overload-d"
    ~title:
      (Printf.sprintf
         "Background work under foreground pressure (%d loaded ticks, \
          backlog watermark %d): scrub and fuzzy-checkpoint ticks yield \
          while loaded (scanned/hardened must be 0, worklist held) and \
          resume once the backlog drains"
         loaded_ticks watermark)
    ~header:
      [ "loaded ticks"; "scrub yields"; "scrub pages (loaded)";
        "ckpt yields"; "worklist before"; "worklist during"; "flipped";
        "scrub pages (drained)" ]
    [
      [
        Table.cell_i loaded_ticks; Table.cell_i scrub_yields;
        Table.cell_i !scrub_loaded; Table.cell_i ckpt_yields;
        Table.cell_i worklist_before; Table.cell_i worklist_during;
        Table.cell_i !flipped; Table.cell_i scrub_drained;
      ];
    ]

let run scale =
  let pool_pages = tree_pool_pages scale in
  let capacity, p99_closed = probe scale ~pool_pages in
  let deadline_ns = max 1 (5 * p99_closed) in
  Telemetry.add "overload.capacity_ops_per_s" (int_of_float capacity);
  Telemetry.add "overload.deadline_ns" deadline_ns;
  [
    policy_sweep scale ~pool_pages ~capacity ~deadline_ns;
    storm scale ~pool_pages ~capacity ~deadline_ns;
    exhaustion_table ();
    background_table scale;
  ]
