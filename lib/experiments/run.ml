(* Shared experiment plumbing. *)

open Fpb_btree_common

let build sys kind pairs ~fill =
  let idx = Setup.make_index kind sys.Setup.pool in
  Index_sig.bulkload idx pairs ~fill;
  idx

(* A fresh system + bulkloaded index of [kind]. *)
let fresh ?n_disks ?pool_pages ~page_size kind pairs ~fill =
  let sys = Setup.make ?n_disks ?pool_pages ~page_size () in
  (sys, build sys kind pairs ~fill)

(* Mature tree: bulkload a [bulk_frac] spread of the pairs at [fill], then
   insert the rest in random order (the paper's recipe for update-aged
   trees).  The bulkloaded subset is taken as every k-th pair so inserts
   cover the whole key space. *)
let fresh_mature ?n_disks ?pool_pages ~page_size ~seed kind pairs ~bulk_frac
    ~fill =
  let n = Array.length pairs in
  let nb = max 1 (min (n - 1) (int_of_float (float_of_int n *. bulk_frac))) in
  (* Spread the minority set (bulk or rest, whichever is smaller) as every
     k-th pair so both sets cover the whole key space. *)
  let bulk, rest =
    if nb * 2 <= n then begin
      let stride = max 1 (n / nb) in
      let is_bulk i = i mod stride = 0 in
      ( Array.of_seq
          (Seq.filter_map
             (fun i -> if is_bulk i then Some pairs.(i) else None)
             (Seq.init n Fun.id)),
        Array.of_seq
          (Seq.filter_map
             (fun i -> if is_bulk i then None else Some pairs.(i))
             (Seq.init n Fun.id)) )
    end
    else begin
      let stride = max 2 (n / (n - nb)) in
      let is_rest i = i mod stride = stride - 1 in
      ( Array.of_seq
          (Seq.filter_map
             (fun i -> if is_rest i then None else Some pairs.(i))
             (Seq.init n Fun.id)),
        Array.of_seq
          (Seq.filter_map
             (fun i -> if is_rest i then Some pairs.(i) else None)
             (Seq.init n Fun.id)) )
    end
  in
  let sys, idx = fresh ?n_disks ?pool_pages ~page_size kind bulk ~fill in
  let rng = Fpb_workload.Prng.create seed in
  Fpb_workload.Prng.shuffle rng rest;
  Array.iter (fun (k, v) -> ignore (Index_sig.insert idx k v)) rest;
  (sys, idx)

(* "disk-first fpB+tree" -> "disk-first-fpb-tree", a counter-name-safe
   slug of the index name. *)
let slug name =
  String.concat "-"
    (List.filter
       (fun s -> s <> "")
       (String.split_on_char '-'
          (String.map
             (fun c ->
               match Char.lowercase_ascii c with
               | ('a' .. 'z' | '0' .. '9') as c -> c
               | _ -> '-')
             name)))

(* Run an operation batch with per-level access counting: the index's
   level counters are reset around [f] and the deltas recorded as
   [<op>.<index>.level<i>_accesses] (level 0 = root). *)
let with_levels op idx f =
  Index_sig.reset_level_accesses idx;
  f ();
  let prefix = Printf.sprintf "%s.%s" op (slug (Index_sig.name idx)) in
  Array.iteri
    (fun i c ->
      if c > 0 then Telemetry.add (Printf.sprintf "%s.level%d_accesses" prefix i) c)
    (Index_sig.level_accesses idx)

(* Rebuild an index handle of [kind] on a promoted replica's pool
   ([Fpb_replica.Replica.promotion]) and restore it from the replicated
   root metadata.  The handle's [create] allocates fresh pages the
   replicated page space does not own, so they are freed again — and the
   pool dropped, since those frames are gone — before [restore_meta]
   points the handle at the shipped root. *)
let adopt kind pool ~meta =
  let store = Fpb_storage.Buffer_pool.store pool in
  let free0 = Fpb_storage.Page_store.free_list store in
  let total0 = Fpb_storage.Page_store.total_pages store in
  let idx = Setup.make_index kind pool in
  let total1 = Fpb_storage.Page_store.total_pages store in
  let extra = List.init (total1 - total0) (fun i -> total0 + 1 + i) in
  Fpb_storage.Page_store.set_free_list store (List.sort compare (extra @ free0));
  Fpb_storage.Buffer_pool.clear pool;
  Index_sig.restore_meta idx meta;
  idx

let searches idx keys =
  with_levels "search" idx (fun () ->
      Array.iter (fun k -> ignore (Index_sig.search idx k)) keys)

let inserts idx keys =
  with_levels "insert" idx (fun () ->
      Array.iter (fun k -> ignore (Index_sig.insert idx k k)) keys)

let deletes idx keys =
  with_levels "delete" idx (fun () ->
      Array.iter (fun k -> ignore (Index_sig.delete idx k)) keys)
