(* Figure 19: jump-pointer-array prefetching in a DB2-style engine
   ([Fpb_dbsim]): an index-only SELECT COUNT over every leaf page of a
   large table's index, on an 80-disk, 8-way SMP machine.
   (a) varying the number of I/O prefetchers at SMP degree 9;
   (b) varying the SMP degree with 8 prefetchers.
   The "no prefetch" and "in memory" curves bound the benefit, as in the
   paper. *)

let base scale =
  let n_pages =
    match scale with Scale.Tiny -> 20_000 | Quick -> 100_000 | Full -> 800_000
  in
  { Fpb_dbsim.Dbsim.default with n_pages }

let fig19a scale =
  let cfg = base scale in
  let rows =
    List.map
      (fun npf ->
        let with_pf =
          Fpb_dbsim.Dbsim.run { cfg with n_prefetchers = npf; smp_degree = 9 }
        in
        let no_pf = Fpb_dbsim.Dbsim.run { cfg with n_prefetchers = 0; smp_degree = 9 } in
        let in_mem =
          Fpb_dbsim.Dbsim.run { cfg with smp_degree = 9; in_memory = true }
        in
        [
          string_of_int npf;
          Table.cell_s no_pf;
          Table.cell_s with_pf;
          Table.cell_s in_mem;
          Table.cell_f (float_of_int no_pf /. float_of_int with_pf);
        ])
      [ 1; 2; 3; 4; 6; 8; 10; 12 ]
  in
  Table.make ~id:"fig19a"
    ~title:"DB2-style scan: time (s) vs. #I/O prefetchers (SMP degree 9)"
    ~header:[ "prefetchers"; "no prefetch"; "with prefetch"; "in memory"; "speedup" ]
    rows

let fig19b scale =
  let cfg = base scale in
  let rows =
    List.map
      (fun smp ->
        let with_pf =
          Fpb_dbsim.Dbsim.run { cfg with n_prefetchers = 8; smp_degree = smp }
        in
        let no_pf = Fpb_dbsim.Dbsim.run { cfg with n_prefetchers = 0; smp_degree = smp } in
        let in_mem = Fpb_dbsim.Dbsim.run { cfg with smp_degree = smp; in_memory = true } in
        [
          string_of_int smp;
          Table.cell_s no_pf;
          Table.cell_s with_pf;
          Table.cell_s in_mem;
          Table.cell_f (float_of_int no_pf /. float_of_int with_pf);
        ])
      [ 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
  in
  Table.make ~id:"fig19b"
    ~title:"DB2-style scan: time (s) vs. SMP degree (8 prefetchers)"
    ~header:[ "SMP degree"; "no prefetch"; "with prefetch"; "in memory"; "speedup" ]
    rows
