(* Ambient per-experiment metrics collector.

   The registry runner installs a fresh [Fpb_obs.Registry.t] around each
   experiment; the measurement helpers in [Setup] and [Run] fold counter
   deltas and histogram observations into whichever collector is current.
   With no collector installed every call is a no-op, so the experiment
   code itself stays unchanged whether or not anyone is recording. *)

let current : Fpb_obs.Registry.t option ref = ref None

let add name n =
  match !current with None -> () | Some r -> Fpb_obs.Registry.add r name n

(* Zero deltas are skipped so metrics records only mention instruments
   that actually moved. *)
let add_kv kvs = List.iter (fun (name, n) -> if n <> 0 then add name n) kvs

let observe name v =
  match !current with None -> () | Some r -> Fpb_obs.Registry.observe r name v

(* [delta after before] subtracts matching (name, value) snapshots taken
   from the same counter list. *)
let delta after before =
  List.map2 (fun (name, a) ((_ : string), b) -> (name, a - b)) after before

(* Run [f] under a fresh collector; returns the collector (with whatever
   [f] recorded) alongside [f]'s result.  Nests: the previous collector is
   restored afterwards, even on exceptions. *)
let with_collector f =
  let r = Fpb_obs.Registry.create () in
  let saved = !current in
  current := Some r;
  Fun.protect
    ~finally:(fun () -> current := saved)
    (fun () ->
      let x = f () in
      (r, x))
