(* Experiment scaling.  [Quick] reproduces every figure's shape at reduced
   tree sizes (minutes of wall clock); [Full] uses the paper's sizes where
   feasible.  [Tiny] is for smoke tests and CI: seconds of wall clock, the
   numbers are not meaningful.  EXPERIMENTS.md records Quick and Full
   against the paper's numbers. *)

type t = Tiny | Quick | Full

let to_string = function Tiny -> "tiny" | Quick -> "quick" | Full -> "full"

(* Tree sizes for the search/update sweeps (paper: 1e5..1e7). *)
let entry_counts = function
  | Tiny -> [ 10_000; 30_000 ]
  | Quick -> [ 100_000; 300_000; 1_000_000 ]
  | Full -> [ 100_000; 300_000; 1_000_000; 3_000_000; 10_000_000 ]

(* Standard single tree size (paper: 3e6 for Figures 12-15). *)
let base_entries = function Tiny -> 30_000 | Quick -> 1_000_000 | Full -> 3_000_000

(* Large tree for I/O experiments (paper: 1e7 keys searched, 1e8 scanned). *)
let io_entries = function Tiny -> 50_000 | Quick -> 1_000_000 | Full -> 10_000_000

let ops = function Tiny -> 300 | Quick -> 2000 | Full -> 2000
let page_sizes = [ 4096; 8192; 16384; 32768 ]
