(* Fault-injection harness for the durability subsystem.

   A deterministic scenario — bulkload, then a committed stream of random
   inserts/updates/deletes with periodic checkpoints — is first run to
   completion ("golden run") to learn the log's byte layout and each
   operation's commit-record end offset.  The crash controller then turns
   the layout into injection points (record boundaries, torn mid-record
   tails, torn data-page write-backs), and the scenario is re-run once
   per point with the crash armed: the WAL truncates its durable stream
   exactly at the chosen byte and raises.  Recovery replays the durable
   log, the index handle is rebuilt from the recovered metadata, and a
   structural checker verifies the result is byte-consistent (pages
   match durable images) and key-complete (the key set equals the model
   applied to exactly the committed prefix of operations).

   Determinism is what makes the oracle non-circular: the expected
   committed prefix for a crash at byte [b] is computed from the golden
   run's commit offsets (#{i | commit_end(i) <= b}), never from what
   recovery happens to return. *)

open Fpb_btree_common
open Fpb_wal

type op = Ins of int * int | Del of int

(* bulk entries, operations, checkpoint interval, crash points per kind *)
let params = function
  | Scale.Tiny -> (800, 60, 20, 40)
  | Scale.Quick -> (4_000, 200, 50, 150)
  | Scale.Full -> (16_000, 500, 100, 400)

(* Small pages and a small pool so the scenario exercises evictions,
   deferred write-backs and multi-page log flushes, not just the happy
   path. *)
let page_size = 4096
let pool_pages = 96

let gen_ops rng pairs n =
  let existing () = fst pairs.(Fpb_workload.Prng.int rng (Array.length pairs)) in
  List.init n (fun _ ->
      let r = Fpb_workload.Prng.int rng 100 in
      if r < 45 then
        Ins (1 + Fpb_workload.Prng.int rng 0x3FFFFFFE, Fpb_workload.Prng.int rng 0xFFFF)
      else if r < 70 then Ins (existing (), Fpb_workload.Prng.int rng 0xFFFF)
      else Del (existing ()))

let apply idx = function
  | Ins (k, v) -> ignore (Index_sig.insert idx k v)
  | Del k -> ignore (Index_sig.delete idx k)

(* The committed key set after the first [c] operations. *)
let model_after pairs ops c =
  let m = Hashtbl.create 1024 in
  Array.iter (fun (k, v) -> Hashtbl.replace m k v) pairs;
  List.iteri
    (fun i op ->
      if i < c then
        match op with
        | Ins (k, v) -> Hashtbl.replace m k v
        | Del k -> Hashtbl.remove m k)
    ops;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [] |> List.sort compare

(* Run the scenario on a fresh system.  [crash_at] is armed only after
   [Wal.attach], so the attach-time checkpoint always completes; a crash
   byte inside it degenerates to a clean cut after it, which recovery
   handles identically.  Returns the system with the WAL still in
   whatever state the run ended in (completed or crashed). *)
let run_scenario kind pairs ops ~ckpt_every ~crash_at =
  let sys = Setup.make ~n_disks:2 ~pool_pages ~page_size () in
  let idx = Run.build sys kind pairs ~fill:0.8 in
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.Setup.pool in
  Wal.set_crash_at_byte wal crash_at;
  let commit_ends = Array.make (List.length ops + 1) max_int in
  (try
     List.iteri
       (fun i op ->
         let opn = i + 1 in
         apply idx op;
         Wal.commit wal ~op:opn ~meta:(Index_sig.meta idx);
         commit_ends.(opn) <- Wal.log_bytes wal;
         if ckpt_every > 0 && opn mod ckpt_every = 0 then
           Wal.checkpoint wal ~meta:(Index_sig.meta idx))
       ops
   with Wal.Crashed -> ());
  (sys, idx, wal, commit_ends)

type result = {
  kind : Setup.kind;
  points : int;  (* crash points exercised *)
  torn : int;  (* points that also tore a data page *)
  log_bytes : int;  (* golden-run log volume *)
  failures : (string * string) list;  (* (point label, what broke) *)
}

let check_point kind pairs ops ~ckpt_every ~expect point =
  let sys, idx, wal, _ =
    run_scenario kind pairs ops ~ckpt_every
      ~crash_at:(Some point.Crash.at_byte)
  in
  ignore sys;
  if not (Wal.is_crashed wal) then Wal.crash_now wal;
  let torn = point.Crash.tear && Wal.tear_last_writeback wal in
  let r = Wal.recover wal in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  if r.Wal.committed_ops <> expect point.Crash.at_byte then
    err "recovered %d committed ops, expected %d" r.Wal.committed_ops
      (expect point.Crash.at_byte);
  (match Wal.verify_images wal with
  | Ok () -> ()
  | Error m -> err "durable image check: %s" m);
  Index_sig.restore_meta idx r.Wal.meta;
  (try Index_sig.check idx
   with Failure m -> err "structural check: %s" m);
  let got = ref [] in
  Index_sig.iter idx (fun k v -> got := (k, v) :: !got);
  let got = List.sort compare !got in
  let committed = expect point.Crash.at_byte in
  let want = model_after pairs ops committed in
  if got <> want then
    err "key set mismatch: %d entries recovered, %d expected"
      (List.length got) (List.length want);
  (* Continue the workload past the crash: the committed Alloc/Free
     records restored the allocation map, so the recovered system must be
     able to keep running — re-apply the lost suffix of operations and
     require the final state to match the full model.  This is what makes
     recovery an availability property, not just a consistency one. *)
  (try
     List.iteri
       (fun i op ->
         let opn = i + 1 in
         if opn > committed then begin
           apply idx op;
           Wal.commit wal ~op:opn ~meta:(Index_sig.meta idx)
         end)
       ops;
     (try Index_sig.check idx
      with Failure m -> err "post-continuation structural check: %s" m);
     let got = ref [] in
     Index_sig.iter idx (fun k v -> got := (k, v) :: !got);
     let got = List.sort compare !got in
     let want = model_after pairs ops (List.length ops) in
     if got <> want then
       err "post-continuation key set mismatch: %d entries, %d expected"
         (List.length got) (List.length want)
   with e -> err "workload continuation raised: %s" (Printexc.to_string e));
  (torn, List.rev_map (fun m -> (point.Crash.label, m)) !errors)

let run_kind ?(seed = 42) scale kind =
  let n_bulk, n_ops, ckpt_every, max_points = params scale in
  let rng = Fpb_workload.Prng.create seed in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n_bulk in
  let ops = gen_ops rng pairs n_ops in
  (* Golden run: layout + per-op commit offsets, and a sanity check that
     the scenario itself is sound. *)
  let _sys, idx, wal, commit_ends =
    run_scenario kind pairs ops ~ckpt_every ~crash_at:None
  in
  Index_sig.check idx;
  let layout = Wal.layout wal in
  let log_bytes = Wal.log_bytes wal in
  let expect b =
    let c = ref 0 in
    Array.iteri (fun i e -> if i > 0 && e <= b then incr c) commit_ends;
    !c
  in
  let points = Crash.points ~max_points layout in
  let torn = ref 0 in
  let failures = ref [] in
  List.iter
    (fun p ->
      let tore, errs = check_point kind pairs ops ~ckpt_every ~expect p in
      if tore then incr torn;
      failures := !failures @ errs)
    points;
  {
    kind;
    points = List.length points;
    torn = !torn;
    log_bytes;
    failures = !failures;
  }

(* ---------------- shadow-paging flip-boundary sweep ------------------ *)

(* The byte-level sweep above cannot reach the shadow subsystem's
   metadata writes (table slots and superblocks live on their own disk,
   outside the WAL byte stream), so the flip boundaries get their own
   sweep: the same deterministic scenario runs with fuzzy checkpoints,
   and a [Shadow.crash_point] is armed on one chosen checkpoint — crash
   mid-writeback, with a partially written table, with a torn
   superblock, or after the flip but before the WAL checkpoint record.
   [Shadow.recover] must land on a complete (superblock, table) pair —
   falling back a generation past the damage — and replay to exactly the
   committed prefix.

   The oracle here is even simpler than the byte sweep's: the WAL runs
   with its default group-commit threshold of 0, so every commit is
   flushed before [Wal.commit] returns, and the expected committed
   prefix is just the last operation whose commit call completed before
   the armed crash fired. *)

module Shadow = Fpb_snapshot.Shadow

(* Crash points armed at each checkpoint ordinal.  [Table_partial
   max_int] persists the whole table but no superblock — the flip's
   publish never happened, same recovery class as a torn superblock. *)
let shadow_crash_points =
  [
    (Shadow.Writeback_partial 1, "writeback-partial-1");
    (Shadow.Writeback_partial 3, "writeback-partial-3");
    (Shadow.Table_partial 0, "table-empty");
    (Shadow.Table_partial 64, "table-torn");
    (Shadow.Table_partial max_int, "table-full-no-sb");
    (Shadow.Superblock_torn, "superblock-torn");
    (Shadow.After_flip, "after-flip");
  ]

(* Run the scenario with the shadow layer attached and fuzzy checkpoints
   (begin + bounded ticks) at the usual cadence; arm [crash_point] on
   the [crash_ckpt]-th one ([0] never arms).  Returns the system crashed
   (at the armed point, or via a power cut at the end if it never fired)
   plus the committed-op count the crash must preserve. *)
let run_shadow_scenario kind pairs ops ~ckpt_every ~crash_ckpt ~crash_point =
  let sys = Setup.make ~n_disks:2 ~pool_pages ~page_size () in
  let idx = Run.build sys kind pairs ~fill:0.8 in
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.Setup.pool in
  let shadow = Shadow.attach ~meta:(Index_sig.meta idx) wal sys.Setup.pool in
  let committed = ref 0 in
  let ckpt_no = ref 0 in
  (try
     List.iteri
       (fun i op ->
         let opn = i + 1 in
         apply idx op;
         Wal.commit wal ~op:opn ~meta:(Index_sig.meta idx);
         committed := opn;
         if ckpt_every > 0 && opn mod ckpt_every = 0 then begin
           incr ckpt_no;
           if !ckpt_no = crash_ckpt then
             Shadow.set_crash_point shadow (Some crash_point);
           Shadow.checkpoint_begin shadow;
           while
             not (Shadow.checkpoint_tick ~pages:4 shadow
                    ~meta:(Index_sig.meta idx))
           do
             ()
           done
         end)
       ops
   with Wal.Crashed -> ());
  if not (Wal.is_crashed wal) then Wal.crash_now wal;
  (sys, idx, shadow, !committed)

let check_shadow_point kind pairs ops ~ckpt_every ~crash_ckpt ~crash_point
    ~label =
  let _sys, idx, shadow, committed =
    run_shadow_scenario kind pairs ops ~ckpt_every ~crash_ckpt ~crash_point
  in
  let wal = Shadow.wal shadow in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  (try
     let r = Shadow.recover shadow in
     if r.Wal.committed_ops <> committed then
       err "recovered %d committed ops, expected %d" r.Wal.committed_ops
         committed;
     (match Wal.verify_images wal with
     | Ok () -> ()
     | Error m -> err "durable image check: %s" m);
     Index_sig.restore_meta idx r.Wal.meta;
     (try Index_sig.check idx
      with Failure m -> err "structural check: %s" m);
     let got = ref [] in
     Index_sig.iter idx (fun k v -> got := (k, v) :: !got);
     let got = List.sort compare !got in
     let want = model_after pairs ops committed in
     if got <> want then
       err "key set mismatch: %d entries recovered, %d expected"
         (List.length got) (List.length want);
     (* Availability: re-apply the lost suffix and take one more fuzzy
        checkpoint — the recovered mapping, free-block lists and
        generation chain must all still work. *)
     try
       List.iteri
         (fun i op ->
           let opn = i + 1 in
           if opn > committed then begin
             apply idx op;
             Wal.commit wal ~op:opn ~meta:(Index_sig.meta idx)
           end)
         ops;
       Shadow.checkpoint_sync shadow ~meta:(Index_sig.meta idx);
       (try Index_sig.check idx
        with Failure m -> err "post-continuation structural check: %s" m);
       let got = ref [] in
       Index_sig.iter idx (fun k v -> got := (k, v) :: !got);
       let got = List.sort compare !got in
       let want = model_after pairs ops (List.length ops) in
       if got <> want then
         err "post-continuation key set mismatch: %d entries, %d expected"
           (List.length got) (List.length want)
     with e -> err "workload continuation raised: %s" (Printexc.to_string e)
   with e -> err "recovery raised: %s" (Printexc.to_string e));
  List.rev_map (fun m -> (label, m)) !errors

let run_shadow_kind ?(seed = 42) scale kind =
  let n_bulk, n_ops, ckpt_every, _ = params scale in
  let rng = Fpb_workload.Prng.create seed in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n_bulk in
  let ops = gen_ops rng pairs n_ops in
  (* Golden run (no armed point): sanity-check the fuzzy scenario itself
     and learn how many checkpoints it takes. *)
  let _sys, idx, shadow, golden_committed =
    run_shadow_scenario kind pairs ops ~ckpt_every ~crash_ckpt:0
      ~crash_point:Shadow.After_flip
  in
  if golden_committed <> List.length ops then
    failwith "shadow golden run did not commit every operation";
  Index_sig.check idx;
  let log_bytes = Wal.log_bytes (Shadow.wal shadow) in
  let n_ckpts = if ckpt_every > 0 then List.length ops / ckpt_every else 0 in
  let failures = ref [] in
  let points = ref 0 in
  for c = 1 to n_ckpts do
    List.iter
      (fun (crash_point, name) ->
        incr points;
        let label = Printf.sprintf "ckpt%d/%s" c name in
        failures :=
          !failures
          @ check_shadow_point kind pairs ops ~ckpt_every ~crash_ckpt:c
              ~crash_point ~label)
      shadow_crash_points
  done;
  { kind; points = !points; torn = 0; log_bytes; failures = !failures }

(* ------------------- replication kill sweep -------------------------- *)

(* The headline replication oracle: kill the primary at EVERY record
   boundary of the golden log.  Under [Semi_sync k] promotion must
   preserve every client-acked commit (an op is acked once [Wal.commit]
   returns, which the semi-sync barrier delays until k replica acks
   cover its LSN — and the crash-cut record never ships, so a commit
   interrupted mid-flush was never acked).  Under [Async] the loss is
   exactly the unacked suffix: promotion lands on the most advanced
   replica's durable prefix, computed independently by the pure
   [node_durable_op] oracle at the kill horizon.  Either way the
   promoted state must pass the structural checker, match the model at
   the promoted op, and keep running (continuation + surviving-replica
   convergence). *)

module Replica = Fpb_replica.Replica
module Net = Fpb_replica.Net

let run_replica_scenario kind pairs ops ~ckpt_every ~mode ~crash_at =
  let sys = Setup.make ~n_disks:2 ~pool_pages ~page_size () in
  let idx = Run.build sys kind pairs ~fill:0.8 in
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.Setup.pool in
  let group =
    Replica.create
      ~config:{ Replica.default_config with Replica.mode }
      ~prng:(Fpb_workload.Prng.create 0xfa11)
      ~profiles:[ Net.default_profile; Net.default_profile ]
      (wal, sys.Setup.pool)
  in
  Wal.set_crash_at_byte wal crash_at;
  let commit_ends = Array.make (List.length ops + 1) max_int in
  let acked = ref 0 in
  (try
     List.iteri
       (fun i op ->
         let opn = i + 1 in
         apply idx op;
         Wal.commit wal ~op:opn ~meta:(Index_sig.meta idx);
         acked := opn;
         commit_ends.(opn) <- Wal.log_bytes wal;
         if ckpt_every > 0 && opn mod ckpt_every = 0 then
           Wal.checkpoint wal ~meta:(Index_sig.meta idx))
       ops
   with Wal.Crashed -> ());
  (sys, idx, wal, group, commit_ends, !acked)

let check_replica_point kind pairs ops ~ckpt_every ~mode ~expect point =
  let _sys, _idx, wal, group, _ends, acked =
    run_replica_scenario kind pairs ops ~ckpt_every ~mode
      ~crash_at:(Some point.Crash.at_byte)
  in
  if not (Wal.is_crashed wal) then Wal.crash_now wal;
  Replica.kill group;
  let horizon = Option.get (Replica.killed_at group) in
  let best_durable =
    let best = ref 0 in
    for i = 0 to Replica.n_nodes group - 1 do
      best :=
        max !best (Replica.node_durable_op group (Replica.node group i) ~horizon)
    done;
    !best
  in
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  if acked <> expect point.Crash.at_byte then
    err "scenario acked %d ops, golden layout expected %d" acked
      (expect point.Crash.at_byte);
  let p = Replica.promote group in
  (match mode with
  | Replica.Semi_sync _ ->
      if p.Replica.committed_op < acked then
        err "promotion lost %d acked commits (acked %d, promoted %d)"
          (acked - p.Replica.committed_op) acked p.Replica.committed_op
  | Replica.Async ->
      if p.Replica.committed_op <> best_durable then
        err "promotion op %d, most-advanced durable prefix is %d"
          p.Replica.committed_op best_durable;
      if p.Replica.committed_op > acked then
        err "promotion op %d ahead of the %d commits that ever returned"
          p.Replica.committed_op acked);
  let idx2 = Run.adopt kind p.Replica.pool ~meta:p.Replica.meta in
  (try Index_sig.check idx2
   with Failure m -> err "promoted structural check: %s" m);
  let got = ref [] in
  Index_sig.iter idx2 (fun k v -> got := (k, v) :: !got);
  let got = List.sort compare !got in
  let want = model_after pairs ops p.Replica.committed_op in
  if got <> want then
    err "promoted key set mismatch: %d entries, %d expected"
      (List.length got) (List.length want);
  (* Availability: the promoted primary re-applies the lost suffix and
     the surviving replica, re-baselined by [resume], must converge. *)
  (try
     let g2 = Replica.resume group p in
     List.iteri
       (fun i op ->
         let opn = i + 1 in
         if opn > p.Replica.committed_op then begin
           apply idx2 op;
           Wal.commit p.Replica.wal ~op:opn ~meta:(Index_sig.meta idx2)
         end)
       ops;
     (try Index_sig.check idx2
      with Failure m -> err "post-continuation structural check: %s" m);
     let got = ref [] in
     Index_sig.iter idx2 (fun k v -> got := (k, v) :: !got);
     let got = List.sort compare !got in
     let want = model_after pairs ops (List.length ops) in
     if got <> want then
       err "post-continuation key set mismatch: %d entries, %d expected"
         (List.length got) (List.length want);
     let survivor = Replica.node g2 0 in
     let synced = Replica.sync_node g2 ~horizon:max_int survivor in
     if synced <> List.length ops then
       err "surviving replica converged to op %d, expected %d" synced
         (List.length ops);
     Replica.detach g2
   with e -> err "continuation raised: %s" (Printexc.to_string e));
  List.rev_map (fun m -> (point.Crash.label, m)) !errors

let run_replica_kind ?(seed = 42) scale kind mode =
  let n_bulk, n_ops, ckpt_every, max_points = params scale in
  let rng = Fpb_workload.Prng.create seed in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n_bulk in
  let ops = gen_ops rng pairs n_ops in
  let _sys, idx, wal, group, commit_ends, golden_acked =
    run_replica_scenario kind pairs ops ~ckpt_every ~mode ~crash_at:None
  in
  if golden_acked <> List.length ops then
    failwith "replica golden run did not commit every operation";
  Index_sig.check idx;
  Replica.detach group;
  let layout = Wal.layout wal in
  let log_bytes = Wal.log_bytes wal in
  let expect b =
    let c = ref 0 in
    Array.iteri (fun i e -> if i > 0 && e <= b then incr c) commit_ends;
    !c
  in
  (* Every record boundary (mid-record cuts degenerate to the boundary
     below — the torn tail never shipped — so they add nothing here). *)
  let points = Crash.points ~mid_record:false ~tear_every:0 ~max_points layout in
  let failures = ref [] in
  List.iter
    (fun p ->
      failures :=
        !failures @ check_replica_point kind pairs ops ~ckpt_every ~mode ~expect p)
    points;
  { kind; points = List.length points; torn = 0; log_bytes;
    failures = !failures }

(* Run every index structure; returns results and a summary table.  Each
   kind appears four times: the WAL byte-boundary sweep, the shadow
   flip-boundary sweep, and the replication kill sweep under each
   durability mode. *)
let run_all ?seed scale =
  let results = List.map (run_kind ?seed scale) Setup.all_kinds in
  let shadow_results = List.map (run_shadow_kind ?seed scale) Setup.all_kinds in
  let replica_results mode =
    List.map (fun k -> run_replica_kind ?seed scale k mode) Setup.all_kinds
  in
  let replica_async = replica_results Replica.Async in
  let replica_semi = replica_results (Replica.Semi_sync 1) in
  let row name r =
    [
      name;
      Table.cell_i r.points;
      Table.cell_i r.torn;
      Table.cell_i r.log_bytes;
      Table.cell_i (List.length r.failures);
    ]
  in
  let rows =
    List.map (fun r -> row (Setup.kind_name r.kind) r) results
    @ List.map
        (fun r -> row (Setup.kind_name r.kind ^ " (shadow)") r)
        shadow_results
    @ List.map
        (fun r -> row (Setup.kind_name r.kind ^ " (replica async)") r)
        replica_async
    @ List.map
        (fun r -> row (Setup.kind_name r.kind ^ " (replica semi-sync)") r)
        replica_semi
  in
  let table =
    Table.make ~id:"crashtest"
      ~title:"Crash-recovery fault injection (checker failures must be 0)"
      ~header:[ "index"; "crash points"; "torn pages"; "log bytes"; "failures" ]
      rows
  in
  (results @ shadow_results @ replica_async @ replica_semi, table)
