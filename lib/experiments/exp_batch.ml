(* Extension experiment: batched level-wise descents with cross-probe
   prefetch pipelining (docs/BATCHING.md).

   The paper pipelines cache-line prefetches WITHIN one descent; this
   sweep measures what batching buys ACROSS descents: sort the batch,
   walk all probes level by level, fetch every node of a level once
   however many probes route through it, and prefetch the next level's
   frontier (cache lines and disk pages) while still searching the
   current one.

   Three tables:
     batch-a  batch size x index: back-to-back service rate of
              [search_batch] vs singleton [search] on all four indexes.
              Upper levels dedup (root fetched once per wave, not once
              per probe) and leaf misses overlap across the disk array,
              so Kops/s grows with the batch.
     batch-b  skew x fixed batch on the disk-first fpB+-Tree: sharing
              ([batch.dup_probes]/probe) grows with skew, and with it
              the batched speedup.
     batch-c  arrival discipline around capacity: one singleton server
              (open loop, per-op FIFO) vs the same server batching under
              the size-or-timeout rule ({!Fpb_workload.Batch}).  Below
              saturation batching pays a latency floor — an op waits for
              company — while past capacity the batched server's higher
              service rate keeps the backlog and the tail bounded. *)

open Fpb_btree_common
open Fpb_storage
module W = Fpb_workload
module Keygen = Fpb_workload.Keygen

let page_size = 4096
let n_disks = 4
let n_shards = 4
let fill = 0.8

let bulk_entries = function
  | Scale.Tiny -> 20_000
  | Scale.Quick -> 60_000
  | Scale.Full -> 200_000

(* Probes per cell; divisible by every swept batch size. *)
let total_probes = function
  | Scale.Tiny -> 768
  | Scale.Quick -> 4_096
  | Scale.Full -> 16_384

let batch_sizes = function
  | Scale.Tiny -> [ 1; 8; 32 ]
  | Scale.Quick | Scale.Full -> [ 1; 4; 8; 16; 32; 64 ]

let zipf = Keygen.Zipfian { theta = Keygen.default_theta; scrambled = true }

(* Pool sized to a quarter of the tree (probe build per index kind), so
   leaf descents miss and the cross-probe disk pipeline has work to
   hide; floored so descents and prefetchers always find free frames. *)
let pool_pages_for scale kind =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks ~page_size () in
  let idx = Run.build sys kind pairs ~fill in
  max 24 (Index_sig.page_count idx / 4)

(* A fresh system, bulkloaded index, probe key stream and warm pool per
   cell, so cells never contaminate each other.  The probe keys are
   drawn up front (one rng, fixed seed): every cell of a row answers the
   exact same lookups in the exact same order, whatever the batch size. *)
let with_index scale kind ~pool_pages ~dist k =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks ~pool_pages ~n_shards ~page_size () in
  let idx = Run.build sys kind pairs ~fill in
  let n = Array.length pairs in
  let np = total_probes scale in
  let krng = W.Prng.create 7777 in
  let keys = Array.make np 0 in
  for i = 0 to np - 1 do
    keys.(i) <- fst pairs.(W.Keygen.draw_pos dist krng ~n)
  done;
  (* Warm pass under the cell's distribution so measurement starts from
     that popularity profile's steady-state pool contents. *)
  let wrng = W.Prng.create 555 in
  for _ = 1 to 2 * pool_pages do
    ignore (Index_sig.search idx (fst pairs.(W.Keygen.draw_pos dist wrng ~n)))
  done;
  Buffer_pool.reset_stats sys.Setup.pool;
  let r = k sys idx keys in
  Index_sig.check idx;
  r

type cell = {
  ops_per_s : float;
  ns_per_op : float;
  level0 : int;  (* root accesses: ~probes/batch once batching kicks in *)
  shared : int;  (* batch.shared_nodes delta *)
  dups : int;  (* batch.dup_probes delta *)
  stalls : int;  (* batch.pipeline_stalls delta *)
  hit_pct : float;
}

let batch_counters () =
  ( Fpb_obs.Counter.value Batch_stats.shared_nodes,
    Fpb_obs.Counter.value Batch_stats.dup_probes,
    Fpb_obs.Counter.value Batch_stats.pipeline_stalls )

(* Back-to-back service rate: the probe stream cut into groups of [b]
   ([b = 1] runs the singleton discipline, the pre-batching baseline). *)
let service_cell scale kind ~pool_pages ~dist b =
  with_index scale kind ~pool_pages ~dist (fun sys idx keys ->
      let np = Array.length keys in
      Index_sig.reset_level_accesses idx;
      let sh0, dp0, st0 = batch_counters () in
      let expect = Array.map (fun k -> Index_sig.search idx k) keys in
      Buffer_pool.reset_stats sys.Setup.pool;
      Index_sig.reset_level_accesses idx;
      let ns =
        Setup.measure_sim_time sys (fun () ->
            let i = ref 0 in
            while !i < np do
              let k = min b (np - !i) in
              if k = 1 then ignore (Index_sig.search idx keys.(!i))
              else begin
                let got = Index_sig.search_batch idx (Array.sub keys !i k) in
                for j = 0 to k - 1 do
                  assert (got.(j) = expect.(!i + j))
                done
              end;
              i := !i + k
            done)
      in
      let sh1, dp1, st1 = batch_counters () in
      let p = Buffer_pool.stats sys.Setup.pool in
      let v = Fpb_obs.Counter.value in
      let hits = v p.Buffer_pool.hits and misses = v p.Buffer_pool.misses in
      {
        ops_per_s =
          (if ns = 0 then 0. else float_of_int np *. 1e9 /. float_of_int ns);
        ns_per_op = float_of_int ns /. float_of_int (max 1 np);
        level0 = (Index_sig.level_accesses idx).(0);
        shared = sh1 - sh0;
        dups = dp1 - dp0;
        stalls = st1 - st0;
        hit_pct =
          100. *. float_of_int hits /. float_of_int (max 1 (hits + misses));
      })

let record prefix c =
  Telemetry.add (prefix ^ ".ops_per_s") (int_of_float c.ops_per_s);
  Telemetry.add (prefix ^ ".level0_accesses") c.level0;
  Telemetry.add (prefix ^ ".shared_nodes") c.shared;
  Telemetry.add (prefix ^ ".dup_probes") c.dups;
  Telemetry.add (prefix ^ ".pipeline_stalls") c.stalls;
  c

(* Table batch-a: batch size x index, Zipfian probes. *)
let size_sweep scale =
  let sizes = batch_sizes scale in
  let rows =
    List.concat_map
      (fun kind ->
        let pool_pages = pool_pages_for scale kind in
        let slug = Run.slug (Setup.kind_name kind) in
        List.map
          (fun b ->
            let c =
              record
                (Printf.sprintf "batch.a.%s.b%d" slug b)
                (service_cell scale kind ~pool_pages ~dist:zipf b)
            in
            [
              Setup.kind_name kind;
              string_of_int b;
              Table.cell_f (c.ops_per_s /. 1e3);
              Table.cell_i (int_of_float c.ns_per_op);
              Table.cell_i c.level0;
              Table.cell_i c.shared;
              Table.cell_i c.dups;
              Table.cell_i c.stalls;
              Table.cell_f c.hit_pct;
            ])
          sizes)
      Setup.all_kinds
  in
  Table.make ~id:"batch-a"
    ~title:
      (Printf.sprintf
         "Batched vs singleton search, batch size sweep (%d Zipfian probes, \
          4KB pages, pool = tree/4, %d disks; B=1 is the singleton descent \
          discipline).  Root accesses drop to probes/B and shared upper \
          levels are fetched once per wave"
         (total_probes scale) n_disks)
    ~header:
      [
        "index"; "B"; "Kops/s"; "ns/op"; "root accesses"; "shared nodes";
        "dup probes"; "stalls"; "pool hit %";
      ]
    rows

(* Table batch-b: skew sweep at a fixed batch on the disk-first tree. *)
let skew_sweep scale =
  let b = 16 in
  let pool_pages = pool_pages_for scale Setup.Disk_first in
  let dists =
    [
      Keygen.Uniform;
      Keygen.Zipfian { theta = 0.5; scrambled = true };
      Keygen.Zipfian { theta = 0.8; scrambled = true };
      zipf;
      Keygen.Hotspot { hot_frac = 0.2; hot_op_frac = 0.8 };
    ]
  in
  let rows =
    List.map
      (fun dist ->
        let slug = Run.slug (Keygen.dist_name dist) in
        let s1 = service_cell scale Setup.Disk_first ~pool_pages ~dist 1 in
        let cb =
          record
            (Printf.sprintf "batch.b.%s" slug)
            (service_cell scale Setup.Disk_first ~pool_pages ~dist b)
        in
        let speedup = cb.ops_per_s /. max 1. s1.ops_per_s in
        Telemetry.add
          (Printf.sprintf "batch.b.%s.speedup_pct" slug)
          (int_of_float (100. *. speedup));
        [
          Keygen.dist_name dist;
          Table.cell_f (s1.ops_per_s /. 1e3);
          Table.cell_f (cb.ops_per_s /. 1e3);
          Table.cell_f speedup;
          Table.cell_f
            (float_of_int cb.dups /. float_of_int (total_probes scale));
          Table.cell_f cb.hit_pct;
        ])
      dists
  in
  Table.make ~id:"batch-b"
    ~title:
      (Printf.sprintf
         "Skew sweep at B=%d (disk-first fpB+tree): skew concentrates probes \
          onto shared nodes, so in-wave sharing — and with it the batched \
          speedup — grows with skew"
         b)
    ~header:
      [
        "distribution"; "B=1 Kops/s"; "batched Kops/s"; "speedup";
        "dup probes/op"; "pool hit %";
      ]
    rows

(* Table batch-c: arrival discipline around capacity. *)
type arr_cell = {
  label : string;
  offered : float;
  tput : float;
  latency : Fpb_obs.Histogram.t;
  backlog : int;
  mean_batch : float option;
}

let record_arr c =
  let slug =
    String.map (function ' ' -> '-' | ch -> ch) (String.lowercase_ascii c.label)
  in
  let pc p = Fpb_obs.Histogram.percentile c.latency p in
  Telemetry.add
    (Printf.sprintf "batch.c.%s.offered_ops_per_s" slug)
    (int_of_float c.offered);
  Telemetry.add
    (Printf.sprintf "batch.c.%s.ops_per_s" slug)
    (int_of_float c.tput);
  Telemetry.add (Printf.sprintf "batch.c.%s.p50_ns" slug) (pc 50.);
  Telemetry.add (Printf.sprintf "batch.c.%s.p99_ns" slug) (pc 99.);
  Telemetry.add (Printf.sprintf "batch.c.%s.max_backlog" slug) c.backlog;
  c

let open_single scale ~pool_pages ~label ~rate =
  with_index scale Setup.Disk_first ~pool_pages ~dist:zipf (fun sys idx keys ->
      let np = Array.length keys in
      let s =
        W.Arrival.run ~sim:sys.Setup.sim ~n_clients:1 ~n_ops:np
          ~rate_ops_per_s:rate (fun ~client:_ ~seq ->
            ignore (Index_sig.search idx keys.(seq)))
      in
      record_arr
        {
          label;
          offered = s.W.Arrival.offered_ops_per_s;
          tput = s.W.Arrival.throughput_ops_per_s;
          latency = s.W.Arrival.latency;
          backlog = s.W.Arrival.max_backlog;
          mean_batch = None;
        })

let open_batched scale ~pool_pages ~label ~rate ~batch ~batch_wait_ns =
  with_index scale Setup.Disk_first ~pool_pages ~dist:zipf (fun sys idx keys ->
      let np = Array.length keys in
      let s =
        W.Batch.run ~sim:sys.Setup.sim ~n_ops:np ~rate_ops_per_s:rate ~batch
          ~batch_wait_ns (fun seqs ->
            ignore
              (Index_sig.search_batch idx
                 (Array.map (fun seq -> keys.(seq)) seqs)))
      in
      record_arr
        {
          label;
          offered = s.W.Batch.offered_ops_per_s;
          tput = s.W.Batch.throughput_ops_per_s;
          latency = s.W.Batch.latency;
          backlog = s.W.Batch.max_backlog;
          mean_batch = Some s.W.Batch.mean_batch;
        })

let arrival_sweep scale =
  let pool_pages = pool_pages_for scale Setup.Disk_first in
  (* Capacity of the singleton server: its back-to-back service rate. *)
  let cap =
    max 1. (service_cell scale Setup.Disk_first ~pool_pages ~dist:zipf 1).ops_per_s
  in
  (* Long enough to gather a near-full batch at the low offered rate. *)
  let batch_wait_ns = int_of_float (16. *. 1e9 /. cap) in
  let cells =
    List.concat_map
      (fun pct ->
        let rate = cap *. float_of_int pct /. 100. in
        open_single scale ~pool_pages
          ~label:(Printf.sprintf "single r%d" pct)
          ~rate
        :: List.map
             (fun b ->
               open_batched scale ~pool_pages
                 ~label:(Printf.sprintf "b%d r%d" b pct)
                 ~rate ~batch:b ~batch_wait_ns)
             [ 8; 32 ])
      [ 40; 110 ]
  in
  let row c =
    [
      c.label;
      Table.cell_f (c.offered /. 1e3);
      Table.cell_f (c.tput /. 1e3);
      Table.cell_i (Fpb_obs.Histogram.percentile c.latency 50.);
      Table.cell_i (Fpb_obs.Histogram.percentile c.latency 99.);
      Table.cell_i c.backlog;
      (match c.mean_batch with None -> "-" | Some m -> Table.cell_f m);
    ]
  in
  Table.make ~id:"batch-c"
    ~title:
      (Printf.sprintf
         "Open-loop arrival discipline around singleton capacity (%.1f \
          Kops/s, one server, size-or-timeout wait %d ns): below saturation \
          batching pays a latency floor waiting for company; past capacity \
          its higher service rate bounds backlog and tail"
         (cap /. 1e3) batch_wait_ns)
    ~header:
      [
        "driver"; "offered Kops/s"; "Kops/s"; "p50"; "p99"; "max backlog";
        "mean batch";
      ]
    (List.map row cells)

let run scale =
  (* The batch.* instruments are process-global: reset so reruns in one
     process (determinism tests) see identical deltas. *)
  Batch_stats.reset ();
  let tables = [ size_sweep scale; skew_sweep scale; arrival_sweep scale ] in
  Telemetry.add_kv (Batch_stats.kv ());
  tables
