(* Extension experiment: sharp vs shadow-paging fuzzy checkpoints.

   The WAL's sharp checkpoint stalls every writer for a whole-pool
   write-back plus a data-durability barrier; the shadow-paging layer
   ({!Fpb_snapshot.Shadow}) spreads the write-back across foreground
   operations and stalls only for the superblock flip.  Three tables:

     checkpoint-a  the same open-loop YCSB-A workload (fixed arrival
                   rate below capacity) run with no checkpoints, sharp
                   checkpoints, and fuzzy checkpoints at the same
                   cadence.  Open loop is the discipline that exposes
                   stalls: arrivals keep coming while the pool drains,
                   so a sharp checkpoint's pause lands in the latency
                   tail of every queued operation.  Fuzzy checkpointing
                   must beat sharp on p99.

     checkpoint-b  what checkpoints buy at reboot: the same committed
                   workload recovered through the WAL alone (replay
                   scans the whole history since attach) vs through the
                   shadow table's cut (replay bounded by the work since
                   the last flip).

     checkpoint-c  what the flip's published image buys while running: a
                   snapshot pinned at a checkpoint serves byte-identical
                   frozen pages while the same system keeps applying
                   updates and flipping further checkpoints beside it. *)

open Fpb_btree_common
open Fpb_storage
open Fpb_wal
module W = Fpb_workload
module Shadow = Fpb_snapshot.Shadow
module Histogram = Fpb_obs.Histogram

let page_size = 4096
let n_disks = 4
let n_shards = 4

(* Strict durability (no group commit): every commit forces the log, so
   the fuzzy pass's per-page log-force precondition is already met and
   the cells differ only in their checkpoint policy.  With a large group
   window the comparison would mostly measure who happens to pay the
   batched log forces. *)
let group_commit_bytes = 0
let fill = 0.8

let bulk_entries = function
  | Scale.Tiny -> 20_000
  | Scale.Quick -> 60_000
  | Scale.Full -> 200_000

let total_ops = function
  | Scale.Tiny -> 600
  | Scale.Quick -> 4_000
  | Scale.Full -> 16_000

let base_clients = function Scale.Tiny -> 4 | Scale.Quick | Scale.Full -> 8

(* Checkpoint cadence: ~4 checkpoints over the measured run, so the
   stalls are a recurring feature of the workload, not a one-off. *)
let ckpt_interval scale = max 1 (total_ops scale / 4)

(* Pool sized to half the tree (same probe as the YCSB experiment): the
   checkpoint write-back has real work to do because the pool holds real
   dirt. *)
let tree_pool_pages scale =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks ~page_size () in
  let idx = Run.build sys Setup.Disk_first pairs ~fill in
  max 24 (Index_sig.page_count idx / 2)

type system = {
  sys : Setup.system;
  idx : Index_sig.instance;
  wal : Wal.t;
  shadow : Shadow.t option;
  gen : W.Mix.gen;
  commit : unit -> unit;
  committed : int ref;
}

(* A fresh system + YCSB-A generator per cell (updates are what make
   checkpoints matter), warmed to the steady-state pool contents. *)
let with_system scale ~pool_pages ~shadow k =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks ~pool_pages ~n_shards ~page_size () in
  let idx = Run.build sys Setup.Disk_first pairs ~fill in
  let wal =
    Wal.attach ~group_commit_bytes ~meta:(Index_sig.meta idx) sys.Setup.pool
  in
  let shadow =
    if shadow then Some (Shadow.attach ~meta:(Index_sig.meta idx) wal sys.Setup.pool)
    else None
  in
  let mix = W.Mix.a in
  let dist = W.Mix.default_dist mix in
  let gen = W.Mix.generator ~dist ~seed:31337 mix pairs in
  let warm_rng = W.Prng.create 555 in
  let n = Array.length pairs in
  for _ = 1 to 2 * pool_pages do
    ignore
      (Index_sig.search idx (fst pairs.(W.Keygen.draw_pos dist warm_rng ~n)))
  done;
  Buffer_pool.reset_stats sys.Setup.pool;
  let committed = ref 0 in
  let commit () =
    incr committed;
    Wal.commit wal ~op:!committed ~meta:(Index_sig.meta idx)
  in
  let r = k { sys; idx; wal; shadow; gen; commit; committed } in
  Index_sig.check idx;
  r

(* ------------------- checkpoint-a: writer stalls --------------------- *)

type policy = No_ckpt | Sharp | Fuzzy

let policy_name = function
  | No_ckpt -> "none"
  | Sharp -> "sharp"
  | Fuzzy -> "fuzzy"

(* Closed-loop capacity of the (checkpoint-free) system: the open-loop
   cells all offer the same fraction of it, so the only difference
   between them is the checkpoint policy. *)
let capacity scale ~pool_pages =
  with_system scale ~pool_pages ~shadow:false (fun s ->
      let op ~client:(_ : int) ~seq:(_ : int) =
        W.Mix.execute s.idx ~commit:s.commit (W.Mix.next s.gen)
      in
      let n_clients = base_clients scale in
      let st =
        W.Clients.run ~sim:s.sys.Setup.sim ~n_clients
          ~ops_per_client:(total_ops scale / n_clients)
          op
      in
      st.W.Clients.throughput_ops_per_s)

type policy_cell = {
  policy : policy;
  ckpts : int;  (* checkpoints completed during the run *)
  latency : Histogram.t;
  max_backlog : int;
  max_stall_ns : int;  (* worst single stall the policy charged *)
}

let run_policy scale ~pool_pages ~rate policy =
  with_system scale ~pool_pages ~shadow:(policy = Fuzzy) (fun s ->
      let interval = ckpt_interval scale in
      let ckpts = ref 0 in
      let meta () = Index_sig.meta s.idx in
      let op ~client:(_ : int) ~seq =
        W.Mix.execute s.idx ~commit:s.commit (W.Mix.next s.gen);
        match (policy, s.shadow) with
        | Sharp, _ ->
            if (seq + 1) mod interval = 0 then begin
              Wal.checkpoint s.wal ~meta:(meta ());
              incr ckpts
            end
        | Fuzzy, Some sh ->
            (* the write-back rides along a few pages per operation; a
               new pass starts only once the previous one flipped *)
            if Shadow.checkpoint_in_progress sh then begin
              if Shadow.checkpoint_tick ~pages:2 sh ~meta:(meta ()) then
                incr ckpts
            end
            else if (seq + 1) mod interval = 0 then
              Shadow.checkpoint_begin sh
        | _ -> ()
      in
      let st =
        W.Arrival.run ~sim:s.sys.Setup.sim ~n_clients:(base_clients scale)
          ~n_ops:(total_ops scale) ~rate_ops_per_s:rate op
      in
      (* a pass begun near the end of the run has no later operations to
         tick it home; drain it outside the measured window so every
         policy completes the same number of checkpoints *)
      (match s.shadow with
      | Some sh when Shadow.checkpoint_in_progress sh ->
          while not (Shadow.checkpoint_tick ~pages:max_int sh ~meta:(meta ())) do
            ()
          done;
          incr ckpts
      | _ -> ());
      let max_stall_ns =
        match (policy, s.shadow) with
        | Sharp, _ -> Histogram.max_value (Wal.checkpoint_stall s.wal)
        | Fuzzy, Some sh -> Histogram.max_value (Shadow.flip_stall sh)
        | _ -> 0
      in
      (match s.shadow with
      | Some sh -> Telemetry.add_kv (Shadow.kv sh)
      | None -> ());
      {
        policy;
        ckpts = !ckpts;
        latency = st.W.Arrival.latency;
        max_backlog = st.W.Arrival.max_backlog;
        max_stall_ns;
      })

let policy_table scale ~pool_pages =
  let cap = capacity scale ~pool_pages in
  let rate = cap *. 0.8 in
  let cells =
    List.map (run_policy scale ~pool_pages ~rate) [ No_ckpt; Sharp; Fuzzy ]
  in
  List.iter
    (fun c ->
      let name = policy_name c.policy in
      let pc p = Histogram.percentile c.latency p in
      Telemetry.add (Printf.sprintf "ckpt.%s.p50_ns" name) (pc 50.);
      Telemetry.add (Printf.sprintf "ckpt.%s.p99_ns" name) (pc 99.);
      Telemetry.add (Printf.sprintf "ckpt.%s.p999_ns" name) (pc 99.9);
      Telemetry.add (Printf.sprintf "ckpt.%s.max_stall_ns" name) c.max_stall_ns;
      Telemetry.add
        (Printf.sprintf "ckpt.%s.max_backlog" name)
        c.max_backlog)
    cells;
  let rows =
    List.map
      (fun c ->
        let pc p = Histogram.percentile c.latency p in
        [
          policy_name c.policy;
          Table.cell_i c.ckpts;
          Table.cell_i (pc 50.);
          Table.cell_i (pc 99.);
          Table.cell_i (pc 99.9);
          Table.cell_i c.max_stall_ns;
          Table.cell_i c.max_backlog;
        ])
      cells
  in
  Table.make ~id:"checkpoint-a"
    ~title:
      (Printf.sprintf
         "Writer stalls under checkpointing: YCSB-A open loop at 80%% of \
          capacity (%.1f Kops/s offered, %d ops, ~%d checkpoints; latency \
          in simulated ns).  Sharp stalls the pool per checkpoint; fuzzy \
          spreads the write-back and stalls only for the superblock flip"
         (rate /. 1e3) (total_ops scale)
         (total_ops scale / ckpt_interval scale))
    ~header:
      [ "policy"; "ckpts"; "p50"; "p99"; "p999"; "max stall ns";
        "max backlog" ]
    rows

(* -------------------- checkpoint-b: replay bound --------------------- *)

type replay_cell = {
  r_label : string;
  r_committed : int;
  r_scanned : int;
  r_redo : int;
  r_log_bytes : int;
  r_recovery_ns : int;
}

let run_replay scale ~pool_pages ~fuzzy =
  with_system scale ~pool_pages ~shadow:fuzzy (fun s ->
      let interval = ckpt_interval scale in
      let meta () = Index_sig.meta s.idx in
      for seq = 0 to total_ops scale - 1 do
        W.Mix.execute s.idx ~commit:s.commit (W.Mix.next s.gen);
        match s.shadow with
        | Some sh ->
            if Shadow.checkpoint_in_progress sh then
              ignore (Shadow.checkpoint_tick ~pages:2 sh ~meta:(meta ()))
            else if (seq + 1) mod interval = 0 then Shadow.checkpoint_begin sh
        | None -> ()
      done;
      (* group commit may still hold acknowledged records; make every
         commit durable so both cells recover the same prefix *)
      Wal.flush s.wal;
      let log_bytes = Wal.log_bytes s.wal in
      let expect = !(s.committed) in
      Wal.crash_now s.wal;
      let r =
        match s.shadow with
        | Some sh -> Shadow.recover sh
        | None -> Wal.recover s.wal
      in
      if r.Wal.committed_ops <> expect then
        failwith
          (Printf.sprintf "checkpoint-b: recovered %d ops, committed %d"
             r.Wal.committed_ops expect);
      Index_sig.restore_meta s.idx r.Wal.meta;
      let label = if fuzzy then "fuzzy ckpts" else "wal only" in
      Telemetry.add
        (Printf.sprintf "recovery.%s.scanned_records"
           (if fuzzy then "fuzzy" else "walonly"))
        r.Wal.scanned_records;
      Telemetry.add
        (Printf.sprintf "recovery.%s.recovery_ns"
           (if fuzzy then "fuzzy" else "walonly"))
        r.Wal.recovery_ns;
      {
        r_label = label;
        r_committed = r.Wal.committed_ops;
        r_scanned = r.Wal.scanned_records;
        r_redo = r.Wal.redo_records;
        r_log_bytes = log_bytes;
        r_recovery_ns = r.Wal.recovery_ns;
      })

let replay_table scale ~pool_pages =
  let cells =
    [
      run_replay scale ~pool_pages ~fuzzy:false;
      run_replay scale ~pool_pages ~fuzzy:true;
    ]
  in
  let rows =
    List.map
      (fun c ->
        [
          c.r_label;
          Table.cell_i c.r_committed;
          Table.cell_i c.r_log_bytes;
          Table.cell_i c.r_scanned;
          Table.cell_i c.r_redo;
          Table.cell_i c.r_recovery_ns;
        ])
      cells
  in
  Table.make ~id:"checkpoint-b"
    ~title:
      "Replay bound at reboot: the same committed workload recovered \
       through the full WAL history vs from the shadow table's cut \
       (replay covers only the work since the last flip)"
    ~header:
      [ "recovery"; "committed"; "log bytes"; "scanned recs"; "redo recs";
        "recovery ns" ]
    rows

(* --------------- checkpoint-c: snapshot beside updates --------------- *)

let snapshot_table scale ~pool_pages =
  with_system scale ~pool_pages ~shadow:true (fun s ->
      let sh = Option.get s.shadow in
      let interval = ckpt_interval scale in
      let meta () = Index_sig.meta s.idx in
      let n_ops = total_ops scale in
      (* settle, then publish the checkpoint the snapshot will pin *)
      for _ = 1 to n_ops / 4 do
        W.Mix.execute s.idx ~commit:s.commit (W.Mix.next s.gen)
      done;
      Shadow.checkpoint_sync sh ~meta:(meta ());
      let store = Buffer_pool.store s.sys.Setup.pool in
      let snap = Shadow.open_at_checkpoint sh in
      (* between operations the store's bytes ARE the committed state:
         this copy is the independent oracle the frozen reads must match *)
      let live = ref [] in
      Page_store.iter_live store (fun id -> live := id :: !live);
      let expected =
        List.map (fun id -> (id, Bytes.copy (Page_store.bytes store id))) !live
      in
      for seq = 1 to 3 * n_ops / 4 do
        W.Mix.execute s.idx ~commit:s.commit (W.Mix.next s.gen);
        if seq mod interval = 0 then Shadow.checkpoint_sync sh ~meta:(meta ())
      done;
      let mismatches = ref 0 in
      let missing = ref 0 in
      List.iter
        (fun (id, want) ->
          match Shadow.read snap id with
          | Some got -> if not (Bytes.equal got want) then incr mismatches
          | None -> incr missing)
        expected;
      let gens_during = List.length (Shadow.retained_generations sh) in
      Shadow.close snap;
      let kv = Shadow.kv sh in
      let g name = Option.value ~default:0 (List.assoc_opt name kv) in
      Telemetry.add "snapshot.frozen_pages" (List.length expected);
      Telemetry.add "snapshot.mismatches" !mismatches;
      Telemetry.add "snapshot.missing" !missing;
      Telemetry.add_kv kv;
      Table.make ~id:"checkpoint-c"
        ~title:
          (Printf.sprintf
             "Snapshot beside updates: a snapshot pinned at a checkpoint, \
              then %d YCSB-A operations and %d more checkpoints; every \
              frozen page must read back byte-identical (mismatches must \
              be 0)"
             (3 * n_ops / 4)
             (3 * n_ops / 4 / interval))
        ~header:
          [
            "frozen pages"; "mismatches"; "missing"; "remaps";
            "blocks alloc"; "blocks freed"; "captures"; "gens retained";
          ]
        [
          [
            Table.cell_i (List.length expected);
            Table.cell_i !mismatches;
            Table.cell_i !missing;
            Table.cell_i (g "pagemap.remaps");
            Table.cell_i (g "pagemap.blocks_allocated");
            Table.cell_i (g "pagemap.blocks_freed");
            Table.cell_i (g "ckpt.captures");
            Table.cell_i gens_during;
          ];
        ])

let run scale =
  let pool_pages = tree_pool_pages scale in
  [
    policy_table scale ~pool_pages;
    replay_table scale ~pool_pages;
    snapshot_table scale ~pool_pages;
  ]
