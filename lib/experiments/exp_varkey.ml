(* Extension experiment: variable-length keys (the paper defers these to
   its full version).  Compares the slotted baseline B+-Tree against the
   varkey disk-first fpB+-Tree on search and insert cycles for several key
   lengths, checking that the paper's fixed-key conclusions carry over. *)


let keys rng n ~len =
  (* sorted distinct fixed-length-ish random strings *)
  let tbl = Hashtbl.create (2 * n) in
  while Hashtbl.length tbl < n do
    let k =
      String.init len (fun _ -> Char.chr (97 + Fpb_workload.Prng.int rng 26))
    in
    Hashtbl.replace tbl k ()
  done;
  let arr = Array.of_seq (Hashtbl.to_seq_keys tbl) in
  Array.sort compare arr;
  Array.mapi (fun i k -> (k, i)) arr

let run scale =
  let n = match scale with Scale.Tiny -> 20_000 | Quick -> 60_000 | Full -> 300_000 in
  let ops = 2000 in
  let rows =
    List.map
      (fun len ->
        let rng = Fpb_workload.Prng.create 909 in
        let pairs = keys rng n ~len in
        let probes = Array.init ops (fun _ -> fst pairs.(Fpb_workload.Prng.int rng n)) in
        let inserts =
          Array.init ops (fun _ ->
              String.init (len + 1) (fun _ ->
                  Char.chr (97 + Fpb_workload.Prng.int rng 26)))
        in
        let measure build search insert =
          let sys = Setup.make ~page_size:16384 () in
          let t = build sys in
          let m1 =
            Setup.measure_cycles sys (fun () -> Array.iter (search t) probes)
          in
          let m2 =
            Setup.measure_cycles sys (fun () -> Array.iter (insert t) inserts)
          in
          (m1.Setup.total, m2.Setup.total)
        in
        let bs, bi =
          measure
            (fun sys ->
              let t = Fpb_varkey.Vk_btree.create sys.Setup.pool in
              Fpb_varkey.Vk_btree.bulkload t pairs ~fill:1.0;
              t)
            (fun t k -> ignore (Fpb_varkey.Vk_btree.search t k))
            (fun t k -> ignore (Fpb_varkey.Vk_btree.insert t k 1))
        in
        let fs, fi =
          measure
            (fun sys ->
              let t = Fpb_varkey.Vk_disk_first.create ~avg_key_len:len sys.Setup.pool in
              Fpb_varkey.Vk_disk_first.bulkload t pairs ~fill:1.0;
              t)
            (fun t k -> ignore (Fpb_varkey.Vk_disk_first.search t k))
            (fun t k -> ignore (Fpb_varkey.Vk_disk_first.insert t k 1))
        in
        [
          string_of_int len;
          Table.cell_mcycles bs;
          Table.cell_mcycles fs;
          Table.cell_f (float_of_int bs /. float_of_int fs);
          Table.cell_mcycles bi;
          Table.cell_mcycles fi;
          Table.cell_f (float_of_int bi /. float_of_int fi);
        ])
      [ 8; 20; 40 ]
  in
  Table.make ~id:"ext-varkey"
    ~title:
      (Printf.sprintf
         "Extension: variable-length keys, %d keys, %d ops (Mcycles, 16KB)" n ops)
    ~header:
      [
        "key len"; "B+tree search"; "fpB+ search"; "speedup";
        "B+tree insert"; "fpB+ insert"; "speedup";
      ]
    rows
