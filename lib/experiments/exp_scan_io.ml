(* Figure 18: range-scan I/O performance on the multi-disk model.  Mature
   trees (bulkload 90% of the keys, insert the rest, so leaf pages are no
   longer sequential on disk), 16KB pages.

   (a) execution time vs. range size on 10 disks;
   (b) execution time vs. number of disks for a large range;
   (c) the corresponding speed-ups. *)

open Fpb_btree_common

let build scale ~n_disks kind =
  let n = Scale.io_entries scale in
  let rng = Fpb_workload.Prng.create 8008 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let sys, idx =
    Run.fresh_mature ~page_size:16384 ~n_disks ~seed:80 kind pairs
      ~bulk_frac:0.9 ~fill:1.0
  in
  (sys, idx, pairs)

(* One scan of [span] entries from a cold pool; returns simulated ns. *)
let scan_time sys idx pairs ~span ~prefetch ~trial =
  let rng = Fpb_workload.Prng.create (9000 + trial) in
  let a, b =
    (Fpb_workload.Keygen.ranges rng pairs 1 ~span).(0)
  in
  Fpb_storage.Buffer_pool.clear sys.Setup.pool;
  Fpb_storage.Disk_model.quiesce sys.Setup.disks;
  (* steady state: nonleaf levels are resident (the paper's observation for
     small ranges relies on this) *)
  ignore (Index_sig.search idx a);
  Setup.measure_sim_time sys (fun () ->
      ignore (Index_sig.range_scan idx ~prefetch ~start_key:a ~end_key:b (fun _ _ -> ())))

let fig18a scale =
  let spans =
    match scale with
    | Scale.Tiny -> [ 100; 1000; 10_000 ]
    | Quick -> [ 100; 1000; 10_000; 100_000; 500_000 ]
    | Full -> [ 100; 1000; 10_000; 100_000; 1_000_000; 5_000_000 ]
  in
  let trials = 3 in
  let kinds =
    [ (Setup.Disk_opt, false); (Setup.Disk_first, true); (Setup.Cache_first, true) ]
  in
  let built = List.map (fun (k, pf) -> (k, pf, build scale ~n_disks:10 k)) kinds in
  let rows =
    List.map
      (fun span ->
        string_of_int span
        :: List.map
             (fun (_, pf, (sys, idx, pairs)) ->
               let total = ref 0 in
               for trial = 1 to trials do
                 total := !total + scan_time sys idx pairs ~span ~prefetch:pf ~trial
               done;
               Table.cell_ms (!total / trials))
             built)
      spans
  in
  Table.make ~id:"fig18a"
    ~title:"Range scan I/O: execution time (ms) vs. range size, 10 disks, mature trees"
    ~header:
      ("range entries"
      :: List.map
           (fun (k, pf, _) ->
             Setup.kind_name k ^ if pf then " (prefetch)" else "")
           built)
    rows

let fig18bc scale =
  let span =
    match scale with Scale.Tiny -> 20_000 | Quick -> 500_000 | Full -> 5_000_000
  in
  let disks = [ 1; 2; 4; 6; 8; 10 ] in
  let time kind ~prefetch ~n_disks =
    let sys, idx, pairs = build scale ~n_disks kind in
    let trials = 3 in
    let total = ref 0 in
    for trial = 1 to trials do
      total := !total + scan_time sys idx pairs ~span ~prefetch ~trial
    done;
    !total / trials
  in
  let bplus = List.map (fun d -> time Setup.Disk_opt ~prefetch:false ~n_disks:d) disks in
  let fpb = List.map (fun d -> time Setup.Disk_first ~prefetch:true ~n_disks:d) disks in
  let b1 = List.hd bplus and f1 = List.hd fpb in
  let rows =
    List.map2
      (fun d (bt, ft) ->
        [
          string_of_int d;
          Table.cell_s bt;
          Table.cell_s ft;
          Table.cell_f (float_of_int b1 /. float_of_int bt);
          Table.cell_f (float_of_int f1 /. float_of_int ft);
        ])
      disks
      (List.combine bplus fpb)
  in
  Table.make ~id:"fig18bc"
    ~title:
      (Printf.sprintf
         "Range scan I/O vs. #disks (scan of %d entries, mature trees): time (s) and speed-up"
         span)
    ~header:[ "disks"; "B+tree (s)"; "fpB+tree (s)"; "B+tree speedup"; "fpB+tree speedup" ]
    rows
