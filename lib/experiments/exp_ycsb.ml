(* Extension experiment: YCSB-style mixes, skew, and open- vs
   closed-loop arrival discipline.

   The paper sweeps uniform bulk searches and updates; this is the
   "millions of simulated users" scenario generator: the standard YCSB
   core mixes (A-F) over skewed key popularity, served by the disk-first
   fpB+-Tree through a buffer pool deliberately sized to a fraction of
   the tree (so popularity decides the hit rate) with updates committing
   through a group-commit WAL.

   Three tables:
     ycsb-a  the six core mixes, closed loop: throughput + latency tail
     ycsb-b  one read-mostly mix across key distributions: skew buys
             hit rate and shrinks the tail
     ycsb-c  the same mix A system driven closed loop (clients sweep)
             and open loop (arrival-rate sweep around the measured
             closed-loop capacity).  Closed loop, offered load adapts:
             throughput plateaus at capacity and p99 stays near service
             time however many clients pile on.  Open loop, arrivals
             don't care: past capacity the queue grows for the whole
             run and p99/p999 explode.  Overload is a latency
             phenomenon, and only the open-loop driver can show it. *)

open Fpb_btree_common
open Fpb_storage
open Fpb_wal
module W = Fpb_workload
module Keygen = Fpb_workload.Keygen

let page_size = 4096
let n_disks = 4
let n_shards = 4
let group_commit_bytes = 1 lsl 16
let fill = 0.8

let bulk_entries = function
  | Scale.Tiny -> 20_000
  | Scale.Quick -> 60_000
  | Scale.Full -> 200_000

let total_ops = function
  | Scale.Tiny -> 600
  | Scale.Quick -> 4_000
  | Scale.Full -> 16_000

let base_clients = function Scale.Tiny -> 4 | Scale.Quick | Scale.Full -> 8

(* The pool is deliberately sized to half the tree, so key popularity —
   not tree size — decides the hit rate.  Measured on a probe build
   (the key set is deterministic per scale), floored so descents and
   prefetchers always find free frames. *)
let tree_pool_pages scale =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks ~page_size () in
  let idx = Run.build sys Setup.Disk_first pairs ~fill in
  max 24 (Index_sig.page_count idx / 2)

type cell = {
  label : string;
  offered_ops_per_s : float option; (* None: closed loop *)
  throughput_ops_per_s : float;
  latency : Fpb_obs.Histogram.t;
  max_backlog : int option;
  hits : int;
  misses : int;
  drawn : int * int * int * int * int;
}

(* A fresh system + workload generator per cell, so cells never
   contaminate each other. *)
let with_system scale ~pool_pages ?dist mix k =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks ~pool_pages ~n_shards ~page_size () in
  let idx = Run.build sys Setup.Disk_first pairs ~fill in
  let wal =
    Wal.attach ~group_commit_bytes ~meta:(Index_sig.meta idx) sys.Setup.pool
  in
  let dist =
    match dist with Some d -> d | None -> W.Mix.default_dist mix
  in
  let gen = W.Mix.generator ~dist ~seed:31337 mix pairs in
  (* Warm pass under the cell's own distribution, so measurement starts
     from the steady-state pool contents of that popularity profile
     rather than a cold pool. *)
  let warm_rng = W.Prng.create 555 in
  let n = Array.length pairs in
  for _ = 1 to 2 * pool_pages do
    ignore
      (Index_sig.search idx (fst pairs.(W.Keygen.draw_pos dist warm_rng ~n)))
  done;
  Buffer_pool.reset_stats sys.Setup.pool;
  let committed = ref 0 in
  let commit () =
    incr committed;
    Wal.commit wal ~op:!committed ~meta:(Index_sig.meta idx)
  in
  let op ~client:(_ : int) ~seq:(_ : int) =
    W.Mix.execute idx ~commit (W.Mix.next gen)
  in
  let result = k sys gen op in
  Index_sig.check idx;
  let p = Buffer_pool.stats sys.Setup.pool in
  let v c = Fpb_obs.Counter.value c in
  (result, v p.Buffer_pool.hits, v p.Buffer_pool.misses)

let record_cell c =
  let slug =
    String.map (function ' ' | '(' | ')' -> '-' | ch -> ch)
      (String.lowercase_ascii c.label)
  in
  let pc p = Fpb_obs.Histogram.percentile c.latency p in
  Telemetry.add
    (Printf.sprintf "ycsb.%s.throughput_ops_per_s" slug)
    (int_of_float c.throughput_ops_per_s);
  Telemetry.add (Printf.sprintf "ycsb.%s.p50_ns" slug) (pc 50.);
  Telemetry.add (Printf.sprintf "ycsb.%s.p99_ns" slug) (pc 99.);
  Telemetry.add (Printf.sprintf "ycsb.%s.p999_ns" slug) (pc 99.9);
  (match c.offered_ops_per_s with
  | Some r ->
      Telemetry.add
        (Printf.sprintf "ycsb.%s.offered_ops_per_s" slug)
        (int_of_float r)
  | None -> ());
  (match c.max_backlog with
  | Some b -> Telemetry.add (Printf.sprintf "ycsb.%s.max_backlog" slug) b
  | None -> ());
  let r, u, i, s, m = c.drawn in
  List.iter
    (fun (name, n) ->
      if n > 0 then Telemetry.add (Printf.sprintf "ycsb.%s.ops.%s" slug name) n)
    [ ("read", r); ("update", u); ("insert", i); ("scan", s); ("rmw", m) ];
  c

let run_closed scale ~pool_pages ?dist ?label ~n_clients mix =
  let (stats, drawn), hits, misses =
    with_system scale ~pool_pages ?dist mix (fun sys gen op ->
        let s =
          W.Clients.run ~sim:sys.Setup.sim ~n_clients
            ~ops_per_client:(total_ops scale / n_clients)
            op
        in
        (s, W.Mix.drawn_counts gen))
  in
  record_cell
    {
      label =
        (match label with
        | Some l -> l
        | None -> Printf.sprintf "%s closed" mix.W.Mix.name);
      offered_ops_per_s = None;
      throughput_ops_per_s = stats.W.Clients.throughput_ops_per_s;
      latency = stats.W.Clients.latency;
      max_backlog = None;
      hits;
      misses;
      drawn;
    }

let run_open scale ~pool_pages ?dist ~label ~n_clients ~rate_ops_per_s mix =
  let (stats, drawn), hits, misses =
    with_system scale ~pool_pages ?dist mix (fun sys gen op ->
        let s =
          W.Arrival.run ~sim:sys.Setup.sim ~n_clients ~n_ops:(total_ops scale)
            ~rate_ops_per_s op
        in
        (s, W.Mix.drawn_counts gen))
  in
  record_cell
    {
      label;
      offered_ops_per_s = Some stats.W.Arrival.offered_ops_per_s;
      throughput_ops_per_s = stats.W.Arrival.throughput_ops_per_s;
      latency = stats.W.Arrival.latency;
      max_backlog = Some stats.W.Arrival.max_backlog;
      hits;
      misses;
      drawn;
    }

let hit_pct c =
  100. *. float_of_int c.hits /. float_of_int (max 1 (c.hits + c.misses))

let latency_cells c =
  let pc p = Fpb_obs.Histogram.percentile c.latency p in
  [
    Table.cell_i (pc 50.); Table.cell_i (pc 99.); Table.cell_i (pc 99.9);
  ]

(* Table ycsb-a: the six core mixes, closed loop. *)
let core_mixes scale ~pool_pages =
  let n_clients = base_clients scale in
  let rows =
    List.map
      (fun mix ->
        let c = run_closed scale ~pool_pages ~n_clients mix in
        (Printf.sprintf "%s (%s)" mix.W.Mix.name
           (Keygen.dist_name (W.Mix.default_dist mix))
        :: Table.cell_f (c.throughput_ops_per_s /. 1e3)
        :: latency_cells c)
        @ [ Table.cell_f (hit_pct c) ])
      W.Mix.all
  in
  Table.make ~id:"ycsb-a"
    ~title:
      (Printf.sprintf
         "YCSB core mixes, closed loop (%d clients, %d ops, disk-first \
          fpB+tree, 4KB pages, pool = tree/2, group-commit WAL; latency in \
          simulated ns)"
         n_clients (total_ops scale))
    ~header:
      [ "mix"; "Kops/s"; "p50"; "p99"; "p999"; "pool hit %" ]
    rows

(* Table ycsb-b: one read-mostly mix across key distributions. *)
let skew_sweep scale ~pool_pages =
  let n_clients = base_clients scale in
  let theta = Keygen.default_theta in
  let dists =
    [
      Keygen.Uniform;
      Keygen.Zipfian { theta = 0.5; scrambled = true };
      Keygen.Zipfian { theta = 0.8; scrambled = true };
      Keygen.Zipfian { theta; scrambled = true };
      Keygen.Zipfian { theta; scrambled = false };
      Keygen.Hotspot { hot_frac = 0.2; hot_op_frac = 0.8 };
      Keygen.Latest { theta };
    ]
  in
  let rows =
    List.map
      (fun dist ->
        let c =
          run_closed scale ~pool_pages ~dist
            ~label:(Printf.sprintf "B %s" (Keygen.dist_name dist))
            ~n_clients W.Mix.b
        in
        (Keygen.dist_name dist
        :: Table.cell_f (c.throughput_ops_per_s /. 1e3)
        :: latency_cells c)
        @ [ Table.cell_f (hit_pct c) ])
      dists
  in
  Table.make ~id:"ycsb-b"
    ~title:
      "Mix B (95/5 read/update) across key distributions: skew concentrates \
       the working set, buys pool hits and shrinks the tail"
    ~header:[ "distribution"; "Kops/s"; "p50"; "p99"; "p999"; "pool hit %" ]
    rows

(* Table ycsb-c: closed loop vs open loop around saturation. *)
let arrival_sweep scale ~pool_pages =
  let c0 = base_clients scale in
  let closed =
    List.map
      (fun m ->
        let n_clients = c0 * m in
        ( Printf.sprintf "closed %d clients" n_clients,
          run_closed scale ~pool_pages
            ~label:(Printf.sprintf "A closed c%d" n_clients)
            ~n_clients W.Mix.a ))
      [ 1; 2; 4 ]
  in
  (* Capacity: the best throughput closed loop ever reaches — by
     construction the offered rates below/above it straddle saturation.
     The open-loop cells get the service parallelism of the largest
     closed config, so the comparison isolates the arrival discipline. *)
  let capacity =
    List.fold_left (fun acc (_, c) -> max acc c.throughput_ops_per_s) 1. closed
  in
  let open_clients = c0 * 4 in
  let open_cells =
    List.map
      (fun pct ->
        let rate = capacity *. float_of_int pct /. 100. in
        ( Printf.sprintf "open %d%% of capacity" pct,
          run_open scale ~pool_pages
            ~label:(Printf.sprintf "A open r%d" pct)
            ~n_clients:open_clients ~rate_ops_per_s:rate W.Mix.a ))
      [ 50; 80; 95; 110; 140 ]
  in
  let row (name, c) =
    (name
    :: (match c.offered_ops_per_s with
       | None -> "-"
       | Some r -> Table.cell_f (r /. 1e3))
    :: Table.cell_f (c.throughput_ops_per_s /. 1e3)
    :: latency_cells c)
    @ [ (match c.max_backlog with None -> "-" | Some b -> Table.cell_i b) ]
  in
  Table.make ~id:"ycsb-c"
    ~title:
      (Printf.sprintf
         "Mix A closed vs open loop (%d service clients; capacity = best \
          closed-loop throughput = %.1f Kops/s).  Closed loop saturates \
          gracefully; open loop past capacity queues for the whole run and \
          the tail explodes"
         open_clients (capacity /. 1e3))
    ~header:
      [ "driver"; "offered Kops/s"; "Kops/s"; "p50"; "p99"; "p999";
        "max backlog" ]
    (List.map row (closed @ open_cells))

let run scale =
  let pool_pages = tree_pool_pages scale in
  [
    core_mixes scale ~pool_pages;
    skew_sweep scale ~pool_pages;
    arrival_sweep scale ~pool_pages;
  ]
