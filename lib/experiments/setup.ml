(* Construction of fresh simulated systems and index instances for the
   experiments.  Every experiment run gets its own simulator, page store,
   disks and buffer pool so runs never contaminate each other. *)

open Fpb_simmem
open Fpb_storage
open Fpb_btree_common

type system = {
  sim : Sim.t;
  store : Page_store.t;
  disks : Disk_model.t;
  pool : Buffer_pool.t;
}

let make ?(n_disks = 10) ?(n_prefetchers = 8) ?(pool_pages = 200_000)
    ?(n_shards = 1) ?request_overhead_ns ~page_size () =
  let sim = Sim.create () in
  let store = Page_store.create ~page_size ~n_disks in
  let disks =
    Disk_model.create
      ~transfer_ns:(Disk_model.transfer_ns_of_page_size page_size)
      ?request_overhead_ns ~n_disks sim.Sim.clock
  in
  let pool =
    Buffer_pool.create ~n_prefetchers ~n_shards ~capacity:pool_pages sim store
      disks
  in
  { sim; store; disks; pool }

type kind = Disk_opt | Micro | Disk_first | Cache_first

let all_kinds = [ Disk_opt; Micro; Disk_first; Cache_first ]
let fp_kinds = [ Disk_first; Cache_first ]

let kind_name = function
  | Disk_opt -> "disk-optimized B+tree"
  | Micro -> "micro-indexing"
  | Disk_first -> "disk-first fpB+tree"
  | Cache_first -> "cache-first fpB+tree"

let make_index kind pool : Index_sig.instance =
  match kind with
  | Disk_opt ->
      Index_sig.Instance
        ((module Fpb_disk_btree.Disk_btree), Fpb_disk_btree.Disk_btree.create pool)
  | Micro ->
      Index_sig.Instance
        ((module Fpb_micro_index.Micro_index),
         Fpb_micro_index.Micro_index.create pool)
  | Disk_first ->
      Index_sig.Instance ((module Fpb_core.Disk_first), Fpb_core.Disk_first.create pool)
  | Cache_first ->
      Index_sig.Instance ((module Fpb_core.Cache_first), Fpb_core.Cache_first.create pool)

(* Cache-performance measurement protocol (paper Section 4.2): flush CPU
   caches, reset statistics, run the operation batch with the tree
   memory-resident, report (busy, stall, total) cycles. *)
type cycles = { busy : int; stall : int; total : int }

(* Same protocol for a bare simulator with no storage attached (the
   pB+-Tree in the Figure 3 breakdown lives purely in simulated memory). *)
let measure_cycles_sim sim f =
  Sim.flush_cache sim;
  Sim.reset_stats sim;
  let s0 = Stats.snapshot sim.Sim.stats in
  f ();
  Telemetry.add_kv (Stats.delta_kv sim.Sim.stats s0);
  let busy, stall, _ = Stats.since sim.Sim.stats s0 in
  Telemetry.observe "measure.batch_cycles" (busy + stall);
  { busy; stall; total = busy + stall }

let measure_cycles sys f = measure_cycles_sim sys.sim f

(* I/O measurement: clear the buffer pool, reset I/O statistics, run, and
   report demand misses (the paper's metric for search I/O). *)
let measure_io_misses sys f =
  Buffer_pool.clear sys.pool;
  Buffer_pool.reset_stats sys.pool;
  let d0 = Disk_model.kv sys.disks in
  f ();
  Telemetry.add_kv (Buffer_pool.kv sys.pool);
  Telemetry.add_kv (Telemetry.delta (Disk_model.kv sys.disks) d0);
  Fpb_obs.Counter.value (Buffer_pool.stats sys.pool).Buffer_pool.misses

(* Elapsed simulated time (ns) of a batch, including I/O waits. *)
let measure_sim_time sys f =
  let p0 = Buffer_pool.kv sys.pool in
  let d0 = Disk_model.kv sys.disks in
  let t0 = Clock.now sys.sim.Sim.clock in
  f ();
  let ns = Clock.now sys.sim.Sim.clock - t0 in
  Telemetry.add_kv (Telemetry.delta (Buffer_pool.kv sys.pool) p0);
  Telemetry.add_kv (Telemetry.delta (Disk_model.kv sys.disks) d0);
  Telemetry.observe "measure.batch_sim_ns" ns;
  ns
