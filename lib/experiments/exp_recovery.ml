(* Extension experiment: durability cost and crash-recovery behaviour.

   Not a figure from the paper — the paper measures steady-state cache
   and I/O performance; this measures what the WAL adds around it:
   log volume and recovery time as the update count grows, and the
   checkpoint-interval trade-off (shorter intervals cost more log images
   and data write-backs but bound the redo work a crash leaves behind).

   Every run drives a committed update stream against a bulkloaded tree,
   power-cuts the machine at the end ([Wal.crash_now]), recovers, and
   reports the WAL's own counters through the telemetry collector. *)

open Fpb_btree_common
open Fpb_wal

let page_size = 4096
let pool_pages = 96

let bulk_entries = function
  | Scale.Tiny -> 1_000
  | Scale.Quick -> 8_000
  | Scale.Full -> 30_000

let op_counts = function
  | Scale.Tiny -> [ 50; 150; 300 ]
  | Scale.Quick -> [ 200; 600; 2_000 ]
  | Scale.Full -> [ 500; 2_000; 8_000 ]

(* One measured run: returns (golden log bytes, recovery record). *)
let run_case scale kind ~n_ops ~ckpt_every =
  let rng = Fpb_workload.Prng.create 4004 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks:2 ~pool_pages ~page_size () in
  let idx = Run.build sys kind pairs ~fill:0.8 in
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.Setup.pool in
  let keys = Fpb_workload.Keygen.random_keys rng n_ops in
  Array.iteri
    (fun i k ->
      ignore (Index_sig.insert idx k k);
      Wal.commit wal ~op:(i + 1) ~meta:(Index_sig.meta idx);
      if ckpt_every > 0 && (i + 1) mod ckpt_every = 0 then
        Wal.checkpoint wal ~meta:(Index_sig.meta idx))
    keys;
  let log_bytes = Wal.log_bytes wal in
  Wal.crash_now wal;
  let r = Wal.recover wal in
  (* Fold the wal.* counters and the commit-latency distribution into the
     ambient telemetry registry (-> BENCH_results.json). *)
  Telemetry.add_kv (Wal.kv wal);
  Telemetry.observe "wal.commit_latency_ns"
    (int_of_float (Fpb_obs.Histogram.mean (Wal.commit_latency wal)));
  Index_sig.restore_meta idx r.Wal.meta;
  Index_sig.check idx;
  (log_bytes, r)

(* Recovery time and log volume vs. update count, per index structure
   (checkpoint only at attach, so recovery replays the whole stream). *)
let by_update_rate scale =
  let runs =
    List.map
      (fun n_ops ->
        ( n_ops,
          List.map
            (fun kind -> run_case scale kind ~n_ops ~ckpt_every:0)
            Setup.all_kinds ))
      (op_counts scale)
  in
  let kinds = List.map Setup.kind_name Setup.all_kinds in
  [
    Table.make ~id:"recovery-a"
      ~title:"Recovery time vs. committed updates (ms, no checkpoints)"
      ~header:("updates" :: kinds)
      (List.map
         (fun (n, rs) ->
           Table.cell_i n
           :: List.map (fun (_, r) -> Table.cell_ms r.Wal.recovery_ns) rs)
         runs);
    Table.make ~id:"recovery-b"
      ~title:"Log volume vs. committed updates (KB)"
      ~header:("updates" :: kinds)
      (List.map
         (fun (n, rs) ->
           Table.cell_i n
           :: List.map (fun (lb, _) -> Table.cell_i (lb / 1024)) rs)
         runs);
  ]

(* The checkpoint-interval trade-off on the recommended (disk-first)
   variant: log volume grows with checkpoint frequency (fresh full
   images after every checkpoint), redo work shrinks. *)
let by_checkpoint_interval scale =
  let n_ops = List.nth (op_counts scale) 2 in
  let intervals = [ 0; n_ops / 2; n_ops / 8; n_ops / 32 ] in
  let rows =
    List.map
      (fun ckpt_every ->
        let lb, r = run_case scale Setup.Disk_first ~n_ops ~ckpt_every in
        [
          (if ckpt_every = 0 then "never" else string_of_int ckpt_every);
          Table.cell_i (lb / 1024);
          Table.cell_ms r.Wal.recovery_ns;
          Table.cell_i r.Wal.scanned_records;
          Table.cell_i r.Wal.redo_records;
          Table.cell_i r.Wal.redo_pages;
        ])
      intervals
  in
  Table.make ~id:"recovery-c"
    ~title:
      (Printf.sprintf
         "Checkpoint interval trade-off (disk-first fpB+tree, %d updates)"
         n_ops)
    ~header:
      [ "ckpt every"; "log KB"; "recovery ms"; "scanned"; "redone"; "pages" ]
    rows

(* Batched redo before/after: the same crash and the same replay set,
   with recovery's write-backs issued either in replay-table order
   (unsorted baseline) or sorted by (disk, physical page) so adjacent
   pages go out as sequential I/O.  The difference is pure positioning
   time on the data disks. *)
let by_redo_order scale =
  let n_ops = List.nth (op_counts scale) 2 in
  let case batched =
    let rng = Fpb_workload.Prng.create 4004 in
    let pairs = Fpb_workload.Keygen.bulk_pairs rng (bulk_entries scale) in
    let sys = Setup.make ~n_disks:2 ~pool_pages ~page_size () in
    let idx = Run.build sys Setup.Disk_first pairs ~fill:0.8 in
    let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.Setup.pool in
    Wal.set_batched_redo wal batched;
    let keys = Fpb_workload.Keygen.random_keys rng n_ops in
    Array.iteri
      (fun i k ->
        ignore (Index_sig.insert idx k k);
        Wal.commit wal ~op:(i + 1) ~meta:(Index_sig.meta idx))
      keys;
    Wal.crash_now wal;
    Fpb_storage.Disk_model.reset_stats sys.Setup.disks;
    let r = Wal.recover wal in
    let dkv = Fpb_storage.Disk_model.kv sys.Setup.disks in
    let d name = match List.assoc_opt name dkv with Some v -> v | None -> 0 in
    Index_sig.restore_meta idx r.Wal.meta;
    Index_sig.check idx;
    (r, d "disk.writes", d "disk.busy_ns")
  in
  let rows =
    List.map
      (fun batched ->
        let r, writes, busy_ns = case batched in
        [
          (if batched then "sorted (disk, phys)" else "replay order");
          Table.cell_ms r.Wal.recovery_ns;
          Table.cell_i r.Wal.redo_records;
          Table.cell_i r.Wal.redo_pages;
          Table.cell_i writes;
          Table.cell_ms busy_ns;
        ])
      [ false; true ]
  in
  Table.make ~id:"recovery-d"
    ~title:
      (Printf.sprintf
         "Batched redo: recovery write-back order (disk-first fpB+tree, %d \
          updates)"
         n_ops)
    ~header:
      [
        "write-back order"; "recovery ms"; "redone"; "pages"; "disk writes";
        "disk busy ms";
      ]
    rows

(* Striping and mirroring cost at commit time: records round-robin
   across S stripes (whose spans flush in parallel) while every stripe's
   force pays the slowest of its K position-identical appends.  Commit
   latency falls with S and rises with K; recovery merges the stripes
   back by LSN. *)
let by_log_geometry scale =
  let n_ops = List.nth (op_counts scale) 1 in
  let rows =
    List.map
      (fun (s, k) ->
        let rng = Fpb_workload.Prng.create 4004 in
        let pairs = Fpb_workload.Keygen.bulk_pairs rng (bulk_entries scale) in
        let sys = Setup.make ~n_disks:2 ~pool_pages ~page_size () in
        let idx = Run.build sys Setup.Disk_first pairs ~fill:0.8 in
        let wal =
          Wal.attach ~log_stripes:s ~log_mirrors:k ~meta:(Index_sig.meta idx)
            sys.Setup.pool
        in
        let keys = Fpb_workload.Keygen.random_keys rng n_ops in
        Array.iteri
          (fun i kk ->
            ignore (Index_sig.insert idx kk kk);
            Wal.commit wal ~op:(i + 1) ~meta:(Index_sig.meta idx))
          keys;
        let lkv = Fpb_storage.Disk_model.kv (Wal.log_disks wal) in
        let d name =
          match List.assoc_opt name lkv with Some v -> v | None -> 0
        in
        Wal.crash_now wal;
        let r = Wal.recover wal in
        Index_sig.restore_meta idx r.Wal.meta;
        Index_sig.check idx;
        [
          Table.cell_i s;
          Table.cell_i k;
          Table.cell_i
            (int_of_float (Fpb_obs.Histogram.mean (Wal.commit_latency wal)));
          Table.cell_i (d "disk.writes");
          Table.cell_ms r.Wal.recovery_ns;
        ])
      [ (1, 1); (1, 2); (1, 3); (2, 1); (4, 1); (2, 2) ]
  in
  Table.make ~id:"recovery-e"
    ~title:
      (Printf.sprintf
         "Log geometry: S stripes x K mirrors (disk-first fpB+tree, %d \
          updates; commit waits for the slowest disk)"
         n_ops)
    ~header:
      [
        "stripes S"; "mirrors K"; "commit ns (mean)"; "log writes";
        "recovery ms";
      ]
    rows

(* Redo-write coalescing before/after: identical crash and replay set,
   recovery write-backs sorted by (disk, phys) either issued one request
   per page or merged into multi-page runs.  A fixed per-request
   controller overhead makes the request count itself a cost, which is
   what coalescing eliminates. *)
let by_redo_coalescing scale =
  let n_ops = List.nth (op_counts scale) 2 in
  let overhead = 500_000 (* 0.5 ms per request *) in
  let case coalesce =
    let rng = Fpb_workload.Prng.create 4004 in
    let pairs = Fpb_workload.Keygen.bulk_pairs rng (bulk_entries scale) in
    let sys =
      Setup.make ~n_disks:2 ~pool_pages ~request_overhead_ns:overhead
        ~page_size ()
    in
    let idx = Run.build sys Setup.Disk_first pairs ~fill:0.8 in
    let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.Setup.pool in
    Wal.set_redo_coalescing wal coalesce;
    let keys = Fpb_workload.Keygen.random_keys rng n_ops in
    Array.iteri
      (fun i k ->
        ignore (Index_sig.insert idx k k);
        Wal.commit wal ~op:(i + 1) ~meta:(Index_sig.meta idx))
      keys;
    Wal.crash_now wal;
    Fpb_storage.Disk_model.reset_stats sys.Setup.disks;
    let r = Wal.recover wal in
    let writes = Fpb_storage.Disk_model.writes sys.Setup.disks in
    let runs = Fpb_storage.Disk_model.write_runs sys.Setup.disks in
    Index_sig.restore_meta idx r.Wal.meta;
    Index_sig.check idx;
    (r, writes, runs)
  in
  let rows =
    List.map
      (fun coalesce ->
        let r, writes, runs = case coalesce in
        [
          (if coalesce then "coalesced runs" else "one request per page");
          Table.cell_ms r.Wal.recovery_ns;
          Table.cell_i r.Wal.redo_pages;
          Table.cell_i writes;
          Table.cell_i (if coalesce then runs else writes);
        ])
      [ false; true ]
  in
  Table.make ~id:"recovery-f"
    ~title:
      (Printf.sprintf
         "Redo-write coalescing (disk-first fpB+tree, %d updates, 0.5 ms \
          per-request overhead)"
         n_ops)
    ~header:
      [ "write-back issue"; "recovery ms"; "pages"; "disk writes"; "requests" ]
    rows

let run scale =
  by_update_rate scale
  @ [
      by_checkpoint_interval scale;
      by_redo_order scale;
      by_log_geometry scale;
      by_redo_coalescing scale;
    ]
