(* Figure 15: range-scan cache performance.  Trees bulkloaded 100% full
   with [Scale.base_entries] keys (16KB pages); random range scans each
   spanning 1/3 of the key count (paper: 1M of 3M), memory-resident. *)

let fig15 scale =
  let n = Scale.base_entries scale in
  let span = n / 3 in
  let n_scans = match scale with Scale.Tiny -> 5 | Quick -> 20 | Full -> 100 in
  let rng = Fpb_workload.Prng.create 5005 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let ranges = Fpb_workload.Keygen.ranges rng pairs n_scans ~span in
  let kinds = [ Setup.Disk_opt; Setup.Disk_first; Setup.Cache_first ] in
  let rows =
    List.map
      (fun kind ->
        let sys, idx = Run.fresh ~page_size:16384 kind pairs ~fill:1.0 in
        let m =
          Setup.measure_cycles sys (fun () ->
              Array.iter
                (fun (a, b) ->
                  ignore
                    (Fpb_btree_common.Index_sig.range_scan idx ~start_key:a
                       ~end_key:b (fun _ _ -> ())))
                ranges)
        in
        [ Setup.kind_name kind; Table.cell_mcycles m.Setup.busy;
          Table.cell_mcycles m.Setup.stall; Table.cell_mcycles m.Setup.total ])
      kinds
  in
  Table.make ~id:"fig15"
    ~title:
      (Printf.sprintf
         "Range scan cache performance: %d scans of ~%d entries, %d keys, 16KB (Mcycles)"
         n_scans span n)
    ~header:[ "index"; "busy"; "dcache stalls"; "total" ]
    rows
