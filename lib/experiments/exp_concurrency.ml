(* Extension experiment: multi-client scaling of the sharded buffer pool.

   Not a figure from the paper — the paper measures a single execution
   stream; this measures what happens when M logical clients share the
   machine.  The tree is small enough to stay memory-resident after
   bulkload, so operations are CPU plus buffer-pool bookkeeping: with
   one shard every page access serializes on a single pool latch, with N
   shards the latch demand spreads by page-id hash and clients queue far
   less.  The driver is [Fpb_workload.Clients]: a conservative
   discrete-event schedule that runs the earliest client next, with
   shard latches and disks holding absolute free-at times.

   Each cell sweeps (clients x shards) over a fresh system running a
   search/update mix (updates commit through a group-commit WAL), and
   reports simulated throughput, latency percentiles from the driver's
   histogram, and the shard-conflict rate from the pool's counters.  The
   1-client/1-shard cell doubles as the no-drift baseline: its hit/miss
   counters must equal the pre-sharding pool's exactly (the test suite
   asserts equivalence; the table makes the numbers visible). *)

open Fpb_btree_common
open Fpb_storage
open Fpb_wal

let page_size = 4096
let pool_pages = 4_096 (* whole tree resident: ops are CPU + latch bound *)
let update_frac_pct = 20
let group_commit_bytes = 1 lsl 20

let bulk_entries = function
  | Scale.Tiny -> 10_000
  | Scale.Quick -> 30_000
  | Scale.Full -> 30_000

let ops_per_client = function
  | Scale.Tiny -> 150
  | Scale.Quick -> 1_000
  | Scale.Full -> 4_000

let client_counts = function
  | Scale.Tiny -> [ 1; 2; 8 ]
  | Scale.Quick | Scale.Full -> [ 1; 2; 4; 8 ]

let shard_counts = function
  | Scale.Tiny -> [ 1; 8 ]
  | Scale.Quick | Scale.Full -> [ 1; 4; 8 ]

type cell = {
  stats : Fpb_workload.Clients.stats;
  conflicts : int;
  waits_ns : int;
  hits : int;
  misses : int;
}

(* One measured (clients, shards) cell on a fresh system. *)
let run_cell scale ~n_clients ~n_shards =
  let rng = Fpb_workload.Prng.create 7007 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks:4 ~pool_pages ~n_shards ~page_size () in
  let idx = Run.build sys Setup.Disk_first pairs ~fill:0.8 in
  let wal =
    Wal.attach ~group_commit_bytes ~log_stripes:2 ~meta:(Index_sig.meta idx)
      sys.Setup.pool
  in
  (* Warm pass so the measured run sees a resident tree on every shard
     count alike. *)
  let warm = Fpb_workload.Keygen.random_keys rng 200 in
  Array.iter (fun k -> ignore (Index_sig.search idx k)) warm;
  Buffer_pool.reset_stats sys.Setup.pool;
  let key_space = 2 * bulk_entries scale in
  let rngs =
    Array.init n_clients (fun i -> Fpb_workload.Prng.create (9001 + (131 * i)))
  in
  let committed = ref 0 in
  let stats =
    Fpb_workload.Clients.run ~sim:sys.Setup.sim ~n_clients
      ~ops_per_client:(ops_per_client scale) (fun ~client ~seq:_ ->
        let rng = rngs.(client) in
        let k = Fpb_workload.Prng.int rng key_space in
        if Fpb_workload.Prng.int rng 100 < update_frac_pct then begin
          ignore (Index_sig.insert idx k k);
          incr committed;
          Wal.commit wal ~op:!committed ~meta:(Index_sig.meta idx)
        end
        else ignore (Index_sig.search idx k))
  in
  Index_sig.check idx;
  let p = Buffer_pool.stats sys.Setup.pool in
  let v c = Fpb_obs.Counter.value c in
  Telemetry.add_kv (Buffer_pool.kv sys.Setup.pool);
  Telemetry.add
    (Printf.sprintf "concurrency.c%d.s%d.throughput_ops_per_s" n_clients
       n_shards)
    (int_of_float stats.Fpb_workload.Clients.throughput_ops_per_s);
  {
    stats;
    conflicts = v p.Buffer_pool.shard_conflicts;
    waits_ns = v p.Buffer_pool.shard_waits_ns;
    hits = v p.Buffer_pool.hits;
    misses = v p.Buffer_pool.misses;
  }

let run scale =
  let clients = client_counts scale in
  let shards = shard_counts scale in
  let cells =
    List.map
      (fun c ->
        (c, List.map (fun s -> (s, run_cell scale ~n_clients:c ~n_shards:s)) shards))
      clients
  in
  let shard_headers = List.map (fun s -> Printf.sprintf "%d shards" s) shards in
  let throughput =
    Table.make ~id:"concurrency-a"
      ~title:
        "Simulated throughput, search/update mix (Kops per simulated second; \
         disk-first fpB+tree, memory-resident)"
      ~header:("clients" :: shard_headers)
      (List.map
         (fun (c, row) ->
           Table.cell_i c
           :: List.map
                (fun (_, cell) ->
                  Table.cell_f
                    (cell.stats.Fpb_workload.Clients.throughput_ops_per_s
                   /. 1e3))
                row)
         cells)
  in
  let conflict_rate =
    Table.make ~id:"concurrency-b"
      ~title:"Shard-latch conflicts per 1000 operations"
      ~header:("clients" :: shard_headers)
      (List.map
         (fun (c, row) ->
           Table.cell_i c
           :: List.map
                (fun (_, cell) ->
                  Table.cell_f
                    (1000.
                    *. float_of_int cell.conflicts
                    /. float_of_int (max 1 cell.stats.Fpb_workload.Clients.ops)))
                row)
         cells)
  in
  let max_clients = List.fold_left max 1 clients in
  let latency_rows =
    match List.assoc_opt max_clients cells with
    | None -> []
    | Some row ->
        List.map
          (fun (s, cell) ->
            let h = cell.stats.Fpb_workload.Clients.latency in
            [
              Table.cell_i s;
              Table.cell_i (int_of_float (Fpb_obs.Histogram.mean h));
              Table.cell_i (Fpb_obs.Histogram.percentile h 50.);
              Table.cell_i (Fpb_obs.Histogram.percentile h 99.);
              Table.cell_ms cell.waits_ns;
            ])
          row
  in
  let latency =
    Table.make ~id:"concurrency-c"
      ~title:
        (Printf.sprintf "Operation latency at %d clients (simulated ns)"
           max_clients)
      ~header:[ "shards"; "mean"; "p50"; "p99"; "latch wait ms" ]
      latency_rows
  in
  let baseline_rows =
    match List.assoc_opt 1 cells with
    | None -> []
    | Some row ->
        List.map
          (fun (s, cell) ->
            [
              Table.cell_i s;
              Table.cell_i cell.hits;
              Table.cell_i cell.misses;
              Table.cell_i cell.conflicts;
            ])
          row
  in
  let baseline =
    Table.make ~id:"concurrency-d"
      ~title:
        "Single-client baseline: hit/miss counters are shard-invariant and \
         conflict-free (no behaviour drift)"
      ~header:[ "shards"; "pool hits"; "pool misses"; "latch conflicts" ]
      baseline_rows
  in
  [ throughput; conflict_rate; latency; baseline ]
