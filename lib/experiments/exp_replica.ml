(* Extension experiment: WAL log-shipping replication.

   A primary ships every durable log record to two replicas over
   simulated links; commits either return at local log durability
   (async) or block until replica acks cover their LSN (semi-sync).
   Three tables:

     replica-a  durability mode x offered rate (0.5x/1x/2x the measured
                closed-loop capacity), YCSB-A open loop.  The commit
                barrier is charged to simulated time, so
                wal.commit_latency shows the true price of semi-sync:
                one network round trip plus the replica's log append,
                paid on every commit — and past capacity that price
                compounds into the arrival tail.

     replica-b  failover blackout.  Mid-run the primary is power-cut;
                the most advanced replica is promoted (failure-detection
                timeout charged), the index handle rebuilt from the
                replicated root metadata, and the surviving replica
                re-attached to the new primary.  Under semi-sync every
                client-acked commit must survive (lost acked = 0); the
                open-loop driver keeps arrivals coming during the
                blackout, so the dip and the drain both show up in the
                backlog and recovery-window stats.

     replica-c  snapshot catch-up vs full-log re-ship.  A replica goes
                dark, the workload runs on, and fuzzy checkpoints
                advance the WAL's retention — the shipping archive
                releases the same records ({!Replica.trim_archive}), so
                log catch-up is refused (`Retention_exceeded`) and the
                replica bootstraps from a shadow snapshot: frozen pages
                over the wire, then the short log tail after the cut.
                An untrimmed control re-ships the full log for the same
                lag; the snapshot path must be cheaper in simulated
                time. *)

open Fpb_btree_common
open Fpb_simmem
open Fpb_storage
open Fpb_wal
module W = Fpb_workload
module Replica = Fpb_replica.Replica
module Net = Fpb_replica.Net
module Shadow = Fpb_snapshot.Shadow
module Histogram = Fpb_obs.Histogram

let page_size = 4096
let n_disks = 4
let n_shards = 4
let group_commit_bytes = 1 lsl 16
let fill = 0.8
let kind = Setup.Disk_first

let bulk_entries = function
  | Scale.Tiny -> 10_000
  | Scale.Quick -> 30_000
  | Scale.Full -> 100_000

let total_ops = function
  | Scale.Tiny -> 400
  | Scale.Quick -> 2_000
  | Scale.Full -> 8_000

let base_clients = function Scale.Tiny -> 4 | Scale.Quick | Scale.Full -> 8

(* Pool sized to half the tree, as in the YCSB and overload
   experiments. *)
let tree_pool_pages scale =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks ~page_size () in
  let idx = Run.build sys kind pairs ~fill in
  max 24 (Index_sig.page_count idx / 2)

let mode_slug = function
  | Replica.Async -> "async"
  | Replica.Semi_sync k -> Printf.sprintf "semi-sync-%d" k

let mode_name = function
  | Replica.Async -> "async"
  | Replica.Semi_sync k -> Printf.sprintf "semi-sync k=%d" k

(* Fresh system + YCSB-A generator + replication group (two replicas on
   healthy links), warmed to steady state.  [k] gets everything and is
   responsible for final index checks (the failover leg retires the
   original handle). *)
let with_system scale ~pool_pages ~mode k =
  let rng = W.Prng.create 2024 in
  let pairs = W.Keygen.bulk_pairs rng (bulk_entries scale) in
  let sys = Setup.make ~n_disks ~pool_pages ~n_shards ~page_size () in
  let idx = Run.build sys kind pairs ~fill in
  let wal =
    Wal.attach ~group_commit_bytes ~meta:(Index_sig.meta idx) sys.Setup.pool
  in
  let group =
    Replica.create
      ~config:{ Replica.default_config with Replica.mode }
      ~prng:(W.Prng.create 0xfa11)
      ~profiles:[ Net.default_profile; Net.default_profile ]
      (wal, sys.Setup.pool)
  in
  let mix = W.Mix.a in
  let dist = W.Mix.default_dist mix in
  let gen = W.Mix.generator ~dist ~seed:31337 mix pairs in
  let warm_rng = W.Prng.create 555 in
  let n = Array.length pairs in
  for _ = 1 to 2 * pool_pages do
    ignore
      (Index_sig.search idx (fst pairs.(W.Keygen.draw_pos dist warm_rng ~n)))
  done;
  Buffer_pool.reset_stats sys.Setup.pool;
  k sys idx wal group gen

(* Closed-loop capacity with the mode's replication attached.  Semi-sync
   forces a log flush + replica round trip per commit, so its capacity
   is far below async's (which group-commits); each mode's open-loop
   sweep is therefore rated against its own capacity — that is what
   makes the 0.5x/1x/2x cells comparable across modes. *)
let probe scale ~pool_pages ~mode =
  with_system scale ~pool_pages ~mode (fun sys idx wal group gen ->
      let committed = ref 0 in
      let commit () =
        incr committed;
        Wal.commit wal ~op:!committed ~meta:(Index_sig.meta idx)
      in
      let op ~client:(_ : int) ~seq:(_ : int) =
        W.Mix.execute idx ~commit (W.Mix.next gen)
      in
      let n_clients = base_clients scale in
      let st =
        W.Clients.run ~sim:sys.Setup.sim ~n_clients
          ~ops_per_client:(total_ops scale / n_clients)
          op
      in
      Index_sig.check idx;
      Replica.detach group;
      st.W.Clients.throughput_ops_per_s)

(* ------------------ replica-a: mode x offered rate ------------------- *)

let mode_cell scale ~pool_pages ~mode ~rate =
  with_system scale ~pool_pages ~mode (fun sys idx wal group gen ->
      let committed = ref 0 in
      let commit () =
        incr committed;
        Wal.commit wal ~op:!committed ~meta:(Index_sig.meta idx)
      in
      let op ~client:(_ : int) ~seq:(_ : int) =
        W.Mix.execute idx ~commit (W.Mix.next gen)
      in
      let st =
        W.Arrival.run ~sim:sys.Setup.sim ~n_clients:(base_clients scale)
          ~n_ops:(total_ops scale) ~rate_ops_per_s:rate op
      in
      Index_sig.check idx;
      Telemetry.add_kv (Replica.kv group);
      let r =
        (st, Wal.commit_latency wal, Replica.ack_wait group)
      in
      Replica.detach group;
      r)

let mode_sweep scale ~pool_pages ~capacities =
  let pcts = [ 50; 100; 200 ] in
  let rows =
    List.concat_map
      (fun (mode, capacity) ->
        Telemetry.add
          (Printf.sprintf "replica.a.%s.capacity" (mode_slug mode))
          (int_of_float capacity);
        List.map
          (fun pct ->
            let rate = capacity *. float_of_int pct /. 100. in
            let st, cl, aw = mode_cell scale ~pool_pages ~mode ~rate in
            let pc h p = Histogram.percentile h p in
            let key m =
              Printf.sprintf "replica.a.%s.r%d.%s" (mode_slug mode) pct m
            in
            Telemetry.add (key "commit_p50_ns") (pc cl 50.);
            Telemetry.add (key "commit_p99_ns") (pc cl 99.);
            Telemetry.add (key "ack_wait_p99_ns") (pc aw 99.);
            Telemetry.add (key "p99_ns")
              (pc st.W.Arrival.latency 99.);
            Telemetry.add (key "throughput")
              (int_of_float st.W.Arrival.throughput_ops_per_s);
            Telemetry.add (key "max_backlog") st.W.Arrival.max_backlog;
            [
              mode_name mode;
              Table.cell_f (capacity /. 1e3);
              Table.cell_i pct;
              Table.cell_f (st.W.Arrival.offered_ops_per_s /. 1e3);
              Table.cell_f (st.W.Arrival.throughput_ops_per_s /. 1e3);
              Table.cell_i (pc cl 50.);
              Table.cell_i (pc cl 99.);
              Table.cell_i (pc aw 99.);
              Table.cell_i (pc st.W.Arrival.latency 99.);
              Table.cell_i st.W.Arrival.max_backlog;
            ])
          pcts)
      capacities
  in
  Table.make ~id:"replica-a"
    ~title:
      (Printf.sprintf
         "Durability mode x offered rate (0.5x/1x/2x the mode's own \
          closed-loop capacity), YCSB-A open loop, 2 replicas, %d ops.  \
          Semi-sync pays a per-commit log flush plus a network round trip \
          and the replica's log append (wal.commit_latency shows the \
          price); async acks at group-commit speed"
         (total_ops scale))
    ~header:
      [ "mode"; "cap Kops/s"; "rate %cap"; "offered Kops/s"; "Kops/s";
        "commit p50"; "commit p99"; "ack wait p99"; "arrival p99";
        "max backlog" ]
    rows

(* -------------------- replica-b: failover blackout ------------------- *)

let failover scale ~pool_pages ~capacity =
  let rate = capacity *. 0.8 in
  let n_ops = total_ops scale in
  let kill_at = n_ops / 2 in
  with_system scale ~pool_pages ~mode:(Replica.Semi_sync 1)
    (fun sys idx wal group gen ->
      let clock = sys.Setup.sim.Sim.clock in
      let idx_r = ref idx and wal_r = ref wal and group_r = ref group in
      let committed = ref 0 in
      let acked_at_kill = ref 0 in
      let promoted_op = ref 0 in
      let truncated = ref 0 in
      let blackout = ref 0 in
      let commit () =
        incr committed;
        Wal.commit !wal_r ~op:!committed ~meta:(Index_sig.meta !idx_r)
      in
      let op ~client:(_ : int) ~seq =
        if seq = kill_at then begin
          (* Power-cut the primary.  Ops on other open-loop clients may
             still be in flight at this instant — their acks lie beyond
             the kill horizon, so the acked count comes from the
             library's oracle, not from how many commits have executed. *)
          let t0 = Clock.now clock in
          Wal.crash_now !wal_r;
          Replica.kill !group_r;
          let horizon = Option.get (Replica.killed_at !group_r) in
          acked_at_kill := Replica.acked_op !group_r ~horizon;
          let p = Replica.promote !group_r in
          let g = Replica.resume !group_r p in
          let idx' = Run.adopt kind p.Replica.pool ~meta:p.Replica.meta in
          promoted_op := p.Replica.committed_op;
          truncated := p.Replica.truncated_records;
          committed := p.Replica.committed_op;
          idx_r := idx';
          wal_r := p.Replica.wal;
          group_r := g;
          blackout := Clock.now clock - t0
        end;
        W.Mix.execute !idx_r ~commit (W.Mix.next gen)
      in
      let st =
        W.Arrival.run ~sim:sys.Setup.sim ~n_clients:(base_clients scale)
          ~n_ops ~rate_ops_per_s:rate
          ~rate_change:(kill_at, rate) (* same rate: phase 2 isolates the
                                          post-failover recovery window *)
          op
      in
      Index_sig.check !idx_r;
      let survivor_op = Replica.sync_node !group_r (Replica.node !group_r 0) in
      let lost = max 0 (!acked_at_kill - !promoted_op) in
      let w = Option.get st.W.Arrival.recovery in
      Telemetry.add_kv (Replica.kv !group_r);
      Telemetry.add "replica.b.blackout_ns" !blackout;
      Telemetry.add "replica.b.acked_at_kill" !acked_at_kill;
      Telemetry.add "replica.b.promoted_op" !promoted_op;
      Telemetry.add "replica.b.lost_acked" lost;
      Telemetry.add "replica.b.truncated_records" !truncated;
      Telemetry.add "replica.b.max_backlog" st.W.Arrival.max_backlog;
      Telemetry.add "replica.b.backlog_peak_at_ns"
        st.W.Arrival.backlog_peak_at_ns;
      Telemetry.add "replica.b.recovery_goodput"
        (int_of_float w.W.Arrival.w_goodput_ops_per_s);
      Telemetry.add "replica.b.p99_ns"
        (Histogram.percentile st.W.Arrival.latency 99.);
      Telemetry.add "replica.b.survivor_synced"
        (if survivor_op = !committed then 1 else 0);
      Replica.detach !group_r;
      Table.make ~id:"replica-b"
        ~title:
          (Printf.sprintf
             "Failover blackout: primary power-cut at op %d of %d under \
              YCSB-A open loop at 0.8x the semi-sync capacity, k=1, 2 replicas \
              (detection timeout %d ns).  Lost acked must be 0; the backlog \
              peak localises the blackout and the recovery columns cover \
              the post-failover phase"
             kill_at n_ops (Replica.config !group_r).Replica.detect_timeout_ns)
        ~header:
          [ "offered Kops/s"; "blackout ms"; "acked@kill"; "promoted op";
            "lost acked"; "truncated"; "max backlog"; "peak at ms";
            "recov goodput Kops/s"; "arrival p99" ]
        [
          [
            Table.cell_f (st.W.Arrival.offered_ops_per_s /. 1e3);
            Table.cell_f (float_of_int !blackout /. 1e6);
            Table.cell_i !acked_at_kill;
            Table.cell_i !promoted_op;
            Table.cell_i lost;
            Table.cell_i !truncated;
            Table.cell_i st.W.Arrival.max_backlog;
            Table.cell_f (float_of_int st.W.Arrival.backlog_peak_at_ns /. 1e6);
            Table.cell_f (w.W.Arrival.w_goodput_ops_per_s /. 1e3);
            Table.cell_i (Histogram.percentile st.W.Arrival.latency 99.);
          ];
        ])

(* ------------- replica-c: snapshot catch-up vs log re-ship ----------- *)

let catchup scale =
  let n_bulk = max 2_000 (bulk_entries scale / 5) in
  let n1 = max 20 (total_ops scale / 4) in
  let n2 = total_ops scale in
  (* Deterministic committed insert stream; [trim] mirrors the WAL's
     retention into the shipping archive after every flip. *)
  let run_phase ~trim =
    let rng = W.Prng.create 2024 in
    let pairs = W.Keygen.bulk_pairs rng n_bulk in
    let sys = Setup.make ~n_disks:2 ~pool_pages:96 ~n_shards:1 ~page_size () in
    let idx = Run.build sys kind pairs ~fill in
    let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.Setup.pool in
    let group =
      Replica.create ~config:Replica.default_config
        ~prng:(W.Prng.create 0xfa11)
        ~profiles:[ Net.default_profile; Net.default_profile ]
        (wal, sys.Setup.pool)
    in
    let sh = Shadow.attach ~meta:(Index_sig.meta idx) wal sys.Setup.pool in
    let committed = ref 0 in
    let key = ref 0x4000_0000 in
    let step () =
      incr key;
      ignore (Index_sig.insert idx !key (!key land 0xFFFF));
      incr committed;
      Wal.commit wal ~op:!committed ~meta:(Index_sig.meta idx)
    in
    for _ = 1 to n1 do
      step ()
    done;
    let dark = Replica.node group 1 in
    Replica.detach_replica group dark;
    let ckpt_every = max 1 (n2 / 4) in
    for i = 1 to n2 do
      step ();
      if i mod ckpt_every = 0 then begin
        Shadow.checkpoint_sync sh ~meta:(Index_sig.meta idx);
        if trim then
          ignore
            (Replica.trim_archive group ~below_lsn:(Shadow.retention_lsn sh)
              : int)
      end
    done;
    (idx, group, sh, dark, !committed)
  in
  let idx, group, sh, dark, final_op = run_phase ~trim:true in
  let refused =
    match Replica.catch_up_via_log group dark with
    | `Retention_exceeded -> 1
    | `Ok _ -> 0
  in
  let snap = Shadow.open_at_checkpoint sh in
  let pages, tail, snap_ns = Replica.catch_up_via_snapshot group dark ~snapshot:snap in
  Shadow.close snap;
  let caught_op = Replica.node_committed_op dark in
  Index_sig.check idx;
  Telemetry.add_kv (Replica.kv group);
  Telemetry.add_kv (Shadow.kv sh);
  (* Untrimmed control: the archive still holds everything, so the same
     lag is recoverable by brute-force log re-shipping. *)
  let _idx2, group2, _sh2, dark2, _ = run_phase ~trim:false in
  let log_records, log_ns =
    match Replica.catch_up_via_log group2 dark2 with
    | `Ok (r, ns) -> (r, ns)
    | `Retention_exceeded -> (0, 0)
  in
  let control_op = Replica.node_committed_op dark2 in
  Telemetry.add "replica.c.retention_exceeded" refused;
  Telemetry.add "replica.c.snapshot_pages" pages;
  Telemetry.add "replica.c.snapshot_tail_records" tail;
  Telemetry.add "replica.c.snapshot_ns" snap_ns;
  Telemetry.add "replica.c.log_records" log_records;
  Telemetry.add "replica.c.log_ns" log_ns;
  Telemetry.add "replica.c.caught_up"
    (if caught_op = final_op && control_op = final_op then 1 else 0);
  Table.make ~id:"replica-c"
    ~title:
      (Printf.sprintf
         "Catch-up after %d committed ops in the dark (replica detached, \
          %d ops before).  Retention (shadow flips -> Wal.truncate_to -> \
          trim_archive) forces the snapshot path: frozen pages + log tail \
          after the cut, vs the untrimmed control's full-log re-ship"
         n2 n1)
    ~header:
      [ "path"; "refused log?"; "pages"; "records"; "sim ms"; "caught up to" ]
    [
      [
        "snapshot (retention trimmed)";
        Table.cell_i refused;
        Table.cell_i pages;
        Table.cell_i tail;
        Table.cell_f (float_of_int snap_ns /. 1e6);
        Table.cell_i caught_op;
      ];
      [
        "full-log re-ship (control)";
        Table.cell_i 0;
        Table.cell_i 0;
        Table.cell_i log_records;
        Table.cell_f (float_of_int log_ns /. 1e6);
        Table.cell_i control_op;
      ];
    ]

let run scale =
  let pool_pages = tree_pool_pages scale in
  let capacities =
    List.map
      (fun mode -> (mode, probe scale ~pool_pages ~mode))
      [ Replica.Async; Replica.Semi_sync 1; Replica.Semi_sync 2 ]
  in
  let semi1_capacity = List.assoc (Replica.Semi_sync 1) capacities in
  [
    mode_sweep scale ~pool_pages ~capacities;
    failover scale ~pool_pages ~capacity:semi1_capacity;
    catchup scale;
  ]
