(* Ablation benches for the design choices DESIGN.md calls out:

   A1  jump-pointer-array I/O prefetching on/off for range scans —
       including on the *standard* B+-Tree (the paper's Section 2.2 point
       that the technique is not specific to fractal trees);
   A2  cache-granularity leaf-node prefetching within scanned pages;
   A3  the I/O prefetch distance;
   A4  the overshooting fix (bounding prefetch at the end page) on small
       scans. *)

open Fpb_btree_common
open Fpb_storage
module DF = Fpb_core.Disk_first

(* Mature disk-first tree with a concrete handle (for the knobs). *)
let mature_df scale ~n_disks =
  let n = Scale.io_entries scale in
  let rng = Fpb_workload.Prng.create 8008 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let sys = Setup.make ~page_size:16384 ~n_disks () in
  let t = DF.create sys.Setup.pool in
  let bulk =
    Array.of_seq
      (Seq.filter_map
         (fun i -> if i mod 10 <> 9 then Some pairs.(i) else None)
         (Seq.init n Fun.id))
  in
  let rest =
    Array.of_seq
      (Seq.filter_map
         (fun i -> if i mod 10 = 9 then Some pairs.(i) else None)
         (Seq.init n Fun.id))
  in
  DF.bulkload t bulk ~fill:1.0;
  let rng2 = Fpb_workload.Prng.create 81 in
  Fpb_workload.Prng.shuffle rng2 rest;
  Array.iter (fun (k, v) -> ignore (DF.insert t k v)) rest;
  (sys, t, pairs)

let timed_df_scan sys t pairs ~span ~prefetch ~trial =
  let rng = Fpb_workload.Prng.create (9100 + trial) in
  let a, b = (Fpb_workload.Keygen.ranges rng pairs 1 ~span).(0) in
  Buffer_pool.clear sys.Setup.pool;
  Disk_model.quiesce sys.Setup.disks;
  ignore (DF.search t a);
  Setup.measure_sim_time sys (fun () ->
      ignore (DF.range_scan t ~prefetch ~start_key:a ~end_key:b (fun _ _ -> ())))

(* A1: I/O jump-pointer prefetch on/off, for the fpB+-Tree and for the
   standard B+-Tree (via the shared instance interface). *)
let a1 scale =
  let span = match scale with Scale.Tiny -> 20_000 | Quick -> 300_000 | Full -> 3_000_000 in
  let n = Scale.io_entries scale in
  let rng = Fpb_workload.Prng.create 8008 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let timed sys idx ~prefetch =
    let rng = Fpb_workload.Prng.create 9101 in
    let a, b = (Fpb_workload.Keygen.ranges rng pairs 1 ~span).(0) in
    Buffer_pool.clear sys.Setup.pool;
    Disk_model.quiesce sys.Setup.disks;
    ignore (Index_sig.search idx a);
    Setup.measure_sim_time sys (fun () ->
        ignore
          (Index_sig.range_scan idx ~prefetch ~start_key:a ~end_key:b (fun _ _ -> ())))
  in
  let rows =
    List.map
      (fun kind ->
        let sys, idx =
          Run.fresh_mature ~page_size:16384 ~n_disks:10 ~seed:81 kind pairs
            ~bulk_frac:0.9 ~fill:1.0
        in
        let t_off = timed sys idx ~prefetch:false in
        let t_on = timed sys idx ~prefetch:true in
        [
          Setup.kind_name kind;
          Table.cell_ms t_off;
          Table.cell_ms t_on;
          Table.cell_f (float_of_int t_off /. float_of_int t_on);
        ])
      [ Setup.Disk_opt; Setup.Disk_first ]
  in
  Table.make ~id:"ablation-a1"
    ~title:
      (Printf.sprintf
         "A1: jump-pointer I/O prefetch, scan of %d entries, 10 disks (ms)" span)
    ~header:[ "index"; "prefetch off"; "prefetch on"; "speedup" ]
    rows

(* A2: cache-granularity leaf prefetch inside scanned pages (memory
   resident). *)
let a2 scale =
  let n = Scale.base_entries scale in
  let rng = Fpb_workload.Prng.create 5005 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let ranges = Fpb_workload.Keygen.ranges rng pairs 10 ~span:(n / 5) in
  let run leaf_prefetch =
    let sys = Setup.make ~page_size:16384 () in
    let t = DF.create sys.Setup.pool in
    DF.bulkload t pairs ~fill:1.0;
    DF.set_cache_prefetch_leaves t leaf_prefetch;
    let m =
      Setup.measure_cycles sys (fun () ->
          Array.iter
            (fun (a, b) ->
              ignore (DF.range_scan t ~start_key:a ~end_key:b (fun _ _ -> ())))
            ranges)
    in
    m.Setup.total
  in
  let off = run false and on_ = run true in
  Table.make ~id:"ablation-a2"
    ~title:"A2: cache-level leaf-node prefetch in scans (disk-first, memory-resident)"
    ~header:[ "leaf prefetch"; "total Mcycles"; "speedup" ]
    [
      [ "off"; Table.cell_mcycles off; "1.00" ];
      [ "on"; Table.cell_mcycles on_;
        Table.cell_f (float_of_int off /. float_of_int on_) ];
    ]

(* A3: I/O prefetch distance. *)
let a3 scale =
  let span = match scale with Scale.Tiny -> 20_000 | Quick -> 300_000 | Full -> 3_000_000 in
  let sys, t, pairs = mature_df scale ~n_disks:10 in
  let rows =
    List.map
      (fun d ->
        DF.set_io_prefetch_distance t d;
        let time = timed_df_scan sys t pairs ~span ~prefetch:true ~trial:2 in
        [ string_of_int d; Table.cell_ms time ])
      [ 1; 2; 4; 8; 16; 32; 64 ]
  in
  DF.set_io_prefetch_distance t 16;
  Table.make ~id:"ablation-a3"
    ~title:
      (Printf.sprintf "A3: I/O prefetch distance, scan of %d entries, 10 disks (ms)"
         span)
    ~header:[ "distance"; "time (ms)" ]
    rows

(* A4: the overshooting fix.  Small scans; metric = disk reads per scan
   (demand + prefetch).  Unbounded prefetching reads pages past the end
   key that the scan never visits. *)
let a4 scale =
  ignore scale;
  let sys, t, pairs = mature_df Scale.Quick ~n_disks:10 in
  let run ~bounded =
    DF.set_bound_scan_end t bounded;
    Buffer_pool.clear sys.Setup.pool;
    Buffer_pool.reset_stats sys.Setup.pool;
    let rng = Fpb_workload.Prng.create 4242 in
    let scans = 50 in
    let ranges = Fpb_workload.Keygen.ranges rng pairs scans ~span:200 in
    Array.iter
      (fun (a, b) ->
        ignore (DF.range_scan t ~prefetch:true ~start_key:a ~end_key:b (fun _ _ -> ())))
      ranges;
    let s = Buffer_pool.stats sys.Setup.pool in
    float_of_int
      (Fpb_obs.Counter.value s.Buffer_pool.misses
      + Fpb_obs.Counter.value s.Buffer_pool.prefetch_issued)
    /. float_of_int scans
  in
  let bounded = run ~bounded:true in
  let unbounded = run ~bounded:false in
  DF.set_bound_scan_end t true;
  Table.make ~id:"ablation-a4"
    ~title:"A4: overshooting fix, 50 scans of ~200 entries (disk reads per scan)"
    ~header:[ "end-page bound"; "reads/scan" ]
    [
      [ "on (paper)"; Table.cell_f bounded ];
      [ "off (overshoots)"; Table.cell_f unbounded ];
    ]

(* A5: sequential I/O readahead vs. jump-pointer prefetch.  Section 2.2's
   argument: sequential prefetching covers clustered (bulkloaded) layouts,
   but only jump pointers help once updates scatter the leaf order. *)
let a5 scale =
  let span = match scale with Scale.Tiny -> 20_000 | Quick -> 300_000 | Full -> 3_000_000 in
  let n = Scale.io_entries scale in
  let rng = Fpb_workload.Prng.create 8008 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let build ~mature =
    let sys = Setup.make ~page_size:16384 ~n_disks:10 () in
    let t = DF.create sys.Setup.pool in
    if mature then begin
      let bulk =
        Array.of_seq
          (Seq.filter_map
             (fun i -> if i mod 10 <> 9 then Some pairs.(i) else None)
             (Seq.init n Fun.id))
      in
      let rest =
        Array.of_seq
          (Seq.filter_map
             (fun i -> if i mod 10 = 9 then Some pairs.(i) else None)
             (Seq.init n Fun.id))
      in
      DF.bulkload t bulk ~fill:1.0;
      let rng2 = Fpb_workload.Prng.create 83 in
      Fpb_workload.Prng.shuffle rng2 rest;
      Array.iter (fun (k, v) -> ignore (DF.insert t k v)) rest
    end
    else DF.bulkload t pairs ~fill:1.0;
    (sys, t)
  in
  let time ~mature ~mode =
    let sys, t = build ~mature in
    (match mode with
    | `Plain | `Jump -> ()
    | `Readahead -> Buffer_pool.set_sequential_readahead sys.Setup.pool 8);
    let prefetch = mode = `Jump in
    timed_df_scan sys t pairs ~span ~prefetch ~trial:3
  in
  let row name ~mature =
    let plain = time ~mature ~mode:`Plain in
    let ra = time ~mature ~mode:`Readahead in
    let jp = time ~mature ~mode:`Jump in
    [
      name;
      Table.cell_ms plain;
      Table.cell_ms ra;
      Table.cell_ms jp;
      Table.cell_f (float_of_int plain /. float_of_int ra);
      Table.cell_f (float_of_int plain /. float_of_int jp);
    ]
  in
  Table.make ~id:"ablation-a5"
    ~title:
      (Printf.sprintf
         "A5: sequential readahead vs jump pointers, scan of %d entries, 10 disks (ms)"
         span)
    ~header:
      [ "tree"; "plain"; "seq readahead"; "jump pointers"; "RA speedup"; "JP speedup" ]
    [ row "bulkloaded (clustered)" ~mature:false; row "mature (scattered)" ~mature:true ]

let run scale = [ a1 scale; a2 scale; a3 scale; a4 scale; a5 scale ]
