(* All experiments by id.  Each entry regenerates one table or figure of
   the paper; see DESIGN.md for the per-experiment index. *)

type entry = { id : string; describes : string; run : Scale.t -> Table.t list }

let all : entry list =
  [
    { id = "table1"; describes = "Table 1: simulation parameters";
      run = (fun _ -> [ Exp_config.table1 () ]) };
    { id = "table2"; describes = "Table 2: optimal width selections";
      run = (fun _ -> [ Exp_config.table2 () ]) };
    { id = "fig3b"; describes = "Figure 3(b): search breakdown, disk-optimized vs pB+tree";
      run = (fun s -> [ Exp_fig3.run s ]) };
    { id = "fig10"; describes = "Figure 10: search time vs tree size, per page size";
      run = Exp_search.fig10 };
    { id = "fig11"; describes = "Figure 11: node width sweep (16KB)";
      run = Exp_width.fig11 };
    { id = "fig12"; describes = "Figure 12: search time vs bulkload factor";
      run = (fun s -> [ Exp_search.fig12 s ]) };
    { id = "fig13"; describes = "Figure 13: insertion performance";
      run = Exp_update.fig13 };
    { id = "fig14"; describes = "Figure 14: deletion performance";
      run = Exp_update.fig14 };
    { id = "fig15"; describes = "Figure 15: range scan cache performance";
      run = (fun s -> [ Exp_scan_cache.fig15 s ]) };
    { id = "fig16"; describes = "Figure 16: space overhead";
      run = Exp_space.fig16 };
    { id = "fig17"; describes = "Figure 17: search I/O (buffer misses)";
      run = Exp_search_io.fig17 };
    { id = "fig18a"; describes = "Figure 18(a): scan I/O time vs range size";
      run = (fun s -> [ Exp_scan_io.fig18a s ]) };
    { id = "fig18bc"; describes = "Figure 18(b,c): scan I/O vs #disks + speedups";
      run = (fun s -> [ Exp_scan_io.fig18bc s ]) };
    { id = "fig19"; describes = "Figure 19: DB2-style jump-pointer prefetching";
      run = (fun s -> [ Exp_db2.fig19a s; Exp_db2.fig19b s ]) };
    { id = "ablation"; describes = "Ablations: jump pointers, leaf prefetch, distance, overshoot";
      run = Exp_ablation.run };
    { id = "ext-varkey"; describes = "Extension: variable-length keys (slotted nodes)";
      run = (fun s -> [ Exp_varkey.run s ]) };
    { id = "ext-skew"; describes = "Extension: Zipf-skewed search workloads";
      run = (fun s -> [ Exp_skew.run s ]) };
    { id = "recovery"; describes = "Extension: WAL log volume and crash-recovery time";
      run = Exp_recovery.run };
    { id = "concurrency"; describes = "Extension: multi-client scaling of the sharded buffer pool";
      run = Exp_concurrency.run };
    { id = "ycsb"; describes = "Extension: YCSB mixes x skew x open-loop arrival rate";
      run = Exp_ycsb.run };
    { id = "faults"; describes = "Extension: media-fault chaos (checksums, retry, scrub, WAL repair)";
      run = Chaos.run };
    { id = "checkpoint";
      describes =
        "Extension: shadow-paging fuzzy checkpoints, replay bound, snapshots";
      run = Exp_checkpoint.run };
    { id = "overload";
      describes =
        "Extension: overload control — admission, deadlines, retry storms, \
         graceful degradation";
      run = Exp_overload.run };
    { id = "batch";
      describes =
        "Extension: batched level-wise descents — batch size x skew x index, \
         arrival discipline";
      run = Exp_batch.run };
    { id = "replica";
      describes =
        "Extension: WAL log-shipping replication — semi-sync commits, \
         failover blackout, snapshot catch-up";
      run = Exp_replica.run };
  ]

(* Exact id, or a unique prefix of one ("fig3" finds fig3b; "fig18" is
   ambiguous between fig18a and fig18bc and finds nothing). *)
let find id =
  match List.find_opt (fun e -> e.id = id) all with
  | Some _ as found -> found
  | None -> (
      match List.filter (fun e -> String.starts_with ~prefix:id e.id) all with
      | [ e ] -> Some e
      | _ -> None)

(* One experiment run: its tables, the metrics its measurement helpers
   recorded (see [Telemetry]), and wall-clock time.  This is the uniform
   record [Report] serialises into BENCH_results.json. *)
type outcome = {
  entry : entry;
  tables : Table.t list;
  metrics : Fpb_obs.Registry.t;
  wall_s : float;
  aborted : string option;
      (* typed overload escape: the experiment was cut short by
         [Buffer_pool.Overloaded]; tables produced so far and collected
         metrics are kept — partial results beat a backtrace *)
}

let run_entry scale e =
  let t0 = Unix.gettimeofday () in
  let aborted = ref None in
  let metrics, tables =
    Telemetry.with_collector (fun () ->
        try e.run scale
        with Fpb_storage.Buffer_pool.Overloaded { page; scans } ->
          aborted :=
            Some
              (Printf.sprintf
                 "buffer pool overloaded (page %d refused after %d victim \
                  scans) — results are partial"
                 page scans);
          [])
  in
  {
    entry = e; tables; metrics; wall_s = Unix.gettimeofday () -. t0;
    aborted = !aborted;
  }

let run_and_print ppf scale e =
  let o = run_entry scale e in
  List.iter (Table.print ppf) o.tables;
  (match o.aborted with
  | Some why -> Fmt.pf ppf "%s ABORTED: %s@." e.id why
  | None -> ());
  Fmt.pf ppf "(%s finished in %.1fs wall clock)@." e.id o.wall_s;
  o
