(* Media-fault chaos harness.

   Each cell runs a deterministic search/insert/delete workload against a
   freshly built index while its data disks misbehave according to a
   seeded {!Fpb_storage.Fault.profile}: transient read/write errors,
   latent sector errors, and silent corruption (bit rot and torn
   sectors).  Fault schedules are pure functions of (seed, disk, page,
   access count), so every cell is reproducible and a zero-fault "golden"
   run of the same workload is a sound oracle.

   Scrubbing is paced, not stop-the-world: a {!Fpb_storage.Scrub.sched}
   ticks after every operation at a configurable bandwidth (pages per
   tick), so scrub I/O competes with foreground reads on the simulated
   disks and its latency cost shows up in the cell's elapsed time.  A
   final synchronous pass heals whatever the paced laps had not reached
   yet before the end-state oracle runs.

   Legs per index structure:

   - WAL-attached (with [log_base_images], so every page has full log
     coverage): checksum failures and latent sectors must be repaired
     transparently from the log.  The oracle demands zero operations see
     an {!Fpb_storage.Buffer_pool.Io_error}, the final key set equal the
     golden model, structural invariants hold, and scrub finds nothing
     unrecoverable.  The extra simulated time over the golden run is the
     price of retries, repairs and scrubbing.

   - Uncovered (no WAL): detection without repair.  The workload is
     search-only so a failed operation cannot half-apply.  Injected
     corruption is persistent media damage (bit rot stays on the platter
     until something rewrites it), so with no repair source the damaged
     pages stay damaged; the oracle is that every operation either raises
     a typed [Io_error] or returns exactly the model's answer — damage is
     detected, never silently served.

   - Log-fault (K>=2 mirrors): data faults as above, plus a fault
     schedule armed on log mirror 0 via {!Fpb_wal.Wal.set_log_faults}.
     Every repair scan and the final crash-recovery must fall back to
     the clean mirror; the leg power-cuts at the end, recovers, and the
     oracle additionally demands every committed operation survived
     ([damaged_records = 0], [committed_ops] = ops run).

   - Detection (K=1): a single log disk with an interior span of the
     committed stream deterministically zeroed
     ({!Fpb_wal.Wal.inject_mirror_damage}).  There is no second copy, so
     recovery cannot restore the lost records — the oracle is that it
     reports them ([damaged_records > 0]) instead of silently serving a
     truncated history. *)

open Fpb_simmem
open Fpb_btree_common
open Fpb_storage
open Fpb_wal

type op = Search of int | Ins of int * int | Del of int

(* bulk entries, operations, scrub bandwidth (pages/tick), fault rates *)
let params = function
  | Scale.Tiny -> (50_000, 400, 2, [ 0.01; 0.05 ])
  | Scale.Quick -> (120_000, 1_200, 2, [ 0.005; 0.02; 0.05 ])
  | Scale.Full -> (400_000, 3_000, 4, [ 0.001; 0.01; 0.05; 0.1 ])

(* Small pages and a pool far smaller than the tree, so the workload
   constantly re-reads pages from the faulty disks instead of running
   memory-resident. *)
let page_size = 4096
let pool_pages = 32

let gen_ops rng pairs n =
  let existing () = fst pairs.(Fpb_workload.Prng.int rng (Array.length pairs)) in
  List.init n (fun _ ->
      let r = Fpb_workload.Prng.int rng 100 in
      if r < 50 then Search (existing ())
      else if r < 70 then
        Ins (1 + Fpb_workload.Prng.int rng 0x3FFFFFFE, Fpb_workload.Prng.int rng 0xFFFF)
      else if r < 85 then Ins (existing (), Fpb_workload.Prng.int rng 0xFFFF)
      else Del (existing ()))

let key_set idx =
  let got = ref [] in
  Index_sig.iter idx (fun k v -> got := (k, v) :: !got);
  List.sort compare !got

(* What happens to the log at the end of the workload. *)
type log_leg =
  [ `None  (* detach quietly *)
  | `Survive  (* K>=2, mirror 0 faulty: crash, recover, demand no loss *)
  | `Detect (* K=1, interior span zeroed: crash, recover, demand report *) ]

type cell = {
  kind : Setup.kind;
  label : string;  (* "golden", "r=0.0100", "no-wal r=0.0100", "log K=2 ..." *)
  covered : bool;  (* WAL attached with full page coverage *)
  rate : float;
  ops_run : int;
  detected : int;  (* Io_error surfaced to the workload *)
  checksum_fails : int;  (* io.error.checksum *)
  latent_fails : int;  (* io.error.latent *)
  repaired : int;  (* repair.repaired *)
  retries : int;  (* io.retry.read *)
  retry_wait_ns : int;
  log_mirrors : int;  (* 0 when no WAL is attached *)
  mirror_fallbacks : int;  (* wal.mirror.fallbacks *)
  mirror_heals : int;  (* wal.mirror.repairs *)
  damaged_records : int;  (* from the end-of-leg recovery, if any *)
  scrub : Scrub.report;
  elapsed_ns : int;  (* workload + paced scrub ticks (final heal pass excluded) *)
  failures : string list;  (* oracle violations; must be empty *)
}

(* One cell: build, arm, run (ticking the scrubber), heal, crash/recover
   if the leg says so, disarm, verify. *)
let run_cell kind pairs ops ~scrub_bw ~rate ~covered ~seed ~log_mirrors
    ~log_rate ~(log_leg : log_leg) =
  let sys = Setup.make ~n_disks:2 ~pool_pages ~page_size () in
  let idx = Run.build sys kind pairs ~fill:0.8 in
  let wal =
    if covered then
      Some
        (Wal.attach ~log_base_images:true ~log_mirrors
           ~meta:(Index_sig.meta idx) sys.Setup.pool)
    else begin
      (* No log: write everything back so each page is durably stamped,
         making later damage detectable by checksum. *)
      Buffer_pool.flush_dirty sys.Setup.pool;
      None
    end
  in
  Buffer_pool.clear sys.Setup.pool;
  Buffer_pool.reset_stats sys.Setup.pool;
  let profile = if rate > 0.0 then Some (Fault.scaled ~seed rate) else None in
  Disk_model.set_faults sys.Setup.disks profile;
  (* The log is not exempt: the `Survive leg arms the same kind of
     schedule on mirror 0 only, so mirror 1 stays a sound fallback (a
     simultaneous double fault is beyond any K=2 scheme's contract). *)
  (match (wal, log_leg) with
  | Some w, `Survive ->
      Wal.set_log_faults w ~mirror:0
        (Some (Fault.scaled ~seed:(seed + 7919) log_rate))
  | _ -> ());
  let st = Buffer_pool.stats sys.Setup.pool in
  let c field = Fpb_obs.Counter.value field in
  let detected = ref 0 in
  let sched = Scrub.scheduler ~pages_per_tick:scrub_bw sys.Setup.pool in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* Running model: what every search must answer.  A successful read
     always went through checksum verification, so a successful operation
     returning anything but the model's answer means corrupt bytes were
     silently served — the one thing this harness exists to rule out. *)
  let m = Hashtbl.create 1024 in
  Array.iter (fun (k, v) -> Hashtbl.replace m k v) pairs;
  let wrong = ref 0 in
  let t0 = Clock.now sys.Setup.sim.Sim.clock in
  List.iteri
    (fun i op ->
      let opn = i + 1 in
      (try
         (match op with
         | Search k ->
             if Index_sig.search idx k <> Hashtbl.find_opt m k then incr wrong
         | Ins (k, v) ->
             ignore (Index_sig.insert idx k v);
             Hashtbl.replace m k v
         | Del k ->
             ignore (Index_sig.delete idx k);
             Hashtbl.remove m k);
         match wal with
         | Some w -> Wal.commit w ~op:opn ~meta:(Index_sig.meta idx)
         | None -> ()
       with Buffer_pool.Io_error _ -> incr detected);
      ignore (Scrub.tick sched : Scrub.report))
    ops;
  let elapsed_ns = Clock.now sys.Setup.sim.Sim.clock - t0 in
  (* Final synchronous pass: heal anything the paced laps had not
     reached before the end-state oracle reads. *)
  let scrub = ref (Scrub.merge (Scrub.total sched) (Scrub.run sys.Setup.pool)) in
  (* End-of-leg log exercise: power-cut and recover through the (faulty
     or damaged) log before the oracle looks at the recovered state. *)
  let n_ops = List.length ops in
  let recovery = ref None in
  (match (wal, log_leg) with
  | Some w, `Survive ->
      Wal.crash_now w;
      let r = Wal.recover w in
      recovery := Some r;
      Index_sig.restore_meta idx r.Wal.meta;
      if r.Wal.damaged_records > 0 then
        fail "mirrored log lost %d records despite a clean mirror"
          r.Wal.damaged_records;
      if r.Wal.committed_ops <> n_ops then
        fail "recovery found %d committed ops, expected %d" r.Wal.committed_ops
          n_ops
  | Some w, `Detect ->
      (* Zero an interior span near the committed tail: well past the
         initial checkpoint, with readable records beyond it, so the
         scan must classify it as damage rather than a torn tail. *)
      let off = max 0 (Wal.durable_bytes w - 256) in
      Wal.inject_mirror_damage w ~mirror:0 (Wal.Zero_span { off; len = 64 });
      Wal.crash_now w;
      let r = Wal.recover w in
      recovery := Some r;
      Index_sig.restore_meta idx r.Wal.meta;
      if r.Wal.damaged_records = 0 then
        fail "single-mirror log damage was silently absorbed (no loss report)";
      (* The surviving prefix must still be a structurally sound index. *)
      (try Index_sig.check idx
       with e -> fail "recovered prefix fails check: %s" (Printexc.to_string e))
  | _ -> ());
  (* Disarm (clears latent sectors and stops fresh draws) before the
     final oracle reads. *)
  Disk_model.set_faults sys.Setup.disks None;
  (match wal with Some w -> Wal.set_log_faults w None | None -> ());
  if !wrong > 0 then
    fail "%d operations silently returned wrong answers" !wrong;
  if covered then begin
    (* Full coverage: every fault must have been absorbed by retry or
       repair (the final scrub pass above heals any lingering media
       damage), so nothing may have surfaced — and unless the leg
       deliberately lost log records (`Detect), the final state must
       match the model exactly. *)
    if !detected > 0 then
      fail "%d operations saw Io_error despite full WAL coverage" !detected;
    if (!scrub).Scrub.unrecoverable <> [] then
      fail "scrub reported %d unrecoverable pages despite full WAL coverage (%s)"
        (List.length (!scrub).Scrub.unrecoverable)
        (String.concat "; "
           (List.map
              (fun (p, m) -> Printf.sprintf "page %d: %s" p m)
              (!scrub).Scrub.unrecoverable));
    if log_leg <> `Detect then begin
      (match Index_sig.check_invariants idx with
      | Ok _ -> ()
      | Error m -> fail "invariant check: %s" m);
      let want =
        Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [] |> List.sort compare
      in
      if key_set idx <> want then fail "key set differs from model"
    end
  end
  else if rate > 0.0 && !detected = 0 && c st.Buffer_pool.err_checksum = 0
          && c st.Buffer_pool.err_latent = 0 then
    (* Detection-only: the damaged pages stay damaged (no repair source),
       so no end-state check — but the leg is vacuous unless the checksum
       layer actually caught something. *)
    fail "uncovered leg detected no faults (rate too low to exercise it)";
  let wkv = match wal with Some w -> Wal.kv w | None -> [] in
  let wc name = match List.assoc_opt name wkv with Some v -> v | None -> 0 in
  (match wal with
  | Some w ->
      Telemetry.add_kv wkv;
      Wal.detach w
  | None -> ());
  let label =
    match log_leg with
    | `Survive -> Printf.sprintf "log K=%d r=%.4f" log_mirrors log_rate
    | `Detect -> "log K=1 damage"
    | `None ->
        if rate = 0.0 then "golden"
        else Printf.sprintf "%sr=%.4f" (if covered then "" else "no-wal ") rate
  in
  Telemetry.add_kv (Buffer_pool.kv sys.Setup.pool);
  Telemetry.add_kv (Disk_model.kv sys.Setup.disks);
  Telemetry.add_kv (Scrub.kv !scrub);
  {
    kind;
    label;
    covered;
    rate;
    ops_run = n_ops;
    detected = !detected;
    checksum_fails = c st.Buffer_pool.err_checksum;
    latent_fails = c st.Buffer_pool.err_latent;
    repaired = c st.Buffer_pool.repair_repaired;
    retries = c st.Buffer_pool.retry_read;
    retry_wait_ns = c st.Buffer_pool.retry_wait_ns;
    log_mirrors = (match wal with Some _ -> log_mirrors | None -> 0);
    mirror_fallbacks = wc "wal.mirror.fallbacks";
    mirror_heals = wc "wal.mirror.repairs";
    damaged_records =
      (match !recovery with Some r -> r.Wal.damaged_records | None -> 0);
    scrub = !scrub;
    elapsed_ns;
    failures = List.rev !failures;
  }

let run_kind ?(seed = 42) ?(log_mirrors = 2) ?log_rate ?scrub_bw scale kind =
  let n_bulk, n_ops, default_bw, rates = params scale in
  let scrub_bw = match scrub_bw with Some b -> b | None -> default_bw in
  let rng = Fpb_workload.Prng.create seed in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n_bulk in
  let ops = gen_ops rng pairs n_ops in
  let searches = List.filter (function Search _ -> true | _ -> false) ops in
  let plain rate covered ops =
    run_cell kind pairs ops ~scrub_bw ~rate ~covered ~seed ~log_mirrors:1
      ~log_rate:0.0 ~log_leg:`None
  in
  let golden = plain 0.0 true ops in
  let covered = List.map (fun rate -> plain rate true ops) rates in
  (* Uncovered leg at the highest rate: detection is the whole defence. *)
  let top_rate = List.fold_left max 0.0 rates in
  let uncovered = plain top_rate false searches in
  let log_rate = match log_rate with Some r -> r | None -> top_rate in
  (* Log-fault leg: data faults at the top rate AND a faulty log mirror;
     K is clamped to >= 2 so the clean-mirror contract holds. *)
  let log_survive =
    run_cell kind pairs ops ~scrub_bw ~rate:top_rate ~covered:true ~seed
      ~log_mirrors:(max 2 log_mirrors) ~log_rate ~log_leg:`Survive
  in
  (* Single-mirror detection leg: no fault schedule, one deterministic
     hole — recovery must report the loss, never paper over it. *)
  let log_detect =
    run_cell kind pairs ops ~scrub_bw ~rate:0.0 ~covered:true ~seed
      ~log_mirrors:1 ~log_rate:0.0 ~log_leg:`Detect
  in
  (golden, covered @ [ uncovered; log_survive; log_detect ])

let overhead_pct golden cell =
  if golden.elapsed_ns = 0 then 0.0
  else
    100.0
    *. float_of_int (cell.elapsed_ns - golden.elapsed_ns)
    /. float_of_int golden.elapsed_ns

(* Run every index structure; returns all cells and a summary table. *)
let run_all ?seed ?log_mirrors ?log_rate ?scrub_bw scale =
  let per_kind =
    List.map
      (fun k -> (k, run_kind ?seed ?log_mirrors ?log_rate ?scrub_bw scale k))
      Setup.all_kinds
  in
  let cells =
    List.concat_map (fun (_, (golden, rest)) -> golden :: rest) per_kind
  in
  let rows =
    List.concat_map
      (fun (kind, (golden, rest)) ->
        List.map
          (fun c ->
            [
              Setup.kind_name kind;
              c.label;
              Table.cell_i c.detected;
              Table.cell_i c.checksum_fails;
              Table.cell_i c.latent_fails;
              Table.cell_i c.repaired;
              Table.cell_i c.retries;
              Table.cell_i c.scrub.Scrub.clean;
              Table.cell_i c.scrub.Scrub.repaired;
              Table.cell_i c.scrub.Scrub.deferred;
              Table.cell_i (List.length c.scrub.Scrub.unrecoverable);
              (if c.log_mirrors = 0 then "-" else string_of_int c.log_mirrors);
              Table.cell_i c.mirror_fallbacks;
              Table.cell_i c.mirror_heals;
              Table.cell_i c.damaged_records;
              (* The uncovered leg runs a different (search-only) workload
                 and the log legs end in a recovery, so only the plain
                 covered legs are time-comparable to the golden run. *)
              (if c.rate = 0.0 || not c.covered || c.damaged_records > 0
                  || c.mirror_fallbacks > 0
               then "-"
               else Table.cell_f (overhead_pct golden c));
              Table.cell_i (List.length c.failures);
            ])
          (golden :: rest))
      per_kind
  in
  let table =
    Table.make ~id:"chaos"
      ~title:
        "Media-fault chaos harness (oracle failures must be 0; covered legs \
         repair, the no-wal leg detects, log legs survive K=2 / report K=1)"
      ~header:
        [
          "index"; "leg"; "io_err"; "cksum"; "latent"; "repaired"; "retries";
          "scrub_ok"; "scrub_fix"; "defer"; "scrub_bad"; "K"; "m_fb"; "heal";
          "dmg"; "overhead%"; "failures";
        ]
      rows
  in
  (cells, table)

(* ------------------- shadow-metadata damage leg ---------------------- *)

(* The legs above rot data pages and log mirrors; this one rots the
   shadow-paging subsystem's own metadata — the persisted indirection
   tables and superblocks ({!Fpb_snapshot.Page_map}).  The workload runs
   with fuzzy checkpoints so several generations flip, then the live
   generation's superblock (or its table slot, or both superblocks) is
   deterministically damaged and the machine power-cuts.

   The oracle: with one generation damaged, {!Fpb_snapshot.Shadow.recover}
   must fall back to the prior complete generation
   ([pagemap.superblock_fallbacks > 0]) and still land on every committed
   operation — the WAL replays the wider gap from the older cut.  With
   both superblocks gone, plain WAL recovery is the safety net
   ([ckpt.plain_recoveries = 1]) and still loses nothing.  Corrupt
   metadata may cost a fallback, never data. *)

module Shadow = Fpb_snapshot.Shadow
module Page_map = Fpb_snapshot.Page_map

type shadow_cell = {
  s_kind : Setup.kind;
  s_label : string;
  s_flips : int;
  s_fallbacks : int;  (* pagemap.superblock_fallbacks *)
  s_plain : int;  (* ckpt.plain_recoveries *)
  s_remaps : int;  (* pagemap.remaps *)
  s_committed : int;
  s_failures : string list;
}

let run_shadow_cell kind pairs ops ~target =
  let sys = Setup.make ~n_disks:2 ~pool_pages ~page_size () in
  let idx = Run.build sys kind pairs ~fill:0.8 in
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.Setup.pool in
  let shadow = Shadow.attach ~meta:(Index_sig.meta idx) wal sys.Setup.pool in
  let n_ops = List.length ops in
  let ckpt_every = max 1 (n_ops / 4) in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> failures := s :: !failures) fmt in
  let m = Hashtbl.create 1024 in
  Array.iter (fun (k, v) -> Hashtbl.replace m k v) pairs;
  let wrong = ref 0 in
  List.iteri
    (fun i op ->
      let opn = i + 1 in
      (match op with
      | Search k ->
          if Index_sig.search idx k <> Hashtbl.find_opt m k then incr wrong
      | Ins (k, v) ->
          ignore (Index_sig.insert idx k v);
          Hashtbl.replace m k v
      | Del k ->
          ignore (Index_sig.delete idx k);
          Hashtbl.remove m k);
      Wal.commit wal ~op:opn ~meta:(Index_sig.meta idx);
      if opn mod ckpt_every = 0 then begin
        Shadow.checkpoint_begin shadow;
        while
          not (Shadow.checkpoint_tick ~pages:4 shadow
                 ~meta:(Index_sig.meta idx))
        do
          ()
        done
      end)
    ops;
  if !wrong > 0 then fail "%d operations silently returned wrong answers" !wrong;
  let map = Shadow.map shadow in
  let live = Shadow.current_generation shadow - 1 in
  let live_slot = live land 1 in
  let label =
    match target with
    | `Superblock ->
        Page_map.inject_damage map (Page_map.Superblock live_slot)
          (Page_map.Flip_bit { off = 9; bit = 2 });
        "sb bit-rot"
    | `Table ->
        Page_map.inject_damage map (Page_map.Table live_slot)
          (Page_map.Zero_span { off = 16; len = 128 });
        "table zero-span"
    | `Both_superblocks ->
        Page_map.inject_damage map (Page_map.Superblock 0)
          (Page_map.Flip_bit { off = 9; bit = 2 });
        Page_map.inject_damage map (Page_map.Superblock 1)
          (Page_map.Zero_span { off = 0; len = 8 });
        "both sbs gone"
  in
  Wal.crash_now wal;
  let r = Shadow.recover shadow in
  if r.Wal.committed_ops <> n_ops then
    fail "recovery found %d committed ops, expected %d" r.Wal.committed_ops
      n_ops;
  Index_sig.restore_meta idx r.Wal.meta;
  (try Index_sig.check idx with Failure msg -> fail "structural check: %s" msg);
  let want =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [] |> List.sort compare
  in
  if key_set idx <> want then fail "key set differs from model";
  let kv = Shadow.kv shadow in
  let g name = Option.value ~default:0 (List.assoc_opt name kv) in
  let fallbacks = g "pagemap.superblock_fallbacks" in
  let plain = g "ckpt.plain_recoveries" in
  (match target with
  | `Superblock | `Table ->
      if fallbacks = 0 then
        fail "damaged live metadata but recovery never fell back a generation";
      if plain > 0 then
        fail "fell through to plain WAL recovery with an intact prior \
             generation"
  | `Both_superblocks ->
      if plain = 0 then
        fail "both superblocks damaged yet a generation was trusted");
  Telemetry.add_kv kv;
  Shadow.detach shadow;
  Wal.detach wal;
  {
    s_kind = kind;
    s_label = label;
    s_flips = g "ckpt.flips";
    s_fallbacks = fallbacks;
    s_plain = plain;
    s_remaps = g "pagemap.remaps";
    s_committed = r.Wal.committed_ops;
    s_failures = List.rev !failures;
  }

let shadow_meta_leg ?(seed = 42) scale =
  let n_bulk, n_ops, _, _ = params scale in
  let rng = Fpb_workload.Prng.create seed in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n_bulk in
  let ops = gen_ops rng pairs n_ops in
  let cells =
    List.concat_map
      (fun kind ->
        List.map
          (fun target -> run_shadow_cell kind pairs ops ~target)
          [ `Superblock; `Table; `Both_superblocks ])
      Setup.all_kinds
  in
  let rows =
    List.map
      (fun c ->
        [
          Setup.kind_name c.s_kind;
          c.s_label;
          Table.cell_i c.s_flips;
          Table.cell_i c.s_fallbacks;
          Table.cell_i c.s_plain;
          Table.cell_i c.s_remaps;
          Table.cell_i c.s_committed;
          Table.cell_i (List.length c.s_failures);
        ])
      cells
  in
  let table =
    Table.make ~id:"chaos-shadow-meta"
      ~title:
        "Shadow-metadata damage (live superblock / table slot / both \
         superblocks rotted, then power cut; recovery must fall back a \
         generation — or to plain WAL replay — and lose nothing)"
      ~header:
        [
          "index"; "leg"; "flips"; "fallbacks"; "plain"; "remaps";
          "committed"; "failures";
        ]
      rows
  in
  (cells, table)

(* Scrub-bandwidth sweep: the same faulty foreground workload at
   increasing scrub rates.  Foreground latency (ns/op over the workload
   span, which the paced ticks share) rises with bandwidth; pages the
   scrubber reaches per lap rise with it.  bw=0 is the no-scrub
   baseline. *)
let scrub_sweep ?(seed = 42) scale =
  let n_bulk, n_ops, _, rates = params scale in
  let rate = List.hd rates in
  let rng = Fpb_workload.Prng.create seed in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n_bulk in
  let ops = gen_ops rng pairs n_ops in
  let bws = [ 0; 2; 8; 32 ] in
  let cells =
    List.map
      (fun bw ->
        ( bw,
          run_cell Setup.Disk_first pairs ops ~scrub_bw:bw ~rate ~covered:true
            ~seed ~log_mirrors:1 ~log_rate:0.0 ~log_leg:`None ))
      bws
  in
  let rows =
    List.map
      (fun (bw, c) ->
        [
          Table.cell_i bw;
          Table.cell_i (c.elapsed_ns / max 1 c.ops_run);
          Table.cell_i c.scrub.Scrub.scanned;
          Table.cell_i c.scrub.Scrub.repaired;
          Table.cell_i c.scrub.Scrub.deferred;
          Table.cell_i (List.length c.failures);
        ])
      cells
  in
  let table =
    Table.make ~id:"chaos-scrub-bw"
      ~title:
        (Printf.sprintf
           "Scrub bandwidth vs. foreground latency (disk-first fpB+tree, \
            r=%.4f, %d ops)"
           rate n_ops)
      ~header:[ "pages/tick"; "ns/op"; "scanned"; "scrub_fix"; "defer"; "failures" ]
      rows
  in
  (List.map snd cells, table)

(* Scrub auto-throttle: the same faulty foreground workload under three
   pacing policies.  "off" measures the unimpeded foreground p99 and
   calibrates the throttler's target (1.5x that); "fixed" runs the
   scrubber flat out at the bandwidth cap; "auto" wraps the same cap in
   a {!Fpb_storage.Scrub.throttler} fed each operation's latency, so it
   halves the bandwidth whenever a window's p99 overshoots the target
   and creeps back up (+1 per quiet window) when the foreground is
   idle.  The table shows the trade: the throttled leg should land its
   p99 near the target while still making scrub progress. *)
let throttle_sweep ?(seed = 42) scale =
  let n_bulk, n_ops, _, rates = params scale in
  let rate = List.hd rates in
  let rng = Fpb_workload.Prng.create seed in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n_bulk in
  let ops = gen_ops rng pairs n_ops in
  let max_bw = 32 in
  let run_leg policy =
    let sys = Setup.make ~n_disks:2 ~pool_pages ~page_size () in
    let idx = Run.build sys Setup.Disk_first pairs ~fill:0.8 in
    let wal =
      Wal.attach ~log_base_images:true ~meta:(Index_sig.meta idx)
        sys.Setup.pool
    in
    Buffer_pool.clear sys.Setup.pool;
    Buffer_pool.reset_stats sys.Setup.pool;
    Disk_model.set_faults sys.Setup.disks (Some (Fault.scaled ~seed rate));
    let sched =
      Scrub.scheduler
        ~pages_per_tick:(match policy with `Off -> 0 | _ -> max_bw)
        sys.Setup.pool
    in
    let th =
      match policy with
      | `Throttled target ->
          Some
            (Scrub.throttler ~min_bw:0 ~max_bw ~window:50
               ~target_p99_ns:target sched)
      | _ -> None
    in
    let clock = sys.Setup.sim.Sim.clock in
    let lats = Array.make (List.length ops) 0 in
    List.iteri
      (fun i op ->
        let t0 = Clock.now clock in
        (try
           (match op with
           | Search k -> ignore (Index_sig.search idx k)
           | Ins (k, v) -> ignore (Index_sig.insert idx k v)
           | Del k -> ignore (Index_sig.delete idx k));
           Wal.commit wal ~op:(i + 1) ~meta:(Index_sig.meta idx)
         with Buffer_pool.Io_error _ -> ());
        ignore (Scrub.tick sched : Scrub.report);
        (* The interval includes the paced scrub tick: in this serial
           simulation the scrubber's interference with the foreground is
           the timeline its reads consume between operations, so the
           op+tick span is the per-op latency a client would see. *)
        let lat = Clock.now clock - t0 in
        lats.(i) <- lat;
        match th with Some th -> Scrub.observe th lat | None -> ())
      ops;
    Disk_model.set_faults sys.Setup.disks None;
    Wal.detach wal;
    Array.sort compare lats;
    let n = Array.length lats in
    let p99 = if n = 0 then 0 else lats.(99 * (n - 1) / 100) in
    let mean = if n = 0 then 0 else Array.fold_left ( + ) 0 lats / n in
    (p99, mean, Scrub.total sched, th)
  in
  let base_p99, base_mean, base_total, _ = run_leg `Off in
  let target = base_p99 * 3 / 2 in
  let fixed_p99, fixed_mean, fixed_total, _ = run_leg `Fixed in
  let thr_p99, thr_mean, thr_total, thr = run_leg (`Throttled target) in
  let backoffs, raises, final_bw =
    match thr with
    | Some th ->
        let b, r = Scrub.adjustments th in
        (b, r, Scrub.bandwidth th)
    | None -> (0, 0, 0)
  in
  Telemetry.add "chaos.throttle.target_p99_ns" target;
  Telemetry.add "chaos.throttle.backoffs" backoffs;
  Telemetry.add "chaos.throttle.raises" raises;
  Telemetry.add "chaos.throttle.final_bw" final_bw;
  Table.make ~id:"chaos-scrub-throttle"
    ~title:
      (Printf.sprintf
         "Scrub auto-throttle (AIMD on foreground p99; target = 1.5x \
          no-scrub p99 = %d ns; disk-first fpB+tree, r=%.4f, %d ops)"
         target rate n_ops)
    ~header:
      [ "policy"; "end bw"; "mean ns/op"; "p99 ns/op"; "scanned";
        "backoffs"; "raises" ]
    [
      [ "scrub off"; Table.cell_i 0; Table.cell_i base_mean;
        Table.cell_i base_p99; Table.cell_i base_total.Scrub.scanned; "-";
        "-" ];
      [ Printf.sprintf "fixed bw=%d" max_bw; Table.cell_i max_bw;
        Table.cell_i fixed_mean; Table.cell_i fixed_p99;
        Table.cell_i fixed_total.Scrub.scanned; "-"; "-" ];
      [ "auto-throttle"; Table.cell_i final_bw; Table.cell_i thr_mean;
        Table.cell_i thr_p99; Table.cell_i thr_total.Scrub.scanned;
        Table.cell_i backoffs; Table.cell_i raises ];
    ]

(* --------------- replication failover under link chaos ---------------- *)

(* The crashtest kill sweep exercises every record boundary over healthy
   links; this leg does the converse — one mid-workload kill per cell,
   but over a lossy, reordering link, with the full mixed workload (and
   its model oracle) running before and after the failover.  Loss and
   reordering must never change WHAT a replica holds (in-order delivery
   + retransmission make every durable prefix a prefix of the shipped
   stream), only WHEN — so the same promotion oracles hold: semi-sync
   promotion preserves every acked commit, async promotion lands exactly
   on the most advanced replica's durable prefix. *)

module Replica = Fpb_replica.Replica
module Net = Fpb_replica.Net

let lossy_profile =
  {
    Net.default_profile with
    Net.loss = 0.05;
    rto_ns = 1_000_000;
    reorder_p = 0.1;
    reorder_extra_ns = 300_000;
  }

type replica_cell = {
  r_kind : Setup.kind;
  r_label : string;
  r_acked : int;  (* commits acked by the kill horizon *)
  r_promoted : int;  (* promotion's committed op *)
  r_truncated : int;  (* staged records the promotion dropped *)
  r_drops : int;  (* net.drops over all links *)
  r_reorders : int;  (* net.reorders *)
  r_failures : string list;
}

(* The committed key set after the first [c] ops (searches are no-ops). *)
let model_upto pairs ops c =
  let m = Hashtbl.create 1024 in
  Array.iter (fun (k, v) -> Hashtbl.replace m k v) pairs;
  List.iteri
    (fun i op ->
      if i < c then
        match op with
        | Search _ -> ()
        | Ins (k, v) -> Hashtbl.replace m k v
        | Del k -> Hashtbl.remove m k)
    ops;
  m

let sorted_model m =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [] |> List.sort compare

let run_replica_cell kind pairs ops ~mode =
  let sys = Setup.make ~n_disks:2 ~pool_pages:96 ~page_size () in
  let idx = Run.build sys kind pairs ~fill:0.8 in
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.Setup.pool in
  let group =
    Replica.create
      ~config:{ Replica.default_config with Replica.mode }
      ~prng:(Fpb_workload.Prng.create 0xfa11)
      ~profiles:[ lossy_profile; lossy_profile ]
      (wal, sys.Setup.pool)
  in
  let n_ops = List.length ops in
  let kill_at = n_ops / 2 in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let m = ref (model_upto pairs ops 0) in
  let wrong = ref 0 in
  let apply_op idx wal opn op =
    (match op with
    | Search k ->
        if Index_sig.search idx k <> Hashtbl.find_opt !m k then incr wrong
    | Ins (k, v) ->
        ignore (Index_sig.insert idx k v);
        Hashtbl.replace !m k v
    | Del k ->
        ignore (Index_sig.delete idx k);
        Hashtbl.remove !m k);
    Wal.commit wal ~op:opn ~meta:(Index_sig.meta idx)
  in
  List.iteri
    (fun i op -> if i < kill_at then apply_op idx wal (i + 1) op)
    ops;
  (* Power-cut between ops: every executed commit returned to its
     client. *)
  Wal.crash_now wal;
  Replica.kill group;
  let horizon = Option.get (Replica.killed_at group) in
  let acked = Replica.acked_op group ~horizon in
  let best_durable =
    let best = ref 0 in
    for i = 0 to Replica.n_nodes group - 1 do
      best :=
        max !best (Replica.node_durable_op group (Replica.node group i) ~horizon)
    done;
    !best
  in
  let p = Replica.promote group in
  (match mode with
  | Replica.Semi_sync _ ->
      if p.Replica.committed_op < acked then
        fail "promotion lost %d acked commits over the lossy link"
          (acked - p.Replica.committed_op)
  | Replica.Async ->
      if p.Replica.committed_op <> best_durable then
        fail "async promotion op %d, most-advanced durable prefix %d"
          p.Replica.committed_op best_durable);
  if p.Replica.committed_op > kill_at then
    fail "promotion op %d ahead of the %d commits that ever ran"
      p.Replica.committed_op kill_at;
  let idx2 = Run.adopt kind p.Replica.pool ~meta:p.Replica.meta in
  (try Index_sig.check idx2
   with Failure msg -> fail "promoted structural check: %s" msg);
  m := model_upto pairs ops p.Replica.committed_op;
  if key_set idx2 <> sorted_model !m then
    fail "promoted key set differs from the model at op %d"
      p.Replica.committed_op;
  (* Continue on the new primary: re-apply everything past the promoted
     prefix (the lost suffix first, then the rest of the workload). *)
  let g2 = Replica.resume group p in
  List.iteri
    (fun i op ->
      let opn = i + 1 in
      if opn > p.Replica.committed_op then apply_op idx2 p.Replica.wal opn op)
    ops;
  if !wrong > 0 then fail "%d searches silently returned wrong answers" !wrong;
  (try Index_sig.check idx2
   with Failure msg -> fail "post-continuation structural check: %s" msg);
  if key_set idx2 <> sorted_model !m then
    fail "post-continuation key set differs from model";
  let survivor = Replica.node g2 0 in
  let synced = Replica.sync_node g2 ~horizon:max_int survivor in
  if synced <> n_ops then
    fail "surviving replica converged to op %d, expected %d" synced n_ops;
  let gkv = Replica.kv g2 in
  let g name = Option.value ~default:0 (List.assoc_opt name gkv) in
  Telemetry.add_kv gkv;
  Replica.detach g2;
  {
    r_kind = kind;
    r_label =
      (match mode with
      | Replica.Async -> "async"
      | Replica.Semi_sync k -> Printf.sprintf "semi-sync k=%d" k);
    r_acked = acked;
    r_promoted = p.Replica.committed_op;
    r_truncated = p.Replica.truncated_records;
    r_drops = g "net.drops";
    r_reorders = g "net.reorders";
    r_failures = List.rev !failures;
  }

let replica_leg ?(seed = 42) scale =
  let n_bulk, n_ops, _, _ = params scale in
  let rng = Fpb_workload.Prng.create seed in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n_bulk in
  let ops = gen_ops rng pairs n_ops in
  let cells =
    List.concat_map
      (fun kind ->
        List.map
          (fun mode -> run_replica_cell kind pairs ops ~mode)
          [ Replica.Async; Replica.Semi_sync 1 ])
      Setup.all_kinds
  in
  let rows =
    List.map
      (fun c ->
        [
          Setup.kind_name c.r_kind;
          c.r_label;
          Table.cell_i c.r_acked;
          Table.cell_i c.r_promoted;
          Table.cell_i (max 0 (c.r_acked - c.r_promoted));
          Table.cell_i c.r_truncated;
          Table.cell_i c.r_drops;
          Table.cell_i c.r_reorders;
          Table.cell_i (List.length c.r_failures);
        ])
      cells
  in
  let table =
    Table.make ~id:"chaos-replica"
      ~title:
        (Printf.sprintf
           "Failover under link chaos (5%% loss, 10%% reordering; primary \
            killed at op %d of %d; semi-sync must lose 0 acked commits, \
            async exactly the unacked suffix; failures must be 0)"
           (n_ops / 2) n_ops)
      ~header:
        [
          "index"; "mode"; "acked"; "promoted"; "lost"; "truncated"; "drops";
          "reorders"; "failures";
        ]
      rows
  in
  (cells, table)

(* ------------------- partition windows, no failover ------------------- *)

(* The failover leg cuts the primary; this one cuts the NETWORK and
   keeps the primary alive.  A semi-sync commit barrier waits for the
   replica ack, so a scheduled {!Net.profile.partitions} window turns
   into commit-latency stall: the first commit caught inside the window
   cannot complete before heal, [net.partition_waits] counts the waits,
   and — because delivery is in-order and retransmitted — the backlog
   drains completely on heal: every commit is acked and the replica's
   durable prefix catches up to the full history.  No acked commit is
   ever lost; the partition only moves WHEN, never WHAT. *)

type partition_cell = {
  p_kind : Setup.kind;
  p_label : string;
  p_window_ns : int;
  p_pre_p50_ns : int;  (* commit latency before the window opens *)
  p_stall_ns : int;  (* latency of the commit caught in the window *)
  p_post_p50_ns : int;  (* commit latency after heal *)
  p_waits : int;  (* net.partition_waits *)
  p_acked : int;  (* commits acked by the end *)
  p_failures : string list;
}

let run_partition_cell kind pairs ~window_ns ~ops_per_phase =
  let sys = Setup.make ~n_disks:2 ~pool_pages:96 ~page_size () in
  let idx = Run.build sys kind pairs ~fill:0.8 in
  let wal = Wal.attach ~meta:(Index_sig.meta idx) sys.Setup.pool in
  let group =
    Replica.create
      ~config:
        { Replica.default_config with Replica.mode = Replica.Semi_sync 1 }
      ~prng:(Fpb_workload.Prng.create 0x9a27)
      ~profiles:[ Net.default_profile ]
      (wal, sys.Setup.pool)
  in
  let clock = sys.Setup.sim.Sim.clock in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  let opn = ref 0 in
  let base = fst pairs.(Array.length pairs - 1) in
  (* One committed insert; returns its commit latency (simulated ns). *)
  let commit_one () =
    incr opn;
    ignore (Index_sig.insert idx (base + !opn) !opn);
    let t0 = Clock.now clock in
    Wal.commit wal ~op:!opn ~meta:(Index_sig.meta idx);
    Clock.now clock - t0
  in
  let p50 a =
    let s = Array.of_list a in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let pre = List.init ops_per_phase (fun _ -> commit_one ()) in
  (* Open the partition NOW: the very next shipped record falls inside
     the window and its semi-sync barrier must wait out the heal. *)
  let link = Replica.node_link (Replica.node group 0) in
  let t_open = Clock.now clock in
  let t_heal = t_open + window_ns in
  Net.set_profile link
    { (Net.profile link) with Net.partitions = [ (t_open, t_heal) ] };
  let stall_ns = commit_one () in
  if Clock.now clock < t_heal then
    fail "commit inside an open partition completed %d ns before heal"
      (t_heal - Clock.now clock);
  let waits = Fpb_obs.Counter.value (Net.stats link).Net.partition_waits in
  if waits = 0 then
    fail "no net.partition_waits recorded though a commit spanned the window";
  (* Healed: the backlog must drain and latency return to the floor. *)
  let post = List.init ops_per_phase (fun _ -> commit_one ()) in
  let pre_p50 = p50 pre and post_p50 = p50 post in
  if stall_ns < window_ns / 2 then
    fail "stalled commit latency %d ns, expected most of the %d ns window"
      stall_ns window_ns;
  if post_p50 > stall_ns / 4 then
    fail "post-heal commit p50 %d ns has not drained below the stall (%d ns)"
      post_p50 stall_ns;
  let horizon = Clock.now clock in
  let acked = Replica.acked_op group ~horizon in
  if acked <> !opn then
    fail "acked %d of %d commits after heal — the backlog did not drain"
      acked !opn;
  let node = Replica.node group 0 in
  let synced = Replica.sync_node group ~horizon node in
  if synced <> !opn then
    fail "replica converged to op %d after heal, expected %d" synced !opn;
  (try Index_sig.check idx with Failure msg -> fail "structural check: %s" msg);
  Telemetry.add_kv (Replica.kv group);
  Replica.detach group;
  {
    p_kind = kind;
    p_label = Printf.sprintf "semi-sync k=1, %d ms window"
        (window_ns / 1_000_000);
    p_window_ns = window_ns;
    p_pre_p50_ns = pre_p50;
    p_stall_ns = stall_ns;
    p_post_p50_ns = post_p50;
    p_waits = waits;
    p_acked = acked;
    p_failures = List.rev !failures;
  }

let partition_leg ?(seed = 42) scale =
  let n_bulk, n_ops, _, _ = params scale in
  let rng = Fpb_workload.Prng.create seed in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n_bulk in
  let ops_per_phase = max 8 (n_ops / 40) in
  let window_ns = 50_000_000 in
  let cells =
    List.map
      (fun kind -> run_partition_cell kind pairs ~window_ns ~ops_per_phase)
      Setup.all_kinds
  in
  List.iter
    (fun c ->
      let slug = Run.slug (Setup.kind_name c.p_kind) in
      Telemetry.add
        (Printf.sprintf "chaos.partition.%s.stall_ns" slug)
        c.p_stall_ns;
      Telemetry.add
        (Printf.sprintf "chaos.partition.%s.post_p50_ns" slug)
        c.p_post_p50_ns;
      Telemetry.add
        (Printf.sprintf "chaos.partition.%s.partition_waits" slug)
        c.p_waits)
    cells;
  let rows =
    List.map
      (fun c ->
        [
          Setup.kind_name c.p_kind;
          c.p_label;
          Table.cell_i c.p_pre_p50_ns;
          Table.cell_i c.p_stall_ns;
          Table.cell_i c.p_post_p50_ns;
          Table.cell_i c.p_waits;
          Table.cell_i c.p_acked;
          Table.cell_i (List.length c.p_failures);
        ])
      cells
  in
  let table =
    Table.make ~id:"chaos-partition"
      ~title:
        (Printf.sprintf
           "Network partition mid-run, primary alive (semi-sync k=1, %d ms \
            window): the commit caught in the window stalls until heal, \
            then the backlog drains — every commit acked, replica fully \
            caught up, commit latency back at the floor; failures must be 0"
           (window_ns / 1_000_000))
      ~header:
        [
          "index"; "scenario"; "pre p50 ns"; "stall ns"; "post p50 ns";
          "partition waits"; "acked"; "failures";
        ]
      rows
  in
  (cells, table)

(* Registry entry: the harness as an experiment, so `fpb exp faults`
   lands detection/repair counters in BENCH_results.json. *)
let run scale =
  let cells, table = run_all scale in
  let shadow_cells, shadow_table = shadow_meta_leg scale in
  let replica_cells, replica_table = replica_leg scale in
  let partition_cells, partition_table = partition_leg scale in
  let sweep_cells, sweep = scrub_sweep scale in
  let throttle = throttle_sweep scale in
  let fails =
    List.fold_left (fun a c -> a + List.length c.failures) 0 (cells @ sweep_cells)
    + List.fold_left
        (fun a c -> a + List.length c.s_failures)
        0 shadow_cells
    + List.fold_left
        (fun a c -> a + List.length c.r_failures)
        0 replica_cells
    + List.fold_left
        (fun a c -> a + List.length c.p_failures)
        0 partition_cells
  in
  if fails > 0 then Telemetry.add "chaos.oracle_failures" fails;
  [ table; shadow_table; replica_table; partition_table; sweep; throttle ]
