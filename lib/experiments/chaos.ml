(* Media-fault chaos harness.

   Each cell runs a deterministic search/insert/delete workload against a
   freshly built index while its data disks misbehave according to a
   seeded {!Fpb_storage.Fault.profile}: transient read/write errors,
   latent sector errors, and silent corruption (bit rot and torn
   sectors).  Fault schedules are pure functions of (seed, disk, page,
   access count), so every cell is reproducible and a zero-fault "golden"
   run of the same workload is a sound oracle.

   Two legs per index structure:

   - WAL-attached (with [log_base_images], so every page has full log
     coverage): checksum failures and latent sectors must be repaired
     transparently from the log.  The oracle demands zero operations see
     an {!Fpb_storage.Buffer_pool.Io_error}, the final key set equal the
     golden model, structural invariants hold, and periodic scrub passes
     find nothing unrecoverable.  The extra simulated time over the
     golden run is the price of retries, repairs and scrubbing.

   - Uncovered (no WAL): detection without repair.  The workload is
     search-only so a failed operation cannot half-apply.  Injected
     corruption is persistent media damage (bit rot stays on the platter
     until something rewrites it), so with no repair source the damaged
     pages stay damaged; the oracle is that every operation either raises
     a typed [Io_error] or returns exactly the model's answer — damage is
     detected, never silently served. *)

open Fpb_simmem
open Fpb_btree_common
open Fpb_storage
open Fpb_wal

type op = Search of int | Ins of int * int | Del of int

(* bulk entries, operations, scrub interval, escalating fault rates *)
let params = function
  | Scale.Tiny -> (50_000, 400, 100, [ 0.01; 0.05 ])
  | Scale.Quick -> (120_000, 1_200, 300, [ 0.005; 0.02; 0.05 ])
  | Scale.Full -> (400_000, 3_000, 500, [ 0.001; 0.01; 0.05; 0.1 ])

(* Small pages and a pool far smaller than the tree, so the workload
   constantly re-reads pages from the faulty disks instead of running
   memory-resident. *)
let page_size = 4096
let pool_pages = 32

let gen_ops rng pairs n =
  let existing () = fst pairs.(Fpb_workload.Prng.int rng (Array.length pairs)) in
  List.init n (fun _ ->
      let r = Fpb_workload.Prng.int rng 100 in
      if r < 50 then Search (existing ())
      else if r < 70 then
        Ins (1 + Fpb_workload.Prng.int rng 0x3FFFFFFE, Fpb_workload.Prng.int rng 0xFFFF)
      else if r < 85 then Ins (existing (), Fpb_workload.Prng.int rng 0xFFFF)
      else Del (existing ()))

let key_set idx =
  let got = ref [] in
  Index_sig.iter idx (fun k v -> got := (k, v) :: !got);
  List.sort compare !got

type cell = {
  kind : Setup.kind;
  label : string;  (* "golden", "r=0.0100", "no-wal r=0.0100" *)
  covered : bool;  (* WAL attached with full page coverage *)
  rate : float;
  ops_run : int;
  detected : int;  (* Io_error surfaced to the workload *)
  checksum_fails : int;  (* io.error.checksum *)
  latent_fails : int;  (* io.error.latent *)
  repaired : int;  (* repair.repaired *)
  retries : int;  (* io.retry.read *)
  retry_wait_ns : int;
  scrub : Scrub.report;
  elapsed_ns : int;  (* simulated time of the workload + scrub passes *)
  failures : string list;  (* oracle violations; must be empty *)
}

(* One cell: build, arm, run, scrub, disarm, verify. *)
let run_cell kind pairs ops ~scrub_every ~rate ~covered ~seed =
  let sys = Setup.make ~n_disks:2 ~pool_pages ~page_size () in
  let idx = Run.build sys kind pairs ~fill:0.8 in
  let wal =
    if covered then
      Some (Wal.attach ~log_base_images:true ~meta:(Index_sig.meta idx) sys.Setup.pool)
    else begin
      (* No log: write everything back so each page is durably stamped,
         making later damage detectable by checksum. *)
      Buffer_pool.flush_dirty sys.Setup.pool;
      None
    end
  in
  Buffer_pool.clear sys.Setup.pool;
  Buffer_pool.reset_stats sys.Setup.pool;
  let profile = if rate > 0.0 then Some (Fault.scaled ~seed rate) else None in
  Disk_model.set_faults sys.Setup.disks profile;
  let st = Buffer_pool.stats sys.Setup.pool in
  let c field = Fpb_obs.Counter.value field in
  let detected = ref 0 in
  let scrub = ref Scrub.empty in
  let failures = ref [] in
  let fail fmt = Printf.ksprintf (fun m -> failures := m :: !failures) fmt in
  (* Running model: what every search must answer.  A successful read
     always went through checksum verification, so a successful operation
     returning anything but the model's answer means corrupt bytes were
     silently served — the one thing this harness exists to rule out. *)
  let m = Hashtbl.create 1024 in
  Array.iter (fun (k, v) -> Hashtbl.replace m k v) pairs;
  let wrong = ref 0 in
  let t0 = Clock.now sys.Setup.sim.Sim.clock in
  List.iteri
    (fun i op ->
      let opn = i + 1 in
      (try
         (match op with
         | Search k ->
             if Index_sig.search idx k <> Hashtbl.find_opt m k then incr wrong
         | Ins (k, v) ->
             ignore (Index_sig.insert idx k v);
             Hashtbl.replace m k v
         | Del k ->
             ignore (Index_sig.delete idx k);
             Hashtbl.remove m k);
         match wal with
         | Some w -> Wal.commit w ~op:opn ~meta:(Index_sig.meta idx)
         | None -> ()
       with Buffer_pool.Io_error _ -> incr detected);
      if scrub_every > 0 && opn mod scrub_every = 0 then
        scrub := Scrub.merge !scrub (Scrub.run sys.Setup.pool))
    ops;
  scrub := Scrub.merge !scrub (Scrub.run sys.Setup.pool);
  let elapsed_ns = Clock.now sys.Setup.sim.Sim.clock - t0 in
  (* Disarm (clears latent sectors and stops fresh draws) before the
     final oracle reads. *)
  Disk_model.set_faults sys.Setup.disks None;
  if !wrong > 0 then
    fail "%d operations silently returned wrong answers" !wrong;
  if covered then begin
    (* Full coverage: every fault must have been absorbed by retry or
       repair (the final scrub pass above heals any lingering media
       damage), so nothing may have surfaced and the final state must
       match the model exactly. *)
    if !detected > 0 then
      fail "%d operations saw Io_error despite full WAL coverage" !detected;
    if (!scrub).Scrub.unrecoverable <> [] then
      fail "scrub reported %d unrecoverable pages despite full WAL coverage"
        (List.length (!scrub).Scrub.unrecoverable);
    (match Index_sig.check_invariants idx with
    | Ok _ -> ()
    | Error m -> fail "invariant check: %s" m);
    let want =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) m [] |> List.sort compare
    in
    if key_set idx <> want then fail "key set differs from model"
  end
  else if rate > 0.0 && !detected = 0 && c st.Buffer_pool.err_checksum = 0
          && c st.Buffer_pool.err_latent = 0 then
    (* Detection-only: the damaged pages stay damaged (no repair source),
       so no end-state check — but the leg is vacuous unless the checksum
       layer actually caught something. *)
    fail "uncovered leg detected no faults (rate too low to exercise it)";
  (match wal with Some w -> Wal.detach w | None -> ());
  let label =
    if rate = 0.0 then "golden"
    else Printf.sprintf "%sr=%.4f" (if covered then "" else "no-wal ") rate
  in
  Telemetry.add_kv (Buffer_pool.kv sys.Setup.pool);
  Telemetry.add_kv (Disk_model.kv sys.Setup.disks);
  Telemetry.add_kv (Scrub.kv !scrub);
  {
    kind;
    label;
    covered;
    rate;
    ops_run = List.length ops;
    detected = !detected;
    checksum_fails = c st.Buffer_pool.err_checksum;
    latent_fails = c st.Buffer_pool.err_latent;
    repaired = c st.Buffer_pool.repair_repaired;
    retries = c st.Buffer_pool.retry_read;
    retry_wait_ns = c st.Buffer_pool.retry_wait_ns;
    scrub = !scrub;
    elapsed_ns;
    failures = List.rev !failures;
  }

let run_kind ?(seed = 42) scale kind =
  let n_bulk, n_ops, scrub_every, rates = params scale in
  let rng = Fpb_workload.Prng.create seed in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n_bulk in
  let ops = gen_ops rng pairs n_ops in
  let searches = List.filter (function Search _ -> true | _ -> false) ops in
  let golden =
    run_cell kind pairs ops ~scrub_every ~rate:0.0 ~covered:true ~seed
  in
  let covered =
    List.map
      (fun rate -> run_cell kind pairs ops ~scrub_every ~rate ~covered:true ~seed)
      rates
  in
  (* Uncovered leg at the highest rate: detection is the whole defence. *)
  let top_rate = List.fold_left max 0.0 rates in
  let uncovered =
    run_cell kind pairs searches ~scrub_every ~rate:top_rate ~covered:false ~seed
  in
  (golden, covered @ [ uncovered ])

let overhead_pct golden cell =
  if golden.elapsed_ns = 0 then 0.0
  else
    100.0
    *. float_of_int (cell.elapsed_ns - golden.elapsed_ns)
    /. float_of_int golden.elapsed_ns

(* Run every index structure; returns all cells and a summary table. *)
let run_all ?seed scale =
  let per_kind = List.map (fun k -> (k, run_kind ?seed scale k)) Setup.all_kinds in
  let cells =
    List.concat_map (fun (_, (golden, rest)) -> golden :: rest) per_kind
  in
  let rows =
    List.concat_map
      (fun (kind, (golden, rest)) ->
        List.map
          (fun c ->
            [
              Setup.kind_name kind;
              c.label;
              Table.cell_i c.detected;
              Table.cell_i c.checksum_fails;
              Table.cell_i c.latent_fails;
              Table.cell_i c.repaired;
              Table.cell_i c.retries;
              Table.cell_i c.scrub.Scrub.clean;
              Table.cell_i c.scrub.Scrub.repaired;
              Table.cell_i (List.length c.scrub.Scrub.unrecoverable);
              (* The uncovered leg runs a different (search-only) workload,
                 so its time is not comparable to the golden run. *)
              (if c.rate = 0.0 || not c.covered then "-"
               else Table.cell_f (overhead_pct golden c));
              Table.cell_i (List.length c.failures);
            ])
          (golden :: rest))
      per_kind
  in
  let table =
    Table.make ~id:"chaos"
      ~title:
        "Media-fault chaos harness (oracle failures must be 0; covered legs \
         repair, the no-wal leg detects)"
      ~header:
        [
          "index"; "leg"; "io_err"; "cksum"; "latent"; "repaired"; "retries";
          "scrub_ok"; "scrub_fix"; "scrub_bad"; "overhead%"; "failures";
        ]
      rows
  in
  (cells, table)

(* Registry entry: the harness as an experiment, so `fpb exp faults`
   lands detection/repair counters in BENCH_results.json. *)
let run scale =
  let cells, table = run_all scale in
  let fails = List.fold_left (fun a c -> a + List.length c.failures) 0 cells in
  if fails > 0 then Telemetry.add "chaos.oracle_failures" fails;
  [ table ]
