(* Figure 3(b): execution-time breakdown of 2000 random searches,
   disk-optimized B+-Tree vs cache-optimized pB+-Tree, trees bulkloaded
   with [Scale.io_entries] keys (paper: 10M), caches cleared first. *)

open Fpb_simmem

let run scale =
  let n = Scale.io_entries scale in
  let page_size = 16384 in
  let rng = Fpb_workload.Prng.create 1001 in
  let pairs = Fpb_workload.Keygen.bulk_pairs rng n in
  let probes = Fpb_workload.Keygen.probes rng pairs (Scale.ops scale) in
  (* disk-optimized B+-Tree *)
  let sys, idx = Run.fresh ~page_size Setup.Disk_opt pairs ~fill:1.0 in
  let disk = Setup.measure_cycles sys (fun () -> Run.searches idx probes) in
  (* pB+-Tree (memory-resident) *)
  let sim = Sim.create () in
  let pb = Fpb_pbtree.Pbtree.create sim in
  Fpb_pbtree.Pbtree.bulkload pb pairs ~fill:1.0;
  let pbm =
    Setup.measure_cycles_sim sim (fun () ->
        Array.iter (fun k -> ignore (Fpb_pbtree.Pbtree.search pb k)) probes)
  in
  let base = float_of_int disk.Setup.total in
  let row name (busy, stall) =
    let total = busy + stall in
    [
      name;
      Table.cell_mcycles busy;
      Table.cell_mcycles stall;
      Table.cell_mcycles total;
      Printf.sprintf "%.0f%%" (100. *. float_of_int total /. base);
    ]
  in
  Table.make ~id:"fig3b"
    ~title:
      (Printf.sprintf
         "Search execution time breakdown, %d searches, %d keys (Mcycles)"
         (Scale.ops scale) n)
    ~header:[ "index"; "busy"; "dcache stalls"; "total"; "normalized" ]
    [
      row "disk-optimized B+tree" (disk.Setup.busy, disk.Setup.stall);
      row "pB+tree (cache-optimized)" (pbm.Setup.busy, pbm.Setup.stall);
    ]
