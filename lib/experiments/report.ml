(* BENCH_results.json builder (schema: docs/OBSERVABILITY.md).

   {
     "schema_version": 1,
     "run": { "timestamp", "scale", "ocaml_version", "hostname" },
     "experiments": [
       { "id", "describes", "wall_s",
         "metrics": { "counters": {...}, "histograms": {...} },
         "tables": [ { "id", "title", "header", "rows" } ] } ],
     "bechamel": [ { "name", "ns_per_op" } ]   // [] unless benched
   } *)

module J = Fpb_obs.Json

let table_json (t : Table.t) =
  let strs l = J.List (List.map (fun s -> J.Str s) l) in
  J.Obj
    [
      ("id", J.Str t.Table.id);
      ("title", J.Str t.title);
      ("header", strs t.header);
      ("rows", J.List (List.map strs t.rows));
    ]

let outcome_json (o : Registry.outcome) =
  J.Obj
    ([
       ("id", J.Str o.Registry.entry.Registry.id);
       ("describes", J.Str o.entry.describes);
       ("wall_s", J.Float o.wall_s);
       ("metrics", Fpb_obs.Registry.to_json o.metrics);
       ("tables", J.List (List.map table_json o.tables));
     ]
    @ match o.aborted with
      | Some why -> [ ("aborted", J.Str why) ]
      | None -> [])

let make ~scale ~timestamp ?(bechamel = []) outcomes =
  J.Obj
    [
      ("schema_version", J.Int 1);
      ( "run",
        J.Obj
          [
            ("timestamp", J.Str timestamp);
            ("scale", J.Str (Scale.to_string scale));
            ("ocaml_version", J.Str Sys.ocaml_version);
            ("hostname", J.Str (Unix.gethostname ()));
          ] );
      ("experiments", J.List (List.map outcome_json outcomes));
      ( "bechamel",
        J.List
          (List.map
             (fun (name, ns) ->
               J.Obj [ ("name", J.Str name); ("ns_per_op", J.Float ns) ])
             bechamel) );
    ]

(* Write to [path], or to stdout when [path] is "-". *)
let write path json =
  let s = J.to_string json in
  if path = "-" then print_string s
  else Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc s)
