(** Traditional disk-optimized B+-Tree (paper, Figure 3(a)): every node is
    one page holding a large sorted key array and a parallel pointer
    array, searched by plain binary search.  This is the cache-hostile
    baseline the paper starts from — a search touches O(log2 fanout)
    cache lines of the key array, almost all of them misses.

    Tree mechanics (descent, splits, bulkload, jump-pointer range scans)
    come from {!Fpb_btree_common.Paged_tree}; this module only supplies
    the page layout and its binary search. *)

(** The full common index interface: [create], [bulkload], [search],
    [search_batch] (sorted level-wise waves from
    {!Fpb_btree_common.Paged_tree}; a page shared by [k] probes of a
    wave counts one [level_accesses] access plus [k-1]
    [batch.dup_probes] — see [docs/BATCHING.md]), [insert], [delete],
    [range_scan], sizes, telemetry ([level_accesses] / [set_trace]) and
    uncharged checkers. *)
include Fpb_btree_common.Index_sig.S

(** Reverse (descending) scan of [start_key, end_key] entries, following
    the backward leaf chain; returns the number of entries visited. *)
val range_scan_rev :
  t -> ?prefetch:bool -> start_key:int -> end_key:int -> (int -> int -> unit) -> int

(** Pages of leaves prefetched ahead during jump-pointer range scans
    (default 16). *)
val set_io_prefetch_distance : t -> int -> unit
