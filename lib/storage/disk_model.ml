(* Discrete-event model of a farm of independent disks.

   Each disk serves requests one at a time in submission order.  A request
   costs a positioning overhead (seek + rotational latency) plus the page
   transfer time; a request for the physical page immediately following the
   previous one served by the same disk skips the positioning cost
   (sequential access).  Requests may start no earlier than a caller-chosen
   time, which lets the buffer pool model prefetcher threads dispatching
   work in the future relative to the simulated CPU clock.

   A disk may carry a fault profile (see [Fault]): reads and writes then
   draw from a deterministic seeded schedule and can fail transiently
   (succeed when retried), fail persistently (latent sector errors, cleared
   by the next write to the location, i.e. sector remapping), or silently
   return corrupted bytes.  The model only decides *what happened*; the
   caller owns the page bytes and applies any corruption spec itself, so
   layering stays clean. *)

open Fpb_simmem
module Counter = Fpb_obs.Counter

(* What a read returned.  Corruption is reported as a spec over byte
   offsets (callers reduce offsets mod their page size): either a list of
   (offset, xor mask) byte flips or a torn sector (a 512-byte span reads
   back zeroed). *)
type corruption = Bit_flips of (int * int) list | Torn_sector of int

type read_outcome =
  | Read_ok of int  (* completion time *)
  | Read_corrupt of int * corruption
  | Read_error of int * [ `Transient | `Latent ]  (* error discovered then *)

type fault_state = {
  profile : Fault.profile;
  access_count : (int * int, int) Hashtbl.t;  (* (disk, phys) -> reads *)
  transient_left : (int * int, int) Hashtbl.t;  (* remaining forced failures *)
  latent : (int * int, unit) Hashtbl.t;  (* unreadable until rewritten *)
}

type t = {
  clock : Clock.t;
  n_disks : int;
  seek_ns : int;
  transfer_ns : int;
  request_overhead_ns : int;  (* fixed per-request controller cost *)
  free_at : int array;  (* per disk: time the disk becomes idle *)
  last_phys : int array;  (* per disk: last physical page served *)
  faults : fault_state option array;  (* per disk *)
  c_reads : Counter.t;
  c_writes : Counter.t;
  c_write_runs : Counter.t;  (* coalesced multi-page write requests *)
  c_busy_ns : Counter.t;  (* total time disks spent servicing requests *)
  c_fault_transient_read : Counter.t;
  c_fault_transient_write : Counter.t;
  c_fault_latent : Counter.t;
  c_fault_corrupt : Counter.t;
}

(* 8 ms positioning (seek + rotational), 40 MB/s transfer: the paper's
   Seagate Cheetah 4LP-class disks. *)
let default_seek_ns = 8_000_000

let transfer_ns_of_page_size page_size = page_size * 25 (* 40 MB/s = 25 ns/B *)

let create ?(seek_ns = default_seek_ns) ?(request_overhead_ns = 0) ~transfer_ns
    ~n_disks clock =
  if n_disks <= 0 then invalid_arg "Disk_model.create";
  {
    clock;
    n_disks;
    seek_ns;
    transfer_ns;
    request_overhead_ns;
    free_at = Array.make n_disks 0;
    last_phys = Array.make n_disks (-10);
    faults = Array.make n_disks None;
    c_reads = Counter.make "disk.reads";
    c_writes = Counter.make "disk.writes";
    c_write_runs = Counter.make "disk.write_runs";
    c_busy_ns = Counter.make "disk.busy_ns";
    c_fault_transient_read = Counter.make "disk.fault.transient_read";
    c_fault_transient_write = Counter.make "disk.fault.transient_write";
    c_fault_latent = Counter.make "disk.fault.latent";
    c_fault_corrupt = Counter.make "disk.fault.corrupt";
  }

let n_disks t = t.n_disks

(* ------------------------- fault injection -------------------------- *)

let fresh_fault_state profile =
  {
    profile;
    access_count = Hashtbl.create 256;
    transient_left = Hashtbl.create 16;
    latent = Hashtbl.create 16;
  }

(* Arm (or with [None] disarm) fault injection on one disk or, without
   [disk], on all of them.  Arming resets the disk's fault history. *)
let set_faults t ?disk profile =
  let set d =
    t.faults.(d) <- Option.map fresh_fault_state profile
  in
  match disk with
  | Some d -> set d
  | None ->
      for d = 0 to t.n_disks - 1 do
        set d
      done

let faults_armed t = Array.exists Option.is_some t.faults

(* Latent sector errors outstanding across the farm (scrub telemetry). *)
let latent_sectors t =
  Array.fold_left
    (fun acc -> function
      | None -> acc
      | Some fs -> acc + Hashtbl.length fs.latent)
    0 t.faults

let corruption_spec ~profile h =
  if Fault.uniform (Fault.mix32 (h lxor 0x5bf03635)) < profile.Fault.torn_frac
  then Torn_sector (Fault.mix32 (h lxor 0x2545f491) land 0xffffff)
  else
    Bit_flips
      (List.init (max 1 profile.Fault.corrupt_bits) (fun i ->
           let hi = Fault.mix32 (h + (i * 0x27d4eb2f)) in
           (hi land 0xffffff, ((hi lsr 24) land 0xff) lor 1)))

(* Decide what this read of (disk, phys) does, advancing the location's
   deterministic schedule. *)
let draw_read_fault t ~disk ~phys =
  match t.faults.(disk) with
  | None -> `Ok
  | Some fs ->
      let loc = (disk, phys) in
      if Hashtbl.mem fs.latent loc then begin
        Counter.incr t.c_fault_latent;
        `Latent
      end
      else
        let left =
          Option.value ~default:0 (Hashtbl.find_opt fs.transient_left loc)
        in
        if left > 0 then begin
          Hashtbl.replace fs.transient_left loc (left - 1);
          Counter.incr t.c_fault_transient_read;
          `Transient
        end
        else begin
          let n =
            1 + Option.value ~default:0 (Hashtbl.find_opt fs.access_count loc)
          in
          Hashtbl.replace fs.access_count loc n;
          let p = fs.profile in
          let h = Fault.draw ~seed:p.Fault.seed ~disk ~phys ~n in
          let u = Fault.uniform h in
          if u < p.Fault.transient_read then begin
            (* this attempt fails; the next fail_len - 1 retries also do *)
            Hashtbl.replace fs.transient_left loc (p.Fault.transient_fail_len - 1);
            Counter.incr t.c_fault_transient_read;
            `Transient
          end
          else if u < p.Fault.transient_read +. p.Fault.latent then begin
            Hashtbl.replace fs.latent loc ();
            Counter.incr t.c_fault_latent;
            `Latent
          end
          else if u < p.Fault.transient_read +. p.Fault.latent +. p.Fault.corrupt
          then begin
            Counter.incr t.c_fault_corrupt;
            `Corrupt (corruption_spec ~profile:p h)
          end
          else `Ok
        end

(* A write to a location repairs its media state: latent sectors are
   remapped and any pending transient-failure run is forgotten.  The
   write itself can transiently fail, which the controller absorbs by
   retrying — modelled as a second service charge. *)
let draw_write_fault t ~disk ~phys =
  match t.faults.(disk) with
  | None -> false
  | Some fs ->
      let loc = (disk, phys) in
      Hashtbl.remove fs.latent loc;
      Hashtbl.remove fs.transient_left loc;
      let n =
        1 + Option.value ~default:0 (Hashtbl.find_opt fs.access_count loc)
      in
      Hashtbl.replace fs.access_count loc n;
      let p = fs.profile in
      let h = Fault.draw ~seed:(p.Fault.seed lxor 0x6a09e667) ~disk ~phys ~n in
      if Fault.uniform h < p.Fault.transient_write then begin
        Counter.incr t.c_fault_transient_write;
        true
      end
      else false

(* ----------------------------- service ------------------------------ *)

let service t ?(append = false) ~earliest ~disk ~phys () =
  let start = max earliest t.free_at.(disk) in
  (* [append]: log-style append — a request continuing the last served
     page (small records packing into the same physical page) keeps the
     head where it is, exactly like the next-page case. *)
  let sequential =
    phys = t.last_phys.(disk) + 1 || (append && phys = t.last_phys.(disk))
  in
  let cost =
    t.request_overhead_ns
    + if sequential then t.transfer_ns else t.seek_ns + t.transfer_ns
  in
  let completion = start + cost in
  t.free_at.(disk) <- completion;
  t.last_phys.(disk) <- phys;
  Counter.add t.c_busy_ns cost;
  completion

(* Submit a read; returns its completion time (absolute ns).  Never
   draws faults: the WAL's log disk and a few tests want the pre-fault
   contract.  Demand reads in the buffer pool use [read_result]. *)
let read t ?earliest ~disk ~phys () =
  let earliest =
    match earliest with Some e -> e | None -> Clock.now t.clock
  in
  Counter.incr t.c_reads;
  service t ~earliest ~disk ~phys ()

(* Submit a read through the fault schedule.  The disk does the work
   (and charges busy time) whether or not the request then fails: an
   erroring sector still costs its positioning and (attempted) transfer. *)
let read_result t ?earliest ~disk ~phys () =
  let completion = read t ?earliest ~disk ~phys () in
  match draw_read_fault t ~disk ~phys with
  | `Ok -> Read_ok completion
  | `Corrupt spec -> Read_corrupt (completion, spec)
  | `Transient -> Read_error (completion, `Transient)
  | `Latent -> Read_error (completion, `Latent)

let write_service t ~append ~earliest ~disk ~phys =
  Counter.incr t.c_writes;
  let completion = service t ~append ~earliest ~disk ~phys () in
  if draw_write_fault t ~disk ~phys then
    (* controller-level retry of a transiently failed write *)
    service t ~append ~earliest:completion ~disk ~phys ()
  else completion

(* Submit an asynchronous write-back; the caller never waits for it. *)
let write t ~disk ~phys =
  ignore
    (write_service t ~append:false ~earliest:(Clock.now t.clock) ~disk ~phys
      : int)

(* Submit a write whose completion time the caller cares about (e.g. a log
   flush that must be durable before the committer proceeds).  [append]
   extends sequential treatment to a same-page continuation (a
   replica's append-only log device). *)
let write_sync t ?earliest ?(append = false) ~disk ~phys () =
  let earliest =
    match earliest with Some e -> e | None -> Clock.now t.clock
  in
  write_service t ~append ~earliest ~disk ~phys

(* Submit [n] physically contiguous pages starting at [phys] as ONE
   write request: positioning (unless sequential with the previous
   request) and the per-request overhead are paid once, plus [n]
   transfers.  Each covered page still draws its own write fault —
   coalescing batches the I/O, it does not skip media effects; a
   transiently failed page costs the controller a positioned retry
   within the run.  [disk.writes] counts all [n] pages, so page
   accounting matches the per-page path exactly; [disk.write_runs]
   counts the single request. *)
let write_run t ?earliest ~disk ~phys ~n () =
  if n <= 0 then invalid_arg "Disk_model.write_run";
  let earliest =
    match earliest with Some e -> e | None -> Clock.now t.clock
  in
  let start = max earliest t.free_at.(disk) in
  let cost =
    ref
      (t.request_overhead_ns
      + (n * t.transfer_ns)
      + if phys = t.last_phys.(disk) + 1 then 0 else t.seek_ns)
  in
  Counter.add t.c_writes n;
  Counter.incr t.c_write_runs;
  for i = 0 to n - 1 do
    if draw_write_fault t ~disk ~phys:(phys + i) then
      cost := !cost + t.seek_ns + t.transfer_ns
  done;
  let completion = start + !cost in
  t.free_at.(disk) <- completion;
  t.last_phys.(disk) <- phys + n - 1;
  Counter.add t.c_busy_ns !cost;
  completion

let counters t =
  [
    t.c_reads; t.c_writes; t.c_write_runs; t.c_busy_ns;
    t.c_fault_transient_read; t.c_fault_transient_write; t.c_fault_latent;
    t.c_fault_corrupt;
  ]

(* Completion time of the last submitted request across the farm: a
   durability barrier (e.g. a sharp checkpoint's data fsync) waits until
   here before declaring the queued writes stable. *)
let drain t = Array.fold_left max 0 t.free_at

let kv t = List.map Counter.kv (counters t)
let reads t = Counter.value t.c_reads
let writes t = Counter.value t.c_writes
let write_runs t = Counter.value t.c_write_runs
let busy_ns t = Counter.value t.c_busy_ns
let reset_stats t = List.iter Counter.reset (counters t)

(* Forget positioning state and pending work, e.g. between experiments.
   Media fault state (latent sectors, schedules) persists: damage does
   not heal because an experiment ended. *)
let quiesce t =
  Array.fill t.free_at 0 t.n_disks 0;
  Array.fill t.last_phys 0 t.n_disks (-10)
