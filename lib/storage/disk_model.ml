(* Discrete-event model of a farm of independent disks.

   Each disk serves requests one at a time in submission order.  A request
   costs a positioning overhead (seek + rotational latency) plus the page
   transfer time; a request for the physical page immediately following the
   previous one served by the same disk skips the positioning cost
   (sequential access).  Requests may start no earlier than a caller-chosen
   time, which lets the buffer pool model prefetcher threads dispatching
   work in the future relative to the simulated CPU clock. *)

open Fpb_simmem
module Counter = Fpb_obs.Counter

type t = {
  clock : Clock.t;
  n_disks : int;
  seek_ns : int;
  transfer_ns : int;
  free_at : int array;  (* per disk: time the disk becomes idle *)
  last_phys : int array;  (* per disk: last physical page served *)
  c_reads : Counter.t;
  c_writes : Counter.t;
  c_busy_ns : Counter.t;  (* total time disks spent servicing requests *)
}

(* 8 ms positioning (seek + rotational), 40 MB/s transfer: the paper's
   Seagate Cheetah 4LP-class disks. *)
let default_seek_ns = 8_000_000

let transfer_ns_of_page_size page_size = page_size * 25 (* 40 MB/s = 25 ns/B *)

let create ?(seek_ns = default_seek_ns) ~transfer_ns ~n_disks clock =
  if n_disks <= 0 then invalid_arg "Disk_model.create";
  {
    clock;
    n_disks;
    seek_ns;
    transfer_ns;
    free_at = Array.make n_disks 0;
    last_phys = Array.make n_disks (-10);
    c_reads = Counter.make "disk.reads";
    c_writes = Counter.make "disk.writes";
    c_busy_ns = Counter.make "disk.busy_ns";
  }

let n_disks t = t.n_disks

let service t ~earliest ~disk ~phys =
  let start = max earliest t.free_at.(disk) in
  let cost =
    if phys = t.last_phys.(disk) + 1 then t.transfer_ns
    else t.seek_ns + t.transfer_ns
  in
  let completion = start + cost in
  t.free_at.(disk) <- completion;
  t.last_phys.(disk) <- phys;
  Counter.add t.c_busy_ns cost;
  completion

(* Submit a read; returns its completion time (absolute ns). *)
let read t ?earliest ~disk ~phys () =
  let earliest =
    match earliest with Some e -> e | None -> Clock.now t.clock
  in
  Counter.incr t.c_reads;
  service t ~earliest ~disk ~phys

(* Submit an asynchronous write-back; the caller never waits for it. *)
let write t ~disk ~phys =
  Counter.incr t.c_writes;
  ignore (service t ~earliest:(Clock.now t.clock) ~disk ~phys)

(* Submit a write whose completion time the caller cares about (e.g. a log
   flush that must be durable before the committer proceeds). *)
let write_sync t ?earliest ~disk ~phys () =
  let earliest =
    match earliest with Some e -> e | None -> Clock.now t.clock
  in
  Counter.incr t.c_writes;
  service t ~earliest ~disk ~phys

let counters t = [ t.c_reads; t.c_writes; t.c_busy_ns ]
let kv t = List.map Counter.kv (counters t)
let reads t = Counter.value t.c_reads
let writes t = Counter.value t.c_writes
let busy_ns t = Counter.value t.c_busy_ns
let reset_stats t = List.iter Counter.reset (counters t)

(* Forget positioning state and pending work, e.g. between experiments. *)
let quiesce t =
  Array.fill t.free_at 0 t.n_disks 0;
  Array.fill t.last_phys 0 t.n_disks (-10)
