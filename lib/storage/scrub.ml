(* Background media scrubber.

   Walks every live (allocated) page in the store in ID order and checks
   the ones that are not memory-resident through the buffer pool's full
   media-read path ([Buffer_pool.check_media]): retry transient errors,
   verify the checksum header, repair persistent damage from the WAL when
   a repair hook is installed.  Resident pages are skipped — the
   in-memory copy is authoritative and lays down a fresh checksum when
   written back.

   Production systems run this continuously at low priority precisely so
   latent sector errors and bit rot are found while the redundancy needed
   to repair them still exists.  Two entry points model the two shapes
   that takes: [run] is a synchronous full pass (tests, final heal before
   an oracle check), and a [sched] is the paced form — a cursor over the
   page-ID space that advances at most [pages_per_tick] pages per [tick],
   so scrub I/O interleaves with foreground work and its latency cost is
   measurable as a function of the bandwidth knob.

   A pass returns a pure report rather than bumping persistent counters:
   the chaos harness runs many passes against one pool and wants
   per-pass, not cumulative, numbers.  (The underlying [io.*]/[repair.*]
   pool counters still advance as a side effect of the reads.) *)

type report = {
  scanned : int;  (* live pages visited *)
  resident : int;  (* skipped: authoritative copy in memory *)
  clean : int;  (* read back and verified *)
  repaired : int;  (* damage found and repaired from the WAL *)
  deferred : int;  (* skipped: pool too hot, or disk transiently mute *)
  unrecoverable : (int * string) list;  (* page, diagnosis *)
}

let empty =
  {
    scanned = 0;
    resident = 0;
    clean = 0;
    repaired = 0;
    deferred = 0;
    unrecoverable = [];
  }

(* Check one page and fold the outcome into the report.  A scrub is a
   background citizen: if the pool is momentarily too hot to lend even a
   scratch frame ([Pool_exhausted]) or the disk transiently refuses to
   answer within the retry budget ([`Busy]), the page is deferred —
   counted, not fatal — and the walk moves on; the cursor wraps around
   to it later. *)
let check pool page t =
  match Buffer_pool.check_media pool page with
  | `Resident -> { t with scanned = t.scanned + 1; resident = t.resident + 1 }
  | `Ok -> { t with scanned = t.scanned + 1; clean = t.clean + 1 }
  | `Repaired -> { t with scanned = t.scanned + 1; repaired = t.repaired + 1 }
  | `Busy _ -> { t with scanned = t.scanned + 1; deferred = t.deferred + 1 }
  | `Unrecoverable msg ->
      {
        t with
        scanned = t.scanned + 1;
        unrecoverable = (page, msg) :: t.unrecoverable;
      }
  | exception Buffer_pool.Pool_exhausted ->
      { t with scanned = t.scanned + 1; deferred = t.deferred + 1 }

let run pool =
  let store = Buffer_pool.store pool in
  let r = ref empty in
  Page_store.iter_live store (fun page -> r := check pool page !r);
  { !r with unrecoverable = List.rev !r.unrecoverable }

let kv r =
  [
    ("scrub.scanned", r.scanned);
    ("scrub.resident", r.resident);
    ("scrub.clean", r.clean);
    ("scrub.repaired", r.repaired);
    ("scrub.deferred", r.deferred);
    ("scrub.unrecoverable", List.length r.unrecoverable);
  ]

let merge a b =
  {
    scanned = a.scanned + b.scanned;
    resident = a.resident + b.resident;
    clean = a.clean + b.clean;
    repaired = a.repaired + b.repaired;
    deferred = a.deferred + b.deferred;
    unrecoverable = a.unrecoverable @ b.unrecoverable;
  }

(* Paced scheduler: a persistent cursor over page IDs.  Each [tick]
   checks at most [pages_per_tick] live pages starting at the cursor and
   wraps past the high-water mark, so over enough ticks every live page
   is visited — a continuous low-priority scrub rather than a
   stop-the-world pass. *)
type sched = {
  pool : Buffer_pool.t;
  mutable pages_per_tick : int;
  mutable cursor : int;  (* next page ID to consider *)
  mutable cumulative : report;
  mutable backpressure : (unit -> bool) option;
  mutable yields : int;  (* ticks skipped under backpressure *)
}

let scheduler ?(pages_per_tick = 1) pool =
  {
    pool;
    pages_per_tick;
    cursor = 1;
    cumulative = empty;
    backpressure = None;
    yields = 0;
  }

let set_bandwidth s n = s.pages_per_tick <- max 0 n
let set_backpressure s f = s.backpressure <- f
let yields s = s.yields

(* A tick under foreground pressure does nothing at all: the scrubber is
   the lowest-priority citizen, and the cheapest way to help a loaded
   system is to stop issuing background I/O entirely until the backlog
   drains.  The cursor does not move, so no coverage is lost — the same
   pages are checked once pressure lifts. *)
let under_pressure s =
  match s.backpressure with None -> false | Some f -> f ()

let tick s =
  if under_pressure s then begin
    s.yields <- s.yields + 1;
    empty
  end
  else begin
  let store = Buffer_pool.store s.pool in
  let high = Page_store.total_pages store in
  let r = ref empty in
  if s.pages_per_tick > 0 && high > 0 then begin
    (* Visit up to pages_per_tick *live* pages; bound the walk at one
       full lap of the ID space so a mostly-free store can't spin. *)
    let checked = ref 0 and walked = ref 0 in
    while !checked < s.pages_per_tick && !walked < high do
      if s.cursor > high then s.cursor <- 1;
      let page = s.cursor in
      s.cursor <- s.cursor + 1;
      incr walked;
      if Page_store.is_live store page then begin
        incr checked;
        r := check s.pool page !r
      end
    done
  end;
  let r = { !r with unrecoverable = List.rev !r.unrecoverable } in
  s.cumulative <- merge s.cumulative r;
  r
  end

let total s = s.cumulative

(* AIMD auto-throttle over the bandwidth knob.

   The scrubber competes with foreground work for the same simulated
   disks, so its pacing should be a feedback loop, not a constant: back
   off hard when foreground latency degrades, creep back up when the
   system is quiet.  The classic multiplicative-decrease /
   additive-increase shape converges fast on overload and probes gently
   for spare bandwidth, which is exactly the "low-priority background
   citizen" contract production scrubbers advertise.

   The caller feeds per-operation foreground latencies into [observe];
   every [window] observations the throttler computes that window's p99
   and either halves [pages_per_tick] (p99 above target) or raises it by
   one (at or below target), clamped to [min_bw, max_bw]. *)
type throttler = {
  t_sched : sched;
  target_p99_ns : int;
  min_bw : int;
  max_bw : int;
  buf : int array;  (* latencies of the current window *)
  mutable filled : int;
  mutable backoffs : int;  (* windows that halved the bandwidth *)
  mutable raises : int;  (* windows that raised it *)
}

let throttler ?(min_bw = 0) ?(max_bw = 64) ?(window = 64) ~target_p99_ns sched
    =
  if window < 1 then invalid_arg "Scrub.throttler: window < 1";
  if min_bw < 0 || max_bw < min_bw then
    invalid_arg "Scrub.throttler: need 0 <= min_bw <= max_bw";
  set_bandwidth sched (min max_bw (max min_bw sched.pages_per_tick));
  {
    t_sched = sched;
    target_p99_ns;
    min_bw;
    max_bw;
    buf = Array.make window 0;
    filled = 0;
    backoffs = 0;
    raises = 0;
  }

let observe th lat_ns =
  th.buf.(th.filled) <- lat_ns;
  th.filled <- th.filled + 1;
  if th.filled = Array.length th.buf then begin
    (* Window full: adjust once, then start the next window.  Sorting
       in place is fine — the whole buffer is overwritten before the
       next decision. *)
    Array.sort compare th.buf;
    let n = Array.length th.buf in
    let p99 = th.buf.(99 * (n - 1) / 100) in
    let bw = th.t_sched.pages_per_tick in
    let bw' =
      if p99 > th.target_p99_ns then max th.min_bw (bw / 2)
      else min th.max_bw (bw + 1)
    in
    if bw' < bw then th.backoffs <- th.backoffs + 1
    else if bw' > bw then th.raises <- th.raises + 1;
    set_bandwidth th.t_sched bw';
    th.filled <- 0
  end

let bandwidth th = th.t_sched.pages_per_tick
let adjustments th = (th.backoffs, th.raises)
