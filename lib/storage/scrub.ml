(* Background media scrubber.

   Walks every live (allocated) page in the store in ID order and checks
   the ones that are not memory-resident through the buffer pool's full
   media-read path ([Buffer_pool.check_media]): retry transient errors,
   verify the checksum header, repair persistent damage from the WAL when
   a repair hook is installed.  Resident pages are skipped — the
   in-memory copy is authoritative and lays down a fresh checksum when
   written back.

   Production systems run this continuously at low priority precisely so
   latent sector errors and bit rot are found while the redundancy needed
   to repair them still exists; here a pass is synchronous and its disk
   time is charged to the simulated clock like any other I/O.

   A pass returns a pure report rather than bumping persistent counters:
   the chaos harness runs many passes against one pool and wants
   per-pass, not cumulative, numbers.  (The underlying [io.*]/[repair.*]
   pool counters still advance as a side effect of the reads.) *)

type report = {
  scanned : int;  (* live pages visited *)
  resident : int;  (* skipped: authoritative copy in memory *)
  clean : int;  (* read back and verified *)
  repaired : int;  (* damage found and repaired from the WAL *)
  unrecoverable : (int * string) list;  (* page, diagnosis *)
}

let empty =
  { scanned = 0; resident = 0; clean = 0; repaired = 0; unrecoverable = [] }

let run pool =
  let store = Buffer_pool.store pool in
  let r = ref empty in
  Page_store.iter_live store (fun page ->
      let t = !r in
      r :=
        match Buffer_pool.check_media pool page with
        | `Resident -> { t with scanned = t.scanned + 1; resident = t.resident + 1 }
        | `Ok -> { t with scanned = t.scanned + 1; clean = t.clean + 1 }
        | `Repaired ->
            { t with scanned = t.scanned + 1; repaired = t.repaired + 1 }
        | `Unrecoverable msg ->
            {
              t with
              scanned = t.scanned + 1;
              unrecoverable = (page, msg) :: t.unrecoverable;
            });
  { !r with unrecoverable = List.rev !r.unrecoverable }

let kv r =
  [
    ("scrub.scanned", r.scanned);
    ("scrub.resident", r.resident);
    ("scrub.clean", r.clean);
    ("scrub.repaired", r.repaired);
    ("scrub.unrecoverable", List.length r.unrecoverable);
  ]

let merge a b =
  {
    scanned = a.scanned + b.scanned;
    resident = a.resident + b.resident;
    clean = a.clean + b.clean;
    repaired = a.repaired + b.repaired;
    unrecoverable = a.unrecoverable @ b.unrecoverable;
  }
