(** CRC-32 (IEEE 802.3, reflected polynomial [0xEDB88320]): the page
    checksum the storage layer stamps on every written-back page and
    verifies on every disk read.  Host-side only — checksum computation
    models disk firmware and is never charged to the simulated machine. *)

(** [update crc b off len] folds [len] bytes of [b] starting at [off]
    into a running checksum ([0] to start a fresh one). *)
val update : int -> Bytes.t -> int -> int -> int

(** Checksum of a whole buffer. *)
val bytes : Bytes.t -> int

val string : string -> int
