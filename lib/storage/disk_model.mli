(** Discrete-event model of a farm of independent disks.

    Each disk serves requests one at a time in submission order.  A
    request costs a positioning overhead (seek + rotational latency) plus
    the page transfer time; a request for the physical page immediately
    following the previous one served by the same disk pays only the
    transfer (sequential access).

    A disk may carry a {!Fault.profile}: reads and writes then draw from
    a deterministic seeded schedule and can fail transiently, fail
    persistently (latent sector errors, cleared by the next write to the
    location), or silently return corrupted bytes.  The model only
    decides {e what happened}; the caller owns the page bytes and applies
    any corruption spec itself. *)

type t

(** How a corrupt read mangled the returned bytes.  Offsets are raw
    hashes; callers reduce them mod their page size.  [Torn_sector off]
    zeroes the 512-byte span starting at [off]. *)
type corruption = Bit_flips of (int * int) list | Torn_sector of int

type read_outcome =
  | Read_ok of int  (** completion time (absolute ns) *)
  | Read_corrupt of int * corruption
      (** transfer "succeeded" but the bytes are wrong — detectable only
          by checksum *)
  | Read_error of int * [ `Transient | `Latent ]
      (** the error is discovered at the completion time: the disk spent
          the service time before failing *)

(** 8 ms positioning: the paper's Seagate Cheetah 4LP-class disks. *)
val default_seek_ns : int

(** Transfer time at 40 MB/s. *)
val transfer_ns_of_page_size : int -> int

(** [request_overhead_ns] (default 0) is a fixed per-request controller
    cost added to every read/write request, whatever its size: it is
    what makes coalescing adjacent writes into one request
    ({!write_run}) worth measuring. *)
val create :
  ?seek_ns:int ->
  ?request_overhead_ns:int ->
  transfer_ns:int ->
  n_disks:int ->
  Fpb_simmem.Clock.t ->
  t

val n_disks : t -> int

(** Arm (or with [None] disarm) fault injection on one disk or, without
    [disk], on the whole farm.  Arming resets the disk's fault history
    (access counts, pending transients, latent sectors). *)
val set_faults : t -> ?disk:int -> Fault.profile option -> unit

val faults_armed : t -> bool

(** Latent sector errors currently outstanding across the farm. *)
val latent_sectors : t -> int

(** Submit a read starting no earlier than [earliest] (default: now);
    returns its completion time (absolute ns).  The caller decides whether
    to wait.  Never draws faults — the WAL's log disk uses this; demand
    reads go through {!read_result}. *)
val read : t -> ?earliest:int -> disk:int -> phys:int -> unit -> int

(** Submit a read through the fault schedule.  The disk charges its busy
    time whether or not the request then fails. *)
val read_result :
  t -> ?earliest:int -> disk:int -> phys:int -> unit -> read_outcome

(** Submit an asynchronous write-back; never waited on.  A write repairs
    the location's media state (latent sectors are remapped); a transient
    write failure is absorbed by a controller retry, charged as a second
    service. *)
val write : t -> disk:int -> phys:int -> unit

(** Submit a write and return its completion time (absolute ns), for
    callers that must wait for durability (e.g. a WAL group flush).
    [append] (default false) marks a log-style append: a request
    continuing on the {e same} physical page as the disk's previous one
    also skips positioning — small records packing into one page of an
    append-only log never move the head. *)
val write_sync :
  t -> ?earliest:int -> ?append:bool -> disk:int -> phys:int -> unit -> int

(** Submit [n] physically contiguous pages starting at [phys] as one
    coalesced write request: positioning and the per-request overhead
    are paid once plus [n] transfers.  Every covered page still draws
    its own write fault; [disk.writes] counts all [n] pages (matching
    the per-page path) and [disk.write_runs] counts the one request.
    Returns the completion time (absolute ns). *)
val write_run : t -> ?earliest:int -> disk:int -> phys:int -> n:int -> unit -> int

val reads : t -> int
val writes : t -> int

(** Coalesced multi-page write requests issued via {!write_run}. *)
val write_runs : t -> int

(** Total time disks spent servicing requests. *)
val busy_ns : t -> int

(** Completion time (absolute ns) of the last submitted request across
    the farm: a durability barrier — e.g. a sharp checkpoint's data
    fsync — waits until here. *)
val drain : t -> int

(** The underlying named counters ([disk.reads], [disk.writes],
    [disk.busy_ns] in simulated nanoseconds, and the injection tallies
    [disk.fault.transient_read], [disk.fault.transient_write],
    [disk.fault.latent], [disk.fault.corrupt]). *)
val counters : t -> Fpb_obs.Counter.t list

(** Current values as [(name, value)] pairs. *)
val kv : t -> (string * int) list

val reset_stats : t -> unit

(** Forget positioning state and pending work (between experiments).
    Media fault state persists: damage does not heal because an
    experiment ended. *)
val quiesce : t -> unit
