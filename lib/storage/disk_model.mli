(** Discrete-event model of a farm of independent disks.

    Each disk serves requests one at a time in submission order.  A
    request costs a positioning overhead (seek + rotational latency) plus
    the page transfer time; a request for the physical page immediately
    following the previous one served by the same disk pays only the
    transfer (sequential access). *)

type t

(** 8 ms positioning: the paper's Seagate Cheetah 4LP-class disks. *)
val default_seek_ns : int

(** Transfer time at 40 MB/s. *)
val transfer_ns_of_page_size : int -> int

val create :
  ?seek_ns:int -> transfer_ns:int -> n_disks:int -> Fpb_simmem.Clock.t -> t

val n_disks : t -> int

(** Submit a read starting no earlier than [earliest] (default: now);
    returns its completion time (absolute ns).  The caller decides whether
    to wait. *)
val read : t -> ?earliest:int -> disk:int -> phys:int -> unit -> int

(** Submit an asynchronous write-back; never waited on. *)
val write : t -> disk:int -> phys:int -> unit

(** Submit a write and return its completion time (absolute ns), for
    callers that must wait for durability (e.g. a WAL group flush). *)
val write_sync : t -> ?earliest:int -> disk:int -> phys:int -> unit -> int

val reads : t -> int
val writes : t -> int

(** Total time disks spent servicing requests. *)
val busy_ns : t -> int

(** The underlying named counters ([disk.reads], [disk.writes],
    [disk.busy_ns] — the latter in simulated nanoseconds). *)
val counters : t -> Fpb_obs.Counter.t list

(** Current values as [(name, value)] pairs. *)
val kv : t -> (string * int) list

val reset_stats : t -> unit

(** Forget positioning state and pending work (between experiments). *)
val quiesce : t -> unit
