(** The persistent page space: allocation, deallocation, and the mapping
    of logical page IDs to (disk, physical page) locations.  Pages are
    striped round-robin across disks in allocation order, so bulkloaded
    leaves are sequential per disk while later splits land at the end of
    the physical space — the layout drift the paper's range-scan
    experiments rely on.  Page contents live in host memory; the buffer
    pool decides what counts as resident.

    Every page carries an out-of-band header — one CRC-32 per 512-byte
    sector plus the LSN the stamped bytes reflect — modelling the
    per-sector headers a checksumming disk would hold.  {!stamp} rewrites
    it on every disk write; {!verify} recomputes and compares on every
    disk read, so media corruption between a write and the next read is
    detected rather than silently served, and the damaged sectors are
    named so repair can replay only their spans. *)

type t

(** The reserved nil page ID (0). *)
val nil : int

(** Checksum granularity in bytes (512, one disk sector). *)
val sector_size : int

(** Result of a {!verify}: [Bad_crc] names the sector indexes whose
    stored checksum disagrees with the bytes present ([] only in the
    degenerate never-stamped case) and the stamped LSN. *)
type verdict =
  | Ok
  | Bad_crc of { bad_sectors : int list; lsn : int }

val create : page_size:int -> n_disks:int -> t
val page_size : t -> int

(** Allocate a zeroed page (reuses freed IDs first); its header is
    stamped so a fresh page always verifies. *)
val alloc : t -> int

(** Return a page to the free list.  Registered {!add_on_free} observers
    run after the store forgets the page. *)
val free : t -> int -> unit

(** Register an observer called with every freed page ID; the buffer pool
    uses this to invalidate stale resident/dirty state so a free + realloc
    cycle can never resurrect old frame contents. *)
val add_on_free : t -> (int -> unit) -> unit

(** Re-stamp the page's header from its current bytes, recording [lsn]
    (default 0) as the newest change they reflect.  Called by whoever
    writes the page to disk. *)
val stamp : ?lsn:int -> t -> int -> unit

(** Recompute the checksum of the page's current bytes against the
    stamped header. *)
val verify : t -> int -> verdict

(** LSN recorded by the last {!stamp}. *)
val header_lsn : t -> int -> int

(** Current free list (most recently freed first). *)
val free_list : t -> int list

(** Force the allocator to an externally reconstructed state (crash
    recovery restoring the committed allocation map).  Pages on the new
    free list are zeroed and re-stamped; free observers run for each. *)
val set_free_list : t -> int list -> unit

(** Iterate over live (allocated, unfreed) page IDs in increasing order:
    the scrubber's walk. *)
val iter_live : t -> (int -> unit) -> unit

(** Whether [id] is currently allocated (the paced scrubber's incremental
    liveness probe). *)
val is_live : t -> int -> bool

(** Backing bytes of a page (shared, not copied). *)
val bytes : t -> int -> Bytes.t

(** (disk, physical page number) of a page. *)
val location : t -> int -> int * int

(** Location to write the page at: runs the registered copy-on-write
    remapper (if any) before the lookup, so a shadow-paging layer can
    relocate the page to a fresh block on its first write after a
    checkpoint.  Every disk-write path must use this, not {!location}. *)
val write_location : t -> int -> int * int

(** Install (or clear) the copy-on-write remapper consulted by
    {!write_location}. *)
val set_remapper : t -> (int -> unit) option -> unit

(** Allocate a physical block on [disk] (reuses freed blocks first, else
    extends the disk).  Shadow-paging support. *)
val alloc_block : t -> disk:int -> int

(** Return a physical block for reuse.  The caller guarantees no logical
    page or retained checkpoint still references it. *)
val free_block : t -> disk:int -> phys:int -> unit

(** Point logical page [id] at a new physical block.  Ownership of the
    old block transfers to the caller (it may still back a checkpointed
    image). *)
val relocate : t -> int -> disk:int -> phys:int -> unit

(** Rebuild the per-disk free-block lists from the live mapping: every
    block below a disk's high-water mark not referenced by any page's
    current location becomes reusable.  For crash recovery, after the
    checkpointed mapping is restored. *)
val rebuild_free_blocks : t -> unit

(** Inverse of [location]: the page at (disk, phys), or [nil]. *)
val page_at : t -> disk:int -> phys:int -> int

(** Live (allocated, unfreed) pages: the paper's space metric. *)
val live_pages : t -> int

(** High-water mark of the physical space. *)
val total_pages : t -> int
