(** The persistent page space: allocation, deallocation, and the mapping
    of logical page IDs to (disk, physical page) locations.  Pages are
    striped round-robin across disks in allocation order, so bulkloaded
    leaves are sequential per disk while later splits land at the end of
    the physical space — the layout drift the paper's range-scan
    experiments rely on.  Page contents live in host memory; the buffer
    pool decides what counts as resident. *)

type t

(** The reserved nil page ID (0). *)
val nil : int

val create : page_size:int -> n_disks:int -> t
val page_size : t -> int

(** Allocate a zeroed page (reuses freed IDs first). *)
val alloc : t -> int

(** Return a page to the free list.  Registered {!add_on_free} observers
    run after the store forgets the page. *)
val free : t -> int -> unit

(** Register an observer called with every freed page ID; the buffer pool
    uses this to invalidate stale resident/dirty state so a free + realloc
    cycle can never resurrect old frame contents. *)
val add_on_free : t -> (int -> unit) -> unit

(** Backing bytes of a page (shared, not copied). *)
val bytes : t -> int -> Bytes.t

(** (disk, physical page number) of a page. *)
val location : t -> int -> int * int

(** Inverse of [location]: the page at (disk, phys), or [nil]. *)
val page_at : t -> disk:int -> phys:int -> int

(** Live (allocated, unfreed) pages: the paper's space metric. *)
val live_pages : t -> int

(** High-water mark of the physical space. *)
val total_pages : t -> int
