(* The persistent page space: allocation, deallocation and the mapping of
   logical page IDs to (disk, physical page) locations.

   In this simulation the page contents always live in host memory (one
   [Bytes.t] per page); the buffer pool decides which pages count as
   memory-resident and charges simulated I/O for the rest.  Pages are
   striped round-robin across the disks in allocation order, so pages
   allocated consecutively (e.g. the leaves of a bulkload) are sequential
   on each disk, while pages allocated later (splits in a mature tree) land
   at the end of the physical space — exactly the layout drift the paper
   relies on for its range-scan experiments.

   Every page carries an out-of-band header — one CRC-32 per 512-byte
   sector plus the LSN of the newest change the stamped bytes reflect.  It
   models the per-sector header a checksumming disk (or a DIF-capable
   controller) would hold: it is (re)stamped whenever the page is written
   to disk and verified whenever the page is read back, so media
   corruption between a write and the next read is detected rather than
   silently served — and, because the CRCs are per sector, verification
   reports *which* sectors are damaged, which is what lets the WAL repair
   a torn sector by replaying only its span.  The header is held out of
   band so in-page layouts need no reserved bytes.

   Page ID 0 is reserved as nil. *)

let sector_size = 512

type header = { mutable crcs : int array; mutable lsn : int }

type verdict =
  | Ok
  | Bad_crc of { bad_sectors : int list; lsn : int }

type t = {
  page_size : int;
  n_disks : int;
  pages : Bytes.t Vec.t;  (* index = page id; slot 0 unused *)
  headers : header Vec.t;  (* index = page id; out-of-band sector header *)
  location : (int * int) Vec.t;  (* page id -> (disk, phys) *)
  mutable free : int list;
  mutable allocated : int;  (* live pages *)
  next_phys : int array;  (* per disk *)
  free_phys : int list array;  (* per disk: reusable physical blocks *)
  mutable on_free : (int -> unit) list;  (* freed-page observers *)
  mutable remapper : (int -> unit) option;  (* shadow-paging write hook *)
}

let nil = 0

let create ~page_size ~n_disks =
  let pages = Vec.create ~dummy:Bytes.empty in
  let headers = Vec.create ~dummy:{ crcs = [||]; lsn = 0 } in
  let location = Vec.create ~dummy:(-1, -1) in
  Vec.push pages Bytes.empty;
  Vec.push headers { crcs = [||]; lsn = 0 };
  Vec.push location (-1, -1);
  { page_size; n_disks; pages; headers; location; free = []; allocated = 0;
    next_phys = Array.make n_disks 0; free_phys = Array.make n_disks [];
    on_free = []; remapper = None }

let page_size t = t.page_size

(* Sectors per page (pages smaller than one sector are one sector). *)
let sectors_per_page t = max 1 ((t.page_size + sector_size - 1) / sector_size)

(* CRC-32 of one sector's span of the page bytes. *)
let sector_crc t b s =
  let off = s * sector_size in
  Checksum.update 0 b off (min sector_size (t.page_size - off))

(* Stamp the header with per-sector checksums of the page's current
   bytes: called on allocation (a zeroed page is born consistent) and on
   every write to disk, exactly when real sector headers are written. *)
let stamp ?(lsn = 0) t id =
  if id = nil then invalid_arg "Page_store.stamp: nil";
  let h = Vec.get t.headers id in
  let b = Vec.get t.pages id in
  let n = sectors_per_page t in
  if Array.length h.crcs <> n then h.crcs <- Array.make n 0;
  for s = 0 to n - 1 do
    h.crcs.(s) <- sector_crc t b s
  done;
  h.lsn <- lsn

(* Recompute per-sector checksums of the current bytes and compare with
   the stamped header: the read-path (and scrubber) corruption detector.
   [Bad_crc] names exactly the damaged sectors, enabling span repair. *)
let verify t id =
  if id = nil then invalid_arg "Page_store.verify: nil";
  let h = Vec.get t.headers id in
  let b = Vec.get t.pages id in
  let n = sectors_per_page t in
  if Array.length h.crcs <> n then Bad_crc { bad_sectors = []; lsn = h.lsn }
  else begin
    let bad = ref [] in
    for s = n - 1 downto 0 do
      if sector_crc t b s <> h.crcs.(s) then bad := s :: !bad
    done;
    if !bad = [] then Ok else Bad_crc { bad_sectors = !bad; lsn = h.lsn }
  end

let header_lsn t id = (Vec.get t.headers id).lsn

let alloc t =
  t.allocated <- t.allocated + 1;
  match t.free with
  | id :: rest ->
      t.free <- rest;
      Bytes.fill (Vec.get t.pages id) 0 t.page_size '\000';
      stamp t id;
      id
  | [] ->
      let id = Vec.length t.pages in
      let disk = (id - 1) mod t.n_disks in
      let phys = t.next_phys.(disk) in
      t.next_phys.(disk) <- phys + 1;
      Vec.push t.pages (Bytes.create t.page_size |> fun b -> Bytes.fill b 0 t.page_size '\000'; b);
      Vec.push t.headers { crcs = [||]; lsn = 0 };
      Vec.push t.location (disk, phys);
      stamp t id;
      id

(* Freed-page observers: the buffer pool registers one to drop any stale
   resident/dirty/in-flight state for the ID, so a free + realloc cycle can
   never resurrect old frame contents regardless of which layer initiated
   the free. *)
let add_on_free t f = t.on_free <- f :: t.on_free

let free t id =
  if id = nil then invalid_arg "Page_store.free: nil";
  t.allocated <- t.allocated - 1;
  t.free <- id :: t.free;
  List.iter (fun f -> f id) t.on_free

let free_list t = t.free

(* Force the allocator to an externally reconstructed state (crash
   recovery restoring the committed allocation map).  Pages on the new
   free list are zeroed and re-stamped like any freed-then-reused page;
   observers run so the buffer pool drops stale frames. *)
let set_free_list t ids =
  List.iter
    (fun id ->
      if id <= 0 || id >= Vec.length t.pages then
        invalid_arg "Page_store.set_free_list: unknown page")
    ids;
  t.free <- ids;
  t.allocated <- Vec.length t.pages - 1 - List.length ids;
  List.iter
    (fun id ->
      Bytes.fill (Vec.get t.pages id) 0 t.page_size '\000';
      stamp t id;
      List.iter (fun f -> f id) t.on_free)
    ids

(* Is [id] currently allocated?  Used by the paced scrubber, which walks
   IDs incrementally instead of snapshotting the whole live set. *)
let is_live t id =
  id >= 1 && id < Vec.length t.pages && not (List.mem id t.free)

(* Live (allocated) pages in id order: the scrubber's walk order. *)
let iter_live t f =
  let free = Hashtbl.create 16 in
  List.iter (fun id -> Hashtbl.replace free id ()) t.free;
  for id = 1 to Vec.length t.pages - 1 do
    if not (Hashtbl.mem free id) then f id
  done

let bytes t id =
  if id = nil then invalid_arg "Page_store.bytes: nil";
  Vec.get t.pages id

let location t id = Vec.get t.location id

(* --- Physical-block management for shadow paging. ---------------------

   By default the logical->physical mapping is the identity-ish round
   robin fixed at allocation, but a shadow-paging layer can manage
   physical blocks itself: allocate fresh blocks, point a logical page at
   a new block (copy-on-write relocation), and return superseded blocks
   for reuse.  The store keeps a per-disk free-block list so relocation
   does not leak physical space across checkpoint generations. *)

(* Allocate a physical block on [disk]: reuse a freed block if one is
   available, else extend the disk (high-water mark grows). *)
let alloc_block t ~disk =
  match t.free_phys.(disk) with
  | phys :: rest ->
      t.free_phys.(disk) <- rest;
      phys
  | [] ->
      let phys = t.next_phys.(disk) in
      t.next_phys.(disk) <- phys + 1;
      phys

(* Return a physical block for reuse (no logical page may still map to
   it — the shadow layer's refcounts guarantee that). *)
let free_block t ~disk ~phys = t.free_phys.(disk) <- phys :: t.free_phys.(disk)

(* Point logical page [id] at a new physical block.  The old block is NOT
   freed here: under shadow paging it may still back a checkpointed
   image, so ownership transfers to the caller. *)
let relocate t id ~disk ~phys =
  if id = nil then invalid_arg "Page_store.relocate: nil";
  Vec.set t.location id (disk, phys)

(* Rebuild the per-disk free-block lists from the live mapping: every
   block below a disk's high-water mark not referenced by any page's
   current location becomes reusable.  Crash recovery calls this after
   restoring the checkpointed mapping, when the shadow layer's block
   refcounts died with the machine. *)
let rebuild_free_blocks t =
  let used = Hashtbl.create 256 in
  for id = 1 to Vec.length t.pages - 1 do
    Hashtbl.replace used (Vec.get t.location id) ()
  done;
  for disk = 0 to t.n_disks - 1 do
    let acc = ref [] in
    for phys = t.next_phys.(disk) - 1 downto 0 do
      if not (Hashtbl.mem used (disk, phys)) then acc := phys :: !acc
    done;
    t.free_phys.(disk) <- !acc
  done

(* Install (or clear) the copy-on-write remapper.  When set, it runs
   before every location lookup made for a disk WRITE (see
   [write_location]); the shadow layer uses it to relocate the page to a
   fresh block on its first write after a checkpoint, so the
   checkpointed image is never overwritten in place. *)
let set_remapper t f = t.remapper <- f

(* Location to write the page at: gives the remapper a chance to
   copy-on-write-relocate first.  Every path that writes a page image to
   disk must use this instead of [location]. *)
let write_location t id =
  (match t.remapper with None -> () | Some f -> f id);
  Vec.get t.location id

(* Inverse of [location] under round-robin allocation: the page currently
   mapped at (disk, phys), or nil if none was ever allocated there.  Used
   by sequential readahead. *)
let page_at t ~disk ~phys =
  let id = (phys * t.n_disks) + disk + 1 in
  if id < Vec.length t.pages && Vec.get t.location id = (disk, phys) then id
  else nil

(* Number of live (allocated, unfreed) pages: the paper's space metric. *)
let live_pages t = t.allocated

(* Total pages ever allocated (high-water mark of the physical space). *)
let total_pages t = Vec.length t.pages - 1
