(* The persistent page space: allocation, deallocation and the mapping of
   logical page IDs to (disk, physical page) locations.

   In this simulation the page contents always live in host memory (one
   [Bytes.t] per page); the buffer pool decides which pages count as
   memory-resident and charges simulated I/O for the rest.  Pages are
   striped round-robin across the disks in allocation order, so pages
   allocated consecutively (e.g. the leaves of a bulkload) are sequential
   on each disk, while pages allocated later (splits in a mature tree) land
   at the end of the physical space — exactly the layout drift the paper
   relies on for its range-scan experiments.

   Page ID 0 is reserved as nil. *)

type t = {
  page_size : int;
  n_disks : int;
  pages : Bytes.t Vec.t;  (* index = page id; slot 0 unused *)
  location : (int * int) Vec.t;  (* page id -> (disk, phys) *)
  mutable free : int list;
  mutable allocated : int;  (* live pages *)
  next_phys : int array;  (* per disk *)
  mutable on_free : (int -> unit) list;  (* freed-page observers *)
}

let nil = 0

let create ~page_size ~n_disks =
  let pages = Vec.create ~dummy:Bytes.empty in
  let location = Vec.create ~dummy:(-1, -1) in
  Vec.push pages Bytes.empty;
  Vec.push location (-1, -1);
  { page_size; n_disks; pages; location; free = []; allocated = 0;
    next_phys = Array.make n_disks 0; on_free = [] }

let page_size t = t.page_size

let alloc t =
  t.allocated <- t.allocated + 1;
  match t.free with
  | id :: rest ->
      t.free <- rest;
      Bytes.fill (Vec.get t.pages id) 0 t.page_size '\000';
      id
  | [] ->
      let id = Vec.length t.pages in
      let disk = (id - 1) mod t.n_disks in
      let phys = t.next_phys.(disk) in
      t.next_phys.(disk) <- phys + 1;
      Vec.push t.pages (Bytes.create t.page_size |> fun b -> Bytes.fill b 0 t.page_size '\000'; b);
      Vec.push t.location (disk, phys);
      id

(* Freed-page observers: the buffer pool registers one to drop any stale
   resident/dirty/in-flight state for the ID, so a free + realloc cycle can
   never resurrect old frame contents regardless of which layer initiated
   the free. *)
let add_on_free t f = t.on_free <- f :: t.on_free

let free t id =
  if id = nil then invalid_arg "Page_store.free: nil";
  t.allocated <- t.allocated - 1;
  t.free <- id :: t.free;
  List.iter (fun f -> f id) t.on_free

let bytes t id =
  if id = nil then invalid_arg "Page_store.bytes: nil";
  Vec.get t.pages id

let location t id = Vec.get t.location id

(* Inverse of [location] under round-robin allocation: the page currently
   mapped at (disk, phys), or nil if none was ever allocated there.  Used
   by sequential readahead. *)
let page_at t ~disk ~phys =
  let id = (phys * t.n_disks) + disk + 1 in
  if id < Vec.length t.pages && Vec.get t.location id = (disk, phys) then id
  else nil

(* Number of live (allocated, unfreed) pages: the paper's space metric. *)
let live_pages t = t.allocated

(* Total pages ever allocated (high-water mark of the physical space). *)
let total_pages t = Vec.length t.pages - 1
