(* CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), the checksum
   disks and filesystems conventionally stamp on sectors.  Table-driven;
   host-side only (checksum computation models disk firmware and is never
   charged to the simulated machine). *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let update crc b off len =
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code (Bytes.unsafe_get b i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff

let bytes b = update 0 b 0 (Bytes.length b)
let string s = bytes (Bytes.unsafe_of_string s)
