(** Buffer pool with sharded CLOCK replacement, pinning, asynchronous
    prefetch, and media-failure handling.

    The page table and CLOCK replacement are split into [n_shards]
    independent shards keyed by a mix of the page id, each owning a
    disjoint slice of the frame arena with its own hash table, in-flight
    map, CLOCK hand and simulated latch.  Acquiring a shard latch costs
    {!Fpb_simmem.Cost_model.latch_cycles} busy time; acquiring it while
    another logical client holds it (its release lies in the acquirer's
    simulated future) additionally waits, counted under
    [pool.shard.conflicts] / [pool.shard.waits_ns].  With one shard and a
    single client the latch never conflicts and behaviour is identical to
    the unsharded pool.

    Frames give resident pages their simulated physical addresses (frame
    index x page size), so the CPU-cache simulator sees a
    conflict-realistic address space; reassigning a frame invalidates its
    CPU-cache lines.  Prefetch requests are served by a configurable pool
    of prefetcher threads (the paper's DB2 experiment varies exactly
    this); a demand [get] of an in-flight page waits only for the
    remaining latency.

    Every read that crosses the disk boundary is verified against the
    page's checksum header ({!Page_store.verify}).  Transient I/O errors
    are retried with exponential backoff charged to simulated time;
    persistent damage (latent sectors, corruption) escalates to the
    repair hook installed by the write-ahead log, and only when that
    fails does the caller see a typed {!Io_error}. *)

(** Named counters; [*_ns] counters are in simulated nanoseconds, the
    rest event counts.  Namespaces: [pool.*] for caching behaviour,
    [io.retry.*]/[io.error.*] for the media-read path, [repair.*] for
    WAL-based page repair. *)
type stats = {
  hits : Fpb_obs.Counter.t;  (** [pool.hits] *)
  misses : Fpb_obs.Counter.t;
      (** [pool.misses]: demand reads that went to disk *)
  evictions : Fpb_obs.Counter.t;
      (** [pool.evictions]: resident pages replaced by the CLOCK sweep *)
  prefetch_issued : Fpb_obs.Counter.t;  (** [pool.prefetch_issued] *)
  prefetch_hits : Fpb_obs.Counter.t;
      (** [pool.prefetch_hits]: gets satisfied by a prefetched page *)
  prefetch_dropped : Fpb_obs.Counter.t;
      (** [pool.prefetch_dropped]: hints dropped because the pool was too
          hot to find a frame or the prefetch read erred *)
  io_wait_ns : Fpb_obs.Counter.t;
      (** [pool.io_wait_ns]: time the caller waited on I/O (includes
          retry backoff) *)
  shard_conflicts : Fpb_obs.Counter.t;
      (** [pool.shard.conflicts]: latch acquisitions that found the shard
          latch held by another logical client *)
  shard_waits_ns : Fpb_obs.Counter.t;
      (** [pool.shard.waits_ns]: simulated time spent waiting on shard
          latches *)
  retry_read : Fpb_obs.Counter.t;
      (** [io.retry.read]: demand-read attempts beyond the first *)
  retry_wait_ns : Fpb_obs.Counter.t;
      (** [io.retry.wait_ns]: simulated time spent backing off *)
  err_transient : Fpb_obs.Counter.t;  (** [io.error.transient] *)
  err_latent : Fpb_obs.Counter.t;  (** [io.error.latent] *)
  err_checksum : Fpb_obs.Counter.t;  (** [io.error.checksum] *)
  err_unrecoverable : Fpb_obs.Counter.t;
      (** [io.error.unrecoverable]: errors surfaced as {!Io_error} *)
  repair_attempts : Fpb_obs.Counter.t;  (** [repair.attempts] *)
  repair_repaired : Fpb_obs.Counter.t;  (** [repair.repaired] *)
  repair_failed : Fpb_obs.Counter.t;  (** [repair.failed] *)
  overloaded : Fpb_obs.Counter.t;
      (** [pool.overloaded]: demand requests refused with {!Overloaded}
          after the bounded victim rescans *)
  overload_wait_ns : Fpb_obs.Counter.t;
      (** [pool.overload_wait_ns]: simulated time spent waiting between
          victim rescans on a pinned-full pool *)
}

(** Durability hooks installed by the write-ahead log.  The pool announces
    page lifecycle events; the log implements the WAL protocol over them.
    [before_page_write] runs before a dirty page's write-back is submitted
    (log-before-data; it may raise to simulate a crash), [on_page_write]
    after it, so the log can refresh its durable image of the page.
    [page_lsn] reports the LSN of the newest logged change to a page; the
    pool stamps it into the page's checksum header on write-back. *)
type wal_hooks = {
  on_page_dirty : int -> unit;
  before_page_write : int -> unit;
  on_page_write : int -> unit;
  on_page_alloc : int -> unit;
  on_page_free : int -> unit;
  page_lsn : int -> int;
}

(** How hard a demand read fights transient errors before giving up.
    Backoff doubles (by [backoff_mult]) per retry and is charged to the
    simulated clock, so retry storms show up in latency results. *)
type retry_policy = {
  max_retries : int;  (** attempts beyond the first *)
  backoff_ns : int;  (** wait before the first retry *)
  backoff_mult : int;  (** multiplier per subsequent retry *)
}

(** 4 retries, 0.5 ms initial backoff, doubling. *)
val default_retry_policy : retry_policy

type io_cause = [ `Transient | `Latent | `Checksum ]

val io_cause_name : io_cause -> string

(** A page could not be produced intact: retries exhausted (transient), a
    latent sector with no repair source, or a checksum mismatch the WAL
    could not repair.  Counted under [io.error.unrecoverable]. *)
exception
  Io_error of {
    page : int;
    attempts : int;
    cause : io_cause;
    repair : [ `Not_attempted | `Failed of string ];
  }

type t

(** Raised internally when a victim sweep finds every frame pinned.  A
    [get] or [create_page] that finds only in-flight prefetches first
    waits for the earliest completion and retries; demand requests that
    hit genuine exhaustion surface the typed {!Overloaded} (after the
    bounded rescans of the {!overload_policy}) — [Pool_exhausted] itself
    escapes only from maintenance entry points such as {!clear}. *)
exception Pool_exhausted

(** The pool is out of frames for a demand request: every frame stayed
    pinned across [scans] victim sweeps (each but the first preceded by
    a simulated-time wait).  This is a load signal, not a failure —
    callers are expected to shed or retry the {e operation}, not crash;
    counted under [pool.overloaded]. *)
exception Overloaded of { page : int; scans : int }

(** How a demand request degrades on a pinned-full pool: up to
    [victim_rescans] additional sweeps, each preceded by a
    [rescan_wait_ns] wait charged to the simulated clock (and to
    [pool.overload_wait_ns]), before {!Overloaded} is raised. *)
type overload_policy = { victim_rescans : int; rescan_wait_ns : int }

(** 2 rescans, 0.2 ms apart. *)
val default_overload_policy : overload_policy

val set_overload_policy : t -> overload_policy -> unit
val overload_policy : t -> overload_policy

(** [n_shards] (default 1) splits the page table, CLOCK replacement and
    frame arena into that many independent shards; must lie in
    [1, capacity]. *)
val create :
  ?n_prefetchers:int ->
  ?prefetch_request_busy:int ->
  ?n_shards:int ->
  capacity:int ->
  Fpb_simmem.Sim.t ->
  Page_store.t ->
  Disk_model.t ->
  t

val stats : t -> stats
val reset_stats : t -> unit

(** Current pool counter values as [(name, value)] pairs. *)
val kv : t -> (string * int) list
val sim : t -> Fpb_simmem.Sim.t
val store : t -> Page_store.t
val disks : t -> Disk_model.t
val capacity : t -> int
val n_shards : t -> int

(** Which shard a page id maps to (deterministic mixing hash mod
    [n_shards]); exposed so tests and experiments can partition traces
    the same way the pool does. *)
val shard_of_page : t -> int -> int

(** Per-shard [(conflicts, waits_ns)] tallies since the last
    [reset_stats], indexed by shard. *)
val shard_tallies : t -> (int * int) array

(** Pin a page, reading (and verifying) it from disk if not resident;
    returns the region to access its contents through.  Balance with
    [unpin].  May raise {!Io_error} under fault injection. *)
val get : t -> int -> Fpb_simmem.Mem.region

val unpin : t -> int -> unit

(** Pin a batch of pages together (one {!get} each, in order), returning
    their regions in the same order.  Before pinning, every page that
    would demand-miss is issued as an asynchronous {!prefetch}, so the
    batch's disk reads overlap across the prefetcher pool instead of
    serialising one miss at a time.  Balance with one [unpin] per array
    element.

    If a frame cannot be found partway through, the pages already pinned
    by this call are unpinned before the exception ({!Overloaded} under
    frame exhaustion) escapes — a refused batch never leaks pins, so the
    caller can degrade by splitting the batch and retrying smaller (see
    [docs/BATCHING.md]).  Pages should be distinct for the coalescing to
    help; duplicates are still pinned (and must be unpinned) once per
    occurrence. *)
val get_batch : t -> int array -> Fpb_simmem.Mem.region array

(** Mark a resident page dirty; it is written back on eviction. *)
val mark_dirty : t -> int -> unit

(** [get]/[unpin] bracket. *)
val with_page : t -> int -> (Fpb_simmem.Mem.region -> 'a) -> 'a

(** Request an asynchronous read; no-op if resident or in flight.  Served
    by the earliest-available prefetcher.  Dropped (counted under
    [pool.prefetch_dropped]) if the pool is too hot to find a frame or
    the read errs; verification of prefetched bytes happens at the first
    [get]. *)
val prefetch : t -> int -> unit

val is_resident : t -> int -> bool
val frame_of_page : t -> int -> int option

(** Media check for the scrubber: read a non-resident page through the
    full retry/verify/repair path without installing it in a frame.
    Never raises; unrecoverable damage is reported in the result.
    [`Busy attempts] means a transient-error streak exhausted the retry
    budget — the disk would not answer, but the media is not known to be
    damaged; check again later. *)
val check_media :
  t ->
  int ->
  [ `Resident | `Ok | `Repaired | `Busy of int | `Unrecoverable of string ]

(** Allocate a fresh page and make it resident with one pin (no disk
    read: it is born in memory).  Returns the page ID and its region. *)
val create_page : t -> int * Fpb_simmem.Mem.region

(** Release an unpinned page back to the store. *)
val free_page : t -> int -> unit

(** Evict every unpinned page (writing back dirty ones): a cold pool. *)
val clear : t -> unit

(** Write back every dirty page without evicting anything: the data half
    of a sharp checkpoint. *)
val flush_dirty : t -> unit

(** Write back one page if it is resident and dirty; returns whether a
    write happened.  The unit of work for a paced (fuzzy) checkpoint. *)
val write_back_page : t -> int -> bool

(** Whether the page is resident with its dirty bit set. *)
val is_dirty : t -> int -> bool

(** Currently dirty resident pages: a fuzzy checkpoint's worklist. *)
val dirty_pages : t -> int list

(** Discard every frame WITHOUT write-back and reset pins, in-flight reads
    and prefetcher state: the pool's contents after a machine crash. *)
val drop_all : t -> unit

(** Install (or with [None] remove) the write-ahead-log hooks. *)
val set_wal_hooks : t -> wal_hooks option -> unit

(** Install (or with [None] remove) the page-repair hook the media-read
    path escalates to; the WAL installs one that replays the page from
    its last durable image ({!Fpb_wal.Wal.attach}).  [bad_sectors] names
    the sector indexes whose per-sector CRC failed ([] when the damage is
    not localisable, e.g. a latent whole-page error), letting the hook
    replay only the damaged spans. *)
val set_repair :
  t ->
  (int -> bad_sectors:int list -> [ `Repaired | `Unrecoverable of string ])
  option ->
  unit

val set_retry_policy : t -> retry_policy -> unit
val retry_policy : t -> retry_policy

val resident_pages : t -> int

(** Classic sequential I/O prefetching (paper, Section 2): after a demand
    miss, asynchronously read the next [depth] physically-consecutive
    pages on the same disk.  0 (default) disables. *)
val set_sequential_readahead : t -> int -> unit
