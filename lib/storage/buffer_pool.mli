(** Buffer pool with CLOCK replacement, pinning, and asynchronous
    prefetch.

    Frames give resident pages their simulated physical addresses (frame
    index x page size), so the CPU-cache simulator sees a
    conflict-realistic address space; reassigning a frame invalidates its
    CPU-cache lines.  Prefetch requests are served by a configurable pool
    of prefetcher threads (the paper's DB2 experiment varies exactly
    this); a demand [get] of an in-flight page waits only for the
    remaining latency. *)

(** Named counters under the [pool.*] namespace; [pool.io_wait_ns] is in
    simulated nanoseconds, the rest are event counts. *)
type stats = {
  hits : Fpb_obs.Counter.t;  (** [pool.hits] *)
  misses : Fpb_obs.Counter.t;
      (** [pool.misses]: demand reads that went to disk *)
  prefetch_issued : Fpb_obs.Counter.t;  (** [pool.prefetch_issued] *)
  prefetch_hits : Fpb_obs.Counter.t;
      (** [pool.prefetch_hits]: gets satisfied by a prefetched page *)
  io_wait_ns : Fpb_obs.Counter.t;
      (** [pool.io_wait_ns]: time the caller waited on I/O *)
}

(** Durability hooks installed by the write-ahead log.  The pool announces
    page lifecycle events; the log implements the WAL protocol over them.
    [before_page_write] runs before a dirty page's write-back is submitted
    (log-before-data; it may raise to simulate a crash), [on_page_write]
    after it, so the log can refresh its durable image of the page. *)
type wal_hooks = {
  on_page_dirty : int -> unit;
  before_page_write : int -> unit;
  on_page_write : int -> unit;
  on_page_alloc : int -> unit;
  on_page_free : int -> unit;
}

type t

(** Raised when every frame is pinned.  A [get] or [create_page] that finds
    only in-flight prefetches first waits for the earliest completion and
    retries; the exception means genuine exhaustion. *)
exception Pool_exhausted

val create :
  ?n_prefetchers:int ->
  ?prefetch_request_busy:int ->
  capacity:int ->
  Fpb_simmem.Sim.t ->
  Page_store.t ->
  Disk_model.t ->
  t

val stats : t -> stats
val reset_stats : t -> unit

(** Current pool counter values as [(name, value)] pairs. *)
val kv : t -> (string * int) list
val sim : t -> Fpb_simmem.Sim.t
val store : t -> Page_store.t
val disks : t -> Disk_model.t
val capacity : t -> int

(** Pin a page, reading it from disk if not resident; returns the region
    to access its contents through.  Balance with [unpin]. *)
val get : t -> int -> Fpb_simmem.Mem.region

val unpin : t -> int -> unit

(** Mark a resident page dirty; it is written back on eviction. *)
val mark_dirty : t -> int -> unit

(** [get]/[unpin] bracket. *)
val with_page : t -> int -> (Fpb_simmem.Mem.region -> 'a) -> 'a

(** Request an asynchronous read; no-op if resident or in flight.  Served
    by the earliest-available prefetcher.  Dropped if the pool is too hot
    to find a frame. *)
val prefetch : t -> int -> unit

val is_resident : t -> int -> bool
val frame_of_page : t -> int -> int option

(** Allocate a fresh page and make it resident with one pin (no disk
    read: it is born in memory).  Returns the page ID and its region. *)
val create_page : t -> int * Fpb_simmem.Mem.region

(** Release an unpinned page back to the store. *)
val free_page : t -> int -> unit

(** Evict every unpinned page (writing back dirty ones): a cold pool. *)
val clear : t -> unit

(** Write back every dirty page without evicting anything: the data half
    of a sharp checkpoint. *)
val flush_dirty : t -> unit

(** Discard every frame WITHOUT write-back and reset pins, in-flight reads
    and prefetcher state: the pool's contents after a machine crash. *)
val drop_all : t -> unit

(** Install (or with [None] remove) the write-ahead-log hooks. *)
val set_wal_hooks : t -> wal_hooks option -> unit

val resident_pages : t -> int

(** Classic sequential I/O prefetching (paper, Section 2): after a demand
    miss, asynchronously read the next [depth] physically-consecutive
    pages on the same disk.  0 (default) disables. *)
val set_sequential_readahead : t -> int -> unit
