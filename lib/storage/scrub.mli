(** Background media scrubber.

    A pass walks every live page in ID order and checks the non-resident
    ones through the buffer pool's media-read path
    ({!Buffer_pool.check_media}): retries, checksum verification, and
    WAL-based repair when a repair hook is installed.  Disk time is
    charged to the simulated clock.  Reports are per-pass and pure; the
    pool's [io.*]/[repair.*] counters advance as a side effect of the
    reads. *)

type report = {
  scanned : int;  (** live pages visited *)
  resident : int;  (** skipped: authoritative copy in memory *)
  clean : int;  (** read back and verified *)
  repaired : int;  (** damage found and repaired from the WAL *)
  unrecoverable : (int * string) list;  (** page, diagnosis *)
}

val empty : report
val run : Buffer_pool.t -> report

(** Report as [(name, value)] pairs under the [scrub.*] namespace. *)
val kv : report -> (string * int) list

(** Pointwise sum (unrecoverable lists concatenated). *)
val merge : report -> report -> report
