(** Background media scrubber.

    A pass walks every live page in ID order and checks the non-resident
    ones through the buffer pool's media-read path
    ({!Buffer_pool.check_media}): retries, checksum verification, and
    WAL-based repair when a repair hook is installed.  Disk time is
    charged to the simulated clock.  Reports are per-pass and pure; the
    pool's [io.*]/[repair.*] counters advance as a side effect of the
    reads.

    {!run} is the synchronous full pass; a {!sched} paces the same walk
    as a budgeted background job — at most [pages_per_tick] pages per
    {!tick} — so scrub I/O interleaves with foreground work and its
    latency cost is measurable. *)

type report = {
  scanned : int;  (** live pages visited *)
  resident : int;  (** skipped: authoritative copy in memory *)
  clean : int;  (** read back and verified *)
  repaired : int;  (** damage found and repaired from the WAL *)
  deferred : int;
      (** skipped because the pool was too hot to lend a frame
          ([Pool_exhausted]) or a transient-error streak exhausted the
          read-retry budget ([`Busy]: the disk would not answer, but the
          media is not known damaged); retried on a later lap *)
  unrecoverable : (int * string) list;  (** page, diagnosis *)
}

val empty : report

(** Synchronous full pass over every live page. *)
val run : Buffer_pool.t -> report

(** Report as [(name, value)] pairs under the [scrub.*] namespace. *)
val kv : report -> (string * int) list

(** Pointwise sum (unrecoverable lists concatenated). *)
val merge : report -> report -> report

(** Paced scrub: a persistent cursor over the page-ID space that advances
    a bounded number of pages per tick and wraps, so every live page is
    eventually visited without a stop-the-world pass. *)
type sched

(** [scheduler ?pages_per_tick pool] (default bandwidth 1 page/tick). *)
val scheduler : ?pages_per_tick:int -> Buffer_pool.t -> sched

(** Set the bandwidth knob: pages checked per {!tick}.  [0] pauses the
    scrubber. *)
val set_bandwidth : sched -> int -> unit

(** Install (or with [None] remove) a backpressure probe.  While it
    returns [true] — e.g. the foreground backlog is above its watermark
    — every {!tick} yields: no pages are checked, the cursor does not
    move, and the yield is counted.  The cheapest graceful-degradation
    lever: a loaded system stops paying for background I/O first. *)
val set_backpressure : sched -> (unit -> bool) option -> unit

(** Ticks skipped because the backpressure probe said the foreground
    was loaded. *)
val yields : sched -> int

(** Check up to [pages_per_tick] live pages at the cursor (wrapping past
    the high-water mark) and return this tick's report.  Never raises:
    pages the pool cannot currently serve are counted as [deferred], and
    a tick under backpressure returns {!empty} without moving the
    cursor. *)
val tick : sched -> report

(** Cumulative report across every tick so far. *)
val total : sched -> report

(** AIMD auto-throttle over a scheduler's bandwidth knob.  Feed it the
    foreground operation latencies you care about; every [window]
    observations it computes that window's p99 and adjusts
    {!set_bandwidth}: halve when the p99 exceeds [target_p99_ns]
    (multiplicative decrease under pressure), plus one when at or below
    it (additive increase while idle), clamped to [[min_bw, max_bw]]. *)
type throttler

(** [throttler ?min_bw ?max_bw ?window ~target_p99_ns sched] wraps
    [sched] (clamping its current bandwidth into bounds).  Defaults:
    [min_bw = 0] (may pause entirely), [max_bw = 64], [window = 64].
    Raises [Invalid_argument] on an empty window or inverted bounds. *)
val throttler :
  ?min_bw:int -> ?max_bw:int -> ?window:int -> target_p99_ns:int -> sched ->
  throttler

(** Record one foreground operation latency (simulated ns).  Completing
    a window adjusts the underlying scheduler's bandwidth as a side
    effect. *)
val observe : throttler -> int -> unit

(** Current pages-per-tick of the throttled scheduler. *)
val bandwidth : throttler -> int

(** [(backoffs, raises)]: windows that lowered / raised the bandwidth. *)
val adjustments : throttler -> int * int
