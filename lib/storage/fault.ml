(* Media-failure profiles and their deterministic schedules.

   A profile describes how often a disk misbehaves; the schedule is a pure
   function of (profile seed, disk, physical page, per-location access
   count), so two runs with the same seed observe byte-identical fault
   sequences no matter how the simulated clock interleaves — the property
   the chaos harness's golden-run oracle depends on.

   Three failure classes, mirroring the field studies the robustness
   literature is built on:
   - transient errors: a read or write fails, then succeeds when retried
     (cabling, vibration, controller hiccups);
   - latent sector errors: a location becomes persistently unreadable
     until it is next written (which remaps the sector);
   - silent corruption: the read "succeeds" but the returned bytes differ
     from what was written (bit rot, torn sector writes), detectable only
     by checksum. *)

type profile = {
  seed : int;
  transient_read : float;  (* per-read probability of a transient failure *)
  transient_write : float;  (* per-write probability of a transient failure *)
  transient_fail_len : int;  (* consecutive attempts a transient fault eats *)
  latent : float;  (* per-read probability the location develops an LSE *)
  corrupt : float;  (* per-read probability of silent corruption *)
  torn_frac : float;  (* fraction of corruption events that tear a sector *)
  corrupt_bits : int;  (* byte flips per bit-rot event *)
}

let none =
  {
    seed = 0;
    transient_read = 0.;
    transient_write = 0.;
    transient_fail_len = 1;
    latent = 0.;
    corrupt = 0.;
    torn_frac = 0.25;
    corrupt_bits = 3;
  }

(* A standard mix at an overall per-read fault [rate]: mostly transient,
   some rot, a little persistent damage — the shape of the LSE/corruption
   field studies, compressed so tiny runs still see every class. *)
let scaled ?(seed = 1) rate =
  {
    none with
    seed;
    transient_read = rate *. 0.5;
    transient_write = rate *. 0.25;
    transient_fail_len = 2;
    latent = rate *. 0.15;
    corrupt = rate *. 0.35;
  }

(* 32-bit avalanche (Murmur3 finalizer variant): the schedule's PRF core. *)
let mix32 h =
  let h = h land 0xffffffff in
  let h = (h lxor (h lsr 16)) * 0x7feb352d land 0xffffffff in
  let h = (h lxor (h lsr 15)) * 0x846ca68b land 0xffffffff in
  h lxor (h lsr 16)

(* Deterministic per-event hash: seed, disk, location and the location's
   access count, folded pairwise so each argument avalanches fully. *)
let draw ~seed ~disk ~phys ~n =
  let h = mix32 (seed lxor 0x811c9dc5) in
  let h = mix32 (h lxor (disk + 0x9e3779b9)) in
  let h = mix32 (h lxor (phys * 0x85ebca6b)) in
  mix32 (h lxor (n * 0xc2b2ae35))

(* Map a hash to [0, 1). *)
let uniform h = float_of_int (h land 0xffffff) /. 16777216.
