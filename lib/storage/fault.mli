(** Media-failure profiles and their deterministic schedules.

    A profile describes how often a disk misbehaves; the schedule is a
    pure function of (seed, disk, physical page, per-location access
    count), so equal seeds observe identical fault sequences regardless
    of simulated-clock interleaving — the property the chaos harness's
    golden-run oracle depends on.  See {!Disk_model.set_faults}. *)

type profile = {
  seed : int;
  transient_read : float;
      (** per-read probability of a transient failure (fails, then
          succeeds when retried) *)
  transient_write : float;  (** per-write probability of the same *)
  transient_fail_len : int;
      (** consecutive attempts a transient fault eats before the retry
          succeeds *)
  latent : float;
      (** per-read probability the location develops a latent sector
          error: persistently unreadable until next written *)
  corrupt : float;
      (** per-read probability of silent corruption, detectable only by
          checksum *)
  torn_frac : float;
      (** fraction of corruption events that tear a whole sector rather
          than flip bits *)
  corrupt_bits : int;  (** byte flips per bit-rot event *)
}

(** All rates zero. *)
val none : profile

(** A standard mix at an overall per-read fault [rate]: half transient
    reads, the rest split between silent corruption, latent sectors and
    transient writes. *)
val scaled : ?seed:int -> float -> profile

(** 32-bit avalanche hash (Murmur3-finalizer variant). *)
val mix32 : int -> int

(** Deterministic per-event hash of (seed, disk, phys, access count). *)
val draw : seed:int -> disk:int -> phys:int -> n:int -> int

(** Map a hash to [0, 1). *)
val uniform : int -> float
