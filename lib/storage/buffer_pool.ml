(* Buffer pool with CLOCK replacement, pinning, and asynchronous prefetch.

   Page contents always live in the page store; the pool tracks which pages
   are memory-resident, charges simulated disk time for the rest, and
   assigns each resident page a frame.  Frames give pages their simulated
   physical addresses (frame index x page size), so the CPU-cache simulator
   sees a stable, conflict-realistic address space; reassigning a frame
   invalidates its CPU-cache lines.

   Prefetch requests are dispatched by a configurable pool of prefetcher
   threads (the paper's DB2 experiment varies exactly this): each request is
   picked up by the earliest-available prefetcher, which then stays busy
   until the disk read completes.  A demand [get] of an in-flight page waits
   only for the remaining latency. *)

open Fpb_simmem
module Counter = Fpb_obs.Counter

type stats = {
  hits : Counter.t;
  misses : Counter.t;  (* demand reads that went to disk *)
  prefetch_issued : Counter.t;
  prefetch_hits : Counter.t;  (* gets satisfied by a prefetched page *)
  io_wait_ns : Counter.t;  (* time the querying thread waited on I/O *)
}

let make_stats () =
  {
    hits = Counter.make "pool.hits";
    misses = Counter.make "pool.misses";
    prefetch_issued = Counter.make "pool.prefetch_issued";
    prefetch_hits = Counter.make "pool.prefetch_hits";
    io_wait_ns = Counter.make "pool.io_wait_ns";
  }

let stats_counters s =
  [ s.hits; s.misses; s.prefetch_issued; s.prefetch_hits; s.io_wait_ns ]

let stats_kv s = List.map Counter.kv (stats_counters s)

(* Durability hooks installed by the write-ahead log (see [Fpb_wal.Wal]).
   The pool stays ignorant of log internals: it only announces the events
   the WAL protocol is defined over.  [before_page_write] runs before a
   dirty page's write-back is submitted (WAL-before-data: the log forces
   itself durable up to the page's LSN, and may raise to simulate a crash);
   [on_page_write] runs after, so the log can refresh its durable image of
   the page. *)
type wal_hooks = {
  on_page_dirty : int -> unit;
  before_page_write : int -> unit;
  on_page_write : int -> unit;
  on_page_alloc : int -> unit;
  on_page_free : int -> unit;
}

type t = {
  sim : Sim.t;
  store : Page_store.t;
  disks : Disk_model.t;
  capacity : int;
  frames : int array;  (* frame -> page id (Page_store.nil if empty) *)
  ref_bit : bool array;
  pin : int array;
  dirty : bool array;
  table : (int, int) Hashtbl.t;  (* page id -> frame *)
  inflight : (int, int) Hashtbl.t;  (* page id -> completion time *)
  prefetcher_free : int array;  (* per prefetcher: time it becomes idle *)
  prefetch_request_busy : int;  (* cycles to enqueue a prefetch request *)
  mutable hand : int;
  mutable readahead : int;  (* sequential readahead depth (0 = off) *)
  mutable wal : wal_hooks option;
  stats : stats;
}

exception Pool_exhausted

(* Drop every trace of [page] from the pool without writing it back: frame,
   ref bit, dirty bit, in-flight entry, CPU-cache lines.  Runs on every
   [Page_store.free] (the pool registers itself as an observer), so a
   free + realloc cycle can never resurrect stale frame state no matter
   which layer initiated the free. *)
let invalidate_page t page =
  match Hashtbl.find_opt t.table page with
  | None -> Hashtbl.remove t.inflight page
  | Some frame ->
      if t.pin.(frame) > 0 then
        invalid_arg "Buffer_pool: freeing a pinned page";
      Hashtbl.remove t.table page;
      Hashtbl.remove t.inflight page;
      t.frames.(frame) <- Page_store.nil;
      t.ref_bit.(frame) <- false;
      t.dirty.(frame) <- false;
      let page_size = Page_store.page_size t.store in
      Cache.invalidate_range t.sim.Sim.cache (frame * page_size) page_size

let create ?(n_prefetchers = 8) ?(prefetch_request_busy = 200) ~capacity sim
    store disks =
  if capacity <= 0 then invalid_arg "Buffer_pool.create";
  let t =
    {
      sim;
      store;
      disks;
      capacity;
      frames = Array.make capacity Page_store.nil;
      ref_bit = Array.make capacity false;
      pin = Array.make capacity 0;
      dirty = Array.make capacity false;
      table = Hashtbl.create (2 * capacity);
      inflight = Hashtbl.create 64;
      prefetcher_free = Array.make (max 1 n_prefetchers) 0;
      prefetch_request_busy;
      hand = 0;
      readahead = 0;
      wal = None;
      stats = make_stats ();
    }
  in
  Page_store.add_on_free store (invalidate_page t);
  t

let set_wal_hooks t hooks = t.wal <- hooks

let stats t = t.stats
let sim t = t.sim
let store t = t.store
let disks t = t.disks
let capacity t = t.capacity
let reset_stats t = List.iter Counter.reset (stats_counters t.stats)
let kv t = stats_kv t.stats

let region_of_frame t frame page =
  Mem.make ~bytes:(Page_store.bytes t.store page)
    ~base:(frame * Page_store.page_size t.store)

let evictable t frame =
  t.pin.(frame) = 0
  &&
  match t.frames.(frame) with
  | p when p = Page_store.nil -> true
  | p -> (
      match Hashtbl.find_opt t.inflight p with
      | Some c -> c <= Clock.now t.sim.Sim.clock
      | None -> true)

let wait_until t when_ =
  let now = Clock.now t.sim.Sim.clock in
  if when_ > now then begin
    Counter.add t.stats.io_wait_ns (when_ - now);
    Clock.advance_to t.sim.Sim.clock when_
  end

(* Write back the dirty page [p], bracketed by the WAL hooks that enforce
   log-before-data and refresh the durable page image. *)
let write_back t p =
  (match t.wal with Some h -> h.before_page_write p | None -> ());
  let disk, phys = Page_store.location t.store p in
  Disk_model.write t.disks ~disk ~phys;
  match t.wal with Some h -> h.on_page_write p | None -> ()

(* CLOCK sweep: find a frame, evicting its current page if needed. *)
let victim_frame t =
  let page_size = Page_store.page_size t.store in
  let n = t.capacity in
  let rec sweep steps =
    if steps > 2 * n then raise Pool_exhausted;
    let f = t.hand in
    t.hand <- (f + 1) mod n;
    if not (evictable t f) then sweep (steps + 1)
    else if t.frames.(f) <> Page_store.nil && t.ref_bit.(f) then begin
      t.ref_bit.(f) <- false;
      sweep (steps + 1)
    end
    else f
  in
  let f = sweep 0 in
  (match t.frames.(f) with
  | p when p = Page_store.nil -> ()
  | p ->
      Hashtbl.remove t.table p;
      Hashtbl.remove t.inflight p;
      if t.dirty.(f) then begin
        t.dirty.(f) <- false;
        write_back t p
      end;
      Cache.invalidate_range t.sim.Sim.cache (f * page_size) page_size);
  t.frames.(f) <- Page_store.nil;
  t.ref_bit.(f) <- false;
  f

(* Like [victim_frame], but when the sweep fails because every unpinned
   frame holds a prefetch still in flight, wait for the earliest completion
   and retry instead of giving up: an in-flight read about to land is not
   pool exhaustion.  Raises only when every frame is genuinely pinned. *)
let victim_frame_waiting t =
  try victim_frame t
  with Pool_exhausted ->
    let earliest = ref max_int in
    Hashtbl.iter
      (fun page c ->
        match Hashtbl.find_opt t.table page with
        | Some frame when t.pin.(frame) = 0 ->
            if c < !earliest then earliest := c
        | _ -> ())
      t.inflight;
    if !earliest = max_int then raise Pool_exhausted
    else begin
      wait_until t !earliest;
      victim_frame t
    end

(* Request an asynchronous read of [page].  No-op if already resident or in
   flight.  The request is served by the earliest-available prefetcher. *)
let prefetch t page =
  if not (Hashtbl.mem t.table page) then begin
    Sim.charge_busy t.sim t.prefetch_request_busy;
    (try
       let frame = victim_frame t in
       let worker = ref 0 in
       for i = 1 to Array.length t.prefetcher_free - 1 do
         if t.prefetcher_free.(i) < t.prefetcher_free.(!worker) then worker := i
       done;
       let earliest =
         max (Clock.now t.sim.Sim.clock) t.prefetcher_free.(!worker)
       in
       let disk, phys = Page_store.location t.store page in
       let completion = Disk_model.read t.disks ~earliest ~disk ~phys () in
       t.prefetcher_free.(!worker) <- completion;
       t.frames.(frame) <- page;
       Hashtbl.replace t.table page frame;
       Hashtbl.replace t.inflight page completion;
       Counter.incr t.stats.prefetch_issued
     with Pool_exhausted -> () (* drop the hint: pool too hot to prefetch *))
  end

(* Sequential readahead after a demand miss at (disk, phys): asynchronously
   read the next physically-consecutive pages on the same disk. *)
let issue_readahead t ~disk ~phys =
  for k = 1 to t.readahead do
    let nxt = Page_store.page_at t.store ~disk ~phys:(phys + k) in
    if nxt <> Page_store.nil then prefetch t nxt
  done

(* Pin a page, reading it from disk if not resident.  Returns the region to
   access its contents through.  Must be balanced by [unpin]. *)
let get t page =
  Sim.busy_bufcall t.sim;
  match Hashtbl.find_opt t.table page with
  | Some frame ->
      (match Hashtbl.find_opt t.inflight page with
      | Some c ->
          Hashtbl.remove t.inflight page;
          Counter.incr t.stats.prefetch_hits;
          wait_until t c
      | None -> Counter.incr t.stats.hits);
      t.ref_bit.(frame) <- true;
      t.pin.(frame) <- t.pin.(frame) + 1;
      region_of_frame t frame page
  | None ->
      let frame = victim_frame_waiting t in
      let disk, phys = Page_store.location t.store page in
      let completion = Disk_model.read t.disks ~disk ~phys () in
      Counter.incr t.stats.misses;
      wait_until t completion;
      t.frames.(frame) <- page;
      Hashtbl.replace t.table page frame;
      t.ref_bit.(frame) <- true;
      t.pin.(frame) <- 1;
      let region = region_of_frame t frame page in
      if t.readahead > 0 then issue_readahead t ~disk ~phys;
      region

let frame_of_page t page = Hashtbl.find_opt t.table page

let unpin t page =
  match frame_of_page t page with
  | Some frame when t.pin.(frame) > 0 -> t.pin.(frame) <- t.pin.(frame) - 1
  | _ -> invalid_arg "Buffer_pool.unpin: page not pinned"

let mark_dirty t page =
  match frame_of_page t page with
  | Some frame ->
      t.dirty.(frame) <- true;
      (match t.wal with Some h -> h.on_page_dirty page | None -> ())
  | None -> invalid_arg "Buffer_pool.mark_dirty: page not resident"

let with_page t page f =
  let region = get t page in
  Fun.protect ~finally:(fun () -> unpin t page) (fun () -> f region)

let is_resident t page = Hashtbl.mem t.table page

(* Classic sequential I/O prefetching (the paper's Section 2 contrast to
   jump-pointer arrays): after a demand miss, asynchronously read the next
   [depth] pages in *physical* order on the same disk.  Effective for
   clustered/bulkloaded layouts, useless once updates have scattered the
   leaf order. *)
let set_sequential_readahead t depth = t.readahead <- max 0 depth

(* Allocate a fresh page and make it resident (no disk read: it is born in
   memory) with one pin.  Returns the page id and its region. *)
let create_page t =
  let page = Page_store.alloc t.store in
  let frame = victim_frame_waiting t in
  t.frames.(frame) <- page;
  Hashtbl.replace t.table page frame;
  t.ref_bit.(frame) <- true;
  t.pin.(frame) <- 1;
  t.dirty.(frame) <- true;
  (match t.wal with
  | Some h ->
      h.on_page_alloc page;
      h.on_page_dirty page
  | None -> ());
  Sim.busy_bufcall t.sim;
  (page, region_of_frame t frame page)

(* Release a page back to the store.  It must be unpinned.  The pool's
   stale state (frame, dirty bit, in-flight entry) is invalidated by the
   [Page_store] free observer registered at [create]. *)
let free_page t page =
  (match frame_of_page t page with
  | Some frame when t.pin.(frame) > 0 ->
      invalid_arg "Buffer_pool.free_page: pinned"
  | _ -> ());
  (match t.wal with Some h -> h.on_page_free page | None -> ());
  Page_store.free t.store page

(* Evict every unpinned page (writing back dirty ones): a cold pool, as in
   the paper's search-I/O experiments.  Raises [Pool_exhausted] via victim
   search only if pages remain pinned. *)
let clear t =
  let page_size = Page_store.page_size t.store in
  for f = 0 to t.capacity - 1 do
    match t.frames.(f) with
    | p when p = Page_store.nil -> ()
    | p ->
        if t.pin.(f) > 0 then invalid_arg "Buffer_pool.clear: pinned page";
        Hashtbl.remove t.table p;
        Hashtbl.remove t.inflight p;
        if t.dirty.(f) then begin
          t.dirty.(f) <- false;
          write_back t p
        end;
        t.frames.(f) <- Page_store.nil;
        t.ref_bit.(f) <- false;
        Cache.invalidate_range t.sim.Sim.cache (f * page_size) page_size
  done;
  Array.fill t.prefetcher_free 0 (Array.length t.prefetcher_free) 0

(* Write back every dirty page without evicting anything: the data half of
   a sharp checkpoint. *)
let flush_dirty t =
  for f = 0 to t.capacity - 1 do
    match t.frames.(f) with
    | p when p = Page_store.nil -> ()
    | p ->
        if t.dirty.(f) then begin
          t.dirty.(f) <- false;
          write_back t p
        end
  done

(* Crash semantics: discard every frame WITHOUT writing anything back and
   reset pins, in-flight reads and prefetcher state.  Dirty page contents
   that never reached disk die here — exactly what recovery must repair. *)
let drop_all t =
  let page_size = Page_store.page_size t.store in
  for f = 0 to t.capacity - 1 do
    (match t.frames.(f) with
    | p when p = Page_store.nil -> ()
    | p ->
        Hashtbl.remove t.table p;
        Cache.invalidate_range t.sim.Sim.cache (f * page_size) page_size);
    t.frames.(f) <- Page_store.nil;
    t.ref_bit.(f) <- false;
    t.dirty.(f) <- false;
    t.pin.(f) <- 0
  done;
  Hashtbl.reset t.inflight;
  Array.fill t.prefetcher_free 0 (Array.length t.prefetcher_free) 0

let resident_pages t = Hashtbl.length t.table
