(* Buffer pool with sharded CLOCK replacement, pinning, asynchronous
   prefetch, and media-failure handling.

   Page contents always live in the page store; the pool tracks which pages
   are memory-resident, charges simulated disk time for the rest, and
   assigns each resident page a frame.  Frames give pages their simulated
   physical addresses (frame index x page size), so the CPU-cache simulator
   sees a stable, conflict-realistic address space; reassigning a frame
   invalidates its CPU-cache lines.

   The page table and CLOCK replacement are split into [n_shards]
   independent shards keyed by a mix of the page id (PostgreSQL's
   buffer-mapping partitions, LeanStore's partitioned pools).  Each shard
   owns a disjoint slice of the frame arena, its own hash table, in-flight
   map, CLOCK hand, and a simulated latch: acquiring the latch costs
   [Cost_model.latch_cycles] busy time, and acquiring it while another
   logical client holds it (its release time lies in the acquirer's
   future) additionally waits until the holder releases, counted in
   [pool.shard.conflicts] / [pool.shard.waits_ns].  With one shard and one
   client the latch never conflicts and the pool behaves exactly like the
   pre-sharding implementation.

   Prefetch requests are dispatched by a configurable pool of prefetcher
   threads (the paper's DB2 experiment varies exactly this): each request is
   picked up by the earliest-available prefetcher, which then stays busy
   until the disk read completes.  A demand [get] of an in-flight page waits
   only for the remaining latency.

   Every read that crosses the disk boundary is checked against the page's
   checksum header (see [Page_store]).  Transient I/O errors are retried
   with exponential backoff charged to simulated time; persistent damage
   (latent sectors, corrupted bytes) escalates to a repair hook installed
   by the write-ahead log, and only when that fails does the caller see a
   typed [Io_error]. *)

open Fpb_simmem
module Counter = Fpb_obs.Counter

type stats = {
  hits : Counter.t;
  misses : Counter.t;  (* demand reads that went to disk *)
  evictions : Counter.t;  (* pages replaced by the CLOCK sweep *)
  prefetch_issued : Counter.t;
  prefetch_hits : Counter.t;  (* gets satisfied by a prefetched page *)
  prefetch_dropped : Counter.t;  (* hints dropped: pool too hot, or I/O error *)
  io_wait_ns : Counter.t;  (* time the querying thread waited on I/O *)
  shard_conflicts : Counter.t;  (* latch acquisitions that found it held *)
  shard_waits_ns : Counter.t;  (* simulated time spent waiting on latches *)
  retry_read : Counter.t;  (* read attempts beyond the first *)
  retry_wait_ns : Counter.t;  (* simulated time spent backing off *)
  err_transient : Counter.t;
  err_latent : Counter.t;
  err_checksum : Counter.t;
  err_unrecoverable : Counter.t;  (* errors surfaced as [Io_error] *)
  repair_attempts : Counter.t;
  repair_repaired : Counter.t;
  repair_failed : Counter.t;
  overloaded : Counter.t;  (* demand requests refused as [Overloaded] *)
  overload_wait_ns : Counter.t;  (* time spent in bounded victim rescans *)
}

let make_stats () =
  {
    hits = Counter.make "pool.hits";
    misses = Counter.make "pool.misses";
    evictions = Counter.make "pool.evictions";
    prefetch_issued = Counter.make "pool.prefetch_issued";
    prefetch_hits = Counter.make "pool.prefetch_hits";
    prefetch_dropped = Counter.make "pool.prefetch_dropped";
    io_wait_ns = Counter.make "pool.io_wait_ns";
    shard_conflicts = Counter.make "pool.shard.conflicts";
    shard_waits_ns = Counter.make "pool.shard.waits_ns";
    retry_read = Counter.make "io.retry.read";
    retry_wait_ns = Counter.make "io.retry.wait_ns";
    err_transient = Counter.make "io.error.transient";
    err_latent = Counter.make "io.error.latent";
    err_checksum = Counter.make "io.error.checksum";
    err_unrecoverable = Counter.make "io.error.unrecoverable";
    repair_attempts = Counter.make "repair.attempts";
    repair_repaired = Counter.make "repair.repaired";
    repair_failed = Counter.make "repair.failed";
    overloaded = Counter.make "pool.overloaded";
    overload_wait_ns = Counter.make "pool.overload_wait_ns";
  }

let stats_counters s =
  [
    s.hits; s.misses; s.evictions; s.prefetch_issued; s.prefetch_hits;
    s.prefetch_dropped; s.io_wait_ns; s.shard_conflicts; s.shard_waits_ns;
    s.retry_read; s.retry_wait_ns; s.err_transient; s.err_latent;
    s.err_checksum; s.err_unrecoverable; s.repair_attempts;
    s.repair_repaired; s.repair_failed; s.overloaded; s.overload_wait_ns;
  ]

let stats_kv s = List.map Counter.kv (stats_counters s)

(* Durability hooks installed by the write-ahead log (see [Fpb_wal.Wal]).
   The pool stays ignorant of log internals: it only announces the events
   the WAL protocol is defined over.  [before_page_write] runs before a
   dirty page's write-back is submitted (WAL-before-data: the log forces
   itself durable up to the page's LSN, and may raise to simulate a crash);
   [on_page_write] runs after, so the log can refresh its durable image of
   the page.  [page_lsn] reports the LSN of the newest logged change to a
   page, which the pool stamps into the page's checksum header on every
   write-back. *)
type wal_hooks = {
  on_page_dirty : int -> unit;
  before_page_write : int -> unit;
  on_page_write : int -> unit;
  on_page_alloc : int -> unit;
  on_page_free : int -> unit;
  page_lsn : int -> int;
}

(* How hard a demand read fights transient errors before giving up.  The
   backoff is charged to the simulated clock (and to [io.retry.wait_ns]),
   so retry storms show up in latency results, not just counters. *)
type retry_policy = {
  max_retries : int;  (* attempts beyond the first *)
  backoff_ns : int;  (* wait before the first retry *)
  backoff_mult : int;  (* multiplier per subsequent retry *)
}

let default_retry_policy =
  { max_retries = 4; backoff_ns = 500_000; backoff_mult = 2 }

type io_cause = [ `Transient | `Latent | `Checksum ]

let io_cause_name = function
  | `Transient -> "transient"
  | `Latent -> "latent"
  | `Checksum -> "checksum"

exception
  Io_error of {
    page : int;
    attempts : int;
    cause : io_cause;
    repair : [ `Not_attempted | `Failed of string ];
  }

let () =
  Printexc.register_printer (function
    | Io_error { page; attempts; cause; repair } ->
        Some
          (Printf.sprintf "Io_error(page %d, %s, %d attempt%s%s)" page
             (io_cause_name cause) attempts
             (if attempts = 1 then "" else "s")
             (match repair with
             | `Not_attempted -> ""
             | `Failed msg -> ", repair failed: " ^ msg))
    | _ -> None)

(* One shard: a disjoint frame slice [lo, hi), its own page table,
   in-flight map and CLOCK hand, plus the simulated latch state.  The
   latch is a cost model, not a mutex: operations execute atomically in
   host order, but [latch_free_at] records when the previous holder (in
   simulated time) released, so a logical client arriving earlier pays
   the wait. *)
type shard = {
  table : (int, int) Hashtbl.t;  (* page id -> frame *)
  inflight : (int, int) Hashtbl.t;  (* page id -> completion time *)
  lo : int;  (* first frame owned (inclusive) *)
  hi : int;  (* last frame owned (exclusive) *)
  mutable hand : int;
  mutable latch_free_at : int;
  mutable conflicts : int;  (* per-shard tally of contended acquires *)
  mutable waits_ns : int;
}

(* How a demand request behaves when every frame is pinned: rescan the
   victim sweep a bounded number of times, each preceded by a wait
   charged to simulated time (in-flight reads may land, pins may expire
   in simulated time), then give up with a typed [Overloaded] so the
   caller can shed the request instead of crashing. *)
type overload_policy = {
  victim_rescans : int;  (* rescans after the first failed sweep *)
  rescan_wait_ns : int;  (* simulated wait before each rescan *)
}

let default_overload_policy = { victim_rescans = 2; rescan_wait_ns = 200_000 }

type t = {
  sim : Sim.t;
  store : Page_store.t;
  disks : Disk_model.t;
  capacity : int;
  frames : int array;  (* frame -> page id (Page_store.nil if empty) *)
  ref_bit : bool array;
  pin : int array;
  dirty : bool array;
  shards : shard array;
  prefetcher_free : int array;  (* per prefetcher: time it becomes idle *)
  prefetch_request_busy : int;  (* cycles to enqueue a prefetch request *)
  mutable readahead : int;  (* sequential readahead depth (0 = off) *)
  mutable overload : overload_policy;
  mutable wal : wal_hooks option;
  mutable retry : retry_policy;
  mutable repair :
    (int -> bad_sectors:int list -> [ `Repaired | `Unrecoverable of string ])
      option;
  stats : stats;
}

exception Pool_exhausted

exception Overloaded of { page : int; scans : int }

let () =
  Printexc.register_printer (function
    | Overloaded { page; scans } ->
        Some
          (Printf.sprintf
             "Buffer_pool.Overloaded(page %d: every frame pinned after %d \
              victim scan%s)"
             page scans
             (if scans = 1 then "" else "s"))
    | _ -> None)

(* Deterministic multiplicative mix so shard choice decorrelates from the
   round-robin disk striping ((id-1) mod n_disks) and from any sequential
   allocation pattern. *)
let mix_page page =
  let h = page * 0x9E3779B1 in
  let h = h lxor (h lsr 16) in
  h land max_int

let n_shards t = Array.length t.shards
let shard_of_page t page =
  if Array.length t.shards = 1 then 0
  else mix_page page mod Array.length t.shards

let shard_of t page = t.shards.(shard_of_page t page)

(* Simulated latch acquisition: charge the uncontended cost, then if the
   previous holder's release time is still in this client's future, count
   a conflict and wait it out.  With a monotone clock (single client) the
   wait branch never triggers. *)
let latch_acquire t sh =
  Sim.charge_busy t.sim t.sim.Sim.cost.Cost_model.latch_cycles;
  let now = Clock.now t.sim.Sim.clock in
  if now < sh.latch_free_at then begin
    let w = sh.latch_free_at - now in
    sh.conflicts <- sh.conflicts + 1;
    sh.waits_ns <- sh.waits_ns + w;
    Counter.incr t.stats.shard_conflicts;
    Counter.add t.stats.shard_waits_ns w;
    Clock.advance_to t.sim.Sim.clock sh.latch_free_at
  end

let latch_release t sh = sh.latch_free_at <- Clock.now t.sim.Sim.clock

(* Drop every trace of [page] from the pool without writing it back: frame,
   ref bit, dirty bit, in-flight entry, CPU-cache lines.  Runs on every
   [Page_store.free] (the pool registers itself as an observer), so a
   free + realloc cycle can never resurrect stale frame state no matter
   which layer initiated the free. *)
let invalidate_page t page =
  let sh = shard_of t page in
  match Hashtbl.find_opt sh.table page with
  | None -> Hashtbl.remove sh.inflight page
  | Some frame ->
      if t.pin.(frame) > 0 then
        invalid_arg "Buffer_pool: freeing a pinned page";
      Hashtbl.remove sh.table page;
      Hashtbl.remove sh.inflight page;
      t.frames.(frame) <- Page_store.nil;
      t.ref_bit.(frame) <- false;
      t.dirty.(frame) <- false;
      let page_size = Page_store.page_size t.store in
      Cache.invalidate_range t.sim.Sim.cache (frame * page_size) page_size

let create ?(n_prefetchers = 8) ?(prefetch_request_busy = 200) ?(n_shards = 1)
    ~capacity sim store disks =
  if capacity <= 0 then invalid_arg "Buffer_pool.create";
  if n_shards < 1 || n_shards > capacity then
    invalid_arg "Buffer_pool.create: n_shards must be in [1, capacity]";
  let shards =
    Array.init n_shards (fun i ->
        let lo = i * capacity / n_shards in
        let hi = (i + 1) * capacity / n_shards in
        {
          table = Hashtbl.create (2 * (hi - lo));
          inflight = Hashtbl.create 64;
          lo;
          hi;
          hand = lo;
          latch_free_at = 0;
          conflicts = 0;
          waits_ns = 0;
        })
  in
  let t =
    {
      sim;
      store;
      disks;
      capacity;
      frames = Array.make capacity Page_store.nil;
      ref_bit = Array.make capacity false;
      pin = Array.make capacity 0;
      dirty = Array.make capacity false;
      shards;
      prefetcher_free = Array.make (max 1 n_prefetchers) 0;
      prefetch_request_busy;
      readahead = 0;
      overload = default_overload_policy;
      wal = None;
      retry = default_retry_policy;
      repair = None;
      stats = make_stats ();
    }
  in
  Page_store.add_on_free store (invalidate_page t);
  t

let set_wal_hooks t hooks = t.wal <- hooks
let set_repair t hook = t.repair <- hook

let set_retry_policy t policy =
  if policy.max_retries < 0 || policy.backoff_ns < 0 || policy.backoff_mult < 1
  then invalid_arg "Buffer_pool.set_retry_policy";
  t.retry <- policy

let retry_policy t = t.retry

let set_overload_policy t policy =
  if policy.victim_rescans < 0 || policy.rescan_wait_ns < 0 then
    invalid_arg "Buffer_pool.set_overload_policy";
  t.overload <- policy

let overload_policy t = t.overload

let stats t = t.stats
let sim t = t.sim
let store t = t.store
let disks t = t.disks
let capacity t = t.capacity

let shard_tallies t =
  Array.map (fun sh -> (sh.conflicts, sh.waits_ns)) t.shards

let reset_stats t =
  List.iter Counter.reset (stats_counters t.stats);
  Array.iter
    (fun sh ->
      sh.conflicts <- 0;
      sh.waits_ns <- 0)
    t.shards

let kv t = stats_kv t.stats

let region_of_frame t frame page =
  Mem.make ~bytes:(Page_store.bytes t.store page)
    ~base:(frame * Page_store.page_size t.store)

let evictable t sh frame =
  t.pin.(frame) = 0
  &&
  match t.frames.(frame) with
  | p when p = Page_store.nil -> true
  | p -> (
      match Hashtbl.find_opt sh.inflight p with
      | Some c -> c <= Clock.now t.sim.Sim.clock
      | None -> true)

let wait_until t when_ =
  let now = Clock.now t.sim.Sim.clock in
  if when_ > now then begin
    Counter.add t.stats.io_wait_ns (when_ - now);
    Clock.advance_to t.sim.Sim.clock when_
  end

(* Write back the dirty page [p], bracketed by the WAL hooks that enforce
   log-before-data and refresh the durable page image.  The write re-stamps
   the page's checksum header (a disk write always lays down fresh,
   consistent sector checksums) with the newest logged LSN. *)
let write_back t p =
  (match t.wal with Some h -> h.before_page_write p | None -> ());
  let disk, phys = Page_store.write_location t.store p in
  Disk_model.write t.disks ~disk ~phys;
  let lsn = match t.wal with Some h -> h.page_lsn p | None -> 0 in
  Sim.busy_crc t.sim ~bytes:(Page_store.page_size t.store);
  Page_store.stamp ~lsn t.store p;
  match t.wal with Some h -> h.on_page_write p | None -> ()

(* ------------------------- media read path -------------------------- *)

(* Apply a corruption spec drawn by the disk model to the page's backing
   bytes.  Raw offsets are reduced mod the page size; a torn sector zeroes
   the 512-byte-aligned span containing the offset. *)
let apply_corruption t page spec =
  let b = Page_store.bytes t.store page in
  let ps = Bytes.length b in
  match spec with
  | Disk_model.Bit_flips flips ->
      List.iter
        (fun (off, mask) ->
          let off = off mod ps in
          Bytes.set b off
            (Char.chr (Char.code (Bytes.get b off) lxor mask land 0xff)))
        flips
  | Disk_model.Torn_sector off ->
      let start = off mod ps land lnot 511 in
      Bytes.fill b start (min 512 (ps - start)) '\000'

(* Read [page]'s media into its backing bytes.  Transient errors are
   retried up to the policy with exponential backoff charged to simulated
   time; persistent damage (latent sector, checksum mismatch) escalates to
   the repair hook.  Returns whether the bytes came back clean or had to
   be repaired; raises [Io_error] when the page cannot be produced. *)
let media_read t page ~disk ~phys =
  let fail ~attempts ~cause ~repair =
    Counter.incr t.stats.err_unrecoverable;
    raise (Io_error { page; attempts; cause; repair })
  in
  let repair_or ~attempts ~cause ~bad_sectors =
    match t.repair with
    | None -> fail ~attempts ~cause ~repair:`Not_attempted
    | Some r -> (
        Counter.incr t.stats.repair_attempts;
        match r page ~bad_sectors with
        | `Repaired ->
            Counter.incr t.stats.repair_repaired;
            `Repaired
        | `Unrecoverable msg ->
            Counter.incr t.stats.repair_failed;
            fail ~attempts ~cause ~repair:(`Failed msg))
  in
  let verify ~attempts =
    Sim.busy_crc t.sim ~bytes:(Page_store.page_size t.store);
    match Page_store.verify t.store page with
    | Page_store.Ok -> `Ok
    | Page_store.Bad_crc { bad_sectors; _ } ->
        Counter.incr t.stats.err_checksum;
        repair_or ~attempts ~cause:`Checksum ~bad_sectors
  in
  let rec attempt n backoff =
    match Disk_model.read_result t.disks ~disk ~phys () with
    | Disk_model.Read_ok c ->
        wait_until t c;
        verify ~attempts:n
    | Disk_model.Read_corrupt (c, spec) ->
        wait_until t c;
        apply_corruption t page spec;
        verify ~attempts:n
    | Disk_model.Read_error (c, kind) -> (
        wait_until t c;
        match kind with
        | `Transient ->
            Counter.incr t.stats.err_transient;
            if n <= t.retry.max_retries then begin
              Counter.incr t.stats.retry_read;
              Counter.add t.stats.retry_wait_ns backoff;
              wait_until t (Clock.now t.sim.Sim.clock + backoff);
              attempt (n + 1) (backoff * t.retry.backoff_mult)
            end
            else fail ~attempts:n ~cause:`Transient ~repair:`Not_attempted
        | `Latent ->
            Counter.incr t.stats.err_latent;
            (* the whole page is unreadable: no sector localisation *)
            repair_or ~attempts:n ~cause:`Latent ~bad_sectors:[])
  in
  attempt 1 t.retry.backoff_ns

(* ----------------------------- replacement --------------------------- *)

(* CLOCK sweep over the shard's frame slice: find a frame, evicting its
   current page if needed. *)
let victim_frame t sh =
  let page_size = Page_store.page_size t.store in
  let n = sh.hi - sh.lo in
  let rec sweep steps =
    if steps > 2 * n then raise Pool_exhausted;
    let f = sh.hand in
    sh.hand <- (if f + 1 >= sh.hi then sh.lo else f + 1);
    if not (evictable t sh f) then sweep (steps + 1)
    else if t.frames.(f) <> Page_store.nil && t.ref_bit.(f) then begin
      t.ref_bit.(f) <- false;
      sweep (steps + 1)
    end
    else f
  in
  let f = sweep 0 in
  (match t.frames.(f) with
  | p when p = Page_store.nil -> ()
  | p ->
      Hashtbl.remove sh.table p;
      Hashtbl.remove sh.inflight p;
      Counter.incr t.stats.evictions;
      if t.dirty.(f) then begin
        t.dirty.(f) <- false;
        write_back t p
      end;
      Cache.invalidate_range t.sim.Sim.cache (f * page_size) page_size);
  t.frames.(f) <- Page_store.nil;
  t.ref_bit.(f) <- false;
  f

(* Like [victim_frame], but when the sweep fails because every unpinned
   frame holds a prefetch still in flight, wait for the earliest completion
   and retry instead of giving up: an in-flight read about to land is not
   pool exhaustion.  Raises only when every frame is genuinely pinned. *)
let victim_frame_waiting t sh =
  try victim_frame t sh
  with Pool_exhausted ->
    let earliest = ref max_int in
    Hashtbl.iter
      (fun page c ->
        match Hashtbl.find_opt sh.table page with
        | Some frame when t.pin.(frame) = 0 ->
            if c < !earliest then earliest := c
        | _ -> ())
      sh.inflight;
    if !earliest = max_int then raise Pool_exhausted
    else begin
      wait_until t !earliest;
      victim_frame t sh
    end

(* Demand-path frame acquisition with graceful degradation: when the
   sweep finds every frame pinned, retry it a bounded number of times
   with a wait charged to simulated time (an in-flight read may land or
   a pin expire in the meantime), then surface a typed [Overloaded]
   (counted under [pool.overloaded]) so the caller sheds the request
   instead of dying on a raw [Pool_exhausted]. *)
let victim_frame_demand t sh page =
  let rec go scans =
    try victim_frame_waiting t sh
    with Pool_exhausted ->
      if scans > t.overload.victim_rescans then begin
        Counter.incr t.stats.overloaded;
        raise (Overloaded { page; scans })
      end
      else begin
        Counter.add t.stats.overload_wait_ns t.overload.rescan_wait_ns;
        wait_until t (Clock.now t.sim.Sim.clock + t.overload.rescan_wait_ns);
        go (scans + 1)
      end
  in
  go 1

(* Drop an unpinned frame whose page turned out unusable (failed
   verification on arrival): forget the mapping without write-back. *)
let drop_frame t sh frame page =
  Hashtbl.remove sh.table page;
  Hashtbl.remove sh.inflight page;
  t.frames.(frame) <- Page_store.nil;
  t.ref_bit.(frame) <- false;
  t.dirty.(frame) <- false;
  let page_size = Page_store.page_size t.store in
  Cache.invalidate_range t.sim.Sim.cache (frame * page_size) page_size

(* Request an asynchronous read of [page].  No-op if already resident or in
   flight.  The request is served by the earliest-available prefetcher.  A
   prefetcher does not retry or repair: on any I/O error it drops the hint
   (counted) and lets the eventual demand read do the fighting. *)
let prefetch t page =
  let sh = shard_of t page in
  if not (Hashtbl.mem sh.table page) then begin
    Sim.charge_busy t.sim t.prefetch_request_busy;
    latch_acquire t sh;
    (try
       let frame = victim_frame t sh in
       let worker = ref 0 in
       for i = 1 to Array.length t.prefetcher_free - 1 do
         if t.prefetcher_free.(i) < t.prefetcher_free.(!worker) then worker := i
       done;
       let earliest =
         max (Clock.now t.sim.Sim.clock) t.prefetcher_free.(!worker)
       in
       let disk, phys = Page_store.location t.store page in
       let install completion =
         t.prefetcher_free.(!worker) <- completion;
         t.frames.(frame) <- page;
         Hashtbl.replace sh.table page frame;
         Hashtbl.replace sh.inflight page completion;
         Counter.incr t.stats.prefetch_issued
       in
       match Disk_model.read_result t.disks ~earliest ~disk ~phys () with
       | Disk_model.Read_ok c -> install c
       | Disk_model.Read_corrupt (c, spec) ->
           (* the bad bytes land in the frame; verification at first [get]
              catches them *)
           apply_corruption t page spec;
           install c
       | Disk_model.Read_error (c, kind) ->
           t.prefetcher_free.(!worker) <- c;
           (match kind with
           | `Transient -> Counter.incr t.stats.err_transient
           | `Latent -> Counter.incr t.stats.err_latent);
           Counter.incr t.stats.prefetch_dropped
     with Pool_exhausted ->
       (* pool too hot to prefetch: drop the hint *)
       Counter.incr t.stats.prefetch_dropped);
    latch_release t sh
  end

(* Sequential readahead after a demand miss at (disk, phys): asynchronously
   read the next physically-consecutive pages on the same disk. *)
let issue_readahead t ~disk ~phys =
  for k = 1 to t.readahead do
    let nxt = Page_store.page_at t.store ~disk ~phys:(phys + k) in
    if nxt <> Page_store.nil then prefetch t nxt
  done

(* A prefetched page just landed in [frame]: verify it like any other disk
   read.  On checksum failure, escalate to repair; if that cannot produce
   the page, evict the frame before raising so the pool never serves bytes
   it knows are bad. *)
let verify_arrival t sh page frame =
  Sim.busy_crc t.sim ~bytes:(Page_store.page_size t.store);
  match Page_store.verify t.store page with
  | Page_store.Ok -> ()
  | Page_store.Bad_crc { bad_sectors; _ } -> (
      Counter.incr t.stats.err_checksum;
      let fail repair =
        drop_frame t sh frame page;
        Counter.incr t.stats.err_unrecoverable;
        raise (Io_error { page; attempts = 1; cause = `Checksum; repair })
      in
      match t.repair with
      | None -> fail `Not_attempted
      | Some r -> (
          Counter.incr t.stats.repair_attempts;
          match r page ~bad_sectors with
          | `Repaired -> Counter.incr t.stats.repair_repaired
          | `Unrecoverable msg ->
              Counter.incr t.stats.repair_failed;
              fail (`Failed msg)))

(* Pin a page, reading it from disk if not resident.  Returns the region to
   access its contents through.  Must be balanced by [unpin].

   Latch discipline: the shard latch covers the hash lookup and any
   frame-state mutation, but is released across disk waits (the remaining
   latency of an in-flight prefetch, or a demand media read) and
   re-acquired to install the result — holding a latch across I/O would
   serialise the whole shard on the disk. *)
let get t page =
  let sh = shard_of t page in
  latch_acquire t sh;
  Sim.busy_bufcall t.sim;
  match Hashtbl.find_opt sh.table page with
  | Some frame ->
      (match Hashtbl.find_opt sh.inflight page with
      | Some c ->
          Hashtbl.remove sh.inflight page;
          Counter.incr t.stats.prefetch_hits;
          latch_release t sh;
          wait_until t c;
          verify_arrival t sh page frame;
          latch_acquire t sh
      | None -> Counter.incr t.stats.hits);
      t.ref_bit.(frame) <- true;
      t.pin.(frame) <- t.pin.(frame) + 1;
      latch_release t sh;
      region_of_frame t frame page
  | None ->
      let frame =
        try victim_frame_demand t sh page
        with Overloaded _ as e ->
          latch_release t sh;
          raise e
      in
      let disk, phys = Page_store.location t.store page in
      Counter.incr t.stats.misses;
      latch_release t sh;
      ignore (media_read t page ~disk ~phys : [ `Ok | `Repaired ]);
      latch_acquire t sh;
      t.frames.(frame) <- page;
      Hashtbl.replace sh.table page frame;
      t.ref_bit.(frame) <- true;
      t.pin.(frame) <- 1;
      latch_release t sh;
      let region = region_of_frame t frame page in
      if t.readahead > 0 then issue_readahead t ~disk ~phys;
      region

let frame_of_page t page = Hashtbl.find_opt (shard_of t page).table page

let unpin t page =
  match frame_of_page t page with
  | Some frame when t.pin.(frame) > 0 -> t.pin.(frame) <- t.pin.(frame) - 1
  | _ -> invalid_arg "Buffer_pool.unpin: page not pinned"

(* Pin a batch of pages together.  The whole batch's missing pages are
   first issued as asynchronous prefetches, so their disk reads overlap
   across the prefetcher pool instead of serialising one demand miss at
   a time; then every page is pinned in order.  If a frame cannot be
   found partway through ([Overloaded] — or any other error), the pages
   already pinned by this call are unpinned before the exception
   escapes, so a refused batch never leaks pins and can be retried
   smaller: callers degrade by splitting the batch (the PR 8 overload
   discipline), not by deadlocking on frame exhaustion.

   Pages should be distinct for the coalescing to help, but duplicates
   are handled correctly (each occurrence takes its own pin). *)
let get_batch t pages =
  let n = Array.length pages in
  if n = 0 then [||]
  else begin
    (* Coalesce: async-read everything that would demand-miss.  A hint
       dropped because the pool is hot just falls back to the demand
       read below. *)
    Array.iter
      (fun p ->
        if not (Hashtbl.mem (shard_of t p).table p) then prefetch t p)
      pages;
    let acc = ref [] in
    let pinned = ref 0 in
    (try
       for i = 0 to n - 1 do
         acc := get t pages.(i) :: !acc;
         incr pinned
       done
     with e ->
       for j = !pinned - 1 downto 0 do
         unpin t pages.(j)
       done;
       raise e);
    Array.of_list (List.rev !acc)
  end

let mark_dirty t page =
  match frame_of_page t page with
  | Some frame ->
      t.dirty.(frame) <- true;
      (match t.wal with Some h -> h.on_page_dirty page | None -> ())
  | None -> invalid_arg "Buffer_pool.mark_dirty: page not resident"

let with_page t page f =
  let region = get t page in
  Fun.protect ~finally:(fun () -> unpin t page) (fun () -> f region)

let is_resident t page = Hashtbl.mem (shard_of t page).table page

(* Media check for the scrubber: read a non-resident page through the full
   retry/verify/repair path without installing it in a frame.  Resident
   pages are skipped — the in-memory copy is authoritative and will lay
   down a fresh checksum when written back. *)
let check_media t page =
  if is_resident t page then `Resident
  else
    let disk, phys = Page_store.location t.store page in
    match media_read t page ~disk ~phys with
    | `Ok -> `Ok
    | `Repaired -> `Repaired
    (* A transient streak that exhausts the retry budget is the disk
       refusing to answer, not media damage — the sector may be fine.
       Report it as [`Busy] so a scrubber re-tries on a later lap
       instead of declaring the page unrecoverable. *)
    | exception Io_error { attempts; cause = `Transient; _ } -> `Busy attempts
    | exception Io_error { attempts; cause; repair; _ } ->
        `Unrecoverable
          (Printf.sprintf "%s error after %d attempt%s%s"
             (io_cause_name cause) attempts
             (if attempts = 1 then "" else "s")
             (match repair with
             | `Not_attempted -> ""
             | `Failed msg -> "; repair failed: " ^ msg))

(* Classic sequential I/O prefetching (the paper's Section 2 contrast to
   jump-pointer arrays): after a demand miss, asynchronously read the next
   [depth] pages in *physical* order on the same disk.  Effective for
   clustered/bulkloaded layouts, useless once updates have scattered the
   leaf order. *)
let set_sequential_readahead t depth = t.readahead <- max 0 depth

(* Allocate a fresh page and make it resident (no disk read: it is born in
   memory) with one pin.  Returns the page id and its region. *)
let create_page t =
  let page = Page_store.alloc t.store in
  let sh = shard_of t page in
  latch_acquire t sh;
  let frame =
    try victim_frame_demand t sh page
    with Overloaded _ as e ->
      (* the page was allocated but can never be installed: give it back
         before surfacing the overload *)
      latch_release t sh;
      Page_store.free t.store page;
      raise e
  in
  t.frames.(frame) <- page;
  Hashtbl.replace sh.table page frame;
  t.ref_bit.(frame) <- true;
  t.pin.(frame) <- 1;
  t.dirty.(frame) <- true;
  latch_release t sh;
  (match t.wal with
  | Some h ->
      h.on_page_alloc page;
      h.on_page_dirty page
  | None -> ());
  Sim.busy_bufcall t.sim;
  (page, region_of_frame t frame page)

(* Release a page back to the store.  It must be unpinned.  The pool's
   stale state (frame, dirty bit, in-flight entry) is invalidated by the
   [Page_store] free observer registered at [create]. *)
let free_page t page =
  (match frame_of_page t page with
  | Some frame when t.pin.(frame) > 0 ->
      invalid_arg "Buffer_pool.free_page: pinned"
  | _ -> ());
  (match t.wal with Some h -> h.on_page_free page | None -> ());
  Page_store.free t.store page

(* Evict every unpinned page (writing back dirty ones): a cold pool, as in
   the paper's search-I/O experiments.  Raises [Pool_exhausted] via victim
   search only if pages remain pinned. *)
let clear t =
  let page_size = Page_store.page_size t.store in
  for f = 0 to t.capacity - 1 do
    match t.frames.(f) with
    | p when p = Page_store.nil -> ()
    | p ->
        if t.pin.(f) > 0 then invalid_arg "Buffer_pool.clear: pinned page";
        let sh = shard_of t p in
        Hashtbl.remove sh.table p;
        Hashtbl.remove sh.inflight p;
        if t.dirty.(f) then begin
          t.dirty.(f) <- false;
          write_back t p
        end;
        t.frames.(f) <- Page_store.nil;
        t.ref_bit.(f) <- false;
        Cache.invalidate_range t.sim.Sim.cache (f * page_size) page_size
  done;
  Array.fill t.prefetcher_free 0 (Array.length t.prefetcher_free) 0

(* Write back every dirty page without evicting anything: the data half of
   a sharp checkpoint. *)
let flush_dirty t =
  for f = 0 to t.capacity - 1 do
    match t.frames.(f) with
    | p when p = Page_store.nil -> ()
    | p ->
        if t.dirty.(f) then begin
          t.dirty.(f) <- false;
          write_back t p
        end
  done

(* Write back ONE dirty page if it is resident and dirty; returns whether
   a write happened.  The unit of work for a paced (fuzzy) checkpoint,
   which hardens pages a few at a time between client operations instead
   of draining the whole pool in one stall. *)
let write_back_page t page =
  match frame_of_page t page with
  | Some f when t.dirty.(f) ->
      t.dirty.(f) <- false;
      write_back t page;
      true
  | _ -> false

let is_dirty t page =
  match frame_of_page t page with Some f -> t.dirty.(f) | None -> false

(* Currently dirty resident pages: a fuzzy checkpoint's initial worklist. *)
let dirty_pages t =
  let acc = ref [] in
  for f = t.capacity - 1 downto 0 do
    if t.dirty.(f) && t.frames.(f) <> Page_store.nil then
      acc := t.frames.(f) :: !acc
  done;
  !acc

(* Crash semantics: discard every frame WITHOUT writing anything back and
   reset pins, in-flight reads and prefetcher state.  Dirty page contents
   that never reached disk die here — exactly what recovery must repair. *)
let drop_all t =
  let page_size = Page_store.page_size t.store in
  for f = 0 to t.capacity - 1 do
    (match t.frames.(f) with
    | p when p = Page_store.nil -> ()
    | p ->
        Hashtbl.remove (shard_of t p).table p;
        Cache.invalidate_range t.sim.Sim.cache (f * page_size) page_size);
    t.frames.(f) <- Page_store.nil;
    t.ref_bit.(f) <- false;
    t.dirty.(f) <- false;
    t.pin.(f) <- 0
  done;
  Array.iter (fun sh -> Hashtbl.reset sh.inflight) t.shards;
  Array.fill t.prefetcher_free 0 (Array.length t.prefetcher_free) 0

let resident_pages t =
  Array.fold_left (fun a sh -> a + Hashtbl.length sh.table) 0 t.shards
