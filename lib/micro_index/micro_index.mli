(** Micro-indexing (Lomet [16]; paper, Figure 4): a disk-optimized
    B+-Tree page whose key array is divided into cache-line-aligned
    sub-arrays, with a small in-page micro-index holding the first key of
    every sub-array.  A search prefetches and searches the micro-index to
    pick a sub-array, then prefetches and binary-searches only that
    sub-array — good search locality.  Updates still shift the big
    arrays (and refresh the micro-index), which is why the paper finds
    its update performance as poor as the plain B+-Tree's.

    Tree mechanics come from {!Fpb_btree_common.Paged_tree}; this module
    only supplies the page layout and the two-phase search.  Sub-array
    size and fan-out come from {!Fpb_btree_common.Tuning} (Table 2). *)

(** The full common index interface: [create], [bulkload], [search],
    [search_batch] (sorted level-wise waves from
    {!Fpb_btree_common.Paged_tree}, each page searched through its
    micro-index once per probe but fetched once per wave; a page shared
    by [k] probes counts one [level_accesses] access plus [k-1]
    [batch.dup_probes] — see [docs/BATCHING.md]), [insert], [delete],
    [range_scan], sizes, telemetry ([level_accesses] / [set_trace]) and
    uncharged checkers. *)
include Fpb_btree_common.Index_sig.S

(** Reverse (descending) scan of [start_key, end_key] entries, following
    the backward leaf chain; returns the number of entries visited. *)
val range_scan_rev :
  t -> ?prefetch:bool -> start_key:int -> end_key:int -> (int -> int -> unit) -> int

(** Pages of leaves prefetched ahead during jump-pointer range scans
    (default 16). *)
val set_io_prefetch_distance : t -> int -> unit
