(** Physiological write-ahead log with redo-only (ARIES-lite) recovery
    over striped, mirrored, checksummed log disks.

    The log attaches to a {!Fpb_storage.Buffer_pool} through its
    [wal_hooks] and maintains, alongside the in-memory page store, a
    model of what is actually durable: a byte stream of LSN-stamped log
    records and a per-page "durable image" (what the page's disk sectors
    would hold after a power cut).  Everything is driven by the same
    simulated clock as the rest of the system, so log forces and
    recovery replay are charged as real (sequential) disk I/O.

    {2 Protocol}

    - The caller brackets every index operation with a {!commit}: the
      pages the operation dirtied are diffed against their last-logged
      shadow copies and emitted as physiological records — a full page
      {e image} on first touch after a checkpoint (this is what repairs
      torn pages), a byte-range {e delta} afterwards — followed by a
      commit record carrying the operation number and the index's root
      metadata.
    - Records are sealed into a pending list; a flush places each record
      round-robin (by seal order) on one of [log_stripes] stripes,
      appends it to every mirror of that stripe, and waits for the
      slowest log disk — stripes absorb their spans in parallel, so
      striping buys log bandwidth (group commit batches flushes until
      [group_commit_bytes] accumulate).
    - Eviction write-backs run [before_page_write], which forces the log
      first (WAL-before-data).  A write-back of a page with uncommitted
      changes does {e not} update its durable image (a redo-only log
      cannot undo), at the cost of re-writing the page at the next
      checkpoint.
    - {!checkpoint} forces the log, writes back all dirty pages,
      refreshes stale durable images, and appends a checkpoint record
      from which the next recovery starts.

    {2 Surviving log-media failure}

    The durable stream lives on [log_stripes] (S >= 1) stripes of
    [log_mirrors] (K >= 1) log disks each — S*K disks in all, where
    stripe [s] mirror [k] is disk [s*K + k] — and every record is framed
    with its own CRC-32.  The K mirrors of a stripe hold
    position-identical byte streams.  Log disks are {e not} exempt from
    media faults: arm a {!Fpb_storage.Fault.profile} on them with
    {!set_log_faults} (or damage one disk's bytes deterministically with
    {!inject_mirror_damage}).  A scan — recovery replay or
    {!repair_page} — reads log pages through the fault schedule; a
    record that is torn, rotted, or on a lost sector of one mirror falls
    back to the next mirror of its stripe ([wal.mirror.fallbacks]) and
    heals the damaged span on the failed mirror in passing
    ([wal.mirror.repairs]).  A record unreadable on {e every} mirror is
    {e detected}, never silently served: the scan stops there, the
    recovery reports it in [damaged_records], and {!repair_page} refuses
    to serve from a log with holes in it.

    Striping adds one more detection layer: LSNs are allocated in seal
    order, one per record, so the per-stripe scans merge into a sequence
    that must be LSN-consecutive.  A gap with records beyond it proves a
    stripe silently lost committed records (a genuine crash cut only
    truncates the tail of the seal order); the scan stops at the gap and
    reports damage.

    Recovery ({!recover}) discards all volatile state, resets every page
    to its durable image, truncates the durable log at the last complete
    commit/checkpoint record (a torn tail parses as garbage and stops
    the scan), and replays records whose LSN is newer than the page's
    durable image.  Redone pages are written back in (disk, physical)
    order when batched redo is on (the default, see {!set_batched_redo}),
    so adjacent pages go out as sequential I/O.  The returned metadata
    reconstructs index handles.

    Crash injection: {!set_crash_at_byte} cuts the durable log mid-flush
    at an exact byte offset and raises {!Crashed};
    {!tear_last_writeback} additionally corrupts the second half of the
    most recently written-back page, simulating a torn sector write. *)

(** Raised by any logging entry point once the simulated machine has
    crashed — by the flush that crossed the armed byte boundary, and by
    every call after {!crash_now} — until {!recover} runs. *)
exception Crashed

type record =
  | Image of { lsn : int; page : int; img : Bytes.t }
  | Delta of { lsn : int; page : int; off : int; bytes : Bytes.t }
  | Commit of { lsn : int; op : int; meta : int list }
  | Checkpoint of { lsn : int; op : int; meta : int list }
      (** [op] is the last committed operation number, so a recovery
          that replays no commit records still reports it. *)
  | Alloc of { lsn : int; page : int }
      (** page allocation, sealed at event time; recovery replays
          committed Alloc/Free records over the checkpoint's allocator
          snapshot to restore the committed allocation map *)
  | Free of { lsn : int; page : int }

(** On-disk record framing: [length | body | CRC-32], all little-endian
    32-bit; the checksum is {!Fpb_storage.Checksum} (CRC-32/IEEE) over
    the body.  A record that fails length or checksum validation marks
    the end of the readable log on that mirror. *)
module Codec : sig
  val encode : record -> string

  (** [decode b pos] parses the framed record at [pos] of the stream
      held in [b] (the stream occupies bytes [0, len), defaulting to all
      of [b]); [None] if the bytes are truncated or corrupt.  Returns
      the record and the position just past it. *)
  val decode : ?len:int -> Bytes.t -> int -> (record * int) option
end

type t

(** One sealed record in the durable byte stream: its end offset, its
    framed size (so [end_off - size] is where it starts), and its kind —
    the crash controller enumerates injection points from these. *)
type boundary = {
  end_off : int;
  size : int;
  kind : [ `Image | `Delta | `Commit | `Checkpoint | `Alloc | `Free ];
}

(** Deterministic damage to one log disk's durable bytes (lengths never
    change; contents rot); offsets are relative to that disk's own
    stripe stream.  [Torn_tail n] zeroes the last [n] bytes; [Zero_span]
    zeroes an interior span (e.g. one sector of a log page); [Flip]
    flips one bit. *)
type damage =
  | Torn_tail of int
  | Zero_span of { off : int; len : int }
  | Flip of { off : int; bit : int }

(** What a recovery pass established. *)
type recovery = {
  committed_ops : int;  (** highest operation number durably committed *)
  meta : int list;  (** index metadata as of that operation *)
  scanned_records : int;  (** records parsed from the last checkpoint *)
  redo_records : int;  (** image/delta records actually re-applied *)
  redo_pages : int;  (** distinct pages touched by redo *)
  free_pages : int;  (** pages on the restored (committed) free list *)
  torn_tail_bytes : int;  (** unreadable bytes at the durable tail *)
  damaged_records : int;
      (** stream positions unreadable on {e every} mirror with readable
          content known to lie beyond — committed records may be lost,
          and the loss is reported rather than silently absorbed *)
  recovery_ns : int;  (** simulated time the pass took *)
}

(** [attach pool ~meta] flushes the pool, snapshots every existing page
    as its durable image (and the allocator state as the recovery base),
    installs the WAL hooks and the media-repair hook
    ({!Fpb_storage.Buffer_pool.set_repair}), and seals an initial
    checkpoint carrying [meta].  [group_commit_bytes = 0] (default)
    forces the log on every commit; [> 0] lets commits accumulate until
    that many buffered bytes before flushing (group commit — commits in
    the buffer are lost by a crash).  [log_base_images] additionally
    seals a full image record for every live page before the initial
    checkpoint, so media repair of pre-existing (bulkloaded) pages can
    replay from the log itself rather than the snapshot.
    [log_mirrors] (default 1) is the number of mirrored log disks per
    stripe; [log_stripes] (default 1) is the number of stripes sealed
    records are round-robined across.  [first_lsn] (default 1) starts
    the LSN sequence higher — a promoted replica continues its shipped
    history's LSN space so a rejoining old primary's divergent suffix is
    detectable by (LSN, CRC) comparison. *)
val attach :
  ?group_commit_bytes:int ->
  ?log_base_images:bool ->
  ?log_mirrors:int ->
  ?log_stripes:int ->
  ?first_lsn:int ->
  meta:int list ->
  Fpb_storage.Buffer_pool.t ->
  t

(** Remove the hooks (including the repair hook); the pool reverts to
    non-durable operation. *)
val detach : t -> unit

(** Number of mirrored log disks per stripe. *)
val log_mirrors : t -> int

(** Number of log stripes. *)
val log_stripes : t -> int

(** The log-disk farm (disk index = stripe * K + mirror), for inspecting
    its [disk.*] counters. *)
val log_disks : t -> Fpb_storage.Disk_model.t

(** Arm (or with [None] disarm) the seeded fault schedule on one log
    disk (flattened index stripe * K + mirror), or on all of them
    without [mirror]: the log is subject to the same media failures as
    the data disks. *)
val set_log_faults : t -> ?mirror:int -> Fpb_storage.Fault.profile option -> unit

(** Deterministically damage one log disk's durable bytes (tests and the
    chaos harness's detection legs); [mirror] is the flattened disk
    index stripe * K + mirror. *)
val inject_mirror_damage : t -> mirror:int -> damage -> unit

(** Rebuild one page's committed bytes after media damage: replay the
    page's last full image record plus following deltas from the
    committed durable stream, falling back to its durable image when it
    was never logged.  With [bad_sectors] naming the damaged 512-byte
    sectors (from {!Fpb_storage.Page_store.verify}) and the page's
    stamped header LSN matching the replayed state, only those sector
    spans are patched; otherwise the whole page is rebuilt.  The result
    is written back to the data disk (remapping any latent sector) and
    freshly stamped.  Refuses pages with uncommitted changes, pages with
    no durable coverage, and any repair whose log scan hit records
    unreadable on every mirror.  Installed on the pool as its repair
    hook by {!attach}. *)
val repair_page :
  t -> ?bad_sectors:int list -> int -> [ `Repaired | `Unrecoverable of string ]

(** Seal the current operation: log the pages dirtied since the last
    commit and a commit record numbered [op] carrying [meta]. *)
val commit : t -> op:int -> meta:int list -> unit

(** Sharp checkpoint: force the log, write back all dirty pages, refresh
    stale durable images, and seal a checkpoint record carrying [meta].
    Must not be called mid-operation (with undirtied commits pending). *)
val checkpoint : t -> meta:int list -> unit

(** Force all sealed records to their stripes' durable streams (every
    mirror of each stripe), waiting for the slowest log disk.  No-op on
    an empty pending list. *)
val flush : t -> unit

(** {2 Shadow-paging (fuzzy checkpoint) support}

    A shadow-paging layer ({!Fpb_snapshot.Shadow}) performs the data half
    of a checkpoint itself — paced write-back to copy-on-write blocks,
    then an atomic superblock flip — and uses these hooks to coordinate
    with the log. *)

(** Per-stripe sealed extents right now: the "cut" a fuzzy checkpoint
    captures when it begins.  A log scan from these marks sees exactly
    the records sealed after the capture. *)
val current_marks : t -> int array

(** Last committed operation number. *)
val last_committed_op : t -> int

(** The page's durable image and the LSN it reflects (a private copy);
    [None] if it was never written back. *)
val durable_image : t -> int -> (Bytes.t * int) option

(** LSN of the page's durable image (0 if none). *)
val page_durable_lsn : t -> int -> int

(** The page's newest {e committed} content and its LSN (a private copy):
    the last-logged shadow if the page was ever logged, else its durable
    image.  The shadow layer freezes these at flip time for pages whose
    durable images lag the flip, keeping snapshots operation-consistent. *)
val committed_image : t -> int -> (Bytes.t * int) option

(** Whether an operation is in flight (pages touched since the last
    commit).  Checkpoint cuts must not be taken mid-operation. *)
val in_operation : t -> bool

(** Bring one page's durable image up to its newest {e committed} state
    (pool write-back if dirty, direct image refresh if a deferred
    write-back left it stale): the unit of work of a paced fuzzy
    checkpoint.  Returns [false] — retry later — while the page carries
    uncommitted in-flight changes. *)
val harden_page : t -> int -> bool

(** Pages whose durable image lags their newest logged state: the fuzzy
    checkpoint's worklist beyond the pool's dirty frames. *)
val stale_pages : t -> int list

(** Seal and force a checkpoint record for a checkpoint whose data half
    was performed outside the WAL, moving the recovery start point to
    the {e cut} captured when that checkpoint began: [marks] is the
    cut's {!current_marks}, [alloc] its (total_pages, free_list).
    Replay covers everything after the cut, so images hardened by the
    external pass need only reflect commits up to it. *)
val external_checkpoint :
  t -> marks:int array -> alloc:int * int list -> meta:int list -> unit

(** What a shadow-paging layer hands {!recover}: page images reachable
    from the persisted indirection table ([load_page], [None] = not in
    the checkpointed generation), the cut's per-stripe log marks, and
    the allocator state at that cut. *)
type base = {
  load_page : int -> (Bytes.t * int) option;
  base_marks : int array;
  base_alloc : int * int list;
}

(** Install (or clear) the recovery base.  While set, {!recover} reboots
    page contents, its log-scan start point and its allocator base from
    it instead of the WAL's own durable images. *)
val set_recovery_base : t -> base option -> unit

(** Install (or clear) the pre-log observer, called once per page per
    commit {e before} the page's logging state advances, with the page's
    newest committed content and its LSN ([None] if the page has neither
    been logged nor written back).  The bytes are not copied — the
    observer must copy what it keeps.  The shadow layer uses this to
    freeze pre-update content into checkpoint generations lacking it. *)
val set_pre_log_observer :
  t -> (int -> (Bytes.t * int) option -> unit) option -> unit

(** Sharp-checkpoint writer-stall distribution
    ([wal.checkpoint.stall_ns]): simulated time each {!checkpoint} call
    blocked its caller (log force + whole-pool write-back + data
    durability barrier). *)
val checkpoint_stall : t -> Fpb_obs.Histogram.t

(** {2 Log shipping and retention}

    Hooks a replication layer ({!Fpb_replica}) builds on: every record
    that becomes durable is observable, commits can block on a
    replication barrier, and log space below a durable checkpoint's cut
    can be released once replicas no longer need it. *)

(** Install (or clear) the durable-record observer: called once per
    record, in seal order, when a flush makes it fully durable, with the
    record's LSN and framed bytes (the [[len|body|crc]] frame — exactly
    what ships to a replica).  Records cut by an armed crash boundary
    are never reported.  The simulated clock stands at the flush
    completion during the calls. *)
val set_durable_observer : t -> (int -> string -> unit) option -> unit

(** Install (or clear) the commit barrier: called by {!commit} after its
    (conditional) flush and before the latency histogram records.  A
    semi-sync replication layer advances the simulated clock here until
    enough replica acks cover the commit's LSN, so [wal.commit_latency]
    shows the true cost of the durability mode. *)
val set_commit_barrier : t -> (op:int -> lsn:int -> unit) option -> unit

(** Newest allocated LSN (0 before the first record). *)
val last_lsn : t -> int

(** A record's LSN. *)
val record_lsn : record -> int

(** [truncate_to t ~marks] releases log space below the per-stripe
    offsets [marks] (a durable checkpoint's cut, e.g. the oldest shadow
    generation still retained): every mirror's bytes between the current
    retention floor and the mark are zeroed and the floor advances.
    Clamped to the recovery start point, so a scan from the last
    checkpoint is never affected.  Counts physical bytes released
    (across mirrors) into [wal.log.truncated_bytes] and returns the
    bytes released by this call. *)
val truncate_to : t -> marks:int array -> int

(** Per-stripe retention floor (offsets below it are released). *)
val retention_floor : t -> int array

(** Every readable durable record above the retention floor, including
    the uncommitted tail; charge-free.  A rejoining old primary compares
    these by (LSN, CRC) against the new history to find the fork. *)
val durable_records : t -> record list

(** Total bytes ever sealed / durably flushed. *)
val log_bytes : t -> int

val durable_bytes : t -> int

(** Every record sealed so far, oldest first (crash-point enumeration
    runs over a completed golden run, so this is the full stream). *)
val layout : t -> boundary list

(** Arm ([Some b]) or disarm ([None]) the crash trigger: the flush whose
    durable extent would cross {e logical} byte offset [b] (an offset in
    the sealed stream, as reported by {!layout}) cuts the durable log
    exactly there — records wholly before [b] reach their stripes, the
    record straddling [b] keeps only its prefix — and raises
    {!Crashed}. *)
val set_crash_at_byte : t -> int option -> unit

(** Power cut right now: sealed-but-unflushed records are lost. *)
val crash_now : t -> unit

val is_crashed : t -> bool

(** After a crash, corrupt the second half of the durable image of the
    page most recently written back (torn sector write) and mark it so
    redo re-applies unconditionally.  Returns [false] when there is no
    such page or when the durable log cannot repair it (its full image
    predates the recovery start point, i.e. the write was already
    fsynced under a completed checkpoint). *)
val tear_last_writeback : t -> bool

(** Batched redo (default on): recovery sorts redo write-backs by
    (disk, physical page) so adjacent pages go out sequentially, instead
    of issuing them in replay-table order.  Off reproduces the unsorted
    baseline for comparison. *)
val set_batched_redo : t -> bool -> unit

(** Redo-write coalescing (default on): recovery merges physically
    adjacent redo write-backs on the same disk into one multi-page
    request ({!Fpb_storage.Disk_model.write_run}), paying positioning
    and per-request overhead once per run instead of once per page.
    Off reproduces the one-request-per-page baseline. *)
val set_redo_coalescing : t -> bool -> unit

(** Bring the system back from a crash: drop the pool, reset pages to
    durable images, replay the log from the last durable checkpoint
    (reading log pages through the fault schedule with mirror fallback),
    and restart the log with a fresh checkpoint.  Charges log reads and
    page write-backs as simulated I/O. *)
val recover : t -> recovery

(** Post-recovery structural check of the durability layer itself: every
    page's memory bytes must equal its durable image (or be all-zero if
    it never had one).  Only meaningful immediately after {!recover}. *)
val verify_images : t -> (unit, string) result

(** Commit latency distribution ([wal.commit_latency_ns]): simulated
    time from commit start to log durability. *)
val commit_latency : t -> Fpb_obs.Histogram.t

(** Current [wal.*] counter values as [(name, value)] pairs. *)
val kv : t -> (string * int) list

val reset_stats : t -> unit
