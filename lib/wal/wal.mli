(** Physiological write-ahead log with redo-only (ARIES-lite) recovery.

    The log attaches to a {!Fpb_storage.Buffer_pool} through its
    [wal_hooks] and maintains, alongside the in-memory page store, a
    model of what is actually durable: a byte stream of LSN-stamped log
    records and a per-page "durable image" (what the page's disk sectors
    would hold after a power cut).  Everything is driven by the same
    simulated clock as the rest of the system, so log forces and
    recovery replay are charged as real (sequential) disk I/O.

    {2 Protocol}

    - The caller brackets every index operation with a {!commit}: the
      pages the operation dirtied are diffed against their last-logged
      shadow copies and emitted as physiological records — a full page
      {e image} on first touch after a checkpoint (this is what repairs
      torn pages), a byte-range {e delta} afterwards — followed by a
      commit record carrying the operation number and the index's root
      metadata.
    - Records are sealed into a log buffer; a flush appends them to the
      durable stream and waits for the log disk (group commit batches
      flushes until [group_commit_bytes] accumulate).
    - Eviction write-backs run [before_page_write], which forces the log
      first (WAL-before-data).  A write-back of a page with uncommitted
      changes does {e not} update its durable image (a redo-only log
      cannot undo), at the cost of re-writing the page at the next
      checkpoint.
    - {!checkpoint} forces the log, writes back all dirty pages,
      refreshes stale durable images, and appends a checkpoint record
      from which the next recovery starts.

    Recovery ({!recover}) discards all volatile state, resets every page
    to its durable image, truncates the durable log at the last complete
    commit/checkpoint record (a torn tail parses as garbage and stops
    the scan), and replays records whose LSN is newer than the page's
    durable image.  The returned metadata reconstructs index handles.

    Crash injection: {!set_crash_at_byte} cuts the durable log mid-flush
    at an exact byte offset and raises {!Crashed};
    {!tear_last_writeback} additionally corrupts the second half of the
    most recently written-back page, simulating a torn sector write. *)

(** Raised by any logging entry point once the simulated machine has
    crashed — by the flush that crossed the armed byte boundary, and by
    every call after {!crash_now} — until {!recover} runs. *)
exception Crashed

type record =
  | Image of { lsn : int; page : int; img : Bytes.t }
  | Delta of { lsn : int; page : int; off : int; bytes : Bytes.t }
  | Commit of { lsn : int; op : int; meta : int list }
  | Checkpoint of { lsn : int; op : int; meta : int list }
      (** [op] is the last committed operation number, so a recovery
          that replays no commit records still reports it. *)
  | Alloc of { lsn : int; page : int }
      (** page allocation, sealed at event time; recovery replays
          committed Alloc/Free records over the checkpoint's allocator
          snapshot to restore the committed allocation map *)
  | Free of { lsn : int; page : int }

(** On-disk record framing: [length | body | FNV-1a-32 checksum], all
    little-endian 32-bit.  A record that fails length or checksum
    validation marks the end of the readable log (torn tail). *)
module Codec : sig
  val encode : record -> string

  (** [decode s pos] parses the framed record at [pos]; [None] if the
      bytes are truncated or corrupt.  Returns the record and the
      position just past it. *)
  val decode : string -> int -> (record * int) option
end

type t

(** One sealed record in the durable byte stream: its end offset, its
    framed size (so [end_off - size] is where it starts), and its kind —
    the crash controller enumerates injection points from these. *)
type boundary = {
  end_off : int;
  size : int;
  kind : [ `Image | `Delta | `Commit | `Checkpoint | `Alloc | `Free ];
}

(** What a recovery pass established. *)
type recovery = {
  committed_ops : int;  (** highest operation number durably committed *)
  meta : int list;  (** index metadata as of that operation *)
  scanned_records : int;  (** records parsed from the last checkpoint *)
  redo_records : int;  (** image/delta records actually re-applied *)
  redo_pages : int;  (** distinct pages touched by redo *)
  free_pages : int;  (** pages on the restored (committed) free list *)
  torn_tail_bytes : int;  (** unparseable bytes at the durable tail *)
  recovery_ns : int;  (** simulated time the pass took *)
}

(** [attach pool ~meta] flushes the pool, snapshots every existing page
    as its durable image (and the allocator state as the recovery base),
    installs the WAL hooks and the media-repair hook
    ({!Fpb_storage.Buffer_pool.set_repair}), and seals an initial
    checkpoint carrying [meta].  [group_commit_bytes = 0] (default)
    forces the log on every commit; [> 0] lets commits accumulate until
    that many buffered bytes before flushing (group commit — commits in
    the buffer are lost by a crash).  [log_base_images] additionally
    seals a full image record for every live page before the initial
    checkpoint, so media repair of pre-existing (bulkloaded) pages can
    replay from the log itself rather than the snapshot. *)
val attach :
  ?group_commit_bytes:int ->
  ?log_base_images:bool ->
  meta:int list ->
  Fpb_storage.Buffer_pool.t ->
  t

(** Remove the hooks (including the repair hook); the pool reverts to
    non-durable operation. *)
val detach : t -> unit

(** Rebuild one page's committed bytes after media damage: replay the
    page's last full image record plus following deltas from the
    committed durable stream, falling back to its durable image when it
    was never logged.  The rebuilt bytes are written back to the data
    disk (remapping any latent sector) and freshly stamped.  Refuses
    pages with uncommitted changes and pages with no durable coverage.
    Installed on the pool as its repair hook by {!attach}. *)
val repair_page : t -> int -> [ `Repaired | `Unrecoverable of string ]

(** Seal the current operation: log the pages dirtied since the last
    commit and a commit record numbered [op] carrying [meta]. *)
val commit : t -> op:int -> meta:int list -> unit

(** Sharp checkpoint: force the log, write back all dirty pages, refresh
    stale durable images, and seal a checkpoint record carrying [meta].
    Must not be called mid-operation (with undirtied commits pending). *)
val checkpoint : t -> meta:int list -> unit

(** Force all sealed records to the durable stream, waiting for the log
    disk.  No-op on an empty buffer. *)
val flush : t -> unit

(** Total bytes ever sealed / durably flushed. *)
val log_bytes : t -> int

val durable_bytes : t -> int

(** Every record sealed so far, oldest first (crash-point enumeration
    runs over a completed golden run, so this is the full stream). *)
val layout : t -> boundary list

(** Arm ([Some b]) or disarm ([None]) the crash trigger: the flush whose
    durable extent would cross byte offset [b] truncates the durable
    stream exactly there and raises {!Crashed}. *)
val set_crash_at_byte : t -> int option -> unit

(** Power cut right now: sealed-but-unflushed records are lost. *)
val crash_now : t -> unit

val is_crashed : t -> bool

(** After a crash, corrupt the second half of the durable image of the
    page most recently written back (torn sector write) and mark it so
    redo re-applies unconditionally.  Returns [false] when there is no
    such page or when the durable log cannot repair it (its full image
    predates the recovery start point, i.e. the write was already
    fsynced under a completed checkpoint). *)
val tear_last_writeback : t -> bool

(** Bring the system back from a crash: drop the pool, reset pages to
    durable images, replay the log from the last durable checkpoint, and
    restart the log with a fresh checkpoint.  Charges log reads and
    page write-backs as simulated I/O. *)
val recover : t -> recovery

(** Post-recovery structural check of the durability layer itself: every
    page's memory bytes must equal its durable image (or be all-zero if
    it never had one).  Only meaningful immediately after {!recover}. *)
val verify_images : t -> (unit, string) result

(** Commit latency distribution ([wal.commit_latency_ns]): simulated
    time from commit start to log durability. *)
val commit_latency : t -> Fpb_obs.Histogram.t

(** Current [wal.*] counter values as [(name, value)] pairs. *)
val kv : t -> (string * int) list

val reset_stats : t -> unit
