(* Crash-point enumeration over a golden run's log layout. *)

type point = { at_byte : int; tear : bool; label : string }

let kind_name = function
  | `Image -> "image"
  | `Delta -> "delta"
  | `Commit -> "commit"
  | `Checkpoint -> "ckpt"
  | `Alloc -> "alloc"
  | `Free -> "free"

(* Thin [l] to at most [n] elements, evenly, keeping first and last. *)
let thin n l =
  let len = List.length l in
  if len <= n then l
  else
    let arr = Array.of_list l in
    List.init n (fun i -> arr.(i * (len - 1) / (n - 1)))

let points ?(mid_record = true) ?(tear_every = 5) ?max_points layout =
  let pts =
    List.concat_map
      (fun (b : Wal.boundary) ->
        let k = kind_name b.Wal.kind in
        let at_end =
          { at_byte = b.Wal.end_off; tear = false;
            label = Printf.sprintf "%s-end@%d" k b.Wal.end_off }
        in
        if mid_record && b.Wal.size > 2 then
          let mid = b.Wal.end_off - (b.Wal.size / 2) in
          [ { at_byte = mid; tear = false;
              label = Printf.sprintf "%s-mid@%d" k mid };
            at_end ]
        else [ at_end ])
      layout
  in
  let pts = match max_points with Some n when n > 1 -> thin n pts | _ -> pts in
  if tear_every <= 0 then pts
  else
    List.mapi
      (fun i p ->
        if (i + 1) mod tear_every = 0 then
          { p with tear = true; label = p.label ^ "+tear" }
        else p)
      pts
