(** Crash-point controller for the fault-injection harness.

    A golden (crash-free) run of a deterministic scenario yields the log
    {!Wal.layout}; this module turns it into a set of injection points.
    The harness then re-runs the scenario once per point with
    {!Wal.set_crash_at_byte} armed: cutting at a record's end offset
    loses everything after it cleanly, cutting mid-record leaves a torn
    log tail that recovery must detect and discard, and points flagged
    [tear] additionally corrupt the last written-back data page
    ({!Wal.tear_last_writeback}). *)

type point = {
  at_byte : int;  (** durable log truncated exactly here *)
  tear : bool;  (** also tear the last data-page write-back *)
  label : string;  (** e.g. ["commit-end@1234"], ["image-mid@88+tear"] *)
}

(** [points layout] enumerates injection points: one at every record
    boundary and (with [mid_record], default on) one in the middle of
    every record.  Every [tear_every]-th point (default 5; 0 disables)
    is flagged [tear].  [max_points] (default unlimited) thins the list
    evenly while keeping first and last. *)
val points :
  ?mid_record:bool ->
  ?tear_every:int ->
  ?max_points:int ->
  Wal.boundary list ->
  point list
