(* Physiological write-ahead log with redo-only (ARIES-lite) recovery.

   The log sits between the buffer pool and the page store and maintains
   the fiction of a durable disk: a byte stream of framed log records plus
   a per-page durable image (what the page's sectors would hold after a
   power cut).  The in-memory page store always holds the current bytes;
   durability is exactly {durable stream + durable images}, and recovery
   reconstructs the committed prefix from those two alone.

   Invariant that makes redo-only recovery sound: a page's durable image
   is only ever updated from state covered by a *successful* log flush,
   and sealed log content always consists of whole committed operations
   (pages are diffed and sealed at commit time, never mid-operation).  So
   no durable image can run ahead of the last durable commit record, and
   nothing ever needs undoing.  The price is the "deferred write-back":
   evicting a page with uncommitted changes writes the *store* bytes to
   the simulated disk but leaves the durable image stale; the next
   checkpoint re-writes such pages. *)

open Fpb_simmem
open Fpb_storage
module Counter = Fpb_obs.Counter
module Histogram = Fpb_obs.Histogram

exception Crashed

type record =
  | Image of { lsn : int; page : int; img : Bytes.t }
  | Delta of { lsn : int; page : int; off : int; bytes : Bytes.t }
  | Commit of { lsn : int; op : int; meta : int list }
  | Checkpoint of { lsn : int; op : int; meta : int list }
  | Alloc of { lsn : int; page : int }
  | Free of { lsn : int; page : int }

(* -------------------------------------------------------------------- *)
(* Record framing: [len | body | fnv1a32(body)], 32-bit little-endian.  *)

module Codec = struct
  let kind_image = 1
  let kind_delta = 2
  let kind_commit = 3
  let kind_checkpoint = 4
  let kind_alloc = 5
  let kind_free = 6
  let max_body = 1 lsl 24 (* sanity bound when parsing *)

  let fnv1a32 s off len =
    let h = ref 0x811c9dc5 in
    for i = off to off + len - 1 do
      h := (!h lxor Char.code (String.unsafe_get s i)) * 0x01000193;
      h := !h land 0xffffffff
    done;
    !h

  let add_i32 b v = Buffer.add_int32_le b (Int32.of_int v)

  let add_meta b meta =
    add_i32 b (List.length meta);
    List.iter (add_i32 b) meta

  let encode r =
    let body = Buffer.create 64 in
    (match r with
    | Image { lsn; page; img } ->
        Buffer.add_uint8 body kind_image;
        add_i32 body lsn;
        add_i32 body page;
        Buffer.add_bytes body img
    | Delta { lsn; page; off; bytes } ->
        Buffer.add_uint8 body kind_delta;
        add_i32 body lsn;
        add_i32 body page;
        add_i32 body off;
        Buffer.add_bytes body bytes
    | Commit { lsn; op; meta } ->
        Buffer.add_uint8 body kind_commit;
        add_i32 body lsn;
        add_i32 body op;
        add_meta body meta
    | Checkpoint { lsn; op; meta } ->
        Buffer.add_uint8 body kind_checkpoint;
        add_i32 body lsn;
        add_i32 body op;
        add_meta body meta
    | Alloc { lsn; page } ->
        Buffer.add_uint8 body kind_alloc;
        add_i32 body lsn;
        add_i32 body page
    | Free { lsn; page } ->
        Buffer.add_uint8 body kind_free;
        add_i32 body lsn;
        add_i32 body page);
    let body = Buffer.contents body in
    let framed = Buffer.create (String.length body + 8) in
    add_i32 framed (String.length body);
    Buffer.add_string framed body;
    add_i32 framed (fnv1a32 body 0 (String.length body));
    Buffer.contents framed

  let get_i32 s pos = Int32.to_int (String.get_int32_le s pos)

  (* Parse the framed record at [pos]; [None] on a torn or corrupt tail. *)
  let decode s pos =
    let n = String.length s in
    if pos + 4 > n then None
    else
      let len = get_i32 s pos in
      if len < 9 || len > max_body || pos + 4 + len + 4 > n then None
      else
        let body = pos + 4 in
        (* mask: i32 round-trip sign-extends checksums >= 2^31 *)
        let sum = get_i32 s (body + len) land 0xffffffff in
        if sum <> fnv1a32 s body len then None
        else
          let kind = Char.code s.[body] in
          let lsn = get_i32 s (body + 1) in
          let payload = body + 5 in
          let payload_len = len - 5 in
          let meta_at off =
            let count = get_i32 s off in
            if count < 0 || off + 4 + (4 * count) > body + len then None
            else
              Some (List.init count (fun i -> get_i32 s (off + 4 + (4 * i))))
          in
          let next = body + len + 4 in
          match kind with
          | k when k = kind_image ->
              let page = get_i32 s payload in
              let img = Bytes.of_string (String.sub s (payload + 4) (payload_len - 4)) in
              Some (Image { lsn; page; img }, next)
          | k when k = kind_delta ->
              if payload_len < 8 then None
              else
                let page = get_i32 s payload in
                let off = get_i32 s (payload + 4) in
                let bytes =
                  Bytes.of_string (String.sub s (payload + 8) (payload_len - 8))
                in
                Some (Delta { lsn; page; off; bytes }, next)
          | k when k = kind_commit -> (
              let op = get_i32 s payload in
              match meta_at (payload + 4) with
              | Some meta -> Some (Commit { lsn; op; meta }, next)
              | None -> None)
          | k when k = kind_checkpoint -> (
              let op = get_i32 s payload in
              match meta_at (payload + 4) with
              | Some meta -> Some (Checkpoint { lsn; op; meta }, next)
              | None -> None)
          | k when k = kind_alloc ->
              Some (Alloc { lsn; page = get_i32 s payload }, next)
          | k when k = kind_free ->
              Some (Free { lsn; page = get_i32 s payload }, next)
          | _ -> None
end

(* -------------------------------------------------------------------- *)

type boundary = {
  end_off : int;
  size : int;
  kind : [ `Image | `Delta | `Commit | `Checkpoint | `Alloc | `Free ];
}

type recovery = {
  committed_ops : int;
  meta : int list;
  scanned_records : int;
  redo_records : int;
  redo_pages : int;
  free_pages : int;
  torn_tail_bytes : int;
  recovery_ns : int;
}

type stats = {
  records : Counter.t;
  images : Counter.t;
  deltas : Counter.t;
  commits : Counter.t;
  checkpoints : Counter.t;
  allocs : Counter.t;
  frees : Counter.t;
  c_log_bytes : Counter.t;
  flushes : Counter.t;
  flush_wait_ns : Counter.t;
  deferred_writebacks : Counter.t;
  crashes : Counter.t;
  torn_pages : Counter.t;
  recoveries : Counter.t;
  c_redo_records : Counter.t;
  c_redo_pages : Counter.t;
  c_recovery_ns : Counter.t;
}

let make_stats () =
  {
    records = Counter.make "wal.records";
    images = Counter.make "wal.images";
    deltas = Counter.make "wal.deltas";
    commits = Counter.make "wal.commits";
    checkpoints = Counter.make "wal.checkpoints";
    allocs = Counter.make "wal.alloc_records";
    frees = Counter.make "wal.free_records";
    c_log_bytes = Counter.make "wal.log_bytes";
    flushes = Counter.make "wal.flushes";
    flush_wait_ns = Counter.make "wal.flush_wait_ns";
    deferred_writebacks = Counter.make "wal.deferred_writebacks";
    crashes = Counter.make "wal.crashes";
    torn_pages = Counter.make "wal.torn_pages";
    recoveries = Counter.make "wal.recoveries";
    c_redo_records = Counter.make "wal.redo_records";
    c_redo_pages = Counter.make "wal.redo_pages";
    c_recovery_ns = Counter.make "wal.recovery_ns";
  }

let stats_counters s =
  [
    s.records; s.images; s.deltas; s.commits; s.checkpoints; s.allocs;
    s.frees; s.c_log_bytes;
    s.flushes; s.flush_wait_ns; s.deferred_writebacks; s.crashes;
    s.torn_pages; s.recoveries; s.c_redo_records; s.c_redo_pages;
    s.c_recovery_ns;
  ]

type t = {
  pool : Buffer_pool.t;
  store : Page_store.t;
  clock : Clock.t;
  sim : Sim.t;
  data_disks : Disk_model.t;
  log_disk : Disk_model.t;
  page_size : int;
  group_commit_bytes : int;
  (* log stream *)
  buf : Buffer.t;  (* sealed, not yet durable *)
  durable : Buffer.t;  (* the durable byte stream, from offset 0 *)
  mutable sealed_bytes : int;  (* end offset of the sealed stream *)
  mutable next_lsn : int;
  mutable last_op : int;  (* last committed operation number *)
  mutable ckpt_offset : int;  (* start of the last durable checkpoint *)
  mutable boundaries : boundary list;  (* newest first *)
  (* per-page durability state; index = page id *)
  shadow : Bytes.t option Vec.t;  (* last-logged content, for deltas *)
  mem_lsn : int Vec.t;  (* LSN of the page's newest log record *)
  disk_img : Bytes.t option Vec.t;  (* durable image, None = never written *)
  disk_lsn : int Vec.t;  (* LSN the durable image reflects *)
  image_off : int Vec.t;  (* stream offset of the last full image, -1 = none *)
  mutable alloc_snapshot : int * int list;
      (* (total pages, free list) at the last durable checkpoint: the
         base state Alloc/Free record replay advances during recovery *)
  logged_since_ckpt : (int, unit) Hashtbl.t;
  touched : (int, unit) Hashtbl.t;  (* dirtied by the in-flight operation *)
  mutable last_writeback : int;  (* page of the newest image update *)
  (* crash injection *)
  mutable crash_at : int option;
  mutable crashed : bool;
  stats : stats;
  commit_latency : Histogram.t;
}

let ensure t page =
  while Vec.length t.shadow <= page do
    Vec.push t.shadow None;
    Vec.push t.mem_lsn 0;
    Vec.push t.disk_img None;
    Vec.push t.disk_lsn 0;
    Vec.push t.image_off (-1)
  done

let fresh_lsn t =
  let l = t.next_lsn in
  t.next_lsn <- l + 1;
  l

let kind_of = function
  | Image _ -> `Image
  | Delta _ -> `Delta
  | Commit _ -> `Commit
  | Checkpoint _ -> `Checkpoint
  | Alloc _ -> `Alloc
  | Free _ -> `Free

(* Seal a record into the log buffer. *)
let append t r =
  let framed = Codec.encode r in
  Buffer.add_string t.buf framed;
  let size = String.length framed in
  t.sealed_bytes <- t.sealed_bytes + size;
  t.boundaries <-
    { end_off = t.sealed_bytes; size; kind = kind_of r } :: t.boundaries;
  Counter.incr t.stats.records;
  Counter.add t.stats.c_log_bytes size;
  match r with
  | Image _ -> Counter.incr t.stats.images
  | Delta _ -> Counter.incr t.stats.deltas
  | Commit _ -> Counter.incr t.stats.commits
  | Checkpoint _ -> Counter.incr t.stats.checkpoints
  | Alloc _ -> Counter.incr t.stats.allocs
  | Free _ -> Counter.incr t.stats.frees

(* Make the sealed stream durable.  An armed crash boundary inside the
   flushed extent truncates the durable stream exactly there.  On
   success, charge the flush as sequential writes to the dedicated log
   disk and wait for completion (this wait IS the commit latency). *)
let flush t =
  if t.crashed then raise Crashed;
  let n = Buffer.length t.buf in
  if n > 0 then begin
    let data = Buffer.contents t.buf in
    Buffer.clear t.buf;
    let start_off = Buffer.length t.durable in
    let end_off = start_off + n in
    (match t.crash_at with
    | Some b when end_off > b ->
        let keep = max 0 (b - start_off) in
        Buffer.add_substring t.durable data 0 keep;
        t.crashed <- true;
        Counter.incr t.stats.crashes;
        raise Crashed
    | _ -> ());
    Buffer.add_string t.durable data;
    Counter.incr t.stats.flushes;
    let now0 = Clock.now t.clock in
    let completion = ref now0 in
    for phys = start_off / t.page_size to (end_off - 1) / t.page_size do
      completion := Disk_model.write_sync t.log_disk ~disk:0 ~phys ()
    done;
    Clock.advance_to t.clock !completion;
    Counter.add t.stats.flush_wait_ns (!completion - now0)
  end

(* ----------------------------- hooks -------------------------------- *)

let on_page_dirty t page =
  if not t.crashed then begin
    ensure t page;
    Hashtbl.replace t.touched page ()
  end

(* A page id reincarnated by alloc starts a fresh logging history; its
   previous incarnation's durable image stays (it may still back the
   rollback of an uncommitted free + realloc).  The allocation itself is
   logged so recovery can rebuild the committed allocation map — an Alloc
   sealed without its commit record is truncated away with the rest of
   the uncommitted tail. *)
let on_page_alloc t page =
  if not t.crashed then begin
    ensure t page;
    Vec.set t.shadow page None;
    Vec.set t.image_off page (-1);
    Hashtbl.remove t.logged_since_ckpt page;
    Hashtbl.remove t.touched page;
    append t (Alloc { lsn = fresh_lsn t; page })
  end

let on_page_free t page =
  if not t.crashed then begin
    Hashtbl.remove t.touched page;
    append t (Free { lsn = fresh_lsn t; page })
  end

(* LSN of the page's newest logged change; the pool stamps it into the
   page's checksum header on write-back. *)
let page_lsn t page =
  ensure t page;
  Vec.get t.mem_lsn page

(* WAL-before-data: force the log before any page write-back. *)
let before_page_write t _page = if not t.crashed then flush t

(* A write-back updates the durable image — unless the page carries
   uncommitted (not yet sealed) changes, in which case the image is left
   stale rather than exposing bytes a redo-only log could never undo. *)
let on_page_write t page =
  if not t.crashed then begin
    ensure t page;
    if Hashtbl.mem t.touched page then
      Counter.incr t.stats.deferred_writebacks
    else begin
      Vec.set t.disk_img page (Some (Bytes.copy (Page_store.bytes t.store page)));
      Vec.set t.disk_lsn page (Vec.get t.mem_lsn page);
      t.last_writeback <- page
    end
  end

(* ----------------------------- logging ------------------------------ *)

(* Smallest byte span on which two page-sized buffers differ. *)
let diff_span a b =
  let n = Bytes.length a in
  let lo = ref 0 in
  while !lo < n && Bytes.get a !lo = Bytes.get b !lo do
    incr lo
  done;
  if !lo = n then None
  else begin
    let hi = ref (n - 1) in
    while Bytes.get a !hi = Bytes.get b !hi do
      decr hi
    done;
    Some (!lo, !hi - !lo + 1)
  end

(* Log one dirtied page: a full image on first touch since the last
   checkpoint (torn-page repair depends on this), a shadow diff after. *)
let log_page t page =
  let cur = Page_store.bytes t.store page in
  let first = not (Hashtbl.mem t.logged_since_ckpt page) in
  (match (if first then None else Vec.get t.shadow page) with
  | None ->
      let lsn = fresh_lsn t in
      Vec.set t.image_off page t.sealed_bytes;
      append t (Image { lsn; page; img = Bytes.copy cur });
      Vec.set t.shadow page (Some (Bytes.copy cur));
      Vec.set t.mem_lsn page lsn
  | Some sh -> (
      match diff_span sh cur with
      | None -> () (* dirtied but byte-identical: nothing to log *)
      | Some (off, len) ->
          let lsn = fresh_lsn t in
          append t (Delta { lsn; page; off; bytes = Bytes.sub cur off len });
          Bytes.blit cur off sh off len;
          Vec.set t.mem_lsn page lsn));
  Hashtbl.replace t.logged_since_ckpt page ()

let commit t ~op ~meta =
  if t.crashed then raise Crashed;
  let t0 = Clock.now t.clock in
  let pages = Hashtbl.fold (fun p () acc -> p :: acc) t.touched [] in
  List.iter (log_page t) (List.sort compare pages);
  Hashtbl.reset t.touched;
  append t (Commit { lsn = fresh_lsn t; op; meta });
  t.last_op <- op;
  if t.group_commit_bytes = 0 || Buffer.length t.buf >= t.group_commit_bytes
  then flush t;
  Histogram.record t.commit_latency (Clock.now t.clock - t0)

let checkpoint t ~meta =
  if t.crashed then raise Crashed;
  if Hashtbl.length t.touched > 0 then
    invalid_arg "Wal.checkpoint: called mid-operation";
  (* Commits must be durable before any durable image moves forward. *)
  flush t;
  Buffer_pool.flush_dirty t.pool;
  (* Re-write pages whose image a deferred write-back left stale. *)
  Hashtbl.iter
    (fun page () ->
      if Vec.get t.disk_lsn page < Vec.get t.mem_lsn page then begin
        Vec.set t.disk_img page
          (Some (Bytes.copy (Page_store.bytes t.store page)));
        Vec.set t.disk_lsn page (Vec.get t.mem_lsn page);
        let disk, phys = Page_store.location t.store page in
        Disk_model.write t.data_disks ~disk ~phys;
        Page_store.stamp ~lsn:(Vec.get t.mem_lsn page) t.store page
      end)
    t.logged_since_ckpt;
  let ckpt_start = t.sealed_bytes in
  append t (Checkpoint { lsn = fresh_lsn t; op = t.last_op; meta });
  flush t;
  (* Only a durable checkpoint record moves the recovery start point; the
     allocator snapshot moves with it, to the state Alloc/Free replay
     from this checkpoint must start at. *)
  t.ckpt_offset <- ckpt_start;
  t.alloc_snapshot <-
    (Page_store.total_pages t.store, Page_store.free_list t.store);
  Hashtbl.reset t.logged_since_ckpt

(* ------------------------- crash injection -------------------------- *)

let set_crash_at_byte t b = t.crash_at <- b

let crash_now t =
  if not t.crashed then begin
    t.crashed <- true;
    Buffer.clear t.buf; (* sealed-but-unflushed records die with the power *)
    Counter.incr t.stats.crashes
  end

let is_crashed t = t.crashed

(* Parse the durable stream from [from], stopping at a torn record, then
   truncate at the last commit/checkpoint: later records belong to an
   operation that never committed. *)
let scan_committed t ~from =
  let s = Buffer.contents t.durable in
  let n = String.length s in
  let rec scan pos acc =
    if pos >= n then (List.rev acc, 0)
    else
      match Codec.decode s pos with
      | None -> (List.rev acc, n - pos)
      | Some (r, next) -> scan next (r :: acc)
  in
  let records, torn = scan from [] in
  let keep = ref 0 in
  List.iteri
    (fun i r ->
      match r with Commit _ | Checkpoint _ -> keep := i + 1 | _ -> ())
    records;
  (List.filteri (fun i _ -> i < !keep) records, List.length records, torn)

let parse_durable t = scan_committed t ~from:t.ckpt_offset

(* ------------------------------ repair ------------------------------- *)

(* Charge a sequential read of the durable stream from byte [from] to its
   end against the log disk, waiting for completion. *)
let charge_log_scan t ~from =
  let stop = Buffer.length t.durable in
  if stop > from then begin
    let completion = ref (Clock.now t.clock) in
    for phys = from / t.page_size to (stop - 1) / t.page_size do
      completion := Disk_model.read t.log_disk ~disk:0 ~phys ()
    done;
    Clock.advance_to t.clock !completion
  end

(* Rebuild one page's committed bytes after media damage: replay the
   page's last full image record and the deltas that follow it from the
   committed durable stream (with [log_base_images], every bulkloaded
   page has one); a page never logged falls back to its durable image
   from the attach/checkpoint snapshot — the model's equivalent of the
   last full-page backup.  The rebuilt bytes are written back to the
   data disk (which remaps any latent sector) and freshly stamped.

   Refuses pages carrying uncommitted changes: the bytes the caller lost
   were never logged, and serving their committed ancestor silently
   would corrupt the operation in flight. *)
let repair_page t page =
  if t.crashed then `Unrecoverable "machine crashed"
  else if Hashtbl.mem t.touched page then
    `Unrecoverable "page has uncommitted changes"
  else begin
    ensure t page;
    (* Committed records may still sit in the group-commit buffer; a
       repair source must be durable. *)
    flush t;
    let from = Vec.get t.image_off page in
    let buf = ref None and lsn = ref 0 in
    (match Vec.get t.disk_img page with
    | Some img ->
        buf := Some (Bytes.copy img);
        lsn := Vec.get t.disk_lsn page
    | None -> ());
    if from >= 0 then begin
      charge_log_scan t ~from;
      let records, _, _ = scan_committed t ~from in
      List.iter
        (function
          | Image { lsn = l; page = p; img } when p = page ->
              buf := Some (Bytes.copy img);
              lsn := l
          | Delta { lsn = l; page = p; off; bytes } when p = page -> (
              match !buf with
              | Some b ->
                  Bytes.blit bytes 0 b off (Bytes.length bytes);
                  lsn := l
              | None -> ())
          | _ -> ())
        records
    end;
    match !buf with
    | None -> `Unrecoverable "no durable coverage"
    | Some b ->
        let dst = Page_store.bytes t.store page in
        Bytes.blit b 0 dst 0 t.page_size;
        Vec.set t.disk_img page (Some (Bytes.copy dst));
        Vec.set t.disk_lsn page !lsn;
        Vec.set t.mem_lsn page !lsn;
        let disk, phys = Page_store.location t.store page in
        Disk_model.write t.data_disks ~disk ~phys;
        Page_store.stamp ~lsn:!lsn t.store page;
        `Repaired
  end

let tear_last_writeback t =
  if not t.crashed then
    invalid_arg "Wal.tear_last_writeback: machine still running";
  let page = t.last_writeback in
  if page = Page_store.nil then false
  else
    match Vec.get t.disk_img page with
    | None -> false
    | Some img ->
        (* Only sound if redo can rebuild the page from a full image in
           the replayable durable log; otherwise the write was already
           covered (fsynced) by a completed checkpoint. *)
        let records, _, _ = parse_durable t in
        let repairable =
          List.exists
            (function Image { page = p; _ } -> p = page | _ -> false)
            records
        in
        if not repairable then false
        else begin
          let half = t.page_size / 2 in
          Bytes.fill img half (t.page_size - half) '\000';
          Vec.set t.disk_lsn page (-1);
          Counter.incr t.stats.torn_pages;
          true
        end

(* ----------------------------- recovery ----------------------------- *)

let recover t =
  let t0 = Clock.now t.clock in
  Counter.incr t.stats.recoveries;
  Buffer_pool.drop_all t.pool;
  Sim.flush_cache t.sim;
  (* The machine reboots with exactly the durable disk contents. *)
  let total = Page_store.total_pages t.store in
  ensure t total;
  for id = 1 to total do
    let b = Page_store.bytes t.store id in
    (match Vec.get t.disk_img id with
    | Some img -> Bytes.blit img 0 b 0 t.page_size
    | None -> Bytes.fill b 0 t.page_size '\000');
    Vec.set t.mem_lsn id (Vec.get t.disk_lsn id)
  done;
  (* Sequential scan of the durable log from the last checkpoint. *)
  let log_len = Buffer.length t.durable - t.ckpt_offset in
  let read_pages = (log_len + t.page_size - 1) / t.page_size in
  let completion = ref (Clock.now t.clock) in
  let phys0 = t.ckpt_offset / t.page_size in
  for i = 0 to read_pages - 1 do
    completion := Disk_model.read t.log_disk ~disk:0 ~phys:(phys0 + i) ()
  done;
  Clock.advance_to t.clock !completion;
  let records, scanned, torn = parse_durable t in
  (* Redo: re-apply records newer than the page's durable image. *)
  let committed = ref 0 and meta = ref [] in
  let redone = Hashtbl.create 64 in
  let nredo = ref 0 in
  List.iter
    (fun r ->
      match r with
      | Image { lsn; page; img } ->
          ensure t page;
          if lsn > Vec.get t.mem_lsn page then begin
            Bytes.blit img 0 (Page_store.bytes t.store page) 0 t.page_size;
            Vec.set t.mem_lsn page lsn;
            Hashtbl.replace redone page ();
            incr nredo
          end
      | Delta { lsn; page; off; bytes } ->
          ensure t page;
          if lsn > Vec.get t.mem_lsn page then begin
            Bytes.blit bytes 0
              (Page_store.bytes t.store page)
              off (Bytes.length bytes);
            Vec.set t.mem_lsn page lsn;
            Hashtbl.replace redone page ();
            incr nredo
          end
      | Commit { op; meta = m; _ } ->
          committed := op;
          meta := m
      | Checkpoint { op; meta = m; _ } ->
          committed := op;
          meta := m
      | Alloc _ | Free _ -> ())
    records;
  (* Write redone pages back and refresh their durable images. *)
  Hashtbl.iter
    (fun page () ->
      Vec.set t.disk_img page (Some (Bytes.copy (Page_store.bytes t.store page)));
      Vec.set t.disk_lsn page (Vec.get t.mem_lsn page);
      let disk, phys = Page_store.location t.store page in
      Disk_model.write t.data_disks ~disk ~phys)
    redone;
  Counter.add t.stats.c_redo_records !nredo;
  Counter.add t.stats.c_redo_pages (Hashtbl.length redone);
  (* Restore the committed allocation map: the snapshot taken at the last
     durable checkpoint, advanced by the committed Alloc/Free records.
     Pages allocated by uncommitted operations (beyond the committed
     high-water mark, or allocated without a following commit) return to
     the free list zeroed, so a continued workload can reuse them. *)
  let snap_total, snap_free = t.alloc_snapshot in
  let free_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace free_set id ()) snap_free;
  let committed_total = ref snap_total in
  List.iter
    (function
      | Alloc { page; _ } ->
          Hashtbl.remove free_set page;
          if page > !committed_total then committed_total := page
      | Free { page; _ } -> Hashtbl.replace free_set page ()
      | _ -> ())
    records;
  let free_ids = ref [] in
  for id = total downto 1 do
    if id > !committed_total || Hashtbl.mem free_set id then
      free_ids := id :: !free_ids
  done;
  Page_store.set_free_list t.store !free_ids;
  List.iter
    (fun id ->
      Vec.set t.disk_img id (Some (Bytes.copy (Page_store.bytes t.store id)));
      Vec.set t.disk_lsn id 0;
      Vec.set t.mem_lsn id 0)
    !free_ids;
  (* Every page's bytes were rewritten without going through a pool
     write-back: re-stamp all checksum headers so later reads verify. *)
  for id = 1 to total do
    Page_store.stamp ~lsn:(Vec.get t.mem_lsn id) t.store id
  done;
  (* Restart logging from a clean slate + fresh checkpoint. *)
  for id = 1 to total do
    Vec.set t.shadow id None;
    Vec.set t.image_off id (-1)
  done;
  Hashtbl.reset t.touched;
  Hashtbl.reset t.logged_since_ckpt;
  Buffer.clear t.buf;
  t.sealed_bytes <- Buffer.length t.durable;
  t.crashed <- false;
  t.crash_at <- None;
  t.last_writeback <- Page_store.nil;
  t.last_op <- !committed;
  let ckpt_start = t.sealed_bytes in
  append t (Checkpoint { lsn = fresh_lsn t; op = !committed; meta = !meta });
  flush t;
  t.ckpt_offset <- ckpt_start;
  t.alloc_snapshot <-
    (Page_store.total_pages t.store, Page_store.free_list t.store);
  let dt = Clock.now t.clock - t0 in
  Counter.add t.stats.c_recovery_ns dt;
  {
    committed_ops = !committed;
    meta = !meta;
    scanned_records = scanned;
    redo_records = !nredo;
    redo_pages = Hashtbl.length redone;
    free_pages = List.length !free_ids;
    torn_tail_bytes = torn;
    recovery_ns = dt;
  }

(* ----------------------------- lifecycle ---------------------------- *)

let attach ?(group_commit_bytes = 0) ?(log_base_images = false) ~meta pool =
  let sim = Buffer_pool.sim pool in
  let store = Buffer_pool.store pool in
  let page_size = Page_store.page_size store in
  let t =
    {
      pool;
      store;
      clock = sim.Sim.clock;
      sim;
      data_disks = Buffer_pool.disks pool;
      log_disk =
        Disk_model.create
          ~transfer_ns:(Disk_model.transfer_ns_of_page_size page_size)
          ~n_disks:1 sim.Sim.clock;
      page_size;
      group_commit_bytes;
      buf = Buffer.create 4096;
      durable = Buffer.create 65536;
      sealed_bytes = 0;
      next_lsn = 1;
      last_op = 0;
      ckpt_offset = 0;
      boundaries = [];
      shadow = Vec.create ~dummy:None;
      mem_lsn = Vec.create ~dummy:0;
      disk_img = Vec.create ~dummy:None;
      disk_lsn = Vec.create ~dummy:0;
      image_off = Vec.create ~dummy:(-1);
      alloc_snapshot = (0, []);
      logged_since_ckpt = Hashtbl.create 256;
      touched = Hashtbl.create 64;
      last_writeback = Page_store.nil;
      crash_at = None;
      crashed = false;
      stats = make_stats ();
      commit_latency = Histogram.make "wal.commit_latency_ns";
    }
  in
  (* Everything that exists at attach time is the durable base. *)
  Buffer_pool.flush_dirty pool;
  let total = Page_store.total_pages store in
  ensure t total;
  for id = 1 to total do
    Vec.set t.disk_img id (Some (Bytes.copy (Page_store.bytes store id)))
  done;
  t.alloc_snapshot <- (total, Page_store.free_list store);
  Buffer_pool.set_wal_hooks pool
    (Some
       {
         Buffer_pool.on_page_dirty = on_page_dirty t;
         before_page_write = before_page_write t;
         on_page_write = on_page_write t;
         on_page_alloc = on_page_alloc t;
         on_page_free = on_page_free t;
         page_lsn = page_lsn t;
       });
  Buffer_pool.set_repair pool (Some (repair_page t));
  if log_base_images then
    (* Give the log full-image coverage of the pages that predate it
       (e.g. a bulkloaded tree), so media repair never depends on state
       older than the log itself. *)
    Page_store.iter_live store (fun id ->
        Vec.set t.image_off id t.sealed_bytes;
        let lsn = fresh_lsn t in
        append t
          (Image { lsn; page = id; img = Bytes.copy (Page_store.bytes store id) });
        Vec.set t.mem_lsn id lsn);
  append t (Checkpoint { lsn = fresh_lsn t; op = 0; meta });
  flush t;
  t

let detach t =
  Buffer_pool.set_wal_hooks t.pool None;
  Buffer_pool.set_repair t.pool None

(* ---------------------------- inspection ---------------------------- *)

let log_bytes t = t.sealed_bytes
let durable_bytes t = Buffer.length t.durable
let layout t = List.rev t.boundaries

let verify_images t =
  let total = Page_store.total_pages t.store in
  ensure t total;
  let bad = ref None in
  (try
     for id = 1 to total do
       let b = Page_store.bytes t.store id in
       match Vec.get t.disk_img id with
       | Some img ->
           if not (Bytes.equal img b) then begin
             bad :=
               Some
                 (Printf.sprintf "page %d: memory differs from durable image"
                    id);
             raise Exit
           end
       | None ->
           let zero = ref true in
           Bytes.iter (fun c -> if c <> '\000' then zero := false) b;
           if not !zero then begin
             bad :=
               Some
                 (Printf.sprintf
                    "page %d: no durable image but non-zero contents" id);
             raise Exit
           end
     done
   with Exit -> ());
  match !bad with None -> Ok () | Some m -> Error m

let commit_latency t = t.commit_latency
let kv t = List.map Counter.kv (stats_counters t.stats)

let reset_stats t =
  List.iter Counter.reset (stats_counters t.stats);
  Histogram.reset t.commit_latency
