(* Physiological write-ahead log with redo-only (ARIES-lite) recovery.

   The log sits between the buffer pool and the page store and maintains
   the fiction of a durable disk: a byte stream of framed log records plus
   a per-page durable image (what the page's sectors would hold after a
   power cut).  The in-memory page store always holds the current bytes;
   durability is exactly {durable stream + durable images}, and recovery
   reconstructs the committed prefix from those two alone.

   Invariant that makes redo-only recovery sound: a page's durable image
   is only ever updated from state covered by a *successful* log flush,
   and sealed log content always consists of whole committed operations
   (pages are diffed and sealed at commit time, never mid-operation).  So
   no durable image can run ahead of the last durable commit record, and
   nothing ever needs undoing.  The price is the "deferred write-back":
   evicting a page with uncommitted changes writes the *store* bytes to
   the simulated disk but leaves the durable image stale; the next
   checkpoint re-writes such pages.

   The durable stream is kept on S >= 1 log stripes of K >= 1 mirrored
   log disks each (S*K log disks total; the disk for stripe s, mirror k
   is s*K + k).  Sealed records are placed round-robin across stripes by
   seal order, so consecutive records land on different spindles and a
   flush drives them in parallel — log striping for bandwidth.  Within a
   stripe the K mirrors hold position-identical byte streams: every
   flush appends to all of them and waits for the slowest.  Every record
   carries its own CRC-32, so a read that hits a torn or rotted record
   on one mirror is detected and falls back to the next mirror of the
   same stripe, healing the damaged span in passing.  Log disks draw
   from the same [Fault.profile] machinery as data disks — the log is
   not exempt from media failure, it survives it.

   LSN invariant the striping leans on: every [fresh_lsn] call is
   immediately followed by exactly one [append], so LSNs are allocated
   in seal order and the sealed stream carries consecutive LSNs.  A scan
   reads each stripe independently and merges records by LSN; any gap in
   the merged sequence with records beyond it proves committed records
   were lost in some stripe (a genuine crash cut can only truncate the
   tail of the seal order, never punch a hole in it). *)

open Fpb_simmem
open Fpb_storage
module Counter = Fpb_obs.Counter
module Histogram = Fpb_obs.Histogram

exception Crashed

type record =
  | Image of { lsn : int; page : int; img : Bytes.t }
  | Delta of { lsn : int; page : int; off : int; bytes : Bytes.t }
  | Commit of { lsn : int; op : int; meta : int list }
  | Checkpoint of { lsn : int; op : int; meta : int list }
  | Alloc of { lsn : int; page : int }
  | Free of { lsn : int; page : int }

(* -------------------------------------------------------------------- *)
(* Record framing: [len | body | crc32(body)], 32-bit little-endian.    *)

module Codec = struct
  let kind_image = 1
  let kind_delta = 2
  let kind_commit = 3
  let kind_checkpoint = 4
  let kind_alloc = 5
  let kind_free = 6
  let max_body = 1 lsl 24 (* sanity bound when parsing *)

  let add_i32 b v = Buffer.add_int32_le b (Int32.of_int v)

  let add_meta b meta =
    add_i32 b (List.length meta);
    List.iter (add_i32 b) meta

  let encode r =
    let body = Buffer.create 64 in
    (match r with
    | Image { lsn; page; img } ->
        Buffer.add_uint8 body kind_image;
        add_i32 body lsn;
        add_i32 body page;
        Buffer.add_bytes body img
    | Delta { lsn; page; off; bytes } ->
        Buffer.add_uint8 body kind_delta;
        add_i32 body lsn;
        add_i32 body page;
        add_i32 body off;
        Buffer.add_bytes body bytes
    | Commit { lsn; op; meta } ->
        Buffer.add_uint8 body kind_commit;
        add_i32 body lsn;
        add_i32 body op;
        add_meta body meta
    | Checkpoint { lsn; op; meta } ->
        Buffer.add_uint8 body kind_checkpoint;
        add_i32 body lsn;
        add_i32 body op;
        add_meta body meta
    | Alloc { lsn; page } ->
        Buffer.add_uint8 body kind_alloc;
        add_i32 body lsn;
        add_i32 body page
    | Free { lsn; page } ->
        Buffer.add_uint8 body kind_free;
        add_i32 body lsn;
        add_i32 body page);
    let body = Buffer.contents body in
    let framed = Buffer.create (String.length body + 8) in
    add_i32 framed (String.length body);
    Buffer.add_string framed body;
    add_i32 framed (Checksum.string body);
    Buffer.contents framed

  let get_i32 b pos = Int32.to_int (Bytes.get_int32_le b pos)

  (* Parse the framed record at [pos] in [b] (the stream occupies bytes
     [0, len), defaulting to all of [b]); [None] on a torn or corrupt
     record. *)
  let decode ?len:(n = -1) b pos =
    let n = if n < 0 then Bytes.length b else n in
    if pos + 4 > n then None
    else
      let len = get_i32 b pos in
      if len < 9 || len > max_body || pos + 4 + len + 4 > n then None
      else
        let body = pos + 4 in
        (* mask: i32 round-trip sign-extends checksums >= 2^31 *)
        let sum = get_i32 b (body + len) land 0xffffffff in
        if sum <> Checksum.update 0 b body len then None
        else
          let kind = Char.code (Bytes.get b body) in
          let lsn = get_i32 b (body + 1) in
          let payload = body + 5 in
          let payload_len = len - 5 in
          let meta_at off =
            let count = get_i32 b off in
            if count < 0 || off + 4 + (4 * count) > body + len then None
            else
              Some (List.init count (fun i -> get_i32 b (off + 4 + (4 * i))))
          in
          let next = body + len + 4 in
          match kind with
          | k when k = kind_image ->
              let page = get_i32 b payload in
              let img = Bytes.sub b (payload + 4) (payload_len - 4) in
              Some (Image { lsn; page; img }, next)
          | k when k = kind_delta ->
              if payload_len < 8 then None
              else
                let page = get_i32 b payload in
                let off = get_i32 b (payload + 4) in
                let bytes = Bytes.sub b (payload + 8) (payload_len - 8) in
                Some (Delta { lsn; page; off; bytes }, next)
          | k when k = kind_commit -> (
              let op = get_i32 b payload in
              match meta_at (payload + 4) with
              | Some meta -> Some (Commit { lsn; op; meta }, next)
              | None -> None)
          | k when k = kind_checkpoint -> (
              let op = get_i32 b payload in
              match meta_at (payload + 4) with
              | Some meta -> Some (Checkpoint { lsn; op; meta }, next)
              | None -> None)
          | k when k = kind_alloc ->
              Some (Alloc { lsn; page = get_i32 b payload }, next)
          | k when k = kind_free ->
              Some (Free { lsn; page = get_i32 b payload }, next)
          | _ -> None
end

(* -------------------------------------------------------------------- *)

type boundary = {
  end_off : int;
  size : int;
  kind : [ `Image | `Delta | `Commit | `Checkpoint | `Alloc | `Free ];
}

type damage =
  | Torn_tail of int
  | Zero_span of { off : int; len : int }
  | Flip of { off : int; bit : int }

type recovery = {
  committed_ops : int;
  meta : int list;
  scanned_records : int;
  redo_records : int;
  redo_pages : int;
  free_pages : int;
  torn_tail_bytes : int;
  damaged_records : int;
  recovery_ns : int;
}

type stats = {
  records : Counter.t;
  images : Counter.t;
  deltas : Counter.t;
  commits : Counter.t;
  checkpoints : Counter.t;
  allocs : Counter.t;
  frees : Counter.t;
  c_log_bytes : Counter.t;
  flushes : Counter.t;
  flush_wait_ns : Counter.t;
  deferred_writebacks : Counter.t;
  crashes : Counter.t;
  torn_pages : Counter.t;
  recoveries : Counter.t;
  c_redo_records : Counter.t;
  c_redo_pages : Counter.t;
  c_recovery_ns : Counter.t;
  mirror_fallbacks : Counter.t;
  mirror_repairs : Counter.t;
  c_damaged : Counter.t;
  repair_sectors : Counter.t;
  repair_full : Counter.t;
  c_truncated : Counter.t;
}

let make_stats () =
  {
    records = Counter.make "wal.records";
    images = Counter.make "wal.images";
    deltas = Counter.make "wal.deltas";
    commits = Counter.make "wal.commits";
    checkpoints = Counter.make "wal.checkpoints";
    allocs = Counter.make "wal.alloc_records";
    frees = Counter.make "wal.free_records";
    c_log_bytes = Counter.make "wal.log_bytes";
    flushes = Counter.make "wal.flushes";
    flush_wait_ns = Counter.make "wal.flush_wait_ns";
    deferred_writebacks = Counter.make "wal.deferred_writebacks";
    crashes = Counter.make "wal.crashes";
    torn_pages = Counter.make "wal.torn_pages";
    recoveries = Counter.make "wal.recoveries";
    c_redo_records = Counter.make "wal.redo_records";
    c_redo_pages = Counter.make "wal.redo_pages";
    c_recovery_ns = Counter.make "wal.recovery_ns";
    mirror_fallbacks = Counter.make "wal.mirror.fallbacks";
    mirror_repairs = Counter.make "wal.mirror.repairs";
    c_damaged = Counter.make "wal.damaged_records";
    repair_sectors = Counter.make "wal.repair.sectors";
    repair_full = Counter.make "wal.repair.full";
    c_truncated = Counter.make "wal.log.truncated_bytes";
  }

let stats_counters s =
  [
    s.records; s.images; s.deltas; s.commits; s.checkpoints; s.allocs;
    s.frees; s.c_log_bytes;
    s.flushes; s.flush_wait_ns; s.deferred_writebacks; s.crashes;
    s.torn_pages; s.recoveries; s.c_redo_records; s.c_redo_pages;
    s.c_recovery_ns; s.mirror_fallbacks; s.mirror_repairs; s.c_damaged;
    s.repair_sectors; s.repair_full; s.c_truncated;
  ]

(* One mirror of one stripe of the durable log: a growable byte array.
   All mirrors of a stripe hold position-identical streams of the same
   length; faults make their *contents* diverge, never their length (a
   crash cuts all of them at the same byte). *)
type mirror = { mutable data : Bytes.t; mutable len : int }

let m_append m s off len =
  let need = m.len + len in
  if Bytes.length m.data < need then begin
    let cap = max need (max 65536 (2 * Bytes.length m.data)) in
    let nd = Bytes.create cap in
    Bytes.blit m.data 0 nd 0 m.len;
    m.data <- nd
  end;
  Bytes.blit_string s off m.data m.len len;
  m.len <- need

type t = {
  pool : Buffer_pool.t;
  store : Page_store.t;
  clock : Clock.t;
  sim : Sim.t;
  data_disks : Disk_model.t;
  log_disks : Disk_model.t;  (* S*K disks; stripe s mirror k = s*K + k *)
  streams : mirror array array;  (* durable byte streams, [stripe].[mirror] *)
  page_size : int;
  group_commit_bytes : int;
  (* log stream.  [sealed_bytes]/[durable_len] and every offset in
     [boundaries] are *logical*: positions in the single stream of
     sealed records, independent of which stripe each record landed on.
     Physical placement is round-robin by seal order ([seal_seq]);
     [stripe_sealed] tracks each stripe's sealed (including pending)
     extent so scan start marks can be captured per stripe. *)
  mutable pending : (int * int * string) list;
      (* (stripe, lsn, framed), newest first *)
  mutable pending_bytes : int;  (* sealed, not yet durable *)
  mutable seal_seq : int;  (* records ever sealed; placement = seq mod S *)
  stripe_sealed : int array;  (* per-stripe sealed extent *)
  mutable durable_len : int;  (* logical length of the durable stream *)
  mutable sealed_bytes : int;  (* end offset of the sealed stream *)
  mutable next_lsn : int;
  mutable last_op : int;  (* last committed operation number *)
  mutable ckpt_marks : int array;
      (* per-stripe offsets of the last durable checkpoint record's seal
         point: recovery scans each stripe from here *)
  mutable trunc_marks : int array;
      (* per-stripe retention floor: bytes below it have been released
         by [truncate_to] (zeroed on every mirror) and may no longer be
         read; always <= ckpt_marks *)
  mutable boundaries : boundary list;  (* newest first *)
  mutable batched_redo : bool;  (* sort redo write-backs by (disk, phys) *)
  mutable coalesce_redo : bool;  (* merge adjacent write-backs into runs *)
  (* per-page durability state; index = page id *)
  shadow : Bytes.t option Vec.t;  (* last-logged content, for deltas *)
  mem_lsn : int Vec.t;  (* LSN of the page's newest log record *)
  disk_img : Bytes.t option Vec.t;  (* durable image, None = never written *)
  disk_lsn : int Vec.t;  (* LSN the durable image reflects *)
  image_marks : int array option Vec.t;
      (* per-stripe offsets at the seal point of the page's last full
         image record, None = no logged image: a repair scan from these
         marks sees exactly the image and everything after it *)
  mutable alloc_snapshot : int * int list;
      (* (total pages, free list) at the last durable checkpoint: the
         base state Alloc/Free record replay advances during recovery *)
  logged_since_ckpt : (int, unit) Hashtbl.t;
  touched : (int, unit) Hashtbl.t;  (* dirtied by the in-flight operation *)
  mutable last_writeback : int;  (* page of the newest image update *)
  (* crash injection *)
  mutable crash_at : int option;
  mutable crashed : bool;
  mutable recovery_base : base option;
      (* shadow-paging recovery base: when set, recovery reboots page
         contents and its scan/allocator start point from here (the
         persisted checkpoint generation) instead of the WAL's own
         durable images *)
  mutable durable_obs : (int -> string -> unit) option;
      (* observer called once per record, in seal order, when a flush
         makes it fully durable — (lsn, framed bytes).  A log-shipping
         layer forwards the frames to replicas; records cut by an armed
         crash are never reported (they died with the machine). *)
  mutable commit_barrier : (op:int -> lsn:int -> unit) option;
      (* called by [commit] after its (conditional) flush and before the
         latency histogram records: a replication layer blocks here —
         advancing the simulated clock — until its durability mode is
         satisfied, so wal.commit_latency shows the true commit cost *)
  mutable pre_log : (int -> (Bytes.t * int) option -> unit) option;
      (* observer called before [log_page] advances a page's logging
         state, with the page's newest *committed* content and its LSN
         (the bytes are NOT copied and are invalidated by the logging
         that follows — the observer must copy what it keeps).  The
         shadow layer uses this to freeze the page's pre-update content
         into checkpoint generations that still lack it. *)
  stats : stats;
  commit_latency : Histogram.t;
  checkpoint_stall : Histogram.t;
}

(* What a shadow-paging layer hands recovery: the page images the live
   on-disk indirection table reaches ([load_page], None = page not in
   the checkpointed generation), the per-stripe log offsets of the cut
   the flip covered, and the allocator state at that cut. *)
and base = {
  load_page : int -> (Bytes.t * int) option;
  base_marks : int array;
  base_alloc : int * int list;
}

let ensure t page =
  while Vec.length t.shadow <= page do
    Vec.push t.shadow None;
    Vec.push t.mem_lsn 0;
    Vec.push t.disk_img None;
    Vec.push t.disk_lsn 0;
    Vec.push t.image_marks None
  done

let n_stripes t = Array.length t.streams

(* Durable extent of one stripe (all its mirrors share it). *)
let stripe_dlen t s = t.streams.(s).(0).len

(* Refresh the durable image of [page] from [src] without allocating:
   durable images are page-sized private buffers, so once one exists the
   new contents blit in place. *)
let set_disk_img t page src =
  match Vec.get t.disk_img page with
  | Some img -> Bytes.blit src 0 img 0 t.page_size
  | None -> Vec.set t.disk_img page (Some (Bytes.copy src))

let fresh_lsn t =
  let l = t.next_lsn in
  t.next_lsn <- l + 1;
  l

let kind_of = function
  | Image _ -> `Image
  | Delta _ -> `Delta
  | Commit _ -> `Commit
  | Checkpoint _ -> `Checkpoint
  | Alloc _ -> `Alloc
  | Free _ -> `Free

let lsn_of = function
  | Image { lsn; _ }
  | Delta { lsn; _ }
  | Commit { lsn; _ }
  | Checkpoint { lsn; _ }
  | Alloc { lsn; _ }
  | Free { lsn; _ } ->
      lsn

(* Seal a record into the pending list, placing it round-robin on the
   next stripe in seal order. *)
let append t r =
  let framed = Codec.encode r in
  let size = String.length framed in
  let stripe = t.seal_seq mod n_stripes t in
  t.seal_seq <- t.seal_seq + 1;
  t.pending <- (stripe, lsn_of r, framed) :: t.pending;
  t.pending_bytes <- t.pending_bytes + size;
  t.stripe_sealed.(stripe) <- t.stripe_sealed.(stripe) + size;
  t.sealed_bytes <- t.sealed_bytes + size;
  t.boundaries <-
    { end_off = t.sealed_bytes; size; kind = kind_of r } :: t.boundaries;
  Counter.incr t.stats.records;
  Counter.add t.stats.c_log_bytes size;
  match r with
  | Image _ -> Counter.incr t.stats.images
  | Delta _ -> Counter.incr t.stats.deltas
  | Commit _ -> Counter.incr t.stats.commits
  | Checkpoint _ -> Counter.incr t.stats.checkpoints
  | Alloc _ -> Counter.incr t.stats.allocs
  | Free _ -> Counter.incr t.stats.frees

(* Make the sealed stream durable: walk the pending records in seal
   order, appending each to every mirror of its stripe.  An armed crash
   boundary inside the flushed extent cuts the stream exactly there, at
   its *logical* offset: records wholly before the cut reach their
   stripes, the record straddling it keeps only the prefix that reached
   the platters, later records die in memory (power fails every spindle
   at once).  On success, charge each stripe's flushed span as
   sequential writes to its mirror disks and wait for the slowest (this
   wait IS the commit latency) — stripes take their spans in parallel,
   which is the point of striping. *)
let flush t =
  if t.crashed then raise Crashed;
  if t.pending_bytes > 0 then begin
    let records = List.rev t.pending in (* seal order *)
    t.pending <- [];
    t.pending_bytes <- 0;
    let io_start = Array.map (fun ms -> ms.(0).len) t.streams in
    let cut = ref false in
    (try
       List.iter
         (fun (s, _lsn, framed) ->
           let size = String.length framed in
           let logical_end = t.durable_len + size in
           (match t.crash_at with
           | Some b when logical_end > b ->
               let keep = max 0 (b - t.durable_len) in
               Array.iter (fun m -> m_append m framed 0 keep) t.streams.(s);
               t.durable_len <- t.durable_len + keep;
               cut := true;
               raise Exit
           | _ -> ());
           Array.iter (fun m -> m_append m framed 0 size) t.streams.(s);
           t.durable_len <- logical_end)
         records
     with Exit -> ());
    if !cut then begin
      t.crashed <- true;
      Counter.incr t.stats.crashes;
      raise Crashed
    end;
    Counter.incr t.stats.flushes;
    let now0 = Clock.now t.clock in
    let completion = ref now0 in
    let kmirrors = Array.length t.streams.(0) in
    Array.iteri
      (fun s ms ->
        let a = io_start.(s) and b = ms.(0).len in
        if b > a then
          Array.iteri
            (fun k _ ->
              let c = ref now0 in
              for phys = a / t.page_size to (b - 1) / t.page_size do
                c :=
                  Disk_model.write_sync t.log_disks
                    ~disk:((s * kmirrors) + k)
                    ~phys ()
              done;
              completion := max !completion !c)
            ms)
      t.streams;
    Clock.advance_to t.clock !completion;
    Counter.add t.stats.flush_wait_ns (!completion - now0);
    (* Records are durable: hand them to the log-shipping observer in
       seal order (the clock stands at the flush completion, so shipping
       send times start from durability, never before it). *)
    match t.durable_obs with
    | Some f -> List.iter (fun (_s, lsn, framed) -> f lsn framed) records
    | None -> ()
  end

(* ----------------------------- hooks -------------------------------- *)

let on_page_dirty t page =
  if not t.crashed then begin
    ensure t page;
    Hashtbl.replace t.touched page ()
  end

(* A page id reincarnated by alloc starts a fresh logging history; its
   previous incarnation's durable image stays (it may still back the
   rollback of an uncommitted free + realloc).  The allocation itself is
   logged so recovery can rebuild the committed allocation map — an Alloc
   sealed without its commit record is truncated away with the rest of
   the uncommitted tail. *)
let on_page_alloc t page =
  if not t.crashed then begin
    ensure t page;
    Vec.set t.shadow page None;
    Vec.set t.image_marks page None;
    Hashtbl.remove t.logged_since_ckpt page;
    Hashtbl.remove t.touched page;
    append t (Alloc { lsn = fresh_lsn t; page })
  end

let on_page_free t page =
  if not t.crashed then begin
    Hashtbl.remove t.touched page;
    append t (Free { lsn = fresh_lsn t; page })
  end

(* LSN of the page's newest logged change; the pool stamps it into the
   page's checksum header on write-back. *)
let page_lsn t page =
  ensure t page;
  Vec.get t.mem_lsn page

(* WAL-before-data: force the log before any page write-back. *)
let before_page_write t _page = if not t.crashed then flush t

(* A write-back updates the durable image — unless the page carries
   uncommitted (not yet sealed) changes, in which case the image is left
   stale rather than exposing bytes a redo-only log could never undo. *)
let on_page_write t page =
  if not t.crashed then begin
    ensure t page;
    if Hashtbl.mem t.touched page then
      Counter.incr t.stats.deferred_writebacks
    else begin
      set_disk_img t page (Page_store.bytes t.store page);
      Vec.set t.disk_lsn page (Vec.get t.mem_lsn page);
      t.last_writeback <- page
    end
  end

(* ----------------------------- logging ------------------------------ *)

(* Smallest byte span on which two page-sized buffers differ. *)
let diff_span a b =
  let n = Bytes.length a in
  let lo = ref 0 in
  while !lo < n && Bytes.get a !lo = Bytes.get b !lo do
    incr lo
  done;
  if !lo = n then None
  else begin
    let hi = ref (n - 1) in
    while Bytes.get a !hi = Bytes.get b !hi do
      decr hi
    done;
    Some (!lo, !hi - !lo + 1)
  end

(* Log one dirtied page: a full image on first touch since the last
   checkpoint (torn-page repair depends on this), a shadow diff after. *)
let log_page t page =
  let cur = Page_store.bytes t.store page in
  (match t.pre_log with
  | Some f ->
      let pre =
        match Vec.get t.shadow page with
        | Some sh -> Some (sh, Vec.get t.mem_lsn page)
        | None -> (
            match Vec.get t.disk_img page with
            | Some img -> Some (img, Vec.get t.disk_lsn page)
            | None -> None)
      in
      f page pre
  | None -> ());
  let first = not (Hashtbl.mem t.logged_since_ckpt page) in
  (match (if first then None else Vec.get t.shadow page) with
  | None ->
      let lsn = fresh_lsn t in
      (* Marks taken at the seal point: a scan from them starts exactly
         at this image record.  [cur] goes into the record uncopied —
         [append] serializes it immediately, so no reference survives. *)
      Vec.set t.image_marks page (Some (Array.copy t.stripe_sealed));
      append t (Image { lsn; page; img = cur });
      (match Vec.get t.shadow page with
      | Some sh -> Bytes.blit cur 0 sh 0 t.page_size
      | None -> Vec.set t.shadow page (Some (Bytes.copy cur)));
      Vec.set t.mem_lsn page lsn
  | Some sh -> (
      match diff_span sh cur with
      | None -> () (* dirtied but byte-identical: nothing to log *)
      | Some (off, len) ->
          let lsn = fresh_lsn t in
          append t (Delta { lsn; page; off; bytes = Bytes.sub cur off len });
          Bytes.blit cur off sh off len;
          Vec.set t.mem_lsn page lsn));
  Hashtbl.replace t.logged_since_ckpt page ()

let commit t ~op ~meta =
  if t.crashed then raise Crashed;
  let t0 = Clock.now t.clock in
  let pages = Hashtbl.fold (fun p () acc -> p :: acc) t.touched [] in
  List.iter (log_page t) (List.sort compare pages);
  Hashtbl.reset t.touched;
  let clsn = fresh_lsn t in
  append t (Commit { lsn = clsn; op; meta });
  t.last_op <- op;
  if t.group_commit_bytes = 0 || t.pending_bytes >= t.group_commit_bytes then
    flush t;
  (* The replication barrier blocks (in simulated time) until the
     configured durability mode is satisfied — e.g. k replica acks for
     this commit's LSN — so the latency histogram below records the true
     cost of the chosen mode. *)
  (match t.commit_barrier with Some f -> f ~op ~lsn:clsn | None -> ());
  Histogram.record t.commit_latency (Clock.now t.clock - t0)

let checkpoint t ~meta =
  if t.crashed then raise Crashed;
  if Hashtbl.length t.touched > 0 then
    invalid_arg "Wal.checkpoint: called mid-operation";
  let t0 = Clock.now t.clock in
  (* Commits must be durable before any durable image moves forward. *)
  flush t;
  Buffer_pool.flush_dirty t.pool;
  (* Re-write pages whose image a deferred write-back left stale. *)
  Hashtbl.iter
    (fun page () ->
      if Vec.get t.disk_lsn page < Vec.get t.mem_lsn page then begin
        set_disk_img t page (Page_store.bytes t.store page);
        Vec.set t.disk_lsn page (Vec.get t.mem_lsn page);
        let disk, phys = Page_store.write_location t.store page in
        Disk_model.write t.data_disks ~disk ~phys;
        Page_store.stamp ~lsn:(Vec.get t.mem_lsn page) t.store page
      end)
    t.logged_since_ckpt;
  (* A sharp checkpoint declares the data durable: wait for every queued
     data write to hit the platters before sealing the record.  This
     barrier (plus the whole-pool drain above) IS the writer stall the
     fuzzy checkpoint exists to eliminate. *)
  Clock.advance_to t.clock (Disk_model.drain t.data_disks);
  let marks = Array.copy t.stripe_sealed in
  append t (Checkpoint { lsn = fresh_lsn t; op = t.last_op; meta });
  flush t;
  (* Only a durable checkpoint record moves the recovery start point; the
     allocator snapshot moves with it, to the state Alloc/Free replay
     from this checkpoint must start at. *)
  t.ckpt_marks <- marks;
  t.alloc_snapshot <-
    (Page_store.total_pages t.store, Page_store.free_list t.store);
  Hashtbl.reset t.logged_since_ckpt;
  Histogram.record t.checkpoint_stall (Clock.now t.clock - t0)

(* ---------------- shadow-paging (fuzzy checkpoint) support ----------- *)

(* Per-stripe sealed extents right now: the "cut" a fuzzy checkpoint
   captures at begin time.  A scan from these marks sees exactly the
   records sealed after the capture. *)
let current_marks t = Array.copy t.stripe_sealed

let last_committed_op t = t.last_op

(* The page's durable image and its LSN (a private copy), None if the
   page was never written back.  The shadow layer freezes these bytes
   into a checkpoint generation before the first post-flip overwrite. *)
let durable_image t page =
  ensure t page;
  match Vec.get t.disk_img page with
  | Some img -> Some (Bytes.copy img, Vec.get t.disk_lsn page)
  | None -> None

let page_durable_lsn t page =
  ensure t page;
  Vec.get t.disk_lsn page

(* The page's newest COMMITTED content and its LSN (a private copy): the
   last-logged shadow if the page was ever logged, else the durable
   image.  At flip time the shadow layer freezes these bytes for pages
   whose durable images lag the flip (dirtied or left stale after the
   worklist was captured), so a snapshot of the generation is
   operation-consistent rather than a fuzzy mixture of harden times. *)
let committed_image t page =
  ensure t page;
  match Vec.get t.shadow page with
  | Some sh -> Some (Bytes.copy sh, Vec.get t.mem_lsn page)
  | None -> (
      match Vec.get t.disk_img page with
      | Some img -> Some (Bytes.copy img, Vec.get t.disk_lsn page)
      | None -> None)

(* Whether an operation is in flight (pages touched since the last
   commit): checkpoint cuts must not be taken mid-operation. *)
let in_operation t = Hashtbl.length t.touched > 0

(* Bring one page's durable image up to its newest committed state: the
   unit of work of a fuzzy checkpoint's paced write-back.  Returns false
   — try again later — while the page carries uncommitted (in-flight)
   changes; a redo-only image may never run ahead of the sealed log. *)
let harden_page t page =
  if t.crashed then raise Crashed;
  if Hashtbl.mem t.touched page then false
  else begin
    ensure t page;
    if Buffer_pool.is_dirty t.pool page then
      (* write_back_page runs the WAL hooks: log force first, then the
         image refresh (the page is not touched, so it is not deferred) *)
      ignore (Buffer_pool.write_back_page t.pool page : bool)
    else if Vec.get t.disk_lsn page < Vec.get t.mem_lsn page then begin
      (* a deferred write-back left the image stale: re-write it now *)
      flush t;
      set_disk_img t page (Page_store.bytes t.store page);
      Vec.set t.disk_lsn page (Vec.get t.mem_lsn page);
      let disk, phys = Page_store.write_location t.store page in
      Disk_model.write t.data_disks ~disk ~phys;
      Page_store.stamp ~lsn:(Vec.get t.mem_lsn page) t.store page
    end;
    true
  end

(* Pages whose durable image is behind their newest logged state (the
   deferred-write-back set): the fuzzy checkpoint's worklist beyond the
   pool's dirty frames.  A full scan, NOT the [logged_since_ckpt] set —
   that set is cleared by every flip, and a page left stale across a
   flip must still make the next checkpoint's worklist (its log records
   predate the next cut, so replay would no longer cover it). *)
let stale_pages t =
  let total = Page_store.total_pages t.store in
  ensure t total;
  let acc = ref [] in
  for id = total downto 1 do
    if Vec.get t.disk_lsn id < Vec.get t.mem_lsn id then acc := id :: !acc
  done;
  !acc

(* A checkpoint whose data half was performed OUTSIDE the WAL (the
   shadow layer's fuzzy pass + superblock flip): seal the record, make
   it durable, and move the recovery start point to the CUT captured at
   checkpoint begin — not to now — because the hardened images are only
   guaranteed to cover commits up to the cut; everything after it is
   covered by replay.  [marks]/[alloc] are the cut's [current_marks] and
   (total_pages, free_list). *)
let external_checkpoint t ~marks ~alloc ~meta =
  if t.crashed then raise Crashed;
  if Hashtbl.length t.touched > 0 then
    invalid_arg "Wal.external_checkpoint: called mid-operation";
  append t (Checkpoint { lsn = fresh_lsn t; op = t.last_op; meta });
  flush t;
  t.ckpt_marks <- marks;
  t.alloc_snapshot <- alloc;
  Hashtbl.reset t.logged_since_ckpt

let set_recovery_base t b = t.recovery_base <- b
let set_pre_log_observer t f = t.pre_log <- f
let checkpoint_stall t = t.checkpoint_stall

(* --------------------------- log retention --------------------------- *)

(* Release log space below a durable checkpoint's cut: zero every
   mirror's bytes in [floor, marks) per stripe and advance the retention
   floor.  Clamped to the recovery start point ([ckpt_marks]) — recovery
   and repair scans never start below it, so nothing readable is ever
   released.  Returns the bytes released this call. *)
let truncate_to t ~marks =
  if Array.length marks <> n_stripes t then
    invalid_arg "Wal.truncate_to: stripe count mismatch";
  let released = ref 0 in
  for s = 0 to n_stripes t - 1 do
    let a = t.trunc_marks.(s) in
    let b = min marks.(s) (min t.ckpt_marks.(s) (stripe_dlen t s)) in
    if b > a then begin
      Array.iter (fun m -> Bytes.fill m.data a (b - a) '\000') t.streams.(s);
      t.trunc_marks.(s) <- b;
      released := !released + ((b - a) * Array.length t.streams.(s))
    end
  done;
  Counter.add t.stats.c_truncated !released;
  !released

(* Per-stripe retention floor: offsets below it have been released. *)
let retention_floor t = Array.copy t.trunc_marks

(* ------------------------- fault injection -------------------------- *)

let set_crash_at_byte t b = t.crash_at <- b

let crash_now t =
  if not t.crashed then begin
    t.crashed <- true;
    (* sealed-but-unflushed records die with the power *)
    t.pending <- [];
    t.pending_bytes <- 0;
    Counter.incr t.stats.crashes
  end

let is_crashed t = t.crashed

let log_mirrors t = Array.length t.streams.(0)
let log_stripes t = Array.length t.streams
let log_disks t = t.log_disks

(* Arm the seeded fault schedule on one log disk (or the whole set):
   the log is subject to the same media failures as the data disks.
   [mirror] is the flattened disk index, stripe * K + mirror. *)
let set_log_faults t ?mirror profile =
  Disk_model.set_faults t.log_disks ?disk:mirror profile

(* Deterministic direct damage to one log disk's durable bytes, for
   tests and the chaos harness's detection legs.  [mirror] is the
   flattened disk index stripe * K + mirror; offsets are relative to
   that stripe's own stream.  Lengths never change: the stream keeps its
   extent, its contents rot. *)
let inject_mirror_damage t ~mirror d =
  let k = Array.length t.streams.(0) in
  if mirror < 0 || mirror >= n_stripes t * k then
    invalid_arg "Wal.inject_mirror_damage: no such mirror";
  let s = mirror / k in
  let m = t.streams.(s).(mirror mod k) in
  let dlen = stripe_dlen t s in
  match d with
  | Torn_tail n ->
      let n = min n dlen in
      if n > 0 then Bytes.fill m.data (dlen - n) n '\000'
  | Zero_span { off; len } ->
      if off >= 0 && off < dlen && len > 0 then
        Bytes.fill m.data off (min len (dlen - off)) '\000'
  | Flip { off; bit } ->
      if off >= 0 && off < dlen then
        Bytes.set m.data off
          (Char.chr
             (Char.code (Bytes.get m.data off) lxor (1 lsl (bit land 7))))

(* --------------------------- log reading ----------------------------- *)

(* A scan reads log pages on demand through the fault schedule, at most
   once per (mirror, log page): [`Lost] marks a page whose read failed
   persistently (latent, or transient retries exhausted).  Silent
   corruption is applied to the mirror's bytes and served — the record
   CRC is what detects it.  With [charge = false] (post-crash
   inspection) no I/O is charged and no faults are drawn; the scan sees
   the bytes as they currently are. *)
type scan_ctx = {
  wal : t;
  charged_pages : (int * int, [ `Ok | `Lost ]) Hashtbl.t;
  charge : bool;
  mutable completion : int;
}

let make_ctx ?(charge = true) t =
  { wal = t; charged_pages = Hashtbl.create 64; charge;
    completion = Clock.now t.clock }

let pos_mod a n = ((a mod n) + n) mod n

(* Mangle a mirror's bytes within one log page per the drawn spec. *)
let apply_corruption t m ~lp spec =
  let base = lp * t.page_size in
  let limit = min m.len (base + t.page_size) in
  if base < limit then
    match spec with
    | Disk_model.Bit_flips flips ->
        List.iter
          (fun (off, bit) ->
            let pos = base + pos_mod off t.page_size in
            if pos < limit then
              Bytes.set m.data pos
                (Char.chr
                   (Char.code (Bytes.get m.data pos) lxor (1 lsl (bit land 7)))))
          flips
    | Disk_model.Torn_sector off ->
        let pos = base + pos_mod off t.page_size in
        let n = min 512 (limit - pos) in
        if n > 0 then Bytes.fill m.data pos n '\000'

(* Flattened log-disk index of stripe [s], mirror [k]. *)
let disk_of t s k = (s * Array.length t.streams.(0)) + k

let read_log_page ctx ~s k lp =
  let t = ctx.wal in
  let disk = disk_of t s k in
  match Hashtbl.find_opt ctx.charged_pages (disk, lp) with
  | Some st -> st
  | None ->
      let st =
        if not ctx.charge then `Ok
        else
          let rec attempt n =
            match Disk_model.read_result t.log_disks ~disk ~phys:lp () with
            | Disk_model.Read_ok c ->
                ctx.completion <- max ctx.completion c;
                `Ok
            | Disk_model.Read_corrupt (c, spec) ->
                ctx.completion <- max ctx.completion c;
                apply_corruption t t.streams.(s).(k) ~lp spec;
                `Ok
            | Disk_model.Read_error (c, `Transient) ->
                ctx.completion <- max ctx.completion c;
                if n < 3 then attempt (n + 1) else `Lost
            | Disk_model.Read_error (c, `Latent) ->
                ctx.completion <- max ctx.completion c;
                `Lost
          in
          attempt 0
      in
      Hashtbl.add ctx.charged_pages (disk, lp) st;
      st

(* Read every log page covering bytes [a, b) of stripe [s], mirror [k]. *)
let read_span ctx ~s k a b =
  let t = ctx.wal in
  let ok = ref true in
  for lp = a / t.page_size to (b - 1) / t.page_size do
    if read_log_page ctx ~s k lp = `Lost then ok := false
  done;
  !ok

let b_i32 b pos = Int32.to_int (Bytes.get_int32_le b pos)

(* Attempt to decode the record at stripe-local [pos] from one mirror of
   stripe [s].  [`Overrun]: the frame runs past the end of the stripe's
   stream — the signature of a genuine crash cut.  [`Bad]: the frame
   lies within the stream but is unreadable (lost pages, corrupt length,
   CRC mismatch) — media damage. *)
let try_mirror ctx ~s k pos =
  let t = ctx.wal in
  let m = t.streams.(s).(k) in
  let dlen = stripe_dlen t s in
  if pos + 4 > dlen then `Overrun
  else if not (read_span ctx ~s k pos (pos + 4)) then `Bad
  else
    let len = b_i32 m.data pos in
    if len < 9 || len > Codec.max_body then `Bad
    else if pos + 8 + len > dlen then `Overrun
    else if not (read_span ctx ~s k pos (pos + 8 + len)) then `Bad
    else
      match Codec.decode ~len:dlen m.data pos with
      | Some (r, next) -> `Rec (r, next)
      | None -> `Bad

(* Heal mirror [dst]'s copy of stripe [s]'s span [pos, next) from mirror
   [src]'s verified-good bytes: blit the span and rewrite the covering
   log pages (the write remaps any latent sector). *)
let heal ctx ~s ~src ~dst pos next =
  let t = ctx.wal in
  Bytes.blit t.streams.(s).(src).data pos t.streams.(s).(dst).data pos
    (next - pos);
  for lp = pos / t.page_size to (next - 1) / t.page_size do
    Disk_model.write t.log_disks ~disk:(disk_of t s dst) ~phys:lp;
    Hashtbl.replace ctx.charged_pages (disk_of t s dst, lp) `Ok
  done;
  Counter.incr t.stats.mirror_repairs

(* Decode the record at stripe-local [pos] of stripe [s], trying the
   stripe's mirrors in order.  The first clean copy wins; mirrors that
   failed with media damage are healed from it.  All mirrors failing
   classifies the failure: every mirror overrunning the stream end is a
   torn tail (benign crash cut); any mirror with a full-extent frame
   that would not verify is damage. *)
let decode_at ctx ~s pos =
  let t = ctx.wal in
  let rec go k bads =
    if k >= Array.length t.streams.(s) then
      if bads = [] then `Torn else `Damaged
    else
      match try_mirror ctx ~s k pos with
      | `Rec (r, next) ->
          if ctx.charge then begin
            if k > 0 then Counter.incr t.stats.mirror_fallbacks;
            List.iter (fun j -> heal ctx ~s ~src:k ~dst:j pos next) bads
          end;
          `Decoded (r, next)
      | `Overrun -> go (k + 1) bads
      | `Bad -> go (k + 1) (k :: bads)
  in
  go 0 []

(* Does any mirror of stripe [s] hold a validly framed record strictly
   beyond [pos]?  Distinguishes damage masquerading as a torn tail
   (e.g. a corrupted length field that points past the stream end) from
   a genuine cut: nothing can follow a real cut, so a valid record
   beyond proves the stream did not end at [pos].  Charge-free: cheap
   length/kind filters gate the CRC, and the bytes were already paid for
   by the scan.  (With several stripes, loss that empties one stripe's
   tail entirely is caught cross-stripe by the LSN-gap check in
   [scan_committed] instead.) *)
let has_valid_beyond t ~s pos =
  let dlen = stripe_dlen t s in
  let found = ref false in
  let q = ref (pos + 1) in
  (* smallest frame: 4 (len) + 9 (body) + 4 (crc) *)
  while (not !found) && !q + 17 <= dlen do
    Array.iter
      (fun m ->
        if not !found then begin
          let len = b_i32 m.data !q in
          if len >= 9 && len <= Codec.max_body && !q + 8 + len <= dlen then
            let kind = Char.code (Bytes.get m.data (!q + 4)) in
            if kind >= Codec.kind_image && kind <= Codec.kind_free then
              match Codec.decode ~len:dlen m.data !q with
              | Some _ -> found := true
              | None -> ()
        end)
      t.streams.(s);
    incr q
  done;
  !found

(* Parse the durable stream from the per-stripe offsets [from]: scan
   each stripe independently (stopping at a torn or damaged record),
   merge the stripes' records by LSN, then truncate at the last
   commit/checkpoint — later records belong to an operation that never
   committed.  LSNs are allocated in seal order, one per record, so the
   merged sequence must be consecutive; a gap with records beyond it
   means a stripe silently lost committed records (a genuine crash cut
   truncates the tail of the seal order, it cannot punch a hole), so the
   scan stops at the gap and flags damage.  Returns (committed records,
   records parsed, unreadable tail bytes, damaged count — nonzero means
   committed content may be unreadable: detected loss, never silently
   served). *)
let scan_stream t ~charge ~from =
  let ctx = make_ctx ~charge t in
  let torn = ref 0 and damaged = ref 0 in
  let per_stripe = ref [] in
  for s = n_stripes t - 1 downto 0 do
    let dlen = stripe_dlen t s in
    let rec scan pos acc =
      if pos >= dlen then List.rev acc
      else
        match decode_at ctx ~s pos with
        | `Decoded (r, next) -> scan next (r :: acc)
        | `Torn ->
            torn := !torn + (dlen - pos);
            if has_valid_beyond t ~s pos then incr damaged;
            List.rev acc
        | `Damaged ->
            torn := !torn + (dlen - pos);
            incr damaged;
            List.rev acc
    in
    per_stripe := scan from.(s) [] :: !per_stripe
  done;
  let merged =
    List.stable_sort
      (fun a b -> compare (lsn_of a) (lsn_of b))
      (List.concat !per_stripe)
  in
  let rec take_prefix acc = function
    | [] -> List.rev acc
    | r :: rest -> (
        match acc with
        | prev :: _ when lsn_of r <> lsn_of prev + 1 ->
            if !damaged = 0 then incr damaged;
            List.rev acc
        | _ -> take_prefix (r :: acc) rest)
  in
  let records = take_prefix [] merged in
  if charge then begin
    Clock.advance_to t.clock ctx.completion;
    if !damaged > 0 then Counter.add t.stats.c_damaged !damaged
  end;
  (records, List.length records, !torn, !damaged)

(* As [scan_stream], truncated at the last commit/checkpoint — later
   records belong to an operation that never committed. *)
let scan_committed t ~charge ~from =
  let records, parsed, torn, damaged = scan_stream t ~charge ~from in
  let keep = ref 0 in
  List.iteri
    (fun i r ->
      match r with Commit _ | Checkpoint _ -> keep := i + 1 | _ -> ())
    records;
  (List.filteri (fun i _ -> i < !keep) records, parsed, torn, damaged)

let parse_durable t = scan_committed t ~charge:false ~from:t.ckpt_marks

(* Every readable durable record above the retention floor, including
   the uncommitted tail — charge-free.  A rejoining old primary compares
   this, by (LSN, CRC of the re-encoded frame), against the new
   history's shipping archive to locate the fork point. *)
let durable_records t =
  let records, _, _, _ = scan_stream t ~charge:false ~from:t.trunc_marks in
  records

(* ------------------------------ repair ------------------------------- *)

(* Rebuild one page's committed bytes after media damage: replay the
   page's last full image record and the deltas that follow it from the
   committed durable stream (with [log_base_images], every bulkloaded
   page has one); a page never logged falls back to its durable image
   from the attach/checkpoint snapshot — the model's equivalent of the
   last full-page backup.  When the caller names the damaged sectors and
   the page's stamped header LSN matches the replayed state, only those
   sector spans are patched — the intact sectors already hold the same
   version, so a torn 512-byte sector costs a 512-byte fix, not a page
   rebuild.  The result is written back to the data disk (which remaps
   any latent sector) and freshly stamped.

   Refuses pages carrying uncommitted changes (the bytes the caller lost
   were never logged, and serving their committed ancestor silently
   would corrupt the operation in flight), and refuses to serve anything
   when the log scan itself hit damaged records: a repair source with
   holes in it could silently resurrect stale state. *)
let repair_page t ?(bad_sectors = []) page =
  if t.crashed then `Unrecoverable "machine crashed"
  else if Hashtbl.mem t.touched page then
    `Unrecoverable "page has uncommitted changes"
  else begin
    ensure t page;
    (* Committed records may still sit in the group-commit buffer; a
       repair source must be durable. *)
    flush t;
    let buf = ref None and lsn = ref 0 in
    (match Vec.get t.disk_img page with
    | Some img ->
        buf := Some (Bytes.copy img);
        lsn := Vec.get t.disk_lsn page
    | None -> ());
    let damaged = ref 0 in
    (match Vec.get t.image_marks page with
    | None -> ()
    | Some marks when
        Array.exists2 (fun m f -> m < f) marks t.trunc_marks ->
        (* The page's image record fell below the retention floor: its
           log span was released.  The durable image is still valid — a
           checkpoint hardened it before the floor could advance past
           the image record — so repair falls back to it alone. *)
        ()
    | Some marks ->
        let records, _, _, dmg = scan_committed t ~charge:true ~from:marks in
        damaged := dmg;
        List.iter
          (function
            | Image { lsn = l; page = p; img } when p = page ->
                buf := Some (Bytes.copy img);
                lsn := l
            | Delta { lsn = l; page = p; off; bytes } when p = page -> (
                match !buf with
                | Some b ->
                    Bytes.blit bytes 0 b off (Bytes.length bytes);
                    lsn := l
                | None -> ())
            | _ -> ())
          records);
    if !damaged > 0 then `Unrecoverable "log damaged: replay source incomplete"
    else
      match !buf with
      | None -> `Unrecoverable "no durable coverage"
      | Some b ->
          let dst = Page_store.bytes t.store page in
          if
            bad_sectors <> []
            && Page_store.header_lsn t.store page = !lsn
          then
            (* The intact sectors are verified bytes of the very version
               replay produced: patch only the damaged spans. *)
            List.iter
              (fun s ->
                let off = s * Page_store.sector_size in
                if off >= 0 && off < t.page_size then begin
                  let n = min Page_store.sector_size (t.page_size - off) in
                  Bytes.blit b off dst off n;
                  Counter.incr t.stats.repair_sectors
                end)
              bad_sectors
          else begin
            Bytes.blit b 0 dst 0 t.page_size;
            Counter.incr t.stats.repair_full
          end;
          set_disk_img t page dst;
          Vec.set t.disk_lsn page !lsn;
          Vec.set t.mem_lsn page !lsn;
          let disk, phys = Page_store.write_location t.store page in
          Disk_model.write t.data_disks ~disk ~phys;
          Page_store.stamp ~lsn:!lsn t.store page;
          `Repaired
  end

let tear_last_writeback t =
  if not t.crashed then
    invalid_arg "Wal.tear_last_writeback: machine still running";
  let page = t.last_writeback in
  if page = Page_store.nil then false
  else
    match Vec.get t.disk_img page with
    | None -> false
    | Some img ->
        (* Only sound if redo can rebuild the page from a full image in
           the replayable durable log; otherwise the write was already
           covered (fsynced) by a completed checkpoint. *)
        let records, _, _, _ = parse_durable t in
        let repairable =
          List.exists
            (function Image { page = p; _ } -> p = page | _ -> false)
            records
        in
        if not repairable then false
        else begin
          let half = t.page_size / 2 in
          Bytes.fill img half (t.page_size - half) '\000';
          Vec.set t.disk_lsn page (-1);
          Counter.incr t.stats.torn_pages;
          true
        end

(* ----------------------------- recovery ----------------------------- *)

let set_batched_redo t b = t.batched_redo <- b
let set_redo_coalescing t b = t.coalesce_redo <- b

let recover t =
  let t0 = Clock.now t.clock in
  Counter.incr t.stats.recoveries;
  Buffer_pool.drop_all t.pool;
  Sim.flush_cache t.sim;
  (* The machine reboots with exactly the durable disk contents.  Under
     shadow paging the recovery base supplies them: the page images the
     persisted indirection table reaches (the checkpointed generation),
     which also become the WAL's durable images going forward. *)
  let total = Page_store.total_pages t.store in
  ensure t total;
  (match t.recovery_base with
  | None ->
      for id = 1 to total do
        let b = Page_store.bytes t.store id in
        (match Vec.get t.disk_img id with
        | Some img -> Bytes.blit img 0 b 0 t.page_size
        | None -> Bytes.fill b 0 t.page_size '\000');
        Vec.set t.mem_lsn id (Vec.get t.disk_lsn id)
      done
  | Some base ->
      for id = 1 to total do
        let b = Page_store.bytes t.store id in
        match base.load_page id with
        | Some (img, lsn) ->
            Bytes.blit img 0 b 0 t.page_size;
            set_disk_img t id img;
            Vec.set t.disk_lsn id lsn;
            Vec.set t.mem_lsn id lsn
        | None ->
            Bytes.fill b 0 t.page_size '\000';
            Vec.set t.disk_img id None;
            Vec.set t.disk_lsn id 0;
            Vec.set t.mem_lsn id 0
      done);
  (* Scan the durable log from the last checkpoint (under shadow paging,
     from the cut the persisted generation covers): each log page read
     is charged through the fault schedule, with mirror fallback (and
     heal) on damage. *)
  let scan_from =
    match t.recovery_base with
    | Some base -> base.base_marks
    | None -> t.ckpt_marks
  in
  let records, scanned, torn, damaged =
    scan_committed t ~charge:true ~from:scan_from
  in
  (* Redo: re-apply records newer than the page's durable image. *)
  let committed = ref 0 and meta = ref [] in
  let redone = Hashtbl.create 64 in
  let nredo = ref 0 in
  List.iter
    (fun r ->
      match r with
      | Image { lsn; page; img } ->
          ensure t page;
          if lsn > Vec.get t.mem_lsn page then begin
            Bytes.blit img 0 (Page_store.bytes t.store page) 0 t.page_size;
            Vec.set t.mem_lsn page lsn;
            Hashtbl.replace redone page ();
            incr nredo
          end
      | Delta { lsn; page; off; bytes } ->
          ensure t page;
          if lsn > Vec.get t.mem_lsn page then begin
            Bytes.blit bytes 0
              (Page_store.bytes t.store page)
              off (Bytes.length bytes);
            Vec.set t.mem_lsn page lsn;
            Hashtbl.replace redone page ();
            incr nredo
          end
      | Commit { op; meta = m; _ } ->
          committed := op;
          meta := m
      | Checkpoint { op; meta = m; _ } ->
          committed := op;
          meta := m
      | Alloc _ | Free _ -> ())
    records;
  (* Write redone pages back and refresh their durable images.  Batched
     redo sorts the write-backs by (disk, phys), so physically adjacent
     pages go out as sequential I/O instead of seeking in redo order;
     recovery waits for the slowest disk either way. *)
  let redo_list = Hashtbl.fold (fun p () acc -> p :: acc) redone [] in
  let ordered =
    if t.batched_redo then
      List.sort
        (fun a b ->
          compare (Page_store.location t.store a)
            (Page_store.location t.store b))
        redo_list
    else redo_list
  in
  let locs =
    List.map
      (fun page ->
        set_disk_img t page (Page_store.bytes t.store page);
        Vec.set t.disk_lsn page (Vec.get t.mem_lsn page);
        Page_store.location t.store page)
      ordered
  in
  let wb_completion = ref (Clock.now t.clock) in
  if t.coalesce_redo then begin
    (* Merge physically adjacent pages on the same disk into one
       coalesced request: with batched redo sorting the list by
       (disk, phys) first, a replayed range of the tree goes out as a
       few large writes instead of one request per page. *)
    let rec runs = function
      | [] -> ()
      | (disk, phys) :: rest ->
          let rec extend n = function
            | (d2, p2) :: rest2 when d2 = disk && p2 = phys + n ->
                extend (n + 1) rest2
            | rest2 -> (n, rest2)
          in
          let n, rest = extend 1 rest in
          wb_completion :=
            max !wb_completion
              (Disk_model.write_run t.data_disks ~disk ~phys ~n ());
          runs rest
    in
    runs locs
  end
  else
    List.iter
      (fun (disk, phys) ->
        wb_completion :=
          max !wb_completion
            (Disk_model.write_sync t.data_disks ~disk ~phys ()))
      locs;
  Clock.advance_to t.clock !wb_completion;
  Counter.add t.stats.c_redo_records !nredo;
  Counter.add t.stats.c_redo_pages (Hashtbl.length redone);
  (* Restore the committed allocation map: the snapshot taken at the last
     durable checkpoint, advanced by the committed Alloc/Free records.
     Pages allocated by uncommitted operations (beyond the committed
     high-water mark, or allocated without a following commit) return to
     the free list zeroed, so a continued workload can reuse them. *)
  let snap_total, snap_free =
    match t.recovery_base with
    | Some base -> base.base_alloc
    | None -> t.alloc_snapshot
  in
  let free_set = Hashtbl.create 64 in
  List.iter (fun id -> Hashtbl.replace free_set id ()) snap_free;
  let committed_total = ref snap_total in
  List.iter
    (function
      | Alloc { page; _ } ->
          Hashtbl.remove free_set page;
          if page > !committed_total then committed_total := page
      | Free { page; _ } -> Hashtbl.replace free_set page ()
      | _ -> ())
    records;
  let free_ids = ref [] in
  for id = total downto 1 do
    if id > !committed_total || Hashtbl.mem free_set id then
      free_ids := id :: !free_ids
  done;
  Page_store.set_free_list t.store !free_ids;
  List.iter
    (fun id ->
      set_disk_img t id (Page_store.bytes t.store id);
      Vec.set t.disk_lsn id 0;
      Vec.set t.mem_lsn id 0)
    !free_ids;
  (* Every page's bytes were rewritten without going through a pool
     write-back: re-stamp all checksum headers so later reads verify. *)
  for id = 1 to total do
    Page_store.stamp ~lsn:(Vec.get t.mem_lsn id) t.store id
  done;
  (* Restart logging from a clean slate + fresh checkpoint. *)
  for id = 1 to total do
    Vec.set t.shadow id None;
    Vec.set t.image_marks id None
  done;
  Hashtbl.reset t.touched;
  Hashtbl.reset t.logged_since_ckpt;
  t.pending <- [];
  t.pending_bytes <- 0;
  t.sealed_bytes <- t.durable_len;
  for s = 0 to n_stripes t - 1 do
    t.stripe_sealed.(s) <- stripe_dlen t s
  done;
  t.crashed <- false;
  t.crash_at <- None;
  t.last_writeback <- Page_store.nil;
  t.last_op <- !committed;
  let marks = Array.copy t.stripe_sealed in
  append t (Checkpoint { lsn = fresh_lsn t; op = !committed; meta = !meta });
  flush t;
  t.ckpt_marks <- marks;
  t.alloc_snapshot <-
    (Page_store.total_pages t.store, Page_store.free_list t.store);
  let dt = Clock.now t.clock - t0 in
  Counter.add t.stats.c_recovery_ns dt;
  {
    committed_ops = !committed;
    meta = !meta;
    scanned_records = scanned;
    redo_records = !nredo;
    redo_pages = Hashtbl.length redone;
    free_pages = List.length !free_ids;
    torn_tail_bytes = torn;
    damaged_records = damaged;
    recovery_ns = dt;
  }

(* ----------------------------- lifecycle ---------------------------- *)

let attach ?(group_commit_bytes = 0) ?(log_base_images = false)
    ?(log_mirrors = 1) ?(log_stripes = 1) ?(first_lsn = 1) ~meta pool =
  if log_mirrors < 1 then invalid_arg "Wal.attach: log_mirrors < 1";
  if log_stripes < 1 then invalid_arg "Wal.attach: log_stripes < 1";
  if first_lsn < 1 then invalid_arg "Wal.attach: first_lsn < 1";
  let sim = Buffer_pool.sim pool in
  let store = Buffer_pool.store pool in
  let page_size = Page_store.page_size store in
  let t =
    {
      pool;
      store;
      clock = sim.Sim.clock;
      sim;
      data_disks = Buffer_pool.disks pool;
      log_disks =
        Disk_model.create
          ~transfer_ns:(Disk_model.transfer_ns_of_page_size page_size)
          ~n_disks:(log_stripes * log_mirrors) sim.Sim.clock;
      streams =
        Array.init log_stripes (fun _ ->
            Array.init log_mirrors (fun _ ->
                { data = Bytes.create 65536; len = 0 }));
      page_size;
      group_commit_bytes;
      pending = [];
      pending_bytes = 0;
      seal_seq = 0;
      stripe_sealed = Array.make log_stripes 0;
      durable_len = 0;
      sealed_bytes = 0;
      next_lsn = first_lsn;
      last_op = 0;
      ckpt_marks = Array.make log_stripes 0;
      trunc_marks = Array.make log_stripes 0;
      boundaries = [];
      batched_redo = true;
      coalesce_redo = true;
      shadow = Vec.create ~dummy:None;
      mem_lsn = Vec.create ~dummy:0;
      disk_img = Vec.create ~dummy:None;
      disk_lsn = Vec.create ~dummy:0;
      image_marks = Vec.create ~dummy:None;
      alloc_snapshot = (0, []);
      logged_since_ckpt = Hashtbl.create 256;
      touched = Hashtbl.create 64;
      last_writeback = Page_store.nil;
      crash_at = None;
      crashed = false;
      recovery_base = None;
      durable_obs = None;
      commit_barrier = None;
      pre_log = None;
      stats = make_stats ();
      commit_latency = Histogram.make "wal.commit_latency_ns";
      checkpoint_stall = Histogram.make "wal.checkpoint.stall_ns";
    }
  in
  (* Everything that exists at attach time is the durable base. *)
  Buffer_pool.flush_dirty pool;
  let total = Page_store.total_pages store in
  ensure t total;
  for id = 1 to total do
    Vec.set t.disk_img id (Some (Bytes.copy (Page_store.bytes store id)))
  done;
  t.alloc_snapshot <- (total, Page_store.free_list store);
  Buffer_pool.set_wal_hooks pool
    (Some
       {
         Buffer_pool.on_page_dirty = on_page_dirty t;
         before_page_write = before_page_write t;
         on_page_write = on_page_write t;
         on_page_alloc = on_page_alloc t;
         on_page_free = on_page_free t;
         page_lsn = page_lsn t;
       });
  Buffer_pool.set_repair pool
    (Some (fun page ~bad_sectors -> repair_page t ~bad_sectors page));
  if log_base_images then
    (* Give the log full-image coverage of the pages that predate it
       (e.g. a bulkloaded tree), so media repair never depends on state
       older than the log itself. *)
    Page_store.iter_live store (fun id ->
        Vec.set t.image_marks id (Some (Array.copy t.stripe_sealed));
        let lsn = fresh_lsn t in
        append t (Image { lsn; page = id; img = Page_store.bytes store id });
        Vec.set t.mem_lsn id lsn);
  append t (Checkpoint { lsn = fresh_lsn t; op = 0; meta });
  flush t;
  t

let detach t =
  Buffer_pool.set_wal_hooks t.pool None;
  Buffer_pool.set_repair t.pool None

(* ---------------------------- inspection ---------------------------- *)

let log_bytes t = t.sealed_bytes
let durable_bytes t = t.durable_len
let layout t = List.rev t.boundaries
let last_lsn t = t.next_lsn - 1
let record_lsn = lsn_of
let set_durable_observer t f = t.durable_obs <- f
let set_commit_barrier t f = t.commit_barrier <- f

let verify_images t =
  let total = Page_store.total_pages t.store in
  ensure t total;
  let bad = ref None in
  (try
     for id = 1 to total do
       let b = Page_store.bytes t.store id in
       match Vec.get t.disk_img id with
       | Some img ->
           if not (Bytes.equal img b) then begin
             bad :=
               Some
                 (Printf.sprintf "page %d: memory differs from durable image"
                    id);
             raise Exit
           end
       | None ->
           let zero = ref true in
           Bytes.iter (fun c -> if c <> '\000' then zero := false) b;
           if not !zero then begin
             bad :=
               Some
                 (Printf.sprintf
                    "page %d: no durable image but non-zero contents" id);
             raise Exit
           end
     done
   with Exit -> ());
  match !bad with None -> Ok () | Some m -> Error m

let commit_latency t = t.commit_latency
let kv t = List.map Counter.kv (stats_counters t.stats)

let reset_stats t =
  List.iter Counter.reset (stats_counters t.stats);
  Histogram.reset t.commit_latency;
  Histogram.reset t.checkpoint_stall
