(** Shadow-paging checkpoint & snapshot coordinator.

    Replaces the sharp checkpoint's whole-pool stall with a fuzzy
    protocol: {!checkpoint_begin} captures a cut (WAL marks + allocator
    state) and a worklist of lagging pages; {!checkpoint_tick} hardens a
    bounded number of them per call, interleaved with foreground
    operations; once the worklist drains, the {e flip} encodes the
    logical→physical indirection table, writes it to the non-live table
    slot and publishes it with one superblock sector write
    ({!Page_map}).  Only the flip stalls the writer
    ([ckpt.flip_stall_ns]).

    Copy-on-write protects the published image: the first write to a
    page after a flip relocates it to a fresh physical block whenever
    its current block is referenced by a retained table, so
    {!open_at_checkpoint} can serve an operation-consistent frozen image
    to long scans while updates — and further checkpoints — proceed
    beside it.

    {!recover} loads the newest valid (superblock, table) pair — a torn
    superblock or partial table write falls back to the previous
    generation — and replays the WAL only from that table's cut: replay
    is bounded by the work since the last flip.  With both superblocks
    unreadable, plain WAL recovery is the safety net. *)

type t

(** Crash-point injection at the flip boundaries (the crashtest sweep).
    Each fires once, crashes the WAL ({!Fpb_wal.Wal.crash_now}) and
    raises {!Fpb_wal.Wal.Crashed}. *)
type crash_point =
  | Writeback_partial of int
      (** crash after that many worklist pages hardened *)
  | Table_partial of int
      (** crash with only that many bytes of the shadow table written *)
  | Superblock_torn  (** crash with half the superblock sector written *)
  | After_flip
      (** table and superblock durable; crash before the WAL checkpoint
          record moves the replay start point *)

type stats = {
  begins : Fpb_obs.Counter.t;  (** [ckpt.begins] *)
  flips : Fpb_obs.Counter.t;  (** [ckpt.flips] *)
  hardened : Fpb_obs.Counter.t;  (** [ckpt.pages_hardened] *)
  captures : Fpb_obs.Counter.t;  (** [ckpt.captures] *)
  retired : Fpb_obs.Counter.t;  (** [ckpt.retired_gens] *)
  recoveries : Fpb_obs.Counter.t;  (** [ckpt.recoveries] *)
  plain_recoveries : Fpb_obs.Counter.t;  (** [ckpt.plain_recoveries] *)
  remaps : Fpb_obs.Counter.t;  (** [pagemap.remaps] *)
  blocks_allocated : Fpb_obs.Counter.t;  (** [pagemap.blocks_allocated] *)
  blocks_freed : Fpb_obs.Counter.t;  (** [pagemap.blocks_freed] *)
  snap_opens : Fpb_obs.Counter.t;  (** [snapshot.opens] *)
  snap_reads : Fpb_obs.Counter.t;  (** [snapshot.reads] *)
  snap_closes : Fpb_obs.Counter.t;  (** [snapshot.closes] *)
  yields : Fpb_obs.Counter.t;
      (** [ckpt.yields]: checkpoint ticks that hardened nothing because
          the backpressure probe reported foreground load *)
}

(** [attach ~meta wal pool] creates the metadata disk, installs the
    copy-on-write remapper on the page store and the pre-log observer on
    the WAL, and takes (synchronously) the initial checkpoint, so a
    consistent generation exists from the start.  The WAL must already
    be attached to [pool]. *)
val attach : meta:int list -> Fpb_wal.Wal.t -> Fpb_storage.Buffer_pool.t -> t

(** Remove the remapper and the observer. *)
val detach : t -> unit

(** {2 Fuzzy checkpoint} *)

(** Capture the cut (per-stripe WAL marks + allocator state) and the
    worklist (pool-dirty pages plus pages a deferred write-back left
    stale).  Raises [Invalid_argument] mid-operation or with a
    checkpoint already in progress. *)
val checkpoint_begin : t -> unit

(** Harden up to [pages] (default 8) worklist pages; once the worklist
    drains, flip.  Returns whether the checkpoint completed.  [meta] is
    the index root metadata to persist should this tick flip.  A page
    whose operation is still in flight goes to the back of the list and
    the tick yields.  While the backpressure probe (see
    {!set_backpressure}) reports foreground load the tick hardens
    nothing (counted under [ckpt.yields]); an already-drained worklist
    still flips — the flip is metadata-only. *)
val checkpoint_tick : ?pages:int -> t -> meta:int list -> bool

(** Install (or with [None] remove) a backpressure probe consulted by
    every {!checkpoint_tick}.  [true] means the foreground is loaded
    and the checkpoint's write-back I/O should yield.  Do not leave a
    permanently-true probe installed across {!checkpoint_sync} or
    {!recover} — their blocking drain would never finish. *)
val set_backpressure : t -> (unit -> bool) option -> unit

(** Begin + drain + flip in one blocking call. *)
val checkpoint_sync : t -> meta:int list -> unit

val checkpoint_in_progress : t -> bool

(** Worklist pages not yet hardened by the in-progress checkpoint. *)
val worklist_remaining : t -> int

(** {2 Snapshots} *)

type snapshot

(** Pin the newest flipped generation: its image stays readable — and
    its blocks unreclaimed — until {!close}.  Raises [Invalid_argument]
    before the first flip (attach always performs one). *)
val open_at_checkpoint : t -> snapshot

(** The page's committed-at-flip bytes (a fresh copy), charged as a read
    of its frozen physical block; [None] for a page outside the
    generation. *)
val read : snapshot -> int -> Bytes.t option

val close : snapshot -> unit
val snapshot_gen : snapshot -> int

(** Last committed operation number at the snapshot's flip. *)
val snapshot_op : snapshot -> int

(** Index root metadata at the snapshot's flip. *)
val snapshot_meta : snapshot -> int list

(** Newest LSN below the snapshot's cut: a consumer replaying a log on
    top of the snapshot starts with records after it (snapshot transfer
    for a lagging replica). *)
val snapshot_lsn : snapshot -> int

(** Allocator state (total pages, free list) at the snapshot's cut. *)
val snapshot_alloc : snapshot -> int * int list

(** Pages the generation covers (ids [1..n]). *)
val snapshot_pages : snapshot -> int

(** {2 Crash & recovery} *)

(** Arm (or disarm) a one-shot crash point. *)
val set_crash_point : t -> crash_point option -> unit

(** Reboot from the durable state: load the newest valid (superblock,
    table) pair, restore the checkpointed mapping, replay the WAL from
    the loaded cut, rebuild the free-block lists, and re-baseline with a
    fresh synchronous checkpoint.  Returns the WAL's recovery report
    with [recovery_ns] covering the whole pass. *)
val recover : t -> Fpb_wal.Wal.recovery

(** {2 Introspection} *)

val wal : t -> Fpb_wal.Wal.t

(** The persistence layer, for damage injection and [pagemap.*]
    counters. *)
val map : t -> Page_map.t

(** Generation the NEXT flip will publish. *)
val current_generation : t -> int

(** Retained generation numbers, newest first. *)
val retained_generations : t -> int list

(** Newest LSN below the oldest retained generation's cut — the LSN form
    of the retention floor every flip advances via
    {!Fpb_wal.Wal.truncate_to} (0 before any flip).  Log records at or
    below it may be unreadable; a replica lagging past it must bootstrap
    from a snapshot. *)
val retention_lsn : t -> int

(** Flip-stall distribution ([ckpt.flip_stall_ns]): simulated time each
    flip blocked its caller. *)
val flip_stall : t -> Fpb_obs.Histogram.t

val stats : t -> stats
val counters : t -> Fpb_obs.Counter.t list

(** [ckpt.*], [snapshot.*] and [pagemap.*] counter values. *)
val kv : t -> (string * int) list

val reset_stats : t -> unit
