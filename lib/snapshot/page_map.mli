(** Persistence layer of the shadow-paging subsystem: the logical→physical
    indirection table and the superblock that names the live generation,
    stored dual-slotted on a dedicated metadata disk.

    A checkpoint generation [G] writes its encoded table to table slot
    [G land 1] (the slot the previous generation does {e not} occupy) and
    then flips by writing one fixed-size superblock sector — also slot
    [G land 1] — naming the generation, the table's slot, its length and
    its CRC-32.  A crash mid-table-write can only damage a superseded
    slot; a torn superblock fails its own CRC and {!load} falls back to
    the other sector, i.e. the previous complete generation.  All I/O is
    charged to the simulated clock, so the flip's durability wait is real
    simulated time. *)

(** One table entry: where logical page [id] (the array index) lives and
    the LSN its durable image there reflects. *)
type entry = { disk : int; phys : int; lsn : int }

(** A complete checkpointed indirection table. *)
type table = {
  gen : int;  (** generation number, monotonically increasing *)
  entries : entry array;  (** index = page id; slot 0 is a dummy *)
  marks : int array;  (** per-stripe WAL offsets of the checkpoint's cut *)
  alloc : int * int list;  (** (total pages, free list) at the cut *)
  op : int;  (** last committed operation at the flip *)
  meta : int list;  (** index root metadata at the flip *)
}

(** Damage target for the chaos harness: a table slot or a superblock
    sector (0 or 1). *)
type target = Table of int | Superblock of int

type damage =
  | Zero_span of { off : int; len : int }
  | Flip_bit of { off : int; bit : int }

type t

val create : page_size:int -> Fpb_simmem.Clock.t -> t

(** Serialize a table: little-endian 32-bit fields, magic-framed, with a
    trailing CRC-32 of the body. *)
val encode_table : table -> Bytes.t

(** CRC-32 stored in a table blob's trailer (recorded redundantly in the
    superblock so a blob can never be paired with the wrong one). *)
val table_crc : Bytes.t -> int

(** Decode the table blob occupying the first [len] bytes of the buffer;
    [None] on any framing, bounds or checksum violation. *)
val decode_table : Bytes.t -> len:int -> table option

(** Write [blob] into table slot [slot], charged as one coalesced
    sequential write and waited for.  [len] (crash injection) persists
    only that prefix, leaving the slot's previous bytes beyond it — a
    torn multi-sector write. *)
val write_table : t -> slot:int -> ?len:int -> Bytes.t -> unit

(** Flip: write generation [gen]'s superblock to sector [gen land 1] and
    wait for it.  [torn] (crash injection) persists only the first half
    of the sector, so its CRC cannot validate. *)
val write_superblock :
  t -> gen:int -> slot:int -> table_len:int -> crc:int -> ?torn:bool ->
  unit -> unit

(** Read back the live generation: both superblocks, candidates ordered
    by generation descending, each validated (superblock CRC, table
    decode, table CRC, generation cross-check) before being trusted.
    Returns the newest valid table and how many candidates were stepped
    past ([pagemap.superblock_fallbacks]); [None] when neither slot holds
    a valid (superblock, table) pair — recover from the WAL alone. *)
val load : t -> (table * int) option

(** Deterministically rot persisted metadata bytes in place (the chaos
    harness's superblock/table-region fault leg).  No-op on a slot never
    written. *)
val inject_damage : t -> target -> damage -> unit

(** The metadata disk, for inspecting its [disk.*] counters. *)
val meta_disks : t -> Fpb_storage.Disk_model.t

(** The [pagemap.*] counters. *)
val counters : t -> Fpb_obs.Counter.t list

val kv : t -> (string * int) list
val reset_stats : t -> unit
