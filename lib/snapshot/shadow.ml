(* Shadow-paging checkpoint & snapshot coordinator.

   The classic sharp checkpoint ([Wal.checkpoint]) stalls every writer
   for a whole-pool write-back plus a data-durability barrier.  This
   layer replaces it with a fuzzy protocol in the shadow-paging
   tradition (System R's shadow pages, LFS-style relocation, the
   ZFS/WAFL "uberblock" flip):

   - {b begin} captures a cut — the WAL's per-stripe marks plus the
     allocator state — and a worklist of every page whose durable image
     lags its newest committed state (pool-dirty pages and pages a
     deferred write-back left stale);
   - {b tick} hardens a bounded number of worklist pages per call
     ([Wal.harden_page]), interleaved with foreground operations —
     writers never wait for the pass;
   - {b flip}, once the worklist drains, encodes the logical→physical
     indirection table, writes it to the non-live table slot, and
     publishes it with one superblock sector write ({!Page_map}); only
     this final step stalls the writer, and it is a handful of
     sequential metadata writes, not a pool drain.

   Copy-on-write keeps the flipped image intact: the {!Page_store}
   remapper relocates a page to a fresh physical block on its first
   write after a flip whenever its current block is referenced by a
   retained table ([table_refs]), so checkpointed blocks are never
   overwritten in place.  Blocks are reclaimed when the last retaining
   generation retires.

   Generation content is frozen lazily.  At flip time only the pages
   whose durable images lag the flip have their committed bytes copied
   ([Wal.committed_image]); afterwards the WAL's pre-log observer hands
   the layer each page's pre-update committed content on its first
   post-flip logging.  Because flips happen between operations and every
   operation logs its pages at commit, both sources yield exactly the
   committed-at-flip bytes, so a {!snapshot} opened at a checkpoint
   reads an operation-consistent image while updates (and further
   checkpoints) proceed beside it.  Pages never logged after the flip
   fall back to the WAL's current durable image, which is then
   content-identical to the flip-time state.

   Recovery ({!recover}) loads the newest valid (superblock, table) pair
   — a torn superblock or partially written table falls back to the
   previous generation — restores the checkpointed mapping, and replays
   the WAL only from the loaded table's cut: replay is bounded by the
   work since the last flip, not the log's full history.  If neither
   superblock is readable, plain WAL recovery is the safety net. *)

open Fpb_simmem
open Fpb_storage
module Wal = Fpb_wal.Wal
module Counter = Fpb_obs.Counter
module Histogram = Fpb_obs.Histogram

(* A retained checkpoint generation: its persisted table entries plus
   the lazily frozen committed-at-flip page images.  [images] stands in
   for reading the generation's frozen physical blocks (the store keeps
   only logical bytes); copy-on-write guarantees those blocks still hold
   these bytes on disk. *)
type gen_state = {
  gen : int;
  entries : Page_map.entry array;
  images : (int, Bytes.t * int) Hashtbl.t;
  marks : int array;
  cut_lsn : int;  (* newest LSN below the cut: replay starts after it *)
  alloc : int * int list;
  op : int;
  meta : int list;
  mutable pins : int;
}

(* An in-progress fuzzy checkpoint between [checkpoint_begin] and its
   flip. *)
type progress = {
  cut_marks : int array;
  cut_lsn : int;
  cut_alloc : int * int list;
  mutable worklist : int list;
  mutable hardened : int;
}

type crash_point =
  | Writeback_partial of int
      (** crash after that many worklist pages hardened *)
  | Table_partial of int
      (** crash with only that many bytes of the shadow table written *)
  | Superblock_torn  (** crash with half the superblock sector written *)
  | After_flip
      (** table and superblock durable; crash before the WAL checkpoint
          record moves the replay start point *)

type stats = {
  begins : Counter.t;  (* ckpt.begins *)
  flips : Counter.t;  (* ckpt.flips *)
  hardened : Counter.t;  (* ckpt.pages_hardened *)
  captures : Counter.t;  (* ckpt.captures *)
  retired : Counter.t;  (* ckpt.retired_gens *)
  recoveries : Counter.t;  (* ckpt.recoveries *)
  plain_recoveries : Counter.t;  (* ckpt.plain_recoveries *)
  remaps : Counter.t;  (* pagemap.remaps *)
  blocks_allocated : Counter.t;  (* pagemap.blocks_allocated *)
  blocks_freed : Counter.t;  (* pagemap.blocks_freed *)
  snap_opens : Counter.t;  (* snapshot.opens *)
  snap_reads : Counter.t;  (* snapshot.reads *)
  snap_closes : Counter.t;  (* snapshot.closes *)
  yields : Counter.t;  (* ckpt.yields *)
}

type t = {
  wal : Wal.t;
  pool : Buffer_pool.t;
  store : Page_store.t;
  clock : Clock.t;
  map : Page_map.t;
  mutable current_gen : int;
  page_gen : (int, int) Hashtbl.t;  (* page -> last generation remapped *)
  table_refs : (int * int, int) Hashtbl.t;
      (* (disk, phys) -> number of retained tables referencing it *)
  mutable retained : gen_state list;  (* newest first *)
  mutable progress : progress option;
  mutable crash_point : crash_point option;
  mutable backpressure : (unit -> bool) option;
  flip_stall : Histogram.t;  (* ckpt.flip_stall_ns *)
  stats : stats;
}

(* How many recent generations stay retained beyond pinned snapshots:
   the current one (recovery's base) plus its predecessor (the fallback
   when the newest superblock or table is damaged). *)
let keep_gens = 2

(* ----------------------- copy-on-write remapping --------------------- *)

(* First write to a page after a flip: if its current block is
   referenced by a retained table, relocate the page to a fresh block on
   the same disk so the checkpointed image survives; otherwise nothing
   frozen lives there and the write may proceed in place.  Runs from
   [Page_store.write_location] on every disk-write path. *)
let remap t id =
  let g = try Hashtbl.find t.page_gen id with Not_found -> 0 in
  if g < t.current_gen then begin
    Hashtbl.replace t.page_gen id t.current_gen;
    let disk, phys = Page_store.location t.store id in
    if Hashtbl.mem t.table_refs (disk, phys) then begin
      let phys' = Page_store.alloc_block t.store ~disk in
      Page_store.relocate t.store id ~disk ~phys:phys';
      Counter.incr t.stats.remaps;
      Counter.incr t.stats.blocks_allocated
    end
  end

(* WAL pre-log observer: the page's pre-update committed content, fired
   on its first logging of each commit.  Freeze it into every retained
   generation that does not have the page yet — flips happen between
   operations, so this is exactly the page's committed-at-flip state.
   One copy is shared across generations (images are never mutated). *)
let capture t page pre =
  match t.retained with
  | [] -> ()
  | retained ->
      let copied = ref None in
      List.iter
        (fun st ->
          if
            page < Array.length st.entries
            && not (Hashtbl.mem st.images page)
          then begin
            (match !copied with
            | Some _ -> ()
            | None ->
                copied :=
                  Some
                    (match pre with
                    | Some (b, lsn) -> Some (Bytes.copy b, lsn)
                    | None -> None));
            match !copied with
            | Some (Some img) ->
                Hashtbl.replace st.images page img;
                Counter.incr t.stats.captures
            | _ -> ()
          end)
        retained

(* --------------------------- gen retirement -------------------------- *)

(* Drop one retained generation's block references; a block whose last
   reference goes away is reusable unless it is still some page's
   current location (the page was never rewritten after that flip). *)
let release_gen t st =
  Array.iteri
    (fun id e ->
      if id > 0 then begin
        let key = (e.Page_map.disk, e.Page_map.phys) in
        match Hashtbl.find_opt t.table_refs key with
        | None -> ()
        | Some 1 ->
            Hashtbl.remove t.table_refs key;
            if Page_store.location t.store id <> key then begin
              Page_store.free_block t.store ~disk:e.Page_map.disk
                ~phys:e.Page_map.phys;
              Counter.incr t.stats.blocks_freed
            end
        | Some n -> Hashtbl.replace t.table_refs key (n - 1)
      end)
    st.entries

let retire_unpinned t =
  let rec go i = function
    | [] -> []
    | st :: rest ->
        if i < keep_gens || st.pins > 0 then st :: go (i + 1) rest
        else begin
          release_gen t st;
          Counter.incr t.stats.retired;
          go (i + 1) rest
        end
  in
  t.retained <- go 0 t.retained

(* --------------------------- the checkpoint -------------------------- *)

let checkpoint_in_progress t = t.progress <> None

let worklist_remaining t =
  match t.progress with None -> 0 | Some p -> List.length p.worklist

(* Capture the cut and the worklist.  The flush first makes every
   acknowledged commit durable before the cut marks freeze, so a scan
   from the cut covers exactly the later records. *)
let checkpoint_begin t =
  (match t.progress with
  | Some _ -> invalid_arg "Shadow.checkpoint_begin: checkpoint in progress"
  | None -> ());
  if Wal.in_operation t.wal then
    invalid_arg "Shadow.checkpoint_begin: called mid-operation";
  Wal.flush t.wal;
  let cut_marks = Wal.current_marks t.wal in
  let cut_lsn = Wal.last_lsn t.wal in
  let cut_alloc =
    (Page_store.total_pages t.store, Page_store.free_list t.store)
  in
  let worklist =
    List.sort_uniq compare
      (Buffer_pool.dirty_pages t.pool @ Wal.stale_pages t.wal)
  in
  t.progress <- Some { cut_marks; cut_lsn; cut_alloc; worklist; hardened = 0 };
  Counter.incr t.stats.begins

(* The only stalling step: freeze committed content for pages whose
   durable images lag the flip, encode the indirection table from the
   current locations, write it to the non-live slot, publish it with one
   superblock write, and move the WAL's replay start point to the cut. *)
let flip t ~meta =
  let p =
    match t.progress with
    | Some p -> p
    | None -> invalid_arg "Shadow.flip: no checkpoint in progress"
  in
  let t0 = Clock.now t.clock in
  let images = Hashtbl.create 32 in
  let lagging =
    List.sort_uniq compare
      (Buffer_pool.dirty_pages t.pool @ Wal.stale_pages t.wal)
  in
  List.iter
    (fun pg ->
      match Wal.committed_image t.wal pg with
      | Some img ->
          Hashtbl.replace images pg img;
          Counter.incr t.stats.captures
      | None -> ())
    lagging;
  let total = Page_store.total_pages t.store in
  let entries =
    Array.init (total + 1) (fun id ->
        if id = 0 then { Page_map.disk = -1; phys = -1; lsn = 0 }
        else
          let disk, phys = Page_store.location t.store id in
          { Page_map.disk; phys; lsn = Wal.page_durable_lsn t.wal id })
  in
  let gen = t.current_gen in
  let op = Wal.last_committed_op t.wal in
  let tb =
    {
      Page_map.gen; entries; marks = p.cut_marks; alloc = p.cut_alloc;
      op; meta;
    }
  in
  let blob = Page_map.encode_table tb in
  let slot = gen land 1 in
  (match t.crash_point with
  | Some (Table_partial n) ->
      t.crash_point <- None;
      Page_map.write_table t.map ~slot ~len:n blob;
      Wal.crash_now t.wal;
      raise Wal.Crashed
  | _ -> Page_map.write_table t.map ~slot blob);
  let table_len = Bytes.length blob in
  let crc = Page_map.table_crc blob in
  (match t.crash_point with
  | Some Superblock_torn ->
      t.crash_point <- None;
      Page_map.write_superblock t.map ~gen ~slot ~table_len ~crc ~torn:true ();
      Wal.crash_now t.wal;
      raise Wal.Crashed
  | _ -> Page_map.write_superblock t.map ~gen ~slot ~table_len ~crc ());
  (match t.crash_point with
  | Some After_flip ->
      t.crash_point <- None;
      Wal.crash_now t.wal;
      raise Wal.Crashed
  | _ -> ());
  (* Replay now starts at the cut; everything the fuzzy pass did not
     harden is covered by records after it. *)
  Wal.external_checkpoint t.wal ~marks:p.cut_marks ~alloc:p.cut_alloc ~meta;
  let st =
    { gen; entries; images; marks = p.cut_marks; cut_lsn = p.cut_lsn;
      alloc = p.cut_alloc; op; meta; pins = 0 }
  in
  Array.iteri
    (fun id e ->
      if id > 0 then begin
        let key = (e.Page_map.disk, e.Page_map.phys) in
        Hashtbl.replace t.table_refs key
          (1 + Option.value ~default:0 (Hashtbl.find_opt t.table_refs key))
      end)
    entries;
  t.retained <- st :: t.retained;
  retire_unpinned t;
  (* Log retention: everything below the *oldest* retained generation's
     cut is no longer needed by anyone — recovery starts at the newest
     cut, fallback recovery one generation back, snapshot replay at a
     pinned generation's cut — so the flip advances the WAL's retention
     floor to it and the released log space is reclaimed. *)
  (match List.rev t.retained with
  | oldest :: _ -> ignore (Wal.truncate_to t.wal ~marks:oldest.marks : int)
  | [] -> ());
  t.current_gen <- gen + 1;
  t.progress <- None;
  Counter.incr t.stats.flips;
  Histogram.record t.flip_stall (Clock.now t.clock - t0)

(* Harden up to [pages] worklist pages; once the worklist drains, flip.
   Returns whether the checkpoint completed.  A page that cannot harden
   yet (its operation is still in flight) goes to the back of the list
   and the tick yields. *)
let checkpoint_tick ?(pages = 8) t ~meta =
  match t.progress with
  | None -> invalid_arg "Shadow.checkpoint_tick: no checkpoint in progress"
  | Some p ->
      (* Under foreground backpressure the tick hardens nothing — the
         checkpoint's write-back I/O is exactly what a loaded system
         should stop paying for — but a worklist that is already empty
         still flips: the flip is metadata-only and holding it open
         would delay the recovery-start advance for no I/O saved. *)
      let yielding =
        match t.backpressure with None -> false | Some f -> f ()
      in
      if yielding then Counter.incr t.stats.yields;
      let budget = ref (if yielding then 0 else pages) in
      let blocked = ref false in
      while (not !blocked) && !budget > 0 && p.worklist <> [] do
        match p.worklist with
        | [] -> ()
        | page :: rest ->
            if Wal.harden_page t.wal page then begin
              p.worklist <- rest;
              p.hardened <- p.hardened + 1;
              Counter.incr t.stats.hardened;
              decr budget;
              match t.crash_point with
              | Some (Writeback_partial n) when p.hardened >= n ->
                  t.crash_point <- None;
                  Wal.crash_now t.wal;
                  raise Wal.Crashed
              | _ -> ()
            end
            else begin
              p.worklist <- rest @ [ page ];
              blocked := true
            end
      done;
      if p.worklist = [] then begin
        flip t ~meta;
        true
      end
      else false

(* Begin + drain + flip in one blocking call: the initial checkpoint at
   attach, and the post-recovery re-baseline. *)
let checkpoint_sync t ~meta =
  checkpoint_begin t;
  while not (checkpoint_tick ~pages:max_int t ~meta) do
    ()
  done

(* ------------------------------ snapshots ---------------------------- *)

type snapshot = { owner : t; st : gen_state; mutable closed : bool }

let open_at_checkpoint t =
  match t.retained with
  | [] -> invalid_arg "Shadow.open_at_checkpoint: no checkpoint yet"
  | st :: _ ->
      st.pins <- st.pins + 1;
      Counter.incr t.stats.snap_opens;
      { owner = t; st; closed = false }

let snapshot_gen s = s.st.gen
let snapshot_op s = s.st.op
let snapshot_meta s = s.st.meta
let snapshot_lsn s = s.st.cut_lsn
let snapshot_alloc s = s.st.alloc
let snapshot_pages s = Array.length s.st.entries - 1

(* The page's committed-at-flip bytes (a fresh copy), charged as a read
   of its frozen physical block; [None] for a page outside the
   generation (allocated after the flip) or never materialised in it. *)
let read s page =
  if s.closed then invalid_arg "Shadow.read: snapshot closed";
  let t = s.owner in
  if page <= 0 || page >= Array.length s.st.entries then None
  else begin
    Counter.incr t.stats.snap_reads;
    let e = s.st.entries.(page) in
    let done_at =
      Disk_model.read (Buffer_pool.disks t.pool) ~disk:e.Page_map.disk
        ~phys:e.Page_map.phys ()
    in
    Clock.advance_to t.clock done_at;
    match Hashtbl.find_opt s.st.images page with
    | Some (b, _) -> Some (Bytes.copy b)
    | None -> (
        (* never logged since the flip: the current durable image still
           holds the flip-time bytes (write-backs of an untouched page
           are content-identical) *)
        match Wal.durable_image t.wal page with
        | Some (b, _) -> Some b
        | None -> None)
  end

let close s =
  if not s.closed then begin
    s.closed <- true;
    s.st.pins <- s.st.pins - 1;
    Counter.incr s.owner.stats.snap_closes;
    retire_unpinned s.owner
  end

(* ------------------------------ recovery ----------------------------- *)

let set_crash_point t cp = t.crash_point <- cp

(* Reboot from the durable state: load the newest valid (superblock,
   table) pair — stepping back a generation past any damage — restore
   the checkpointed mapping, replay the WAL from the table's cut, then
   re-baseline with a fresh checkpoint.  With both superblocks
   unreadable, plain WAL recovery is the safety net. *)
let recover t =
  let t0 = Clock.now t.clock in
  Page_store.set_remapper t.store None;
  t.progress <- None;
  t.crash_point <- None;
  let result =
    match Page_map.load t.map with
    | Some (tb, _fallbacks) ->
        Counter.incr t.stats.recoveries;
        (* the loaded generation's frozen images: its retained state if we
           still hold it (the simulation's stand-in for reading the
           frozen blocks, which copy-on-write kept intact) *)
        let images =
          match
            List.find_opt (fun st -> st.gen = tb.Page_map.gen) t.retained
          with
          | Some st -> st.images
          | None -> Hashtbl.create 0
        in
        let total = Page_store.total_pages t.store in
        Array.iteri
          (fun id e ->
            if id > 0 && id <= total then
              Page_store.relocate t.store id ~disk:e.Page_map.disk
                ~phys:e.Page_map.phys)
          tb.Page_map.entries;
        let load_page id =
          if id >= Array.length tb.Page_map.entries then None
          else
            match Hashtbl.find_opt images id with
            | Some (b, lsn) -> Some (b, lsn)
            | None -> Wal.durable_image t.wal id
        in
        Wal.set_recovery_base t.wal
          (Some
             {
               Wal.load_page;
               base_marks = tb.Page_map.marks;
               base_alloc = tb.Page_map.alloc;
             });
        let r = Wal.recover t.wal in
        Wal.set_recovery_base t.wal None;
        t.current_gen <- tb.Page_map.gen + 1;
        (* a crash between the superblock flip and the WAL checkpoint
           record can leave no post-cut commit to scan: the table itself
           then carries the newest committed operation *)
        if r.Wal.committed_ops >= tb.Page_map.op then r
        else
          { r with Wal.committed_ops = tb.Page_map.op; meta = tb.Page_map.meta }
    | None ->
        Counter.incr t.stats.plain_recoveries;
        Wal.set_recovery_base t.wal None;
        let r = Wal.recover t.wal in
        t.current_gen <- t.current_gen + 1;
        r
  in
  (* block refcounts and generation images died with the machine; the
     free-block lists rebuild from the restored mapping *)
  Page_store.rebuild_free_blocks t.store;
  Hashtbl.reset t.table_refs;
  Hashtbl.reset t.page_gen;
  t.retained <- [];
  Page_store.set_remapper t.store (Some (fun id -> remap t id));
  checkpoint_sync t ~meta:result.Wal.meta;
  { result with Wal.recovery_ns = Clock.now t.clock - t0 }

(* ------------------------------ lifecycle ---------------------------- *)

let attach ~meta wal pool =
  let store = Buffer_pool.store pool in
  let sim = Buffer_pool.sim pool in
  let clock = sim.Sim.clock in
  let t =
    {
      wal;
      pool;
      store;
      clock;
      map = Page_map.create ~page_size:(Page_store.page_size store) clock;
      current_gen = 1;
      page_gen = Hashtbl.create 256;
      table_refs = Hashtbl.create 256;
      retained = [];
      progress = None;
      crash_point = None;
      backpressure = None;
      flip_stall = Histogram.make "ckpt.flip_stall_ns";
      stats =
        {
          begins = Counter.make "ckpt.begins";
          flips = Counter.make "ckpt.flips";
          hardened = Counter.make "ckpt.pages_hardened";
          captures = Counter.make "ckpt.captures";
          retired = Counter.make "ckpt.retired_gens";
          recoveries = Counter.make "ckpt.recoveries";
          plain_recoveries = Counter.make "ckpt.plain_recoveries";
          remaps = Counter.make "pagemap.remaps";
          blocks_allocated = Counter.make "pagemap.blocks_allocated";
          blocks_freed = Counter.make "pagemap.blocks_freed";
          snap_opens = Counter.make "snapshot.opens";
          snap_reads = Counter.make "snapshot.reads";
          snap_closes = Counter.make "snapshot.closes";
          yields = Counter.make "ckpt.yields";
        };
    }
  in
  Page_store.set_remapper store (Some (fun id -> remap t id));
  Wal.set_pre_log_observer wal (Some (fun page pre -> capture t page pre));
  checkpoint_sync t ~meta;
  t

let detach t =
  Page_store.set_remapper t.store None;
  Wal.set_pre_log_observer t.wal None

let wal t = t.wal
let map t = t.map
let set_backpressure t f = t.backpressure <- f
let current_generation t = t.current_gen
let retained_generations t = List.map (fun st -> st.gen) t.retained

(* Newest LSN below the oldest retained generation's cut: log records at
   or below it fall under the retention floor (0 before any flip).  A
   shipping archive may trim itself to this — a replica lagging past it
   must bootstrap from a snapshot instead of log replay. *)
let retention_lsn t =
  match List.rev t.retained with [] -> 0 | oldest :: _ -> oldest.cut_lsn
let flip_stall t = t.flip_stall
let stats t = t.stats

let counters t =
  [
    t.stats.begins; t.stats.flips; t.stats.hardened; t.stats.captures;
    t.stats.retired; t.stats.recoveries; t.stats.plain_recoveries;
    t.stats.remaps; t.stats.blocks_allocated; t.stats.blocks_freed;
    t.stats.snap_opens; t.stats.snap_reads; t.stats.snap_closes;
    t.stats.yields;
  ]

let kv t = List.map Counter.kv (counters t) @ Page_map.kv t.map

let reset_stats t =
  List.iter Counter.reset (counters t);
  Histogram.reset t.flip_stall;
  Page_map.reset_stats t.map
