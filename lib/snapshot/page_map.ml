(* Persistence layer of the shadow-paging subsystem: two on-disk
   indirection-table slots plus two superblock sectors on a dedicated
   metadata disk, in the style of the betrfs tla-tree design.

   A checkpoint generation G persists as:

   - its encoded indirection table (logical page -> physical block, plus
     the WAL cut marks, the allocator state at the cut, and the index
     root metadata), written to table slot [G land 1] — always the slot
     the PREVIOUS generation does NOT occupy, so a crash mid-write can
     only damage a table that was already superseded twice over;
   - a fixed-size superblock naming the generation, its slot, the table
     blob's length and CRC-32, written to superblock sector [G land 1] —
     one sector, so the flip is as atomic as a disk write gets: a torn
     superblock fails its CRC and recovery falls back to the other
     sector (the previous generation).

   Everything is length-framed and CRC-32-guarded; [load] never trusts a
   byte it cannot checksum.  Reads and writes are charged to the
   simulated clock through a one-disk {!Fpb_storage.Disk_model}, so the
   flip's durability wait is real simulated time.  [inject_damage] rots
   persisted bytes deterministically for the chaos harness. *)

open Fpb_simmem
open Fpb_storage
module Counter = Fpb_obs.Counter

type entry = { disk : int; phys : int; lsn : int }

type table = {
  gen : int;
  entries : entry array;  (* index = page id; slot 0 is a dummy *)
  marks : int array;  (* per-stripe WAL offsets of the checkpoint's cut *)
  alloc : int * int list;  (* (total pages, free list) at the cut *)
  op : int;  (* last committed operation at the flip *)
  meta : int list;  (* index root metadata at the flip *)
}

type target = Table of int | Superblock of int

type damage =
  | Zero_span of { off : int; len : int }
  | Flip_bit of { off : int; bit : int }

type stats = {
  table_writes : Counter.t;
  table_bytes : Counter.t;
  sb_writes : Counter.t;
  loads : Counter.t;
  sb_fallbacks : Counter.t;
}

(* Physical layout on the metadata disk (in pages): each table slot owns
   a fixed region, superblocks sit above both. *)
let slot_region_pages = 1 lsl 20
let sb_phys slot = (2 * slot_region_pages) + slot

type t = {
  clock : Clock.t;
  disks : Disk_model.t;  (* one metadata disk *)
  page_size : int;
  slots : Bytes.t option array;  (* 2 persisted table blobs *)
  sbs : Bytes.t option array;  (* 2 persisted superblock sectors *)
  stats : stats;
}

let create ~page_size clock =
  {
    clock;
    disks =
      Disk_model.create
        ~transfer_ns:(Disk_model.transfer_ns_of_page_size page_size)
        ~n_disks:1 clock;
    page_size;
    slots = [| None; None |];
    sbs = [| None; None |];
    stats =
      {
        table_writes = Counter.make "pagemap.table_writes";
        table_bytes = Counter.make "pagemap.table_bytes";
        sb_writes = Counter.make "pagemap.superblock_writes";
        loads = Counter.make "pagemap.loads";
        sb_fallbacks = Counter.make "pagemap.superblock_fallbacks";
      };
  }

(* ------------------------------ codecs ------------------------------- *)

let table_magic = 0x46504254 (* "FPBT" *)
let sb_magic = 0x46504253 (* "FPBS" *)

let add_i32 b v = Buffer.add_int32_le b (Int32.of_int v)
let get_i32 b pos = Int32.to_int (Bytes.get_int32_le b pos)

let encode_table tb =
  let b = Buffer.create 4096 in
  add_i32 b table_magic;
  add_i32 b tb.gen;
  add_i32 b (Array.length tb.marks);
  Array.iter (add_i32 b) tb.marks;
  let total, free = tb.alloc in
  add_i32 b total;
  add_i32 b (List.length free);
  List.iter (add_i32 b) free;
  add_i32 b tb.op;
  add_i32 b (List.length tb.meta);
  List.iter (add_i32 b) tb.meta;
  add_i32 b (Array.length tb.entries);
  Array.iter
    (fun e ->
      add_i32 b e.disk;
      add_i32 b e.phys;
      add_i32 b e.lsn)
    tb.entries;
  let body = Buffer.to_bytes b in
  let framed = Buffer.create (Bytes.length body + 4) in
  Buffer.add_bytes framed body;
  add_i32 framed (Checksum.update 0 body 0 (Bytes.length body));
  Buffer.to_bytes framed

let table_crc blob =
  (* CRC of the body, i.e. the blob minus its own trailing checksum —
     stored redundantly in the superblock so a table blob can never be
     paired with the wrong superblock. *)
  get_i32 blob (Bytes.length blob - 4) land 0xffffffff

(* Decode a table blob of exactly [len] bytes at the start of [b];
   [None] on any framing, bounds or checksum violation. *)
let decode_table b ~len =
  if len < 8 || len > Bytes.length b then None
  else
    let body_len = len - 4 in
    let sum = get_i32 b body_len land 0xffffffff in
    if sum <> Checksum.update 0 b 0 body_len then None
    else begin
      let pos = ref 0 in
      let ok = ref true in
      let i32 () =
        if !pos + 4 > body_len then begin
          ok := false;
          0
        end
        else begin
          let v = get_i32 b !pos in
          pos := !pos + 4;
          v
        end
      in
      (* A count that passed the CRC is trustworthy; the bound only guards
         allocation size against the astronomically unlikely collision. *)
      let count limit =
        let n = i32 () in
        if n < 0 || n > limit then begin
          ok := false;
          0
        end
        else n
      in
      let ints n =
        let acc = ref [] in
        for _ = 1 to n do
          acc := i32 () :: !acc
        done;
        List.rev !acc
      in
      let magic = i32 () in
      let gen = i32 () in
      let n_marks = count 4096 in
      let marks = Array.make n_marks 0 in
      for i = 0 to n_marks - 1 do
        marks.(i) <- i32 ()
      done;
      let total = i32 () in
      let free = ints (count body_len) in
      let op = i32 () in
      let meta = ints (count body_len) in
      let n_entries = count (body_len / 12) in
      let entries = Array.make n_entries { disk = 0; phys = 0; lsn = 0 } in
      for i = 0 to n_entries - 1 do
        let disk = i32 () in
        let phys = i32 () in
        let lsn = i32 () in
        entries.(i) <- { disk; phys; lsn }
      done;
      if (not !ok) || magic <> table_magic then None
      else Some { gen; entries; marks; alloc = (total, free); op; meta }
    end

let sb_len = 24

let encode_sb ~gen ~slot ~table_len ~crc =
  let b = Buffer.create sb_len in
  add_i32 b sb_magic;
  add_i32 b gen;
  add_i32 b slot;
  add_i32 b table_len;
  add_i32 b crc;
  let body = Buffer.to_bytes b in
  let framed = Buffer.create sb_len in
  Buffer.add_bytes framed body;
  add_i32 framed (Checksum.update 0 body 0 (Bytes.length body));
  Buffer.to_bytes framed

(* (gen, slot, table_len, table_crc), or [None] on damage. *)
let decode_sb b =
  if Bytes.length b < sb_len then None
  else
    let body_len = sb_len - 4 in
    let sum = get_i32 b body_len land 0xffffffff in
    if sum <> Checksum.update 0 b 0 body_len then None
    else if get_i32 b 0 <> sb_magic then None
    else
      Some
        (get_i32 b 4, get_i32 b 8, get_i32 b 12, get_i32 b 16 land 0xffffffff)

(* ---------------------------- persistence ---------------------------- *)

(* Write [blob] (or, with [len], only its first [len] bytes — a crash
   mid-write) into table slot [slot], charging the span as one coalesced
   sequential write and waiting for it: the flip's durability barrier is
   real.  A partial write leaves the slot's previous bytes beyond the
   prefix, exactly what a real torn multi-sector write leaves. *)
let write_table t ~slot ?len blob =
  let full = Bytes.length blob in
  let len = match len with None -> full | Some l -> max 0 (min l full) in
  let dst =
    match t.slots.(slot) with
    | Some old when Bytes.length old >= full -> old
    | old ->
        let nd = Bytes.make full '\000' in
        (match old with
        | Some o -> Bytes.blit o 0 nd 0 (min (Bytes.length o) full)
        | None -> ());
        nd
  in
  Bytes.blit blob 0 dst 0 len;
  t.slots.(slot) <- Some dst;
  let n = max 1 ((len + t.page_size - 1) / t.page_size) in
  let done_at =
    Disk_model.write_run t.disks ~disk:0
      ~phys:(slot * slot_region_pages)
      ~n ()
  in
  Clock.advance_to t.clock done_at;
  Counter.incr t.stats.table_writes;
  Counter.add t.stats.table_bytes len

(* Write generation [gen]'s superblock to sector [gen land 1].  With
   [torn], only the first half of the sector arrives (the CRC does not):
   the torn-flip crash point. *)
let write_superblock t ~gen ~slot ~table_len ~crc ?(torn = false) () =
  let b = encode_sb ~gen ~slot ~table_len ~crc in
  let which = gen land 1 in
  let dst =
    if torn then begin
      let half = Bytes.length b / 2 in
      let nd =
        match t.sbs.(which) with
        | Some old -> Bytes.copy old
        | None -> Bytes.make (Bytes.length b) '\000'
      in
      Bytes.blit b 0 nd 0 half;
      nd
    end
    else b
  in
  t.sbs.(which) <- Some dst;
  let done_at = Disk_model.write_sync t.disks ~disk:0 ~phys:(sb_phys which) () in
  Clock.advance_to t.clock done_at;
  Counter.incr t.stats.sb_writes

(* Read back the live generation: both superblocks (charged), candidates
   ordered by generation, each cross-checked against its table blob's
   length and CRC before the table is decoded.  Any invalid superblock
   or table falls back to the other candidate ([sb_fallbacks] counts
   each step down).  [None] only when no (superblock, table) pair in
   either slot checks out — the caller then recovers from the WAL
   alone. *)
let load t =
  Counter.incr t.stats.loads;
  let completion = ref (Clock.now t.clock) in
  let read_phys phys =
    completion := max !completion (Disk_model.read t.disks ~disk:0 ~phys ())
  in
  read_phys (sb_phys 0);
  read_phys (sb_phys 1);
  let candidates =
    List.filter_map
      (fun which ->
        match t.sbs.(which) with
        | None -> None
        | Some b -> decode_sb b)
      [ 0; 1 ]
    |> List.sort (fun (g1, _, _, _) (g2, _, _, _) -> compare g2 g1)
  in
  let fallbacks = ref 0 in
  let rec try_candidates = function
    | [] -> None
    | (gen, slot, table_len, crc) :: rest -> (
        let tb =
          if slot <> 0 && slot <> 1 then None
          else
            match t.slots.(slot) with
            | None -> None
            | Some blob ->
                if Bytes.length blob < table_len then None
                else begin
                  for
                    lp = slot * slot_region_pages
                    to (slot * slot_region_pages)
                       + ((table_len - 1) / t.page_size)
                  do
                    read_phys lp
                  done;
                  match decode_table blob ~len:table_len with
                  | Some tb
                    when tb.gen = gen
                         && table_crc (Bytes.sub blob 0 table_len) = crc ->
                      Some tb
                  | _ -> None
                end
        in
        match tb with
        | Some tb -> Some (tb, !fallbacks)
        | None ->
            incr fallbacks;
            Counter.incr t.stats.sb_fallbacks;
            try_candidates rest)
  in
  (* An invalid superblock never even makes the candidate list; count it
     as a fallback too so damage is visible either way. *)
  let invalid_sbs =
    List.length
      (List.filter
         (fun w ->
           match t.sbs.(w) with None -> false | Some b -> decode_sb b = None)
         [ 0; 1 ])
  in
  fallbacks := invalid_sbs;
  for _ = 1 to invalid_sbs do
    Counter.incr t.stats.sb_fallbacks
  done;
  let r = try_candidates candidates in
  Clock.advance_to t.clock !completion;
  r

(* Deterministic damage to the persisted metadata bytes (the chaos
   harness's superblock/table-region fault leg).  Lengths never change:
   contents rot in place. *)
let inject_damage t target d =
  let buf =
    match target with
    | Table slot -> t.slots.(slot land 1)
    | Superblock which -> t.sbs.(which land 1)
  in
  match buf with
  | None -> ()
  | Some b -> (
      let n = Bytes.length b in
      match d with
      | Zero_span { off; len } ->
          if off >= 0 && off < n && len > 0 then
            Bytes.fill b off (min len (n - off)) '\000'
      | Flip_bit { off; bit } ->
          if off >= 0 && off < n then
            Bytes.set b off
              (Char.chr
                 (Char.code (Bytes.get b off) lxor (1 lsl (bit land 7)))))

let meta_disks t = t.disks

let counters t =
  [
    t.stats.table_writes; t.stats.table_bytes; t.stats.sb_writes;
    t.stats.loads; t.stats.sb_fallbacks;
  ]

let kv t = List.map Counter.kv (counters t)
let reset_stats t = List.iter Counter.reset (counters t)
