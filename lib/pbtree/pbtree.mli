(** Prefetching B+-Tree (pB+-Tree, Chen/Gibbons/Mowry SIGMOD 2001): the
    paper's cache-optimized comparator and the model for fpB+-Tree
    in-page trees.  Memory-resident; nodes are several cache lines wide
    and prefetched in full before being searched, so a w-line node costs
    T1 + (w-1)*Tnext instead of one miss per probed line.  Range scans
    prefetch upcoming leaves through the leaf-parent level (the internal
    jump-pointer array). *)

type t

val name : string

(** [create ~node_lines sim] — node width in cache lines (default 8, the
    tuned value for the paper's memory parameters). *)
val create : ?node_lines:int -> Fpb_simmem.Sim.t -> t

val bulkload : t -> (int * int) array -> fill:float -> unit
val search : t -> int -> int option
val insert : t -> int -> int -> [ `Inserted | `Updated ]
val delete : t -> int -> bool

val range_scan :
  t -> ?prefetch:bool -> start_key:int -> end_key:int -> (int -> int -> unit) -> int

(** Node levels. *)
val height : t -> int

val node_count : t -> int
val capacity : t -> int

(** Bytes of simulated memory held by the tree's arena. *)
val allocated_bytes : t -> int

(** {1 Uncharged introspection (tests)} *)

val check : t -> unit

(** amcheck-style verification: [check] as data — [Ok node_count] or
    [Error description]. *)
val check_invariants : t -> (int, string) result

val iter : t -> (int -> int -> unit) -> unit
