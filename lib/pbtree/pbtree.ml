(* Prefetching B+-Tree (pB+-Tree, Chen/Gibbons/Mowry SIGMOD 2001): the
   paper's cache-optimized comparator and the model for fpB+-Tree in-page
   trees.  A memory-resident B+-Tree whose nodes are several cache lines
   wide; every node is prefetched in full before it is searched, so a
   w-line node costs T1 + (w-1)*Tnext instead of one miss per probed line.

   Node layout (16-byte header, then a key array and a pointer array):
     0: u8 is_leaf   2: u16 n   4: i32 next   8: i32 prev
   Sibling links exist at every level; the leaf-parent level acts as the
   internal jump-pointer array for cache-granularity range-scan
   prefetching.  Pointers are simulated addresses from [Arena]; leaves
   store tuple IDs. *)

open Fpb_simmem
open Fpb_btree_common

let header = 16
let off_is_leaf = 0
let off_n = 2
let off_next = 4
let off_prev = 8
let nil = 0

type t = {
  sim : Sim.t;
  arena : Arena.t;
  node_bytes : int;
  capacity : int;  (* entries per node *)
  mutable root : int;  (* arena address *)
  mutable levels : int;
  mutable n_nodes : int;
  mutable scan_prefetch_nodes : int;  (* jump-pointer prefetch distance *)
}

let name = "pB+tree"
let key_off i = header + (Key.size * i)
let ptr_off t i = header + (Key.size * t.capacity) + (4 * i)

let new_node t ~leaf =
  let addr = Arena.alloc t.arena t.node_bytes in
  t.n_nodes <- t.n_nodes + 1;
  let r, off = Arena.deref t.arena addr in
  Mem.write_u8 t.sim r (off + off_is_leaf) (if leaf then 1 else 0);
  Mem.write_u16 t.sim r (off + off_n) 0;
  Mem.write_i32 t.sim r (off + off_next) nil;
  Mem.write_i32 t.sim r (off + off_prev) nil;
  addr

(* Prefetch all lines of a node, then return its (region, offset). *)
let fetch_node t addr =
  let r, off = Arena.deref t.arena addr in
  Mem.prefetch t.sim r ~off ~len:t.node_bytes;
  Sim.busy_node t.sim;
  (r, off)

let create ?(node_lines = 8) sim =
  let node_bytes = 64 * node_lines in
  let capacity = (node_bytes - header) / (Key.size + 4) in
  if capacity < 2 then invalid_arg "Pbtree.create: node too small";
  let t =
    {
      sim;
      arena = Arena.create ();
      node_bytes;
      capacity;
      root = nil;
      levels = 1;
      n_nodes = 0;
      scan_prefetch_nodes = 8;
    }
  in
  t.root <- new_node t ~leaf:true;
  t

(* --- Search -------------------------------------------------------------- *)

let route t r off ~n key =
  let i = Array_search.upper_bound t.sim r ~off:(off + key_off 0) ~n ~key in
  max 0 (i - 1)

let descend t key ~visit =
  let rec go addr =
    let r, off = fetch_node t addr in
    if Mem.read_u8 t.sim r (off + off_is_leaf) = 1 then (addr, r, off)
    else begin
      let n = Mem.read_u16 t.sim r (off + off_n) in
      let i = route t r off ~n key in
      let child = Mem.read_i32 t.sim r (off + ptr_off t i) in
      visit addr r off n i;
      go child
    end
  in
  go t.root

let search t key =
  Sim.busy_op t.sim;
  let _addr, r, off = descend t key ~visit:(fun _ _ _ _ _ -> ()) in
  let n = Mem.read_u16 t.sim r (off + off_n) in
  let i = Array_search.lower_bound t.sim r ~off:(off + key_off 0) ~n ~key in
  if i < n && Mem.read_i32 t.sim r (off + key_off i) = key then
    Some (Mem.read_i32 t.sim r (off + ptr_off t i))
  else None

(* --- Insertion ----------------------------------------------------------- *)

let insert_at t r off ~n ~i key ptr =
  let len = (n - i) * 4 in
  Mem.blit t.sim r (off + key_off i) r (off + key_off (i + 1)) len;
  Mem.blit t.sim r (off + ptr_off t i) r (off + ptr_off t (i + 1)) len;
  Mem.write_i32 t.sim r (off + key_off i) key;
  Mem.write_i32 t.sim r (off + ptr_off t i) ptr;
  Mem.write_u16 t.sim r (off + off_n) (n + 1)

let split_node t addr r off ~leaf =
  let n = t.capacity in
  let mid = n / 2 in
  let moved = n - mid in
  let right = new_node t ~leaf in
  let rr, roff = Arena.deref t.arena right in
  Mem.blit t.sim r (off + key_off mid) rr (roff + key_off 0) (moved * 4);
  Mem.blit t.sim r (off + ptr_off t mid) rr (roff + ptr_off t 0) (moved * 4);
  Mem.write_u16 t.sim rr (roff + off_n) moved;
  Mem.write_u16 t.sim r (off + off_n) mid;
  let old_next = Mem.read_i32 t.sim r (off + off_next) in
  Mem.write_i32 t.sim rr (roff + off_next) old_next;
  Mem.write_i32 t.sim rr (roff + off_prev) addr;
  Mem.write_i32 t.sim r (off + off_next) right;
  if old_next <> nil then begin
    let onr, onoff = Arena.deref t.arena old_next in
    Mem.write_i32 t.sim onr (onoff + off_prev) right
  end;
  let sep = Mem.read_i32 t.sim rr (roff + key_off 0) in
  (right, rr, roff, sep)

let rec insert_into_parent t path sep child =
  match path with
  | [] ->
      let old_root = t.root in
      let new_root = new_node t ~leaf:false in
      let r, off = Arena.deref t.arena new_root in
      let orr, oroff = Arena.deref t.arena old_root in
      let old_min = Mem.read_i32 t.sim orr (oroff + key_off 0) in
      Mem.write_i32 t.sim r (off + key_off 0) old_min;
      Mem.write_i32 t.sim r (off + ptr_off t 0) old_root;
      Mem.write_i32 t.sim r (off + key_off 1) sep;
      Mem.write_i32 t.sim r (off + ptr_off t 1) child;
      Mem.write_u16 t.sim r (off + off_n) 2;
      t.root <- new_root;
      t.levels <- t.levels + 1
  | parent :: rest ->
      let r, off = Arena.deref t.arena parent in
      let n = Mem.read_u16 t.sim r (off + off_n) in
      let i =
        Array_search.upper_bound t.sim r ~off:(off + key_off 0) ~n ~key:sep
      in
      (* If child 0's subtree split at or below its recorded key 0 (not a
         trusted bound), lower key 0 so the array stays sorted and strictly
         distinct, and insert the new separator at slot 1. *)
      let i =
        if i = 0 || (i = 1 && Mem.read_i32 t.sim r (off + key_off 0) = sep)
        then begin
          Mem.write_i32 t.sim r (off + key_off 0) (sep - 1);
          1
        end
        else i
      in
      if n < t.capacity then insert_at t r off ~n ~i sep child
      else begin
        let right, rr, roff, parent_sep = split_node t parent r off ~leaf:false in
        let mid = t.capacity / 2 in
        (if i <= mid then insert_at t r off ~n:mid ~i sep child
         else insert_at t rr roff ~n:(t.capacity - mid) ~i:(i - mid) sep child);
        insert_into_parent t rest parent_sep right
      end

let insert t key tid =
  if not (Key.valid key) then invalid_arg "Pbtree.insert: key out of range";
  Sim.busy_op t.sim;
  let path = ref [] in
  let addr, r, off = descend t key ~visit:(fun a _ _ _ _ -> path := a :: !path) in
  let n = Mem.read_u16 t.sim r (off + off_n) in
  let i = Array_search.lower_bound t.sim r ~off:(off + key_off 0) ~n ~key in
  if i < n && Mem.read_i32 t.sim r (off + key_off i) = key then begin
    Mem.write_i32 t.sim r (off + ptr_off t i) tid;
    `Updated
  end
  else if n < t.capacity then begin
    insert_at t r off ~n ~i key tid;
    `Inserted
  end
  else begin
    let right, rr, roff, sep = split_node t addr r off ~leaf:true in
    let mid = t.capacity / 2 in
    (if i <= mid then insert_at t r off ~n:mid ~i key tid
     else insert_at t rr roff ~n:(t.capacity - mid) ~i:(i - mid) key tid);
    insert_into_parent t !path sep right;
    `Inserted
  end

(* --- Deletion ------------------------------------------------------------ *)

let delete t key =
  Sim.busy_op t.sim;
  let _addr, r, off = descend t key ~visit:(fun _ _ _ _ _ -> ()) in
  let n = Mem.read_u16 t.sim r (off + off_n) in
  let i = Array_search.lower_bound t.sim r ~off:(off + key_off 0) ~n ~key in
  let found = i < n && Mem.read_i32 t.sim r (off + key_off i) = key in
  if found then begin
    let len = (n - i - 1) * 4 in
    Mem.blit t.sim r (off + key_off (i + 1)) r (off + key_off i) len;
    Mem.blit t.sim r (off + ptr_off t (i + 1)) r (off + ptr_off t i) len;
    Mem.write_u16 t.sim r (off + off_n) (n - 1)
  end;
  found

(* --- Bulkload ------------------------------------------------------------ *)

let bulkload t pairs ~fill =
  if fill <= 0. || fill > 1. then invalid_arg "Pbtree.bulkload: fill";
  if t.n_nodes > 1 then invalid_arg "Pbtree.bulkload: tree not empty";
  let total = Array.length pairs in
  if total = 0 then ()
  else begin
    let per_node = max 1 (int_of_float (float_of_int t.capacity *. fill)) in
    let build_level ~leaf entries =
      let n = Array.length entries in
      let n_nodes = (n + per_node - 1) / per_node in
      let ups = Array.make n_nodes (0, 0) in
      let prev = ref nil in
      for p = 0 to n_nodes - 1 do
        let lo = p * per_node in
        let cnt = min per_node (n - lo) in
        let node = new_node t ~leaf in
        let r, off = Arena.deref t.arena node in
        for j = 0 to cnt - 1 do
          let k, ptr = entries.(lo + j) in
          Mem.write_i32 t.sim r (off + key_off j) k;
          Mem.write_i32 t.sim r (off + ptr_off t j) ptr
        done;
        Mem.write_u16 t.sim r (off + off_n) cnt;
        Mem.write_i32 t.sim r (off + off_prev) !prev;
        if !prev <> nil then begin
          let pr, poff = Arena.deref t.arena !prev in
          Mem.write_i32 t.sim pr (poff + off_next) node
        end;
        prev := node;
        ups.(p) <- (fst entries.(lo), node)
      done;
      ups
    in
    let level = ref (build_level ~leaf:true pairs) in
    let levels = ref 1 in
    while Array.length !level > 1 do
      level := build_level ~leaf:false !level;
      incr levels
    done;
    match !level with
    | [| (_, root) |] ->
        t.root <- root;
        t.levels <- !levels
    | _ -> assert false
  end

(* --- Range scan ---------------------------------------------------------- *)

(* Cache-granularity jump-pointer prefetching: walk the leaf-parent level
   and prefetch upcoming leaf nodes while the current one is consumed. *)
type jp_cursor = { mutable jp_node : int; mutable jp_idx : int }

let rec jp_next t cur =
  if cur.jp_node = nil then None
  else begin
    let r, off = Arena.deref t.arena cur.jp_node in
    let n = Mem.read_u16 t.sim r (off + off_n) in
    if cur.jp_idx < n then begin
      let p = Mem.read_i32 t.sim r (off + ptr_off t cur.jp_idx) in
      cur.jp_idx <- cur.jp_idx + 1;
      Some p
    end
    else begin
      cur.jp_node <- Mem.read_i32 t.sim r (off + off_next);
      cur.jp_idx <- 0;
      if cur.jp_node = nil then None else jp_next t cur
    end
  end

let range_scan t ?(prefetch = true) ~start_key ~end_key f =
  Sim.busy_op t.sim;
  if end_key < start_key then 0
  else begin
    let parent = ref nil and parent_idx = ref 0 in
    let _addr, r0, off0 =
      descend t start_key ~visit:(fun a _ _ _ i ->
          parent := a;
          parent_idx := i)
    in
    let cur = { jp_node = !parent; jp_idx = !parent_idx + 1 } in
    let outstanding = ref 0 in
    let done_prefetching = ref (!parent = nil) in
    let pump () =
      if prefetch then
        while (not !done_prefetching) && !outstanding < t.scan_prefetch_nodes do
          match jp_next t cur with
          | None -> done_prefetching := true
          | Some node ->
              let r, off = Arena.deref t.arena node in
              Mem.prefetch t.sim r ~off ~len:t.node_bytes;
              incr outstanding
        done
    in
    pump ();
    let count = ref 0 in
    let rec scan_node r off =
      let n = Mem.read_u16 t.sim r (off + off_n) in
      let i0 =
        if !count = 0 then
          Array_search.lower_bound t.sim r ~off:(off + key_off 0) ~n
            ~key:start_key
        else 0
      in
      let stop = ref false in
      let i = ref i0 in
      while (not !stop) && !i < n do
        let k = Mem.read_i32 t.sim r (off + key_off !i) in
        if k > end_key then stop := true
        else begin
          f k (Mem.read_i32 t.sim r (off + ptr_off t !i));
          incr count;
          incr i
        end
      done;
      if not !stop then begin
        let next = Mem.read_i32 t.sim r (off + off_next) in
        if next <> nil then begin
          if !outstanding > 0 then decr outstanding;
          pump ();
          let nr, noff = Arena.deref t.arena next in
          scan_node nr noff
        end
      end
    in
    scan_node r0 off0;
    !count
  end

(* --- Introspection (uncharged; tests only) -------------------------------- *)

let height t = t.levels
let node_count t = t.n_nodes
let allocated_bytes t = Arena.allocated_bytes t.arena
let capacity t = t.capacity

let iter t f =
  let rec leftmost addr =
    let r, off = Arena.deref t.arena addr in
    if Mem.peek_u8 r (off + off_is_leaf) = 1 then addr
    else leftmost (Mem.peek_i32 r (off + ptr_off t 0))
  in
  let rec walk addr =
    if addr <> nil then begin
      let r, off = Arena.deref t.arena addr in
      let n = Mem.peek_u16 r (off + off_n) in
      for i = 0 to n - 1 do
        f (Mem.peek_i32 r (off + key_off i)) (Mem.peek_i32 r (off + ptr_off t i))
      done;
      walk (Mem.peek_i32 r (off + off_next))
    end
  in
  walk (leftmost t.root)

let fail fmt = Fmt.kstr failwith fmt

let check t =
  let rec check_node addr ~lo ~hi ~depth =
    let r, off = Arena.deref t.arena addr in
    let leaf = Mem.peek_u8 r (off + off_is_leaf) = 1 in
    let n = Mem.peek_u16 r (off + off_n) in
    if leaf <> (depth = t.levels) then fail "node %#x: leaf at wrong depth" addr;
    if n > t.capacity then fail "node %#x: overfull" addr;
    if n = 0 && addr <> t.root then fail "node %#x: empty non-root" addr;
    for i = 0 to n - 1 do
      let k = Mem.peek_i32 r (off + key_off i) in
      if i > 0 && Mem.peek_i32 r (off + key_off (i - 1)) >= k then
        fail "node %#x: keys not increasing" addr;
      (match lo with
      | Some b when k < b -> fail "node %#x: key below bound" addr
      | _ -> ());
      match hi with
      | Some b when k >= b -> fail "node %#x: key above bound" addr
      | _ -> ()
    done;
    if not leaf then
      for i = 0 to n - 1 do
        let child = Mem.peek_i32 r (off + ptr_off t i) in
        let clo = if i = 0 then lo else Some (Mem.peek_i32 r (off + key_off i)) in
        let chi =
          if i = n - 1 then hi
          else Some (Mem.peek_i32 r (off + key_off (i + 1)))
        in
        check_node child ~lo:clo ~hi:chi ~depth:(depth + 1)
      done
  in
  check_node t.root ~lo:None ~hi:None ~depth:1

(* amcheck-style entry point: the structural check as data.  Memory
   resident, so the count is nodes rather than pages. *)
let check_invariants t =
  match check t with
  | () -> Ok (node_count t)
  | exception Failure msg -> Error msg
