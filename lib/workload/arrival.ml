(* Open-loop arrival driver over the discrete-event clock, with
   overload control.

   Where [Clients.run] is closed-loop — each client issues its next
   operation the moment the previous one completes, so offered load
   adapts itself to the system's capacity and overload shows up only as
   a throughput plateau — this driver is open-loop: operations arrive
   on a fixed simulated-time schedule (Poisson or fixed-rate) that does
   not care how the system is doing, exactly like requests from a large
   population of independent users.  Each arrival is appended
   round-robin to one of [n_clients] per-client FIFO queues; a client
   serves its queue one operation at a time.

   Past saturation an undefended open-loop system has unbounded queues
   and an exploding tail, so the driver carries the standard defenses:

   - every op may carry a *deadline* ([~deadline_ns], absolute from its
     first arrival); completions within it are *goodput*, completions
     past it are answers nobody is waiting for any more;
   - an *admission policy* ([Admission.t]) decides at arrival whether
     to queue the op or shed it ([arrival.shed]); the deadline-aware
     policy projects the queueing delay from an EWMA of observed
     service times and refuses ops that would expire in the queue, and
     additionally drops an admitted op at dispatch if its deadline has
     already passed ([arrival.expired]) rather than waste service time;
   - a *client retry policy* ([Retry.t]) optionally re-enters shed or
     expired ops after a delay ([arrival.retries]), with a bounded
     per-op budget — this is the knob that reproduces (and cures) the
     classic retry-storm metastable failure;
   - [~rate_change:(j, r)] switches the arrival rate to [r] from the
     [j]-th op on, and reports that second phase's goodput separately
     ([stats.recovery]), so "offered load dropped below capacity but
     the system stayed saturated" is directly measurable.

   Per-operation latency is recorded from *first arrival*, not
   dispatch: latency = queueing (and retry) delay + service time.

   Scheduling is the same conservative discrete-event discipline as
   [Clients.run]: each client's next dispatch time is max(its previous
   completion, its queue head's arrival); the driver always executes
   the globally earliest pending event — the next arrival (fresh or
   retry re-entry) or the earliest dispatch — rewinding the shared
   clock there ([Clock.set]).  Decision times are non-decreasing, so
   the backlog-over-time accounting (peak instant, time above the
   watermark) is exact. *)

open Fpb_simmem

type discipline = Poisson | Fixed

let discipline_name = function Poisson -> "poisson" | Fixed -> "fixed"

type window = {
  w_offered : int;
  w_completed : int;
  w_good : int;
  w_shed : int;
  w_dropped : int;
  w_span_ns : int;
  w_goodput_ops_per_s : float;
}

type stats = {
  clients : int;
  ops : int;
  discipline : discipline;
  offered_ops_per_s : float;
  makespan_ns : int;
  latency : Fpb_obs.Histogram.t;
  queue_ns : Fpb_obs.Histogram.t;
  service_ns : Fpb_obs.Histogram.t;
  throughput_ops_per_s : float;
  max_backlog : int;
  backlog_peak_at_ns : int;
  time_above_watermark_ns : int;
  backlog_watermark : int;
  completed : int;
  good : int;
  shed : int;
  expired : int;
  retries : int;
  dropped : int;
  goodput_ops_per_s : float;
  deadline_ns : int option;
  recovery : window option;
}

(* Retry re-entries, ordered by (time, seq).  A [Set] works as a priority
   queue here because an op has at most one pending re-entry, so the
   (time, seq, failures) triples are unique. *)
module Reentry = Set.Make (struct
  type t = int * int * int (* time, seq, failures so far *)

  let compare = compare
end)

let run ~sim ~n_clients ~n_ops ~rate_ops_per_s ?(discipline = Poisson)
    ?(seed = 4242) ?deadline_ns ?(admission = Admission.Admit_all)
    ?(retry = Retry.none) ?rate_change ?backlog_watermark ?live_backlog op =
  if n_clients < 1 then invalid_arg "Arrival.run: n_clients < 1";
  if n_ops < 0 then invalid_arg "Arrival.run: n_ops < 0";
  if rate_ops_per_s <= 0. then invalid_arg "Arrival.run: rate <= 0";
  (match deadline_ns with
  | Some d when d <= 0 -> invalid_arg "Arrival.run: deadline <= 0"
  | _ -> ());
  (match rate_change with
  | Some (j, r) when j < 0 || j > n_ops || r <= 0. ->
      invalid_arg "Arrival.run: bad rate_change"
  | _ -> ());
  let clock = sim.Sim.clock in
  let t0 = Clock.now clock in
  (* The arrival schedule is fixed up front: it is the load, independent
     of how the system keeps up. *)
  let rng = Prng.create seed in
  let arrivals = Array.make (max 1 n_ops) t0 in
  let t = ref (float_of_int t0) in
  for j = 0 to n_ops - 1 do
    let rate =
      match rate_change with
      | Some (j0, r2) when j >= j0 -> r2
      | _ -> rate_ops_per_s
    in
    let mean_gap_ns = 1e9 /. rate in
    let gap =
      match discipline with
      | Poisson -> Prng.exponential rng ~mean:mean_gap_ns
      | Fixed -> mean_gap_ns
    in
    t := !t +. gap;
    arrivals.(j) <- int_of_float !t
  done;
  let deadline_of j =
    match deadline_ns with None -> max_int | Some d -> arrivals.(j) + d
  in
  let latency = Fpb_obs.Histogram.make "arrival.latency_ns" in
  let queue_ns = Fpb_obs.Histogram.make "arrival.queue_ns" in
  let service_ns = Fpb_obs.Histogram.make "arrival.service_ns" in
  (* Per-client FIFO queues of admitted ops: (seq, failures, enq time). *)
  let queues = Array.init n_clients (fun _ -> Queue.create ()) in
  let free = Array.make n_clients t0 in
  let fails = Array.make (max 1 n_ops) 0 in
  let reentries = ref Reentry.empty in
  let next_fresh = ref 0 in
  (* Counters. *)
  let completed = ref 0 and good = ref 0 in
  let shed = ref 0 and expired = ref 0 in
  let retries = ref 0 and dropped = ref 0 in
  (* Phase-2 (recovery window) accounting, by original seq. *)
  let p2_from = match rate_change with Some (j, _) -> j | None -> max_int in
  let p2_completed = ref 0 and p2_good = ref 0 in
  let p2_shed = ref 0 and p2_dropped = ref 0 in
  (* Backlog = ops admitted and waiting (not yet dispatched).  Decision
     times are non-decreasing, so piecewise-constant accounting between
     them is exact. *)
  let wm = match backlog_watermark with Some w -> w | None -> 4 * n_clients in
  let backlog = ref 0 in
  let max_backlog = ref 0 and backlog_peak_at = ref 0 in
  let above_ns = ref 0 in
  let last_t = ref t0 in
  let note_time now =
    if now > !last_t then begin
      if !backlog > wm then above_ns := !above_ns + (now - !last_t);
      last_t := now
    end
  in
  let set_backlog now b =
    note_time now;
    backlog := b;
    (match live_backlog with Some r -> r := b | None -> ());
    if b > !max_backlog then begin
      max_backlog := b;
      backlog_peak_at := now - t0
    end
  in
  (* Service-time EWMA feeding the deadline-aware projected wait. *)
  let est_service = ref 0 in
  let observe_service s =
    est_service := if !est_service = 0 then s else ((7 * !est_service) + s) / 8
  in
  let last_finish = ref t0 in
  (* A shed or expired op consults the client retry policy: re-enter
     after a delay, or drop for good once the budget is spent. *)
  let fail_op now seq =
    fails.(seq) <- fails.(seq) + 1;
    match Retry.delay_ns retry rng ~failures:fails.(seq) with
    | Some d ->
        incr retries;
        reentries := Reentry.add (now + d, seq, fails.(seq)) !reentries
    | None ->
        incr dropped;
        if seq >= p2_from then incr p2_dropped
  in
  let process_arrival now seq =
    let c = seq mod n_clients in
    let q = queues.(c) in
    let depth = Queue.length q in
    let projected_wait_ns =
      max 0 (free.(c) - now) + (depth * !est_service)
    in
    let slack_ns =
      match deadline_ns with
      | None -> None
      | Some _ -> Some (deadline_of seq - now)
    in
    if Admission.admit admission ~queue_depth:depth ~projected_wait_ns
         ~slack_ns
    then begin
      Queue.add (seq, now) q;
      set_backlog now (!backlog + 1)
    end
    else begin
      incr shed;
      if seq >= p2_from then incr p2_shed;
      note_time now;
      fail_op now seq
    end
  in
  (* Earliest pending arrival: the fresh schedule is already sorted, the
     retry re-entries live in the ordered set. *)
  let next_arrival () =
    let fresh =
      if !next_fresh < n_ops then Some (arrivals.(!next_fresh), `Fresh)
      else None
    in
    let re =
      match Reentry.min_elt_opt !reentries with
      | Some (t, seq, f) -> Some (t, `Re (t, seq, f))
      | None -> None
    in
    match (fresh, re) with
    | None, None -> None
    | Some a, None -> Some a
    | None, Some r -> Some r
    | Some (ta, _), Some (tr, _) when tr < ta -> re
    | Some a, Some _ -> Some a
  in
  (* Earliest dispatch over clients with non-empty queues. *)
  let next_dispatch () =
    let c = ref (-1) and c_start = ref max_int in
    for i = 0 to n_clients - 1 do
      if not (Queue.is_empty queues.(i)) then begin
        let _, enq = Queue.peek queues.(i) in
        let start = max free.(i) enq in
        if start < !c_start then begin
          c := i;
          c_start := start
        end
      end
    done;
    if !c < 0 then None else Some (!c_start, !c)
  in
  let pop_arrival = function
    | `Fresh ->
        let seq = !next_fresh in
        incr next_fresh;
        (arrivals.(seq), seq)
    | `Re ((t, seq, f) as e) ->
        reentries := Reentry.remove e !reentries;
        ignore (f : int);
        (t, seq)
  in
  let dispatch start i =
    let seq, enq = Queue.pop queues.(i) in
    set_backlog start (!backlog - 1);
    let deadline = deadline_of seq in
    (* Deadline-aware shedding extends to dispatch: an op whose deadline
       already passed is dropped, not served — the other policies model
       a server that cannot see client deadlines and serves it late. *)
    if admission = Admission.Deadline_aware && start > deadline then begin
      incr expired;
      fail_op start seq
    end
    else begin
      Clock.set clock start;
      op ~client:i ~seq;
      let finish = Clock.now clock in
      Fpb_obs.Histogram.record latency (finish - arrivals.(seq));
      Fpb_obs.Histogram.record queue_ns (start - enq);
      Fpb_obs.Histogram.record service_ns (finish - start);
      observe_service (finish - start);
      free.(i) <- finish;
      if finish > !last_finish then last_finish := finish;
      incr completed;
      let in_deadline = finish <= deadline in
      if in_deadline then incr good else if deadline < max_int then incr expired;
      if seq >= p2_from then begin
        incr p2_completed;
        if in_deadline then incr p2_good
      end
    end
  in
  let running = ref true in
  while !running do
    match (next_arrival (), next_dispatch ()) with
    | None, None -> running := false
    | Some (ta, src), Some (td, _) when ta <= td ->
        let now, seq = pop_arrival src in
        process_arrival now seq
    | Some (_, src), None ->
        let now, seq = pop_arrival src in
        process_arrival now seq
    | _, Some (start, i) -> dispatch start i
  done;
  Clock.set clock !last_finish;
  note_time !last_finish;
  let makespan_ns = !last_finish - t0 in
  let per_s n span = if span = 0 then 0. else float_of_int n *. 1e9 /. float_of_int span in
  let recovery =
    match rate_change with
    | None -> None
    | Some (j0, _) ->
        let span =
          if j0 < n_ops then max 0 (!last_finish - arrivals.(j0)) else 0
        in
        Some
          {
            w_offered = n_ops - j0;
            w_completed = !p2_completed;
            w_good = !p2_good;
            w_shed = !p2_shed;
            w_dropped = !p2_dropped;
            w_span_ns = span;
            w_goodput_ops_per_s = per_s !p2_good span;
          }
  in
  {
    clients = n_clients;
    ops = n_ops;
    discipline;
    offered_ops_per_s = rate_ops_per_s;
    makespan_ns;
    latency;
    queue_ns;
    service_ns;
    throughput_ops_per_s = per_s !completed makespan_ns;
    max_backlog = !max_backlog;
    backlog_peak_at_ns = !backlog_peak_at;
    time_above_watermark_ns = !above_ns;
    backlog_watermark = wm;
    completed = !completed;
    good = !good;
    shed = !shed;
    expired = !expired;
    retries = !retries;
    dropped = !dropped;
    goodput_ops_per_s = per_s !good makespan_ns;
    deadline_ns;
    recovery;
  }
