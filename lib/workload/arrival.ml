(* Open-loop arrival driver over the discrete-event clock.

   Where [Clients.run] is closed-loop — each client issues its next
   operation the moment the previous one completes, so offered load
   adapts itself to the system's capacity and overload shows up only as
   a throughput plateau — this driver is open-loop: operations arrive
   on a fixed simulated-time schedule (Poisson or fixed-rate) that does
   not care how the system is doing, exactly like requests from a large
   population of independent users.  Each arrival is appended
   round-robin to one of [n_clients] per-client FIFO queues; a client
   serves its queue one operation at a time.

   Per-operation latency is recorded from *arrival*, not dispatch:
   latency = queueing delay (arrival -> dispatch) + service time
   (dispatch -> completion).  Below saturation the queueing term is ~0
   and open-loop latency matches the closed-loop histogram; past
   saturation queues grow without bound over the run and p99/p999
   explode — the behaviour a closed-loop driver structurally cannot
   show, because its arrival process stalls with the system.

   Scheduling is the same conservative discrete-event discipline as
   [Clients.run]: each client's next dispatch time is
   max(its previous completion, its next arrival); the driver always
   runs the client with the smallest dispatch time, rewinding the
   shared clock there ([Clock.set]).  That minimum is a global minimum
   over everything still to execute, so contention on shared resources
   (disks, pool-shard latches, the log), which keep absolute free-at
   times, resolves as a truly concurrent execution would. *)

open Fpb_simmem

type discipline = Poisson | Fixed

let discipline_name = function Poisson -> "poisson" | Fixed -> "fixed"

type stats = {
  clients : int;
  ops : int;
  discipline : discipline;
  offered_ops_per_s : float;
  makespan_ns : int;
  latency : Fpb_obs.Histogram.t;
  queue_ns : Fpb_obs.Histogram.t;
  service_ns : Fpb_obs.Histogram.t;
  throughput_ops_per_s : float;
  max_backlog : int;
}

let run ~sim ~n_clients ~n_ops ~rate_ops_per_s ?(discipline = Poisson)
    ?(seed = 4242) op =
  if n_clients < 1 then invalid_arg "Arrival.run: n_clients < 1";
  if n_ops < 0 then invalid_arg "Arrival.run: n_ops < 0";
  if rate_ops_per_s <= 0. then invalid_arg "Arrival.run: rate <= 0";
  let clock = sim.Sim.clock in
  let t0 = Clock.now clock in
  (* The arrival schedule is fixed up front: it is the load, independent
     of how the system keeps up. *)
  let rng = Prng.create seed in
  let mean_gap_ns = 1e9 /. rate_ops_per_s in
  let arrivals = Array.make (max 1 n_ops) t0 in
  let t = ref (float_of_int t0) in
  for j = 0 to n_ops - 1 do
    let gap =
      match discipline with
      | Poisson -> Prng.exponential rng ~mean:mean_gap_ns
      | Fixed -> mean_gap_ns
    in
    t := !t +. gap;
    arrivals.(j) <- int_of_float !t
  done;
  let latency = Fpb_obs.Histogram.make "arrival.latency_ns" in
  let queue_ns = Fpb_obs.Histogram.make "arrival.queue_ns" in
  let service_ns = Fpb_obs.Histogram.make "arrival.service_ns" in
  (* Client i serves arrivals i, i + n_clients, ... in order. *)
  let next = Array.init n_clients (fun i -> i) in
  let free = Array.make n_clients t0 in
  let completed = ref 0 in
  let arrived = ref 0 in (* arrivals.(0 .. !arrived-1) <= current dispatch *)
  let max_backlog = ref 0 in
  let last_finish = ref t0 in
  while !completed < n_ops do
    let c = ref (-1) and c_start = ref max_int in
    for i = 0 to n_clients - 1 do
      if next.(i) < n_ops then begin
        let start = max free.(i) arrivals.(next.(i)) in
        if start < !c_start then begin
          c := i;
          c_start := start
        end
      end
    done;
    let i = !c and start = !c_start in
    let j = next.(i) in
    while !arrived < n_ops && arrivals.(!arrived) <= start do
      incr arrived
    done;
    let backlog = !arrived - !completed in
    if backlog > !max_backlog then max_backlog := backlog;
    Clock.set clock start;
    op ~client:i ~seq:j;
    let finish = Clock.now clock in
    Fpb_obs.Histogram.record latency (finish - arrivals.(j));
    Fpb_obs.Histogram.record queue_ns (start - arrivals.(j));
    Fpb_obs.Histogram.record service_ns (finish - start);
    free.(i) <- finish;
    if finish > !last_finish then last_finish := finish;
    next.(i) <- j + n_clients;
    incr completed
  done;
  Clock.set clock !last_finish;
  let makespan_ns = !last_finish - t0 in
  {
    clients = n_clients;
    ops = n_ops;
    discipline;
    offered_ops_per_s = rate_ops_per_s;
    makespan_ns;
    latency;
    queue_ns;
    service_ns;
    throughput_ops_per_s =
      (if makespan_ns = 0 then 0.
       else float_of_int n_ops *. 1e9 /. float_of_int makespan_ns);
    max_backlog = !max_backlog;
  }
