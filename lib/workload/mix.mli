(** YCSB-style operation mixes over a live, growing key set.

    A mix is a percentage split over the five YCSB operation kinds
    (read, update, insert, short range scan, read-modify-write).  The
    standard core workloads A-F are provided with their conventional
    key-popularity distributions; a {!gen} owns the mutable key-space
    state — the key-age array that starts as the bulk-loaded keys and
    grows at the frontier with every insert — so both the closed-loop
    ({!Clients}) and open-loop ({!Arrival}) drivers draw one
    fully-formed {!action} per dispatch, and the [Latest] distribution
    always sees the current insert frontier.  See [docs/WORKLOADS.md]. *)

(** A named percentage split; proportions sum to 100. *)
type t = {
  name : string;
  read : int;
  update : int;
  insert : int;
  scan : int;
  rmw : int;
}

(** Build a custom mix.
    @raise Invalid_argument on negative proportions or a sum <> 100. *)
val make :
  name:string -> read:int -> update:int -> insert:int -> scan:int -> rmw:int -> t

(** The YCSB core workloads: A = 50/50 read/update, B = 95/5
    read/update, C = read-only, D = 95/5 read/insert (read-latest),
    E = 95/5 scan/insert, F = 50/50 read/read-modify-write. *)
val a : t

val b : t
val c : t
val d : t
val e : t
val f : t

(** [\[a; b; c; d; e; f\]]. *)
val all : t list

(** Parse ["A"].. ["F"] (case-insensitive). *)
val of_string : string -> (t, string) result

(** The conventional distribution of the mix: [Latest] for D (it reads
    what it just inserted), scrambled Zipfian at {!Keygen.default_theta}
    for everything else. *)
val default_dist : t -> Keygen.dist

(** One drawn operation, ready to run: keys are live keys of the
    generator's key set (for [Scan], a [(start_key, end_key)] range
    spanning the drawn number of adjacent loaded keys), values are the
    generator's write sequence numbers. *)
type action =
  | Read of int
  | Update of int * int
  | Insert of int * int
  | Scan of int * int
  | Rmw of int * int

(** A workload generator: mix + distribution + mutable key-space state
    + its own deterministic PRNG. *)
type gen

(** [generator mix pairs ~seed] draws over the bulk-loaded [pairs]
    (strictly increasing, as produced by {!Keygen.bulk_pairs}).
    [dist] overrides {!default_dist}; [max_scan_span] (default 100)
    bounds the uniform scan length of [Scan] actions.
    @raise Invalid_argument on an empty key set. *)
val generator :
  ?max_scan_span:int ->
  ?dist:Keygen.dist ->
  seed:int ->
  t ->
  (int * int) array ->
  gen

(** Draw the next action (mutates the generator: inserts grow the
    key-age array). *)
val next : gen -> action

(** Number of live keys (bulk-loaded + inserted so far). *)
val live_keys : gen -> int

(** The most recently inserted key (initially the largest bulk key) —
    the [Latest] distribution's anchor. *)
val newest_key : gen -> int

(** Actions drawn so far as [(read, update, insert, scan, rmw)] counts. *)
val drawn_counts : gen -> int * int * int * int * int

(** [execute idx action] runs the action against the index through its
    normal charged path; [commit] (default a no-op) runs after each
    mutating action — pass the WAL commit there to make writes
    durable. *)
val execute :
  Fpb_btree_common.Index_sig.instance ->
  ?commit:(unit -> unit) ->
  action ->
  unit
