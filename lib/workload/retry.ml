(* Client-side retry policy for shed or expired operations.

   The amplification factor of a retry discipline is what decides
   whether an overload is transient or metastable: every op may re-offer
   itself up to [budget] times, so a stream of fresh arrivals at rate r
   can present up to r * (budget + 1) to the admission gate.  A short
   fixed delay with a generous budget keeps that amplified load
   synchronised and concentrated (the storm); exponential backoff with
   full jitter spreads it thin, and a small budget caps it. *)

type discipline =
  | No_retry
  | Immediate
  | Fixed of int
  | Backoff of { base_ns : int; mult : int; jitter : bool }

type t = { discipline : discipline; budget : int }

let none = { discipline = No_retry; budget = 0 }

let name t =
  match t.discipline with
  | No_retry -> "none"
  | Immediate -> Printf.sprintf "immediate(b%d)" t.budget
  | Fixed d -> Printf.sprintf "fixed(%dns,b%d)" d t.budget
  | Backoff { base_ns; mult; jitter } ->
      Printf.sprintf "backoff(%dns,x%d%s,b%d)" base_ns mult
        (if jitter then ",jitter" else "")
        t.budget

let of_string ?(budget = 3) ?(base_ns = 1_000_000) s =
  match String.lowercase_ascii s with
  | "none" -> Ok none
  | "immediate" -> Ok { discipline = Immediate; budget }
  | "fixed" -> Ok { discipline = Fixed base_ns; budget }
  | "backoff" ->
      Ok { discipline = Backoff { base_ns; mult = 2; jitter = false }; budget }
  | "backoff-jitter" | "jitter" ->
      Ok { discipline = Backoff { base_ns; mult = 2; jitter = true }; budget }
  | _ ->
      Error
        (Printf.sprintf
           "unknown retry discipline %S (want none, immediate, fixed, \
            backoff or backoff-jitter)"
           s)

let delay_ns t rng ~failures =
  if failures < 1 then invalid_arg "Retry.delay_ns: failures < 1";
  match t.discipline with
  | No_retry -> None
  | _ when failures > t.budget -> None
  | Immediate -> Some 0
  | Fixed d -> Some (max 0 d)
  | Backoff { base_ns; mult; jitter } ->
      (* Clamp the exponent so the delay stays far from overflow even
         under a qcheck-sized budget. *)
      let exp = min (failures - 1) 24 in
      let d = ref (max 1 base_ns) in
      for _ = 1 to exp do
        if !d < max_int / max 1 mult then d := !d * max 1 mult
      done;
      Some (if jitter then Prng.int rng (!d + 1) else !d)
