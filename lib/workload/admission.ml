(* Admission control for the open-loop arrival driver.

   The decision runs at arrival, before the op consumes service time.
   [Admit_all] is the PR-6 behaviour (unbounded queues); [Queue_cap]
   bounds each client's FIFO; [Deadline_aware] is the CoDel-style early
   drop — refuse an op whose projected queueing delay already exceeds
   its remaining deadline budget, because serving it would waste
   capacity on an answer nobody is waiting for any more. *)

type t = Admit_all | Queue_cap of int | Deadline_aware

let name = function
  | Admit_all -> "admit-all"
  | Queue_cap c -> Printf.sprintf "queue-cap(%d)" c
  | Deadline_aware -> "deadline"

let of_string ?(queue_cap = 64) s =
  match String.lowercase_ascii s with
  | "admit-all" | "all" | "none" -> Ok Admit_all
  | "queue-cap" | "cap" -> Ok (Queue_cap queue_cap)
  | "deadline" | "deadline-aware" -> Ok Deadline_aware
  | _ ->
      Error
        (Printf.sprintf
           "unknown admission policy %S (want admit-all, queue-cap or \
            deadline)"
           s)

let admit t ~queue_depth ~projected_wait_ns ~slack_ns =
  match t with
  | Admit_all -> true
  | Queue_cap cap -> queue_depth < cap
  | Deadline_aware -> (
      match slack_ns with
      | None -> true
      | Some slack -> projected_wait_ns <= slack)
