(** Key-set generation for the paper's workloads. *)

(** [bulk_pairs rng n]: n strictly increasing distinct (key, tuple-id)
    pairs spread uniformly over the 31-bit key space (jittered strides). *)
val bulk_pairs : Prng.t -> int -> (int * int) array

(** Random probe keys drawn from an existing key set (hits). *)
val probes : Prng.t -> (int * int) array -> int -> int array

(** Random keys over the whole space (insertions; mostly misses). *)
val random_keys : Prng.t -> int -> int array

(** Random (start, end) key ranges spanning [span] positions of the key
    set. *)
val ranges : Prng.t -> (int * int) array -> int -> span:int -> (int * int) array

(** Zipf-skewed probe keys over a key set: rank 0 hottest; theta in (0,1)
    controls the skew (0.99 ~ TPC-C / YCSB default). *)
val zipf_probes :
  Prng.t -> (int * int) array -> int -> theta:float -> int array

(** [zipf_rank rng ~n ~theta] draws one Zipf-distributed rank in
    [\[0, n)], rank 0 hottest, using the O(1) rejection-free power-law
    approximation [floor (n * u ** (1. /. (1. -. theta)))].
    @raise Invalid_argument unless [0. < theta < 1.] and [n > 0]. *)
val zipf_rank : Prng.t -> n:int -> theta:float -> int

(** [scramble ~n pos] hashes position [pos] into [\[0, n)] with 64-bit
    FNV-1a, the YCSB scrambled-Zipfian scheme: deterministic, spreads a
    skewed rank sequence across the whole position space, but is {e not}
    a permutation (hash collisions make a few positions unreachable). *)
val scramble : n:int -> int -> int

(** Key-popularity distributions for the YCSB-style workload suite
    (see [docs/WORKLOADS.md]).  Each names a rule for drawing a
    {e position} in a key-age array: position 0 is the oldest (bulk-load)
    key, position [n - 1] the most recent insert.

    - [Uniform]: every live key equally likely.
    - [Zipfian]: rank drawn by {!zipf_rank}; with [scrambled] the rank
      is passed through {!scramble} so the hot keys are spread over the
      key space rather than forming one contiguous leaf run.
    - [Latest]: like Zipfian but anchored at the insert frontier — rank
      0 is the {e newest} key, so the hot set follows inserts.
    - [Hotspot]: with probability [hot_op_frac] a uniform draw from the
      first [hot_frac] fraction of positions, otherwise a uniform draw
      from the rest. *)
type dist =
  | Uniform
  | Zipfian of { theta : float; scrambled : bool }
  | Latest of { theta : float }
  | Hotspot of { hot_frac : float; hot_op_frac : float }

(** The YCSB default Zipfian constant, 0.99. *)
val default_theta : float

(** Short human-readable name, e.g. ["scrambled-zipf 0.99"]. *)
val dist_name : dist -> string

(** Parse a CLI distribution name ([uniform], [zipfian] (scrambled),
    [zipf-seq] (unscrambled), [latest], [hotspot]); [theta] (default
    {!default_theta}) parameterises the skewed ones. *)
val dist_of_string : ?theta:float -> string -> (dist, string) result

(** [draw_pos dist rng ~n] draws one position in [\[0, n)] under [dist].
    For [Latest], pass the current insert frontier as [n].
    @raise Invalid_argument if [n <= 0] or the distribution's
    parameters are out of range. *)
val draw_pos : dist -> Prng.t -> n:int -> int
