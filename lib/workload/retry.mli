(** Client-side retry policy for shed or expired operations.

    When an open-loop arrival is refused (admission shed) or misses its
    deadline, real clients do not simply vanish: they retry.  Naive
    retries convert one refusal into several re-offers, which is how a
    transient overload turns into a {e metastable} failure — offered
    load drops back below capacity, but the accumulated retry pool
    keeps the system saturated, refusing fresh work, which creates yet
    more retries.  The standard cures, both modelled here, are a
    bounded per-op retry {e budget} (caps the amplification factor at
    [budget + 1]) and exponential backoff with {e jitter} (spreads the
    re-offers thin instead of re-synchronising them).  See
    [docs/WORKLOADS.md]. *)

type discipline =
  | No_retry
  | Immediate  (** re-enter at the same instant; burns budget fastest *)
  | Fixed of int  (** constant delay (ns) between attempts *)
  | Backoff of { base_ns : int; mult : int; jitter : bool }
      (** delay [base_ns * mult^(failures-1)], exponent clamped so the
          delay never overflows; with [jitter], each delay is drawn
          uniformly from [\[0, d\]] (AWS-style "full jitter") *)

type t = {
  discipline : discipline;
  budget : int;  (** max re-entries per op; 0 means never retry *)
}

(** No retries at all: [{ discipline = No_retry; budget = 0 }]. *)
val none : t

val name : t -> string

(** Parse ["none"], ["immediate"], ["fixed"], ["backoff"] or
    ["backoff-jitter"] (case-insensitive).  [budget] defaults to 3,
    [base_ns] (fixed delay / backoff base) to 1_000_000 (1 ms). *)
val of_string : ?budget:int -> ?base_ns:int -> string -> (t, string) result

(** [delay_ns t rng ~failures] is the re-entry delay after the
    [failures]-th consecutive failure (1-based), or [None] when the
    budget is exhausted (always [None] for {!No_retry}).  Jitter draws
    from [rng], so a fixed seed gives a fixed schedule.
    @raise Invalid_argument if [failures < 1]. *)
val delay_ns : t -> Prng.t -> failures:int -> int option
