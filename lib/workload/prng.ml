(* splitmix64: tiny, fast, deterministic PRNG for workload generation.
   (Stdlib Random is avoided so workloads are stable across OCaml
   versions.) *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let next t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Independent substream: one draw from the parent advances it past the
   split point, then the child state is re-randomised through a second
   splitmix64 finalizer with distinct multipliers (Vigna's variant) so
   parent and child sequences share no aligned window. *)
let split t =
  let open Int64 in
  let z = next t in
  let z = mul (logxor z (shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = mul (logxor z (shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  { state = logxor z (shift_right_logical z 33) }

(* Uniform int in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

(* Uniform float in [0, 1) from the top 53 bits (the full double
   mantissa), so the smallest nonzero value is 2^-53. *)
let float t =
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. (1. /. 9007199254740992.)

(* Exponentially distributed value with the given [mean]; inverse-CDF
   over a [float] draw (the 1 - u flip keeps log's argument nonzero). *)
let exponential t ~mean =
  if mean <= 0. then invalid_arg "Prng.exponential";
  -. mean *. log (1. -. float t)

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done
