(** Closed-loop multi-client driver over the discrete-event clock.

    [run ~sim ~n_clients ~ops_per_client op] interleaves [n_clients]
    logical clients against the shared simulated machine: the driver
    repeatedly picks the client with the smallest local time, rewinds
    the shared clock to that client's present, and executes its next
    operation atomically in virtual time ([op ~client ~seq] must advance
    the clock by however long the operation takes).  Because the chosen
    local time is the global minimum, contention on shared resources
    that keep absolute free-at times (disks, buffer-pool shard latches,
    the log) resolves exactly as a truly concurrent execution would:
    arriving at a busy resource waits out its remaining service time.

    Operations are the unit of interleaving — there is no intra-op
    preemption — so single-writer invariants of the structures under
    test hold unchanged.  [think_ns] (default 0) separates a client's
    operations.  Returns the makespan (first start to last completion),
    a per-operation latency histogram ([clients.op_latency_ns]), and
    throughput in operations per simulated second. *)

type stats = {
  clients : int;
  ops : int;
  makespan_ns : int;
  latency : Fpb_obs.Histogram.t;
  throughput_ops_per_s : float;
}

val run :
  sim:Fpb_simmem.Sim.t ->
  n_clients:int ->
  ops_per_client:int ->
  ?think_ns:int ->
  (client:int -> seq:int -> unit) ->
  stats
