(** Open-loop arrival driver over the discrete-event clock.

    Where {!Clients.run} is closed-loop (each client issues its next
    operation when the previous one completes, so offered load adapts
    to capacity and overload shows up only as a throughput plateau),
    [Arrival.run] is open-loop: operations arrive on a simulated-time
    schedule — Poisson or fixed-rate at [rate_ops_per_s] — that is
    independent of how the system keeps up, like traffic from a large
    population of independent users.  Arrivals are appended round-robin
    to [n_clients] per-client FIFO queues; each client serves its queue
    one operation at a time under the same conservative discrete-event
    discipline as {!Clients.run} (run the client with the smallest
    dispatch time; shared resources keep absolute free-at times, so
    contention resolves as in a truly concurrent execution).

    Latency is recorded from {e arrival}, not dispatch: below
    saturation the queueing term is ~0, past saturation queues grow
    throughout the run and p99/p999 explode — the overload signature a
    closed-loop driver structurally cannot produce.  See
    [docs/WORKLOADS.md] for the closed- vs. open-loop semantics. *)

(** Inter-arrival law: [Poisson] (exponential gaps, the memoryless
    many-independent-users model) or [Fixed] (constant gap, a paced
    load generator). *)
type discipline = Poisson | Fixed

val discipline_name : discipline -> string

type stats = {
  clients : int;
  ops : int;
  discipline : discipline;
  offered_ops_per_s : float;  (** the configured arrival rate *)
  makespan_ns : int;  (** first arrival to last completion *)
  latency : Fpb_obs.Histogram.t;
      (** per-op arrival → completion ([arrival.latency_ns]) —
          queueing delay included *)
  queue_ns : Fpb_obs.Histogram.t;
      (** per-op arrival → dispatch ([arrival.queue_ns]) *)
  service_ns : Fpb_obs.Histogram.t;
      (** per-op dispatch → completion ([arrival.service_ns]) *)
  throughput_ops_per_s : float;  (** completed ops / makespan *)
  max_backlog : int;
      (** peak number of operations arrived but not yet completed — the
          high-water queue depth *)
}

(** [run ~sim ~n_clients ~n_ops ~rate_ops_per_s op] generates the
    arrival schedule ([seed], default 4242, fixes it deterministically),
    dispatches [op ~client ~seq] for each arrival in conservative
    virtual-time order ([op] must advance the simulated clock by the
    operation's duration), and returns the latency/queue/service
    histograms and throughput.  [seq] is the arrival's global index, in
    arrival order.
    @raise Invalid_argument if [n_clients < 1], [n_ops < 0] or
    [rate_ops_per_s <= 0.]. *)
val run :
  sim:Fpb_simmem.Sim.t ->
  n_clients:int ->
  n_ops:int ->
  rate_ops_per_s:float ->
  ?discipline:discipline ->
  ?seed:int ->
  (client:int -> seq:int -> unit) ->
  stats
