(** Open-loop arrival driver over the discrete-event clock, with
    overload control.

    Where {!Clients.run} is closed-loop (each client issues its next
    operation when the previous one completes, so offered load adapts
    to capacity and overload shows up only as a throughput plateau),
    [Arrival.run] is open-loop: operations arrive on a simulated-time
    schedule — Poisson or fixed-rate at [rate_ops_per_s] — that is
    independent of how the system keeps up, like traffic from a large
    population of independent users.  Arrivals are appended round-robin
    to [n_clients] per-client FIFO queues; each client serves its queue
    one operation at a time under the same conservative discrete-event
    discipline as {!Clients.run}.

    Past saturation an undefended open-loop system has unbounded queues
    and an exploding tail, so the driver carries the standard defenses:
    per-op {e deadlines} ([deadline_ns]), a pluggable {e admission
    policy} ({!Admission.t}) that sheds at arrival, a {e client retry
    policy} ({!Retry.t}) that re-enters shed/expired ops with a bounded
    budget (the retry-storm knob), and a two-phase rate schedule
    ([rate_change]) whose second phase is reported separately so
    metastable failures are measurable.  Latency is recorded from the
    op's {e first arrival}.  See [docs/WORKLOADS.md]. *)

(** Inter-arrival law: [Poisson] (exponential gaps, the memoryless
    many-independent-users model) or [Fixed] (constant gap, a paced
    load generator). *)
type discipline = Poisson | Fixed

val discipline_name : discipline -> string

(** Stats over the second phase of a [rate_change] run — the {e
    recovery window}, classified by the op's original arrival index. *)
type window = {
  w_offered : int;  (** fresh arrivals in the window *)
  w_completed : int;
  w_good : int;  (** completed within their deadline *)
  w_shed : int;  (** admission rejections of window ops (events) *)
  w_dropped : int;  (** window ops that died with their retry budget *)
  w_span_ns : int;  (** first window arrival to last completion *)
  w_goodput_ops_per_s : float;
}

type stats = {
  clients : int;
  ops : int;  (** fresh (non-retry) arrivals offered *)
  discipline : discipline;
  offered_ops_per_s : float;  (** the configured (phase-1) arrival rate *)
  makespan_ns : int;  (** first arrival to last completion *)
  latency : Fpb_obs.Histogram.t;
      (** per completed op, first arrival → completion
          ([arrival.latency_ns]) — queueing and retry delay included *)
  queue_ns : Fpb_obs.Histogram.t;
      (** per dispatched attempt, (re-)enqueue → dispatch
          ([arrival.queue_ns]) *)
  service_ns : Fpb_obs.Histogram.t;
      (** per dispatched attempt, dispatch → completion
          ([arrival.service_ns]) *)
  throughput_ops_per_s : float;  (** completed ops / makespan *)
  max_backlog : int;
      (** peak number of admitted ops waiting in queues *)
  backlog_peak_at_ns : int;
      (** when (relative to the run start) the backlog first reached
          [max_backlog] — localises the overload window *)
  time_above_watermark_ns : int;
      (** simulated time the backlog spent strictly above
          [backlog_watermark] *)
  backlog_watermark : int;  (** the watermark used (default 4×clients) *)
  completed : int;  (** ops actually serviced *)
  good : int;  (** completed within their deadline (= [completed] when
                   no deadline is set) *)
  shed : int;  (** admission rejections (events; retries re-offer) *)
  expired : int;
      (** deadline misses: dropped at dispatch under [Deadline_aware],
          or completed past the deadline under the other policies *)
  retries : int;  (** re-entries scheduled by the retry policy *)
  dropped : int;  (** ops that never completed: retry budget exhausted *)
  goodput_ops_per_s : float;  (** [good] / makespan *)
  deadline_ns : int option;
  recovery : window option;  (** phase-2 stats of a [rate_change] run *)
}

(** [run ~sim ~n_clients ~n_ops ~rate_ops_per_s op] generates the
    arrival schedule ([seed], default 4242, fixes it — and any retry
    jitter — deterministically), dispatches [op ~client ~seq] for each
    admitted arrival in conservative virtual-time order ([op] must
    advance the simulated clock by the operation's duration), and
    returns the stats above.  [seq] is the op's global index in
    first-arrival order.

    [deadline_ns] arms per-op deadlines (absolute from first arrival);
    [admission] (default {!Admission.Admit_all}) gates arrivals;
    [retry] (default {!Retry.none}) re-enters shed/expired ops;
    [rate_change = (j, r)] switches the arrival rate to [r] from op [j]
    on and fills [stats.recovery]; [backlog_watermark] (default
    [4 * n_clients]) sets the time-above-watermark threshold;
    [live_backlog], when given, is kept equal to the current queued-op
    count while the run executes — background work (scrub, fuzzy
    checkpoints) can read it to yield under foreground pressure.
    @raise Invalid_argument if [n_clients < 1], [n_ops < 0],
    [rate_ops_per_s <= 0.], [deadline_ns <= 0] or [rate_change] is out
    of range. *)
val run :
  sim:Fpb_simmem.Sim.t ->
  n_clients:int ->
  n_ops:int ->
  rate_ops_per_s:float ->
  ?discipline:discipline ->
  ?seed:int ->
  ?deadline_ns:int ->
  ?admission:Admission.t ->
  ?retry:Retry.t ->
  ?rate_change:int * float ->
  ?backlog_watermark:int ->
  ?live_backlog:int ref ->
  (client:int -> seq:int -> unit) ->
  stats
