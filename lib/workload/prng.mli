(** splitmix64: tiny, fast, deterministic PRNG for workload generation
    (stable across OCaml versions, unlike [Random]). *)

type t

val create : int -> t
val next : t -> int64

(** [split t] advances [t] by one draw and returns a new generator whose
    stream is statistically independent of the parent's continuation —
    deterministic substreams for components (network-fault schedules,
    arrival processes, key draws) that must not share one stream. *)
val split : t -> t

(** Uniform int in [0, bound); bound > 0. *)
val int : t -> int -> int

(** Uniform float in [0, 1), with the full 53-bit double resolution. *)
val float : t -> float

(** [exponential t ~mean] draws from the exponential distribution with
    the given mean (inverse-CDF method) — inter-arrival times of a
    Poisson process at rate [1 /. mean].
    @raise Invalid_argument if [mean <= 0.]. *)
val exponential : t -> mean:float -> float

(** In-place Fisher-Yates shuffle. *)
val shuffle : t -> 'a array -> unit
