(** Open-loop batch server: the second service discipline beside
    {!Arrival}'s per-client descents.

    Arrivals follow the same open-loop schedule as {!Arrival.run}
    (Poisson or fixed-rate at [rate_ops_per_s], precomputed from the
    seed), but feed one server that collects probes and dispatches them
    as a batch: as soon as [batch] operations are queued, or when the
    oldest queued operation has waited [batch_wait_ns] — the
    size-or-timeout group rule.  Each dispatch hands the batch's
    sequence numbers to the callback, which runs one level-wise descent
    wave ([search_batch]; writes fall back to singleton execution) and
    advances the simulated clock by the batch's service time.

    Batching amortises shared upper tree levels and pipelines leaf
    misses across probes, so service time per op shrinks as batches
    fill; below saturation an op waits up to [batch_wait_ns] for
    company — the latency floor [exp batch] sweeps.  See
    [docs/BATCHING.md]. *)

type stats = {
  ops : int;  (** operations served (all of [n_ops]) *)
  batches : int;  (** dispatches *)
  batch_cap : int;  (** the configured size trigger *)
  batch_wait_ns : int;  (** the configured timeout trigger *)
  discipline : Arrival.discipline;
  offered_ops_per_s : float;
  makespan_ns : int;  (** first arrival to last completion *)
  latency : Fpb_obs.Histogram.t;
      (** per op, arrival → its batch's completion ([batch.latency_ns]) *)
  wait_ns : Fpb_obs.Histogram.t;
      (** per op, arrival → its batch's dispatch ([batch.wait_ns]) *)
  service_ns : Fpb_obs.Histogram.t;
      (** per batch, dispatch → completion ([batch.service_ns]) *)
  batch_fill : Fpb_obs.Histogram.t;
      (** ops per dispatched batch ([batch.fill]) *)
  throughput_ops_per_s : float;
  mean_batch : float;  (** [ops / batches] *)
  max_backlog : int;  (** peak queued (undispatched) ops *)
}

(** [run ~sim ~n_ops ~rate_ops_per_s ~batch ~batch_wait_ns exec]
    generates the arrival schedule ([seed] default 4242, fixing it
    deterministically), dispatches batches under the size-or-timeout
    rule in conservative virtual-time order, and returns the stats.
    [exec seqs] receives the batch's ops as global first-arrival
    indexes, in arrival order, and must advance the simulated clock by
    the batch's service time.
    @raise Invalid_argument if [n_ops < 0], [rate_ops_per_s <= 0.],
    [batch < 1] or [batch_wait_ns < 0]. *)
val run :
  sim:Fpb_simmem.Sim.t ->
  n_ops:int ->
  rate_ops_per_s:float ->
  ?discipline:Arrival.discipline ->
  ?seed:int ->
  batch:int ->
  batch_wait_ns:int ->
  (int array -> unit) ->
  stats
