(* Closed-loop multi-client driver over the discrete-event clock.

   M logical clients share one simulated machine (pool, WAL, disks).
   Each client is a loop of operations separated by a think time; the
   driver always runs the client with the smallest local time next,
   rewinding the shared clock to that client's present ([Clock.set])
   before executing its operation atomically in virtual time.

   This is the standard conservative discrete-event schedule: since the
   chosen client's local time is the minimum over all clients, no other
   client could still execute anything earlier, so resource contention
   is resolved correctly even though operations run one at a time in
   host order.  Shared resources (disks, buffer-pool shard latches, the
   log) keep *absolute* free-at times, so a client arriving at a
   resource another client holds until later waits via
   [max now free_at] — that wait is exactly the queueing delay a truly
   concurrent execution would have produced.

   Within one operation there is no preemption: the model's unit of
   interleaving is the operation, not the instruction.  That matches
   what the simulation can answer ("how do M clients queue on shards,
   disks and the log?"), and keeps every structure's single-writer
   invariants intact. *)

open Fpb_simmem

type stats = {
  clients : int;
  ops : int;
  makespan_ns : int;  (* first op start to last op completion *)
  latency : Fpb_obs.Histogram.t;  (* per-operation simulated latency *)
  throughput_ops_per_s : float;  (* ops / makespan, simulated time *)
}

let run ~sim ~n_clients ~ops_per_client ?(think_ns = 0) op =
  if n_clients < 1 then invalid_arg "Clients.run: n_clients < 1";
  if ops_per_client < 0 then invalid_arg "Clients.run: ops_per_client < 0";
  let clock = sim.Sim.clock in
  let t0 = Clock.now clock in
  let local = Array.make n_clients t0 in  (* next-op start time *)
  let done_at = Array.make n_clients t0 in  (* last completion *)
  let next = Array.make n_clients 0 in
  let latency = Fpb_obs.Histogram.make "clients.op_latency_ns" in
  let remaining = ref (n_clients * ops_per_client) in
  while !remaining > 0 do
    let c = ref (-1) in
    for i = 0 to n_clients - 1 do
      if next.(i) < ops_per_client && (!c < 0 || local.(i) < local.(!c)) then
        c := i
    done;
    let i = !c in
    Clock.set clock local.(i);
    op ~client:i ~seq:next.(i);
    let finish = Clock.now clock in
    Fpb_obs.Histogram.record latency (finish - local.(i));
    done_at.(i) <- finish;
    local.(i) <- finish + think_ns;
    next.(i) <- next.(i) + 1;
    decr remaining
  done;
  (* Leave the shared clock at the end of the run, not at whichever
     client happened to execute last. *)
  let finish = Array.fold_left max (Clock.now clock) done_at in
  Clock.set clock finish;
  let ops = n_clients * ops_per_client in
  let makespan_ns = finish - t0 in
  {
    clients = n_clients;
    ops;
    makespan_ns;
    latency;
    throughput_ops_per_s =
      (if makespan_ns = 0 then 0.
       else float_of_int ops *. 1e9 /. float_of_int makespan_ns);
  }
