(* Key-set generation for the paper's workloads: n distinct random keys
   over the 31-bit key space, returned sorted for bulkload.  Keys are
   jittered strides, which gives a uniform-looking distinct set in O(n)
   deterministically. *)

open Fpb_btree_common

(* Sorted distinct (key, tid) pairs; tid = key position (stable oracle). *)
let bulk_pairs rng n =
  if n <= 0 then [||]
  else begin
    let space = Key.max_key - 1 in
    let step = max 2 (space / n) in
    Array.init n (fun i ->
        let base = i * step in
        let jitter = Prng.int rng (step - 1) in
        (base + jitter, i))
  end

(* Random probe keys drawn from an existing key set (hits). *)
let probes rng pairs count =
  let n = Array.length pairs in
  Array.init count (fun _ -> fst pairs.(Prng.int rng n))

(* Random keys over the whole space (for insertions; mostly misses). *)
let random_keys rng count =
  Array.init count (fun _ -> Prng.int rng Key.max_key)

(* Random (start, end) ranges spanning [span] key positions within a
   bulkloaded key set. *)
let ranges rng pairs count ~span =
  let n = Array.length pairs in
  Array.init count (fun _ ->
      let s = Prng.int rng (max 1 (n - span)) in
      let e = min (n - 1) (s + span - 1) in
      (fst pairs.(s), fst pairs.(e)))

(* Zipf-distributed rank in [0, n), rank 0 hottest, via the
   rejection-free power-law approximation floor(n * u^(1/(1-theta)))
   for theta in (0, 1).  The approximation matches the true Zipfian
   head closely (P(rank r) ~ r^-theta up to normalisation) and is O(1)
   per draw with no precomputed tables, which matters because the
   open-loop driver draws per-op at dispatch time. *)
let zipf_rank rng ~n ~theta =
  if theta <= 0. || theta >= 1. then invalid_arg "Keygen.zipf_rank: theta";
  if n <= 0 then invalid_arg "Keygen.zipf_rank: n";
  let u = 1. -. Prng.float rng in (* (0, 1]: keeps u ** expo nonzero *)
  let rank = int_of_float (float_of_int n *. (u ** (1. /. (1. -. theta)))) in
  min (n - 1) rank

(* Zipf-distributed probe positions over an existing key set (rank 0 is
   hottest). *)
let zipf_probes rng pairs count ~theta =
  let n = Array.length pairs in
  Array.init count (fun _ -> fst pairs.(zipf_rank rng ~n ~theta))

(* FNV-1a 64-bit scramble of a position: decorrelates Zipfian rank from
   key order, so the hot set is spread across the whole key space
   instead of being one contiguous leaf run (YCSB's scrambled-Zipfian
   scheme).  Not a permutation — hash collisions leave a few positions
   unreachable, exactly as in YCSB — but deterministic. *)
let scramble ~n pos =
  if n <= 0 then invalid_arg "Keygen.scramble: n";
  let open Int64 in
  let h = ref 0xcbf29ce484222325L in
  for shift = 0 to 7 do
    let byte = logand (shift_right_logical (of_int pos) (8 * shift)) 0xffL in
    h := mul (logxor !h byte) 0x100000001b3L
  done;
  to_int (rem (shift_right_logical !h 1) (of_int n))

(* The key-popularity distributions of the YCSB-style workload suite.
   Each draws a *position* in [0, n) of a key-age array: position 0 is
   the oldest (first-loaded) key, position n-1 the newest insert. *)
type dist =
  | Uniform
  | Zipfian of { theta : float; scrambled : bool }
  | Latest of { theta : float }
  | Hotspot of { hot_frac : float; hot_op_frac : float }

let default_theta = 0.99

let dist_name = function
  | Uniform -> "uniform"
  | Zipfian { theta; scrambled } ->
      Printf.sprintf "%szipf %.2f" (if scrambled then "scrambled-" else "") theta
  | Latest { theta } -> Printf.sprintf "latest %.2f" theta
  | Hotspot { hot_frac; hot_op_frac } ->
      Printf.sprintf "hotspot %.0f/%.0f" (100. *. hot_op_frac) (100. *. hot_frac)

let dist_of_string ?(theta = default_theta) s =
  match String.lowercase_ascii s with
  | "uniform" -> Ok Uniform
  | "zipfian" | "zipf" -> Ok (Zipfian { theta; scrambled = true })
  | "zipf-seq" | "zipfian-seq" -> Ok (Zipfian { theta; scrambled = false })
  | "latest" -> Ok (Latest { theta })
  | "hotspot" -> Ok (Hotspot { hot_frac = 0.2; hot_op_frac = 0.8 })
  | _ ->
      Error
        (Printf.sprintf
           "unknown distribution %S (expected uniform, zipfian, zipf-seq, \
            latest or hotspot)" s)

let draw_pos dist rng ~n =
  if n <= 0 then invalid_arg "Keygen.draw_pos: n";
  match dist with
  | Uniform -> Prng.int rng n
  | Zipfian { theta; scrambled } ->
      let rank = zipf_rank rng ~n ~theta in
      if scrambled then scramble ~n rank else rank
  | Latest { theta } -> n - 1 - zipf_rank rng ~n ~theta
  | Hotspot { hot_frac; hot_op_frac } ->
      if hot_frac <= 0. || hot_frac > 1. || hot_op_frac < 0. || hot_op_frac > 1.
      then invalid_arg "Keygen.draw_pos: hotspot fractions";
      let hot_n = max 1 (min n (int_of_float (float_of_int n *. hot_frac))) in
      if n = hot_n || Prng.float rng < hot_op_frac then Prng.int rng hot_n
      else hot_n + Prng.int rng (n - hot_n)
