(* Open-loop batch server: the second service discipline beside the
   per-client descents of [Arrival].

   Arrivals follow the same open-loop schedule as [Arrival.run] (Poisson
   or fixed-rate, precomputed from the seed, independent of how the
   system keeps up), but instead of fanning out over per-client FIFOs
   they feed ONE server that collects probes and serves them as a batch:
   when the server is idle it dispatches as soon as [batch] operations
   are queued, or when the oldest queued operation has waited
   [batch_wait_ns], whichever comes first — the classic size-or-timeout
   group rule (the same shape as the WAL's group commit).  A dispatch
   hands the collected sequence numbers to [exec], which runs one
   level-wise descent wave ([search_batch]) and advances the simulated
   clock by the batch's service time.

   The trade is explicit in the stats: batching amortises shared upper
   tree levels and pipelines leaf misses across probes (service time per
   op shrinks as the batch fills), but below saturation an op waits up
   to [batch_wait_ns] for company — the latency floor the `exp batch`
   sweep shows at low arrival rates.

   Scheduling is the same conservative discrete-event discipline as the
   other drivers: all decision times are non-decreasing, the shared
   clock is rewound to each dispatch ([Clock.set]) and [exec] moves it
   forward, so a run is exactly reproducible from its seed. *)

open Fpb_simmem

type stats = {
  ops : int;
  batches : int;
  batch_cap : int;
  batch_wait_ns : int;
  discipline : Arrival.discipline;
  offered_ops_per_s : float;
  makespan_ns : int;
  latency : Fpb_obs.Histogram.t;
  wait_ns : Fpb_obs.Histogram.t;
  service_ns : Fpb_obs.Histogram.t;
  batch_fill : Fpb_obs.Histogram.t;
  throughput_ops_per_s : float;
  mean_batch : float;
  max_backlog : int;
}

let run ~sim ~n_ops ~rate_ops_per_s ?(discipline = Arrival.Poisson)
    ?(seed = 4242) ~batch ~batch_wait_ns exec =
  if n_ops < 0 then invalid_arg "Batch.run: n_ops < 0";
  if rate_ops_per_s <= 0. then invalid_arg "Batch.run: rate <= 0";
  if batch < 1 then invalid_arg "Batch.run: batch < 1";
  if batch_wait_ns < 0 then invalid_arg "Batch.run: batch_wait_ns < 0";
  let clock = sim.Sim.clock in
  let t0 = Clock.now clock in
  (* The arrival schedule is fixed up front, exactly as in [Arrival]. *)
  let rng = Prng.create seed in
  let arrivals = Array.make (max 1 n_ops) t0 in
  let t = ref (float_of_int t0) in
  let mean_gap_ns = 1e9 /. rate_ops_per_s in
  for j = 0 to n_ops - 1 do
    let gap =
      match discipline with
      | Arrival.Poisson -> Prng.exponential rng ~mean:mean_gap_ns
      | Arrival.Fixed -> mean_gap_ns
    in
    t := !t +. gap;
    arrivals.(j) <- int_of_float !t
  done;
  let latency = Fpb_obs.Histogram.make "batch.latency_ns" in
  let wait_ns = Fpb_obs.Histogram.make "batch.wait_ns" in
  let service_ns = Fpb_obs.Histogram.make "batch.service_ns" in
  let batch_fill = Fpb_obs.Histogram.make "batch.fill" in
  let q = Queue.create () in
  let next = ref 0 in
  let max_backlog = ref 0 in
  let completed = ref 0 and batches = ref 0 in
  let last_finish = ref t0 in
  (* Server-idle time: non-decreasing; arrivals at or before it are
     already queued. *)
  let s = ref t0 in
  let absorb_until time =
    while !next < n_ops && arrivals.(!next) <= time do
      Queue.add (!next, arrivals.(!next)) q;
      incr next;
      if Queue.length q > !max_backlog then max_backlog := Queue.length q
    done
  in
  let dispatch at =
    let k = min batch (Queue.length q) in
    let seqs = Array.make k 0 in
    let arrs = Array.make k 0 in
    for i = 0 to k - 1 do
      let seq, arr = Queue.pop q in
      seqs.(i) <- seq;
      arrs.(i) <- arr;
      Fpb_obs.Histogram.record wait_ns (at - arr)
    done;
    Clock.set clock at;
    exec seqs;
    let fin = Clock.now clock in
    Fpb_obs.Histogram.record service_ns (fin - at);
    Fpb_obs.Histogram.record batch_fill k;
    Array.iter (fun arr -> Fpb_obs.Histogram.record latency (fin - arr)) arrs;
    completed := !completed + k;
    incr batches;
    if fin > !last_finish then last_finish := fin;
    s := fin;
    absorb_until !s
  in
  let running = ref true in
  while !running do
    if Queue.is_empty q then
      if !next >= n_ops then running := false
      else begin
        s := max !s arrivals.(!next);
        absorb_until !s
      end
    else if Queue.length q >= batch then dispatch !s
    else begin
      let _, head_arr = Queue.peek q in
      let timeout = head_arr + batch_wait_ns in
      if timeout <= !s then dispatch !s
      else
        let na = if !next < n_ops then arrivals.(!next) else max_int in
        if na <= timeout then begin
          s := na;
          absorb_until !s
        end
        else dispatch timeout
    end
  done;
  Clock.set clock !last_finish;
  let makespan_ns = !last_finish - t0 in
  let per_s n span =
    if span = 0 then 0. else float_of_int n *. 1e9 /. float_of_int span
  in
  {
    ops = !completed;
    batches = !batches;
    batch_cap = batch;
    batch_wait_ns;
    discipline;
    offered_ops_per_s = rate_ops_per_s;
    makespan_ns;
    latency;
    wait_ns;
    service_ns;
    batch_fill;
    throughput_ops_per_s = per_s !completed makespan_ns;
    mean_batch =
      (if !batches = 0 then 0.
       else float_of_int !completed /. float_of_int !batches);
    max_backlog = !max_backlog;
  }
