(* YCSB-style operation mixes over a live, growing key set.

   A mix is a percentage split over the five YCSB operation kinds; the
   standard A-F workloads are provided with their conventional
   popularity distributions (D reads the latest inserts, everything
   else defaults to scrambled Zipfian).  A [gen] owns the mutable
   key-space state — the key-age array that starts as the bulk-loaded
   keys and grows at the frontier with every insert — plus its own PRNG,
   so drivers (closed-loop [Clients], open-loop [Arrival]) draw one
   fully-formed action per dispatch and the Latest distribution always
   sees the current frontier. *)

open Fpb_btree_common

type t = {
  name : string;
  read : int;
  update : int;
  insert : int;
  scan : int;
  rmw : int;
}

let make ~name ~read ~update ~insert ~scan ~rmw =
  if read < 0 || update < 0 || insert < 0 || scan < 0 || rmw < 0 then
    invalid_arg "Mix.make: negative proportion";
  if read + update + insert + scan + rmw <> 100 then
    invalid_arg "Mix.make: proportions must sum to 100";
  { name; read; update; insert; scan; rmw }

(* The standard YCSB core workloads. *)
let a = make ~name:"A" ~read:50 ~update:50 ~insert:0 ~scan:0 ~rmw:0
let b = make ~name:"B" ~read:95 ~update:5 ~insert:0 ~scan:0 ~rmw:0
let c = make ~name:"C" ~read:100 ~update:0 ~insert:0 ~scan:0 ~rmw:0
let d = make ~name:"D" ~read:95 ~update:0 ~insert:5 ~scan:0 ~rmw:0
let e = make ~name:"E" ~read:0 ~update:0 ~insert:5 ~scan:95 ~rmw:0
let f = make ~name:"F" ~read:50 ~update:0 ~insert:0 ~scan:0 ~rmw:50
let all = [ a; b; c; d; e; f ]

let of_string s =
  match String.uppercase_ascii s with
  | "A" -> Ok a
  | "B" -> Ok b
  | "C" -> Ok c
  | "D" -> Ok d
  | "E" -> Ok e
  | "F" -> Ok f
  | _ -> Error (Printf.sprintf "unknown mix %S (expected A..F)" s)

(* D follows the insert frontier by definition; every other core mix is
   skewed-by-popularity, which YCSB models as scrambled Zipfian. *)
let default_dist m =
  if m.name = "D" then Keygen.Latest { theta = Keygen.default_theta }
  else Keygen.Zipfian { theta = Keygen.default_theta; scrambled = true }

type kind = [ `Read | `Update | `Insert | `Scan | `Rmw ]

let draw_kind m rng : kind =
  let r = Prng.int rng 100 in
  if r < m.read then `Read
  else if r < m.read + m.update then `Update
  else if r < m.read + m.update + m.insert then `Insert
  else if r < m.read + m.update + m.insert + m.scan then `Scan
  else `Rmw

type action =
  | Read of int
  | Update of int * int
  | Insert of int * int
  | Scan of int * int
  | Rmw of int * int

type gen = {
  mix : t;
  dist : Keygen.dist;
  rng : Prng.t;
  max_scan_span : int;
  key_stride : int; (* mean key distance between adjacent loaded keys *)
  mutable keys : int array; (* key-age array: [0, frontier) live *)
  mutable frontier : int;
  mutable next_value : int; (* value written by the next mutating op *)
  mutable drawn : int array; (* per-kind action counts, for tests/tables *)
}

let kind_index = function
  | `Read -> 0
  | `Update -> 1
  | `Insert -> 2
  | `Scan -> 3
  | `Rmw -> 4

let generator ?(max_scan_span = 100) ?dist ~seed mix pairs =
  let n = Array.length pairs in
  if n = 0 then invalid_arg "Mix.generator: empty key set";
  if max_scan_span < 1 then invalid_arg "Mix.generator: max_scan_span";
  let keys = Array.make (2 * n) 0 in
  Array.iteri (fun i (k, _) -> keys.(i) <- k) pairs;
  let lo = fst pairs.(0) and hi = fst pairs.(n - 1) in
  {
    mix;
    dist = (match dist with Some d -> d | None -> default_dist mix);
    rng = Prng.create seed;
    max_scan_span;
    key_stride = max 1 ((hi - lo) / max 1 (n - 1));
    keys;
    frontier = n;
    next_value = 0;
    drawn = Array.make 5 0;
  }

let live_keys g = g.frontier
let newest_key g = g.keys.(g.frontier - 1)

let drawn_counts g =
  ( g.drawn.(kind_index `Read),
    g.drawn.(kind_index `Update),
    g.drawn.(kind_index `Insert),
    g.drawn.(kind_index `Scan),
    g.drawn.(kind_index `Rmw) )

let pick_key g = g.keys.(Keygen.draw_pos g.dist g.rng ~n:g.frontier)

(* A fresh insert key: uniform over the space, so new keys land between
   existing ones rather than piling onto one edge leaf.  Collisions with
   a live key are possible but negligible (n << 2^31) and harmless (the
   index treats them as updates). *)
let fresh_key g = Prng.int g.rng Key.max_key

let next g =
  let kind = draw_kind g.mix g.rng in
  g.drawn.(kind_index kind) <- g.drawn.(kind_index kind) + 1;
  let value () =
    g.next_value <- g.next_value + 1;
    g.next_value
  in
  match kind with
  | `Read -> Read (pick_key g)
  | `Update -> Update (pick_key g, value ())
  | `Insert ->
      let k = fresh_key g in
      if g.frontier = Array.length g.keys then begin
        let bigger = Array.make (2 * Array.length g.keys) 0 in
        Array.blit g.keys 0 bigger 0 g.frontier;
        g.keys <- bigger
      end;
      g.keys.(g.frontier) <- k;
      g.frontier <- g.frontier + 1;
      Insert (k, value ())
  | `Scan ->
      let start_key = pick_key g in
      let span = 1 + Prng.int g.rng g.max_scan_span in
      Scan (start_key, start_key + (span * g.key_stride))
  | `Rmw -> Rmw (pick_key g, value ())

(* Run one action against an index; [commit] (e.g. a WAL commit) runs
   after each mutating action so updates are durable like any OLTP
   write. *)
let execute idx ?(commit = fun () -> ()) = function
  | Read k -> ignore (Index_sig.search idx k)
  | Update (k, v) ->
      ignore (Index_sig.insert idx k v);
      commit ()
  | Insert (k, v) ->
      ignore (Index_sig.insert idx k v);
      commit ()
  | Scan (start_key, end_key) ->
      ignore (Index_sig.range_scan idx ~start_key ~end_key (fun _ _ -> ()))
  | Rmw (k, v) ->
      ignore (Index_sig.search idx k);
      ignore (Index_sig.insert idx k v);
      commit ()
