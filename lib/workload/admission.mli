(** Admission control for the open-loop arrival driver.

    An overloaded open-loop system has exactly three choices for an
    arriving operation: queue it (unbounded queues — latency explodes),
    reject it at the door (bounded queues — latency stays bounded, some
    work is refused), or reject it only when queueing it would be
    pointless (deadline-aware — the op would miss its deadline anyway,
    so serving it wastes capacity).  The policy decides at {e arrival},
    before the op consumes any service time; rejected ops count as
    [arrival.shed], never as completions.  See [docs/WORKLOADS.md]. *)

type t =
  | Admit_all  (** unbounded queues: the PR-6 behaviour, no defense *)
  | Queue_cap of int
      (** reject when the target client's queue already holds this many
          waiting ops (the classic bounded listen queue) *)
  | Deadline_aware
      (** reject when the projected wait — the server's current backlog
          scaled by its service-time estimate — already exceeds the
          op's remaining deadline budget, so the op would expire in the
          queue (CoDel-style early drop).  With no deadline configured
          this admits everything. *)

val name : t -> string

(** Parse ["admit-all"], ["queue-cap"] (capacity [queue_cap], default
    64) or ["deadline"] (case-insensitive). *)
val of_string : ?queue_cap:int -> string -> (t, string) result

(** [admit t ~queue_depth ~projected_wait_ns ~slack_ns] decides one
    arrival.  [queue_depth] is the number of ops already waiting on the
    target client's queue, [projected_wait_ns] the estimated time the
    new op would spend queued, and [slack_ns] the time remaining until
    its deadline ([None] when no deadline is configured). *)
val admit :
  t -> queue_depth:int -> projected_wait_ns:int -> slack_ns:int option -> bool
