(* Named monotonic counters: the cheapest telemetry primitive, a single
   mutable field, so simulator hot paths can charge them directly. *)

type t = { name : string; mutable value : int }

let make name = { name; value = 0 }
let name t = t.name
let value t = t.value
let add t n = t.value <- t.value + n
let incr t = add t 1
let reset t = t.value <- 0
let kv t = (t.name, t.value)
