(** Fixed-memory value histograms with percentile estimation.

    Values are non-negative integers (cycles, simulated nanoseconds,
    byte counts — the unit follows the same naming convention as
    {!Counter}).  Storage is a log-linear bucket array in the style of
    HDR histograms: values below 16 are recorded exactly; larger values
    fall into power-of-two ranges split into 16 linear sub-buckets, so
    any reported quantile is within a relative error of 1/16 (6.25%) of
    the exact order statistic.  [min]/[max]/[count]/[sum] are exact.

    Recording is O(1) with no allocation; a histogram occupies a few KB
    regardless of how many values it has seen. *)

type t

(** [make name] is an empty histogram. *)
val make : string -> t

val name : t -> string

(** [record t v] records one observation.  Negative values are clamped
    to zero. *)
val record : t -> int -> unit

val count : t -> int
val sum : t -> int

(** Exact smallest/largest recorded value; 0 on an empty histogram. *)
val min_value : t -> int

val max_value : t -> int

(** Arithmetic mean; 0. on an empty histogram. *)
val mean : t -> float

(** [percentile t p] estimates the [p]-th percentile ([0. <= p <= 100.]).
    Returns the exact {!min_value} for [p = 0.] and the exact
    {!max_value} for [p = 100.]; 0 on an empty histogram.
    @raise Invalid_argument if [p] is outside [0..100]. *)
val percentile : t -> float -> int

val reset : t -> unit

(** [{"count", "sum", "min", "max", "mean", "p50", "p90", "p95", "p99",
    "p999"}] — the per-histogram record embedded in metrics snapshots.
    [p999] is the 99.9th percentile, the tail the open-loop workload
    driver sweeps (see [docs/WORKLOADS.md]). *)
val to_json : t -> Json.t
