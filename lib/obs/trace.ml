(* Bounded trace-event ring: keeps the newest [capacity] events and
   counts evictions, so tracing an unbounded run stays fixed-memory. *)

type event = { ev_name : string; ev_attrs : (string * Json.t) list }

type t = {
  capacity : int;
  q : event Queue.t;
  mutable dropped : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create";
  { capacity; q = Queue.create (); dropped = 0 }

let emit t name attrs =
  if Queue.length t.q >= t.capacity then begin
    ignore (Queue.pop t.q);
    t.dropped <- t.dropped + 1
  end;
  Queue.push { ev_name = name; ev_attrs = attrs } t.q

let events t = List.of_seq (Queue.to_seq t.q)
let length t = Queue.length t.q
let dropped t = t.dropped

let clear t =
  Queue.clear t.q;
  t.dropped <- 0

let to_json t =
  Json.Obj
    [
      ("dropped", Json.Int t.dropped);
      ( "events",
        Json.List
          (List.map
             (fun e -> Json.Obj (("event", Json.Str e.ev_name) :: e.ev_attrs))
             (events t)) );
    ]
