(** Zero-dependency JSON tree, emitter and parser.

    This is the wire format of the telemetry layer: benchmark reports
    ([BENCH_results.json]), per-experiment metrics records and trace dumps
    are all built from {!t} values and written with {!to_string}.  The
    parser exists so tests (and future PRs consuming the perf trajectory)
    can read reports back without external libraries.

    Numbers are split into [Int] and [Float]; the parser returns [Int]
    for numeric tokens without a fraction or exponent.  Strings are
    OCaml byte strings; the emitter escapes control characters and the
    parser decodes [\uXXXX] escapes to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list  (** insertion-ordered; keys should be unique *)

(** [to_string v] renders [v] as JSON text.  With [minify:false] (the
    default) the output is pretty-printed with two-space indentation and a
    trailing newline; with [minify:true] it is a single line.  Non-finite
    floats render as [null] (JSON has no NaN/infinity). *)
val to_string : ?minify:bool -> t -> string

(** Raised by {!parse} with a human-readable message including the byte
    offset of the error. *)
exception Parse_error of string

(** [parse s] parses one JSON value from [s] (surrounding whitespace is
    allowed; trailing garbage is an error).
    @raise Parse_error on malformed input. *)
val parse : string -> t

(** {1 Accessors}

    Total functions for picking reports apart; each returns [None] on a
    shape mismatch. *)

(** [member k v] is the value bound to key [k] if [v] is an object. *)
val member : string -> t -> t option

val to_list : t -> t list option
val to_int : t -> int option

(** Accepts both [Int] and [Float]. *)
val to_float : t -> float option

val to_str : t -> string option
