(* Find-or-create collection of counters and histograms; snapshots are
   name-sorted so identical runs serialise to identical JSON. *)

type t = {
  counters : (string, Counter.t) Hashtbl.t;
  histograms : (string, Histogram.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 64; histograms = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
      let c = Counter.make name in
      Hashtbl.add t.counters name c;
      c

let add t name n = Counter.add (counter t name) n

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
      let h = Histogram.make name in
      Hashtbl.add t.histograms name h;
      h

let observe t name v = Histogram.record (histogram t name) v

let sorted_bindings tbl =
  List.sort (fun (a, _) (b, _) -> compare a b)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [])

let snapshot t =
  List.map (fun (name, c) -> (name, Counter.value c)) (sorted_bindings t.counters)

let reset t =
  Hashtbl.iter (fun _ c -> Counter.reset c) t.counters;
  Hashtbl.iter (fun _ h -> Histogram.reset h) t.histograms

let to_json t =
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (List.map (fun (name, v) -> (name, Json.Int v)) (snapshot t)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (name, h) -> (name, Histogram.to_json h))
             (sorted_bindings t.histograms)) );
    ]
