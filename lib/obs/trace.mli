(** Bounded per-operation trace event sinks.

    A trace is a ring of structured events — e.g.
    [node_access level=2 page=517 stall=140] — for inspecting *why* a
    counter moved, at per-access granularity.  Index structures accept an
    optional trace sink ([set_trace]); when none is attached the
    instrumentation is a single option check, so traces cost nothing
    unless requested.

    The ring keeps the most recent [capacity] events and counts how many
    older ones were dropped, so a bounded trace of an unbounded run is
    always safe. *)

type t

type event = {
  ev_name : string;  (** e.g. ["node_access"] *)
  ev_attrs : (string * Json.t) list;  (** e.g. [[("level", Int 2)]] *)
}

(** [create ()] is an empty sink keeping the last [capacity] events
    (default 4096). *)
val create : ?capacity:int -> unit -> t

(** [emit t name attrs] appends an event, evicting the oldest if full. *)
val emit : t -> string -> (string * Json.t) list -> unit

(** Events currently retained, oldest first. *)
val events : t -> event list

(** Events retained now. *)
val length : t -> int

(** Events evicted so far to stay within capacity. *)
val dropped : t -> int

val clear : t -> unit

(** [{"dropped": n, "events": [{"event": name, attrs...}, ...]}] *)
val to_json : t -> Json.t
