(* Log-linear (HDR-style) histogram: exact buckets below [sub_count],
   then power-of-two ranges each split into [sub_count] linear
   sub-buckets, giving a 1/sub_count relative-error bound on quantiles
   with a fixed few-KB footprint. *)

let sub_bits = 4
let sub_count = 1 lsl sub_bits (* 16 *)

(* Highest bucket index for 62-bit OCaml ints: exponent up to 62. *)
let n_buckets = sub_count + ((63 - sub_bits) * sub_count)

type t = {
  name : string;
  buckets : int array;
  mutable count : int;
  mutable sum : int;
  mutable min_v : int;
  mutable max_v : int;
}

let make name =
  {
    name;
    buckets = Array.make n_buckets 0;
    count = 0;
    sum = 0;
    min_v = max_int;
    max_v = 0;
  }

let name t = t.name

(* Position of the most significant set bit of [v > 0]. *)
let msb v =
  let rec go v m = if v <= 1 then m else go (v lsr 1) (m + 1) in
  go v 0

let bucket_of v =
  if v < sub_count then v
  else
    let e = msb v in
    (* top sub_bits+1 bits select the sub-bucket within [2^e, 2^(e+1)) *)
    let sub = (v lsr (e - sub_bits)) - sub_count in
    sub_count + (((e - sub_bits) * sub_count) + sub)

(* Midpoint of the value range covered by bucket [i] (exact below
   sub_count, where ranges are single values). *)
let bucket_mid i =
  if i < sub_count then i
  else begin
    let b = i - sub_count in
    let e = (b / sub_count) + sub_bits in
    let sub = b mod sub_count in
    let lo = (sub_count + sub) lsl (e - sub_bits) in
    let width = 1 lsl (e - sub_bits) in
    lo + ((width - 1) / 2)
  end

let record t v =
  let v = max 0 v in
  t.buckets.(bucket_of v) <- t.buckets.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum + v;
  if v < t.min_v then t.min_v <- v;
  if v > t.max_v then t.max_v <- v

let count t = t.count
let sum t = t.sum
let min_value t = if t.count = 0 then 0 else t.min_v
let max_value t = t.max_v
let mean t = if t.count = 0 then 0. else float_of_int t.sum /. float_of_int t.count

let percentile t p =
  if p < 0. || p > 100. then invalid_arg "Histogram.percentile";
  if t.count = 0 then 0
  else if p = 0. then min_value t
  else if p = 100. then t.max_v
  else begin
    let rank =
      max 1 (int_of_float (ceil (p /. 100. *. float_of_int t.count)))
    in
    let acc = ref 0 and i = ref 0 and result = ref t.max_v in
    (try
       while !i < n_buckets do
         acc := !acc + t.buckets.(!i);
         if !acc >= rank then begin
           result := bucket_mid !i;
           raise Exit
         end;
         incr i
       done
     with Exit -> ());
    (* clamp the bucket midpoint estimate to the observed range *)
    min (max !result (min_value t)) t.max_v
  end

let reset t =
  Array.fill t.buckets 0 n_buckets 0;
  t.count <- 0;
  t.sum <- 0;
  t.min_v <- max_int;
  t.max_v <- 0

let to_json t =
  Json.Obj
    [
      ("count", Json.Int t.count);
      ("sum", Json.Int t.sum);
      ("min", Json.Int (min_value t));
      ("max", Json.Int t.max_v);
      ("mean", Json.Float (mean t));
      ("p50", Json.Int (percentile t 50.));
      ("p90", Json.Int (percentile t 90.));
      ("p95", Json.Int (percentile t 95.));
      ("p99", Json.Int (percentile t 99.));
      ("p999", Json.Int (percentile t 99.9));
    ]
