(* JSON tree, emitter and parser.  Deliberately dependency-free so every
   library in the repository can emit machine-readable telemetry without
   widening the build closure. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- Emitter --------------------------------------------------------------- *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | '\b' -> Buffer.add_string b "\\b"
      | '\012' -> Buffer.add_string b "\\f"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

(* JSON has no NaN/infinity; "%.17g" would round-trip but is noisy, and the
   values here are measurements, so 12 significant digits suffice. *)
let float_string f =
  if not (Float.is_finite f) then "null"
  else
    let s = Printf.sprintf "%.12g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E') s then s
    else s ^ ".0"

let to_string ?(minify = false) v =
  let b = Buffer.create 1024 in
  let indent n = Buffer.add_char b '\n'; for _ = 1 to n do Buffer.add_string b "  " done in
  let rec emit depth v =
    match v with
    | Null -> Buffer.add_string b "null"
    | Bool x -> Buffer.add_string b (if x then "true" else "false")
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_string f)
    | Str s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
        Buffer.add_char b '[';
        List.iteri
          (fun i item ->
            if i > 0 then Buffer.add_char b ',';
            if not minify then indent (depth + 1);
            emit (depth + 1) item)
          items;
        if not minify then indent depth;
        Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
        Buffer.add_char b '{';
        List.iteri
          (fun i (k, item) ->
            if i > 0 then Buffer.add_char b ',';
            if not minify then indent (depth + 1);
            escape_string b k;
            Buffer.add_string b (if minify then ":" else ": ");
            emit (depth + 1) item)
          fields;
        if not minify then indent depth;
        Buffer.add_char b '}'
  in
  emit 0 v;
  if not minify then Buffer.add_char b '\n';
  Buffer.contents b

(* --- Parser ---------------------------------------------------------------- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let fail cur fmt =
  Printf.ksprintf (fun m -> raise (Parse_error (Printf.sprintf "%s at byte %d" m cur.pos))) fmt

let peek cur = if cur.pos < String.length cur.src then Some cur.src.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') -> advance cur; true
    | _ -> false
  do () done

let expect cur c =
  match peek cur with
  | Some x when x = c -> advance cur
  | Some x -> fail cur "expected '%c', found '%c'" c x
  | None -> fail cur "expected '%c', found end of input" c

let literal cur word value =
  let n = String.length word in
  if cur.pos + n <= String.length cur.src && String.sub cur.src cur.pos n = word
  then begin cur.pos <- cur.pos + n; value end
  else fail cur "invalid literal"

(* Encode a Unicode scalar value as UTF-8 into [b]. *)
let add_utf8 b u =
  if u < 0x80 then Buffer.add_char b (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char b (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end
  else if u < 0x10000 then begin
    Buffer.add_char b (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char b (Char.chr (0xf0 lor (u lsr 18)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 12) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char b (Char.chr (0x80 lor (u land 0x3f)))
  end

let hex4 cur =
  let digit () =
    match peek cur with
    | Some c ->
        advance cur;
        (match c with
        | '0' .. '9' -> Char.code c - Char.code '0'
        | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
        | _ -> fail cur "bad \\u escape")
    | None -> fail cur "truncated \\u escape"
  in
  let a = digit () in
  let b = digit () in
  let c = digit () in
  let d = digit () in
  (a lsl 12) lor (b lsl 8) lor (c lsl 4) lor d

let parse_string cur =
  expect cur '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur; Buffer.contents b
    | Some '\\' ->
        advance cur;
        (match peek cur with
        | Some '"' -> advance cur; Buffer.add_char b '"'
        | Some '\\' -> advance cur; Buffer.add_char b '\\'
        | Some '/' -> advance cur; Buffer.add_char b '/'
        | Some 'n' -> advance cur; Buffer.add_char b '\n'
        | Some 't' -> advance cur; Buffer.add_char b '\t'
        | Some 'r' -> advance cur; Buffer.add_char b '\r'
        | Some 'b' -> advance cur; Buffer.add_char b '\b'
        | Some 'f' -> advance cur; Buffer.add_char b '\012'
        | Some 'u' ->
            advance cur;
            let u = hex4 cur in
            (* surrogate pair *)
            if u >= 0xd800 && u <= 0xdbff
               && cur.pos + 1 < String.length cur.src
               && cur.src.[cur.pos] = '\\'
               && cur.src.[cur.pos + 1] = 'u'
            then begin
              cur.pos <- cur.pos + 2;
              let lo = hex4 cur in
              if lo >= 0xdc00 && lo <= 0xdfff then
                add_utf8 b (0x10000 + ((u - 0xd800) lsl 10) + (lo - 0xdc00))
              else begin add_utf8 b u; add_utf8 b lo end
            end
            else add_utf8 b u
        | _ -> fail cur "bad escape");
        go ()
    | Some c -> advance cur; Buffer.add_char b c; go ()
  in
  go ()

let parse_number cur =
  let start = cur.pos in
  let is_float = ref false in
  let consume () = advance cur in
  (match peek cur with Some '-' -> consume () | _ -> ());
  while (match peek cur with Some '0' .. '9' -> true | _ -> false) do consume () done;
  (match peek cur with
  | Some '.' ->
      is_float := true;
      consume ();
      while (match peek cur with Some '0' .. '9' -> true | _ -> false) do consume () done
  | _ -> ());
  (match peek cur with
  | Some ('e' | 'E') ->
      is_float := true;
      consume ();
      (match peek cur with Some ('+' | '-') -> consume () | _ -> ());
      while (match peek cur with Some '0' .. '9' -> true | _ -> false) do consume () done
  | _ -> ());
  let s = String.sub cur.src start (cur.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some f -> Float f
    | None -> fail cur "bad number %S" s
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        (* out of int range: fall back to float *)
        match float_of_string_opt s with
        | Some f -> Float f
        | None -> fail cur "bad number %S" s)

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some 'n' -> literal cur "null" Null
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some '"' -> Str (parse_string cur)
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some '[' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some ']' then begin advance cur; List [] end
      else begin
        let rec items acc =
          let v = parse_value cur in
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; items (v :: acc)
          | Some ']' -> advance cur; List (List.rev (v :: acc))
          | _ -> fail cur "expected ',' or ']'"
        in
        items []
      end
  | Some '{' ->
      advance cur;
      skip_ws cur;
      if peek cur = Some '}' then begin advance cur; Obj [] end
      else begin
        let field () =
          skip_ws cur;
          let k = parse_string cur in
          skip_ws cur;
          expect cur ':';
          (k, parse_value cur)
        in
        let rec fields acc =
          let kv = field () in
          skip_ws cur;
          match peek cur with
          | Some ',' -> advance cur; fields (kv :: acc)
          | Some '}' -> advance cur; Obj (List.rev (kv :: acc))
          | _ -> fail cur "expected ',' or '}'"
        in
        fields []
      end
  | Some c -> fail cur "unexpected character '%c'" c

let parse s =
  let cur = { src = s; pos = 0 } in
  let v = parse_value cur in
  skip_ws cur;
  if cur.pos <> String.length s then fail cur "trailing garbage";
  v

(* --- Accessors ------------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_list = function List l -> Some l | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
