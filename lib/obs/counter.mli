(** Named monotonic event counters.

    A counter is a mutable integer with a stable, dot-separated name
    (e.g. ["sim.stall_cycles"]).  The unit is part of the naming
    convention — names ending in [_cycles] count simulated CPU cycles,
    [_ns] simulated nanoseconds, everything else plain events — and every
    name is catalogued in [docs/OBSERVABILITY.md].

    [add]/[incr] compile to a single field mutation, so counters are safe
    to charge from simulator hot paths. *)

type t

(** [make name] is a fresh counter at zero. *)
val make : string -> t

val name : t -> string
val value : t -> int

(** [add t n] adds [n] (which may be negative only when undoing a
    provisional charge; normal sources only ever add). *)
val add : t -> int -> unit

val incr : t -> unit

(** Reset to zero (e.g. between measurement batches). *)
val reset : t -> unit

(** [(name, value)] pair, the shape consumed by registry snapshots. *)
val kv : t -> string * int
