(** A named collection of counters and histograms with one JSON snapshot.

    The experiment harness installs a fresh registry per experiment run;
    stat sources fold their deltas into it and the registry serialises to
    the experiment's uniform metrics record in [BENCH_results.json]
    (schema: [docs/OBSERVABILITY.md]).

    [counter]/[histogram] are find-or-create: the first call under a name
    creates the instrument, later calls return the same one, so sources
    need no registration phase. *)

type t

val create : unit -> t

(** The counter registered under [name] (created at zero if new). *)
val counter : t -> string -> Counter.t

(** [add t name n] adds [n] to the counter [name]. *)
val add : t -> string -> int -> unit

(** The histogram registered under [name] (created empty if new). *)
val histogram : t -> string -> Histogram.t

(** [observe t name v] records [v] in the histogram [name]. *)
val observe : t -> string -> int -> unit

(** Counter values at this instant, sorted by name. *)
val snapshot : t -> (string * int) list

(** Reset every registered counter and histogram to empty (the
    instruments stay registered). *)
val reset : t -> unit

(** [{"counters": {name: value, ...}, "histograms": {name: {...}, ...}}]
    with keys sorted, so equal runs serialise identically. *)
val to_json : t -> Json.t
